package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/server"
)

// ClusterScatterGather (E20) measures the distributed serving tier over
// the in-process harness: a coordinator fanning root-shardable queries
// out over N partitioned engines versus one engine holding the union.
// Each row sweeps the shard count for one workload and reports merged
// throughput, the scatter–gather overhead against the single engine,
// and whether the merged answers stayed identical — counts must match
// exactly and the merged stream must carry the same rows in the same
// order (the stream-hash stand-in for the golden byte-level test in
// internal/cluster). In-process shards share the host's cores, so this
// isolates coordination cost (fan-out, snapshot handshake, k-way merge)
// rather than demonstrating scale-out speedup; see DESIGN.md,
// "Distributed serving".
func ClusterScatterGather(cfg Config) *Table {
	shardSweep := []int{1, 2, 4}
	repeats := 20
	var g *dataset.Graph
	if cfg.Quick {
		g = dataset.TriadicPA(150, 3, 0.4, 2301)
		repeats = 5
	} else {
		g = dataset.TriadicPA(400, 4, 0.4, 2301)
	}
	db := g.DB(false)

	workloads := []struct {
		name string
		req  server.Request
	}{
		{"2-star count", server.Request{Query: "E(x,y), E(x,z)", Mode: "count"}},
		{"3-star count", server.Request{Query: "E(x,y), E(x,z), E(x,w)", Mode: "count"}},
		{"2-star stream", server.Request{Query: "E(x,y), E(x,z)", Mode: "stream"}},
	}

	t := &Table{
		ID:     "E20 (cluster)",
		Title:  "distributed scatter–gather: coordinator over N in-process shards vs one engine",
		Header: []string{"workload", "shards", "queries/sec", "vs single", "identical"},
	}
	ctx := context.Background()

	// run drives one backend `repeats` times and returns throughput plus
	// the (count, order-sensitive stream hash) identity pair.
	run := func(do func() (int64, uint64, error)) (float64, int64, uint64, error) {
		var count int64
		var hash uint64
		start := time.Now()
		for i := 0; i < repeats; i++ {
			c, h, err := do()
			if err != nil {
				return 0, 0, 0, err
			}
			count, hash = c, h
		}
		return float64(repeats) / time.Since(start).Seconds(), count, hash, nil
	}

	for _, w := range workloads {
		single := server.NewEngine(db, server.Config{Orderer: "greedy"})
		baseQPS, baseCount, baseHash, err := run(func() (int64, uint64, error) {
			return execClusterReq(w.req, func(req server.Request, row func([]int64) bool) (int64, error) {
				if row == nil {
					resp, err := single.Do(req)
					if err != nil {
						return 0, err
					}
					return resp.Count, nil
				}
				sum, err := single.StreamCtx(ctx, req, nil, row)
				return sum.Count, err
			})
		})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s (single): %v", w.name, err))
			continue
		}

		for _, n := range shardSweep {
			dbs, routing, err := cluster.Partition(db, n)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s partition n=%d: %v", w.name, n, err))
				continue
			}
			shards := make([]cluster.Shard, n)
			for i, pdb := range dbs {
				shards[i] = cluster.NewEngineShard(fmt.Sprintf("shard-%d", i), server.NewEngine(pdb, server.Config{}))
			}
			coord, err := cluster.New(routing, shards, cluster.Config{})
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s n=%d: %v", w.name, n, err))
				continue
			}
			qps, count, hash, err := run(func() (int64, uint64, error) {
				return execClusterReq(w.req, func(req server.Request, row func([]int64) bool) (int64, error) {
					if row == nil {
						resp, err := coord.Do(ctx, req)
						if err != nil {
							return 0, err
						}
						return resp.Count, nil
					}
					sum, err := coord.StreamCtx(ctx, req, nil, row)
					return sum.Count, err
				})
			})
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s n=%d: %v", w.name, n, err))
				continue
			}
			ident := "yes"
			if count != baseCount || hash != baseHash {
				ident = "NO"
				t.Notes = append(t.Notes, fmt.Sprintf("MISMATCH: %s at %d shards merged %d rows (hash %x), single %d (hash %x)",
					w.name, n, count, hash, baseCount, baseHash))
			}
			ratio := "-"
			if baseQPS > 0 {
				ratio = fmt.Sprintf("%.2fx", qps/baseQPS)
			}
			t.Rows = append(t.Rows, []string{
				w.name, fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", qps), ratio, ident,
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: identical answers at every shard count; throughput within a small constant factor of the single engine (the shards share this host's cores, so the ratio prices coordination, not scale-out)",
		"the coordinator pins orderer=greedy and pre-flights version vectors on every query — both costs are included",
	)
	return t
}

// execClusterReq runs one request against a backend — buffered count or
// hash-folded stream — returning (count, stream hash). Buffered modes
// hash their count so the identity check still bites.
func execClusterReq(req server.Request, do func(server.Request, func([]int64) bool) (int64, error)) (int64, uint64, error) {
	if req.Mode != "stream" {
		c, err := do(req, nil)
		return c, streamHash(1469598103934665603, []int64{c}), err
	}
	h := uint64(1469598103934665603)
	sreq := req
	sreq.Mode = ""
	c, err := do(sreq, func(mu []int64) bool {
		h = streamHash(h, mu)
		return true
	})
	return c, h, err
}
