package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
)

// PreparedStatements (E14) measures what the plan cache amortizes away:
// per-query latency of repeated short queries with cold planning
// (plan cache disabled, so every request pays parse + TD selection +
// plan compilation) versus prepared execution (one Engine.Prepare, then
// plan-cache hits). Short pattern queries over modest data are exactly
// the regime where planning time rivals execution time, so the spread
// between the two arms is the service-side payoff of the prepared
// API. The trie registry stays on in both arms — this experiment
// isolates planning, not indexing (E12 covers that).
func PreparedStatements(cfg Config) *Table {
	repeats := 40
	var g *dataset.Graph
	if cfg.Quick {
		g = dataset.TriadicPA(120, 3, 0.4, 7321)
		repeats = 12
	} else {
		g = dataset.TriadicPA(300, 4, 0.4, 7321)
	}
	db := g.DB(false)

	queries := []struct {
		name string
		text string
	}{
		{"triangle", "E(x,y), E(y,z), E(x,z)"},
		{"4-path", "E(a,b), E(b,c), E(c,d)"},
		{"4-cycle", "E(a,b), E(b,c), E(c,d), E(d,a)"},
	}

	t := &Table{
		ID:     "E14 (prepared)",
		Title:  "prepared statements: repeat-query latency, cold planning vs plan-cache hits",
		Header: []string{"query", "arm", "runs", "avg µs/query", "plan hits", "plan misses"},
	}

	for _, q := range queries {
		// Cold arm: plan caching disabled, every Do compiles. One warmup
		// run per arm takes trie construction out of both measurements.
		cold := server.NewEngine(db, server.Config{Workers: 1, PlanCache: -1})
		if _, err := cold.Do(server.Request{Query: q.text}); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s cold: %v", q.name, err))
			continue
		}
		start := time.Now()
		for i := 0; i < repeats; i++ {
			if _, err := cold.Do(server.Request{Query: q.text}); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s cold: %v", q.name, err))
				break
			}
		}
		coldAvg := float64(time.Since(start).Microseconds()) / float64(repeats)
		cs := cold.Stats()
		t.Rows = append(t.Rows, []string{
			q.name, "cold", fmt.Sprintf("%d", repeats),
			fmt.Sprintf("%.0f", coldAvg), itoa64(cs.Plans.Hits), itoa64(cs.Plans.Misses),
		})

		// Prepared arm: compile once, execute many.
		warm := server.NewEngine(db, server.Config{Workers: 1})
		stmt, err := warm.Prepare(server.Request{Query: q.text})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s prepare: %v", q.name, err))
			continue
		}
		if _, err := stmt.Do(context.Background(), server.Request{}); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s prepared: %v", q.name, err))
			continue
		}
		start = time.Now()
		for i := 0; i < repeats; i++ {
			if _, err := stmt.Do(context.Background(), server.Request{}); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s prepared: %v", q.name, err))
				break
			}
		}
		warmAvg := float64(time.Since(start).Microseconds()) / float64(repeats)
		ws := warm.Stats()
		t.Rows = append(t.Rows, []string{
			q.name, "prepared", fmt.Sprintf("%d", repeats),
			fmt.Sprintf("%.0f", warmAvg), itoa64(ws.Plans.Hits), itoa64(ws.Plans.Misses),
		})
	}
	t.Notes = append(t.Notes,
		"cold: plan cache disabled — every request pays parse + TD selection + plan compilation",
		"prepared: Engine.Prepare compiled once; repeats are plan-cache hits (GET /stats shows the hit rate)",
	)
	return t
}
