package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/leapfrog"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/trie"
)

// HotPath (E15) micro-benchmarks the join core's mechanical layer —
// the pieces the hot-path overhaul rewrote — in isolation from plan
// selection and datasets:
//
//   - seek-length sweep: ns and charged accesses per SeekGE as the seek
//     distance grows (galloping keeps short seeks cheap; the charged
//     model cost stays the historical binary-search count);
//   - frog arity sweep: ns per match of the k-way unary leapfrog
//     intersection (allocation-free Init, wrapping leg advance);
//   - build throughput: rows/s of the columnar two-pass trie builder,
//     sequential vs per-core parallel spans;
//   - allocation audit: allocs/op of a steady-state pooled Count.
//
// The DESIGN.md "hot path" section and the README performance table
// quote this table; the CI benchstat gate tracks its wall-clock.
func HotPath(cfg Config) *Table {
	t := &Table{
		ID:     "E15 (hot path)",
		Title:  "join-core micro-benchmarks: seeks, frogs, builds, allocations",
		Header: []string{"micro", "case", "work", "ns/op", "accesses/op"},
	}
	seekSweep(cfg, t)
	frogSweep(cfg, t)
	buildSweep(cfg, t)
	allocAudit(cfg, t)
	return t
}

// seekSweep scans one trie level with fixed-stride seeks: stride s over
// a dense level makes every seek travel distance ~s/2.
func seekSweep(cfg Config, t *Table) {
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}
	tuples := make([][]int64, n)
	for i := range tuples {
		tuples[i] = []int64{int64(2 * i)}
	}
	rel := relation.MustNew("S", 1, tuples)
	tr := trie.Build(rel, nil)
	for _, stride := range []int64{1, 4, 16, 256, 4096} {
		var c stats.Counters
		seeks := 0
		start := time.Now()
		rounds := 1 + (1<<14)/n
		for r := 0; r < rounds; r++ {
			it := tr.NewIteratorCounters(&c)
			it.Open()
			// Odd targets fall between values, so every seek searches.
			for v := int64(1); ; v += 2 * stride {
				it.SeekGE(v)
				if it.AtEnd() {
					break
				}
				seeks++
			}
			it.Flush()
		}
		el := time.Since(start)
		if seeks == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			"seek", fmt.Sprintf("stride %d", stride), fmt.Sprintf("%d seeks", seeks),
			fmt.Sprintf("%.1f", float64(el.Nanoseconds())/float64(seeks)),
			fmt.Sprintf("%.2f", float64(c.TrieAccesses)/float64(seeks)),
		})
	}
}

// frogSweep intersects k shifted residue sequences — every leg at one
// trie level — and reports the cost per emitted match.
func frogSweep(cfg Config, t *Table) {
	n := 1 << 15
	if cfg.Quick {
		n = 1 << 12
	}
	for _, k := range []int{2, 3, 5} {
		legs := make([]*trie.Iterator, k)
		var c stats.Counters
		for i := 0; i < k; i++ {
			tuples := make([][]int64, 0, n)
			for v := 0; v < n; v++ {
				if v%(i+2) != 1 { // thin each leg differently
					tuples = append(tuples, []int64{int64(v)})
				}
			}
			rel := relation.MustNew(fmt.Sprintf("L%d", i), 1, tuples)
			legs[i] = trie.Build(rel, nil).NewIteratorCounters(&c)
			legs[i].Open()
		}
		f := leapfrog.NewFrog(legs)
		matches := 0
		start := time.Now()
		for ok := f.Init(); ok; ok = f.Next() {
			matches++
		}
		el := time.Since(start)
		for _, l := range legs {
			l.Flush()
		}
		if matches == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			"frog", fmt.Sprintf("%d legs", k), fmt.Sprintf("%d matches", matches),
			fmt.Sprintf("%.1f", float64(el.Nanoseconds())/float64(matches)),
			fmt.Sprintf("%.2f", float64(c.TrieAccesses)/float64(matches)),
		})
	}
}

// buildSweep measures trie construction throughput over a skewed 3-ary
// relation, sequential vs one worker per core.
func buildSweep(cfg Config, t *Table) {
	n := 200_000
	if cfg.Quick {
		n = 40_000
	}
	rng := rand.New(rand.NewSource(515))
	tuples := make([][]int64, n)
	for i := range tuples {
		tuples[i] = []int64{int64(rng.Intn(n / 64)), int64(rng.Intn(256)), int64(rng.Intn(1 << 30))}
	}
	rel := relation.MustNew("B", 3, tuples)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		rounds := 3
		start := time.Now()
		for r := 0; r < rounds; r++ {
			trie.BuildParallel(rel, nil, workers)
		}
		el := time.Since(start) / time.Duration(rounds)
		rows := float64(rel.Len())
		t.Rows = append(t.Rows, []string{
			"build", fmt.Sprintf("%d workers", workers),
			fmt.Sprintf("%.1fM rows/s", rows/el.Seconds()/1e6),
			fmt.Sprintf("%.0f", float64(el.Nanoseconds())/rows), "-",
		})
		if workers == runtime.GOMAXPROCS(0) {
			break // one row when GOMAXPROCS == 1
		}
	}
}

// allocAudit reports the steady-state allocation rate of a pooled
// count — the "0 allocs/op" claim, measured rather than asserted here
// (the tier-1 assertion lives in internal/leapfrog).
func allocAudit(cfg Config, t *Table) {
	g := queries.Cycle(4)
	db := cfg.pathGraphs()[0].DB(false)
	inst, err := leapfrog.Build(g, db, g.Vars(), nil)
	if err != nil {
		return
	}
	leapfrog.Count(inst) // warm the runner pool
	start := time.Now()
	rounds := 0
	allocs := testing.AllocsPerRun(8, func() {
		leapfrog.Count(inst)
		rounds++
	})
	el := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"count", "steady state", fmt.Sprintf("%d runs", rounds),
		fmt.Sprintf("%.0f", float64(el.Nanoseconds())/float64(rounds)),
		fmt.Sprintf("%.0f allocs", allocs),
	})
}
