package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/td"
)

// Figure10 reproduces Fig. 10: count runtimes under different overall
// cache capacities — {4,6}-cycle on the IMDB stand-in and 6-cycle on the
// wiki-Vote stand-in. Capacity 0 rows are pure LFTJ (caching disabled);
// "full" is unbounded.
func Figure10(cfg Config) *Table {
	capacities := []int{100, 400, 1600, 6400, 25600}
	if cfg.Quick {
		capacities = []int{16, 64, 256, 1024}
	}
	t := &Table{
		ID:     "E7 (Fig. 10)",
		Title:  "count runtimes (ms) vs overall cache capacity",
		Header: []string{"workload", "capacity", "count", "time ms", "speedup vs LFTJ", "hit rate", "entries"},
	}
	type workload struct {
		name string
		q    *cq.Query
		db   *relation.DB
	}
	imdb := cfg.imdb()
	wiki := cfg.graphs()[0].DB(false)
	ws := []workload{
		{"IMDB* 4-cycle", queries.IMDBCycle(2), imdb},
		{"IMDB* 6-cycle", queries.IMDBCycle(3), imdb},
		{"wiki-Vote* 6-cycle", queries.Cycle(6), wiki},
	}
	for _, w := range ws {
		base := RunCLFTJ(w.q, w.db, core.Policy{Disabled: true})
		addRow := func(label string, m Measurement) {
			t.Rows = append(t.Rows, []string{
				w.name, label, itoa64(m.Count), m.ms(), m.Speedup(base),
				fmt.Sprintf("%.2f", m.Counters.HitRate()),
				itoa64(m.Counters.CacheInserts - m.Counters.CacheEvictions),
			})
		}
		addRow("0 (LFTJ)", base)
		for _, c := range capacities {
			addRow(fmt.Sprintf("%d", c), RunCLFTJ(w.q, w.db, core.Policy{Capacity: c}))
		}
		addRow("full", RunCLFTJ(w.q, w.db, core.Policy{}))
	}
	t.Notes = append(t.Notes,
		"paper shape: speedup grows with capacity and small caches already capture most of the benefit; the skewed wiki-Vote workload saturates at a small cache")
	return t
}

// lollipopTDs builds the three cache structures of Fig. 12 over the
// {3,2}-lollipop (variables x1..x5; triangle x1x2x3, tail x3-x4-x5):
//
//	CS1: {x1,x2,x3}-{x3,x4,x5}            one 1-dim cache (adh {x3})
//	CS2: {x1,x2,x3}-{x3,x4}-{x4,x5}       two 1-dim caches
//	CS3: {x1,x2,x3}-{x2,x3,x4}-{x4,x5}    one 2-dim + one 1-dim cache
//
// All three have width 2 — the experiment shows treewidth alone does not
// determine caching quality; adhesion dimensionality does.
func lollipopTDs() map[string]*td.TD {
	return map[string]*td.TD{
		"CS1": td.MustNew([][]int{{0, 1, 2}, {2, 3, 4}}, []int{-1, 0}),
		"CS2": td.MustNew([][]int{{0, 1, 2}, {2, 3}, {3, 4}}, []int{-1, 0, 1}),
		"CS3": td.MustNew([][]int{{0, 1, 2}, {1, 2, 3}, {3, 4}}, []int{-1, 0, 1}),
	}
}

// Figure11 reproduces Fig. 11: the {3,2}-lollipop count query under the
// three cache structures of Fig. 12, against plain LFTJ.
func Figure11(cfg Config) *Table {
	q := queries.Lollipop(3, 2)
	t := &Table{
		ID:     "E8 (Fig. 11/12)",
		Title:  "{3,2}-lollipop count under different cache structures (same treewidth)",
		Header: []string{"dataset", "structure", "cache dims", "count", "time ms", "speedup vs LFTJ", "hit rate"},
	}
	gs := cfg.graphs()
	for _, g := range []int{0, 4} { // wiki-Vote*, ego-Twitter*
		db := gs[g].DB(false)
		base := RunLFTJ(q, db, nil)
		t.Rows = append(t.Rows, []string{gs[g].Name, "LFTJ", "-", itoa64(base.Count), base.ms(), "1.0x", "-"})
		for _, name := range []string{"CS1", "CS2", "CS3"} {
			tree := lollipopTDs()[name]
			order := orderNames(q, tree.CompatibleOrder(len(q.Vars())))
			m := RunCLFTJWith(q, db, tree, order, core.Policy{})
			if err := verifyCounts(base, m); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s %s: %v", gs[g].Name, name, err))
			}
			dims := fmt.Sprintf("%v", cacheDims(q, tree, order, db))
			t.Rows = append(t.Rows, []string{
				gs[g].Name, name, dims, itoa64(m.Count), m.ms(), m.Speedup(base),
				fmt.Sprintf("%.2f", m.Counters.HitRate()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: CS2 (two 1-dim caches) beats CS1 (one 1-dim) beats CS3 (2-dim cache) — target small adhesions, not just small treewidth")
	return t
}

func cacheDims(q *cq.Query, tree *td.TD, order []string, db *relation.DB) []int {
	plan, err := core.NewPlan(q, db, tree, order, nil)
	if err != nil {
		return nil
	}
	return plan.CacheDims()
}

// imdbTDs builds TD1 (person-keyed caches) and TD2 (movie-keyed caches)
// of Fig. 14 for the IMDB 4-cycle and 6-cycle. The decompositions are
// isomorphic; only which attribute family forms the adhesions differs.
func imdbTDs(k int, q *cq.Query) (td1, td2 *td.TD) {
	idx := q.VarIndex()
	p := func(i int) int { return idx[fmt.Sprintf("p%d", i)] }
	m := func(i int) int { return idx[fmt.Sprintf("m%d", i)] }
	switch k {
	case 2:
		td1 = td.MustNew([][]int{{p(1), p(2), m(1)}, {p(1), p(2), m(2)}}, []int{-1, 0})
		td2 = td.MustNew([][]int{{p(1), m(1), m(2)}, {m(1), m(2), p(2)}}, []int{-1, 0})
	case 3:
		td1 = td.MustNew([][]int{
			{m(1), p(2), p(1)},
			{p(2), p(1), p(3)},
			{p(2), p(3), m(2)},
			{p(1), p(3), m(3)},
		}, []int{-1, 0, 1, 1})
		td2 = td.MustNew([][]int{
			{p(1), m(1), m(3)},
			{m(1), m(3), m(2)},
			{m(1), m(2), p(2)},
			{m(3), m(2), p(3)},
		}, []int{-1, 0, 1, 1})
	default:
		panic("imdbTDs: only k=2 (4-cycle) and k=3 (6-cycle) are defined")
	}
	return td1, td2
}

// Figure13 reproduces Fig. 13/14: the IMDB 4-cycle and 6-cycle counts
// under TD1 (caches keyed on the skewed person ids) versus TD2 (caches
// keyed on the near-uniform movie ids), plus plain LFTJ under each TD's
// imposed variable order and under the natural order.
func Figure13(cfg Config) *Table {
	db := cfg.imdb()
	t := &Table{
		ID:     "E9 (Fig. 13/14)",
		Title:  "IMDB cycles: person-keyed (TD1) vs movie-keyed (TD2) caches",
		Header: []string{"query", "run", "count", "time ms", "hit rate", "est. order cost"},
	}
	for _, k := range []int{2, 3} {
		q := queries.IMDBCycle(k)
		name := fmt.Sprintf("%d-cycle", 2*k)
		td1, td2 := imdbTDs(k, q)
		for _, tc := range []struct {
			label string
			tree  *td.TD
		}{{"CLFTJ TD1 (person)", td1}, {"CLFTJ TD2 (movie)", td2}} {
			order := orderNames(q, tc.tree.CompatibleOrder(len(q.Vars())))
			m := RunCLFTJWith(q, db, tc.tree, order, core.Policy{})
			t.Rows = append(t.Rows, []string{
				name, tc.label, itoa64(m.Count), m.ms(),
				fmt.Sprintf("%.2f", m.Counters.HitRate()),
				fmt.Sprintf("%.3g", estimateOrderCost(q, db, order)),
			})
		}
		for _, tc := range []struct {
			label string
			order []string
		}{
			{"LFTJ (TD1 order)", orderNames(q, td1.CompatibleOrder(len(q.Vars())))},
			{"LFTJ (TD2 order)", orderNames(q, td2.CompatibleOrder(len(q.Vars())))},
			{"LFTJ (natural order)", q.Vars()},
		} {
			m := RunLFTJ(q, db, tc.order)
			t.Rows = append(t.Rows, []string{
				name, tc.label, itoa64(m.Count), m.ms(), "-",
				fmt.Sprintf("%.3g", estimateOrderCost(q, db, tc.order)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: TD1 (skewed person adhesions) outruns the isomorphic TD2; the order-cost estimate (Chu et al. [7]) ranks TD2's order costlier")
	return t
}

func estimateOrderCost(q *cq.Query, db *relation.DB, order []string) float64 {
	inst, err := buildInstance(q, db, order)
	if err != nil {
		return -1
	}
	return inst.EstimateOrderCost()
}

// Experiment pairs an experiment ID with its (lazy) driver.
type Experiment struct {
	ID  string
	Run func(Config) *Table
}

// Experiments lists every driver in paper order. IDs match the tables'.
func Experiments() []Experiment {
	return []Experiment{
		{"E1 (§1)", IntroMemoryAccesses},
		{"E2 (Fig. 5)", Figure5},
		{"E3 (Fig. 6)", Figure6},
		{"E4 (Fig. 7)", Figure7},
		{"E5 (Fig. 8)", Figure8},
		{"E6 (Fig. 9)", Figure9},
		{"E7 (Fig. 10)", Figure10},
		{"E8 (Fig. 11/12)", Figure11},
		{"E9 (Fig. 13/14)", Figure13},
		{"E10 (ablation)", Ablation},
		{"E11 (parallel)", ParallelSpeedup},
		{"E12 (service)", ServiceThroughput},
		{"E13 (updates)", IncrementalUpdates},
		{"E14 (prepared)", PreparedStatements},
		{"E15 (hot path)", HotPath},
		{"E17 (planner)", Planner},
		{"E18 (streaming)", StreamThroughput},
		{"E19 (persistence)", PersistentRestart},
		{"E20 (cluster)", ClusterScatterGather},
	}
}

// All runs every experiment and returns the tables in paper order.
func All(cfg Config) []*Table {
	var out []*Table
	for _, e := range Experiments() {
		out = append(out, e.Run(cfg))
	}
	return out
}
