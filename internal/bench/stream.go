package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/queries"
)

// streamHash folds one emitted row into an FNV-style running hash; the
// hash is order-sensitive, so two streams hash equal only when they
// carry the same rows in the same order — the cheap stand-in for the
// byte-level NDJSON comparison the golden test performs.
func streamHash(h uint64, mu []int64) uint64 {
	for _, v := range mu {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return h
}

// runStream measures one streaming evaluation at the given worker
// count, returning the measurement plus the order-sensitive stream
// hash.
func runStream(plan *core.Plan, policy core.Policy, workers int) (Measurement, uint64) {
	var m Measurement
	h := uint64(1469598103934665603)
	start := time.Now()
	res := plan.EvalStream(policy, workers, func(mu []int64) bool {
		h = streamHash(h, mu)
		return true
	})
	m.Duration = time.Since(start)
	m.Count = res.Emitted
	return m, h
}

// StreamThroughput (E18) sweeps the worker count of the sharded
// streaming producer (core.EvalStreamCtx — the engine under Stmt.Rows
// and the HTTP NDJSON endpoint) and reports throughput against the
// sequential stream. Unlike E11's CountParallel, the merged stream must
// be byte-deterministic: every row crosses a channel and is re-emitted
// in shard order, so the sweep also verifies the stream hash is
// identical at every worker count (IDENTICAL column). Streams run with
// caching disabled — the producer's own tradeoff for its canonical
// order — and batched leaf scans (BatchSize) sizing the row blocks.
func StreamThroughput(cfg Config) *Table {
	workerSweep := []int{1, 2, 4, 8}
	t := &Table{
		ID:     "E18 (streaming)",
		Title:  fmt.Sprintf("parallel streaming: rows/s vs workers (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		Header: []string{"workload", "workers", "rows", "time ms", "Mrows/s", "speedup vs 1 worker", "identical"},
	}
	var g *dataset.Graph
	if cfg.Quick {
		g = dataset.TriadicPA(150, 3, 0.4, 2101)
	} else {
		g = dataset.TriadicPA(400, 4, 0.4, 2101)
	}
	db := g.DB(false)
	workloads := []struct {
		name string
		q    *cq.Query
	}{
		{"triangle", queries.Clique(3)},
		{"4-path", queries.Path(4)},
		{"5-cycle", queries.Cycle(5)},
	}
	policy := core.Policy{Disabled: true, BatchSize: core.DefaultBatchSize}
	for _, w := range workloads {
		plan, perr := core.AutoPlan(w.q, db, core.AutoOptions{})
		if perr != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("SKIP %s: %v", w.name, perr))
			continue
		}
		base, baseHash := runStream(plan, policy, 1)
		for _, k := range workerSweep {
			m, h := base, baseHash
			if k != 1 {
				m, h = runStream(plan, policy, k)
			}
			ident := "yes"
			if h != baseHash || m.Count != base.Count {
				ident = "NO"
				t.Notes = append(t.Notes, fmt.Sprintf("MISMATCH: %s at %d workers streamed %d rows (hash %x), sequential %d (hash %x)",
					w.name, k, m.Count, h, base.Count, baseHash))
			}
			mrows := "-"
			if m.Duration > 0 {
				mrows = fmt.Sprintf("%.2f", float64(m.Count)/m.Duration.Seconds()/1e6)
			}
			t.Rows = append(t.Rows, []string{
				w.name, fmt.Sprintf("%d", k), itoa64(m.Count), m.ms(), mrows, m.Speedup(base), ident,
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: >= 2x throughput at 4 workers on the compute-heavy shapes, with byte-identical output at every worker count",
		"the producer trades per-query caches for its deterministic merge order — see DESIGN.md, \"Batched execution and parallel streaming\"")
	return t
}
