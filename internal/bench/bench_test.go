package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/queries"
)

// The experiment drivers are exercised at Quick scale: every figure must
// produce rows, engines must agree on counts within a row, and tables
// must render.

func TestRunnersAgree(t *testing.T) {
	g := dataset.TriadicPA(60, 3, 0.5, 7)
	db := g.DB(false)
	q := queries.Cycle(4)
	lftj := RunLFTJ(q, db, nil)
	clftj := RunCLFTJ(q, db, core.Policy{})
	ytd := RunYTD(q, db)
	pw := RunPairwise(q, db)
	if err := verifyCounts(lftj, clftj, ytd, pw); err != nil {
		t.Fatal(err)
	}
	if lftj.Err != nil || clftj.Err != nil || ytd.Err != nil || pw.Err != nil {
		t.Fatal("runner error")
	}
	if clftj.Counters.Total() == 0 {
		t.Error("CLFTJ runner recorded no accesses")
	}
	evalL := RunLFTJEval(q, db)
	evalC := RunCLFTJEval(q, db, core.Policy{})
	evalY := RunYTDEval(q, db)
	if err := verifyCounts(evalL, evalC, evalY, lftj); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementFormatting(t *testing.T) {
	m := Measurement{Duration: 1500000} // 1.5ms
	if got := m.ms(); got != "1.50" {
		t.Errorf("ms = %q", got)
	}
	if got := (Measurement{Err: errMemoryBound}).ms(); got != "err" {
		t.Errorf("err ms = %q", got)
	}
	base := Measurement{Duration: 3000000}
	if got := m.Speedup(base); got != "2.0x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := m.Speedup(Measurement{Err: errMemoryBound}); got != "-" {
		t.Errorf("Speedup vs err = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "test",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"== T: test ==", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short mode")
	}
	cfg := Config{Quick: true}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(cfg)
			if tbl.ID != e.ID {
				t.Errorf("table ID %q, registry ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %v has %d cells, header has %d", row, len(row), len(tbl.Header))
				}
			}
			if s := tbl.String(); !strings.Contains(s, tbl.ID) {
				t.Error("rendering missing table ID")
			}
		})
	}
}

func TestLollipopTDsValid(t *testing.T) {
	q := queries.Lollipop(3, 2)
	for name, tree := range lollipopTDs() {
		if err := tree.Validate(q); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestIMDBTDsValid(t *testing.T) {
	for _, k := range []int{2, 3} {
		q := queries.IMDBCycle(k)
		td1, td2 := imdbTDs(k, q)
		if err := td1.Validate(q); err != nil {
			t.Errorf("k=%d TD1 invalid: %v", k, err)
		}
		if err := td2.Validate(q); err != nil {
			t.Errorf("k=%d TD2 invalid: %v", k, err)
		}
		// TD1's adhesions must be over persons, TD2's over movies.
		idx := q.VarIndex()
		isPerson := func(x int) bool {
			for name, i := range idx {
				if i == x {
					return name[0] == 'p'
				}
			}
			return false
		}
		for v := 0; v < td1.N(); v++ {
			for _, x := range td1.Adhesion(v) {
				if !isPerson(x) {
					t.Errorf("k=%d TD1 adhesion contains movie variable", k)
				}
			}
		}
		for v := 0; v < td2.N(); v++ {
			for _, x := range td2.Adhesion(v) {
				if isPerson(x) {
					t.Errorf("k=%d TD2 adhesion contains person variable", k)
				}
			}
		}
	}
}
