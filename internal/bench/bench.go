// Package bench is the experiment harness: one driver per table/figure of
// the paper's evaluation (§5), each producing a text table with the same
// rows and series the paper reports — runtimes, memory accesses, cache
// statistics — over the synthetic SNAP/IMDB stand-ins of package dataset.
// cmd/figures regenerates everything; bench_test.go at the repository
// root wraps each driver in a testing.B benchmark.
package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/genericjoin"
	"repro/internal/leapfrog"
	"repro/internal/pairwise"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
	"repro/internal/yannakakis"
)

// Config scales the experiments.
type Config struct {
	// Scale multiplies dataset sizes (1 = default benchmark size).
	Scale dataset.Scale
	// Quick shrinks datasets and sweeps so the full suite runs in
	// seconds; used by tests and -quick runs.
	Quick bool
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// errMemoryBound marks runs skipped because the algorithm would
// materialize intermediates beyond available memory (the analogue of the
// paper's timeout/failure markings).
var errMemoryBound = errors.New("bench: skipped, materialized intermediates exceed memory")

// Measurement is one algorithm execution.
type Measurement struct {
	Count    int64
	Duration time.Duration
	Counters stats.Counters
	Err      error
}

func (m Measurement) ms() string {
	if m.Err != nil {
		return "err"
	}
	return fmt.Sprintf("%.2f", float64(m.Duration.Microseconds())/1000)
}

// Speedup reports base's duration relative to m's (how much faster m is).
func (m Measurement) Speedup(base Measurement) string {
	if m.Err != nil || base.Err != nil || m.Duration <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base.Duration)/float64(m.Duration))
}

// RunLFTJ measures vanilla LFTJ count under the given order (nil: the
// query's natural order). Index (trie) construction is excluded from the
// timing, matching the paper's preloaded-index protocol.
func RunLFTJ(q *cq.Query, db *relation.DB, order []string) Measurement {
	var m Measurement
	if order == nil {
		order = q.Vars()
	}
	inst, err := leapfrog.Build(q, db, order, &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	start := time.Now()
	m.Count = leapfrog.Count(inst)
	m.Duration = time.Since(start)
	return m
}

// RunLFTJEval measures vanilla LFTJ full evaluation (results consumed,
// not stored, per §5.3.2's "computing the materialized result rather
// than storing it").
func RunLFTJEval(q *cq.Query, db *relation.DB) Measurement {
	var m Measurement
	inst, err := leapfrog.Build(q, db, q.Vars(), &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	start := time.Now()
	var n int64
	var sink int64
	leapfrog.Eval(inst, func(mu []int64) bool {
		n++
		sink ^= mu[0]
		return true
	})
	_ = sink
	m.Count = n
	m.Duration = time.Since(start)
	return m
}

// RunCLFTJ measures CLFTJ count with an automatically selected TD (tree
// selection and trie construction excluded from timing).
func RunCLFTJ(q *cq.Query, db *relation.DB, policy core.Policy) Measurement {
	var m Measurement
	plan, err := core.AutoPlan(q, db, core.AutoOptions{Counters: &m.Counters})
	if err != nil {
		return Measurement{Err: err}
	}
	m.Counters.Reset() // drop plan-selection accounting; measure the run
	start := time.Now()
	m.Count = plan.Count(policy).Count
	m.Duration = time.Since(start)
	return m
}

// RunCLFTJWith measures CLFTJ count under an explicit TD and order.
func RunCLFTJWith(q *cq.Query, db *relation.DB, tree *td.TD, order []string, policy core.Policy) Measurement {
	var m Measurement
	plan, err := core.NewPlan(q, db, tree, order, &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	start := time.Now()
	m.Count = plan.Count(policy).Count
	m.Duration = time.Since(start)
	return m
}

// RunCLFTJEval measures CLFTJ full evaluation (auto TD).
func RunCLFTJEval(q *cq.Query, db *relation.DB, policy core.Policy) Measurement {
	var m Measurement
	plan, err := core.AutoPlan(q, db, core.AutoOptions{Counters: &m.Counters})
	if err != nil {
		return Measurement{Err: err}
	}
	m.Counters.Reset() // drop plan-selection accounting; measure the run
	start := time.Now()
	var n, sink int64
	plan.Eval(policy, func(mu []int64) bool {
		n++
		sink ^= mu[0]
		return true
	})
	_ = sink
	m.Duration = time.Since(start)
	m.Count = n
	return m
}

// RunYTD measures Yannakakis-over-TD count. Bag materialization and
// reduction are part of the measured time — they are the algorithm's
// join work, not index loading.
func RunYTD(q *cq.Query, db *relation.DB) Measurement {
	var m Measurement
	tree, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(len(q.Vars())))
	start := time.Now()
	e, err := yannakakis.New(q, db, tree, &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	m.Count = e.Count()
	m.Duration = time.Since(start)
	return m
}

// RunYTDEval measures Yannakakis-over-TD full evaluation.
func RunYTDEval(q *cq.Query, db *relation.DB) Measurement {
	var m Measurement
	tree, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(len(q.Vars())))
	start := time.Now()
	e, err := yannakakis.New(q, db, tree, &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	var n, sink int64
	e.Eval(func(tup []int64) bool {
		n++
		sink ^= tup[0]
		return true
	})
	_ = sink
	m.Count = n
	m.Duration = time.Since(start)
	return m
}

// RunPairwise measures the traditional pairwise hash-join baseline.
func RunPairwise(q *cq.Query, db *relation.DB) Measurement {
	var m Measurement
	start := time.Now()
	res, err := pairwise.Count(q, db, &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	m.Count = res.Count
	m.Duration = time.Since(start)
	return m
}

// RunGenericJoin measures the hash-based NPRR/GenericJoin worst-case
// optimal algorithm (the SYS1 stand-in: the paper's "DBMS using a worst
// case-optimal join algorithm as its join engine", §5.2.3). Index
// construction happens lazily inside the run, mirroring a system that
// builds hash structures per query.
func RunGenericJoin(q *cq.Query, db *relation.DB) Measurement {
	var m Measurement
	inst, err := genericjoin.Build(q, db, nil, &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	start := time.Now()
	m.Count = inst.Count()
	m.Duration = time.Since(start)
	return m
}

// graphs returns the SNAP stand-ins at the configured size.
func (c Config) graphs() []*dataset.Graph {
	if c.Quick {
		return []*dataset.Graph{
			named("wiki-Vote*", dataset.PreferentialAttachment(180, 3, 1001)),
			named("p2p-Gnutella04*", dataset.ErdosRenyi(240, 4.0/240, 1002)),
			quickCaGrQc(),
			named("ego-Facebook*", dataset.Community(130, 6, 0.2, 0.005, 1004)),
			named("ego-Twitter*", dataset.PreferentialAttachment(260, 4, 1005)),
		}
	}
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	return dataset.SNAPAll(s)
}

func named(name string, g *dataset.Graph) *dataset.Graph {
	g.Name = name
	return g
}

// quickCaGrQc is the single source of the Quick-scale ca-GrQc*
// generator, shared by the full suite and the E1 shortcut below so the
// two cannot drift.
func quickCaGrQc() *dataset.Graph {
	return named("ca-GrQc*", dataset.Community(160, 12, 0.16, 0.002, 1003))
}

// caGrQc returns the ca-GrQc* stand-in alone. E1 uses only this graph;
// generating the whole suite to index one entry dominated the driver's
// wall-clock at Quick scale (the hot-path overhaul's motivation applies
// to the harness too).
func (c Config) caGrQc() *dataset.Graph {
	if c.Quick {
		return quickCaGrQc()
	}
	return c.graphs()[2]
}

// pathGraphs returns the smaller wiki-Vote/ego-Facebook variants used by
// the {3–7}-path and {3–6}-cycle sweeps (Figs. 6–8): vanilla LFTJ's cost
// on long paths grows by an order of magnitude per hop, so the sweep
// sizes are chosen to keep the slowest baseline in the seconds range
// (the paper used 10-hour timeouts on server hardware instead).
func (c Config) pathGraphs() []*dataset.Graph {
	if c.Quick {
		return []*dataset.Graph{
			named("wiki-Vote*", dataset.TriadicPA(140, 3, 0.35, 1001)),
			named("ego-Facebook*", dataset.TriadicPA(110, 4, 0.7, 1004)),
			named("ca-GrQc*", dataset.CliqueUnion(150, 80, 10, 1.6, 1003)),
		}
	}
	return []*dataset.Graph{
		named("wiki-Vote* (small)", dataset.TriadicPA(280, 4, 0.35, 1001)),
		named("ego-Facebook* (small)", dataset.TriadicPA(200, 6, 0.7, 1004)),
		named("ca-GrQc* (small)", dataset.CliqueUnion(300, 160, 12, 1.6, 1003)),
	}
}

// imdb returns the IMDB stand-in at the harness size: small enough that
// the slowest baseline rows (vanilla LFTJ on the 6-cycle under a poor
// order, Fig. 13) stay in the tens of seconds.
func (c Config) imdb() *relation.DB {
	cfg := dataset.DefaultIMDB()
	cfg.Persons, cfg.Movies, cfg.Appearances = 800, 280, 3200
	if c.Quick {
		cfg.Persons, cfg.Movies, cfg.Appearances = 300, 90, 1200
	}
	return dataset.IMDBCast(cfg)
}

func itoa64(v int64) string { return fmt.Sprintf("%d", v) }
