package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/leapfrog"
	"repro/internal/queries"
	"repro/internal/relation"
)

// RunCLFTJParallel measures CLFTJ count sharded over policy.Workers
// goroutines (auto TD; selection and trie construction excluded from the
// timing, as in RunCLFTJ).
func RunCLFTJParallel(q *cq.Query, db *relation.DB, policy core.Policy) Measurement {
	plan, err := core.AutoPlan(q, db, core.AutoOptions{})
	return RunCLFTJPlan(plan, err, policy)
}

// RunCLFTJPlan measures one sharded count over an already-compiled plan
// (compileErr threads AutoPlan's error through, so sweep drivers can
// compile once and measure many runs). Accounting covers only the run.
func RunCLFTJPlan(plan *core.Plan, compileErr error, policy core.Policy) Measurement {
	if compileErr != nil {
		return Measurement{Err: compileErr}
	}
	var m Measurement
	start := time.Now()
	m.Count = plan.WithCounters(&m.Counters).CountParallel(policy).Count
	m.Duration = time.Since(start)
	return m
}

// RunLFTJParallel measures vanilla LFTJ count sharded over the given
// worker count (trie construction excluded from the timing).
func RunLFTJParallel(q *cq.Query, db *relation.DB, workers int) Measurement {
	var m Measurement
	inst, err := leapfrog.Build(q, db, q.Vars(), &m.Counters)
	if err != nil {
		return Measurement{Err: err}
	}
	m.Counters.Reset()
	start := time.Now()
	m.Count = leapfrog.ParallelCount(inst, workers)
	m.Duration = time.Since(start)
	return m
}

// ParallelSpeedup (E11) goes beyond the paper's single-core protocol: it
// sweeps the worker count of the sharded CLFTJ engine over the triangle,
// clique, path and cycle shapes and reports the speedup against the
// 1-worker (sequential) run. The root trie level is embarrassingly
// parallel, so on a W-core machine the clique workloads (no cacheable
// bags — pure compute) should approach W×, while cache-heavy shapes gain
// less once per-worker caches repeat work a shared cache would reuse.
func ParallelSpeedup(cfg Config) *Table {
	workerSweep := []int{1, 2, 4, 8}
	t := &Table{
		ID:     "E11 (parallel)",
		Title:  fmt.Sprintf("parallel CLFTJ count: speedup vs workers (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		Header: []string{"workload", "workers", "count", "time ms", "speedup vs 1 worker"},
	}
	var g *dataset.Graph
	if cfg.Quick {
		g = dataset.TriadicPA(150, 3, 0.4, 2101)
	} else {
		g = dataset.TriadicPA(400, 4, 0.4, 2101)
	}
	db := g.DB(false)
	workloads := []struct {
		name string
		q    *cq.Query
	}{
		{"triangle", queries.Clique(3)},
		{"4-clique", queries.Clique(4)},
		{"5-path", queries.Path(5)},
		{"5-cycle", queries.Cycle(5)},
	}
	for _, w := range workloads {
		// One compile per workload: the sweep isolates execution scaling,
		// and RunCLFTJPlan (like RunCLFTJParallel) never timed plan
		// selection — recompiling an identical plan per worker count only
		// wasted driver wall-clock.
		plan, perr := core.AutoPlan(w.q, db, core.AutoOptions{})
		base := RunCLFTJPlan(plan, perr, core.Policy{Workers: 1})
		for _, k := range workerSweep {
			m := base
			if k != 1 {
				m = RunCLFTJPlan(plan, perr, core.Policy{Workers: k})
			}
			t.Rows = append(t.Rows, []string{
				w.name, fmt.Sprintf("%d", k), itoa64(m.Count), m.ms(), m.Speedup(base),
			})
			if m.Err == nil && base.Err == nil && m.Count != base.Count {
				t.Notes = append(t.Notes, fmt.Sprintf("MISMATCH: %s at %d workers counted %d, sequential %d",
					w.name, k, m.Count, base.Count))
			}
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: near-linear scaling on the clique workloads up to the core count; speedups flatten at GOMAXPROCS",
		"per-worker caches trade reuse for zero synchronization — see DESIGN.md, \"Parallel execution\"")
	return t
}
