package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trie"
)

// PersistentRestart (E19) measures what the on-disk index snapshots
// (internal/store, docs/FORMAT.md) buy over rebuilding, in three
// phases on the E1 dataset:
//
//   - index acquisition: constructing the E tries from sorted tuples
//     (the cold path the registry pays on every miss) against mapping
//     the persisted .trie files (mmap + CRC sweep + structural
//     validation — no per-tuple work).
//   - first query: a full daemon restart through server.OpenEngine —
//     cold boot (load, snapshot, build, join) against warm boot (mmap,
//     WAL replay, open, join) of the same triangle query.
//   - budget thrash: a trie byte budget smaller than one resident
//     index, so every query re-acquires its tries; the memory-only
//     engine rebuilds each round where the persistent one re-opens.
func PersistentRestart(cfg Config) *Table {
	t := &Table{
		ID:     "E19 (persistence)",
		Title:  "persistent indices: cold build vs mmap warm open",
		Header: []string{"phase", "variant", "time ms", "speedup", "detail"},
	}
	// The E1 graph family; full scale sizes it up so the per-tuple
	// build/open asymmetry dominates the fixed syscall floor of an
	// mmap (a few tens of microseconds either way).
	g := cfg.caGrQc()
	if !cfg.Quick {
		g = dataset.CaGrQc(4)
	}
	db := g.DB(false)
	rel, err := db.Get("E")
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("SKIP: %v", err))
		return t
	}
	skip := func(stage string, err error) *Table {
		t.Notes = append(t.Notes, fmt.Sprintf("SKIP %s: %v", stage, err))
		return t
	}
	reps := 5
	rounds := 40
	if cfg.Quick {
		reps, rounds = 3, 15
	}
	// best reports the fastest of reps runs of f — the usual guard
	// against scheduler noise on a shared runner.
	best := func(f func() error) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(start); i == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}

	// Phase 1: index acquisition. Build both column orders of E the way
	// a registry miss does (permute + columnar build), persist them,
	// then time re-opening the same indices from disk.
	dir, err := os.MkdirTemp("", "cltj-e19-")
	if err != nil {
		return skip("index acquisition", err)
	}
	defer os.RemoveAll(dir)
	pdb, err := store.Open(dir)
	if err != nil {
		return skip("index acquisition", err)
	}
	if err := pdb.SaveRelation("E", rel, 0); err != nil {
		return skip("index acquisition", err)
	}
	perms := [][]int{{0, 1}, {1, 0}}
	var tries []*trie.Trie
	buildDur, err := best(func() error {
		tries = tries[:0]
		for _, p := range perms {
			permuted, err := rel.Permute(p)
			if err != nil {
				return err
			}
			tries = append(tries, trie.BuildParallel(permuted, nil, 1))
		}
		return nil
	})
	if err != nil {
		return skip("index acquisition", err)
	}
	var trieBytes, minTrieBytes int64
	for i, p := range perms {
		if !pdb.SaveTrie(rel, p, tries[i]) {
			return skip("index acquisition", fmt.Errorf("trie perm=%v not persisted", p))
		}
		b := tries[i].MemoryBytes()
		trieBytes += b
		if minTrieBytes == 0 || b < minTrieBytes {
			minTrieBytes = b
		}
	}
	pdb.Close()

	pdb, err = store.Open(dir)
	if err != nil {
		return skip("index acquisition", err)
	}
	mapped, _, _, found, err := pdb.OpenRelation("E", -1)
	if err != nil || !found {
		return skip("index acquisition", fmt.Errorf("reopen E: found=%v err=%v", found, err))
	}
	openDur, err := best(func() error {
		for _, p := range perms {
			if pdb.OpenTrie(mapped, p) == nil {
				return fmt.Errorf("OpenTrie perm=%v returned nil", p)
			}
		}
		return nil
	})
	pdb.Close()
	if err != nil {
		return skip("index acquisition", err)
	}
	build, open := Measurement{Duration: buildDur}, Measurement{Duration: openDur}
	t.Rows = append(t.Rows,
		[]string{"index acquisition", "cold build", build.ms(), "baseline",
			fmt.Sprintf("E in 2 column orders, %d tuples, %d B resident", rel.Len(), trieBytes)},
		[]string{"index acquisition", "mmap open", open.ms(), open.Speedup(build),
			"CRC-verified zero-copy map of the persisted .trie files"},
	)

	// Phase 2: full restart through the engine, timing boot + first
	// query together — the daemon-visible latency the snapshots exist
	// to cut.
	loader := func() (*relation.DB, error) { return db, nil }
	cycle := queries.Cycle(3).String()
	engDir, err := os.MkdirTemp("", "cltj-e19-eng-")
	if err != nil {
		return skip("first query", err)
	}
	defer os.RemoveAll(engDir)
	engCfg := server.Config{Workers: 1, DataDir: engDir}

	start := time.Now()
	e, _, err := server.OpenEngine(engCfg, loader)
	if err != nil {
		return skip("first query", err)
	}
	coldResp, err := e.Do(server.Request{Query: cycle})
	coldBoot := Measurement{Duration: time.Since(start)}
	e.Close()
	if err != nil {
		return skip("first query", err)
	}

	start = time.Now()
	e, warmed, err := server.OpenEngine(engCfg, loader)
	if err != nil {
		return skip("first query", err)
	}
	warmResp, err := e.Do(server.Request{Query: cycle})
	warmBoot := Measurement{Duration: time.Since(start)}
	e.Close()
	if err != nil {
		return skip("first query", err)
	}
	if !warmed || warmResp.Count != coldResp.Count || warmResp.Stats.Counters.TrieBuilds != 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("MISMATCH: warm=%v count=%d (cold %d) builds=%d, want a warm boot answering build-free",
			warmed, warmResp.Count, coldResp.Count, warmResp.Stats.Counters.TrieBuilds))
	}
	t.Rows = append(t.Rows,
		[]string{"first query", "cold boot", coldBoot.ms(), "baseline",
			fmt.Sprintf("load+snapshot+build+join triangle, builds=%d", coldResp.Stats.Counters.TrieBuilds)},
		[]string{"first query", "warm boot", warmBoot.ms(), warmBoot.Speedup(coldBoot),
			fmt.Sprintf("mmap+replay+open+join, builds=%d opens=%d", warmResp.Stats.Counters.TrieBuilds, warmResp.Stats.Counters.TrieOpens)},
	)

	// Phase 3: the dataset outgrows the trie byte budget (budget <
	// one index), so residency never helps: every round re-acquires.
	budget := minTrieBytes / 2
	if budget == 0 {
		budget = 1
	}
	// The V-shape needs E in both column orders but joins in
	// microseconds, so the round cost is almost pure index
	// re-acquisition — the quantity under test.
	tri := "E(x,y), E(z,y)"
	runRounds := func(e *server.Engine) (int64, time.Duration, error) {
		var count int64
		start := time.Now()
		for i := 0; i < rounds; i++ {
			resp, err := e.Do(server.Request{Query: tri})
			if err != nil {
				return 0, 0, err
			}
			count = resp.Count
		}
		return count, time.Since(start), nil
	}

	// PlanCache disabled: a cached compiled plan embeds its tries and
	// would keep answering after the registry evicts them, hiding the
	// re-acquisition cost this phase exists to measure.
	mem := server.NewEngine(db, server.Config{Workers: 1, TrieBudget: budget, PlanCache: -1})
	memCount, memDur, err := runRounds(mem)
	memStats := mem.Stats()
	mem.Close()
	if err != nil {
		return skip("budget thrash", err)
	}

	thrashDir, err := os.MkdirTemp("", "cltj-e19-thrash-")
	if err != nil {
		return skip("budget thrash", err)
	}
	defer os.RemoveAll(thrashDir)
	// Prime unbudgeted so the write-behind persists every index the
	// workload needs, then restart under the budget.
	prime, _, err := server.OpenEngine(server.Config{Workers: 1, DataDir: thrashDir}, loader)
	if err != nil {
		return skip("budget thrash", err)
	}
	if _, err := prime.Do(server.Request{Query: tri}); err != nil {
		prime.Close()
		return skip("budget thrash", err)
	}
	prime.Close()
	per, _, err := server.OpenEngine(server.Config{Workers: 1, DataDir: thrashDir, TrieBudget: budget, PlanCache: -1}, loader)
	if err != nil {
		return skip("budget thrash", err)
	}
	perCount, perDur, err := runRounds(per)
	perStats := per.Stats()
	per.Close()
	if err != nil {
		return skip("budget thrash", err)
	}
	if perCount != memCount {
		t.Notes = append(t.Notes, fmt.Sprintf("MISMATCH: persistent thrash counted %d, memory-only %d", perCount, memCount))
	}
	memM, perM := Measurement{Duration: memDur}, Measurement{Duration: perDur}
	t.Rows = append(t.Rows,
		[]string{"budget thrash", "rebuild (memory)", memM.ms(), "baseline",
			fmt.Sprintf("%d V-queries, budget=%d B, rebuilds=%d", rounds, budget, memStats.Registry.Builds-memStats.Registry.Opens)},
		[]string{"budget thrash", "reopen (mmap)", perM.ms(), perM.Speedup(memM),
			fmt.Sprintf("%d V-queries, budget=%d B, opens=%d rebuilds=%d", rounds, budget, perStats.Registry.Opens, perStats.Registry.Builds-perStats.Registry.Opens)},
	)
	t.Notes = append(t.Notes,
		"expected shape: mmap open >= 10x faster than cold build (the open is a CRC sweep + structural check; the build permutes, sorts and scans every tuple)",
		"warm boot answers its first query with builds=0 — the indices come back by reference, not reconstruction (DESIGN.md, \"Persistence and warm restarts\")",
	)
	return t
}
