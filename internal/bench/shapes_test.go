package bench

// Shape tests assert the qualitative results of the paper's evaluation
// on deterministic measures (memory-access counts, never wall time), at
// Quick scale: who wins and roughly how. These are the claims the
// repository's EXPERIMENTS.md records; the tests keep them true as the
// code evolves.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/queries"
)

func TestShapeCLFTJBeatsLFTJOnSkewedPaths(t *testing.T) {
	// Fig. 6's trend: on a skewed graph, CLFTJ's memory accesses are far
	// below LFTJ's for long paths, and the gap widens with path length.
	g := dataset.TriadicPA(200, 4, 0.4, 1001)
	db := g.DB(false)
	prevRatio := 0.0
	for _, k := range []int{4, 5, 6} {
		q := queries.Path(k)
		lftj := RunLFTJ(q, db, nil)
		clftj := RunCLFTJ(q, db, core.Policy{})
		if lftj.Count != clftj.Count {
			t.Fatalf("%d-path: counts differ", k)
		}
		ratio := float64(lftj.Counters.Total()) / float64(clftj.Counters.Total())
		if k >= 5 && ratio < 2 {
			t.Errorf("%d-path: CLFTJ saves only %.2fx accesses", k, ratio)
		}
		if ratio < prevRatio {
			t.Errorf("%d-path: access-saving ratio %.1fx below %d-path's %.1fx (should grow)",
				k, ratio, k-1, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestShapeIntroOrderingOnClusteredGraph(t *testing.T) {
	// §1's claim: on the collaboration-style graph, 5-cycle count costs
	// LFTJ > YTD > CLFTJ in memory accesses.
	g := dataset.CliqueUnion(150, 80, 10, 1.6, 1003)
	db := g.DB(false)
	q := queries.Cycle(5)
	lftj := RunLFTJ(q, db, nil)
	ytd := RunYTD(q, db)
	clftj := RunCLFTJ(q, db, core.Policy{})
	if err := verifyCounts(lftj, ytd, clftj); err != nil {
		t.Fatal(err)
	}
	if !(lftj.Counters.Total() > ytd.Counters.Total()) {
		t.Errorf("LFTJ accesses (%d) not above YTD (%d)", lftj.Counters.Total(), ytd.Counters.Total())
	}
	if !(ytd.Counters.Total() > clftj.Counters.Total()) {
		t.Errorf("YTD accesses (%d) not above CLFTJ (%d)", ytd.Counters.Total(), clftj.Counters.Total())
	}
}

func TestShapeTriangleHasNoDecomposition(t *testing.T) {
	// §5.3.1: on 3-cycles CLFTJ is effectively LFTJ — identical trie
	// traffic, no cache activity.
	g := dataset.TriadicPA(150, 3, 0.4, 7)
	db := g.DB(false)
	q := queries.Cycle(3)
	lftj := RunLFTJ(q, db, nil)
	clftj := RunCLFTJ(q, db, core.Policy{})
	if lftj.Count != clftj.Count {
		t.Fatal("counts differ")
	}
	if clftj.Counters.CacheHits+clftj.Counters.CacheMisses != 0 {
		t.Errorf("triangle query probed caches (%d lookups)",
			clftj.Counters.CacheHits+clftj.Counters.CacheMisses)
	}
	if clftj.Counters.TrieAccesses != lftj.Counters.TrieAccesses {
		t.Errorf("triangle trie accesses differ: CLFTJ %d vs LFTJ %d",
			clftj.Counters.TrieAccesses, lftj.Counters.TrieAccesses)
	}
}

func TestShapeCacheStructuresOrdering(t *testing.T) {
	// Fig. 11: per cached intermediate result, 1-dimensional adhesions
	// achieve higher hit rates than the 2-dimensional CS3 on the lollipop
	// (the paper's "caches of dimension one are much more effective").
	g := dataset.TriadicPA(260, 4, 0.45, 1005)
	db := g.DB(false)
	q := queries.Lollipop(3, 2)
	numVars := len(q.Vars())
	run := func(name string) Measurement {
		tree := lollipopTDs()[name]
		order := orderNames(q, tree.CompatibleOrder(numVars))
		return RunCLFTJWith(q, db, tree, order, core.Policy{})
	}
	cs2 := run("CS2")
	cs3 := run("CS3")
	if err := verifyCounts(cs2, cs3); err != nil {
		t.Fatal(err)
	}
	if !(cs2.Counters.Total() < cs3.Counters.Total()) {
		t.Errorf("CS2 accesses (%d) not below CS3 (%d)", cs2.Counters.Total(), cs3.Counters.Total())
	}
}

func TestShapeIMDBPersonVsMovieCaches(t *testing.T) {
	// Fig. 13/14: person-keyed TD1 needs far fewer accesses than the
	// isomorphic movie-keyed TD2.
	cfg := Config{Quick: true}
	db := cfg.imdb()
	q := queries.IMDBCycle(2)
	numVars := len(q.Vars())
	td1, td2 := imdbTDs(2, q)
	m1 := RunCLFTJWith(q, db, td1, orderNames(q, td1.CompatibleOrder(numVars)), core.Policy{})
	m2 := RunCLFTJWith(q, db, td2, orderNames(q, td2.CompatibleOrder(numVars)), core.Policy{})
	if err := verifyCounts(m1, m2); err != nil {
		t.Fatal(err)
	}
	if !(m1.Counters.Total() < m2.Counters.Total()) {
		t.Errorf("TD1 accesses (%d) not below TD2 (%d)", m1.Counters.Total(), m2.Counters.Total())
	}
}

func TestShapeBoundedCachesHelpMonotonically(t *testing.T) {
	// Fig. 10: growing the capacity never increases trie accesses (more
	// reuse can only skip more work) on the IMDB workload.
	cfg := Config{Quick: true}
	db := cfg.imdb()
	q := queries.IMDBCycle(2)
	prev := int64(-1)
	for _, capacity := range []int{0, 8, 64, 512} {
		pol := core.Policy{Capacity: capacity}
		if capacity == 0 {
			pol = core.Policy{Disabled: true}
		}
		m := RunCLFTJ(q, db, pol)
		if prev >= 0 && m.Counters.TrieAccesses > prev+prev/10 {
			t.Errorf("capacity %d: trie accesses %d regressed above %d",
				capacity, m.Counters.TrieAccesses, prev)
		}
		prev = m.Counters.TrieAccesses
	}
}
