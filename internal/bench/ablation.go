package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/queries"
	"repro/internal/td"
)

// Ablation (E10) goes beyond the paper's tables: it isolates the design
// choices DESIGN.md calls out — cache policy knobs (support threshold,
// eviction discipline) and the decomposition source (selected vs
// min-fill vs singleton) — on one skewed workload, so that each
// mechanism's individual contribution is visible.
func Ablation(cfg Config) *Table {
	g := cfg.graphs()[4] // ego-Twitter*: large and skewed
	db := g.DB(false)
	q := queries.Path(5)
	t := &Table{
		ID:     "E10 (ablation)",
		Title:  fmt.Sprintf("design-choice ablation, 5-path count on %s", g.Name),
		Header: []string{"axis", "variant", "count", "time ms", "hit rate", "entries", "evictions"},
	}

	addPolicy := func(axis, variant string, pol core.Policy) Measurement {
		m := RunCLFTJ(q, db, pol)
		t.Rows = append(t.Rows, []string{
			axis, variant, itoa64(m.Count), m.ms(),
			fmt.Sprintf("%.2f", m.Counters.HitRate()),
			itoa64(m.Counters.CacheInserts - m.Counters.CacheEvictions),
			itoa64(m.Counters.CacheEvictions),
		})
		return m
	}

	// Axis 1: support threshold (cache from the (k+1)-th occurrence).
	for _, thr := range []int{0, 1, 2, 4} {
		addPolicy("support", fmt.Sprintf("threshold=%d", thr), core.Policy{SupportThreshold: thr})
	}

	// Axis 2: eviction discipline under a tight shared capacity.
	capacity := 64
	if !cfg.Quick {
		capacity = 512
	}
	for _, mode := range []struct {
		name string
		m    core.EvictionMode
	}{{"fifo", core.EvictFIFO}, {"lru", core.EvictLRU}, {"reject-new", core.EvictNone}} {
		addPolicy("eviction", fmt.Sprintf("%s cap=%d", mode.name, capacity),
			core.Policy{Capacity: capacity, Eviction: mode.m})
	}

	// Axis 3: decomposition source under unbounded caches.
	numVars := len(q.Vars())
	selected, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(numVars))
	addTD := func(variant string, tree *td.TD) {
		order := orderNames(q, tree.CompatibleOrder(numVars))
		m := RunCLFTJWith(q, db, tree, order, core.Policy{})
		t.Rows = append(t.Rows, []string{
			"decomposition", variant, itoa64(m.Count), m.ms(),
			fmt.Sprintf("%.2f", m.Counters.HitRate()),
			itoa64(m.Counters.CacheInserts - m.Counters.CacheEvictions), "0",
		})
	}
	addTD(fmt.Sprintf("selected (%d bags)", selected.N()), selected)
	mf := td.MinFillDecompose(q)
	addTD(fmt.Sprintf("min-fill (%d bags)", mf.N()), mf)
	all := make([]int, numVars)
	for i := range all {
		all[i] = i
	}
	addTD("singleton (= LFTJ)", td.MustNew([][]int{all}, []int{-1}))

	t.Notes = append(t.Notes,
		"support>0 trades recomputation for memory: fewer entries, more misses",
		"under tight capacity LRU and FIFO behave similarly on this workload; reject-new freezes the early working set",
		"the singleton decomposition has no cache sites and reproduces LFTJ exactly")
	return t
}
