package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
)

// IncrementalUpdates (E13) measures the incremental-update subsystem
// along its two axes. Part one is the patch-vs-rebuild crossover: for a
// sweep of delta sizes, the time from applying a delta to answering the
// next query on a warm engine, with copy-on-write patched indices
// versus a fresh engine that rebuilds from scratch — and a consistency
// check that both report the same count. Part two is the live-traffic
// ablation: queries/sec under a background updater applying deltas at
// increasing rates, showing what continuous mutation costs the query
// stream when indices are patched rather than rebuilt.
func IncrementalUpdates(cfg Config) *Table {
	var g *dataset.Graph
	deltas := []int{1, 8, 64, 512}
	repeats := 4
	if cfg.Quick {
		g = dataset.TriadicPA(140, 3, 0.4, 3301)
		deltas = []int{1, 8, 64}
		repeats = 2
	} else {
		g = dataset.TriadicPA(400, 4, 0.4, 3301)
	}
	const query = "E(x,y), E(y,z), E(x,z)"

	t := &Table{
		ID:     "E13 (updates)",
		Title:  "incremental updates: patch-vs-rebuild crossover and update-rate vs query-throughput",
		Header: []string{"mode", "delta", "update+query ms", "count", "builds", "patches"},
	}

	// Part 1: crossover. The patched engine never compacts (so every
	// delta below the sweep maximum stays a patch); the rebuild arm is
	// a fresh engine per version, the cost a restart-to-update
	// deployment pays.
	for _, k := range deltas {
		db := g.DB(false)
		patched := server.NewEngine(db, server.Config{Workers: 1, CompactFraction: 1e9})
		if _, err := patched.Do(server.Request{Query: query}); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR warm (delta=%d): %v", k, err))
			continue
		}
		next := int64(10_000)
		mkDelta := func() ([][]int64, [][]int64) {
			ins := make([][]int64, 0, k)
			for i := 0; i < k; i++ {
				ins = append(ins, []int64{next, next + 1})
				next++
			}
			rel, _ := patched.DB().Get("E")
			del := [][]int64{append([]int64(nil), rel.Tuple(int(next)%rel.Len())...)}
			return ins, del
		}

		var patchedMS, rebuildMS float64
		var patchedCount, rebuildCount int64
		var builds, patches int64
		ok := true
		for r := 0; r < repeats && ok; r++ {
			ins, del := mkDelta()

			start := time.Now()
			if _, err := patched.Update(server.UpdateRequest{Relation: "E", Inserts: ins, Deletes: del}); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR update (delta=%d): %v", k, err))
				ok = false
				break
			}
			resp, err := patched.Do(server.Request{Query: query})
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR query (delta=%d): %v", k, err))
				ok = false
				break
			}
			patchedMS += float64(time.Since(start).Microseconds()) / 1000
			patchedCount = resp.Count
			builds += resp.Stats.Counters.TrieBuilds
			patches += resp.Stats.Counters.TriePatches

			// Rebuild arm: cold engine over the same snapshot.
			start = time.Now()
			fresh := server.NewEngine(patched.DB(), server.Config{Workers: 1})
			fresp, err := fresh.Do(server.Request{Query: query})
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR rebuild (delta=%d): %v", k, err))
				ok = false
				break
			}
			rebuildMS += float64(time.Since(start).Microseconds()) / 1000
			rebuildCount = fresp.Count
		}
		if !ok {
			continue
		}
		if patchedCount != rebuildCount {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"ERROR: patched count %d != rebuild count %d at delta=%d", patchedCount, rebuildCount, k))
		}
		t.Rows = append(t.Rows, []string{
			"patch", fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", patchedMS/float64(repeats)),
			itoa64(patchedCount), itoa64(builds), itoa64(patches),
		})
		t.Rows = append(t.Rows, []string{
			"rebuild", fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", rebuildMS/float64(repeats)),
			itoa64(rebuildCount), "-", "-",
		})
	}

	// Part 2: update-rate vs query throughput. A background updater
	// applies small deltas back-to-back with a pause between them; the
	// sweep tightens the pause while clients hammer the triangle count.
	intervals := []time.Duration{0, 2 * time.Millisecond, 500 * time.Microsecond}
	clients := 4
	window := 400 * time.Millisecond
	if cfg.Quick {
		intervals = []time.Duration{0, 2 * time.Millisecond}
		clients = 2
		window = 120 * time.Millisecond
	}
	for _, interval := range intervals {
		db := g.DB(false)
		e := server.NewEngine(db, server.Config{Workers: 1})
		if _, err := e.Do(server.Request{Query: query}); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR warm (interval=%s): %v", interval, err))
			continue
		}
		var stop atomic.Bool
		var wg sync.WaitGroup
		if interval > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				next := int64(50_000)
				for !stop.Load() {
					_, err := e.Update(server.UpdateRequest{
						Relation: "E",
						Inserts:  [][]int64{{next, next + 1}},
						Deletes:  [][]int64{{next - 40_000, next - 39_999}},
					})
					if err != nil {
						return
					}
					next++
					time.Sleep(interval)
				}
			}()
		}
		var queriesDone atomic.Int64
		var errOnce sync.Once
		var firstErr error
		deadline := time.Now().Add(window)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					if _, err := e.Do(server.Request{Query: query}); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					queriesDone.Add(1)
				}
			}()
		}
		time.Sleep(window)
		stop.Store(true)
		wg.Wait()
		if firstErr != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR under load (interval=%s): %v", interval, firstErr))
			continue
		}
		s := e.Stats()
		label := "none"
		if interval > 0 {
			label = interval.String()
		}
		t.Rows = append(t.Rows, []string{
			"live/" + label, itoa64(s.Updates),
			fmt.Sprintf("%.0f qps", float64(queriesDone.Load())/window.Seconds()),
			itoa64(int64(s.Queries)), itoa64(s.Registry.Builds - s.Registry.Patches), itoa64(s.Registry.Patches),
		})
	}
	t.Notes = append(t.Notes,
		"patch: warm engine, delta applied in place, next query served by copy-on-write patched indices",
		"rebuild: fresh engine over the same snapshot — every index rebuilt, the restart-to-update cost",
		"live/<interval>: background updater applying 1-tuple deltas at that pause while clients query",
	)
	return t
}
