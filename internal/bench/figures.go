package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/queries"
	"repro/internal/relation"
)

// IntroMemoryAccesses reproduces the §1 motivating analysis: memory
// accesses of a 5-cycle count on the ca-GrQc stand-in for LFTJ, YTD and
// CLFTJ. The paper reports 45·10^9 / 16·10^9 / 1.4·10^9; at our scale the
// absolute numbers shrink but the ordering LFTJ ≫ YTD > CLFTJ must hold.
func IntroMemoryAccesses(cfg Config) *Table {
	g := cfg.caGrQc()
	db := g.DB(false)
	q := queries.Cycle(5)

	lftj := RunLFTJ(q, db, nil)
	ytd := RunYTD(q, db)
	clftj := RunCLFTJ(q, db, core.Policy{})

	t := &Table{
		ID:     "E1 (§1)",
		Title:  fmt.Sprintf("memory accesses, count 5-cycle on %s (%d edges)", g.Name, g.NumEdges()),
		Header: []string{"algorithm", "count", "mem accesses", "vs LFTJ", "time ms"},
	}
	base := float64(lftj.Counters.Total())
	rowFor := func(name string, m Measurement) []string {
		ratio := "baseline"
		if acc := m.Counters.Total(); acc > 0 && base > 0 && name != "LFTJ" {
			ratio = fmt.Sprintf("%.1fx fewer", base/float64(acc))
		}
		return []string{name, itoa64(m.Count), itoa64(m.Counters.Total()), ratio, m.ms()}
	}
	t.Rows = append(t.Rows, rowFor("LFTJ", lftj), rowFor("YTD", ytd), rowFor("CLFTJ", clftj))
	return t
}

// Figure5 reproduces Fig. 5: count runtimes of 5-path, 5-cycle,
// 5-rand(0.4) and 5-rand(0.6) across the SNAP stand-ins for LFTJ, CLFTJ
// and YTD.
func Figure5(cfg Config) *Table {
	qs := []struct {
		name string
		q    *cq.Query
	}{
		{"5-path", queries.Path(5)},
		{"5-cycle", queries.Cycle(5)},
		{"5-rand(0.4)", queries.Random(5, 0.4, 41)},
		{"5-rand(0.6)", queries.Random(5, 0.6, 42)},
	}
	t := &Table{
		ID:     "E2 (Fig. 5)",
		Title:  "count runtimes (ms), 5-variable queries across datasets",
		Header: []string{"dataset", "query", "count", "LFTJ", "CLFTJ", "YTD", "CLFTJ/LFTJ", "CLFTJ/YTD"},
	}
	for _, g := range cfg.graphs() {
		db := g.DB(false)
		for _, qc := range qs {
			lftj := RunLFTJ(qc.q, db, nil)
			clftj := RunCLFTJ(qc.q, db, core.Policy{})
			ytd := RunYTD(qc.q, db)
			t.Rows = append(t.Rows, []string{
				g.Name, qc.name, itoa64(clftj.Count),
				lftj.ms(), clftj.ms(), ytd.ms(),
				clftj.Speedup(lftj), clftj.Speedup(ytd),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: CLFTJ fastest on skewed datasets (wiki-Vote*, ego-Twitter*); gains moderate on the balanced p2p-Gnutella04*")
	return t
}

// Figure6 reproduces Fig. 6: count runtimes of {3–7}-path queries on the
// wiki-Vote and ego-Facebook stand-ins, algorithms plus the pairwise
// (PostgreSQL-style) baseline.
func Figure6(cfg Config) *Table {
	maxK := 7
	if cfg.Quick {
		maxK = 6
	}
	t := &Table{
		ID:     "E3 (Fig. 6)",
		Title:  "count runtimes (ms), {3–7}-path queries",
		Header: []string{"dataset", "query", "count", "LFTJ", "CLFTJ", "YTD", "GJ (SYS1*)", "pairwise", "CLFTJ/LFTJ", "CLFTJ/YTD"},
	}
	for _, g := range cfg.pathGraphs() {
		db := g.DB(false)
		for k := 3; k <= maxK; k++ {
			q := queries.Path(k)
			lftj := RunLFTJ(q, db, nil)
			clftj := RunCLFTJ(q, db, core.Policy{})
			ytd := RunYTD(q, db)
			gj := RunGenericJoin(q, db)
			// The pairwise baseline materializes all (k-1)-hop prefixes;
			// past 5-path that exceeds memory, as PostgreSQL's timeouts
			// do in the paper's Fig. 6.
			pw := Measurement{Err: errMemoryBound}
			if k <= 5 {
				pw = RunPairwise(q, db)
			}
			pwCell := pw.ms()
			if pw.Err == errMemoryBound {
				pwCell = "mem"
			}
			t.Rows = append(t.Rows, []string{
				g.Name, fmt.Sprintf("%d-path", k), itoa64(clftj.Count),
				lftj.ms(), clftj.ms(), ytd.ms(), gj.ms(), pwCell,
				clftj.Speedup(lftj), clftj.Speedup(ytd),
			})
		}
	}
	t.Notes = append(t.Notes, "paper shape: CLFTJ's speedup over LFTJ grows with path length; CLFTJ beats YTD throughout",
		"pairwise rows marked 'mem' skip runs whose materialized intermediates exceed memory (PGSQL times out there in the paper)")
	return t
}

// Figure7 reproduces Fig. 7: count runtimes of {3–6}-cycle queries on
// the wiki-Vote and ego-Facebook stand-ins.
func Figure7(cfg Config) *Table {
	maxK := 6
	if cfg.Quick {
		maxK = 5
	}
	t := &Table{
		ID:     "E4 (Fig. 7)",
		Title:  "count runtimes (ms), {3–6}-cycle queries",
		Header: []string{"dataset", "query", "count", "LFTJ", "CLFTJ", "YTD", "GJ (SYS1*)", "pairwise", "CLFTJ/LFTJ"},
	}
	for _, g := range cfg.pathGraphs() {
		db := g.DB(false)
		for k := 3; k <= maxK; k++ {
			q := queries.Cycle(k)
			lftj := RunLFTJ(q, db, nil)
			clftj := RunCLFTJ(q, db, core.Policy{})
			ytd := RunYTD(q, db)
			gj := RunGenericJoin(q, db)
			pw := RunPairwise(q, db)
			t.Rows = append(t.Rows, []string{
				g.Name, fmt.Sprintf("%d-cycle", k), itoa64(clftj.Count),
				lftj.ms(), clftj.ms(), ytd.ms(), gj.ms(), pw.ms(),
				clftj.Speedup(lftj),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: 3-cycle (triangle) admits no decomposition, so CLFTJ == LFTJ there; gains appear from 4-cycle up")
	return t
}

// Figure8 reproduces Fig. 8: full-evaluation runtimes of {3–4}-path and
// {3–5}-cycle queries (results consumed, not stored).
func Figure8(cfg Config) *Table {
	t := &Table{
		ID:     "E5 (Fig. 8)",
		Title:  "full query evaluation runtimes (ms)",
		Header: []string{"dataset", "query", "results", "LFTJ", "CLFTJ", "YTD", "CLFTJ/LFTJ", "CLFTJ/YTD"},
	}
	var qs []struct {
		name string
		q    *cq.Query
	}
	for k := 3; k <= 4; k++ {
		qs = append(qs, struct {
			name string
			q    *cq.Query
		}{fmt.Sprintf("%d-path", k), queries.Path(k)})
	}
	for k := 3; k <= 5; k++ {
		qs = append(qs, struct {
			name string
			q    *cq.Query
		}{fmt.Sprintf("%d-cycle", k), queries.Cycle(k)})
	}
	for _, g := range cfg.pathGraphs() {
		db := g.DB(false)
		for _, qc := range qs {
			lftj := RunLFTJEval(qc.q, db)
			clftj := RunCLFTJEval(qc.q, db, core.Policy{})
			ytd := RunYTDEval(qc.q, db)
			t.Rows = append(t.Rows, []string{
				g.Name, qc.name, itoa64(clftj.Count),
				lftj.ms(), clftj.ms(), ytd.ms(),
				clftj.Speedup(lftj), clftj.Speedup(ytd),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: evaluation gains are smaller than count gains (output must be produced either way), largest on 5-cycle")
	return t
}

// Figure9 reproduces Fig. 9: full-evaluation runtimes of random-graph
// queries 5-rand(0.4) and 5-rand(0.6).
func Figure9(cfg Config) *Table {
	t := &Table{
		ID:     "E6 (Fig. 9)",
		Title:  "full evaluation runtimes (ms), random pattern queries",
		Header: []string{"dataset", "query", "results", "LFTJ", "CLFTJ", "YTD", "CLFTJ/LFTJ"},
	}
	qs := []struct {
		name string
		q    *cq.Query
	}{
		{"5-rand(0.4)", queries.Random(5, 0.4, 91)},
		{"5-rand(0.6)", queries.Random(5, 0.6, 92)},
	}
	for _, g := range cfg.graphs() {
		db := g.DB(false)
		for _, qc := range qs {
			lftj := RunLFTJEval(qc.q, db)
			clftj := RunCLFTJEval(qc.q, db, core.Policy{})
			ytd := RunYTDEval(qc.q, db)
			t.Rows = append(t.Rows, []string{
				g.Name, qc.name, itoa64(clftj.Count),
				lftj.ms(), clftj.ms(), ytd.ms(),
				clftj.Speedup(lftj),
			})
		}
	}
	return t
}

// verifyCounts cross-checks algorithm agreement while generating a
// figure; experiment tables should never publish disagreeing numbers.
func verifyCounts(ms ...Measurement) error {
	var ref *Measurement
	for i := range ms {
		if ms[i].Err != nil {
			continue
		}
		if ref == nil {
			ref = &ms[i]
			continue
		}
		if ms[i].Count != ref.Count {
			return fmt.Errorf("bench: engines disagree: %d vs %d", ms[i].Count, ref.Count)
		}
	}
	return nil
}

// orderNames converts variable indices to names under q.Vars().
func orderNames(q *cq.Query, orderIdx []int) []string {
	qvars := q.Vars()
	out := make([]string, len(orderIdx))
	for d, xi := range orderIdx {
		out[d] = qvars[xi]
	}
	return out
}

// buildInstance compiles a leapfrog instance without accounting, for
// order-cost estimation in the figures.
func buildInstance(q *cq.Query, db *relation.DB, order []string) (*leapfrog.Instance, error) {
	return leapfrog.Build(q, db, order, nil)
}
