package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trie"
)

// Planner (E17) pits the planning strategies of core.AutoPlan against
// each other on two axes: what planning costs (wall-time per AutoPlan
// call, trie builds amortized away through a shared registry so the
// number isolates TD selection + ordering) and what the resulting plan
// costs to execute (trie accesses of one count run). The cost-based
// planner probes the data — skew scans plus one EstimateOrderCost trie
// walk per candidate decomposition — while the greedy planner ranks
// variables from the query pattern alone in O(vars·atoms), so the
// planning-time spread is the price of statistics and the accesses
// spread is what those statistics actually bought. The adaptive arm runs
// through the server engine on a workload whose middle third flips the
// (execution-only, cache-key-invariant) NoCache switch: the observed
// traffic diverges from the plan's baseline, the engine re-plans, and
// the replans column shows the feedback loop firing — on the stable
// thirds it stays silent, which is the other half of the contract.
func Planner(cfg Config) *Table {
	repeats := 30
	var g *dataset.Graph
	if cfg.Quick {
		g = dataset.TriadicPA(120, 3, 0.4, 4177)
		repeats = 10
	} else {
		g = dataset.TriadicPA(300, 4, 0.4, 4177)
	}
	db := g.DB(false)

	shapes := []struct {
		name string
		q    *cq.Query
	}{
		{"triangle", queries.Clique(3)},
		{"4-cycle", queries.Cycle(4)},
		{"5-path", queries.Path(5)},
		{"lollipop(3,2)", queries.Lollipop(3, 2)},
	}

	t := &Table{
		ID:     "E17 (planner)",
		Title:  "join ordering: planning time and plan quality, cost vs greedy vs adaptive",
		Header: []string{"query", "arm", "plan µs", "speedup", "run accesses", "vs cost", "replans"},
	}

	// One shared registry across all arms: tries depend only on
	// (relation, permutation), so after the first warm-up build every
	// AutoPlan call — cost-model probes included — draws resident
	// indices and the timed loop measures planning proper.
	reg := trie.NewRegistry(0)

	// arm plans repeatedly under one strategy (selection only, the part
	// the strategies differ on) and then executes one compiled plan with
	// fresh accounting.
	arm := func(q *cq.Query, ord core.Orderer) (planUS float64, accesses int64, err error) {
		if _, err = core.AutoPlan(q, db, core.AutoOptions{Orderer: ord, Tries: reg}); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for i := 0; i < repeats; i++ {
			if _, _, err = core.AutoSelect(q, db, core.AutoOptions{Orderer: ord, Tries: reg}); err != nil {
				return 0, 0, err
			}
		}
		planUS = float64(time.Since(start).Microseconds()) / float64(repeats)
		var c stats.Counters
		plan, err := core.AutoPlan(q, db, core.AutoOptions{Orderer: ord, Tries: reg, Counters: &c})
		if err != nil {
			return 0, 0, err
		}
		c.Reset() // drop plan-selection accounting; measure the run
		plan.Count(core.Policy{})
		return planUS, c.TrieAccesses, nil
	}

	pct := func(v, base int64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.0f%%", 100*float64(v-base)/float64(base))
	}

	for _, s := range shapes {
		costUS, costAcc, err := arm(s.q, core.OrdererCost)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s cost: %v", s.name, err))
			continue
		}
		greedyUS, greedyAcc, err := arm(s.q, core.OrdererGreedy)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s greedy: %v", s.name, err))
			continue
		}
		t.Rows = append(t.Rows,
			[]string{s.name, "cost", fmt.Sprintf("%.1f", costUS), "1.0x",
				itoa64(costAcc), "+0%", "0"},
			[]string{s.name, "greedy", fmt.Sprintf("%.1f", greedyUS),
				fmt.Sprintf("%.1fx", costUS/greedyUS), itoa64(greedyAcc), pct(greedyAcc, costAcc), "0"})

		// Adaptive arm: full service path. The middle third of the
		// workload forces divergence (NoCache degenerates CLFTJ to LFTJ
		// under the same plan-cache key); the trailing third settles on
		// the re-planned entry, whose final-run accesses land here.
		e := server.NewEngine(db, server.Config{Workers: 1, Orderer: "adaptive"})
		text := s.q.String()
		var last *server.Response
		adaptErr := false
		for i := 0; i < repeats; i++ {
			resp, err := e.Do(server.Request{Query: text, NoCache: i >= repeats/3 && i < 2*repeats/3})
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR %s adaptive: %v", s.name, err))
				adaptErr = true
				break
			}
			last = resp
		}
		if adaptErr {
			continue
		}
		t.Rows = append(t.Rows, []string{
			s.name, "adaptive", fmt.Sprintf("%.1f", greedyUS),
			fmt.Sprintf("%.1fx", costUS/greedyUS), itoa64(last.Stats.Counters.TrieAccesses),
			pct(last.Stats.Counters.TrieAccesses, costAcc), itoa64(e.Stats().Plans.Replans),
		})
	}
	t.Notes = append(t.Notes,
		"plan µs: one AutoSelect call over a warm shared trie registry — TD selection + ordering, no plan compile",
		"run accesses: trie accesses of one plan.Count execution (plan-selection accounting excluded)",
		"adaptive plans like greedy; replans counts feedback-driven plan swaps under the forced-divergence thirds",
	)
	return t
}
