package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
)

// ServiceThroughput (E12) measures the resident query service beyond
// the paper's single-query protocol: queries/sec over a fixed mixed
// workload as the number of concurrent clients sweeps, with the shared
// trie registry on versus off. With reuse on, every index is built once
// for the engine's lifetime; with reuse off every query rebuilds its
// tries, which is what a per-invocation CLI (or the paper's
// preloaded-index protocol run from scratch) pays. The trie-build
// column makes the amortization visible next to the throughput.
func ServiceThroughput(cfg Config) *Table {
	clientSweep := []int{1, 2, 4, 8}
	repeats := 6
	var g *dataset.Graph
	if cfg.Quick {
		g = dataset.TriadicPA(120, 3, 0.4, 2201)
		repeats = 3
	} else {
		g = dataset.TriadicPA(300, 4, 0.4, 2201)
	}
	db := g.DB(false)

	// The workload mixes shapes, modes and per-query cache policies, as
	// service traffic would.
	reqs := []server.Request{
		{Query: "E(x,y), E(y,z), E(x,z)"},
		{Query: "E(a,b), E(b,c), E(c,d)", CacheCapacity: 128},
		{Query: "E(a,b), E(b,c), E(c,d), E(d,a)"},
		{Query: "E(x,y), E(y,z), E(x,z)", Mode: "eval", Limit: 10},
		{Query: "E(a,b), E(b,c), E(c,d)", Mode: "aggregate"},
	}

	t := &Table{
		ID:     "E12 (service)",
		Title:  "resident query service: throughput vs concurrent clients vs trie reuse",
		Header: []string{"clients", "reuse", "queries", "queries/sec", "trie builds", "registry hits"},
	}
	for _, clients := range clientSweep {
		for _, reuse := range []bool{true, false} {
			engine := server.NewEngine(db, server.Config{Workers: 1, DisableReuse: !reuse})
			n := clients * repeats * len(reqs)
			work := make(chan server.Request, n)
			for i := 0; i < clients*repeats; i++ {
				for _, r := range reqs {
					work <- r
				}
			}
			close(work)

			var wg sync.WaitGroup
			var firstErr error
			var errOnce sync.Once
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for req := range work {
						if _, err := engine.Do(req); err != nil {
							errOnce.Do(func() { firstErr = err })
							return
						}
					}
				}()
			}
			wg.Wait()
			dur := time.Since(start)
			if firstErr != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("ERROR at %d clients (reuse=%v): %v", clients, reuse, firstErr))
				continue
			}

			s := engine.Stats()
			qps := float64(s.Queries) / dur.Seconds()
			label := "off"
			builds := s.Lifetime.TrieBuilds
			hits := int64(0)
			if reuse {
				label = "on"
				hits = s.Registry.Hits
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", clients), label, itoa64(s.Queries),
				fmt.Sprintf("%.0f", qps), itoa64(builds), itoa64(hits),
			})
		}
	}
	t.Notes = append(t.Notes,
		"reuse=on: the engine's shared registry serves every index after the first build (trie builds stays flat as load grows)",
		"reuse=off: every query rebuilds its tries — the per-invocation cost a resident service amortizes away",
	)
	return t
}
