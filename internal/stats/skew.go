package stats

import (
	"math"
	"sort"
)

// Frequencies returns the multiset of occurrence counts of the values in
// column col (0-based) of the given tuples, sorted descending.
func Frequencies(tuples [][]int64, col int) []int {
	counts := make(map[int64]int)
	for _, t := range tuples {
		counts[t[col]]++
	}
	freqs := make([]int, 0, len(counts))
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	return freqs
}

// SkewCoefficient measures how skewed a frequency distribution is as the
// ratio between the mean of the top decile and the overall mean. A uniform
// column yields ~1; heavy-tailed columns yield large values. The paper
// argues (§4) that caches keyed on high-skew attributes are more reusable;
// this metric drives the data-aware term of the TD cost model.
func SkewCoefficient(freqs []int) float64 {
	if len(freqs) == 0 {
		return 0
	}
	sorted := make([]int, len(freqs))
	copy(sorted, freqs)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, f := range sorted {
		total += f
	}
	mean := float64(total) / float64(len(sorted))
	top := len(sorted) / 10
	if top == 0 {
		top = 1
	}
	sumTop := 0
	for _, f := range sorted[:top] {
		sumTop += f
	}
	meanTop := float64(sumTop) / float64(top)
	if mean == 0 {
		return 0
	}
	return meanTop / mean
}

// ColumnSkew computes SkewCoefficient directly for a tuple column.
func ColumnSkew(tuples [][]int64, col int) float64 {
	return SkewCoefficient(Frequencies(tuples, col))
}

// GiniCoefficient computes the Gini coefficient of a frequency
// distribution: 0 for perfectly uniform, approaching 1 for extreme skew.
func GiniCoefficient(freqs []int) float64 {
	n := len(freqs)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, freqs)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, f := range sorted {
		weighted += float64(i+1) * float64(f)
		cum += float64(f)
	}
	if cum == 0 {
		return 0
	}
	g := (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
	return math.Max(0, g)
}
