package stats

import (
	"strings"
	"testing"
)

func TestTotalAndReset(t *testing.T) {
	c := &Counters{TrieAccesses: 3, HashAccesses: 4, TupleAccesses: 5}
	if c.Total() != 12 {
		t.Fatalf("Total = %d", c.Total())
	}
	c.Reset()
	if c.Total() != 0 || c.TrieAccesses != 0 {
		t.Fatal("Reset incomplete")
	}
	var nilC *Counters
	if nilC.Total() != 0 {
		t.Fatal("nil Total != 0")
	}
	nilC.Reset() // must not panic
	nilC.Add(c)  // must not panic
}

func TestAdd(t *testing.T) {
	a := &Counters{TrieAccesses: 1, CacheHits: 2}
	b := &Counters{TrieAccesses: 10, CacheMisses: 3, CacheInserts: 1, CacheEvictions: 1}
	a.Add(b)
	if a.TrieAccesses != 11 || a.CacheHits != 2 || a.CacheMisses != 3 {
		t.Fatalf("Add result %+v", a)
	}
	a.Add(nil)
}

func TestHitRate(t *testing.T) {
	c := &Counters{CacheHits: 3, CacheMisses: 1}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %g", got)
	}
	if (&Counters{}).HitRate() != 0 {
		t.Fatal("empty HitRate != 0")
	}
	var nilC *Counters
	if nilC.HitRate() != 0 {
		t.Fatal("nil HitRate != 0")
	}
}

func TestString(t *testing.T) {
	c := &Counters{TrieAccesses: 1, HashAccesses: 2, TupleAccesses: 3, CacheHits: 4, CacheMisses: 5}
	s := c.String()
	for _, want := range []string{"trie=1", "hash=2", "tuple=3", "total=6", "hits=4", "misses=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestFrequencies(t *testing.T) {
	tuples := [][]int64{{1, 9}, {1, 8}, {2, 9}, {1, 7}}
	freqs := Frequencies(tuples, 0)
	if len(freqs) != 2 || freqs[0] != 3 || freqs[1] != 1 {
		t.Fatalf("Frequencies = %v", freqs)
	}
}

func TestSkewCoefficient(t *testing.T) {
	uniform := make([]int, 100)
	for i := range uniform {
		uniform[i] = 10
	}
	if got := SkewCoefficient(uniform); got != 1 {
		t.Fatalf("uniform skew = %g, want 1", got)
	}
	skewed := make([]int, 100)
	for i := range skewed {
		skewed[i] = 1
	}
	skewed[0] = 1000
	if got := SkewCoefficient(skewed); got < 5 {
		t.Fatalf("skewed coefficient = %g, want >> 1", got)
	}
	if SkewCoefficient(nil) != 0 {
		t.Fatal("empty skew != 0")
	}
}

func TestGiniCoefficient(t *testing.T) {
	if g := GiniCoefficient([]int{5, 5, 5, 5}); g > 0.01 {
		t.Fatalf("uniform Gini = %g", g)
	}
	g := GiniCoefficient([]int{0, 0, 0, 100})
	if g < 0.5 {
		t.Fatalf("concentrated Gini = %g, want large", g)
	}
	if GiniCoefficient(nil) != 0 {
		t.Fatal("empty Gini != 0")
	}
}

func TestColumnSkew(t *testing.T) {
	tuples := [][]int64{{1, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 5}}
	if ColumnSkew(tuples, 0) <= ColumnSkew(tuples, 1) {
		t.Fatal("column 0 should be more skewed than column 1")
	}
}
