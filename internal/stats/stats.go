// Package stats provides lightweight instrumentation shared by the join
// engines: memory-access counters (used to reproduce the paper's memory
// traffic analysis), cache hit/miss statistics, and skew metrics over
// relation columns.
//
// Counters are plain int64 fields with no atomics, so a Counters value
// must not be shared across goroutines. The parallel engines instead give
// every worker its own Counters instance and fold the workers' accounting
// into the caller's sink with Merge once the workers have joined; the
// merged totals are exact because every increment happened on exactly one
// private instance.
package stats

import "fmt"

// Counters accumulates the abstract memory accesses performed by an engine.
// One "access" is one probe of an index structure: reading a trie cell,
// one step of a binary search, one hash-table probe, or one tuple-cell
// read/write in a materialized intermediate. This mirrors the event the
// paper counts when it reports, e.g., 45·10^9 accesses for LFTJ on a
// 5-cycle count (§1).
type Counters struct {
	// TrieAccesses counts reads of trie cells, including every comparison
	// made by Seek's binary search.
	TrieAccesses int64
	// HashAccesses counts hash-map probes and insertions (caches in CLFTJ,
	// adhesion maps in YTD, hash tables in the pairwise engine).
	HashAccesses int64
	// TupleAccesses counts cell reads/writes on materialized intermediate
	// tuples (YTD bags, pairwise intermediates, factorized entries).
	TupleAccesses int64

	// CacheHits and CacheMisses count CLFTJ cache lookups that found,
	// respectively did not find, a stored intermediate result.
	CacheHits   int64
	CacheMisses int64
	// CacheInserts counts stored intermediate results; CacheEvictions
	// counts entries dropped to respect a capacity bound.
	CacheInserts   int64
	CacheEvictions int64

	// TrieBuilds counts trie index constructions performed on behalf of
	// this counter's owner. A long-lived engine whose trie registry is
	// warm answers a repeated query with TrieBuilds == 0: every index is
	// served from the shared registry instead of being rebuilt.
	TrieBuilds int64
	// TriePatches counts incremental trie derivations: a resident base
	// index extended with a copy-on-write delta overlay instead of being
	// rebuilt from scratch. Under live updates a warm engine's steady
	// state is TrieBuilds == 0 with TriePatches tracking the delta rate.
	TriePatches int64
	// DeltaApplies counts relation-version transitions (Store.ApplyDelta
	// calls that changed the relation) performed by this counter's owner.
	DeltaApplies int64
	// TrieOpens counts trie indices served by mapping a verified on-disk
	// snapshot instead of building from the relation. A persistent engine
	// restarted over a populated data directory answers its first query
	// with TrieBuilds == 0 and TrieOpens tracking the mapped indices; the
	// per-cell traffic of using an opened index is still charged through
	// TrieAccesses, exactly as for a built one.
	TrieOpens int64
}

// Total returns the total number of memory accesses of all kinds.
func (c *Counters) Total() int64 {
	if c == nil {
		return 0
	}
	return c.TrieAccesses + c.HashAccesses + c.TupleAccesses
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	*c = Counters{}
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	if c == nil || o == nil {
		return
	}
	c.TrieAccesses += o.TrieAccesses
	c.HashAccesses += o.HashAccesses
	c.TupleAccesses += o.TupleAccesses
	c.CacheHits += o.CacheHits
	c.CacheMisses += o.CacheMisses
	c.CacheInserts += o.CacheInserts
	c.CacheEvictions += o.CacheEvictions
	c.TrieBuilds += o.TrieBuilds
	c.TriePatches += o.TriePatches
	c.DeltaApplies += o.DeltaApplies
	c.TrieOpens += o.TrieOpens
}

// Merge folds the per-worker counters ws into c, in order. It is the
// reduction step of the parallel engines: each worker accounts into its
// own Counters during the run and the driver merges them after the
// workers have joined, so the hot path needs no atomics yet the combined
// accounting is exact. c may be nil (no-op), as may individual workers.
func (c *Counters) Merge(ws ...*Counters) {
	for _, w := range ws {
		c.Add(w)
	}
}

// HitRate returns the cache hit rate in [0,1], or 0 if no lookups happened.
func (c *Counters) HitRate() float64 {
	if c == nil {
		return 0
	}
	n := c.CacheHits + c.CacheMisses
	if n == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(n)
}

// String renders the counters compactly for logs and experiment tables.
func (c *Counters) String() string {
	return fmt.Sprintf("trie=%d hash=%d tuple=%d total=%d hits=%d misses=%d builds=%d patches=%d opens=%d",
		c.TrieAccesses, c.HashAccesses, c.TupleAccesses, c.Total(), c.CacheHits, c.CacheMisses, c.TrieBuilds, c.TriePatches, c.TrieOpens)
}
