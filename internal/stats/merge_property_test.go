package stats

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randCounters fills every int64 field via reflection, so a field added
// to Counters later is automatically covered — and if Add/Merge forgets
// to fold it, the field-wise sum property below fails loudly.
func randCounters(rng *rand.Rand) *Counters {
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() == reflect.Int64 {
			v.Field(i).SetInt(rng.Int63n(1 << 20))
		}
	}
	return &c
}

func mergeAll(parts ...*Counters) Counters {
	var out Counters
	out.Merge(parts...)
	return out
}

// TestMergeIsFieldwiseSum: Merge must fold every counter field — no
// field is dropped, none double-counted. Checked by reflection against
// the struct definition itself.
func TestMergeIsFieldwiseSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a, b := randCounters(rng), randCounters(rng)
		got := reflect.ValueOf(mergeAll(a, b))
		va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
		for i := 0; i < got.NumField(); i++ {
			if got.Field(i).Kind() != reflect.Int64 {
				continue
			}
			want := va.Field(i).Int() + vb.Field(i).Int()
			if got.Field(i).Int() != want {
				t.Fatalf("field %s: merge = %d, want %d", got.Type().Field(i).Name, got.Field(i).Int(), want)
			}
		}
	}
}

// TestMergeAssociativeCommutative: the fold order of per-worker (or
// per-shard) counters must never matter — the distributed tier merges
// shard counters in whatever order responses land.
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randCounters(rng), randCounters(rng), randCounters(rng)

		ab := mergeAll(a, b)
		abThenC := mergeAll(&ab, c)
		bc := mergeAll(b, c)
		aThenBC := mergeAll(a, &bc)
		if abThenC != aThenBC {
			t.Fatalf("associativity: (a+b)+c = %+v, a+(b+c) = %+v", abThenC, aThenBC)
		}

		if mergeAll(a, b) != mergeAll(b, a) {
			t.Fatal("commutativity: a+b != b+a")
		}

		var zero Counters
		if mergeAll(a, &zero) != *a {
			t.Fatal("identity: a+0 != a")
		}
	}
}

// TestMergeOfSplitsEqualsUnsplit is the distributed-exactness property:
// splitting one run's accounting into arbitrary disjoint parts (per
// worker, per shard) and merging the parts gives exactly the unsplit
// totals. This is what lets the coordinator report fleet-wide counters
// indistinguishable from one engine having done all the work.
func TestMergeOfSplitsEqualsUnsplit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		whole := randCounters(rng)
		// Split every field's value across k parts at random cut points.
		k := 2 + rng.Intn(5)
		parts := make([]*Counters, k)
		for i := range parts {
			parts[i] = &Counters{}
		}
		vw := reflect.ValueOf(whole).Elem()
		for f := 0; f < vw.NumField(); f++ {
			if vw.Field(f).Kind() != reflect.Int64 {
				continue
			}
			rest := vw.Field(f).Int()
			for i := 0; i < k-1; i++ {
				cut := rng.Int63n(rest + 1)
				reflect.ValueOf(parts[i]).Elem().Field(f).SetInt(cut)
				rest -= cut
			}
			reflect.ValueOf(parts[k-1]).Elem().Field(f).SetInt(rest)
		}
		if got := mergeAll(parts...); got != *whole {
			t.Fatalf("merge of %d splits = %+v, unsplit = %+v", k, got, *whole)
		}
	}
}

// TestLockedMergeConcurrentExact: Locked.Merge folds concurrent
// contributions exactly — the lifetime totals of a busy engine equal
// the sequential fold of every query's private counters, regardless of
// interleaving.
func TestLockedMergeConcurrentExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const workers = 8
	const perWorker = 50
	contributions := make([][]*Counters, workers)
	for w := range contributions {
		for i := 0; i < perWorker; i++ {
			contributions[w] = append(contributions[w], randCounters(rng))
		}
	}

	var life Locked
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, c := range contributions[w] {
				life.Merge(c)
			}
		}(w)
	}
	wg.Wait()

	var want Counters
	for _, batch := range contributions {
		want.Merge(batch...)
	}
	if got := life.Snapshot(); got != want {
		t.Fatalf("concurrent lifetime fold = %+v, sequential fold = %+v", got, want)
	}

	// nil receivers and nil parts stay no-ops (the documented contract).
	var nilLocked *Locked
	nilLocked.Merge(&want)
	if nilLocked.Snapshot() != (Counters{}) {
		t.Fatal("nil Locked snapshot not zero")
	}
	before := life.Snapshot()
	life.Merge(nil, nil)
	if life.Snapshot() != before {
		t.Fatal("nil contributions changed the totals")
	}
}
