package stats

import "sync"

// Locked is a mutex-guarded Counters for accounting that outlives a
// single execution and is updated from many goroutines — the
// engine-lifetime totals of a long-lived query service. Queries run with
// a private, unsynchronized Counters on the hot path (see the package
// comment) and fold it into a Locked once, when the query finishes, so
// the lifetime totals stay exact without per-access atomics.
//
// The zero value is ready to use.
type Locked struct {
	mu sync.Mutex
	c  Counters
}

// Merge folds the given per-query counters into the lifetime totals.
// nil receivers and nil arguments are no-ops, mirroring Counters.Merge.
func (l *Locked) Merge(ws ...*Counters) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.Merge(ws...)
}

// Snapshot returns a copy of the lifetime totals, safe to read and
// render while queries keep merging.
func (l *Locked) Snapshot() Counters {
	if l == nil {
		return Counters{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c
}

// Reset zeroes the lifetime totals.
func (l *Locked) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c = Counters{}
}
