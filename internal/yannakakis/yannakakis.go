// Package yannakakis implements the YTD baseline of the paper (§5.1):
// Yannakakis's acyclic-join algorithm [25] run over a tree decomposition
// as described by Gottlob et al. [9]. Each bag is materialized with a
// worst-case-optimal join (GenericJoin, realized here as a leapfrog trie
// join over the bag's atoms), the tree is fully semijoin-reduced, and
// counting aggregates adhesion-grouped counts bottom-up rather than
// materializing the full result — the paper's optimization for count
// queries with more than two bags.
package yannakakis

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
)

// Engine is a compiled YTD execution: the query, its TD, and the
// materialized, semijoin-reduced bag relations.
type Engine struct {
	query *cq.Query
	tree  *td.TD
	qvars []string

	// bags[v]: materialized tuples over bagVars[v] (variable indices in
	// column order, adhesion variables first).
	bagVars [][]int
	bags    [][][]int64
	// adhCols[v]: column indices (into bag v's schema) of v's adhesion.
	adhCols [][]int

	counters *stats.Counters
}

// New compiles q against db over the given TD (which is validated).
// counters may be nil. Bag relations are joined and fully reduced at
// build time — exactly the up-front intermediate-result computation that
// CLFTJ's flexible caching avoids.
func New(q *cq.Query, db *relation.DB, tree *td.TD, counters *stats.Counters) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := tree.Validate(q); err != nil {
		return nil, err
	}
	e := &Engine{
		query:    q,
		tree:     tree,
		qvars:    q.Vars(),
		bagVars:  make([][]int, tree.N()),
		bags:     make([][][]int64, tree.N()),
		adhCols:  make([][]int, tree.N()),
		counters: counters,
	}
	if err := e.materializeBags(db); err != nil {
		return nil, err
	}
	e.reduce()
	return e, nil
}

// materializeBags computes each bag's relation with a worst-case-optimal
// join over the atoms contained in the bag, plus unary projections
// covering bag variables no contained atom constrains (these arise when a
// separator-based bag spans variables that co-occur only outside it).
func (e *Engine) materializeBags(db *relation.DB) error {
	idx := e.query.VarIndex()
	for v := 0; v < e.tree.N(); v++ {
		bag := e.tree.Bags[v]
		adh := e.tree.Adhesion(v)
		// Column order: adhesion variables first ("the Yannakakis join
		// attributes higher in the trie", §5.1), then the rest ascending.
		cols := append([]int(nil), adh...)
		for _, x := range bag {
			if !containsInt(adh, x) {
				cols = append(cols, x)
			}
		}
		e.bagVars[v] = cols
		e.adhCols[v] = make([]int, len(adh))
		for i, x := range adh {
			e.adhCols[v][i] = indexOfInt(cols, x)
		}

		// Assemble the bag's sub-query.
		inBag := func(vars []string) bool {
			for _, name := range vars {
				if !containsInt(bag, idx[name]) {
					return false
				}
			}
			return true
		}
		var atoms []cq.Atom
		covered := make(map[int]bool)
		subDB := relation.NewDB()
		for _, name := range db.Names() {
			r, _ := db.Get(name)
			subDB.Put(r)
		}
		for _, atom := range e.query.Atoms {
			if inBag(atom.Vars()) {
				atoms = append(atoms, atom)
				for _, name := range atom.Vars() {
					covered[idx[name]] = true
				}
			}
		}
		// Unary coverage projections for unconstrained bag variables.
		for _, x := range bag {
			if covered[x] {
				continue
			}
			name := e.qvars[x]
			ais := e.query.AtomsWithVar(name)
			if len(ais) == 0 {
				return fmt.Errorf("yannakakis: bag variable %s in no atom", name)
			}
			atom := e.query.Atoms[ais[0]]
			rel, err := db.Get(atom.Rel)
			if err != nil {
				return err
			}
			derived, vars, err := leapfrog.DeriveAtomRelation(rel, atom)
			if err != nil {
				return err
			}
			col := indexOfString(vars, name)
			unary, err := derived.Project([]int{col})
			if err != nil {
				return err
			}
			uname := fmt.Sprintf("__dom_%s_%d", name, v)
			subDB.Put(unary.Rename(uname))
			atoms = append(atoms, cq.NewAtom(uname, name))
		}

		subQ := cq.New(atoms...)
		order := make([]string, len(cols))
		for i, x := range cols {
			order[i] = e.qvars[x]
		}
		inst, err := leapfrog.Build(subQ, subDB, order, e.counters)
		if err != nil {
			return err
		}
		var tuples [][]int64
		leapfrog.Eval(inst, func(mu []int64) bool {
			tuples = append(tuples, append([]int64(nil), mu...))
			return true
		})
		if e.counters != nil {
			e.counters.TupleAccesses += int64(len(tuples) * len(cols))
		}
		e.bags[v] = tuples
	}
	return nil
}

// reduce runs the full reducer: a bottom-up semijoin pass (parent ⋉ child
// on the child's adhesion) followed by a top-down pass (child ⋉ parent).
func (e *Engine) reduce() {
	post := e.postorder()
	// Bottom-up.
	for _, v := range post {
		for _, c := range e.tree.Children[v] {
			e.semijoin(v, c)
		}
	}
	// Top-down (preorder).
	for _, v := range e.tree.Preorder() {
		for _, c := range e.tree.Children[v] {
			e.semijoinChild(c, v)
		}
	}
}

func (e *Engine) postorder() []int {
	var out []int
	var walk func(v int)
	walk = func(v int) {
		for _, c := range e.tree.Children[v] {
			walk(c)
		}
		out = append(out, v)
	}
	walk(e.tree.Root)
	return out
}

// adhKeyOfChild projects a parent tuple onto child c's adhesion.
func (e *Engine) adhKeyOfChild(parent int, tup []int64, c int) string {
	adh := e.tree.Adhesion(c)
	vals := make([]int64, len(adh))
	for i, x := range adh {
		vals[i] = tup[indexOfInt(e.bagVars[parent], x)]
	}
	if e.counters != nil {
		e.counters.TupleAccesses += int64(len(adh))
	}
	return relation.Key(vals)
}

// adhKeySelf projects a bag-v tuple onto v's own adhesion columns.
func (e *Engine) adhKeySelf(v int, tup []int64) string {
	vals := make([]int64, len(e.adhCols[v]))
	for i, c := range e.adhCols[v] {
		vals[i] = tup[c]
	}
	if e.counters != nil {
		e.counters.TupleAccesses += int64(len(vals))
	}
	return relation.Key(vals)
}

// semijoin keeps the parent tuples whose projection onto child c's
// adhesion appears in c.
func (e *Engine) semijoin(parent, c int) {
	keys := make(map[string]bool, len(e.bags[c]))
	for _, t := range e.bags[c] {
		keys[e.adhKeySelf(c, t)] = true
	}
	if e.counters != nil {
		e.counters.HashAccesses += int64(len(e.bags[c]) + len(e.bags[parent]))
	}
	kept := e.bags[parent][:0]
	for _, t := range e.bags[parent] {
		if keys[e.adhKeyOfChild(parent, t, c)] {
			kept = append(kept, t)
		}
	}
	e.bags[parent] = kept
}

// semijoinChild keeps the child tuples whose adhesion projection appears
// in the parent.
func (e *Engine) semijoinChild(c, parent int) {
	keys := make(map[string]bool, len(e.bags[parent]))
	for _, t := range e.bags[parent] {
		keys[e.adhKeyOfChild(parent, t, c)] = true
	}
	if e.counters != nil {
		e.counters.HashAccesses += int64(len(e.bags[parent]) + len(e.bags[c]))
	}
	kept := e.bags[c][:0]
	for _, t := range e.bags[c] {
		if keys[e.adhKeySelf(c, t)] {
			kept = append(kept, t)
		}
	}
	e.bags[c] = kept
}

// Count returns |q(D)| by the adhesion-grouped dynamic program: cnt(v,a)
// is the number of assignments to the subtree below v consistent with
// adhesion assignment a; a parent tuple contributes the product of its
// children's counts.
func (e *Engine) Count() int64 {
	cnt := make([]map[string]int64, e.tree.N())
	for _, v := range e.postorder() {
		m := make(map[string]int64)
		for _, t := range e.bags[v] {
			prod := int64(1)
			for _, c := range e.tree.Children[v] {
				k := e.adhKeyOfChild(v, t, c)
				prod *= cnt[c][k]
				if e.counters != nil {
					e.counters.HashAccesses++
				}
				if prod == 0 {
					break
				}
			}
			if prod != 0 {
				m[e.adhKeySelf(v, t)] += prod
				if e.counters != nil {
					e.counters.HashAccesses++
				}
			}
		}
		cnt[v] = m
	}
	var total int64
	for _, n := range cnt[e.tree.Root] {
		total += n
	}
	return total
}

// Eval enumerates q(D), calling emit with assignments over q.Vars()
// order. The slice is reused; emit must copy to retain. Returning false
// stops the enumeration.
func (e *Engine) Eval(emit func(tuple []int64) bool) {
	// Index each non-root bag by its adhesion.
	index := make([]map[string][][]int64, e.tree.N())
	for v := 0; v < e.tree.N(); v++ {
		if v == e.tree.Root {
			continue
		}
		m := make(map[string][][]int64)
		for _, t := range e.bags[v] {
			k := e.adhKeySelf(v, t)
			m[k] = append(m[k], t)
		}
		if e.counters != nil {
			e.counters.HashAccesses += int64(len(e.bags[v]))
		}
		index[v] = m
	}
	mu := make([]int64, len(e.qvars))
	var rec func(v int, t []int64, next func() bool) bool
	rec = func(v int, t []int64, next func() bool) bool {
		for i, x := range e.bagVars[v] {
			mu[x] = t[i]
		}
		if e.counters != nil {
			e.counters.TupleAccesses += int64(len(t))
		}
		var children func(j int) bool
		children = func(j int) bool {
			if j == len(e.tree.Children[v]) {
				return next()
			}
			c := e.tree.Children[v][j]
			k := e.adhKeyOfChild(v, t, c)
			if e.counters != nil {
				e.counters.HashAccesses++
			}
			for _, ct := range index[c][k] {
				if !rec(c, ct, func() bool { return children(j + 1) }) {
					return false
				}
			}
			return true
		}
		return children(0)
	}
	for _, t := range e.bags[e.tree.Root] {
		if !rec(e.tree.Root, t, func() bool { return emit(mu) }) {
			return
		}
	}
}

// BagSizes returns the materialized (post-reduction) bag cardinalities —
// the intermediate-result footprint the paper contrasts with CLFTJ's
// bounded caches.
func (e *Engine) BagSizes() []int {
	out := make([]int, len(e.bags))
	for i, b := range e.bags {
		out[i] = len(b)
	}
	return out
}

// Count runs YTD count over q with an automatically selected TD.
func Count(q *cq.Query, db *relation.DB, tree *td.TD, counters *stats.Counters) (int64, error) {
	e, err := New(q, db, tree, counters)
	if err != nil {
		return 0, err
	}
	return e.Count(), nil
}

func containsInt(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

func indexOfInt(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func indexOfString(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
