package yannakakis

import (
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
)

func autoTD(t *testing.T, q *cq.Query) *td.TD {
	t.Helper()
	tree, _ := td.Select(q, td.Options{}, td.DefaultCostConfig(len(q.Vars())))
	if err := tree.Validate(q); err != nil {
		t.Fatalf("selected TD invalid: %v", err)
	}
	return tree
}

func checkYTD(t *testing.T, q *cq.Query, db *relation.DB) {
	t.Helper()
	tree := autoTD(t, q)
	want, err := naive.Count(q, db)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	e, err := New(q, db, tree, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := e.Count(); got != want {
		t.Errorf("YTD count = %d, want %d (td=\n%s)", got, want, tree)
	}

	wantTuples, err := naive.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	e.Eval(func(tup []int64) bool {
		got = append(got, append([]int64(nil), tup...))
		return true
	})
	sort.Slice(got, func(i, j int) bool { return relation.CompareTuples(got[i], got[j]) < 0 })
	if len(got) != len(wantTuples) {
		t.Fatalf("YTD eval: %d tuples, want %d", len(got), len(wantTuples))
	}
	for i := range got {
		if relation.CompareTuples(got[i], wantTuples[i]) != 0 {
			t.Fatalf("YTD eval tuple %d = %v, want %v", i, got[i], wantTuples[i])
		}
	}
}

func TestYTDAgreesWithNaive(t *testing.T) {
	g := dataset.ErdosRenyi(28, 0.13, 21)
	db := g.DB(false)
	cases := []struct {
		name string
		q    *cq.Query
	}{
		{"3-path", queries.Path(3)},
		{"4-path", queries.Path(4)},
		{"5-path", queries.Path(5)},
		{"4-cycle", queries.Cycle(4)},
		{"5-cycle", queries.Cycle(5)},
		{"3-cycle", queries.Cycle(3)}, // singleton TD: one bag, no reduction
		{"lollipop", queries.Lollipop(3, 2)},
		{"5-rand", queries.Random(5, 0.5, 17)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkYTD(t, tc.q, db) })
	}
}

func TestYTDOnIMDB(t *testing.T) {
	db := dataset.IMDBCast(dataset.IMDBConfig{Persons: 35, Movies: 12, Appearances: 120, PersonSkew: 1.8, Seed: 6})
	checkYTD(t, queries.IMDBCycle(2), db)
	checkYTD(t, queries.IMDBCycle(3), db)
}

func TestYTDEarlyStop(t *testing.T) {
	g := dataset.ErdosRenyi(20, 0.2, 4)
	db := g.DB(false)
	q := queries.Path(3)
	e, err := New(q, db, autoTD(t, q), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	e.Eval(func([]int64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop delivered %d tuples, want 3", n)
	}
}

func TestYTDCountsAccesses(t *testing.T) {
	g := dataset.ErdosRenyi(25, 0.15, 8)
	db := g.DB(false)
	q := queries.Path(4)
	var c stats.Counters
	e, err := New(q, db, autoTD(t, q), &c)
	if err != nil {
		t.Fatal(err)
	}
	e.Count()
	if c.Total() == 0 {
		t.Error("YTD performed no counted memory accesses")
	}
	sizes := e.BagSizes()
	if len(sizes) != e.tree.N() {
		t.Errorf("BagSizes length %d, want %d", len(sizes), e.tree.N())
	}
}
