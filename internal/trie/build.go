package trie

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/relation"
	"repro/internal/stats"
)

// This file constructs the cascading-vector levels. The relation is
// sorted, so every trie node at depth d is a contiguous row range
// sharing a length-(d+1) prefix; each level is derived from the parent
// level's row boundaries by grouping equal column-d values. The builder
// reads each column through one contiguous gather (instead of a strided
// r.Tuple(i)[d] per row), sizes every level array exactly with a
// counting pass (no append regrowth), and — under BuildParallel — runs
// the counting and filling passes over independent sibling spans on
// worker goroutines, with chunk boundaries aligned to node starts so
// the parallel result is bit-identical to the sequential one.

// parallelBuildMinRows is the level size below which the parallel
// builder stays sequential: goroutine fan-out costs more than scanning
// a few thousand contiguous rows.
const parallelBuildMinRows = 1 << 14

// Build constructs a trie over the relation. The relation must already be
// in the column order the trie should index (use Relation.Permute first).
// counters may be nil to disable accounting.
func Build(r *relation.Relation, counters *stats.Counters) *Trie {
	return BuildParallel(r, counters, 1)
}

// BuildParallel is Build with the per-level scans sharded over up to
// workers goroutines (<= 0: one per core; 1: the sequential path).
// Sibling spans at one level are independent, so large levels are
// counted and filled in parallel chunks whose boundaries are aligned to
// node starts; the constructed trie is bit-identical to Build's at any
// worker count. Small levels (and small relations) stay sequential.
func BuildParallel(r *relation.Relation, counters *stats.Counters, workers int) *Trie {
	if counters != nil {
		counters.TrieBuilds++
	}
	t := &Trie{arity: r.Arity(), c: counters}
	n := r.Len()
	k := r.Arity()
	t.levels = make([]level, k)
	if n == 0 || k == 0 {
		for d := range t.levels {
			t.levels[d] = level{start: []int32{0}}
		}
		return t
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	data := r.Data()
	col := make([]int64, n)
	// prevRows holds the row boundaries of the depth-(d-1) nodes
	// (virtual root: one node spanning all rows); grouping each span by
	// the column value yields the depth-d nodes and the parent
	// child-offsets.
	prevRows := []int32{0, int32(n)}
	for d := 0; d < k; d++ {
		gatherColumn(col, data, d, k, workers)
		if d == k-1 {
			// Deepest level: tuples are duplicate-free, so every sibling
			// run has length one — the level is the gathered column itself
			// and the parent offsets are the row boundaries verbatim.
			t.levels[d] = level{vals: col, start: make([]int32, n+1)}
			if d > 0 {
				t.levels[d-1].start = prevRows
			}
			break
		}
		vals, rows, parentStart := buildLevel(col, prevRows, workers)
		t.levels[d] = level{vals: vals}
		if d > 0 {
			t.levels[d-1].start = parentStart
		}
		prevRows = rows
	}
	return t
}

// gatherColumn materializes column d of the arity-k flat tuple array
// into dst, so the level scans below run over contiguous memory.
func gatherColumn(dst, data []int64, d, k, workers int) {
	n := len(dst)
	if k == 1 {
		copy(dst, data)
		return
	}
	fill := func(lo, hi int) {
		j := lo*k + d
		for i := lo; i < hi; i++ {
			dst[i] = data[j]
			j += k
		}
	}
	if workers <= 1 || n < parallelBuildMinRows {
		fill(0, n)
		return
	}
	step := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// buildChunk is one contiguous row range of a level build, aligned so
// no trie node straddles two chunks.
type buildChunk struct {
	lo, hi int // row range [lo, hi)
	pi     int // index of the first parent boundary >= lo
	count  int // nodes in the range (pass 1 result)
	off    int // output offset of the first node (prefix sum)
}

// buildLevel groups the rows into depth-d nodes under the parent
// boundaries prevRows: vals/rows receive one entry per node (rows gets
// a trailing n), parentStart the child offset per parent (trailing
// total). Both passes run over node-aligned chunks, in parallel when
// the level is large and workers allow.
func buildLevel(col []int64, prevRows []int32, workers int) (vals []int64, rows []int32, parentStart []int32) {
	n := len(col)
	parents := len(prevRows) - 1
	chunks := chunkLevel(col, n, workers)
	for ci := range chunks {
		c := &chunks[ci]
		lo := c.lo
		c.pi = sort.Search(parents, func(j int) bool { return int(prevRows[j]) >= lo })
	}
	runChunks(chunks, func(c *buildChunk) {
		cnt, pi := 0, c.pi
		for i := c.lo; i < c.hi; i++ {
			if pi < parents && int(prevRows[pi]) == i {
				pi++
			} else if i > 0 && col[i] == col[i-1] {
				continue
			}
			cnt++
		}
		c.count = cnt
	})
	m := 0
	for ci := range chunks {
		chunks[ci].off = m
		m += chunks[ci].count
	}
	vals = make([]int64, m)
	rows = make([]int32, m+1)
	parentStart = make([]int32, parents+1)
	runChunks(chunks, func(c *buildChunk) {
		off, pi := c.off, c.pi
		for i := c.lo; i < c.hi; i++ {
			if pi < parents && int(prevRows[pi]) == i {
				parentStart[pi] = int32(off)
				pi++
			} else if i > 0 && col[i] == col[i-1] {
				continue
			}
			vals[off] = col[i]
			rows[off] = int32(i)
			off++
		}
	})
	rows[m] = int32(n)
	parentStart[parents] = int32(m)
	return vals, rows, parentStart
}

// chunkLevel splits [0, n) into up to workers ranges whose boundaries
// sit on value changes — always node starts, so chunks never split a
// node. One chunk (the sequential path) when the level is small.
func chunkLevel(col []int64, n, workers int) []buildChunk {
	if workers <= 1 || n < parallelBuildMinRows {
		return []buildChunk{{lo: 0, hi: n}}
	}
	chunks := make([]buildChunk, 0, workers)
	step := n / workers
	lo := 0
	for c := 0; c < workers && lo < n; c++ {
		hi := n
		if c < workers-1 && lo+step < n {
			hi = lo + step
			for hi < n && col[hi] == col[hi-1] {
				hi++
			}
		}
		if hi > lo {
			chunks = append(chunks, buildChunk{lo: lo, hi: hi})
		}
		lo = hi
	}
	return chunks
}

// runChunks executes f over every chunk, on goroutines when there is
// more than one.
func runChunks(chunks []buildChunk, f func(c *buildChunk)) {
	if len(chunks) == 1 {
		f(&chunks[0])
		return
	}
	var wg sync.WaitGroup
	for ci := range chunks {
		wg.Add(1)
		go func(c *buildChunk) {
			defer wg.Done()
			f(c)
		}(&chunks[ci])
	}
	wg.Wait()
}
