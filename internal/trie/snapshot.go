package trie

import "fmt"

// This file is the serialization boundary of the trie: the level arrays
// are exposed as raw slices (LevelData) so a storage layer can write
// them to disk byte-for-byte and later reconstruct the identical trie
// around mmap'd file contents without copying. The trie itself stays
// storage-agnostic — internal/store owns files, checksums and mmap.

// LevelData is the raw content of one trie level: the node values plus
// the child-range offsets into the next level (Start has len(Vals)+1
// entries; the deepest level's offsets are present but unused, matching
// the in-memory layout exactly). The slices are views, not copies —
// writers must not mutate them, and a trie constructed from them via
// FromLevels aliases them for its lifetime.
type LevelData struct {
	Vals  []int64
	Start []int32
}

// Snapshot exposes the trie's level arrays for serialization. Only
// fully materialized tries snapshot — a patched trie is a transient
// overlay over a base that is itself snapshot-able, so persisting it
// would duplicate the base; callers compact (rebuild) first.
func (t *Trie) Snapshot() ([]LevelData, error) {
	if t.patch != nil {
		return nil, fmt.Errorf("trie: cannot snapshot a patched trie (snapshot the base and replay the delta instead)")
	}
	out := make([]LevelData, len(t.levels))
	for d := range t.levels {
		out[d] = LevelData{Vals: t.levels[d].vals, Start: t.levels[d].start}
	}
	return out, nil
}

// FromLevels reconstructs a fully materialized trie around the given
// level arrays — the open-from-disk twin of Build. The slices are
// aliased, not copied, which is what makes an mmap-backed open
// zero-copy: iterators then read the file's pages directly, and every
// such read is charged through the iterator's stats.Counters exactly
// like an access to a built trie.
//
// The arrays are validated structurally before any iterator can touch
// them (lengths, offset monotonicity and bounds, sorted sibling
// ranges), so a snapshot that passed its checksums but carries
// impossible structure is refused instead of panicking mid-join. The
// returned trie has no default counters sink; attach per-run counters
// via NewIteratorCounters, as registry-served tries always do.
func FromLevels(levels []LevelData) (*Trie, error) {
	if err := validateLevels(levels); err != nil {
		return nil, err
	}
	t := &Trie{arity: len(levels), levels: make([]level, len(levels))}
	for d := range levels {
		t.levels[d] = level{vals: levels[d].Vals, start: levels[d].Start}
	}
	return t, nil
}

// validateLevels checks the cascading-vector invariants Build
// establishes: per level, start has len(vals)+1 entries; on every
// non-deepest level start is nondecreasing from 0 to the next level's
// length; and within each sibling range values strictly increase
// (level 0 is one range spanning the whole level). O(total cells), no
// allocation — cheap next to the IO that precedes it.
func validateLevels(levels []LevelData) error {
	if len(levels) == 0 {
		return fmt.Errorf("trie: snapshot has no levels")
	}
	for d, lvl := range levels {
		if len(lvl.Start) != len(lvl.Vals)+1 {
			return fmt.Errorf("trie: level %d has %d offsets for %d values (want %d)",
				d, len(lvl.Start), len(lvl.Vals), len(lvl.Vals)+1)
		}
		if d == len(levels)-1 {
			continue // deepest level's offsets are unused padding
		}
		next := len(levels[d+1].Vals)
		if lvl.Start[0] != 0 {
			return fmt.Errorf("trie: level %d offsets start at %d, want 0", d, lvl.Start[0])
		}
		for i := 1; i < len(lvl.Start); i++ {
			if lvl.Start[i] < lvl.Start[i-1] {
				return fmt.Errorf("trie: level %d offset %d decreases (%d < %d)",
					d, i, lvl.Start[i], lvl.Start[i-1])
			}
		}
		if int(lvl.Start[len(lvl.Start)-1]) != next {
			return fmt.Errorf("trie: level %d offsets end at %d, want next level length %d",
				d, lvl.Start[len(lvl.Start)-1], next)
		}
	}
	// Sibling ranges must be strictly increasing: seeks binary-search
	// within them. Walk each level under its parent's boundaries.
	for d, lvl := range levels {
		isBoundary := func(i int) bool { return false }
		if d > 0 {
			parent := levels[d-1].Start
			pi := 1 // parent[0] == 0 is the first range's start, not a break
			isBoundary = func(i int) bool {
				for pi < len(parent) && int(parent[pi]) < i {
					pi++
				}
				return pi < len(parent) && int(parent[pi]) == i
			}
		}
		for i := 1; i < len(lvl.Vals); i++ {
			if isBoundary(i) {
				continue
			}
			if lvl.Vals[i] <= lvl.Vals[i-1] {
				return fmt.Errorf("trie: level %d values not strictly increasing within a sibling range at %d", d, i)
			}
		}
	}
	return nil
}
