// Package trie implements the trie indices LFTJ scans: for each atom, a
// trie over the (column-permuted) relation, one level per variable, with
// siblings stored sorted. The representation is the flat "cascading
// vectors" layout the paper uses for YTD and that also serves LFTJ here:
// per level, a values array plus child-range offsets into the next level.
// seekLowerBound is a binary search within the sibling range, meeting the
// amortized-logarithmic requirement for worst-case optimality.
//
// Every cell read — including each binary-search probe — increments a
// stats.Counters (the trie's shared sink by default, or a per-iterator
// sink for parallel workers), which is how the repository reproduces the
// paper's memory-traffic numbers (§1, §5).
package trie

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/stats"
)

// level holds one trie depth: vals are the node values; start[i] is the
// offset of node i's children in the next level (children of node i are
// next.vals[start[i]:start[i+1]]; start has len(vals)+1 entries).
type level struct {
	vals  []int64
	start []int32
}

// Trie is an immutable trie over a sorted relation. Depth d corresponds to
// relation column d (after any permutation applied by the caller).
//
// A trie is either fully materialized (patch == nil) or a copy-on-write
// patch over a shared base (see BuildPatched): levels then aliases the
// base trie's arrays and patch carries the insert overlay and deleted
// base nodes that iterators merge on the fly.
type Trie struct {
	arity  int
	levels []level
	c      *stats.Counters
	patch  *patchSet // nil for fully materialized tries
}

// Build constructs a trie over the relation. The relation must already be
// in the column order the trie should index (use Relation.Permute first).
// counters may be nil to disable accounting.
func Build(r *relation.Relation, counters *stats.Counters) *Trie {
	if counters != nil {
		counters.TrieBuilds++
	}
	t := &Trie{arity: r.Arity(), c: counters}
	n := r.Len()
	k := r.Arity()
	t.levels = make([]level, k)
	if n == 0 || k == 0 {
		for d := range t.levels {
			t.levels[d] = level{start: []int32{0}}
		}
		return t
	}
	// The relation is sorted, so every trie node at depth d is a
	// contiguous row range sharing a length-(d+1) prefix. prevRows holds
	// the row boundaries of the depth-(d-1) nodes (virtual root: one node
	// spanning all rows); scanning each span groups equal column-d values
	// into the depth-d nodes and yields the parent child-offsets directly.
	prevRows := []int32{0, int32(n)}
	for d := 0; d < k; d++ {
		var vals []int64
		var rows []int32
		parentStart := make([]int32, len(prevRows))
		for p := 0; p+1 < len(prevRows); p++ {
			parentStart[p] = int32(len(vals))
			for i := prevRows[p]; i < prevRows[p+1]; {
				v := r.Tuple(int(i))[d]
				vals = append(vals, v)
				rows = append(rows, i)
				j := i + 1
				for j < prevRows[p+1] && r.Tuple(int(j))[d] == v {
					j++
				}
				i = j
			}
		}
		parentStart[len(prevRows)-1] = int32(len(vals))
		t.levels[d] = level{vals: vals}
		if d > 0 {
			t.levels[d-1].start = parentStart
		}
		rows = append(rows, int32(n))
		prevRows = rows
	}
	last := &t.levels[k-1]
	last.start = make([]int32, len(last.vals)+1) // leaves have no children
	return t
}

// Arity returns the trie depth (number of levels).
func (t *Trie) Arity() int { return t.arity }

// Len returns the number of nodes at depth d. For patched tries it is
// an estimate (base + overlay − dead): a value present in both the base
// and the overlay under the same prefix counts twice. The estimator
// consumers (order cost, fanout) tolerate this.
func (t *Trie) Len(d int) int {
	n := len(t.levels[d].vals)
	if t.patch != nil {
		n += len(t.patch.adds[d].vals) - len(t.patch.dead[d])
	}
	return n
}

// Counters returns the accounting sink (possibly nil).
func (t *Trie) Counters() *stats.Counters { return t.c }

// MemoryBytes estimates the trie's resident size: 8 bytes per value
// cell plus 4 per child offset. The paper's premise is that LFTJ's only
// significant memory is these indices; the estimate quantifies it next
// to the cache sizes reported by the engines. A patched trie reports
// the bytes it keeps alive — the shared base arrays plus its own
// overlay and dead sets — so a byte budget charging both the base and
// the patch double-counts the shared part, erring on the safe side.
func (t *Trie) MemoryBytes() int64 {
	var b int64
	for d := range t.levels {
		b += 8 * int64(len(t.levels[d].vals))
		b += 4 * int64(len(t.levels[d].start))
	}
	if t.patch != nil {
		for d := range t.patch.adds {
			b += 8 * int64(len(t.patch.adds[d].vals))
			b += 4 * int64(len(t.patch.adds[d].start))
		}
		for d := range t.patch.dead {
			b += 8 * int64(len(t.patch.dead[d]))
		}
	}
	return b
}

// PatchBytes reports the bytes owned by the patch alone (0 for fully
// materialized tries) — the marginal cost of keeping this version
// resident next to its base.
func (t *Trie) PatchBytes() int64 {
	if t.patch == nil {
		return 0
	}
	var b int64
	for d := range t.patch.adds {
		b += 8 * int64(len(t.patch.adds[d].vals))
		b += 4 * int64(len(t.patch.adds[d].start))
	}
	for d := range t.patch.dead {
		b += 8 * int64(len(t.patch.dead[d]))
	}
	return b
}

// Fanout returns the average number of children per node at depth d
// (|level d+1| / |level d|), used by the order-cost estimator.
func (t *Trie) Fanout(d int) float64 {
	if d+1 >= t.arity || t.Len(d) == 0 {
		return 1
	}
	return float64(t.Len(d+1)) / float64(t.Len(d))
}

// Iterator is a positioned cursor over a trie implementing the LFTJ trie
// iterator interface: Open descends to the first child, Up ascends, and
// Key/Next/Seek/AtEnd operate on the current sibling range (Veldhuizen's
// linear-iterator interface per level).
//
// The iterator starts at the virtual root (depth -1); Open must be called
// before the level-0 operations.
//
// Over a patched trie (BuildPatched) the same interface is served by an
// on-the-fly two-way merge: a base cursor that skips dead nodes and an
// overlay cursor over the inserted tuples, with Key/Next/Seek taking
// the minimum side. The base cursor position is kept dead-skipped as an
// invariant after every positioning operation.
type Iterator struct {
	t     *Trie
	c     *stats.Counters // accounting sink (defaults to the trie's)
	depth int
	hi    []int32 // base sibling range end per depth
	pos   []int32 // base cursor per depth (positions never move backwards)
	ahi   []int32 // overlay sibling range end per depth (patched tries only)
	apos  []int32
}

// NewIterator returns an iterator at the virtual root, accounting into
// the trie's shared counters.
func (t *Trie) NewIterator() *Iterator { return t.NewIteratorCounters(t.c) }

// NewIteratorCounters returns an iterator at the virtual root that
// accounts into c instead of the trie's shared counters. Parallel engines
// use this so workers over the same immutable trie each increment a
// private Counters (the trie's own sink is not goroutine-safe). c may be
// nil to disable accounting for this cursor.
func (t *Trie) NewIteratorCounters(c *stats.Counters) *Iterator {
	it := &Iterator{
		t:     t,
		c:     c,
		depth: -1,
		hi:    make([]int32, t.arity),
		pos:   make([]int32, t.arity),
	}
	if t.patch != nil {
		it.ahi = make([]int32, t.arity)
		it.apos = make([]int32, t.arity)
	}
	return it
}

// Depth returns the current depth (-1 at the virtual root).
func (it *Iterator) Depth() int { return it.depth }

// Open descends to the first child of the current node. At the virtual
// root it opens the full first level. Opening an empty child range is
// legal and leaves the iterator AtEnd at the new depth (possible only on
// empty tries; interior trie nodes always have at least one child).
func (it *Iterator) Open() {
	d := it.depth + 1
	if d >= it.t.arity {
		panic("trie: Open below the deepest level")
	}
	p := it.t.patch
	if p == nil {
		var lo, hi int32
		if d == 0 {
			lo, hi = 0, int32(len(it.t.levels[0].vals))
		} else {
			lvl := &it.t.levels[it.depth]
			q := it.pos[it.depth]
			lo, hi = lvl.start[q], lvl.start[q+1]
			it.account(2)
		}
		it.depth = d
		it.hi[d], it.pos[d] = hi, lo
		it.account(1)
		return
	}
	// Patched: descend each side that carries the current key. A side
	// that does not gets an empty child range and sits AtEnd below.
	var blo, bhi, alo, ahi int32
	if d == 0 {
		bhi = int32(len(it.t.levels[0].vals))
		ahi = int32(len(p.adds[0].vals))
	} else {
		cur := it.mergedKey()
		if bv, ok := it.baseKey(); ok && bv == cur {
			lvl := &it.t.levels[it.depth]
			q := it.pos[it.depth]
			blo, bhi = lvl.start[q], lvl.start[q+1]
			it.account(2)
		}
		if av, ok := it.overlayKey(); ok && av == cur {
			lvl := &p.adds[it.depth]
			q := it.apos[it.depth]
			alo, ahi = lvl.start[q], lvl.start[q+1]
			it.account(2)
		}
	}
	it.depth = d
	it.hi[d], it.pos[d] = bhi, blo
	it.ahi[d], it.apos[d] = ahi, alo
	it.skipDead(d)
	it.account(1)
}

// Up ascends one level.
func (it *Iterator) Up() {
	if it.depth < 0 {
		panic("trie: Up above the virtual root")
	}
	it.depth--
}

// AtEnd reports whether the iterator moved past the last sibling.
func (it *Iterator) AtEnd() bool {
	d := it.depth
	if it.t.patch == nil {
		return it.pos[d] >= it.hi[d]
	}
	return it.pos[d] >= it.hi[d] && it.apos[d] >= it.ahi[d]
}

// Key returns the value at the current position. It must not be called
// when AtEnd.
func (it *Iterator) Key() int64 {
	it.account(1)
	if it.t.patch == nil {
		return it.t.levels[it.depth].vals[it.pos[it.depth]]
	}
	return it.mergedKey()
}

// Next advances to the next sibling.
func (it *Iterator) Next() {
	d := it.depth
	if it.t.patch == nil {
		it.pos[d]++
		it.account(1)
		return
	}
	// Advance every side positioned on the current key.
	cur := it.mergedKey()
	if bv, ok := it.baseKey(); ok && bv == cur {
		it.pos[d]++
		it.skipDead(d)
	}
	if av, ok := it.overlayKey(); ok && av == cur {
		it.apos[d]++
	}
	it.account(1)
}

// Seek positions the iterator at the least sibling with value >= v,
// or AtEnd if none, without moving backwards. It uses a binary search
// over the remaining sibling range; each probe counts as one access.
func (it *Iterator) SeekGE(v int64) {
	d := it.depth
	it.pos[d] = it.seekLevel(&it.t.levels[d], it.pos[d], it.hi[d], v)
	if it.t.patch == nil {
		return
	}
	it.skipDead(d)
	it.apos[d] = it.seekLevel(&it.t.patch.adds[d], it.apos[d], it.ahi[d], v)
}

// seekLevel advances a cursor within one level's sibling range [pos,hi)
// to the least entry >= v, charging one access per probe.
func (it *Iterator) seekLevel(lvl *level, pos, hi int32, v int64) int32 {
	// Galloping start: check the current position first — LFTJ seeks are
	// frequently short.
	if pos < hi {
		it.account(1)
		if lvl.vals[pos] >= v {
			return pos
		}
		pos++
	}
	probes := 0
	i := int32(sort.Search(int(hi-pos), func(i int) bool {
		probes++
		return lvl.vals[pos+int32(i)] >= v
	}))
	it.account(int64(probes))
	return pos + i
}

// baseKey returns the base cursor's key at the current depth, if the
// base side is not exhausted. The base position is dead-skipped by
// invariant, so a live position always carries a surviving node.
func (it *Iterator) baseKey() (int64, bool) {
	d := it.depth
	if it.pos[d] >= it.hi[d] {
		return 0, false
	}
	return it.t.levels[d].vals[it.pos[d]], true
}

// overlayKey returns the overlay cursor's key at the current depth, if
// the overlay side is not exhausted.
func (it *Iterator) overlayKey() (int64, bool) {
	d := it.depth
	if it.apos[d] >= it.ahi[d] {
		return 0, false
	}
	return it.t.patch.adds[d].vals[it.apos[d]], true
}

// mergedKey is the patched-trie current key: the minimum of the live
// sides. It must not be called when AtEnd.
func (it *Iterator) mergedKey() int64 {
	bv, bok := it.baseKey()
	av, aok := it.overlayKey()
	switch {
	case bok && aok:
		if av < bv {
			return av
		}
		return bv
	case bok:
		return bv
	case aok:
		return av
	}
	panic("trie: Key called at end")
}

// skipDead restores the base-cursor invariant at depth d: the position
// never rests on a node whose every leaf was deleted.
func (it *Iterator) skipDead(d int) {
	dead := it.t.patch.dead[d]
	if len(dead) == 0 {
		return
	}
	for it.pos[d] < it.hi[d] {
		if _, gone := dead[it.pos[d]]; !gone {
			return
		}
		it.pos[d]++
		it.account(1)
	}
}

// account adds n trie accesses to the iterator's counters, if any.
func (it *Iterator) account(n int64) {
	if it.c != nil {
		it.c.TrieAccesses += n
	}
}

// String aids debugging.
func (it *Iterator) String() string {
	return fmt.Sprintf("trie.Iterator{depth=%d pos=%v}", it.depth, it.pos)
}
