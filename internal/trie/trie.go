// Package trie implements the trie indices LFTJ scans: for each atom, a
// trie over the (column-permuted) relation, one level per variable, with
// siblings stored sorted. The representation is the flat "cascading
// vectors" layout the paper uses for YTD and that also serves LFTJ here:
// per level, a values array plus child-range offsets into the next level.
// seekLowerBound is a binary search within the sibling range, meeting the
// amortized-logarithmic requirement for worst-case optimality.
//
// Every cell read — including each binary-search probe — increments a
// stats.Counters (the trie's shared sink by default, or a per-iterator
// sink for parallel workers), which is how the repository reproduces the
// paper's memory-traffic numbers (§1, §5).
package trie

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/stats"
)

// level holds one trie depth: vals are the node values; start[i] is the
// offset of node i's children in the next level (children of node i are
// next.vals[start[i]:start[i+1]]; start has len(vals)+1 entries).
type level struct {
	vals  []int64
	start []int32
}

// Trie is an immutable trie over a sorted relation. Depth d corresponds to
// relation column d (after any permutation applied by the caller).
type Trie struct {
	arity  int
	levels []level
	c      *stats.Counters
}

// Build constructs a trie over the relation. The relation must already be
// in the column order the trie should index (use Relation.Permute first).
// counters may be nil to disable accounting.
func Build(r *relation.Relation, counters *stats.Counters) *Trie {
	if counters != nil {
		counters.TrieBuilds++
	}
	t := &Trie{arity: r.Arity(), c: counters}
	n := r.Len()
	k := r.Arity()
	t.levels = make([]level, k)
	if n == 0 || k == 0 {
		for d := range t.levels {
			t.levels[d] = level{start: []int32{0}}
		}
		return t
	}
	// The relation is sorted, so every trie node at depth d is a
	// contiguous row range sharing a length-(d+1) prefix. prevRows holds
	// the row boundaries of the depth-(d-1) nodes (virtual root: one node
	// spanning all rows); scanning each span groups equal column-d values
	// into the depth-d nodes and yields the parent child-offsets directly.
	prevRows := []int32{0, int32(n)}
	for d := 0; d < k; d++ {
		var vals []int64
		var rows []int32
		parentStart := make([]int32, len(prevRows))
		for p := 0; p+1 < len(prevRows); p++ {
			parentStart[p] = int32(len(vals))
			for i := prevRows[p]; i < prevRows[p+1]; {
				v := r.Tuple(int(i))[d]
				vals = append(vals, v)
				rows = append(rows, i)
				j := i + 1
				for j < prevRows[p+1] && r.Tuple(int(j))[d] == v {
					j++
				}
				i = j
			}
		}
		parentStart[len(prevRows)-1] = int32(len(vals))
		t.levels[d] = level{vals: vals}
		if d > 0 {
			t.levels[d-1].start = parentStart
		}
		rows = append(rows, int32(n))
		prevRows = rows
	}
	last := &t.levels[k-1]
	last.start = make([]int32, len(last.vals)+1) // leaves have no children
	return t
}

// Arity returns the trie depth (number of levels).
func (t *Trie) Arity() int { return t.arity }

// Len returns the number of nodes at depth d.
func (t *Trie) Len(d int) int { return len(t.levels[d].vals) }

// Counters returns the accounting sink (possibly nil).
func (t *Trie) Counters() *stats.Counters { return t.c }

// MemoryBytes estimates the trie's resident size: 8 bytes per value
// cell plus 4 per child offset. The paper's premise is that LFTJ's only
// significant memory is these indices; the estimate quantifies it next
// to the cache sizes reported by the engines.
func (t *Trie) MemoryBytes() int64 {
	var b int64
	for d := range t.levels {
		b += 8 * int64(len(t.levels[d].vals))
		b += 4 * int64(len(t.levels[d].start))
	}
	return b
}

// Fanout returns the average number of children per node at depth d
// (|level d+1| / |level d|), used by the order-cost estimator.
func (t *Trie) Fanout(d int) float64 {
	if d+1 >= t.arity || len(t.levels[d].vals) == 0 {
		return 1
	}
	return float64(len(t.levels[d+1].vals)) / float64(len(t.levels[d].vals))
}

// Iterator is a positioned cursor over a trie implementing the LFTJ trie
// iterator interface: Open descends to the first child, Up ascends, and
// Key/Next/Seek/AtEnd operate on the current sibling range (Veldhuizen's
// linear-iterator interface per level).
//
// The iterator starts at the virtual root (depth -1); Open must be called
// before the level-0 operations.
type Iterator struct {
	t     *Trie
	c     *stats.Counters // accounting sink (defaults to the trie's)
	depth int
	lo    []int32 // sibling range per depth
	hi    []int32
	pos   []int32
}

// NewIterator returns an iterator at the virtual root, accounting into
// the trie's shared counters.
func (t *Trie) NewIterator() *Iterator { return t.NewIteratorCounters(t.c) }

// NewIteratorCounters returns an iterator at the virtual root that
// accounts into c instead of the trie's shared counters. Parallel engines
// use this so workers over the same immutable trie each increment a
// private Counters (the trie's own sink is not goroutine-safe). c may be
// nil to disable accounting for this cursor.
func (t *Trie) NewIteratorCounters(c *stats.Counters) *Iterator {
	return &Iterator{
		t:     t,
		c:     c,
		depth: -1,
		lo:    make([]int32, t.arity),
		hi:    make([]int32, t.arity),
		pos:   make([]int32, t.arity),
	}
}

// Depth returns the current depth (-1 at the virtual root).
func (it *Iterator) Depth() int { return it.depth }

// Open descends to the first child of the current node. At the virtual
// root it opens the full first level. Opening an empty child range is
// legal and leaves the iterator AtEnd at the new depth (possible only on
// empty tries; interior trie nodes always have at least one child).
func (it *Iterator) Open() {
	d := it.depth + 1
	if d >= it.t.arity {
		panic("trie: Open below the deepest level")
	}
	var lo, hi int32
	if d == 0 {
		lo, hi = 0, int32(len(it.t.levels[0].vals))
	} else {
		lvl := &it.t.levels[it.depth]
		p := it.pos[it.depth]
		lo, hi = lvl.start[p], lvl.start[p+1]
		it.account(2)
	}
	it.depth = d
	it.lo[d], it.hi[d], it.pos[d] = lo, hi, lo
	it.account(1)
}

// Up ascends one level.
func (it *Iterator) Up() {
	if it.depth < 0 {
		panic("trie: Up above the virtual root")
	}
	it.depth--
}

// AtEnd reports whether the iterator moved past the last sibling.
func (it *Iterator) AtEnd() bool {
	return it.pos[it.depth] >= it.hi[it.depth]
}

// Key returns the value at the current position. It must not be called
// when AtEnd.
func (it *Iterator) Key() int64 {
	it.account(1)
	return it.t.levels[it.depth].vals[it.pos[it.depth]]
}

// Next advances to the next sibling.
func (it *Iterator) Next() {
	it.pos[it.depth]++
	it.account(1)
}

// Seek positions the iterator at the least sibling with value >= v,
// or AtEnd if none, without moving backwards. It uses a binary search
// over the remaining sibling range; each probe counts as one access.
func (it *Iterator) SeekGE(v int64) {
	d := it.depth
	lvl := &it.t.levels[d]
	lo, hi := it.pos[d], it.hi[d]
	// Galloping start: check the current position first — LFTJ seeks are
	// frequently short.
	if lo < hi {
		it.account(1)
		if lvl.vals[lo] >= v {
			return
		}
		lo++
	}
	probes := 0
	i := int32(sort.Search(int(hi-lo), func(i int) bool {
		probes++
		return lvl.vals[lo+int32(i)] >= v
	}))
	it.account(int64(probes))
	it.pos[d] = lo + i
}

// account adds n trie accesses to the iterator's counters, if any.
func (it *Iterator) account(n int64) {
	if it.c != nil {
		it.c.TrieAccesses += n
	}
}

// String aids debugging.
func (it *Iterator) String() string {
	return fmt.Sprintf("trie.Iterator{depth=%d pos=%v}", it.depth, it.pos)
}
