// Package trie implements the trie indices LFTJ scans: for each atom, a
// trie over the (column-permuted) relation, one level per variable, with
// siblings stored sorted. The representation is the flat "cascading
// vectors" layout the paper uses for YTD and that also serves LFTJ here:
// per level, a values array plus child-range offsets into the next level.
// SeekGE is a galloping (exponential-then-binary) search within the
// sibling range, meeting the amortized-logarithmic requirement for
// worst-case optimality.
//
// Every cell read — including each search probe — is charged to a
// stats.Counters (the trie's shared sink by default, or a per-iterator
// sink for parallel workers), which is how the repository reproduces the
// paper's memory-traffic numbers (§1, §5). Charges are batched in the
// iterator and flushed at Open/Up boundaries; the flushed totals are
// exact (see Iterator).
package trie

import (
	"fmt"

	"repro/internal/stats"
)

// level holds one trie depth: vals are the node values; start[i] is the
// offset of node i's children in the next level (children of node i are
// next.vals[start[i]:start[i+1]]; start has len(vals)+1 entries).
type level struct {
	vals  []int64
	start []int32
}

// Trie is an immutable trie over a sorted relation. Depth d corresponds to
// relation column d (after any permutation applied by the caller).
//
// A trie is either fully materialized (patch == nil) or a copy-on-write
// patch over a shared base (see BuildPatched): levels then aliases the
// base trie's arrays and patch carries the insert overlay and deleted
// base nodes that iterators merge on the fly.
type Trie struct {
	arity  int
	levels []level
	c      *stats.Counters
	patch  *patchSet // nil for fully materialized tries
}

// Arity returns the trie depth (number of levels).
func (t *Trie) Arity() int { return t.arity }

// Len returns the number of nodes at depth d. For patched tries it is
// an estimate (base + overlay − dead): a value present in both the base
// and the overlay under the same prefix counts twice. The estimator
// consumers (order cost, fanout) tolerate this; the exact tolerance
// contract is pinned by TestPatchedLenTolerance.
func (t *Trie) Len(d int) int {
	n := len(t.levels[d].vals)
	if t.patch != nil {
		n += len(t.patch.adds[d].vals) - len(t.patch.dead[d])
	}
	return n
}

// Counters returns the accounting sink (possibly nil).
func (t *Trie) Counters() *stats.Counters { return t.c }

// MemoryBytes estimates the trie's resident size: 8 bytes per value
// cell plus 4 per child offset. The paper's premise is that LFTJ's only
// significant memory is these indices; the estimate quantifies it next
// to the cache sizes reported by the engines. A patched trie reports
// the bytes it keeps alive — the shared base arrays plus its own
// overlay and dead sets — so a byte budget charging both the base and
// the patch double-counts the shared part, erring on the safe side.
func (t *Trie) MemoryBytes() int64 {
	var b int64
	for d := range t.levels {
		b += 8 * int64(len(t.levels[d].vals))
		b += 4 * int64(len(t.levels[d].start))
	}
	if t.patch != nil {
		for d := range t.patch.adds {
			b += 8 * int64(len(t.patch.adds[d].vals))
			b += 4 * int64(len(t.patch.adds[d].start))
		}
		for d := range t.patch.dead {
			b += 8 * int64(len(t.patch.dead[d]))
		}
	}
	return b
}

// PatchBytes reports the bytes owned by the patch alone (0 for fully
// materialized tries) — the marginal cost of keeping this version
// resident next to its base.
func (t *Trie) PatchBytes() int64 {
	if t.patch == nil {
		return 0
	}
	var b int64
	for d := range t.patch.adds {
		b += 8 * int64(len(t.patch.adds[d].vals))
		b += 4 * int64(len(t.patch.adds[d].start))
	}
	for d := range t.patch.dead {
		b += 8 * int64(len(t.patch.dead[d]))
	}
	return b
}

// Fanout returns the average number of children per node at depth d
// (|level d+1| / |level d|), used by the order-cost estimator.
func (t *Trie) Fanout(d int) float64 {
	if d+1 >= t.arity || t.Len(d) == 0 {
		return 1
	}
	return float64(t.Len(d+1)) / float64(t.Len(d))
}

// Iterator is a positioned cursor over a trie implementing the LFTJ trie
// iterator interface: Open descends to the first child, Up ascends, and
// Key/Next/Seek/AtEnd operate on the current sibling range (Veldhuizen's
// linear-iterator interface per level).
//
// The iterator starts at the virtual root (depth -1); Open must be called
// before the level-0 operations.
//
// Two concrete cursor shapes live behind this one type, selected at
// NewIterator time: over a fully materialized trie (mg == nil) every
// operation runs a branch-free array walk — the hot path of every join
// engine — while over a patched trie (BuildPatched) the same interface
// is served by an on-the-fly two-way merge held in mg: a base cursor
// that skips dead nodes and an overlay cursor over the inserted tuples,
// with Key/Next/Seek taking the minimum side. The base cursor position
// is kept dead-skipped as an invariant after every positioning
// operation. The fast-path methods test mg once and tail-call the merge
// twin, so materialized tries never pay for the patch machinery.
//
// Accounting is batched: operations accumulate access charges in the
// iterator (one pending counter, no guarded sink write per probe) and
// flush them at close boundaries — Flush, SetCounters, and the runners'
// Release, which every engine entry point calls when its scan finishes.
// The flushed totals are bit-identical to the historical per-probe-
// accounted binary-search implementation — see seekLevel.
type Iterator struct {
	t       *Trie
	c       *stats.Counters // accounting sink (defaults to the trie's)
	pending int64           // batched access charges, flushed at Open/Up
	cur     int64           // current key at the current depth (valid when !end)
	end     bool            // whether the current sibling range is exhausted
	depth   int
	hi      []int32      // base sibling range end per depth
	pos     []int32      // base cursor per depth (positions never move backwards)
	mg      *mergeCursor // overlay cursor state; nil for materialized tries
}

// mergeCursor carries the patched-trie overlay side of an Iterator, off
// the materialized fast path.
type mergeCursor struct {
	ahi  []int32 // overlay sibling range end per depth
	apos []int32 // overlay cursor per depth
}

// NewIterator returns an iterator at the virtual root, accounting into
// the trie's shared counters.
func (t *Trie) NewIterator() *Iterator { return t.NewIteratorCounters(t.c) }

// NewIteratorCounters returns an iterator at the virtual root that
// accounts into c instead of the trie's shared counters. Parallel engines
// use this so workers over the same immutable trie each increment a
// private Counters (the trie's own sink is not goroutine-safe). c may be
// nil to disable accounting for this cursor.
func (t *Trie) NewIteratorCounters(c *stats.Counters) *Iterator {
	it := &Iterator{
		t:     t,
		c:     c,
		depth: -1,
		hi:    make([]int32, t.arity),
		pos:   make([]int32, t.arity),
	}
	if t.patch != nil {
		it.mg = &mergeCursor{
			ahi:  make([]int32, t.arity),
			apos: make([]int32, t.arity),
		}
	}
	return it
}

// Depth returns the current depth (-1 at the virtual root).
func (it *Iterator) Depth() int { return it.depth }

// SetCounters rebinds the accounting sink, flushing any batched charges
// into the previous sink first. Pooled runners use it to reuse one
// iterator across executions that account into per-run counters.
func (it *Iterator) SetCounters(c *stats.Counters) {
	it.flush()
	it.c = c
}

// Flush drains the batched access charges into the counters sink,
// making it exact. The leapfrog runners flush every iterator on
// Release; standalone iterator users call Flush before reading their
// counters.
func (it *Iterator) Flush() { it.flush() }

func (it *Iterator) flush() {
	// The pending == 0 guard is load-bearing for pooling: a released
	// runner's iterators have nothing pending, so rebinding them to a
	// new sink must not touch the previous owner's counters (a += 0
	// store would race with the old owner reading its totals).
	if it.pending == 0 {
		return
	}
	if it.c != nil {
		it.c.TrieAccesses += it.pending
	}
	it.pending = 0
}

// Open descends to the first child of the current node. At the virtual
// root it opens the full first level. Opening an empty child range is
// legal and leaves the iterator AtEnd at the new depth (possible only on
// empty tries; interior trie nodes always have at least one child).
func (it *Iterator) Open() {
	d := it.depth + 1
	if d >= it.t.arity {
		panic("trie: Open below the deepest level")
	}
	if it.mg != nil {
		it.openMerge(d)
		return
	}
	var lo, hi int32
	if d == 0 {
		hi = int32(len(it.t.levels[0].vals))
	} else {
		lvl := &it.t.levels[it.depth]
		q := it.pos[it.depth]
		lo, hi = lvl.start[q], lvl.start[q+1]
		it.pending += 2
	}
	it.depth = d
	it.hi[d], it.pos[d] = hi, lo
	if lo < hi {
		it.cur = it.t.levels[d].vals[lo]
		it.end = false
	} else {
		it.end = true
	}
	it.pending++
}

// openMerge is the patched-trie Open: descend each side that carries the
// current key. A side that does not gets an empty child range and sits
// AtEnd below.
func (it *Iterator) openMerge(d int) {
	p := it.t.patch
	var blo, bhi, alo, ahi int32
	if d == 0 {
		bhi = int32(len(it.t.levels[0].vals))
		ahi = int32(len(p.adds[0].vals))
	} else {
		cur := it.cur
		if bv, ok := it.baseKey(); ok && bv == cur {
			lvl := &it.t.levels[it.depth]
			q := it.pos[it.depth]
			blo, bhi = lvl.start[q], lvl.start[q+1]
			it.pending += 2
		}
		if av, ok := it.overlayKey(); ok && av == cur {
			lvl := &p.adds[it.depth]
			q := it.mg.apos[it.depth]
			alo, ahi = lvl.start[q], lvl.start[q+1]
			it.pending += 2
		}
	}
	it.depth = d
	it.hi[d], it.pos[d] = bhi, blo
	it.mg.ahi[d], it.mg.apos[d] = ahi, alo
	it.skipDead(d)
	it.refreshMerge(d)
	it.pending++
}

// Up ascends one level, restoring the parent level's cached key and
// end state (the parent cursor did not move while below it).
func (it *Iterator) Up() {
	d := it.depth - 1
	if d < -1 {
		panic("trie: Up above the virtual root")
	}
	it.depth = d
	if d < 0 {
		return
	}
	if it.mg == nil {
		if p := it.pos[d]; p < it.hi[d] {
			it.cur = it.t.levels[d].vals[p]
			it.end = false
		} else {
			it.end = true
		}
		return
	}
	it.refreshMerge(d)
}

// AtEnd reports whether the iterator moved past the last sibling.
func (it *Iterator) AtEnd() bool { return it.end }

// Key returns the value at the current position. It must not be called
// when AtEnd.
func (it *Iterator) Key() int64 {
	it.pending++
	return it.cur
}

// Next advances to the next sibling.
func (it *Iterator) Next() {
	it.pending++
	if it.mg == nil {
		d := it.depth
		p := it.pos[d] + 1
		it.pos[d] = p
		if p < it.hi[d] {
			it.cur = it.t.levels[d].vals[p]
		} else {
			it.end = true
		}
		return
	}
	it.nextMerge()
}

// nextMerge advances every merge side positioned on the current key.
func (it *Iterator) nextMerge() {
	d := it.depth
	cur := it.cur
	if bv, ok := it.baseKey(); ok && bv == cur {
		it.pos[d]++
		it.skipDead(d)
	}
	if av, ok := it.overlayKey(); ok && av == cur {
		it.mg.apos[d]++
	}
	it.refreshMerge(d)
}

// refreshMerge recomputes the cached key/end state of the merge shape
// from the two cursors at depth d.
func (it *Iterator) refreshMerge(d int) {
	if it.pos[d] >= it.hi[d] && it.mg.apos[d] >= it.mg.ahi[d] {
		it.end = true
		return
	}
	it.end = false
	it.cur = it.mergedKey()
}

// SeekGE positions the iterator at the least sibling with value >= v,
// or AtEnd if none, without moving backwards. The scan is galloping;
// see seekLevel for the cost and accounting contract. The materialized
// fast path is flattened in place: the current-position check reads the
// cached key (no memory probe), and only real searches descend into
// gallop.
func (it *Iterator) SeekGE(v int64) {
	if it.mg != nil {
		it.seekMerge(v)
		return
	}
	if it.end {
		return
	}
	it.pending++
	if it.cur >= v {
		return
	}
	d := it.depth
	pos := it.pos[d] + 1
	hi := it.hi[d]
	vals := it.t.levels[d].vals
	n := hi - pos
	if n <= 1 {
		// 0 or 1 candidates left: the model cost is n probes either way.
		it.pending += int64(n)
		if n == 1 {
			if w := vals[pos]; w >= v {
				it.pos[d] = pos
				it.cur = w
				return
			}
			pos++
		}
		it.pos[d] = pos
		it.end = true
		return
	}
	lo, _ := gallop(vals[pos:hi], v)
	if it.c != nil {
		it.pending += binProbes(n, lo)
	}
	p := pos + lo
	it.pos[d] = p
	if p < hi {
		it.cur = vals[p]
	} else {
		it.end = true
	}
}

// seekMerge is the patched-trie SeekGE: both sides advance through the
// shared seekLevel, then the merged key refreshes.
func (it *Iterator) seekMerge(v int64) {
	d := it.depth
	it.pos[d] = it.seekLevel(&it.t.levels[d], it.pos[d], it.hi[d], v)
	it.skipDead(d)
	it.mg.apos[d] = it.seekLevel(&it.t.patch.adds[d], it.mg.apos[d], it.mg.ahi[d], v)
	it.refreshMerge(d)
}

// seekLevel advances a cursor within one level's sibling range [pos,hi)
// to the least entry >= v using a galloping search: after checking the
// current position (LFTJ seeks are frequently short), probe offsets
// double until one lands at or past the target, then a binary search
// resolves the last window — O(log m) physical probes for a seek of
// distance m, preserving the amortized-log bound with no per-probe
// function call.
//
// The accounting charge is the model cost, not the physical probe
// count: one access for the current-position check plus the exact probe
// count a binary search over the remaining range performs to land on
// the same position. That count is a pure function of the range size
// and the landing offset (every probe compares against the final
// position), so binProbes replays the index arithmetic without touching
// memory. This keeps stats totals bit-identical across the historical
// binary-search implementation and this one, so the paper's
// memory-traffic numbers stay comparable; the accounting-equivalence
// tests pin the contract.
func (it *Iterator) seekLevel(lvl *level, pos, hi int32, v int64) int32 {
	if pos >= hi {
		return pos
	}
	vals := lvl.vals
	it.pending++
	if vals[pos] >= v {
		return pos
	}
	pos++
	n := hi - pos
	if n <= 1 {
		// 0 or 1 candidates left: the model cost is n probes either way.
		it.pending += int64(n)
		if n == 1 && vals[pos] < v {
			pos++
		}
		return pos
	}
	lo, _ := gallop(vals[pos:hi], v)
	if it.c != nil {
		it.pending += binProbes(n, lo)
	}
	return pos + lo
}

// gallop returns the least offset i in [0, len(vals)) with
// vals[i] >= v (or len(vals) if none), plus the number of cells it
// physically probed. Probe offsets double from the front until one
// lands at or past the target, then a binary search resolves the last
// window, so a landing offset of m costs O(log m) probes regardless of
// the level size — the short seeks LFTJ's inner loop is made of stay
// cheap while the amortized-log worst case is preserved.
func gallop(vals []int64, v int64) (int32, int32) {
	n := int32(len(vals))
	probes := int32(0)
	// After the loop, every index < lo holds a value < v and either
	// hi == n or vals[hi] >= v, so the least entry >= v lies in
	// [lo, hi].
	lo, hi := int32(0), n
	// step > 0 guards the doubling against int32 wraparound on levels
	// past 2^30 entries: the loop then stops with lo at the last
	// power-of-two probe and the binary phase covers the tail.
	for step := int32(1); step > 0 && step < n; step <<= 1 {
		probes++
		if vals[step-1] >= v {
			hi = step - 1
			break
		}
		lo = step
	}
	for lo < hi {
		m := int32(uint32(lo+hi) >> 1)
		probes++
		if vals[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo, probes
}

// binProbes returns the number of probes sort.Search performs on n
// elements when the predicate flips at offset r — the charged model
// cost of one seek. Each probe of the lower-bound search compares its
// midpoint against r, so the probe path (and count) is fully determined
// by (n, r) and replaying it costs O(log n) integer ops, no loads.
func binProbes(n, r int32) int64 {
	i, j := int32(0), n
	var p int64
	for i < j {
		h := int32(uint32(i+j) >> 1)
		p++
		if h < r {
			i = h + 1
		} else {
			j = h
		}
	}
	return p
}

// baseKey returns the base cursor's key at the current depth, if the
// base side is not exhausted. The base position is dead-skipped by
// invariant, so a live position always carries a surviving node.
func (it *Iterator) baseKey() (int64, bool) {
	d := it.depth
	if it.pos[d] >= it.hi[d] {
		return 0, false
	}
	return it.t.levels[d].vals[it.pos[d]], true
}

// overlayKey returns the overlay cursor's key at the current depth, if
// the overlay side is not exhausted.
func (it *Iterator) overlayKey() (int64, bool) {
	d := it.depth
	if it.mg.apos[d] >= it.mg.ahi[d] {
		return 0, false
	}
	return it.t.patch.adds[d].vals[it.mg.apos[d]], true
}

// mergedKey is the patched-trie current key: the minimum of the live
// sides. It must not be called when AtEnd.
func (it *Iterator) mergedKey() int64 {
	bv, bok := it.baseKey()
	av, aok := it.overlayKey()
	switch {
	case bok && aok:
		if av < bv {
			return av
		}
		return bv
	case bok:
		return bv
	case aok:
		return av
	}
	panic("trie: Key called at end")
}

// skipDead restores the base-cursor invariant at depth d: the position
// never rests on a node whose every leaf was deleted.
func (it *Iterator) skipDead(d int) {
	dead := it.t.patch.dead[d]
	if len(dead) == 0 {
		return
	}
	for it.pos[d] < it.hi[d] {
		if _, gone := dead[it.pos[d]]; !gone {
			return
		}
		it.pos[d]++
		it.pending++
	}
}

// String aids debugging.
func (it *Iterator) String() string {
	return fmt.Sprintf("trie.Iterator{depth=%d pos=%v}", it.depth, it.pos)
}
