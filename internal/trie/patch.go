package trie

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/stats"
)

// This file implements copy-on-write trie patches: deriving the index
// of a relation version from the resident index of its base version in
// O(k · depth) new nodes for a delta of k tuples, instead of an O(n)
// full rebuild. A patched trie shares the base trie's level arrays
// untouched (zero copies) and carries a patch set: a small overlay trie
// over the inserted tuples plus, per level, the set of base nodes whose
// every leaf was deleted. Iterators merge the two sides on the fly, so
// every engine — sequential, parallel, CLFTJ — runs unchanged over a
// patched index; it just pays a per-step merge branch, which is the
// patch-vs-rebuild crossover the E13 ablation measures.

// patchSet is the copy-on-write delta attached to a patched Trie.
type patchSet struct {
	// adds holds the overlay trie levels over the inserted tuples, in
	// the same cascading-vector layout as Trie.levels.
	adds []level
	// dead[d] marks base nodes at depth d with no surviving leaf: every
	// tuple below them was deleted. Iterators skip them; descendants of
	// a dead node are unreachable, so their own entries are redundant
	// but harmless.
	dead []map[int32]struct{}
}

// Patched reports whether this trie is a copy-on-write patch over a
// shared base rather than a fully materialized index.
func (t *Trie) Patched() bool { return t.patch != nil }

// BuildPatched derives the trie of a new relation version from the base
// version's trie plus the version delta: adds (tuples present now but
// not in the base) and dels (tuples present in the base but deleted),
// both already permuted into the trie's column order. The base levels
// are shared, not copied; the patch materializes only the overlay trie
// over adds — O(|adds| · depth) nodes — and the dead-node sets for dels
// — at most |dels| · depth entries. Every deleted tuple must exist in
// the base (the relation.Store lineage guarantees it); a missing tuple
// is reported as an error. Patches do not stack: base must be a plain
// trie (registries only patch against fully materialized bases).
func BuildPatched(base *Trie, adds, dels *relation.Relation, counters *stats.Counters) (*Trie, error) {
	if base.patch != nil {
		return nil, fmt.Errorf("trie: cannot patch a patched trie")
	}
	if adds.Arity() != base.arity || dels.Arity() != base.arity {
		return nil, fmt.Errorf("trie: patch arity %d/%d, base %d", adds.Arity(), dels.Arity(), base.arity)
	}
	if counters != nil {
		counters.TriePatches++
	}
	k := base.arity
	p := &patchSet{dead: make([]map[int32]struct{}, k)}

	// Overlay trie over the inserted tuples (Build groups the sorted
	// relation level by level; adds is small, so this is the O(k·depth)
	// node-copy cost the patch pays instead of a rebuild).
	p.adds = Build(adds, nil).levels

	// Locate every deleted tuple's path in the base and count deleted
	// leaves per node; a node whose deleted-leaf count equals its leaf
	// span is dead.
	counts := make([]map[int32]int32, k)
	for d := range counts {
		counts[d] = make(map[int32]int32)
		p.dead[d] = make(map[int32]struct{})
	}
	for ti := 0; ti < dels.Len(); ti++ {
		tup := dels.Tuple(ti)
		lo, hi := int32(0), int32(len(base.levels[0].vals))
		for d := 0; d < k; d++ {
			lvl := &base.levels[d]
			idx := lo + int32(sort.Search(int(hi-lo), func(i int) bool {
				return lvl.vals[lo+int32(i)] >= tup[d]
			}))
			if idx >= hi || lvl.vals[idx] != tup[d] {
				return nil, fmt.Errorf("trie: deleted tuple %v not present in base", tup)
			}
			counts[d][idx]++
			if d+1 < k {
				lo, hi = lvl.start[idx], lvl.start[idx+1]
			}
		}
	}
	for d := 0; d < k; d++ {
		for idx, cnt := range counts[d] {
			if int(cnt) == base.leafSpan(d, idx) {
				p.dead[d][idx] = struct{}{}
			}
		}
	}

	return &Trie{arity: k, levels: base.levels, patch: p}, nil
}

// leafSpan returns the number of leaves (tuples) under node idx at
// depth d, by following the child-offset chain to the deepest level.
func (t *Trie) leafSpan(d int, idx int32) int {
	lo, hi := idx, idx+1
	for dd := d; dd < t.arity-1; dd++ {
		lo = t.levels[dd].start[lo]
		hi = t.levels[dd].start[hi]
	}
	return int(hi - lo)
}
