package trie

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

func snapLevels(t *testing.T, tr *Trie) []LevelData {
	t.Helper()
	ls, err := tr.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return ls
}

func TestSnapshotRoundTrip(t *testing.T) {
	rel := relation.MustNew("r", 3, [][]int64{
		{1, 2, 3}, {1, 2, 5}, {1, 4, 1}, {2, 1, 1}, {2, 1, 2}, {7, 7, 7},
	})
	tr := Build(rel, nil)
	got, err := FromLevels(snapLevels(t, tr))
	if err != nil {
		t.Fatalf("FromLevels: %v", err)
	}
	if got.Arity() != tr.Arity() {
		t.Fatalf("arity %d != %d", got.Arity(), tr.Arity())
	}
	a, b := snapLevels(t, tr), snapLevels(t, got)
	for d := range a {
		if len(a[d].Vals) != len(b[d].Vals) || len(a[d].Start) != len(b[d].Start) {
			t.Fatalf("level %d shape differs", d)
		}
		for i := range a[d].Vals {
			if a[d].Vals[i] != b[d].Vals[i] {
				t.Fatalf("level %d val %d differs", d, i)
			}
		}
		for i := range a[d].Start {
			if a[d].Start[i] != b[d].Start[i] {
				t.Fatalf("level %d start %d differs", d, i)
			}
		}
	}
	// The reconstructed trie must behave identically under iteration.
	var c1, c2 stats.Counters
	it1, it2 := tr.NewIteratorCounters(&c1), got.NewIteratorCounters(&c2)
	for _, it := range []*Iterator{it1, it2} {
		it.Open()
		it.Open()
	}
	for !it1.AtEnd() {
		if it2.AtEnd() || it1.Key() != it2.Key() {
			t.Fatal("iteration diverges")
		}
		it1.Next()
		it2.Next()
	}
	if !it2.AtEnd() {
		t.Fatal("reconstructed trie has extra keys")
	}
	it1.Flush()
	it2.Flush()
	if c1 != c2 {
		t.Fatalf("accounting diverges: %+v vs %+v", c1, c2)
	}
}

func TestSnapshotPatchedRefused(t *testing.T) {
	base := Build(relation.MustNew("r", 2, [][]int64{{1, 1}, {2, 2}}), nil)
	adds := relation.MustNew("r", 2, [][]int64{{3, 3}})
	dels := relation.MustNew("r", 2, nil)
	patched, err := BuildPatched(base, adds, dels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := patched.Snapshot(); err == nil {
		t.Fatal("patched trie snapshotted")
	}
}

func TestFromLevelsValidation(t *testing.T) {
	// A valid two-level trie over {(1,2),(1,3),(2,1)} — note level 1's
	// values decrease across the sibling boundary, which is legal.
	valid := func() []LevelData {
		return []LevelData{
			{Vals: []int64{1, 2}, Start: []int32{0, 2, 3}},
			{Vals: []int64{2, 3, 1}, Start: []int32{0, 0, 0, 0}},
		}
	}
	if _, err := FromLevels(valid()); err != nil {
		t.Fatalf("valid levels refused: %v", err)
	}

	cases := map[string]func([]LevelData) []LevelData{
		"empty": func([]LevelData) []LevelData { return nil },
		"start-length": func(l []LevelData) []LevelData {
			l[0].Start = l[0].Start[:2]
			return l
		},
		"start-origin": func(l []LevelData) []LevelData {
			l[0].Start[0] = 1
			return l
		},
		"start-decreasing": func(l []LevelData) []LevelData {
			l[0].Start[1] = 3
			l[0].Start[2] = 1
			return l
		},
		"start-tail": func(l []LevelData) []LevelData {
			l[0].Start[2] = 2
			return l
		},
		"unsorted-root": func(l []LevelData) []LevelData {
			l[0].Vals[0], l[0].Vals[1] = 2, 1
			return l
		},
		"unsorted-range": func(l []LevelData) []LevelData {
			l[1].Vals[0], l[1].Vals[1] = 3, 2
			return l
		},
		"duplicate-in-range": func(l []LevelData) []LevelData {
			l[1].Vals[1] = 2
			return l
		},
	}
	for name, mutate := range cases {
		if _, err := FromLevels(mutate(valid())); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.HasPrefix(err.Error(), "trie: ") {
			t.Errorf("%s: unexpected error %v", name, err)
		}
	}
}

func TestRegistryOpenerAndBuildHook(t *testing.T) {
	rel := relation.MustNew("r", 2, [][]int64{{1, 2}, {2, 1}})
	perm := []int{0, 1}
	canned := Build(rel, nil)

	r := NewRegistry(0)
	opened, built := 0, 0
	r.SetOpener(func(rq *relation.Relation, p []int) *Trie {
		if rq == rel && PermSig(p) == PermSig(perm) {
			opened++
			return canned
		}
		return nil
	})
	r.SetBuildHook(func(*relation.Relation, []int, *Trie) { built++ })

	var c stats.Counters
	got, err := r.Trie(rel, perm, &c)
	if err != nil {
		t.Fatal(err)
	}
	if got != canned {
		t.Fatal("opener's trie not served")
	}
	if c.TrieOpens != 1 || c.TrieBuilds != 0 {
		t.Fatalf("counters: opens=%d builds=%d", c.TrieOpens, c.TrieBuilds)
	}
	if built != 0 {
		t.Fatal("build hook fired for an opened index")
	}
	if s := r.Stats(); s.Opens != 1 || s.Builds != 1 {
		t.Fatalf("registry stats: %+v", s)
	}

	// A hit does not consult the opener again.
	if _, err := r.Trie(rel, perm, &c); err != nil {
		t.Fatal(err)
	}
	if opened != 1 || c.TrieOpens != 1 {
		t.Fatalf("opener consulted on a hit (opened=%d)", opened)
	}

	// The reverse order misses the opener and falls through to a full
	// build, which fires the write-behind hook.
	if _, err := r.Trie(rel, []int{1, 0}, &c); err != nil {
		t.Fatal(err)
	}
	if c.TrieBuilds != 1 || built != 1 {
		t.Fatalf("fallback build: builds=%d hook=%d", c.TrieBuilds, built)
	}
}
