package trie

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBuildParallelEquivalence checks the chunked parallel builder is
// bit-identical to the sequential one — same level values, child
// offsets and row grouping — across random relations spanning both
// sides of the parallel threshold (small levels take the sequential
// path; the large trial exercises real chunking).
func TestBuildParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trial := func(arity, n, workers int) {
		t.Helper()
		rel := randomRel(rng, arity, n)
		seq := Build(rel, nil)
		par := BuildParallel(rel, nil, workers)
		for d := 0; d < arity; d++ {
			if !reflect.DeepEqual(seq.levels[d].vals, par.levels[d].vals) {
				t.Fatalf("arity %d n %d workers %d: level %d vals diverge", arity, n, workers, d)
			}
			if !reflect.DeepEqual(seq.levels[d].start, par.levels[d].start) {
				t.Fatalf("arity %d n %d workers %d: level %d start diverge", arity, n, workers, d)
			}
		}
	}
	for i := 0; i < 40; i++ {
		trial(1+rng.Intn(4), rng.Intn(300), 1+rng.Intn(8))
	}
	// Past the parallel threshold: clustered values so chunk alignment
	// has runs to skip over.
	big := make([][]int64, 0, 3*parallelBuildMinRows)
	for i := 0; i < 3*parallelBuildMinRows; i++ {
		big = append(big, []int64{int64(rng.Intn(500)), int64(rng.Intn(64)), int64(rng.Intn(1 << 20))})
	}
	rel := buildRel(t, 3, big)
	seq := Build(rel, nil)
	for _, workers := range []int{2, 3, 8} {
		par := BuildParallel(rel, nil, workers)
		for d := 0; d < 3; d++ {
			if !reflect.DeepEqual(seq.levels[d].vals, par.levels[d].vals) ||
				!reflect.DeepEqual(seq.levels[d].start, par.levels[d].start) {
				t.Fatalf("workers %d: large level %d diverges from sequential build", workers, d)
			}
		}
	}
}
