package trie

// This file adds block-at-a-time primitives to the trie iterator: a
// caller-owned []int64 block is filled with successive sibling keys in
// one call, so the join engines can amortize per-advance call overhead
// across a whole block. The accounting contract is unchanged — a batch
// call charges exactly what the equivalent scalar Key/Next sequence
// would have charged (the same replay idea seekLevel uses via
// binProbes), so stats totals stay bit-identical between the scalar and
// batched execution paths. The equivalence tests and FuzzBatchSeek pin
// the contract.

// Materialized reports whether the iterator runs the fully materialized
// fast path (no patched-merge overlay). Batch consumers use it to
// select branch-free bulk loops; patched cursors take the scalar-merge
// fallback instead.
func (it *Iterator) Materialized() bool { return it.mg == nil }

// Charge adds n model-cost accesses to the iterator's batched
// accounting. Fused fast paths use it to replay the charges of the
// scalar operation sequence they replace (exactly as SeekGE replays a
// binary search's probe count via binProbes), keeping flushed totals
// bit-identical to the scalar execution. n must reflect a real scalar
// cost model; the equivalence tests compare both paths.
func (it *Iterator) Charge(n int64) { it.pending += n }

// NextBatch copies up to len(dst) sibling keys into dst, starting with
// the current key, and advances the iterator past the copied keys. It
// returns the number of keys copied: 0 when AtEnd (or dst is empty),
// and after a short return the iterator is AtEnd. The accounting charge
// is exactly the scalar sequence Key(); Next() per copied key — two
// accesses each — whether served by the materialized bulk copy or the
// patched-merge fallback (which literally runs the scalar operations).
func (it *Iterator) NextBatch(dst []int64) int {
	if it.end || len(dst) == 0 {
		return 0
	}
	if it.mg == nil {
		d := it.depth
		pos, hi := it.pos[d], it.hi[d]
		vals := it.t.levels[d].vals
		n := int(hi - pos)
		if n > len(dst) {
			n = len(dst)
		}
		copy(dst[:n], vals[pos:pos+int32(n)])
		pos += int32(n)
		it.pos[d] = pos
		if pos < hi {
			it.cur = vals[pos]
		} else {
			it.end = true
		}
		it.pending += 2 * int64(n)
		return n
	}
	n := 0
	for n < len(dst) && !it.end {
		dst[n] = it.Key()
		n++
		it.Next()
	}
	return n
}

// SeekBatch positions the iterator at the least sibling >= v (the
// SeekGE contract, including its accounting) and then copies up to
// len(dst) keys from there via NextBatch, advancing past them. It
// returns the number of keys copied.
func (it *Iterator) SeekBatch(v int64, dst []int64) int {
	it.SeekGE(v)
	return it.NextBatch(dst)
}
