package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

func buildRel(t *testing.T, arity int, tuples [][]int64) *relation.Relation {
	t.Helper()
	return relation.MustNew("R", arity, tuples)
}

// walk enumerates all root-to-leaf paths of the trie via the iterator.
func walk(tr *Trie) [][]int64 {
	var out [][]int64
	it := tr.NewIterator()
	path := make([]int64, tr.Arity())
	var rec func(d int)
	rec = func(d int) {
		it.Open()
		for !it.AtEnd() {
			path[d] = it.Key()
			if d == tr.Arity()-1 {
				out = append(out, append([]int64(nil), path...))
			} else {
				rec(d + 1)
			}
			it.Next()
		}
		it.Up()
	}
	if tr.Arity() > 0 {
		rec(0)
	}
	it.Flush()
	return out
}

func TestTrieRoundTripsTuples(t *testing.T) {
	tuples := [][]int64{{1, 2, 3}, {1, 2, 4}, {1, 3, 1}, {2, 1, 1}, {2, 1, 2}}
	tr := Build(buildRel(t, 3, tuples), nil)
	if got := walk(tr); !reflect.DeepEqual(got, tuples) {
		t.Fatalf("walk = %v, want %v", got, tuples)
	}
	if tr.Len(0) != 2 || tr.Len(1) != 3 || tr.Len(2) != 5 {
		t.Fatalf("level sizes = %d,%d,%d", tr.Len(0), tr.Len(1), tr.Len(2))
	}
}

// Property: for random relations, iterating the trie reproduces exactly
// the sorted, deduplicated tuples.
func TestTrieRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		arity := 1 + rng.Intn(4)
		n := rng.Intn(80)
		var tuples [][]int64
		for i := 0; i < n; i++ {
			row := make([]int64, arity)
			for j := range row {
				row[j] = int64(rng.Intn(6))
			}
			tuples = append(tuples, row)
		}
		rel := buildRel(t, arity, tuples)
		tr := Build(rel, nil)
		if got, want := walk(tr), rel.Tuples(); !reflect.DeepEqual(got, want) {
			if len(got) != 0 || len(want) != 0 {
				t.Fatalf("trial %d: walk mismatch:\n got %v\nwant %v", trial, got, want)
			}
		}
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := Build(buildRel(t, 2, nil), nil)
	it := tr.NewIterator()
	it.Open()
	if !it.AtEnd() {
		t.Fatal("empty trie iterator not AtEnd after Open")
	}
	it.Up()
	if got := walk(tr); len(got) != 0 {
		t.Fatalf("walk of empty trie = %v", got)
	}
}

func TestSeekGE(t *testing.T) {
	tr := Build(buildRel(t, 1, [][]int64{{2}, {5}, {7}, {11}}), nil)
	cases := []struct {
		seek  int64
		want  int64
		atEnd bool
	}{
		{0, 2, false},
		{2, 2, false},
		{3, 5, false},
		{7, 7, false},
		{8, 11, false},
		{12, 0, true},
	}
	for _, tc := range cases {
		it := tr.NewIterator()
		it.Open()
		it.SeekGE(tc.seek)
		if it.AtEnd() != tc.atEnd {
			t.Errorf("SeekGE(%d): AtEnd = %v, want %v", tc.seek, it.AtEnd(), tc.atEnd)
			continue
		}
		if !tc.atEnd && it.Key() != tc.want {
			t.Errorf("SeekGE(%d) = %d, want %d", tc.seek, it.Key(), tc.want)
		}
	}
}

func TestSeekGENeverMovesBackwards(t *testing.T) {
	vals := [][]int64{{1}, {3}, {4}, {9}, {15}}
	tr := Build(buildRel(t, 1, vals), nil)
	it := tr.NewIterator()
	it.Open()
	it.SeekGE(4)
	if it.Key() != 4 {
		t.Fatalf("SeekGE(4) = %d", it.Key())
	}
	it.SeekGE(2) // lower bound below the current key: must stay put
	if it.Key() != 4 {
		t.Fatalf("SeekGE(2) after 4 moved to %d", it.Key())
	}
}

// Property: a sequence of random monotone seeks within one level visits
// exactly the least keys >= the seek values, as binary search over the
// sorted array would.
func TestSeekGEProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(50)
		seen := make(map[int64]bool)
		var tuples [][]int64
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(200))
			if !seen[v] {
				seen[v] = true
				tuples = append(tuples, []int64{v})
			}
		}
		rel := buildRel(t, 1, tuples)
		sorted := make([]int64, 0, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			sorted = append(sorted, rel.Tuple(i)[0])
		}
		tr := Build(rel, nil)
		it := tr.NewIterator()
		it.Open()
		cur := int64(-1)
		for probe := 0; probe < 20 && !it.AtEnd(); probe++ {
			target := cur + int64(rng.Intn(40))
			it.SeekGE(target)
			i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= target })
			// The iterator never moves backwards, so the expected position
			// is also bounded below by the previous key.
			for i < len(sorted) && sorted[i] < cur {
				i++
			}
			if i == len(sorted) {
				if !it.AtEnd() {
					t.Fatalf("trial %d: expected AtEnd for target %d, got key %d", trial, target, it.Key())
				}
				break
			}
			if it.AtEnd() {
				t.Fatalf("trial %d: unexpected AtEnd for target %d (want %d)", trial, target, sorted[i])
			}
			if it.Key() != sorted[i] {
				t.Fatalf("trial %d: SeekGE(%d) = %d, want %d", trial, target, it.Key(), sorted[i])
			}
			cur = it.Key()
		}
	}
}

func TestCountersAccumulate(t *testing.T) {
	var c stats.Counters
	tr := Build(buildRel(t, 2, [][]int64{{1, 2}, {1, 3}, {2, 1}}), &c)
	walk(tr)
	if c.TrieAccesses == 0 {
		t.Fatal("walk performed no counted trie accesses")
	}
	if tr.Counters() != &c {
		t.Fatal("Counters() does not return the sink")
	}
}

func TestFanout(t *testing.T) {
	tr := Build(buildRel(t, 2, [][]int64{{1, 1}, {1, 2}, {1, 3}, {2, 1}}), nil)
	if got := tr.Fanout(0); got != 2 {
		t.Errorf("Fanout(0) = %g, want 2 (4 children / 2 roots)", got)
	}
	if got := tr.Fanout(1); got != 1 {
		t.Errorf("Fanout(1) = %g, want 1 (deepest level)", got)
	}
}

func TestOpenPanicsBelowDeepest(t *testing.T) {
	tr := Build(buildRel(t, 1, [][]int64{{1}}), nil)
	it := tr.NewIterator()
	it.Open()
	defer func() {
		if recover() == nil {
			t.Fatal("Open below deepest level did not panic")
		}
	}()
	it.Open()
}

func TestUpPanicsAboveRoot(t *testing.T) {
	tr := Build(buildRel(t, 1, [][]int64{{1}}), nil)
	it := tr.NewIterator()
	defer func() {
		if recover() == nil {
			t.Fatal("Up above virtual root did not panic")
		}
	}()
	it.Up()
}

func TestMemoryBytes(t *testing.T) {
	tr := Build(buildRel(t, 2, [][]int64{{1, 2}, {1, 3}, {2, 1}}), nil)
	// Level 0: 2 values + 3 offsets; level 1: 3 values + 4 offsets.
	want := int64(8*2 + 4*3 + 8*3 + 4*4)
	if got := tr.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
	if Build(buildRel(t, 2, nil), nil).MemoryBytes() <= 0 {
		// Empty tries still hold sentinel offset arrays.
		t.Log("empty trie footprint is minimal, as expected")
	}
}
