package trie

import (
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

// fuzzTuples decodes a byte stream into binary tuples over a small
// domain (so duplicates and shared prefixes are common).
func fuzzTuples(data []byte) [][]int64 {
	var out [][]int64
	for i := 0; i+1 < len(data); i += 2 {
		out = append(out, []int64{int64(data[i] % 16), int64(data[i+1] % 16)})
	}
	return out
}

// FuzzBatchSeek drives the batch iterator API against the scalar
// reference on fuzzer-built key sets — materialized and patched tries —
// asserting identical key sequences and bit-identical flushed counters
// for NextBatch walks and SeekBatch probes.
func FuzzBatchSeek(f *testing.F) {
	f.Add([]byte{}, []byte{}, int64(0), uint8(1))                                       // empty legs
	f.Add([]byte{3, 7}, []byte{}, int64(3), uint8(4))                                   // single-key leg
	f.Add([]byte{1, 1, 1, 1, 1, 2, 1, 2, 2, 1, 2, 1}, []byte{1, 2}, int64(1), uint8(2)) // duplicate-heavy
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, []byte{2, 3, 4, 5}, int64(6), uint8(3))

	f.Fuzz(func(t *testing.T, baseB, patchB []byte, seek int64, bsRaw uint8) {
		bs := int(bsRaw%8) + 1
		baseTuples := fuzzTuples(baseB)
		base := relation.MustNew("E", 2, baseTuples)
		mat := Build(base, nil)

		tries := []*Trie{mat}
		// Patch: insert the patch tuples, delete every other base tuple.
		patchTuples := fuzzTuples(patchB)
		var dels [][]int64
		for i := 0; i < len(baseTuples); i += 2 {
			dels = append(dels, baseTuples[i])
		}
		pt, err := BuildPatched(mat,
			relation.MustNew("E", 2, patchTuples),
			relation.MustNew("E", 2, dels), nil)
		if err != nil {
			t.Fatal(err)
		}
		tries = append(tries, pt)

		for _, tr := range tries {
			// Full DFS: scalar vs leaf-batched.
			var cs stats.Counters
			its := tr.NewIteratorCounters(&cs)
			var want []int64
			dfsScalar(its, tr.Arity(), &want)
			its.Flush()

			var cb stats.Counters
			itb := tr.NewIteratorCounters(&cb)
			var got []int64
			dfsBatch(itb, tr.Arity(), make([]int64, bs), &got)
			itb.Flush()
			sameKeys(t, "dfs", got, want)
			if cb != cs {
				t.Fatalf("dfs: batch counters %+v, scalar %+v", cb, cs)
			}

			// Level-0 seek: SeekGE + scalar drain vs SeekBatch drain.
			cs, cb = stats.Counters{}, stats.Counters{}
			its = tr.NewIteratorCounters(&cs)
			its.Open()
			its.SeekGE(seek)
			want = want[:0]
			for !its.AtEnd() {
				want = append(want, its.Key())
				its.Next()
			}
			its.Flush()

			itb = tr.NewIteratorCounters(&cb)
			itb.Open()
			block := make([]int64, bs)
			got = got[:0]
			for n := itb.SeekBatch(seek, block); n > 0; n = itb.NextBatch(block) {
				got = append(got, block[:n]...)
			}
			itb.Flush()
			sameKeys(t, "seek", got, want)
			if cb != cs {
				t.Fatalf("seek(%d): batch counters %+v, scalar %+v", seek, cb, cs)
			}

			// The drained keys must be sorted — the sibling-order invariant.
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("seek drain not sorted: %v", got)
			}
		}
	})
}
