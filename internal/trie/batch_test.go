package trie

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

// dfsScalar walks the whole trie depth-first with scalar operations,
// appending every visited key (DFS pre-order, leaves included).
func dfsScalar(it *Iterator, arity int, keys *[]int64) {
	it.Open()
	for !it.AtEnd() {
		*keys = append(*keys, it.Key())
		if it.Depth()+1 < arity {
			dfsScalar(it, arity, keys)
		}
		it.Next()
	}
	it.Up()
}

// dfsBatch is dfsScalar with the deepest level advanced via NextBatch —
// the shape the join engines use blocks in.
func dfsBatch(it *Iterator, arity int, block []int64, keys *[]int64) {
	it.Open()
	if it.Depth() == arity-1 {
		for {
			n := it.NextBatch(block)
			if n == 0 {
				break
			}
			*keys = append(*keys, block[:n]...)
		}
	} else {
		for !it.AtEnd() {
			*keys = append(*keys, it.Key())
			dfsBatch(it, arity, block, keys)
			it.Next()
		}
	}
	it.Up()
}

func sameKeys(t *testing.T, label string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d keys, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: key %d: got %d, want %d", label, i, got[i], want[i])
		}
	}
}

// batchTries returns a materialized and a patched trie over the same
// logical relation, so every equivalence check covers both cursor
// shapes.
func batchTries(t *testing.T) map[string]*Trie {
	t.Helper()
	base := relation.MustNew("E", 2, [][]int64{
		{1, 2}, {1, 3}, {1, 9}, {2, 2}, {4, 1}, {4, 2}, {4, 3}, {4, 4}, {7, 7},
	})
	mat := Build(base, nil)
	pt, err := BuildPatched(mat,
		relation.MustNew("E", 2, [][]int64{{1, 5}, {3, 3}, {4, 9}}),
		relation.MustNew("E", 2, [][]int64{{2, 2}, {4, 2}}),
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Trie{"materialized": mat, "patched": pt}
}

// TestNextBatchEquivalence pins the batch contract: same key sequence
// and bit-identical flushed counters as the scalar Key/Next walk, for
// every block size, on both cursor shapes.
func TestNextBatchEquivalence(t *testing.T) {
	for name, tr := range batchTries(t) {
		var cs stats.Counters
		its := tr.NewIteratorCounters(&cs)
		var want []int64
		dfsScalar(its, tr.Arity(), &want)
		its.Flush()

		for _, bs := range []int{1, 2, 3, 5, 64} {
			var cb stats.Counters
			itb := tr.NewIteratorCounters(&cb)
			var got []int64
			dfsBatch(itb, tr.Arity(), make([]int64, bs), &got)
			itb.Flush()
			sameKeys(t, name, got, want)
			if cb != cs {
				t.Errorf("%s bs=%d: batch counters %+v, scalar %+v", name, bs, cb, cs)
			}
		}
	}
}

// TestSeekBatchEquivalence compares SeekBatch against SeekGE plus the
// scalar drain at level 0, key-for-key and charge-for-charge.
func TestSeekBatchEquivalence(t *testing.T) {
	for name, tr := range batchTries(t) {
		for _, seek := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 100} {
			var cs stats.Counters
			its := tr.NewIteratorCounters(&cs)
			its.Open()
			its.SeekGE(seek)
			var want []int64
			for !its.AtEnd() {
				want = append(want, its.Key())
				its.Next()
			}
			its.Up()
			its.Flush()

			var cb stats.Counters
			itb := tr.NewIteratorCounters(&cb)
			itb.Open()
			block := make([]int64, 2)
			var got []int64
			for n := itb.SeekBatch(seek, block); n > 0; n = itb.NextBatch(block) {
				got = append(got, block[:n]...)
			}
			itb.Up()
			itb.Flush()

			sameKeys(t, name, got, want)
			if cb != cs {
				t.Errorf("%s seek=%d: batch counters %+v, scalar %+v", name, seek, cb, cs)
			}
		}
	}
}

func TestNextBatchEdgeCases(t *testing.T) {
	empty := Build(relation.MustNew("E", 2, nil), nil)
	it := empty.NewIterator()
	it.Open()
	if n := it.NextBatch(make([]int64, 4)); n != 0 {
		t.Fatalf("empty trie: NextBatch = %d, want 0", n)
	}
	it.Up()

	tr := Build(relation.MustNew("E", 1, [][]int64{{3}}), nil)
	it = tr.NewIterator()
	it.Open()
	if n := it.NextBatch(nil); n != 0 {
		t.Fatalf("nil dst: NextBatch = %d, want 0", n)
	}
	if it.AtEnd() || it.Key() != 3 {
		t.Fatal("nil dst must not move the iterator")
	}
	block := make([]int64, 4)
	if n := it.NextBatch(block); n != 1 || block[0] != 3 {
		t.Fatalf("single key: NextBatch = %d (%v), want 1 ([3 ...])", n, block)
	}
	if !it.AtEnd() {
		t.Fatal("iterator must be AtEnd after draining the level")
	}
	if n := it.NextBatch(block); n != 0 {
		t.Fatalf("AtEnd: NextBatch = %d, want 0", n)
	}
}

func TestMaterialized(t *testing.T) {
	tries := batchTries(t)
	if !tries["materialized"].NewIterator().Materialized() {
		t.Error("materialized trie iterator reports Materialized() == false")
	}
	if tries["patched"].NewIterator().Materialized() {
		t.Error("patched trie iterator reports Materialized() == true")
	}
}
