package trie

import (
	"fmt"
	"sync"

	"repro/internal/relation"
	"repro/internal/stats"
)

// Registry is a concurrency-safe cache of immutable tries keyed by
// (relation, attribute order). It is the index store of a long-lived
// query engine: the first query that needs a relation indexed under some
// column permutation builds the trie once; every later query — any query
// shape, any worker — reuses it, so a warm engine answers repeated
// queries with zero trie builds. Because tries are immutable and
// iterators carry their own cursors and accounting, one resident trie
// serves any number of concurrent executions.
//
// Registries bound their resident bytes (Trie.MemoryBytes): when an
// insertion pushes the total past the budget, least-recently-used
// entries are evicted first — the paper's "any amount of available
// memory translates into memoization" premise (§3), applied to the
// indices themselves and shared across queries instead of scoped to one.
// Evicting an entry only drops the registry's reference; executions
// already holding the trie keep it alive until they finish.
//
// Registries are delta-aware: a versioned engine announces each new
// relation version's lineage with Observe, and a request for a version
// whose base index is resident is served by a copy-on-write patch
// (BuildPatched) instead of a full rebuild — O(k·depth) new nodes for a
// k-tuple delta. Superseded versions stay cached (and charged against
// the byte budget) until the engine's epoch reclamation calls Release,
// once no in-flight query can still read them.
type Registry struct {
	budget int64 // max resident bytes; 0 = unbounded

	mu           sync.Mutex
	entries      map[regKey]*regEntry
	lineage      map[*relation.Relation]relation.Version
	bytes        int64
	head         *regEntry // least recently used (next victim)
	tail         *regEntry // most recently used
	stats        RegistryStats
	evictHook    func(rel *relation.Relation, perm string)
	opener       func(rel *relation.Relation, perm []int) *Trie
	buildHook    func(rel *relation.Relation, perm []int, t *Trie)
	buildWorkers int // goroutines per index construction (<=1: sequential)
}

// regKey identifies one cached trie: the identity of the (immutable)
// base relation plus the column permutation its levels follow. Pointer
// identity is deliberate — replacing a relation in a DB must not let a
// stale index answer for the new data.
type regKey struct {
	rel  *relation.Relation
	perm string
}

type regEntry struct {
	key        regKey
	trie       *Trie
	err        error // build failure, for waiters; set before ready closes
	bytes      int64
	ready      chan struct{} // closed once trie (or err) is set
	prev, next *regEntry
}

// RegistryStats reports a registry's lifetime activity.
type RegistryStats struct {
	// Hits and Builds count Get calls served from the registry and Get
	// calls that had to construct the trie, respectively. Patches is the
	// subset of Builds answered by a copy-on-write patch of a resident
	// base index rather than a full construction; Opens is the subset
	// answered by mapping an on-disk trie snapshot (SetOpener) — neither
	// pays a construction over the relation.
	Hits    int64 `json:"hits"`
	Builds  int64 `json:"builds"`
	Patches int64 `json:"patches"`
	Opens   int64 `json:"opens"`
	// Evictions counts entries dropped to respect the byte budget;
	// Released counts entries dropped by epoch reclamation of
	// superseded relation versions (Release).
	Evictions int64 `json:"evictions"`
	Released  int64 `json:"released"`
	// Entries and Bytes describe the current residency; Budget echoes
	// the configured bound (0 = unbounded).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Budget  int64 `json:"budget"`
}

func (s RegistryStats) String() string {
	return fmt.Sprintf("entries=%d bytes=%d budget=%d hits=%d builds=%d patches=%d opens=%d evictions=%d released=%d",
		s.Entries, s.Bytes, s.Budget, s.Hits, s.Builds, s.Patches, s.Opens, s.Evictions, s.Released)
}

// NewRegistry returns an empty registry bounded to budgetBytes resident
// trie bytes (0 = unbounded).
func NewRegistry(budgetBytes int64) *Registry {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &Registry{
		budget:  budgetBytes,
		entries: make(map[regKey]*regEntry),
		lineage: make(map[*relation.Relation]relation.Version),
	}
}

// SetEvictHook registers f to be invoked with the relation and
// column-permutation signature (PermSig) of every entry dropped by
// byte-budget eviction (not by Release — epoch reclamation is already
// coordinated by the caller). A resident engine uses it to drop exactly
// the cached plans that embed the evicted index: without that, a plan
// cache would keep budget-evicted tries alive while the registry
// reports their bytes reclaimed, and later compiles would build
// duplicates. f runs with the registry lock held and must not call
// back into the registry.
func (r *Registry) SetEvictHook(f func(rel *relation.Relation, perm string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictHook = f
}

// SetBuildWorkers bounds the goroutines each index construction may use
// (BuildParallel): <= 1 builds sequentially, < 0 uses one per core. A
// resident engine typically passes its configured per-query worker
// count, so cold index builds use the same parallelism budget as the
// joins they unblock.
func (r *Registry) SetBuildWorkers(workers int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buildWorkers = workers
}

// SetOpener registers a function consulted on every registry miss before
// any construction: it may return a ready trie over rel permuted by perm
// — in practice one reconstructed around an mmap'd on-disk snapshot — or
// nil to fall through to the patch/build paths. An open is charged as
// TrieOpens (never TrieBuilds) on the requesting counters and as Opens in
// the registry stats; the entry is cached, byte-budgeted, and evicted
// exactly like a built one. f runs without the registry lock (it does IO)
// but under the entry's singleflight, so concurrent misses on one key
// open at most once.
func (r *Registry) SetOpener(f func(rel *relation.Relation, perm []int) *Trie) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.opener = f
}

// SetBuildHook registers f to observe every full (non-patched, non-opened)
// construction the registry performs, after the trie is ready but before
// waiters are released. A persistent engine uses it to write the freshly
// built index to disk (write-behind), so the next process can open instead
// of rebuild. f runs without the registry lock and must not call back into
// the registry for the same key.
func (r *Registry) SetBuildHook(f func(rel *relation.Relation, perm []int, t *Trie)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buildHook = f
}

// Observe records a relation version's lineage so later Trie requests
// for it can be served by patching the base version's resident index.
// Compacted versions (empty delta) clear any stale lineage: they are
// their own base and must be fully built once. Call it after every
// Store.ApplyDelta, before queries can see the new version.
func (r *Registry) Observe(v relation.Version) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v.Patched() {
		r.lineage[v.Rel] = v
	} else {
		delete(r.lineage, v.Rel)
	}
}

// Release drops every cached index of rel (any column order) along with
// its lineage record — the reclamation step once epoch tracking proves
// no in-flight query can still read that version. Entries still being
// built are skipped: a build in flight belongs to a query that still
// pins the version, and that query's exit triggers another Release.
func (r *Registry) Release(rel *relation.Relation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.lineage, rel)
	for e := r.head; e != nil; {
		next := e.next
		if e.key.rel == rel && e.trie != nil {
			r.unlink(e)
			delete(r.entries, e.key)
			r.bytes -= e.bytes
			r.stats.Released++
		}
		e = next
	}
}

// PermSig encodes a column permutation as a comparable signature — the
// registry's entry key component, also used by plan caches to name the
// registry entries a compiled plan embeds.
func PermSig(perm []int) string {
	b := make([]byte, len(perm))
	for i, p := range perm {
		if p > 0xff {
			// Arities beyond 255 do not occur; fall back to a verbose
			// encoding rather than colliding.
			return fmt.Sprint(perm)
		}
		b[i] = byte(p)
	}
	return string(b)
}

// Trie returns the trie over rel with columns permuted by perm, building
// and caching it on first request; it is the leapfrog.TrieSource
// implementation. Concurrent requests for the same key build once: the
// first caller constructs while the others wait on the entry. Only the
// building caller's c (may be nil) is charged the TrieBuilds increment;
// waiters and later hits pay one HashAccesses probe. The returned trie
// accounts into no default sink — executions must attach per-run
// counters via NewIteratorCounters (the leapfrog runners always do),
// which is what makes sharing it across goroutines sound.
//
// When rel is a version with Observed lineage and the base version's
// index under the same column order is resident, the miss is served by
// a copy-on-write patch of the base index (charged as TriePatches, not
// TrieBuilds) — the steady-state path of a warm engine under live
// updates. Deltas past the compaction crossover arrive with no lineage
// and fall back to one full build.
func (r *Registry) Trie(rel *relation.Relation, perm []int, c *stats.Counters) (*Trie, error) {
	key := regKey{rel: rel, perm: PermSig(perm)}

	r.mu.Lock()
	if c != nil {
		c.HashAccesses++
	}
	if e, ok := r.entries[key]; ok {
		r.touch(e)
		r.stats.Hits++
		ready := e.ready
		r.mu.Unlock()
		<-ready
		if e.trie == nil {
			// The builder failed (and removed the entry); relay its error.
			return nil, e.err
		}
		return e.trie, nil
	}
	e := &regEntry{key: key, ready: make(chan struct{})}
	r.entries[key] = e
	r.pushBack(e)
	r.stats.Builds++
	lin, patchable := r.lineage[rel]
	opener, buildHook := r.opener, r.buildHook
	r.mu.Unlock()

	fail := func(err error) (*Trie, error) {
		r.mu.Lock()
		r.unlink(e)
		delete(r.entries, key)
		r.mu.Unlock()
		e.err = err
		close(e.ready)
		return nil, err
	}

	var t *Trie
	patched, opened := false, false
	if opener != nil {
		if ot := opener(rel, perm); ot != nil {
			t = ot
			opened = true
			if c != nil {
				c.TrieOpens++
			}
		}
	}
	if t == nil && patchable {
		// Materialize the base index through the registry itself — a hit
		// when it is resident, one full (singleflight) build when it is
		// not, e.g. for a column order first requested after updates
		// began, or after LRU pressure evicted the base. Either way the
		// base entry then persists as the substrate later deltas patch
		// against; without this, such an order would pay a full rebuild
		// on every delta until the next compaction. The recursion is
		// depth-one: bases are compacted versions and carry no lineage
		// (the Patched check below is belt-and-braces: patches never
		// stack).
		if base, err := r.Trie(lin.Base, perm, c); err == nil && !base.Patched() {
			adds, err := lin.Adds.Permute(perm)
			if err != nil {
				return fail(err)
			}
			dels, err := lin.Dels.Permute(perm)
			if err != nil {
				return fail(err)
			}
			t, err = BuildPatched(base, adds, dels, c)
			if err != nil {
				return fail(err)
			}
			patched = true
		}
	}
	if t == nil {
		permuted, err := rel.Permute(perm)
		if err != nil {
			return fail(err)
		}
		r.mu.Lock()
		workers := r.buildWorkers
		r.mu.Unlock()
		if workers == 0 {
			workers = 1 // unset: sequential (BuildParallel reads <= 0 as per-core)
		}
		t = BuildParallel(permuted, nil, workers) // nil sink: shared across goroutines
		if c != nil {
			c.TrieBuilds++
		}
		if buildHook != nil {
			buildHook(rel, perm, t)
		}
	}

	r.mu.Lock()
	if patched {
		r.stats.Patches++
	}
	if opened {
		r.stats.Opens++
	}
	e.trie = t
	e.bytes = t.MemoryBytes()
	r.bytes += e.bytes
	r.evictOver(e)
	r.mu.Unlock()
	close(e.ready)
	return t, nil
}

// evictOver drops least-recently-used ready entries until the resident
// bytes fit the budget. Entries still being built are skipped (their
// cost is unknown and a waiter holds them), as is keep — the entry just
// inserted — so a single trie larger than the whole budget stays
// resident rather than thrashing: the engine cannot answer without the
// index, so the bound yields. Callers must hold r.mu.
func (r *Registry) evictOver(keep *regEntry) {
	if r.budget <= 0 {
		return
	}
	for e := r.head; e != nil && r.bytes > r.budget; {
		next := e.next
		if e.trie != nil && e != keep {
			r.unlink(e)
			delete(r.entries, e.key)
			r.bytes -= e.bytes
			r.stats.Evictions++
			if r.evictHook != nil {
				r.evictHook(e.key.rel, e.key.perm)
			}
		}
		e = next
	}
}

// touch moves a hit entry to the most-recently-used position. Callers
// must hold r.mu.
func (r *Registry) touch(e *regEntry) {
	if r.tail == e {
		return
	}
	r.unlink(e)
	r.pushBack(e)
}

func (r *Registry) pushBack(e *regEntry) {
	e.prev, e.next = r.tail, nil
	if r.tail != nil {
		r.tail.next = e
	} else {
		r.head = e
	}
	r.tail = e
}

func (r *Registry) unlink(e *regEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		r.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		r.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Stats returns a snapshot of the registry's activity and residency.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Entries = len(r.entries)
	s.Bytes = r.bytes
	s.Budget = r.budget
	return s
}

// Shrink evicts least-recently-used entries until at most maxBytes are
// resident — the operator's "reclaim memory now" knob, independent of
// the steady-state budget. It reports the resulting resident bytes.
func (r *Registry) Shrink(maxBytes int64) int64 {
	if maxBytes < 0 {
		maxBytes = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for e := r.head; e != nil && r.bytes > maxBytes; {
		next := e.next
		if e.trie != nil {
			r.unlink(e)
			delete(r.entries, e.key)
			r.bytes -= e.bytes
			r.stats.Evictions++
			if r.evictHook != nil {
				r.evictHook(e.key.rel, e.key.perm)
			}
		}
		e = next
	}
	return r.bytes
}
