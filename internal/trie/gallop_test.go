package trie

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

// This file pins the galloping-seek contract: SeekGE must land exactly
// where the historical binary search landed, and the accounting it
// charges must be bit-identical to the per-probe charges of that
// implementation — position equivalence, model-cost equivalence, and
// the binProbes replay against an instrumented sort.Search.

// refSeekLevel is the historical seek: the current-position check, then
// sort.Search over the remaining range, charging one access per
// physical probe. It is the accounting reference the galloping
// implementation must match charge-for-charge.
func refSeekLevel(vals []int64, pos, hi int32, v int64, charges *int64) int32 {
	if pos < hi {
		*charges++
		if vals[pos] >= v {
			return pos
		}
		pos++
	}
	probes := int64(0)
	i := int32(sort.Search(int(hi-pos), func(i int) bool {
		probes++
		return vals[pos+int32(i)] >= v
	}))
	*charges += probes
	return pos + i
}

// TestBinProbesMatchesSortSearch verifies the charged model cost:
// binProbes(n, r) must equal the number of probes sort.Search performs
// on n elements when the predicate flips at offset r, for every (n, r).
func TestBinProbesMatchesSortSearch(t *testing.T) {
	for n := int32(0); n <= 300; n++ {
		for r := int32(0); r <= n; r++ {
			var probes int64
			got := sort.Search(int(n), func(i int) bool {
				probes++
				return int32(i) >= r
			})
			if int32(got) != r {
				t.Fatalf("sort.Search(%d) flipped at %d landed at %d", n, r, got)
			}
			if bp := binProbes(n, r); bp != probes {
				t.Fatalf("binProbes(%d, %d) = %d, sort.Search probed %d times", n, r, bp, probes)
			}
		}
	}
}

// TestGallopSeekEquivalence drives random monotone seek sequences over
// one trie level and checks, per seek, that the galloping SeekGE lands
// on the reference position and charges exactly the reference's access
// count.
func TestGallopSeekEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		seen := make(map[int64]bool)
		var tuples [][]int64
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(4 * n))
			if !seen[v] {
				seen[v] = true
				tuples = append(tuples, []int64{v})
			}
		}
		rel := buildRel(t, 1, tuples)
		vals := make([]int64, rel.Len())
		for i := range vals {
			vals[i] = rel.Tuple(i)[0]
		}
		tr := Build(rel, nil)

		var c stats.Counters
		it := tr.NewIteratorCounters(&c)
		it.Open()
		openCharge := int64(1) // Open at the root charges one access
		var refCharges int64
		refPos := int32(0)
		hi := int32(len(vals))
		target := int64(-5)
		for step := 0; step < 40 && !it.AtEnd(); step++ {
			target += int64(rng.Intn(3 * (len(vals)/8 + 1)))
			it.SeekGE(target)
			refPos = refSeekLevel(vals, refPos, hi, target, &refCharges)
			if refPos >= hi {
				if !it.AtEnd() {
					t.Fatalf("trial %d: reference AtEnd, gallop at key %d", trial, it.Key())
				}
				break
			}
			if it.AtEnd() {
				t.Fatalf("trial %d: gallop AtEnd, reference at %d", trial, vals[refPos])
			}
			key := it.Key()
			it.Flush()
			refCharges++ // the reference Key read
			if key != vals[refPos] {
				t.Fatalf("trial %d: SeekGE(%d) = %d, reference %d", trial, target, key, vals[refPos])
			}
			if got := c.TrieAccesses - openCharge; got != refCharges {
				t.Fatalf("trial %d step %d: charged %d accesses, reference charged %d",
					trial, step, got, refCharges)
			}
		}
	}
}

// TestGallopProbeClass pins the physical cost class next to position
// correctness: for random sorted levels and targets, gallop must land
// exactly where sort.Search lands while probing O(log m) cells for a
// landing offset m — independent of the level size. The old binary
// search probed Θ(log n) even for adjacent seeks; the charged *model*
// cost deliberately keeps that Θ(log n) shape (accounting
// compatibility), but the physical work class must be logarithmic in
// the seek distance.
func TestGallopProbeClass(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	log2 := func(x int32) int32 {
		var b int32
		for x > 0 {
			b++
			x >>= 1
		}
		return b
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(1<<13)
		vals := make([]int64, n)
		v := int64(0)
		for i := range vals {
			v += int64(1 + rng.Intn(4))
			vals[i] = v
		}
		for probe := 0; probe < 20; probe++ {
			target := int64(rng.Intn(int(vals[n-1]) + 3))
			want := int32(sort.Search(n, func(i int) bool { return vals[i] >= target }))
			got, probes := gallop(vals, target)
			if got != want {
				t.Fatalf("trial %d: gallop(%d) = %d, sort.Search = %d", trial, target, got, want)
			}
			if bound := 2*log2(got+2) + 4; probes > bound {
				t.Fatalf("trial %d: gallop landed at %d with %d probes (> %d): not O(log m)",
					trial, got, probes, bound)
			}
		}
	}
}
