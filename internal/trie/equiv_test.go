package trie

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

// This file proves the accounting-equivalence contract of the hot-path
// rewrite: the batched, galloping iterator must report exactly the
// stats.Counters totals of the historical implementation — per-probe
// guarded writes, sort.Search seeks — on any traversal. refIter below
// is a faithful port of that implementation (kept test-only); the
// property test drives both cursors through identical random
// LFTJ-shaped traversals over random tries and requires every observed
// key and the final totals to match bit-for-bit. The CLI golden files
// (cmd/cltj/testdata) pin the same contract end-to-end on the
// benchmark query set.

// refIter is the pre-refactor iterator over a materialized trie:
// unbatched accounting, binary-search seeks.
type refIter struct {
	t     *Trie
	c     *stats.Counters
	depth int
	hi    []int32
	pos   []int32
}

func newRefIter(t *Trie, c *stats.Counters) *refIter {
	return &refIter{t: t, c: c, depth: -1, hi: make([]int32, t.arity), pos: make([]int32, t.arity)}
}

func (it *refIter) account(n int64) { it.c.TrieAccesses += n }

func (it *refIter) Open() {
	d := it.depth + 1
	var lo, hi int32
	if d == 0 {
		lo, hi = 0, int32(len(it.t.levels[0].vals))
	} else {
		lvl := &it.t.levels[it.depth]
		q := it.pos[it.depth]
		lo, hi = lvl.start[q], lvl.start[q+1]
		it.account(2)
	}
	it.depth = d
	it.hi[d], it.pos[d] = hi, lo
	it.account(1)
}

func (it *refIter) Up()         { it.depth-- }
func (it *refIter) AtEnd() bool { return it.pos[it.depth] >= it.hi[it.depth] }

func (it *refIter) Key() int64 {
	it.account(1)
	return it.t.levels[it.depth].vals[it.pos[it.depth]]
}

func (it *refIter) Next() {
	it.pos[it.depth]++
	it.account(1)
}

func (it *refIter) SeekGE(v int64) {
	d := it.depth
	var charges int64
	it.pos[d] = refSeekLevel(it.t.levels[d].vals, it.pos[d], it.hi[d], v, &charges)
	it.account(charges)
}

// randomRel builds a random relation of the given arity with skewed,
// clustered values so tries get meaningful fanout at every level.
func randomRel(rng *rand.Rand, arity, n int) *relation.Relation {
	tuples := make([][]int64, n)
	for i := range tuples {
		row := make([]int64, arity)
		for j := range row {
			row[j] = int64(rng.Intn(4 + 3*j + n/8))
		}
		tuples[i] = row
	}
	return relation.MustNew("R", arity, tuples)
}

// TestIteratorAccountingEquivalence runs both cursors through the same
// randomized traversal — the Open/Seek/Next/Up mix LFTJ performs — and
// checks every key and the final charged totals agree.
func TestIteratorAccountingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 150; trial++ {
		arity := 1 + rng.Intn(4)
		rel := randomRel(rng, arity, 1+rng.Intn(120))
		tr := Build(rel, nil)

		var cNew, cRef stats.Counters
		it := tr.NewIteratorCounters(&cNew)
		ref := newRefIter(tr, &cRef)

		var walk func(d int)
		walk = func(d int) {
			it.Open()
			ref.Open()
			for !ref.AtEnd() {
				if it.AtEnd() {
					t.Fatalf("trial %d: new iterator ended early at depth %d", trial, d)
				}
				k, rk := it.Key(), ref.Key()
				if k != rk {
					t.Fatalf("trial %d depth %d: key %d, reference %d", trial, d, k, rk)
				}
				if d+1 < arity && rng.Intn(4) > 0 {
					walk(d + 1)
				}
				// Mix advances: plain Next, or a seek that usually lands
				// nearby and sometimes jumps far (LFTJ's leapfrogging).
				switch rng.Intn(3) {
				case 0:
					it.Next()
					ref.Next()
				default:
					target := k + 1 + int64(rng.Intn(7))
					if rng.Intn(8) == 0 {
						target = k + int64(rng.Intn(1000))
					}
					it.SeekGE(target)
					ref.SeekGE(target)
				}
			}
			if !it.AtEnd() {
				t.Fatalf("trial %d: reference ended, new iterator at key %d", trial, it.Key())
			}
			it.Up()
			ref.Up()
		}
		walk(0)
		it.Flush()
		if cNew.TrieAccesses != cRef.TrieAccesses {
			t.Fatalf("trial %d: charged %d trie accesses, reference charged %d",
				trial, cNew.TrieAccesses, cRef.TrieAccesses)
		}
	}
}
