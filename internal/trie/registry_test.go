package trie

import (
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

func regTestRel(t *testing.T, name string, n int) *relation.Relation {
	t.Helper()
	tuples := make([][]int64, 0, n)
	for i := 0; i < n; i++ {
		tuples = append(tuples, []int64{int64(i), int64((i * 7) % n)})
	}
	return relation.MustNew(name, 2, tuples)
}

func TestRegistryHitAvoidsRebuild(t *testing.T) {
	r := NewRegistry(0)
	rel := regTestRel(t, "E", 50)

	var c1 stats.Counters
	t1, err := r.Trie(rel, []int{0, 1}, &c1)
	if err != nil {
		t.Fatal(err)
	}
	if c1.TrieBuilds != 1 {
		t.Fatalf("first Get: TrieBuilds = %d, want 1", c1.TrieBuilds)
	}

	var c2 stats.Counters
	t2, err := r.Trie(rel, []int{0, 1}, &c2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.TrieBuilds != 0 {
		t.Fatalf("second Get: TrieBuilds = %d, want 0", c2.TrieBuilds)
	}
	if t1 != t2 {
		t.Fatal("second Get returned a different trie")
	}

	// A different attribute order is a different index.
	var c3 stats.Counters
	t3, err := r.Trie(rel, []int{1, 0}, &c3)
	if err != nil {
		t.Fatal(err)
	}
	if c3.TrieBuilds != 1 {
		t.Fatalf("permuted Get: TrieBuilds = %d, want 1", c3.TrieBuilds)
	}
	if t3 == t1 {
		t.Fatal("permuted order returned the same trie")
	}

	s := r.Stats()
	if s.Builds != 2 || s.Hits != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want builds=2 hits=1 entries=2", s)
	}
}

func TestRegistryKeyedByRelationIdentity(t *testing.T) {
	r := NewRegistry(0)
	a := regTestRel(t, "E", 30)
	b := regTestRel(t, "E", 30) // equal contents, distinct value

	ta, err := r.Trie(a, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := r.Trie(b, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ta == tb {
		t.Fatal("distinct relation values shared one cached trie")
	}
}

func TestRegistryBudgetEvictsLRU(t *testing.T) {
	rel := regTestRel(t, "E", 100)
	one, err := NewRegistry(0).Trie(rel, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	per := one.MemoryBytes()

	// Room for two tries; the third insertion evicts the least recently
	// used of the first two.
	r := NewRegistry(2 * per)
	rels := []*relation.Relation{
		regTestRel(t, "A", 100), regTestRel(t, "B", 100), regTestRel(t, "C", 100),
	}
	for _, x := range rels[:2] {
		if _, err := r.Trie(x, []int{0, 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B becomes the LRU victim.
	if _, err := r.Trie(rels[0], []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Trie(rels[2], []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}

	s := r.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want evictions=1 entries=2", s)
	}
	var c stats.Counters
	if _, err := r.Trie(rels[0], []int{0, 1}, &c); err != nil {
		t.Fatal(err)
	}
	if c.TrieBuilds != 0 {
		t.Fatal("A was evicted, want B (LRU)")
	}
	if _, err := r.Trie(rels[1], []int{0, 1}, &c); err != nil {
		t.Fatal(err)
	}
	if c.TrieBuilds != 1 {
		t.Fatal("B was retained, want it evicted as LRU")
	}
}

func TestRegistryOversizedEntryStaysResident(t *testing.T) {
	r := NewRegistry(1) // smaller than any trie
	rel := regTestRel(t, "E", 50)
	tr, err := r.Trie(rel, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("nil trie")
	}
	if s := r.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d, want the oversized entry resident", s.Entries)
	}
}

func TestRegistryShrink(t *testing.T) {
	r := NewRegistry(0)
	for _, name := range []string{"A", "B", "C"} {
		if _, err := r.Trie(regTestRel(t, name, 60), []int{0, 1}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Shrink(0); got != 0 {
		t.Fatalf("Shrink(0) left %d bytes", got)
	}
	if s := r.Stats(); s.Entries != 0 || s.Evictions != 3 {
		t.Fatalf("stats after shrink = %+v", s)
	}
}

func TestRegistryBadPermutation(t *testing.T) {
	r := NewRegistry(0)
	rel := regTestRel(t, "E", 10)
	if _, err := r.Trie(rel, []int{0, 5}, nil); err == nil {
		t.Fatal("want error for invalid permutation")
	}
	// The failed entry must not poison the key.
	if _, err := r.Trie(rel, []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryConcurrentGet hammers one registry from many goroutines;
// under -race it verifies the locking, and the per-key build counts
// verify the singleflight behaviour (each key built exactly once).
func TestRegistryConcurrentGet(t *testing.T) {
	r := NewRegistry(0)
	rels := []*relation.Relation{
		regTestRel(t, "A", 80), regTestRel(t, "B", 80), regTestRel(t, "C", 80),
	}
	perms := [][]int{{0, 1}, {1, 0}}

	const goroutines = 32
	var wg sync.WaitGroup
	got := make([][]*Trie, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var c stats.Counters
			for round := 0; round < 20; round++ {
				for _, rel := range rels {
					for _, p := range perms {
						tr, err := r.Trie(rel, p, &c)
						if err != nil {
							t.Error(err)
							return
						}
						got[g] = append(got[g], tr)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	s := r.Stats()
	if want := int64(len(rels) * len(perms)); s.Builds != want {
		t.Fatalf("builds = %d, want %d (one per key)", s.Builds, want)
	}
	// Every goroutine must have observed the same trie per key slot.
	for g := 1; g < goroutines; g++ {
		for i := range got[0] {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d slot %d saw a different trie", g, i)
			}
		}
	}
}

// storeVersions advances a Store and returns the version after applying
// the delta, observed by the registry as an engine would.
func applyObserved(t *testing.T, s *relation.Store, r *Registry, ins, del [][]int64) relation.Version {
	t.Helper()
	v, changed, err := s.ApplyDelta(ins, del)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("delta was a no-op")
	}
	r.Observe(v)
	return v
}

func TestRegistryPatchedBuild(t *testing.T) {
	r := NewRegistry(0)
	base := regTestRel(t, "E", 60)
	s := relation.NewStore(base)

	// Warm the base index under both orders.
	if _, err := r.Trie(base, []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Trie(base, []int{1, 0}, nil); err != nil {
		t.Fatal(err)
	}

	v := applyObserved(t, s, r, [][]int64{{101, 5}, {102, 6}}, [][]int64{{0, 0}})
	if !v.Patched() {
		t.Fatalf("small delta compacted: %+v", v)
	}

	var c stats.Counters
	pt, err := r.Trie(v.Rel, []int{1, 0}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if c.TrieBuilds != 0 || c.TriePatches != 1 {
		t.Fatalf("counters = builds %d patches %d, want 0/1", c.TrieBuilds, c.TriePatches)
	}
	if !pt.Patched() {
		t.Fatal("warm-version index is not a patch")
	}
	// The patched index answers exactly like a fresh build.
	perm, err := v.Rel.Permute([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !equalTuples(enumerate(pt), enumerate(Build(perm, nil))) {
		t.Fatal("patched index enumeration differs from fresh build")
	}
	s2 := r.Stats()
	if s2.Patches != 1 {
		t.Fatalf("registry stats patches = %d, want 1", s2.Patches)
	}

	// A column order first requested after updates began finds no
	// resident base: the registry materializes the base once (a real
	// build, charged to this query) and still patches — so later deltas
	// on that order patch with zero further builds instead of paying a
	// full rebuild per delta.
	var c2 stats.Counters
	coldBase := regTestRel(t, "R", 10)
	s3 := relation.NewStore(coldBase)
	s3.SetCompactFraction(10)
	v3 := applyObserved(t, s3, r, [][]int64{{99, 99}}, nil)
	if _, err := r.Trie(v3.Rel, []int{0, 1}, &c2); err != nil {
		t.Fatal(err)
	}
	if c2.TrieBuilds != 1 || c2.TriePatches != 1 {
		t.Fatalf("cold-base counters = builds %d patches %d, want 1/1 (base materialized, then patched)", c2.TrieBuilds, c2.TriePatches)
	}
	v4 := applyObserved(t, s3, r, [][]int64{{98, 98}}, nil)
	var c3 stats.Counters
	if _, err := r.Trie(v4.Rel, []int{0, 1}, &c3); err != nil {
		t.Fatal(err)
	}
	if c3.TrieBuilds != 0 || c3.TriePatches != 1 {
		t.Fatalf("follow-up delta on cold order: builds %d patches %d, want 0/1", c3.TrieBuilds, c3.TriePatches)
	}
}

func TestRegistryCompactedVersionFullBuild(t *testing.T) {
	r := NewRegistry(0)
	base := regTestRel(t, "E", 8)
	s := relation.NewStore(base) // crossover: 2 tuples on an 8-tuple base
	if _, err := r.Trie(base, []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	ins := [][]int64{{50, 1}, {51, 1}, {52, 1}}
	v := applyObserved(t, s, r, ins, nil)
	if v.Patched() {
		t.Fatalf("crossover delta did not compact: %+v", v)
	}
	var c stats.Counters
	ft, err := r.Trie(v.Rel, []int{0, 1}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if c.TrieBuilds != 1 || c.TriePatches != 0 || ft.Patched() {
		t.Fatalf("compacted version: builds %d patches %d patched=%v, want full build", c.TrieBuilds, c.TriePatches, ft.Patched())
	}
}

func TestRegistryRelease(t *testing.T) {
	r := NewRegistry(0)
	base := regTestRel(t, "E", 40)
	s := relation.NewStore(base)
	if _, err := r.Trie(base, []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	v := applyObserved(t, s, r, [][]int64{{90, 90}}, nil)
	if _, err := r.Trie(v.Rel, []int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	before := r.Stats()
	if before.Entries != 2 {
		t.Fatalf("entries = %d, want 2", before.Entries)
	}

	r.Release(base)
	after := r.Stats()
	if after.Entries != 1 || after.Released != 1 {
		t.Fatalf("after release: %+v, want entries=1 released=1", after)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("release did not shrink bytes: %d -> %d", before.Bytes, after.Bytes)
	}
	// The surviving version still answers (its patch holds the base
	// arrays alive even though the registry dropped its reference).
	var c stats.Counters
	if _, err := r.Trie(v.Rel, []int{0, 1}, &c); err != nil {
		t.Fatal(err)
	}
	if c.TrieBuilds+c.TriePatches != 0 {
		t.Fatal("released base evicted the surviving version's entry")
	}
}
