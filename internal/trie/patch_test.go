package trie

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

// enumerate walks the trie depth-first through the public iterator API
// and returns every tuple, in order.
func enumerate(t *Trie) [][]int64 {
	var out [][]int64
	if t.Arity() == 0 {
		return out
	}
	tup := make([]int64, t.Arity())
	it := t.NewIterator()
	var walk func(d int)
	walk = func(d int) {
		it.Open()
		for !it.AtEnd() {
			tup[d] = it.Key()
			if d == t.Arity()-1 {
				out = append(out, append([]int64(nil), tup...))
			} else {
				walk(d + 1)
			}
			it.Next()
		}
		it.Up()
	}
	walk(0)
	return out
}

func equalTuples(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if relation.CompareTuples(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// patchOf builds the patched trie for newRel relative to base (both
// unpermuted), mimicking what the registry derives from Store lineage.
func patchOf(t *testing.T, base, newRel *relation.Relation, c *stats.Counters) *Trie {
	t.Helper()
	bt := Build(base, nil)
	pt, err := BuildPatched(bt, newRel.Subtract(base), base.Subtract(newRel), c)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestPatchedTrieEnumerates(t *testing.T) {
	base := relation.MustNew("E", 2, [][]int64{
		{1, 2}, {1, 4}, {2, 3}, {3, 1}, {3, 5}, {5, 5},
	})
	newRel := relation.MustNew("E", 2, [][]int64{
		{1, 3}, {1, 4}, {2, 3}, {3, 5}, {4, 1}, {5, 5}, {5, 6},
	}) // deletes (1,2),(3,1); inserts (1,3),(4,1),(5,6)

	var c stats.Counters
	pt := patchOf(t, base, newRel, &c)
	if !pt.Patched() {
		t.Fatal("patched trie does not report Patched")
	}
	if c.TriePatches != 1 {
		t.Fatalf("TriePatches = %d, want 1", c.TriePatches)
	}
	want := enumerate(Build(newRel, nil))
	got := enumerate(pt)
	if !equalTuples(got, want) {
		t.Fatalf("patched enumeration:\n got %v\nwant %v", got, want)
	}
	if pt.PatchBytes() <= 0 || pt.MemoryBytes() <= pt.PatchBytes() {
		t.Fatalf("byte accounting: patch=%d total=%d", pt.PatchBytes(), pt.MemoryBytes())
	}
}

func TestPatchedTrieWholeNodeDeleted(t *testing.T) {
	// Deleting every tuple under root value 1 must hide the root node
	// itself, including when a new tuple re-creates the value via the
	// overlay.
	base := relation.MustNew("E", 2, [][]int64{{1, 2}, {1, 3}, {2, 2}})
	for _, tc := range []struct {
		name   string
		tuples [][]int64
	}{
		{"drop-node", [][]int64{{2, 2}}},
		{"reinsert-value", [][]int64{{1, 9}, {2, 2}}},
		{"empty", nil},
	} {
		newRel := relation.MustNew("E", 2, tc.tuples)
		pt := patchOf(t, base, newRel, nil)
		want := enumerate(Build(newRel, nil))
		got := enumerate(pt)
		if !equalTuples(got, want) {
			t.Fatalf("%s:\n got %v\nwant %v", tc.name, got, want)
		}
	}
}

func TestPatchedTrieErrors(t *testing.T) {
	base := relation.MustNew("E", 2, [][]int64{{1, 2}})
	bt := Build(base, nil)
	empty := relation.MustNew("E", 2, nil)

	// Deleting a tuple the base does not hold is a lineage violation.
	if _, err := BuildPatched(bt, empty, relation.MustNew("E", 2, [][]int64{{9, 9}}), nil); err == nil {
		t.Fatal("missing delete accepted")
	}
	// Patches do not stack.
	pt, err := BuildPatched(bt, relation.MustNew("E", 2, [][]int64{{2, 2}}), empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPatched(pt, empty, empty, nil); err == nil {
		t.Fatal("patch of a patch accepted")
	}
	// Arity mismatches are rejected.
	if _, err := BuildPatched(bt, relation.MustNew("E", 3, nil), empty, nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// TestPatchedTrieLockstepSeeks drives a patched trie and a fresh build
// of the same relation through an identical randomized Open/Next/SeekGE
// walk; every observation (AtEnd, Key) must match exactly.
func TestPatchedTrieLockstepSeeks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 60; round++ {
		arity := 2 + rng.Intn(2)
		dom := int64(3 + rng.Intn(6))
		randRel := func(n int) *relation.Relation {
			b := relation.NewBuilder("E", arity)
			tup := make([]int64, arity)
			for i := 0; i < n; i++ {
				for j := range tup {
					tup[j] = rng.Int63n(dom)
				}
				b.Add(tup...)
			}
			return b.Build()
		}
		base := randRel(8 + rng.Intn(30))
		// Mutate: delete a random subset, insert fresh tuples.
		var dels [][]int64
		for _, tup := range base.Tuples() {
			if rng.Intn(3) == 0 {
				dels = append(dels, tup)
			}
		}
		ins := randRel(rng.Intn(10)).Tuples()
		cur := base
		for _, d := range dels {
			cur = cur.Subtract(relation.MustNew("E", arity, [][]int64{d}))
		}
		cur = cur.Union(relation.MustNew("E", arity, ins))

		pt := patchOf(t, base, cur, nil)
		ft := Build(cur, nil)

		pit, fit := pt.NewIterator(), ft.NewIterator()
		var walk func(d int)
		fail := false
		walk = func(d int) {
			if fail {
				return
			}
			pit.Open()
			fit.Open()
			for {
				if rng.Intn(4) == 0 && !fit.AtEnd() {
					v := rng.Int63n(dom + 1)
					if v >= fit.Key() { // forward-only seek contract
						pit.SeekGE(v)
						fit.SeekGE(v)
					}
				}
				pe, fe := pit.AtEnd(), fit.AtEnd()
				if pe != fe {
					t.Errorf("round %d depth %d: AtEnd %v vs fresh %v", round, d, pe, fe)
					fail = true
				}
				if fail || fe {
					break
				}
				pk, fk := pit.Key(), fit.Key()
				if pk != fk {
					t.Errorf("round %d depth %d: Key %d vs fresh %d", round, d, pk, fk)
					fail = true
					break
				}
				if d+1 < arity {
					walk(d + 1)
				}
				pit.Next()
				fit.Next()
			}
			pit.Up()
			fit.Up()
		}
		walk(0)
		if fail {
			t.Fatalf("round %d: base=%v cur=%v", round, base.Tuples(), cur.Tuples())
		}
	}
}

// TestPatchedLenTolerance pins the estimator contract Trie.Len
// documents for patched tries: Len(d) is base + overlay − dead, which
// never undercounts the live distinct node count and overcounts by at
// most the overlay level size (a value present in both the base and
// the overlay under the same prefix counts twice). The order-cost and
// fanout consumers rely on exactly this tolerance — an estimator
// change that undercounts (starving fanout) or overcounts past the
// overlay (inflating order cost) must fail here.
func TestPatchedLenTolerance(t *testing.T) {
	base := relation.MustNew("R", 2, [][]int64{{1, 1}, {1, 2}, {2, 1}, {3, 5}})
	// adds overlap the base at level 0 (values 1 and 2 exist in both);
	// dels kill the base node 3 entirely.
	adds := relation.MustNew("R", 2, [][]int64{{1, 3}, {2, 9}})
	dels := relation.MustNew("R", 2, [][]int64{{3, 5}})
	bt := Build(base, nil)
	pt, err := BuildPatched(bt, adds, dels, nil)
	if err != nil {
		t.Fatal(err)
	}

	// True distinct prefix counts of the live tuple set
	// {1,1},{1,2},{1,3},{2,1},{2,9}: level 0 has {1,2}, level 1 has 5.
	truth := []int{2, 5}
	overlay := []int{2, 2} // overlay trie level sizes for adds
	for d := 0; d < 2; d++ {
		got := pt.Len(d)
		if got < truth[d] {
			t.Fatalf("Len(%d) = %d undercounts the %d live nodes", d, got, truth[d])
		}
		if got > truth[d]+overlay[d] {
			t.Fatalf("Len(%d) = %d exceeds live %d + overlay %d", d, got, truth[d], overlay[d])
		}
	}
	// Pin the exact estimate so accidental estimator changes surface:
	// level 0: 3 base + 2 overlay − 1 dead; level 1: 4 base + 2 overlay
	// − 1 dead (every node on a fully-deleted path is marked, including
	// the leaf).
	if pt.Len(0) != 4 || pt.Len(1) != 5 {
		t.Fatalf("Len = %d,%d, want 4,5", pt.Len(0), pt.Len(1))
	}
	// The estimator must keep fanout well-defined for the cost model.
	if f := pt.Fanout(0); f <= 0 {
		t.Fatalf("Fanout(0) = %g, want > 0", f)
	}
}
