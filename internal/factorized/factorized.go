// Package factorized implements the factorized result representations
// (d-representations, [5,20] in the paper) that cached query evaluation
// stores and forwards (§3.4): a set of assignments to a contiguous
// variable interval is a union of entries, each pairing the values of the
// owner bag's variables with one factorized set per child subtree. The
// represented relation of an entry is its values × the product of its
// children; sets union their entries.
//
// Sharing is by pointer: a cache hit links the cached set into the parent
// entry, so repeated subresults are stored once.
package factorized

// Entry is one union member: Vals covers the owning bag's variables (a
// contiguous depth interval fixed by the plan), and Children holds one
// set per child subtree, in tree order.
type Entry struct {
	Vals     []int64
	Children []Set
}

// Set is a union of entries; nil is the empty set.
type Set []*Entry

// Count returns the number of (flat) tuples the set represents.
func (s Set) Count() int64 {
	var total int64
	for _, e := range s {
		prod := int64(1)
		for _, c := range e.Children {
			prod *= c.Count()
			if prod == 0 {
				break
			}
		}
		total += prod
	}
	return total
}

// NumEntries returns the number of entries stored, counting shared
// sub-sets once. It is the memory-footprint measure used by the bounded
// cache accounting.
func (s Set) NumEntries() int {
	seen := make(map[*Entry]bool)
	var walk func(Set)
	var n int
	walk = func(x Set) {
		for _, e := range x {
			if seen[e] {
				continue
			}
			seen[e] = true
			n++
			for _, c := range e.Children {
				walk(c)
			}
		}
	}
	walk(s)
	return n
}

// Size returns the number of int64 values stored across unique entries.
func (s Set) Size() int {
	seen := make(map[*Entry]bool)
	var walk func(Set)
	var n int
	walk = func(x Set) {
		for _, e := range x {
			if seen[e] {
				continue
			}
			seen[e] = true
			n += len(e.Vals)
			for _, c := range e.Children {
				walk(c)
			}
		}
	}
	walk(s)
	return n
}
