package factorized

import "testing"

func leaf(vals ...int64) *Entry { return &Entry{Vals: vals} }

func TestCountEmpty(t *testing.T) {
	var s Set
	if s.Count() != 0 {
		t.Fatalf("empty set count = %d", s.Count())
	}
	if s.NumEntries() != 0 || s.Size() != 0 {
		t.Fatal("empty set has entries")
	}
}

func TestCountFlat(t *testing.T) {
	s := Set{leaf(1), leaf(2), leaf(3)}
	if got := s.Count(); got != 3 {
		t.Fatalf("flat count = %d, want 3", got)
	}
	if got := s.NumEntries(); got != 3 {
		t.Fatalf("NumEntries = %d, want 3", got)
	}
	if got := s.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3", got)
	}
}

func TestCountProduct(t *testing.T) {
	// Two entries, each with two children of sizes 2 and 3: 2*(2*3) = 12.
	child1 := Set{leaf(1), leaf(2)}
	child2 := Set{leaf(3), leaf(4), leaf(5)}
	s := Set{
		{Vals: []int64{10}, Children: []Set{child1, child2}},
		{Vals: []int64{20}, Children: []Set{child1, child2}},
	}
	if got := s.Count(); got != 12 {
		t.Fatalf("product count = %d, want 12", got)
	}
}

func TestCountZeroChild(t *testing.T) {
	s := Set{{Vals: []int64{1}, Children: []Set{nil}}}
	if got := s.Count(); got != 0 {
		t.Fatalf("entry with empty child counts %d, want 0", got)
	}
}

func TestSharedSubstructureCountedOnce(t *testing.T) {
	shared := Set{leaf(1), leaf(2)}
	s := Set{
		{Vals: []int64{10}, Children: []Set{shared}},
		{Vals: []int64{20}, Children: []Set{shared}},
	}
	// Count multiplies through sharing: 2 entries × 2 = 4 tuples.
	if got := s.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	// But storage counts shared entries once: 2 roots + 2 shared = 4.
	if got := s.NumEntries(); got != 4 {
		t.Fatalf("NumEntries = %d, want 4", got)
	}
	// Size: roots have 1 value each, shared leaves 1 value each.
	if got := s.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
}

func TestDeepNesting(t *testing.T) {
	// A chain of depth 4 with 2 options per level: 2^4 = 16 tuples from
	// 8 stored entries.
	build := func(depth int) Set {
		var rec func(d int) Set
		rec = func(d int) Set {
			if d == 0 {
				return Set{leaf(0), leaf(1)}
			}
			child := rec(d - 1)
			return Set{
				{Vals: []int64{int64(d)}, Children: []Set{child}},
				{Vals: []int64{int64(d + 100)}, Children: []Set{child}},
			}
		}
		return rec(depth)
	}
	s := build(3)
	if got := s.Count(); got != 16 {
		t.Fatalf("deep count = %d, want 16", got)
	}
	if got := s.NumEntries(); got != 8 {
		t.Fatalf("deep NumEntries = %d, want 8 (sharing)", got)
	}
}
