package faults

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport wraps an http.RoundTripper with fault injection. Each
// request consults the site "<Site>/<class>" where class is derived
// from the request path ("query", "stream", "update", "stats",
// "healthz", or "other"): streamed and buffered queries are separate
// classes so a schedule can cut streams mid-body without also dropping
// the cheap preflight probes.
type Transport struct {
	// Base performs the real round trips (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Inj schedules the faults; nil passes everything through.
	Inj *Injector
	// Site prefixes every site name, conventionally "transport/<shard>".
	Site string
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	o := t.Inj.Fire(t.Site + "/" + classOf(req))
	if o == nil {
		return base.RoundTrip(req)
	}
	switch o.Kind {
	case KindDelay:
		timer := time.NewTimer(o.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
		return base.RoundTrip(req)
	case KindReset:
		// The server saw and processed the request; the client never
		// learns the answer — the ambiguous half of a transport error.
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, o.Err
	case KindTruncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, left: o.Bytes, err: o.Err}
		resp.ContentLength = -1
		return resp, nil
	default: // KindFail: dropped before the server sees it
		return nil, o.Err
	}
}

// classOf buckets a request into its injection class. Stream queries
// are told apart from buffered ones by the request body's mode field,
// which the cluster client always sets; sniffing would consume the
// body, so the client stashes the class in a header instead.
func classOf(req *http.Request) string {
	if c := req.Header.Get(ClassHeader); c != "" {
		return c
	}
	switch {
	case strings.HasPrefix(req.URL.Path, "/query"):
		return "query"
	case strings.HasPrefix(req.URL.Path, "/update"):
		return "update"
	case strings.HasPrefix(req.URL.Path, "/stats"):
		return "stats"
	case strings.HasPrefix(req.URL.Path, "/healthz"):
		return "healthz"
	default:
		return "other"
	}
}

// ClassHeader lets a client announce a finer request class than the URL
// path implies (the cluster client marks streamed queries "stream").
// The header is stripped by no one — servers ignore it.
const ClassHeader = "X-Faults-Class"

// truncatedBody delivers at most left bytes of the real body, then
// fails the read — a response connection dying mid-body.
type truncatedBody struct {
	rc   io.ReadCloser
	left int
	err  error
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, b.err
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	if err == io.EOF {
		return n, io.EOF
	}
	if b.left <= 0 && err == nil {
		err = b.err
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// CheckContext is Check with a context-aware delay: KindDelay waits for
// the sooner of the delay and ctx, returning ctx's error if it loses.
func (in *Injector) CheckContext(ctx context.Context, site string) error {
	o := in.Fire(site)
	if o == nil {
		return nil
	}
	if o.Kind == KindDelay {
		timer := time.NewTimer(o.Delay)
		select {
		case <-timer.C:
			return nil
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("faults: delay at %s interrupted: %w", site, ctx.Err())
		}
	}
	return o.Err
}
