// Package faults is a deterministic, seedable fault-injection substrate
// for the engine's three I/O boundaries: the cluster client's HTTP
// transport, the store's file operations, and the trie registry's byte
// budget. Production code threads an optional *Injector through those
// sites and consults it unconditionally — every method is safe on a nil
// receiver and a nil injector costs one pointer compare per site — so
// the fault paths exercised in tests are the exact code paths that run
// in production, not test doubles.
//
// Determinism contract: whether a rule fires at a site is a pure
// function of (seed, site, n) where n is the per-(rule, site) call
// ordinal. Two runs that issue the same call sequence per site make the
// same decisions, regardless of how unrelated sites interleave, so a
// chaos run is reproducible from its seed alone (the soak test prints
// the seed on failure and accepts it back via -faults-seed).
package faults

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind is the shape of one injected fault.
type Kind string

const (
	// KindFail fails the operation before it happens: a dropped HTTP
	// request (the server never sees it), a failed fsync or rename.
	KindFail Kind = "fail"
	// KindDelay stalls the operation by Rule.Delay, then lets it
	// proceed — the straggler/hedging case.
	KindDelay Kind = "delay"
	// KindReset (transport only) performs the request but discards the
	// response and fails — the connection-reset-after-send case, the
	// ambiguous failure where the server may have acted.
	KindReset Kind = "reset"
	// KindTruncate (transport only) cuts the response body short after
	// Rule.Bytes bytes — a stream dying mid-flight.
	KindTruncate Kind = "truncate"
	// KindShort (file writes only) persists the first Rule.Bytes bytes,
	// then fails — a torn append.
	KindShort Kind = "short"
)

// Rule arms faults at the sites its glob matches.
type Rule struct {
	// Site is a '/'-separated glob over site names; "*" matches exactly
	// one segment ("store/*.wal/sync" matches every relation's WAL
	// fsync, "transport/*/query" every shard's buffered queries).
	Site string
	// Kind selects the fault shape (KindFail when empty).
	Kind Kind
	// Nth, when positive, fires on exactly the Nth matching call at
	// each site (1-based) and never otherwise. When zero, every
	// matching call fires with probability P.
	Nth int64
	// P is the per-call fire probability when Nth is zero. P >= 1
	// fires always; P <= 0 with Nth == 0 never fires (a disarmed rule).
	P float64
	// Limit caps the rule's total fires across all sites (0 =
	// unlimited) — "fail the next fsync, once".
	Limit int64
	// Delay is the stall for KindDelay.
	Delay time.Duration
	// Bytes parameterizes KindTruncate / KindShort (how much of the
	// body / buffer survives). Zero truncates to nothing.
	Bytes int
	// Err overrides the injected error (a default naming the site and
	// kind is synthesized when nil).
	Err error
}

// Outcome is one fired fault at one site.
type Outcome struct {
	Site  string
	Kind  Kind
	Delay time.Duration
	Bytes int
	Err   error
}

// rule is one armed Rule plus its mutable state.
type rule struct {
	Rule
	segs  []string
	calls map[string]int64 // per-site call ordinals
	fires int64
}

// Injector schedules faults deterministically from a seed. All methods
// are safe for concurrent use and on a nil receiver (no faults armed).
type Injector struct {
	seed uint64

	mu    sync.Mutex
	rules []*rule
	fired map[string]int64
}

// New returns an injector whose decisions derive from seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, fired: make(map[string]int64)}
}

// Seed returns the injector's seed (printed by failing chaos runs).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Add arms one rule and returns the injector for chaining.
func (in *Injector) Add(r Rule) *Injector {
	if r.Kind == "" {
		r.Kind = KindFail
	}
	in.mu.Lock()
	in.rules = append(in.rules, &rule{
		Rule:  r,
		segs:  strings.Split(r.Site, "/"),
		calls: make(map[string]int64),
	})
	in.mu.Unlock()
	return in
}

// Fire consults the schedule at one site: nil means proceed normally,
// otherwise the returned outcome describes the fault to realize. The
// first armed rule whose glob matches decides; every matching rule's
// call ordinal advances either way, so disarming one rule does not
// shift another's schedule.
func (in *Injector) Fire(site string) *Outcome {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var hit *rule
	for _, r := range in.rules {
		if !matchSite(r.segs, site) {
			continue
		}
		n := r.calls[site] + 1
		r.calls[site] = n
		if hit != nil {
			continue // ordinals advance, but the first match decided
		}
		if r.Limit > 0 && r.fires >= r.Limit {
			continue
		}
		fire := false
		if r.Nth > 0 {
			fire = n == r.Nth
		} else if r.P > 0 {
			fire = r.P >= 1 || decide(in.seed, site, n) < r.P
		}
		if fire {
			hit = r
		}
	}
	if hit == nil {
		return nil
	}
	hit.fires++
	in.fired[site]++
	err := hit.Err
	if err == nil {
		err = fmt.Errorf("faults: injected %s at %s", hit.Kind, site)
	}
	return &Outcome{Site: site, Kind: hit.Kind, Delay: hit.Delay, Bytes: hit.Bytes, Err: err}
}

// Check is Fire for sites whose only meaningful faults are errors: it
// realizes KindDelay inline (sleeps) and returns the injected error for
// every other kind, or nil.
func (in *Injector) Check(site string) error {
	o := in.Fire(site)
	if o == nil {
		return nil
	}
	if o.Kind == KindDelay {
		time.Sleep(o.Delay)
		return nil
	}
	return o.Err
}

// WriteLen is the file-write site helper: it returns how many of full
// bytes the caller should actually write and the error to return. A
// clean site writes everything with no error; KindShort persists a
// prefix (a torn tail for recovery to find) and fails; KindFail writes
// nothing and fails.
func (in *Injector) WriteLen(site string, full int) (int, error) {
	o := in.Fire(site)
	if o == nil {
		return full, nil
	}
	switch o.Kind {
	case KindDelay:
		time.Sleep(o.Delay)
		return full, nil
	case KindShort:
		return min(o.Bytes, full), o.Err
	default:
		return 0, o.Err
	}
}

// Fires snapshots how many faults have fired per site — the soak test's
// evidence that a schedule actually exercised its sites.
func (in *Injector) Fires() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.fired))
	for site, n := range in.fired {
		out[site] = n
	}
	return out
}

// matchSite matches a '/'-separated glob against a site: "*" matches
// one whole segment, everything else is literal, and segment counts
// must agree.
func matchSite(glob []string, site string) bool {
	rest := site
	for i, g := range glob {
		var seg string
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			seg, rest = rest[:j], rest[j+1:]
		} else {
			seg, rest = rest, ""
			if i != len(glob)-1 {
				return false
			}
		}
		if g != "*" && g != seg {
			return false
		}
	}
	return rest == ""
}

// decide maps (seed, site, n) to a uniform float in [0, 1) via one
// splitmix64 round over the mixed inputs — the same finalizer the
// cluster partitioner pins for its wire contract, reused here purely
// for its avalanche quality.
func decide(seed uint64, site string, n int64) float64 {
	x := seed ^ fnv64(site) ^ uint64(n)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// fnv64 is FNV-1a over the site name.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
