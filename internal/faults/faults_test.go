package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Same seed, same call sequence => same decisions; a different seed
// disagrees somewhere. This is the reproducibility contract the chaos
// soak leans on.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(seed).Add(Rule{Site: "transport/*/query", P: 0.3})
		var fires []bool
		for _, site := range []string{"transport/a/query", "transport/b/query"} {
			for i := 0; i < 200; i++ {
				fires = append(fires, in.Fire(site) != nil)
			}
		}
		return fires
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 400-call schedules")
	}
	// Decisions at one site must not depend on interleaving with others.
	in := New(42).Add(Rule{Site: "transport/*/query", P: 0.3})
	var inter []bool
	for i := 0; i < 200; i++ {
		inter = append(inter, in.Fire("transport/a/query") != nil)
		in.Fire("transport/b/query")
	}
	for i := 0; i < 200; i++ {
		if a[i] != inter[i] {
			t.Fatalf("interleaving changed site-a decision at call %d", i)
		}
	}
}

func TestNthAndLimit(t *testing.T) {
	sentinel := errors.New("boom")
	in := New(1).Add(Rule{Site: "store/E.wal/sync", Nth: 3, Err: sentinel})
	for i := 1; i <= 10; i++ {
		err := in.Check("store/E.wal/sync")
		if i == 3 && !errors.Is(err, sentinel) {
			t.Fatalf("call 3: got %v, want sentinel", err)
		}
		if i != 3 && err != nil {
			t.Fatalf("call %d fired unexpectedly: %v", i, err)
		}
	}

	in = New(1).Add(Rule{Site: "s/*", P: 1, Limit: 2})
	fires := 0
	for i := 0; i < 10; i++ {
		if in.Check("s/a") != nil {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("Limit=2 fired %d times", fires)
	}
	if got := in.Fires()["s/a"]; got != 2 {
		t.Fatalf("Fires()[s/a] = %d, want 2", got)
	}
}

func TestGlobMatching(t *testing.T) {
	cases := []struct {
		glob, site string
		want       bool
	}{
		{"transport/*/query", "transport/shard0/query", true},
		{"transport/*/query", "transport/shard0/update", false},
		{"transport/*/query", "transport/a/b/query", false},
		{"store/E.wal/sync", "store/E.wal/sync", true},
		{"store/*/sync", "store/R.wal/sync", true},
		{"*", "anything", true},
		{"*", "a/b", false},
		{"a/b", "a", false},
	}
	for _, c := range cases {
		if got := matchSite(strings.Split(c.glob, "/"), c.site); got != c.want {
			t.Errorf("match(%q, %q) = %v, want %v", c.glob, c.site, got, c.want)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire("x") != nil || in.Check("x") != nil || in.Seed() != 0 || in.Fires() != nil {
		t.Fatal("nil injector injected something")
	}
	n, err := in.WriteLen("x", 9)
	if n != 9 || err != nil {
		t.Fatalf("nil WriteLen = (%d, %v)", n, err)
	}
}

func TestWriteLenShortAndFail(t *testing.T) {
	in := New(7).
		Add(Rule{Site: "w/short", Kind: KindShort, Nth: 1, Bytes: 4}).
		Add(Rule{Site: "w/fail", Nth: 1})
	n, err := in.WriteLen("w/short", 10)
	if n != 4 || err == nil {
		t.Fatalf("short write = (%d, %v), want (4, err)", n, err)
	}
	n, err = in.WriteLen("w/short", 10) // Nth=1 only
	if n != 10 || err != nil {
		t.Fatalf("second write = (%d, %v), want clean", n, err)
	}
	n, err = in.WriteLen("w/fail", 10)
	if n != 0 || err == nil {
		t.Fatalf("failed write = (%d, %v), want (0, err)", n, err)
	}
}

func TestFirstMatchingRuleDecides(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	in := New(1).
		Add(Rule{Site: "s/x", Nth: 1, Err: errA}).
		Add(Rule{Site: "s/*", P: 1, Err: errB})
	if err := in.Check("s/x"); !errors.Is(err, errA) {
		t.Fatalf("call 1: got %v, want rule A", err)
	}
	if err := in.Check("s/x"); !errors.Is(err, errB) {
		t.Fatalf("call 2: got %v, want rule B", err)
	}
}

func transportFor(in *Injector, h http.Handler) (*Transport, *httptest.Server) {
	srv := httptest.NewServer(h)
	return &Transport{Inj: in, Site: "transport/s0"}, srv
}

func TestTransportFailDropsRequest(t *testing.T) {
	served := 0
	tr, srv := transportFor(
		New(1).Add(Rule{Site: "transport/s0/query", Nth: 1}),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { served++ }))
	defer srv.Close()
	client := &http.Client{Transport: tr}

	if _, err := client.Post(srv.URL+"/query", "application/json", nil); err == nil {
		t.Fatal("dropped request succeeded")
	}
	if served != 0 {
		t.Fatalf("server saw %d requests through a KindFail, want 0", served)
	}
	resp, err := client.Post(srv.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	resp.Body.Close()
	if served != 1 {
		t.Fatalf("server saw %d requests, want 1", served)
	}
}

func TestTransportResetServesThenFails(t *testing.T) {
	served := 0
	tr, srv := transportFor(
		New(1).Add(Rule{Site: "transport/s0/update", Nth: 1}),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { served++ }))
	defer srv.Close()
	tr.Inj = New(1).Add(Rule{Site: "transport/s0/update", Kind: KindReset, Nth: 1})
	client := &http.Client{Transport: tr}

	if _, err := client.Post(srv.URL+"/update", "application/json", nil); err == nil {
		t.Fatal("reset request reported success")
	}
	if served != 1 {
		t.Fatalf("server saw %d requests through a KindReset, want 1 (request delivered, response lost)", served)
	}
}

func TestTransportTruncateCutsBody(t *testing.T) {
	body := strings.Repeat("x", 1000)
	tr, srv := transportFor(
		New(1).Add(Rule{Site: "transport/s0/stream", Kind: KindTruncate, Nth: 1, Bytes: 100}),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, body) }))
	defer srv.Close()
	client := &http.Client{Transport: tr}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", nil)
	req.Header.Set(ClassHeader, "stream")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("truncated response failed at round trip: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("reading a truncated body succeeded")
	}
	if len(got) != 100 {
		t.Fatalf("read %d bytes before failure, want 100", len(got))
	}
}

func TestTransportDelayStalls(t *testing.T) {
	tr, srv := transportFor(
		New(1).Add(Rule{Site: "transport/s0/query", Kind: KindDelay, Nth: 1, Delay: 50 * time.Millisecond}),
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	client := &http.Client{Transport: tr}

	start := time.Now()
	resp, err := client.Post(srv.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("delayed request returned in %v, want >= 50ms", d)
	}
}
