package dataset

// SNAP-like named datasets. Each stands in for one SNAP graph of the
// paper's study (§5.2.1), preserving the property the paper analyses —
// degree skew and clustering — at laptop scale (the paper ran up to
// 10-hour timeouts on server hardware; these graphs keep full benchmark
// sweeps in seconds-to-minutes). Sizes use a Scale knob: Scale=1 is the
// default benchmark size; larger scales approach the originals' shape
// more closely.
//
//	wiki-Vote        skewed voting network          → preferential attachment
//	p2p-Gnutella04   near-regular p2p overlay       → sparse Erdős–Rényi
//	ca-GrQc          clustered collaboration graph  → planted communities
//	ego-Facebook     dense friend circles           → denser communities
//	ego-Twitter      very large, very skewed        → heavier-tailed PA
//
// All generators are deterministic (fixed seeds), so experiment tables
// are reproducible bit-for-bit.

// Scale multiplies the node counts of the named datasets.
type Scale int

func (s Scale) nodes(base int) int {
	if s <= 0 {
		s = 1
	}
	return base * int(s)
}

// WikiVote substitutes the wiki-Vote network: a heavily skewed directed
// graph (a few admins receive most votes) with the moderate clustering
// real voting networks exhibit.
func WikiVote(s Scale) *Graph {
	g := TriadicPA(s.nodes(700), 6, 0.35, 1001)
	g.Name = "wiki-Vote*"
	return g
}

// P2PGnutella substitutes p2p-Gnutella04: a sparse overlay network whose
// degree distribution is comparatively balanced — the dataset on which
// the paper observes the smallest CLFTJ gains.
func P2PGnutella(s Scale) *Graph {
	n := s.nodes(900)
	g := ErdosRenyi(n, 4.0/float64(n), 1002)
	g.Name = "p2p-Gnutella04*"
	return g
}

// CaGrQc substitutes ca-GrQc: a co-authorship network modeled as a union
// of paper cliques with Zipf author popularity — hub authors plus very
// high co-neighbor multiplicity, which is what makes it the paper's
// showcase for cache reuse (§1).
func CaGrQc(s Scale) *Graph {
	g := CliqueUnion(s.nodes(500), s.nodes(260), 14, 1.6, 1003)
	g.Name = "ca-GrQc*"
	return g
}

// EgoFacebook substitutes ego-Facebook: dense, clustered friend circles.
func EgoFacebook(s Scale) *Graph {
	g := TriadicPA(s.nodes(350), 9, 0.75, 1004)
	g.Name = "ego-Facebook*"
	return g
}

// EgoTwitter substitutes ego-Twitter: the largest and most skewed of the
// paper's datasets, the one "highly amenable to caching" (§5.3.1).
// Follower circles give it substantial clustering on top of the skew.
func EgoTwitter(s Scale) *Graph {
	g := TriadicPA(s.nodes(1200), 9, 0.45, 1005)
	g.Name = "ego-Twitter*"
	return g
}

// SNAPAll returns the five SNAP stand-ins at the given scale, in the
// order the paper lists them.
func SNAPAll(s Scale) []*Graph {
	return []*Graph{WikiVote(s), P2PGnutella(s), CaGrQc(s), EgoFacebook(s), EgoTwitter(s)}
}
