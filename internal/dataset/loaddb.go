package dataset

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/relation"
)

// LoadDB assembles a query database from the CLI-style sources shared
// by cmd/cltj and cmd/cltjd, in priority order:
//
//  1. relSpecs ("name=path", whitespace-delimited files, #-comments)
//     load arbitrary relations;
//  2. otherwise dataPath loads an edge-list graph as relation E;
//  3. otherwise the built-in skewed sample graph is used.
//
// The returned Graph is non-nil in the edge-list cases so callers can
// report its shape; symmetric only applies to those.
func LoadDB(relSpecs []string, dataPath string, symmetric bool) (*relation.DB, *Graph, error) {
	if len(relSpecs) > 0 {
		db := relation.NewDB()
		for _, spec := range relSpecs {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				return nil, nil, fmt.Errorf("bad -rel %q, want name=path", spec)
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			r, err := relation.LoadRelation(name, f, relation.LoadOptions{Comment: "#"})
			f.Close()
			if err != nil {
				return nil, nil, err
			}
			db.Put(r)
		}
		return db, nil, nil
	}
	if dataPath == "" {
		g := WikiVote(1)
		return g.DB(symmetric), g, nil
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, err := Load(dataPath, f)
	if err != nil {
		return nil, nil, err
	}
	return g.DB(symmetric), g, nil
}
