package dataset

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

func validateGraph(t *testing.T, g *Graph) {
	t.Helper()
	seen := make(map[[2]int64]bool)
	for i, e := range g.Edges {
		if e[0] == e[1] {
			t.Fatalf("edge %d is a self loop: %v", i, e)
		}
		if e[0] < 0 || e[1] < 0 || e[0] >= int64(g.N) || e[1] >= int64(g.N) {
			t.Fatalf("edge %d out of range: %v (n=%d)", i, e, g.N)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 0.05, 3)
	validateGraph(t, g)
	if g.N != 100 {
		t.Fatalf("N = %d", g.N)
	}
	// Expected edges ~ 100*99*0.05 = 495; allow wide slack.
	if g.NumEdges() < 300 || g.NumEdges() > 700 {
		t.Fatalf("edge count %d far from expectation", g.NumEdges())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, gen := range map[string]func() *Graph{
		"er":   func() *Graph { return ErdosRenyi(60, 0.1, 7) },
		"pa":   func() *Graph { return PreferentialAttachment(60, 3, 7) },
		"tpa":  func() *Graph { return TriadicPA(60, 3, 0.5, 7) },
		"comm": func() *Graph { return Community(60, 5, 0.2, 0.01, 7) },
		"cliq": func() *Graph { return CliqueUnion(60, 40, 8, 1.6, 7) },
	} {
		a, b := gen(), gen()
		if !reflect.DeepEqual(a.Edges, b.Edges) {
			t.Errorf("%s: generator not deterministic", name)
		}
		validateGraph(t, a)
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	pa := PreferentialAttachment(400, 4, 11)
	er := ErdosRenyi(400, 8.0/400, 12)
	skewPA := degreeSkew(pa)
	skewER := degreeSkew(er)
	if skewPA <= skewER {
		t.Errorf("PA skew %.2f not above ER skew %.2f", skewPA, skewER)
	}
}

func degreeSkew(g *Graph) float64 {
	deg := make(map[int64]int)
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	freqs := make([]int, 0, len(deg))
	for _, d := range deg {
		freqs = append(freqs, d)
	}
	return stats.SkewCoefficient(freqs)
}

func TestTriadicPAClusters(t *testing.T) {
	// Triadic closure should produce many more triangles than plain PA
	// at the same size.
	tri := triangles(TriadicPA(300, 4, 0.7, 5))
	plain := triangles(PreferentialAttachment(300, 4, 5))
	if tri <= plain {
		t.Errorf("triadic PA triangles %d not above plain PA %d", tri, plain)
	}
}

func triangles(g *Graph) int {
	adj := make(map[int64]map[int64]bool)
	und := func(a, b int64) {
		if adj[a] == nil {
			adj[a] = make(map[int64]bool)
		}
		adj[a][b] = true
	}
	for _, e := range g.Edges {
		und(e[0], e[1])
		und(e[1], e[0])
	}
	count := 0
	for a, nbrs := range adj {
		for b := range nbrs {
			if b <= a {
				continue
			}
			for c := range adj[b] {
				if c > b && adj[a][c] {
					count++
				}
			}
		}
	}
	return count
}

func TestEdgeRelation(t *testing.T) {
	g := &Graph{Name: "g", N: 3, Edges: [][2]int64{{0, 1}, {1, 2}}}
	r := g.EdgeRelation("E", false)
	if r.Len() != 2 {
		t.Fatalf("directed relation has %d tuples", r.Len())
	}
	sym := g.EdgeRelation("E", true)
	if sym.Len() != 4 {
		t.Fatalf("symmetric relation has %d tuples", sym.Len())
	}
	db := g.DB(false)
	if _, err := db.Get("E"); err != nil {
		t.Fatal(err)
	}
}

func TestLoad(t *testing.T) {
	input := "# comment\n0 1\n1 2\n\n2 0\n1 2\n"
	g, err := Load("test", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 3 {
		t.Fatalf("loaded n=%d edges=%d", g.N, g.NumEdges())
	}
	validateGraph(t, g)

	if _, err := Load("bad", strings.NewReader("0\n")); err == nil {
		t.Error("single-field line accepted")
	}
	if _, err := Load("bad", strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric line accepted")
	}
	if _, err := Load("bad", strings.NewReader("-1 2\n")); err == nil {
		t.Error("negative id accepted")
	}
}

func TestSNAPAllNamesAndSizes(t *testing.T) {
	gs := SNAPAll(1)
	if len(gs) != 5 {
		t.Fatalf("SNAPAll returned %d graphs", len(gs))
	}
	wantNames := []string{"wiki-Vote*", "p2p-Gnutella04*", "ca-GrQc*", "ego-Facebook*", "ego-Twitter*"}
	for i, g := range gs {
		if g.Name != wantNames[i] {
			t.Errorf("graph %d named %q, want %q", i, g.Name, wantNames[i])
		}
		validateGraph(t, g)
		if g.NumEdges() == 0 {
			t.Errorf("%s has no edges", g.Name)
		}
	}
	// Scale grows the graphs.
	if WikiVote(2).N <= WikiVote(1).N {
		t.Error("Scale=2 did not grow wiki-Vote*")
	}
}

func TestIMDBCastShape(t *testing.T) {
	db := IMDBCast(DefaultIMDB())
	male, err := db.Get("male_cast")
	if err != nil {
		t.Fatal(err)
	}
	female, err := db.Get("female_cast")
	if err != nil {
		t.Fatal(err)
	}
	if male.Len() == 0 || female.Len() == 0 {
		t.Fatal("empty cast relations")
	}
	// The paper's key property: person_id (col 0) much more skewed than
	// movie_id (col 1).
	pSkew := stats.ColumnSkew(male.Tuples(), 0)
	mSkew := stats.ColumnSkew(male.Tuples(), 1)
	if pSkew <= 1.5*mSkew {
		t.Errorf("person skew %.2f not well above movie skew %.2f", pSkew, mSkew)
	}
	// Disjoint person populations.
	for i := 0; i < female.Len(); i++ {
		if female.Tuple(i)[0] < int64(DefaultIMDB().Persons) {
			t.Fatal("female person ids overlap male ids")
		}
	}
	// Zero config falls back to defaults.
	if IMDBCast(IMDBConfig{}).Len() != 2 {
		t.Error("zero config did not fall back to defaults")
	}
}
