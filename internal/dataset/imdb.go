package dataset

import (
	"math/rand"

	"repro/internal/queries"
	"repro/internal/relation"
)

// IMDB stand-in (§5.2.1, Fig. 13/14). The paper partitions IMDB's
// cast_info into male_cast and female_cast, both with schema
// (person_id, movie_id), and exploits that person_id is far more skewed
// than movie_id (prolific actors appear in many movies; movies have
// bounded casts). IMDBCast reproduces exactly that asymmetry: person ids
// are drawn from a Zipf distribution, movie ids nearly uniformly.

// IMDBConfig sizes the synthetic cast database.
type IMDBConfig struct {
	// Persons and Movies are the domain sizes per gender table.
	Persons, Movies int
	// Appearances is the number of (person, movie) facts per table
	// before deduplication.
	Appearances int
	// PersonSkew is the Zipf exponent for person ids (>1; higher means
	// more skew). Movie ids use a mild skew fixed well below it.
	PersonSkew float64
	// Seed fixes the generator.
	Seed int64
}

// DefaultIMDB returns the configuration the benchmarks use. The sizes
// keep the slowest baseline (vanilla LFTJ on the 6-cycle) around a
// minute; CLFTJ runs the same workload in seconds.
func DefaultIMDB() IMDBConfig {
	return IMDBConfig{Persons: 1500, Movies: 500, Appearances: 6000, PersonSkew: 1.9, Seed: 77}
}

// IMDBCast generates the male_cast and female_cast relations under the
// given configuration and returns them as a database.
func IMDBCast(cfg IMDBConfig) *relation.DB {
	if cfg.Persons <= 0 || cfg.Movies <= 0 || cfg.Appearances <= 0 {
		cfg = DefaultIMDB()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	personZipf := rand.NewZipf(rng, cfg.PersonSkew, 1, uint64(cfg.Persons-1))
	male := relation.NewBuilder(queries.MaleCastRel, 2)
	female := relation.NewBuilder(queries.FemaleCastRel, 2)
	for i := 0; i < cfg.Appearances; i++ {
		p := int64(personZipf.Uint64())
		m := int64(rng.Intn(cfg.Movies))
		male.Add(p, m)
		p = int64(personZipf.Uint64())
		m = int64(rng.Intn(cfg.Movies))
		// Offset female person ids so the two person populations are
		// disjoint, as in the real partitioned table.
		female.Add(p+int64(cfg.Persons), m)
	}
	return relation.NewDB(male.Build(), female.Build())
}
