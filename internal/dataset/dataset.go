// Package dataset generates and loads the experimental workloads. The
// paper evaluates on SNAP graphs (wiki-Vote, p2p-Gnutella04, ca-GrQc,
// ego-Facebook, ego-Twitter) and an IMDB cast table; neither ships with
// this repository, so dataset substitutes deterministic synthetic
// generators matched to each workload's *shape* — degree skew, clustering
// and density — which are the properties the paper's analysis attributes
// CLFTJ's behaviour to (skewed data caches well; balanced data does
// not). Sizes are scaled to laptop benchmarks. See snap.go and imdb.go
// for the per-dataset mapping.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Graph is a directed graph given as an edge list over nodes 0..N-1.
type Graph struct {
	// Name labels the graph in experiment tables.
	Name string
	// N is the number of nodes.
	N int
	// Edges are directed (from, to) pairs, deduplicated, no self loops.
	Edges [][2]int64
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// EdgeRelation materializes the edge list as a binary relation with the
// given name. With symmetric set, each edge is added in both directions
// (an undirected reading of the graph).
func (g *Graph) EdgeRelation(name string, symmetric bool) *relation.Relation {
	b := relation.NewBuilder(name, 2)
	for _, e := range g.Edges {
		b.Add(e[0], e[1])
		if symmetric {
			b.Add(e[1], e[0])
		}
	}
	return b.Build()
}

// DB wraps the graph as a single-relation database under the standard
// edge relation name "E".
func (g *Graph) DB(symmetric bool) *relation.DB {
	return relation.NewDB(g.EdgeRelation("E", symmetric))
}

// dedupe sorts and deduplicates the edge list, dropping self loops.
func dedupe(edges [][2]int64) [][2]int64 {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	out := edges[:0]
	for i, e := range edges {
		if e[0] == e[1] {
			continue
		}
		if i > 0 && e == edges[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ErdosRenyi generates a directed G(n,p) graph: each ordered pair (u,v),
// u != v, is an edge with probability p. Deterministic in seed.
func ErdosRenyi(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int64
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				edges = append(edges, [2]int64{int64(u), int64(v)})
			}
		}
	}
	return &Graph{Name: fmt.Sprintf("er-%d-%g", n, p), N: n, Edges: dedupe(edges)}
}

// PreferentialAttachment generates a Barabási–Albert-style graph: nodes
// arrive one at a time and attach m edges to existing nodes chosen
// proportionally to degree, yielding the heavy-tailed degree distribution
// characteristic of social graphs (wiki-Vote, ego-Twitter). Each edge's
// direction is a coin flip, so the directed graph contains cycles (a
// newest-to-oldest orientation would be acyclic and make every cycle
// query trivially empty). Deterministic in seed.
func PreferentialAttachment(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int64
	// targets repeats each node once per incident edge endpoint, so
	// sampling uniformly from it is degree-proportional sampling.
	targets := []int64{0}
	for u := 1; u < n; u++ {
		k := m
		if u < m {
			k = u
		}
		chosen := make(map[int64]bool, k)
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if t != int64(u) {
				chosen[t] = true
			}
		}
		// Materialize and sort first: map iteration order is randomized
		// and both the edge list and the degree pool must be
		// deterministic in the seed.
		picked := make([]int64, 0, len(chosen))
		for t := range chosen {
			picked = append(picked, t)
		}
		sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
		for _, t := range picked {
			if rng.Intn(2) == 0 {
				edges = append(edges, [2]int64{int64(u), t})
			} else {
				edges = append(edges, [2]int64{t, int64(u)})
			}
			targets = append(targets, t, int64(u))
		}
	}
	return &Graph{Name: fmt.Sprintf("pa-%d-%d", n, m), N: n, Edges: dedupe(edges)}
}

// TriadicPA generates a preferential-attachment graph with triadic
// closure: each arriving node attaches m edges; the first target is
// degree-sampled, and each further target is, with probability pTriad, a
// random neighbor of an already-chosen target (closing a triangle) and
// degree-sampled otherwise. The combination of heavy-tailed degrees and
// high clustering matches collaboration networks (ca-GrQc) and dense
// social circles (ego-Facebook). Edge directions are coin flips;
// deterministic in seed.
func TriadicPA(n, m int, pTriad float64, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int64
	neighbors := make([][]int64, n)
	targets := []int64{0}
	for u := 1; u < n; u++ {
		k := m
		if u < m {
			k = u
		}
		chosen := make(map[int64]bool, k)
		var order []int64
		pick := func(t int64) {
			if t != int64(u) && !chosen[t] {
				chosen[t] = true
				order = append(order, t)
			}
		}
		pick(targets[rng.Intn(len(targets))])
		for attempts := 0; len(order) < k && attempts < 20*k; attempts++ {
			if len(order) > 0 && rng.Float64() < pTriad {
				base := order[rng.Intn(len(order))]
				if nbrs := neighbors[base]; len(nbrs) > 0 {
					pick(nbrs[rng.Intn(len(nbrs))])
					continue
				}
			}
			pick(targets[rng.Intn(len(targets))])
		}
		for _, t := range order {
			if rng.Intn(2) == 0 {
				edges = append(edges, [2]int64{int64(u), t})
			} else {
				edges = append(edges, [2]int64{t, int64(u)})
			}
			neighbors[u] = append(neighbors[u], t)
			neighbors[t] = append(neighbors[t], int64(u))
			targets = append(targets, t, int64(u))
		}
	}
	return &Graph{Name: fmt.Sprintf("tpa-%d-%d-%g", n, m, pTriad), N: n, Edges: dedupe(edges)}
}

// CliqueUnion generates a collaboration network as a union of cliques:
// nPapers "papers" each draw 2..maxAuthors authors (paper sizes and
// author popularity Zipf-distributed) and contribute a clique among
// them. Overlapping cliques create hub authors and the very high
// co-neighbor multiplicity characteristic of co-authorship graphs
// (ca-GrQc) — the property that makes adhesion caches highly reusable.
// Edge directions are coin flips; deterministic in seed.
func CliqueUnion(nAuthors, nPapers, maxAuthors int, skew float64, seed int64) *Graph {
	if maxAuthors < 2 {
		maxAuthors = 2
	}
	rng := rand.New(rand.NewSource(seed))
	authorZipf := rand.NewZipf(rng, skew, 1, uint64(nAuthors-1))
	sizeZipf := rand.NewZipf(rng, 1.5, 1, uint64(maxAuthors-2))
	var edges [][2]int64
	for p := 0; p < nPapers; p++ {
		k := 2 + int(sizeZipf.Uint64())
		authors := make(map[int64]bool, k)
		for attempts := 0; len(authors) < k && attempts < 10*k; attempts++ {
			authors[int64(authorZipf.Uint64())] = true
		}
		list := make([]int64, 0, len(authors))
		for a := range authors {
			list = append(list, a)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, [2]int64{list[i], list[j]})
				} else {
					edges = append(edges, [2]int64{list[j], list[i]})
				}
			}
		}
	}
	return &Graph{Name: fmt.Sprintf("cliq-%d-%d", nAuthors, nPapers), N: nAuthors, Edges: dedupe(edges)}
}

// Community generates a planted-partition graph: n nodes split into k
// equal communities, with directed edge probability pIn inside a
// community and pOut across, modeling the clustered collaboration
// networks (ca-GrQc, ego-Facebook). Deterministic in seed.
func Community(n, k int, pIn, pOut float64, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int64
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			p := pOut
			if u%k == v%k {
				p = pIn
			}
			if rng.Float64() < p {
				edges = append(edges, [2]int64{int64(u), int64(v)})
			}
		}
	}
	return &Graph{Name: fmt.Sprintf("comm-%d-%d", n, k), N: n, Edges: dedupe(edges)}
}

// Load parses a SNAP-style edge list: one "from<ws>to" pair per line,
// '#' comment lines skipped. Node ids may be arbitrary non-negative
// integers; N is one past the largest id seen.
func Load(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges [][2]int64
	var maxID int64 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset %s: line %d: want 2 fields, got %d", name, line, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: line %d: %v", name, line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: line %d: %v", name, line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("dataset %s: line %d: negative node id", name, line)
		}
		edges = append(edges, [2]int64{u, v})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Graph{Name: name, N: int(maxID + 1), Edges: dedupe(edges)}, nil
}
