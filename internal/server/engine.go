// Package server hosts CLFTJ as a resident query service: an Engine
// loads a dataset once, keeps the trie indices in a shared
// least-recently-used registry bounded by a global byte budget, and
// answers any number of concurrent count/eval/aggregate queries. Each
// query is compiled through the ordinary Plan facade against the shared
// registry, runs on the parallel engine with its own cache policy, and
// accounts into private counters that are folded into engine-lifetime
// totals when it finishes — so the amortization the paper's flexible
// caches exploit within one query (§3, §5.3.3) extends across the whole
// query stream: load once, index once, answer many.
package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/trie"
)

// Config sizes a new Engine.
type Config struct {
	// Workers is the default per-query parallelism when a request does
	// not set its own: 0 uses one worker per core, 1 forces sequential.
	Workers int
	// TrieBudget bounds the registry's resident trie bytes, shared
	// across all queries (0 = unbounded). Under pressure the least
	// recently used index orders are evicted first.
	TrieBudget int64
	// DisableReuse turns the shared registry off: every query builds
	// private tries, as a one-shot CLI run would. This is the control
	// arm of the E12 benchmark and an escape hatch, not a fast mode.
	DisableReuse bool
	// MaxTuples caps the tuples an eval response carries when the
	// request does not set its own limit (0: DefaultMaxTuples). The
	// count is always exact; only the sample is capped.
	MaxTuples int
}

// DefaultMaxTuples is the eval response cap when neither the request
// nor the config names one.
const DefaultMaxTuples = 100

// Engine is a resident query service over one immutable database. All
// methods are safe for concurrent use; the database must not be mutated
// after the engine is constructed.
type Engine struct {
	db  *relation.DB
	reg *trie.Registry
	cfg Config

	life    stats.Locked
	queries atomic.Int64
	started time.Time
}

// NewEngine wraps db in a resident engine. db must not be mutated
// afterwards — the registry keys cached tries by relation identity.
func NewEngine(db *relation.DB, cfg Config) *Engine {
	e := &Engine{db: db, cfg: cfg, started: time.Now()}
	if !cfg.DisableReuse {
		e.reg = trie.NewRegistry(cfg.TrieBudget)
	}
	return e
}

// DB returns the engine's database.
func (e *Engine) DB() *relation.DB { return e.db }

// Registry returns the shared trie registry (nil when reuse is
// disabled).
func (e *Engine) Registry() *trie.Registry { return e.reg }

// Request is one query submission. The zero values of the optional
// fields defer to the engine's defaults.
type Request struct {
	// Query is the conjunctive query text, e.g. "E(x,y), E(y,z), E(x,z)".
	Query string `json:"query"`
	// Mode selects the execution: "count" (default), "eval" or
	// "aggregate".
	Mode string `json:"mode,omitempty"`
	// Workers overrides the engine's default parallelism for this query
	// (0: engine default; 1: sequential; K: K goroutines).
	Workers int `json:"workers,omitempty"`
	// CacheCapacity bounds this query's CLFTJ caches (entries per
	// worker; 0 = unbounded), CacheSupport is the support threshold and
	// CacheEviction one of "fifo" (default), "none", "lru". NoCache
	// disables caching entirely (CLFTJ degenerates to LFTJ).
	CacheCapacity int    `json:"cache_capacity,omitempty"`
	CacheSupport  int    `json:"cache_support,omitempty"`
	CacheEviction string `json:"cache_eviction,omitempty"`
	NoCache       bool   `json:"no_cache,omitempty"`
	// Limit caps the tuples returned by eval (0: engine default). The
	// reported count is always the full |q(D)|.
	Limit int `json:"limit,omitempty"`
	// Semiring selects the aggregate: "count" (default; |q(D)| with
	// subtree-aggregate caches), "sum" (sum over tuples of the product
	// of the bound values) or "min" (tropical: min over tuples of the
	// sum of the bound values).
	Semiring string `json:"semiring,omitempty"`
}

// QueryStats is the per-query accounting attached to a Response.
type QueryStats struct {
	// DurationMS is the wall-clock time of parse+plan+run.
	DurationMS float64 `json:"duration_ms"`
	// Counters is this query's private accounting (trie/hash/tuple
	// accesses, cache statistics, trie builds). A warm engine answers a
	// repeated query with Counters.TrieBuilds == 0.
	Counters stats.Counters `json:"counters"`
	// CachedEntries is the number of intermediate results resident in
	// the query's CLFTJ caches when it finished.
	CachedEntries int `json:"cached_entries"`
}

// Response is the result of one Request.
type Response struct {
	// Mode echoes the executed mode.
	Mode string `json:"mode"`
	// Count is |q(D)| for count and eval, and the aggregate value for
	// the counting semiring.
	Count int64 `json:"count"`
	// Value is the aggregate value for the float-valued semirings
	// ("sum", "min").
	Value float64 `json:"value,omitempty"`
	// Order is the plan's variable order; eval tuples align with it.
	Order []string `json:"order"`
	// Tuples is the first Limit result tuples (eval only).
	Tuples [][]int64 `json:"tuples,omitempty"`
	// Truncated reports that eval found more tuples than Limit.
	Truncated bool `json:"truncated,omitempty"`
	// Stats is the query's private accounting.
	Stats QueryStats `json:"stats"`
}

// EngineStats is the merged engine-lifetime view served by GET /stats.
type EngineStats struct {
	// Queries is the number of completed requests.
	Queries int64 `json:"queries"`
	// UptimeSeconds measures from engine construction.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Lifetime is the exact fold of every finished query's counters.
	Lifetime stats.Counters `json:"lifetime"`
	// Registry describes the shared trie registry (zero when reuse is
	// disabled).
	Registry trie.RegistryStats `json:"registry"`
	// Relations inventories the loaded dataset.
	Relations []RelationInfo `json:"relations"`
}

// RelationInfo describes one loaded relation.
type RelationInfo struct {
	Name   string `json:"name"`
	Arity  int    `json:"arity"`
	Tuples int    `json:"tuples"`
}

// Stats snapshots the engine-lifetime accounting.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Queries:       e.queries.Load(),
		UptimeSeconds: time.Since(e.started).Seconds(),
		Lifetime:      e.life.Snapshot(),
	}
	if e.reg != nil {
		s.Registry = e.reg.Stats()
	}
	for _, name := range e.db.Names() {
		r, err := e.db.Get(name)
		if err != nil {
			continue
		}
		s.Relations = append(s.Relations, RelationInfo{Name: name, Arity: r.Arity(), Tuples: r.Len()})
	}
	return s
}

// policyOf resolves a request's cache/execution policy.
func (e *Engine) policyOf(req Request) (core.Policy, error) {
	pol := core.Policy{
		Capacity:         req.CacheCapacity,
		SupportThreshold: req.CacheSupport,
		Disabled:         req.NoCache,
		Workers:          req.Workers,
	}
	if pol.Workers == 0 {
		pol.Workers = e.cfg.Workers
	}
	switch req.CacheEviction {
	case "", "fifo":
		pol.Eviction = core.EvictFIFO
	case "none":
		pol.Eviction = core.EvictNone
	case "lru":
		pol.Eviction = core.EvictLRU
	default:
		return pol, fmt.Errorf("server: unknown cache_eviction %q (want fifo, none or lru)", req.CacheEviction)
	}
	return pol, nil
}

// tries returns the shared source for plan compilation (nil when reuse
// is disabled; leapfrog then builds per-query tries).
func (e *Engine) tries() leapfrog.TrieSource {
	if e.reg == nil {
		return nil
	}
	return e.reg
}

// Do executes one request. It is safe to call from any number of
// goroutines: queries share only the immutable database and the
// mutex-guarded registry, while plans, CLFTJ caches and counters are
// private per call, so results are bit-identical to a fresh sequential
// run of the same query.
func (e *Engine) Do(req Request) (*Response, error) {
	start := time.Now()
	q, err := cq.Parse(req.Query)
	if err != nil {
		return nil, err
	}
	pol, err := e.policyOf(req)
	if err != nil {
		return nil, err
	}

	var c stats.Counters
	plan, err := core.AutoPlan(q, e.db, core.AutoOptions{Counters: &c, Tries: e.tries()})
	if err != nil {
		return nil, err
	}
	resp := &Response{Order: plan.Order()}

	switch req.Mode {
	case "", "count":
		resp.Mode = "count"
		res := plan.CountParallel(pol)
		resp.Count = res.Count
		resp.Stats.CachedEntries = res.CachedEntries

	case "eval":
		resp.Mode = "eval"
		limit := req.Limit
		if limit <= 0 {
			limit = e.cfg.MaxTuples
		}
		if limit <= 0 {
			limit = DefaultMaxTuples
		}
		res := plan.EvalParallel(pol, func(mu []int64) bool {
			resp.Count++
			if len(resp.Tuples) < limit {
				resp.Tuples = append(resp.Tuples, append([]int64(nil), mu...))
			} else {
				resp.Truncated = true
			}
			return true
		})
		resp.Stats.CachedEntries = res.CachedEntries

	case "aggregate":
		resp.Mode = "aggregate"
		switch req.Semiring {
		case "", "count":
			sr := core.CountSemiring()
			resp.Count = core.AggregateParallel(plan, pol, sr, core.UnitWeight(sr))
		case "sum":
			sr := core.SumProductSemiring()
			resp.Value = core.AggregateParallel(plan, pol, sr,
				func(_ int, v int64) float64 { return float64(v) })
		case "min":
			sr := core.TropicalSemiring()
			resp.Value = core.AggregateParallel(plan, pol, sr,
				func(_ int, v int64) float64 { return float64(v) })
		default:
			return nil, fmt.Errorf("server: unknown semiring %q (want count, sum or min)", req.Semiring)
		}

	default:
		return nil, fmt.Errorf("server: unknown mode %q (want count, eval or aggregate)", req.Mode)
	}

	resp.Stats.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	resp.Stats.Counters = c
	e.life.Merge(&c)
	e.queries.Add(1)
	return resp, nil
}
