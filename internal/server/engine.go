// Package server hosts CLFTJ as a resident query service: an Engine
// loads a dataset once, keeps the trie indices in a shared
// least-recently-used registry bounded by a global byte budget, and
// answers any number of concurrent count/eval/aggregate queries. Each
// query is compiled through the ordinary Plan facade against the shared
// registry, runs on the parallel engine with its own cache policy, and
// accounts into private counters that are folded into engine-lifetime
// totals when it finishes — so the amortization the paper's flexible
// caches exploit within one query (§3, §5.3.3) extends across the whole
// query stream: load once, index once, answer many.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/faults"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trie"
)

// Config sizes a new Engine.
type Config struct {
	// Workers is the default per-query parallelism when a request does
	// not set its own: 0 uses one worker per core, 1 forces sequential.
	Workers int
	// StreamWorkers is the default parallelism of streaming executions
	// ("mode": "stream", Stmt.Rows) when a request does not set its own:
	// 0 or 1 keeps the sequential stream, K > 1 shards the root domain
	// over K producers merged in deterministic order (the byte output is
	// identical for every K; see core.EvalStreamCtx). Streaming
	// deliberately does not inherit Workers — the parallel stream trades
	// the per-query caches for its deterministic order, so it is opt-in.
	StreamWorkers int
	// BatchSize is the default block size of batched execution when a
	// request does not set its own: 0 keeps the scalar loops (the
	// default), K > 0 advances the deepest trie level in blocks of up to
	// K keys (core.Policy.BatchSize).
	BatchSize int
	// TrieBudget bounds the registry's resident trie bytes, shared
	// across all queries (0 = unbounded). Under pressure the least
	// recently used index orders are evicted first.
	TrieBudget int64
	// DisableReuse turns cross-query amortization off entirely: every
	// query builds private tries and compiles its own plan, as a
	// one-shot CLI run would (the shared registry and the plan cache
	// are both disabled). This is the control arm of the E12/E14
	// benchmarks and an escape hatch, not a fast mode.
	DisableReuse bool
	// MaxTuples caps the tuples an eval response carries when the
	// request does not set its own limit (0: DefaultMaxTuples). The
	// count is always exact; only the sample is capped.
	MaxTuples int
	// CompactFraction overrides the patch-vs-rebuild crossover of the
	// relation stores (0: relation.DefaultCompactFraction): once a
	// relation's cumulative delta exceeds this fraction of its base
	// size, the next version compacts and its indices are rebuilt in
	// full instead of patched.
	CompactFraction float64
	// PlanCache bounds the compiled-plan cache (entries; 0:
	// DefaultPlanCacheSize, negative: disabled, so every request pays
	// parse + TD selection + plan compilation — the control arm of the
	// E14 benchmark). Plans are keyed by (canonical query text,
	// plan-affecting options, version vector of the touched relations),
	// so updates invalidate exactly the plans they staled. Note the cap
	// is entries, not bytes: a cached plan over constant-specialized
	// atoms retains their private derived tries (selections, so usually
	// small) outside the TrieBudget accounting — lower PlanCache to
	// bound that retention on constant-heavy workloads.
	PlanCache int
	// Orderer selects the default planning strategy for requests that do
	// not name their own: "cost" (or empty — the full cost model),
	// "greedy" (stats-free pattern ranking) or "adaptive" (greedy plus
	// feedback-driven re-planning of cached plans). See core.Orderer and
	// docs/PLANNING.md.
	Orderer string
	// AdaptThreshold is the relative divergence of a cached plan's
	// observed trie accesses from its baseline execution that counts as
	// divergent under the adaptive orderer (0: DefaultAdaptThreshold).
	AdaptThreshold float64
	// AdaptRuns is the number of consecutive divergent executions that
	// trigger an adaptive re-plan (0: DefaultAdaptRuns).
	AdaptRuns int
	// MaxPrepared caps the prepared-statement registry (0:
	// DefaultMaxPrepared). Prepare fails once the cap is reached —
	// statements are explicit handles a client must Close, so the
	// error surfaces a client-side leak instead of letting the
	// registry grow without bound.
	MaxPrepared int
	// DataDir, when non-empty, makes the engine persistent: relation
	// snapshots, per-relation write-ahead logs, and trie index files
	// live in this directory (format in docs/FORMAT.md). Only OpenEngine
	// consults it — a populated directory boots warm (snapshots are
	// mmap'd and the WALs replayed; the original dataset is not re-read)
	// and every applied update is durable before it is acknowledged.
	// NewEngine ignores DataDir and always builds a memory-only engine.
	DataDir string
	// Faults threads a fault injector through the engine's I/O: the
	// store's file operations (WAL appends/fsyncs, snapshot writes) and
	// the registry's byte budget (site "registry/pressure" shrinks the
	// resident tries to zero before a query executes, forcing rebuilds).
	// Nil — the default, and the only production value — is inert.
	Faults *faults.Injector
}

// DefaultMaxTuples is the eval response cap when neither the request
// nor the config names one.
const DefaultMaxTuples = 100

// DefaultMaxPrepared is the prepared-statement registry cap when the
// config does not name one.
const DefaultMaxPrepared = 1024

// Engine is a resident query service over one versioned database. All
// methods are safe for concurrent use. Relations are mutated only
// through Update, which installs a new immutable version: every query
// takes a consistent snapshot of all relations at entry and answers
// from it, bit-identical to a fresh engine loaded at that snapshot,
// while updates proceed concurrently.
type Engine struct {
	reg *trie.Registry
	cfg Config

	// verMu guards the snapshot swap: the current db, the version
	// stores, and the epoch tracker move together under it, so a query's
	// (snapshot, entry epoch) pair is atomic with respect to updates.
	// It is held only for pointer swaps and epoch bookkeeping — never
	// across a delta merge — so query admission cannot stall behind a
	// large update.
	verMu    sync.Mutex
	db       *relation.DB
	stores   map[string]*relation.Store
	versions map[string]relation.Version // versions installed in db (not merely applied)
	epochs   epochs

	// updateMu serializes Update calls: the O(n + k) merge runs under it
	// (outside verMu, concurrently with query admission), and the
	// version-install step that follows stays ordered with the merge.
	updateMu sync.Mutex

	// plans caches compiled plans across requests (nil when disabled);
	// see planCache for the keying that makes update invalidation free.
	plans *planCache

	// stmtMu guards the prepared-statement registry (HTTP query-by-id;
	// in-process callers hold the *Stmt directly).
	stmtMu  sync.Mutex
	stmts   map[string]*Stmt
	stmtSeq uint64

	// pdb is the persistence layer (nil for memory-only engines): it
	// owns the data directory's snapshots, WALs, and trie files, and
	// the mmap'd pages live relations and indices alias. Engine.Close
	// releases it after queries drain.
	pdb *store.DB

	// readOnly, when non-nil, marks the engine degraded: a durability
	// failure (WAL append, snapshot rewrite) flipped it, updates are
	// refused with ErrReadOnly, and reads keep serving the last durable
	// snapshot. Sticky until restart — the failed write left the WAL in
	// an unknown state, so only a fresh boot (which re-verifies and
	// recovers the log) may accept writes again.
	readOnly atomic.Pointer[ReadOnlyState]

	life    stats.Locked
	queries atomic.Int64
	updates atomic.Int64
	closed  atomic.Bool
	started time.Time
}

// ReadOnlyState describes why and when an engine stopped accepting
// updates (see Engine.ReadOnly).
type ReadOnlyState struct {
	// Reason is the durability failure that flipped the engine.
	Reason string `json:"reason"`
	// Since is when it flipped.
	Since time.Time `json:"since"`
}

// ErrReadOnly marks an update refused because a durability failure put
// the engine in read-only mode. HTTP maps it to 503.
var ErrReadOnly = errors.New("server: engine is read-only after a persistence failure")

// ReadOnly reports the engine's degraded state: nil while updates are
// accepted, else the durability failure that flipped it.
func (e *Engine) ReadOnly() *ReadOnlyState { return e.readOnly.Load() }

// NewEngine wraps db in a resident, memory-only engine (Config.DataDir
// is ignored; see OpenEngine for persistence). The db (and its
// relations) must not be mutated by the caller afterwards — the registry
// keys cached tries by relation identity and all mutation must go
// through Update.
func NewEngine(db *relation.DB, cfg Config) *Engine {
	return newEngine(db, cfg, nil)
}

// newEngine is the shared constructor: with stores == nil every relation
// in db starts a fresh version chain at 0; otherwise stores supplies
// prebuilt version chains (the warm-boot path — db must hold each
// store's current Rel) and their patched versions are Observed so the
// registry can serve them by patching the persisted base.
func newEngine(db *relation.DB, cfg Config, stores map[string]*relation.Store) *Engine {
	planCap := cfg.PlanCache
	if planCap == 0 {
		planCap = DefaultPlanCacheSize
	}
	if cfg.DisableReuse {
		planCap = -1
	}
	e := &Engine{
		db:       db,
		cfg:      cfg,
		started:  time.Now(),
		stores:   make(map[string]*relation.Store),
		versions: make(map[string]relation.Version),
		plans:    newPlanCache(planCap),
		stmts:    make(map[string]*Stmt),
	}
	if !cfg.DisableReuse {
		e.reg = trie.NewRegistry(cfg.TrieBudget)
		// Cold index builds use the same parallelism budget as the
		// queries they unblock.
		e.reg.SetBuildWorkers(e.buildWorkers())
		// A plan embeds the registry tries it compiled against, so a
		// byte-budget eviction must also drop the plans pinning that
		// index — otherwise TrieBudget would stop bounding resident trie
		// memory (evicted-but-pinned copies) and the next compile over
		// the relation would build a duplicate. The cache tracks the
		// exact (relation, order) registry entries each plan embeds, so
		// only plans pinning the evicted index recompile — plans over
		// the relation's other, still-resident orders stay warm. (A
		// compile racing the eviction may still cache one plan holding
		// the evicted trie; it is a bounded, self-healing overshoot,
		// like the stale re-insert race on updates.)
		e.reg.SetEvictHook(func(rel *relation.Relation, perm string) {
			e.plans.invalidateEmbedding(rel, perm)
		})
	}
	if stores == nil {
		for _, name := range db.Names() {
			r, err := db.Get(name)
			if err != nil {
				continue
			}
			st := relation.NewStore(r)
			if cfg.CompactFraction != 0 {
				st.SetCompactFraction(cfg.CompactFraction)
			}
			e.stores[name] = st
			e.versions[name] = st.Version()
		}
	} else {
		for name, st := range stores {
			v := st.Version()
			e.stores[name] = st
			e.versions[name] = v
			if e.reg != nil {
				e.reg.Observe(v)
			}
		}
	}
	return e
}

// OpenEngine builds an engine honoring cfg.DataDir. With no data
// directory it simply loads and wraps (warm == false, Close is a
// no-op). Otherwise:
//
//   - A populated directory boots warm: every persisted relation is
//     opened from its verified, mmap'd snapshot, its WAL is replayed
//     through a fresh version chain (a compaction during replay rolls
//     the snapshot forward), and load is never called — the original
//     dataset files are not read. The registry is given the directory's
//     trie files as an open-from-disk path, so the first query needs no
//     trie builds either.
//   - An empty directory boots cold: load supplies the database, every
//     relation is snapshotted at version 0, and subsequent updates are
//     durable (WAL append before acknowledgement) while full trie
//     builds are written behind for the next boot.
//
// Corrupt snapshots or WALs make OpenEngine fail rather than serve the
// data (torn WAL tails from a crash mid-append are recovered, not
// failed). The caller must Close the engine after its queries drain —
// live relations alias the mapped files.
func OpenEngine(cfg Config, load func() (*relation.DB, error)) (e *Engine, warm bool, err error) {
	if cfg.DataDir == "" {
		db, err := load()
		if err != nil {
			return nil, false, err
		}
		return NewEngine(db, cfg), false, nil
	}
	pdb, err := store.Open(cfg.DataDir)
	if err != nil {
		return nil, false, err
	}
	pdb.SetFaults(cfg.Faults)
	defer func() {
		if err != nil {
			pdb.Close()
		}
	}()
	names, err := pdb.Relations()
	if err != nil {
		return nil, false, err
	}

	var db *relation.DB
	var stores map[string]*relation.Store
	if warm = len(names) > 0; warm {
		db = relation.NewDB()
		stores = make(map[string]*relation.Store, len(names))
		for _, name := range names {
			st, err := bootRelation(pdb, name, cfg)
			if err != nil {
				return nil, false, err
			}
			stores[name] = st
			db.Put(st.Version().Rel)
		}
	} else {
		if db, err = load(); err != nil {
			return nil, false, err
		}
		for _, name := range db.Names() {
			r, gerr := db.Get(name)
			if gerr != nil {
				continue
			}
			if err := pdb.SaveRelation(name, r, 0); err != nil {
				return nil, false, err
			}
		}
	}

	e = newEngine(db, cfg, stores)
	e.pdb = pdb
	if e.reg != nil {
		// Misses try the directory's index files before building, and
		// full builds are written behind so the next boot can open them.
		// SaveTrie ignores non-persisted relations (patched versions) and
		// swallows write failures — index files are an optimization.
		e.reg.SetOpener(pdb.OpenTrie)
		e.reg.SetBuildHook(func(rel *relation.Relation, perm []int, t *trie.Trie) {
			pdb.SaveTrie(rel, perm, t)
		})
	}
	return e, warm, nil
}

// bootRelation opens one persisted relation and replays its WAL into a
// fresh version chain. If replay crossed the compaction crossover, the
// snapshot is rolled forward to the compacted state (fresh generation,
// reset WAL) so the next boot replays nothing.
func bootRelation(pdb *store.DB, name string, cfg Config) (*relation.Store, error) {
	rel, num, records, found, err := pdb.OpenRelation(name, -1)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("server: relation %q disappeared from %s during boot", name, cfg.DataDir)
	}
	mkStore := func(base *relation.Relation, at uint64) *relation.Store {
		st := relation.NewStoreAt(base, at)
		if cfg.CompactFraction != 0 {
			st.SetCompactFraction(cfg.CompactFraction)
		}
		return st
	}
	st := mkStore(rel, num)
	for i, r := range records {
		if _, _, err := st.ApplyDelta(r.Inserts, r.Deletes); err != nil {
			return nil, fmt.Errorf("server: replaying %s wal record %d: %w", name, i, err)
		}
	}
	if v := st.Version(); v.Base != rel {
		// Replay compacted: persist the compacted state as the new base
		// so boots converge instead of replaying an ever-longer log.
		if err := pdb.SaveRelation(name, v.Rel, v.Num); err != nil {
			return nil, err
		}
		st = mkStore(v.Rel, v.Num)
	}
	return st, nil
}

// Close releases the persistence layer: WAL handles and every mmap'd
// snapshot. It must run only after in-flight queries have drained (live
// iterators read the mapped pages directly); for memory-only engines
// (nil persistent store) it is a no-op. Close is idempotent — the first
// call releases, every later call returns nil — so layered owners (a
// daemon's shutdown path and a defer, a shard harness tearing down a
// fleet) can each close defensively. The engine must not be used after
// the first Close.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	if e.pdb == nil {
		return nil
	}
	return e.pdb.Close()
}

// DB returns the engine's current database snapshot.
func (e *Engine) DB() *relation.DB {
	e.verMu.Lock()
	defer e.verMu.Unlock()
	return e.db
}

// snapshot atomically takes the current database and enters the query
// into the epoch tracker, pinning every relation version it can see.
func (e *Engine) snapshot() (*relation.DB, uint64) {
	e.verMu.Lock()
	defer e.verMu.Unlock()
	return e.db, e.epochs.enter()
}

// snapshotFor is snapshot plus the version sub-vector of the given
// (sorted) relation names — rendered as the plan-cache key string and as
// the name→number map a response reports — under the same verMu hold, so
// the vector a query assembles always describes exactly the snapshot it
// will execute against, atomically with respect to Update's install step.
func (e *Engine) snapshotFor(names []string) (*relation.DB, string, map[string]uint64, uint64) {
	e.verMu.Lock()
	defer e.verMu.Unlock()
	nums := make(map[string]uint64, len(names))
	for _, name := range names {
		if v, ok := e.versions[name]; ok {
			nums[name] = v.Num
		}
	}
	return e.db, versionVector(names, e.versions), nums, e.epochs.enter()
}

// VersionNumbers returns the current version number of each named
// relation (unknown names are omitted), atomically with respect to
// Update's install step. A distributed coordinator uses it as the
// consistent-snapshot handshake: collect each shard's vector before
// fanning a query out, compare it to the vector the response executed
// at, and reject the merge if any shard's vector moved mid-query. With
// names == nil, every relation's version is returned.
func (e *Engine) VersionNumbers(names []string) map[string]uint64 {
	e.verMu.Lock()
	defer e.verMu.Unlock()
	if names == nil {
		nums := make(map[string]uint64, len(e.versions))
		for name, v := range e.versions {
			nums[name] = v.Num
		}
		return nums
	}
	nums := make(map[string]uint64, len(names))
	for _, name := range names {
		if v, ok := e.versions[name]; ok {
			nums[name] = v.Num
		}
	}
	return nums
}

// finish exits the query's epoch and releases any superseded versions
// whose pins drained with it.
func (e *Engine) finish(ep uint64) {
	e.verMu.Lock()
	reclaim := e.epochs.exit(ep)
	e.verMu.Unlock()
	e.release(reclaim)
}

func (e *Engine) release(rels []*relation.Relation) {
	if e.reg == nil {
		return
	}
	for _, rel := range rels {
		e.reg.Release(rel)
	}
}

// Registry returns the shared trie registry (nil when reuse is
// disabled).
func (e *Engine) Registry() *trie.Registry { return e.reg }

// Request is one query submission. The zero values of the optional
// fields defer to the engine's defaults.
type Request struct {
	// Query is the conjunctive query text, e.g. "E(x,y), E(y,z), E(x,z)".
	Query string `json:"query"`
	// Mode selects the execution: "count" (default), "eval" or
	// "aggregate".
	Mode string `json:"mode,omitempty"`
	// Workers overrides the engine's default parallelism for this query
	// (0: engine default; 1: sequential; K: K goroutines).
	Workers int `json:"workers,omitempty"`
	// StreamWorkers overrides the engine's default streaming parallelism
	// for this execution (0: engine default; 1: sequential; K: K
	// producers merged deterministically). Only streaming executions
	// ("mode": "stream", Stmt.Rows) consult it. Execution-only: never
	// part of the plan-cache key.
	StreamWorkers int `json:"stream_workers,omitempty"`
	// BatchSize overrides the engine's default execution block size
	// (0: engine default; negative: force the scalar loops; K > 0:
	// blocks of up to K keys). Execution-only: never part of the
	// plan-cache key.
	BatchSize int `json:"batch_size,omitempty"`
	// CacheCapacity bounds this query's CLFTJ caches (entries per
	// worker; 0 = unbounded), CacheSupport is the support threshold and
	// CacheEviction one of "fifo" (default), "none", "lru". NoCache
	// disables caching entirely (CLFTJ degenerates to LFTJ).
	CacheCapacity int    `json:"cache_capacity,omitempty"`
	CacheSupport  int    `json:"cache_support,omitempty"`
	CacheEviction string `json:"cache_eviction,omitempty"`
	NoCache       bool   `json:"no_cache,omitempty"`
	// Limit caps the tuples returned by eval (0: engine default). The
	// reported count is always the full |q(D)|. Streaming executions
	// ("mode": "stream") instead stop the scan at the limit; there 0
	// means unlimited for raw-text queries, while for a prepared
	// statement 0 keeps the prepared default and a negative value
	// clears it (stream everything).
	Limit int `json:"limit,omitempty"`
	// Semiring selects the aggregate: "count" (default; |q(D)| with
	// subtree-aggregate caches), "sum" (sum over tuples of the product
	// of the bound values) or "min" (tropical: min over tuples of the
	// sum of the bound values).
	Semiring string `json:"semiring,omitempty"`
	// TimeoutMS bounds the query's wall-clock time in milliseconds
	// (0: only the caller's context limits it). Past the deadline the
	// join unwinds cooperatively and the request fails with
	// context.DeadlineExceeded.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoOrderCost skips the order-cost probes of plan selection, which
	// build one trie set per candidate decomposition to estimate scan
	// costs — worth skipping for short queries whose planning time
	// rivals their execution time. Plan-affecting: keyed into the plan
	// cache, so the cheap and thorough plans of one query coexist.
	NoOrderCost bool `json:"no_order_cost,omitempty"`
	// Orderer overrides the engine's default planning strategy for this
	// query: "cost", "greedy" or "adaptive" ("" keeps the engine
	// default; see Config.Orderer). Plan-affecting: the resolved value
	// is part of the plan-cache key, so one query's cost and greedy
	// plans coexist.
	Orderer string `json:"orderer,omitempty"`
	// Stmt executes a prepared statement by id (see Engine.Prepare and
	// POST /prepare) instead of parsing Query, which must then be
	// empty. Non-zero execution fields override the statement's
	// defaults.
	Stmt string `json:"stmt,omitempty"`
	// AllowPartial lets a cluster coordinator answer from the surviving
	// shards when some are unreachable, marking the response
	// Partial/Missing instead of failing with a shard error. A
	// single-engine server has no shards to lose and ignores it.
	// Execution-only: never part of the plan-cache key.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// UpdateRequest is one mutation submission: a batch of inserts and
// deletes applied atomically to a single relation (deletes first, then
// inserts; set semantics, so redundant tuples are ignored).
type UpdateRequest struct {
	// Relation names the relation to mutate.
	Relation string `json:"relation"`
	// Inserts and Deletes are the delta tuples; each must match the
	// relation's arity.
	Inserts [][]int64 `json:"inserts,omitempty"`
	Deletes [][]int64 `json:"deletes,omitempty"`
}

// UpdateResult describes the version installed by one Update.
type UpdateResult struct {
	// Relation echoes the mutated relation.
	Relation string `json:"relation"`
	// Version is the relation's version number after the update.
	Version uint64 `json:"version"`
	// Tuples is the relation's cardinality after the update.
	Tuples int `json:"tuples"`
	// Applied is false when the delta had no net effect (the version,
	// and every cached index, is unchanged).
	Applied bool `json:"applied"`
	// Compacted reports that the cumulative delta crossed the
	// patch-vs-rebuild crossover: this version became its own base and
	// its indices will be rebuilt once instead of patched.
	Compacted bool `json:"compacted"`
	// PendingDelta is the cumulative |adds| + |dels| the version carries
	// relative to its base (0 right after compaction).
	PendingDelta int `json:"pending_delta"`
}

// Update applies one delta to a relation and installs the new version:
// queries that already took their snapshot keep answering from the old
// version (pinned by epoch tracking until they drain), queries entering
// afterwards see the new one, and the shared registry derives the new
// version's indices by copy-on-write patches while the delta stays
// under the compaction crossover. Safe to call concurrently with
// queries and other updates.
func (e *Engine) Update(req UpdateRequest) (*UpdateResult, error) {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	if rs := e.readOnly.Load(); rs != nil {
		return nil, fmt.Errorf("%w (since %s: %s)", ErrReadOnly, rs.Since.Format(time.RFC3339), rs.Reason)
	}
	st, ok := e.stores[req.Relation]
	if !ok {
		return nil, fmt.Errorf("server: no relation %q to update", req.Relation)
	}
	// The merge runs outside verMu: queries keep entering against the
	// old snapshot while it proceeds (stores is never mutated after
	// construction, and updateMu orders this merge with the install
	// below).
	old := st.Version()
	v, changed, err := st.ApplyDelta(req.Inserts, req.Deletes)
	if err != nil {
		return nil, err
	}
	var reclaim []*relation.Relation
	if changed {
		// Durability before visibility: the delta is fsync'd (or, past
		// the compaction crossover, the fresh snapshot is renamed into
		// place) before the new version is installed for queries, so an
		// acknowledged update always survives a restart. A persistence
		// failure flips the engine read-only: the failed write left the
		// log in an unknown state, so accepting further updates could
		// diverge memory from disk silently. The un-persisted version is
		// never installed — queries keep answering from the last durable
		// snapshot, which is exactly what a restart would recover.
		if e.pdb != nil {
			var perr error
			if v.Patched() {
				perr = e.pdb.AppendDelta(req.Relation, v.Num, req.Inserts, req.Deletes)
			} else {
				perr = e.pdb.SaveRelation(req.Relation, v.Rel, v.Num)
			}
			if perr != nil {
				e.readOnly.CompareAndSwap(nil, &ReadOnlyState{Reason: perr.Error(), Since: time.Now()})
				return nil, fmt.Errorf("%w: update not persisted: %s", ErrReadOnly, perr)
			}
		}
		if e.reg != nil {
			e.reg.Observe(v)
		}
		ndb := relation.NewDB()
		for _, name := range e.db.Names() {
			if r, err := e.db.Get(name); err == nil {
				ndb.Put(r)
			}
		}
		ndb.Put(v.Rel)
		e.verMu.Lock()
		e.db = ndb
		e.versions[req.Relation] = v
		// Retire what the new version superseded — but never its own
		// base: the base version's resident indices are the substrate
		// every copy-on-write patch shares, so they stay until a
		// compaction replaces the base itself.
		if old.Rel != v.Base {
			reclaim = append(reclaim, e.epochs.retire(old.Rel)...)
		}
		if old.Base != v.Base && old.Base != old.Rel {
			reclaim = append(reclaim, e.epochs.retire(old.Base)...)
		}
		// Drop the plans this delta staled: their keys are already
		// unreachable (the version vector moved), but dropping them now
		// releases the superseded trie indices they pin, so resident
		// memory under continuous updates tracks the live plan set, not
		// the LRU capacity. It must happen before verMu releases: a
		// plan for the new version can only be compiled by a query
		// admitted after this critical section, so the name-based sweep
		// can never hit a fresh entry — only plans for snapshots this
		// update superseded (verMu → planCache.mu nests here; no other
		// path holds them together).
		e.plans.invalidateTouching(req.Relation)
		e.verMu.Unlock()
	}
	e.release(reclaim)

	if changed {
		e.updates.Add(1)
		e.life.Merge(&stats.Counters{DeltaApplies: 1})
	}
	return &UpdateResult{
		Relation:     req.Relation,
		Version:      v.Num,
		Tuples:       v.Rel.Len(),
		Applied:      changed,
		Compacted:    changed && !v.Patched(),
		PendingDelta: v.DeltaSize(),
	}, nil
}

// QueryStats is the per-query accounting attached to a Response.
type QueryStats struct {
	// DurationMS is the wall-clock time of parse+plan+run.
	DurationMS float64 `json:"duration_ms"`
	// Counters is this query's private accounting (trie/hash/tuple
	// accesses, cache statistics, trie builds). A warm engine answers a
	// repeated query with Counters.TrieBuilds == 0.
	Counters stats.Counters `json:"counters"`
	// CachedEntries is the number of intermediate results resident in
	// the query's CLFTJ caches when it finished.
	CachedEntries int `json:"cached_entries"`
	// PlanCached reports that the query executed a plan served from the
	// engine's plan cache — parse still happened (for raw-text
	// requests), but TD selection and plan compilation were skipped
	// entirely.
	PlanCached bool `json:"plan_cached,omitempty"`
}

// Response is the result of one Request.
type Response struct {
	// Mode echoes the executed mode.
	Mode string `json:"mode"`
	// Count is |q(D)| for count and eval, and the aggregate value for
	// the counting semiring.
	Count int64 `json:"count"`
	// Value is the aggregate value for the float-valued semirings
	// ("sum", "min").
	Value float64 `json:"value,omitempty"`
	// Order is the plan's variable order; eval tuples align with it.
	Order []string `json:"order"`
	// Tuples is the first Limit result tuples (eval only).
	Tuples [][]int64 `json:"tuples,omitempty"`
	// Truncated reports that eval found more tuples than Limit.
	Truncated bool `json:"truncated,omitempty"`
	// Versions is the version sub-vector the query executed at: the
	// version number of each relation it touches, in the consistent
	// snapshot the execution pinned. A distributed coordinator compares
	// it against the vector it collected before fanning out to detect a
	// shard whose data moved mid-query.
	Versions map[string]uint64 `json:"versions,omitempty"`
	// Partial marks a coordinator answer assembled from a strict subset
	// of the routed shards (AllowPartial requests only); Missing names
	// the shards whose contribution is absent, sorted. Count/Tuples are
	// exact over the surviving shards' data — never an estimate.
	Partial bool     `json:"partial,omitempty"`
	Missing []string `json:"missing_shards,omitempty"`
	// Stats is the query's private accounting.
	Stats QueryStats `json:"stats"`
}

// EngineStats is the merged engine-lifetime view served by GET /stats:
// lifetime totals plus the current residency — registry byte usage and
// evictions, live version counts, and the per-relation version
// inventory — so operators (and the CI stress gates) can assert on the
// engine's steady state, not just its history.
type EngineStats struct {
	// Queries is the number of completed requests; Updates the number
	// of applied (non-no-op) deltas.
	Queries int64 `json:"queries"`
	Updates int64 `json:"updates"`
	// UptimeSeconds measures from engine construction.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Lifetime is the exact fold of every finished query's counters
	// plus one DeltaApplies per applied update.
	Lifetime stats.Counters `json:"lifetime"`
	// Registry describes the shared trie registry — current resident
	// bytes and entries next to lifetime hits/builds/patches/evictions
	// (zero when reuse is disabled).
	Registry trie.RegistryStats `json:"registry"`
	// Plans describes the compiled-plan cache: hit/miss/eviction
	// lifetime counts next to the current residency (zero when plan
	// caching is disabled).
	Plans PlanCacheStats `json:"plans"`
	// Prepared is the number of prepared statements currently
	// registered (Engine.Prepare / POST /prepare).
	Prepared int `json:"prepared"`
	// Persistence reports the data directory's activity — snapshot and
	// WAL bytes written, records replayed, and mmap opens — when the
	// engine was built by OpenEngine with Config.DataDir; nil (omitted)
	// for memory-only engines. A warm-booted engine shows RelationOpens
	// and TrieOpens with zero registry Builds for its first queries.
	Persistence *store.Stats `json:"persistence,omitempty"`
	// LiveVersions counts the relation versions currently reachable:
	// one per relation, plus each patched relation's base version
	// (kept resident as the patch substrate), plus every superseded
	// version still pinned by in-flight queries (epoch reclamation
	// drops those as queries drain).
	LiveVersions int `json:"live_versions"`
	// Relations inventories the loaded dataset at its current versions.
	Relations []RelationInfo `json:"relations"`
}

// RelationInfo describes one loaded relation at its current version.
type RelationInfo struct {
	Name   string `json:"name"`
	Arity  int    `json:"arity"`
	Tuples int    `json:"tuples"`
	// Version is the number of applied deltas since load.
	Version uint64 `json:"version"`
	// PendingDelta is the cumulative delta the current version carries
	// relative to its last compacted base — the size of the
	// copy-on-write overlay its patched indices pay for.
	PendingDelta int `json:"pending_delta,omitempty"`
}

// Stats snapshots the engine-lifetime accounting.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Queries:       e.queries.Load(),
		Updates:       e.updates.Load(),
		UptimeSeconds: time.Since(e.started).Seconds(),
		Lifetime:      e.life.Snapshot(),
	}
	if e.reg != nil {
		s.Registry = e.reg.Stats()
	}
	if e.pdb != nil {
		ps := e.pdb.Stats()
		s.Persistence = &ps
	}
	s.Plans = e.plans.stats()
	e.stmtMu.Lock()
	s.Prepared = len(e.stmts)
	e.stmtMu.Unlock()
	// The installed-versions map (not the live stores) keeps the
	// inventory consistent with the db snapshot: an update whose merge
	// has finished but whose install has not yet happened is invisible
	// to both.
	e.verMu.Lock()
	db := e.db
	s.LiveVersions = e.epochs.pinned()
	versions := make(map[string]relation.Version, len(e.versions))
	for name, v := range e.versions {
		versions[name] = v
		s.LiveVersions++
		if v.Patched() {
			s.LiveVersions++ // the base version backing the patches
		}
	}
	e.verMu.Unlock()
	for _, name := range db.Names() {
		r, err := db.Get(name)
		if err != nil {
			continue
		}
		info := RelationInfo{Name: name, Arity: r.Arity(), Tuples: r.Len()}
		if v, ok := versions[name]; ok {
			info.Version = v.Num
			info.PendingDelta = v.DeltaSize()
		}
		s.Relations = append(s.Relations, info)
	}
	return s
}

// buildWorkers resolves the trie-build parallelism from the engine
// config: the configured per-query worker count, with the "one per
// core" default rendered as the builders' per-core sentinel.
func (e *Engine) buildWorkers() int {
	if e.cfg.Workers == 0 {
		return -1
	}
	return e.cfg.Workers
}

// policyOf resolves a request's cache/execution policy.
func (e *Engine) policyOf(req Request) (core.Policy, error) {
	pol := core.Policy{
		Capacity:         req.CacheCapacity,
		SupportThreshold: req.CacheSupport,
		Disabled:         req.NoCache,
		Workers:          req.Workers,
		BatchSize:        req.BatchSize,
	}
	if pol.Workers == 0 {
		pol.Workers = e.cfg.Workers
	}
	switch {
	case pol.BatchSize == 0:
		pol.BatchSize = e.cfg.BatchSize
	case pol.BatchSize < 0:
		// An explicit negative forces the scalar loops even when the
		// engine defaults to batching (0 means "unset" in the merge).
		pol.BatchSize = 0
	}
	switch req.CacheEviction {
	case "", "fifo":
		pol.Eviction = core.EvictFIFO
	case "none":
		pol.Eviction = core.EvictNone
	case "lru":
		pol.Eviction = core.EvictLRU
	default:
		return pol, fmt.Errorf("server: unknown cache_eviction %q (want fifo, none or lru)", req.CacheEviction)
	}
	return pol, nil
}

// ordererOf resolves a request's planning strategy: the request's
// override if set, else the engine default, validated.
func (e *Engine) ordererOf(req Request) (core.Orderer, error) {
	o := core.Orderer(req.Orderer)
	if o == "" {
		o = core.Orderer(e.cfg.Orderer)
	}
	if !o.Valid() {
		return "", fmt.Errorf("server: unknown orderer %q (want cost, greedy or adaptive)", o)
	}
	return o, nil
}

// adaptParams resolves the adaptive feedback thresholds from the config.
func (e *Engine) adaptParams() (threshold float64, runs int) {
	threshold = e.cfg.AdaptThreshold
	if threshold == 0 {
		threshold = DefaultAdaptThreshold
	}
	runs = e.cfg.AdaptRuns
	if runs == 0 {
		runs = DefaultAdaptRuns
	}
	return threshold, runs
}

// tries returns the shared source for plan compilation (nil when reuse
// is disabled; leapfrog then builds per-query tries).
func (e *Engine) tries() leapfrog.TrieSource {
	if e.reg == nil {
		return nil
	}
	return e.reg
}

// Do executes one request under context.Background() — the
// uncancellable entry point kept for existing callers. New code should
// prefer DoCtx.
func (e *Engine) Do(req Request) (*Response, error) {
	return e.DoCtx(context.Background(), req)
}

// DoCtx executes one request. It is safe to call from any number of
// goroutines, concurrently with Update: the query takes one consistent
// snapshot of every relation at entry (pinning those versions against
// reclamation until it finishes), while CLFTJ caches and counters are
// private per call — so results are bit-identical to a fresh sequential
// run of the same query against the same snapshot. Compiled plans are
// drawn from the engine's plan cache (immutable, so shared across
// concurrent requests) and repeated queries skip TD selection and plan
// compilation entirely; Stats.PlanCached reports which path a response
// took. Cancelling ctx — or exceeding req.TimeoutMS — unwinds the join
// cooperatively within leapfrog.CancelCheckEvery iterator advances per
// worker and returns ctx's error.
func (e *Engine) DoCtx(ctx context.Context, req Request) (*Response, error) {
	if req.Stmt != "" {
		if req.Query != "" {
			return nil, fmt.Errorf("server: request names both a query and prepared statement %q", req.Stmt)
		}
		s, err := e.Stmt(req.Stmt)
		if err != nil {
			return nil, err
		}
		return s.Do(ctx, req)
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		return nil, err
	}
	return e.exec(ctx, q, q.String(), relNames(q), req)
}

// relNames returns the sorted distinct relation names q references —
// the relations whose versions form the query's plan-cache sub-vector.
func relNames(q *cq.Query) []string {
	seen := make(map[string]bool, len(q.Atoms))
	names := make([]string, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			names = append(names, a.Rel)
		}
	}
	sort.Strings(names)
	return names
}

// planFor resolves the compiled plan for one execution: a plan-cache
// hit returns the resident plan rebound to the request's counters, a
// miss compiles (charging the compile — including any shared trie
// builds — to the requester) and caches the plan with a nil sink. The
// returned key identifies the entry (the adaptive loop observes into
// it); cached reports which path was taken.
func (e *Engine) planFor(q *cq.Query, text string, names []string, vec string, db *relation.DB, req Request, c *stats.Counters) (plan *core.Plan, key planKey, cached bool, err error) {
	ord, err := e.ordererOf(req)
	if err != nil {
		return nil, planKey{}, false, err
	}
	key = planKey{text: text, opts: planOptsKey(req, ord), vers: vec}
	if p, ok := e.plans.get(key); ok {
		return p.WithCounters(c), key, true, nil
	}
	p, err := core.AutoPlan(q, db, core.AutoOptions{
		Counters:      c,
		Tries:         e.tries(),
		Orderer:       ord,
		SkipOrderCost: req.NoOrderCost,
		BuildWorkers:  e.buildWorkers(),
	})
	if err != nil {
		return nil, planKey{}, false, err
	}
	e.plans.put(key, p.WithCounters(nil), names, p.Embedded(), p.Instance().EstimateOrderCost())
	return p, key, false, nil
}

// exec runs one parsed request end to end: resolve policy and deadline,
// snapshot, plan (cached or compiled), execute with cooperative
// cancellation, account. q must be the parse of text and names its
// sorted relation names.
func (e *Engine) exec(ctx context.Context, q *cq.Query, text string, names []string, req Request) (*Response, error) {
	start := time.Now()
	// Forced eviction pressure: an armed "registry/pressure" fault
	// shrinks the resident tries to zero before this query plans, so the
	// execution pays cold rebuilds — correctness must not depend on a
	// warm registry.
	if e.reg != nil && e.cfg.Faults.Fire("registry/pressure") != nil {
		e.reg.Shrink(0)
	}
	pol, err := e.policyOf(req)
	if err != nil {
		return nil, err
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	db, vec, nums, ep := e.snapshotFor(names)
	defer e.finish(ep)

	// Lifetime counters absorb the work actually performed even when
	// the execution fails or times out (a cancelled query's trie builds
	// and accesses happened; GET /stats must not diverge from the
	// registry's view). Only Queries stays success-only — it counts
	// completed requests.
	var c stats.Counters
	defer func() { e.life.Merge(&c) }()
	plan, key, cached, err := e.planFor(q, text, names, vec, db, req, &c)
	if err != nil {
		return nil, err
	}
	resp := &Response{Order: plan.Order(), Versions: nums}
	resp.Stats.PlanCached = cached

	// levels collects the per-depth intersection tallies of count/eval
	// executions — the adaptive orderer's early-termination feedback.
	var levels []core.LevelStat

	switch req.Mode {
	case "", "count":
		resp.Mode = "count"
		res, err := plan.CountParallelCtx(ctx, pol)
		if err != nil {
			return nil, err
		}
		resp.Count = res.Count
		resp.Stats.CachedEntries = res.CachedEntries
		levels = res.Levels

	case "eval":
		resp.Mode = "eval"
		limit := req.Limit
		if limit <= 0 {
			limit = e.cfg.MaxTuples
		}
		if limit <= 0 {
			limit = DefaultMaxTuples
		}
		res, err := plan.EvalParallelCtx(ctx, pol, func(mu []int64) bool {
			resp.Count++
			if len(resp.Tuples) < limit {
				resp.Tuples = append(resp.Tuples, append([]int64(nil), mu...))
			} else {
				resp.Truncated = true
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		resp.Stats.CachedEntries = res.CachedEntries
		levels = res.Levels

	case "aggregate":
		resp.Mode = "aggregate"
		switch req.Semiring {
		case "", "count":
			sr := core.CountSemiring()
			resp.Count, err = core.AggregateParallelCtx(ctx, plan, pol, sr, core.UnitWeight(sr))
		case "sum":
			sr := core.SumProductSemiring()
			resp.Value, err = core.AggregateParallelCtx(ctx, plan, pol, sr,
				func(_ int, v int64) float64 { return float64(v) })
		case "min":
			sr := core.TropicalSemiring()
			resp.Value, err = core.AggregateParallelCtx(ctx, plan, pol, sr,
				func(_ int, v int64) float64 { return float64(v) })
		default:
			return nil, fmt.Errorf("server: unknown semiring %q (want count, sum or min)", req.Semiring)
		}
		if err != nil {
			return nil, err
		}

	case "stream":
		// Streaming is transport-level: a buffered Response cannot carry
		// it. The HTTP handler routes this mode before reaching here.
		return nil, fmt.Errorf("server: mode \"stream\" has no buffered response — use Engine.StreamCtx or Stmt.Rows in process, or POST /query over HTTP")

	default:
		return nil, fmt.Errorf("server: unknown mode %q (want count, eval or aggregate)", req.Mode)
	}

	// Close the adaptive loop: cache-hit executions under the adaptive
	// orderer feed their observed traffic back into the entry; persistent
	// divergence re-plans against the still-pinned snapshot and swaps the
	// entry in place. The snapshot pin (finish is deferred) makes the
	// recompile race-free against updates: it compiles exactly the
	// versions this execution read, and if an update superseded them
	// meanwhile the entry is already unreachable and replace drops the
	// swap.
	if ord, _ := e.ordererOf(req); ord == core.OrdererAdaptive && cached {
		e.adapt(q, key, names, db, plan, levels, c.TrieAccesses, &c)
	}

	resp.Stats.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	resp.Stats.Counters = c
	e.queries.Add(1)
	return resp, nil
}

// adapt is one step of the feedback loop (see exec): observe a cache-hit
// execution's trie traffic, and when the cache signals persistent
// divergence, recompile with the accumulated demote set and swap the
// entry. The recompile is charged to the triggering request's counters —
// it is work this request decided to do.
func (e *Engine) adapt(q *cq.Query, key planKey, names []string, db *relation.DB, plan *core.Plan, levels []core.LevelStat, observed int64, c *stats.Counters) {
	order := plan.Order()
	var emptyVars []string
	for _, d := range core.AlwaysEmptyLevels(levels) {
		emptyVars = append(emptyVars, order[d])
	}
	threshold, runs := e.adaptParams()
	demote, replan := e.plans.observe(key, observed, emptyVars, threshold, runs)
	if !replan {
		return
	}
	p, err := core.AutoPlan(q, db, core.AutoOptions{
		Counters:     c,
		Tries:        e.tries(),
		Orderer:      core.OrdererAdaptive,
		Demote:       demote,
		BuildWorkers: e.buildWorkers(),
	})
	if err != nil {
		return // keep serving the incumbent plan
	}
	e.plans.replace(key, p.WithCounters(nil), names, p.Embedded(), p.Instance().EstimateOrderCost())
}
