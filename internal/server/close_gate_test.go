package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/relation"
)

// TestCloseIdempotent: Close must be safe to layer — a daemon's
// shutdown path, a deferred cleanup and a harness teardown may each
// close the same engine, and an engine without a data directory has no
// persistent store at all.
func TestCloseIdempotent(t *testing.T) {
	t.Run("memory-only", func(t *testing.T) {
		e := NewEngine(testDB(), Config{})
		if _, err := e.Do(Request{Query: "E(x,y)"}); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("first close of a memory-only engine: %v", err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	})
	t.Run("persistent", func(t *testing.T) {
		dir := t.TempDir()
		load := func() (*relation.DB, error) { return testDB(), nil }
		e, warm, err := OpenEngine(Config{DataDir: dir}, load)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatal("fresh directory booted warm")
		}
		if _, err := e.Do(Request{Query: "E(x,y)"}); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("first close: %v", err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
		// The directory is releasable: a warm reboot (and its own
		// double-close) still works after the layered closes above.
		e2, warm, err := OpenEngine(Config{DataDir: dir}, load)
		if err != nil {
			t.Fatal(err)
		}
		if !warm {
			t.Fatal("populated directory booted cold")
		}
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e2.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("open-engine-no-datadir", func(t *testing.T) {
		e, warm, err := OpenEngine(Config{}, func() (*relation.DB, error) { return testDB(), nil })
		if err != nil || warm {
			t.Fatalf("OpenEngine without data dir: warm=%v err=%v", warm, err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestGateReadiness: before Set every path answers 503 with the
// "starting" readiness body on /healthz; after Set traffic flows to the
// live handler and /healthz reports ready.
func TestGateReadiness(t *testing.T) {
	gate := NewGate()
	if gate.Ready() {
		t.Fatal("fresh gate reports ready")
	}
	srv := httptest.NewServer(gate)
	defer srv.Close()

	res, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("booting /healthz: %d %v, want 503 starting", res.StatusCode, body)
	}
	res, err = http.Post(srv.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("booting /query: %d, want 503", res.StatusCode)
	}

	gate.Set(NewHandler(NewEngine(testDB(), Config{})))
	if !gate.Ready() {
		t.Fatal("gate not ready after Set")
	}
	res, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = nil
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || body["ready"] != true {
		t.Fatalf("ready /healthz: %d %v, want 200 ready", res.StatusCode, body)
	}
}
