package server

import "testing"

// TestOrdererPlanCacheKey pins the plan-affecting contract: one query
// executed under different orderers must compile once per strategy
// (distinct cache entries), while re-running under the same strategy
// hits.
func TestOrdererPlanCacheKey(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1})
	const query = "E(a,b), E(b,c), E(c,d)"
	want, _ := e.Do(Request{Query: query})

	for _, ord := range []string{"cost", "greedy", "adaptive"} {
		resp, err := e.Do(Request{Query: query, Orderer: ord})
		if err != nil {
			t.Fatalf("orderer %q: %v", ord, err)
		}
		if resp.Count != want.Count {
			t.Fatalf("orderer %q count = %d, want %d", ord, resp.Count, want.Count)
		}
	}
	// "" and "cost" share an entry; greedy and adaptive get their own:
	// 3 misses total across the 4 calls above.
	if s := e.Stats().Plans; s.Misses != 3 || s.Hits != 1 {
		t.Fatalf("plan cache after orderer sweep: %v (want 3 misses, 1 hit)", s)
	}

	if _, err := e.Do(Request{Query: query, Orderer: "nosuch"}); err == nil {
		t.Fatal("unknown orderer accepted")
	}
}

// TestGreedyOrdererMatchesCost checks result equivalence across the
// strategies on the mixed workload: plan shapes may differ, counts may
// not.
func TestGreedyOrdererMatchesCost(t *testing.T) {
	db := testDB()
	e := NewEngine(db, Config{Workers: 2, Orderer: "greedy"})
	for _, req := range mixedRequests() {
		if req.Mode != "" && req.Mode != "count" {
			continue
		}
		resp, err := e.Do(req)
		if err != nil {
			t.Fatalf("%q: %v", req.Query, err)
		}
		if want := seqCount(t, db, req.Query); resp.Count != want {
			t.Fatalf("%q greedy count = %d, want %d", req.Query, resp.Count, want)
		}
	}
}

// TestAdaptiveReplanOnDivergence is the forced-divergence workload of
// the acceptance criteria: under the adaptive orderer with a hair
// trigger, alternating the (execution-only, so cache-key-invariant)
// cache policy swings the observed trie traffic of one cached plan far
// beyond the divergence threshold, which must trigger a re-plan —
// observable as plans.replans in GET /stats — while every answer stays
// correct.
func TestAdaptiveReplanOnDivergence(t *testing.T) {
	db := testDB()
	e := NewEngine(db, Config{
		Workers:        1,
		Orderer:        "adaptive",
		AdaptThreshold: 0.01,
		AdaptRuns:      1,
	})
	const query = "E(a,b), E(b,c), E(c,d), E(d,e)"
	want := seqCount(t, db, query)

	// Miss + compile, then a hit that sets the baseline.
	for i := 0; i < 2; i++ {
		resp, err := e.Do(Request{Query: query})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Count != want {
			t.Fatalf("run %d count = %d, want %d", i, resp.Count, want)
		}
	}
	if s := e.Stats().Plans; s.Replans != 0 {
		t.Fatalf("replanned before any divergence: %v", s)
	}

	// NoCache degenerates CLFTJ to LFTJ: same plan-cache key, very
	// different trie traffic — the forced divergence.
	resp, err := e.Do(Request{Query: query, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != want {
		t.Fatalf("divergent run count = %d, want %d", resp.Count, want)
	}
	s := e.Stats().Plans
	if s.Replans < 1 {
		t.Fatalf("forced divergence triggered no re-plan: %v", s)
	}

	// The swapped plan keeps serving correct answers from the cache.
	resp, err = e.Do(Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != want {
		t.Fatalf("post-replan count = %d, want %d", resp.Count, want)
	}
	if !resp.Stats.PlanCached {
		t.Fatal("post-replan execution missed the cache (swap dropped the entry?)")
	}
}

// TestObserveAccumulatesDemotes unit-tests the feedback record: the
// first observation baselines, conforming observations reset the
// divergence streak, divergent ones accumulate empty-level variables
// (deduplicated) until the run threshold trips, and the re-plan budget
// caps out at adaptMaxReplans.
func TestObserveAccumulatesDemotes(t *testing.T) {
	pc := newPlanCache(4)
	key := planKey{text: "q", opts: "ord=adaptive"}
	pc.put(key, nil, []string{"E"}, nil, 42)

	if _, replan := pc.observe(key, 100, nil, 0.5, 2); replan {
		t.Fatal("baselining observation replanned")
	}
	// 10% off: conforming under a 0.5 threshold.
	if _, replan := pc.observe(key, 110, []string{"z"}, 0.5, 2); replan {
		t.Fatal("conforming observation replanned")
	}
	// Divergent once (run 1 of 2): accumulates but does not trip.
	if _, replan := pc.observe(key, 300, []string{"z"}, 0.5, 2); replan {
		t.Fatal("first divergent observation replanned (runs=2)")
	}
	// Conforming again: the streak must reset.
	if _, replan := pc.observe(key, 100, nil, 0.5, 2); replan {
		t.Fatal("streak survived a conforming observation")
	}
	// Two consecutive divergent runs trip, with the deduplicated set.
	pc.observe(key, 300, []string{"z"}, 0.5, 2)
	demote, replan := pc.observe(key, 300, []string{"z", "y"}, 0.5, 2)
	if !replan {
		t.Fatal("two consecutive divergent observations did not replan")
	}
	if len(demote) != 2 || demote[0] != "z" || demote[1] != "y" {
		t.Fatalf("demote = %v, want [z y]", demote)
	}

	// replace re-baselines and counts.
	pc.replace(key, nil, []string{"E"}, nil, 7)
	if s := pc.stats(); s.Replans != 1 {
		t.Fatalf("Replans = %d, want 1", s.Replans)
	}
	if _, replan := pc.observe(key, 500, nil, 0.5, 2); replan {
		t.Fatal("post-swap observation replanned instead of re-baselining")
	}

	// The budget: exhaust adaptMaxReplans, then no more signals.
	for i := pc.entries[key].adapt.replans; i < adaptMaxReplans; i++ {
		pc.observe(key, 2000, nil, 0.5, 1)
		pc.observe(key, 2000, nil, 0.5, 1) // baseline moved by replace only; keep diverging
	}
	if _, replan := pc.observe(key, 9000, nil, 0.5, 1); replan {
		t.Fatal("re-plan budget not enforced")
	}

	// Unknown keys are ignored.
	if _, replan := pc.observe(planKey{text: "other"}, 9000, nil, 0.5, 1); replan {
		t.Fatal("observation on a missing entry replanned")
	}
}

// TestAdaptiveCountMatchesAcrossReplans runs the divergence workload on
// real data and checks the invariant that matters to clients: whatever
// the adaptive loop does to the cached plan, every answer equals the
// fresh sequential count.
func TestAdaptiveCountMatchesAcrossReplans(t *testing.T) {
	db := testDB()
	e := NewEngine(db, Config{
		Workers:        1,
		Orderer:        "adaptive",
		AdaptThreshold: 0.05,
		AdaptRuns:      1,
	})
	const query = "E(a,b), E(b,c), E(c,d)"
	want := seqCount(t, db, query)
	for i := 0; i < 12; i++ {
		resp, err := e.Do(Request{Query: query, NoCache: i%2 == 1})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Count != want {
			t.Fatalf("run %d count = %d, want %d", i, resp.Count, want)
		}
	}
	if s := e.Stats().Plans; s.Replans == 0 {
		t.Fatalf("alternating cache policy never diverged: %v", s)
	}
}
