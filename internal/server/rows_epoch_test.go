package server

import (
	"context"
	"testing"
)

// liveVersions snapshots the engine's pinned-version count.
func liveVersions(e *Engine) int { return e.Stats().LiveVersions }

// TestRowsPinsOneEpoch is the regression test for the Rows snapshot
// contract: a live stream answers from the single snapshot it entered
// on — a concurrent Update installs new versions for later queries but
// never mutates the stream's view — and the stream's epoch pin is
// released exactly once, whether the iteration drains or is abandoned.
func TestRowsPinsOneEpoch(t *testing.T) {
	db := testDB()
	e := NewEngine(db, Config{Workers: 2})
	stmt, err := e.Prepare(Request{Query: "E(x,y), E(y,z)", StreamWorkers: 3, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	want, err := stmt.CountCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseline := liveVersions(e)

	// Drain a stream while updates land mid-iteration: the row count
	// must be the entry snapshot's |q(D)|, not a torn mix of versions.
	var rows int64
	updated := false
	for row, err := range stmt.Rows(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		_ = row
		rows++
		if !updated && rows == want/2 {
			// Churn the relation under the live stream: insert edges that
			// would join with everything, then delete them again.
			for _, tup := range [][]int64{{0, 1}, {1, 0}, {40000, 40001}} {
				if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{tup}}); err != nil {
					t.Fatal(err)
				}
			}
			// The superseded entry version must stay pinned while the
			// stream holds its epoch.
			if lv := liveVersions(e); lv <= baseline {
				t.Fatalf("mid-stream: %d live versions, want > %d (entry snapshot pinned)", lv, baseline)
			}
			updated = true
		}
	}
	if !updated {
		t.Fatalf("stream too short to update mid-iteration (%d rows)", rows)
	}
	if rows != want {
		t.Fatalf("stream saw %d rows, want the entry snapshot's %d", rows, want)
	}

	// Epoch released after the drain: pins settle to the steady-state
	// inventory (current versions + patch bases), with the superseded
	// entry snapshot reclaimed.
	relCap := 2 * len(e.Stats().Relations)
	if lv := liveVersions(e); lv > relCap {
		t.Fatalf("after drain: %d live versions, want <= %d (epoch released)", lv, relCap)
	}

	// The same must hold for an abandoned iteration: break releases the
	// epoch via the iterator's cleanup, not only a full drain.
	n := 0
	for _, err := range stmt.Rows(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("abandoned stream yielded %d rows before break, want 3", n)
	}
	if _, err := e.Update(UpdateRequest{Relation: "E", Deletes: [][]int64{{40000, 40001}}}); err != nil {
		t.Fatal(err)
	}
	if lv := liveVersions(e); lv > relCap {
		t.Fatalf("after abandoned stream: %d live versions, want <= %d (epoch released on break)", lv, relCap)
	}

	// And for a cancelled stream: the final (nil, ctx.Err()) yield is
	// preceded by the epoch release too.
	ctx, cancel := context.WithCancel(context.Background())
	sawErr := false
	n = 0
	for _, err := range stmt.Rows(ctx) {
		if err != nil {
			sawErr = true
			break
		}
		if n++; n == 2 {
			cancel()
		}
	}
	cancel()
	if !sawErr {
		t.Fatalf("cancelled stream ended without the final error yield (%d rows)", n)
	}
	if lv := liveVersions(e); lv > relCap {
		t.Fatalf("after cancelled stream: %d live versions, want <= %d", lv, relCap)
	}
}
