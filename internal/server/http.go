package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxRequestBody bounds POST /query bodies (queries are short text).
const maxRequestBody = 1 << 20

// maxUpdateBody bounds POST /update bodies: delta batches carry tuples,
// so they get more headroom than query text.
const maxUpdateBody = 64 << 20

// NewHandler exposes the engine over HTTP/JSON:
//
//	POST /query    {"query": "E(x,y), E(y,z), E(x,z)", "mode": "count", ...}
//	POST /update   {"relation": "E", "inserts": [[1,2]], "deletes": [[3,4]]}
//	GET  /stats    engine-lifetime counters, registry stats, versions, inventory
//	GET  /healthz  liveness probe
//
// Request/Response and UpdateRequest/UpdateResult document the wire
// formats. Errors are returned as {"error": "..."} with a 4xx status.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := e.Do(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		var req UpdateRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, err := e.Update(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
			return
		}
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"queries": e.queries.Load(),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing useful to do on error
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
