package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// maxRequestBody bounds POST /query bodies (queries are short text).
const maxRequestBody = 1 << 20

// maxUpdateBody bounds POST /update bodies: delta batches carry tuples,
// so they get more headroom than query text.
const maxUpdateBody = 64 << 20

// streamFlushEvery is the NDJSON row interval between explicit flushes
// on dense streams: frequent enough that consumers see rows while the
// join runs, rare enough that flushing does not dominate large
// results. Sparse streams flush on time instead (streamFlushAfter), so
// a slow producer's rows are not held hostage by the row counter.
const streamFlushEvery = 128

// streamFlushAfter is the longest a buffered row waits before the next
// row forces a flush regardless of the row counter.
const streamFlushAfter = 100 * time.Millisecond

// NewHandler exposes the engine over HTTP/JSON:
//
//	POST   /query        {"query": "E(x,y), E(y,z), E(x,z)", "mode": "count", ...}
//	                     or {"stmt": "s1", ...} to execute a prepared statement;
//	                     "mode": "stream" streams NDJSON rows instead of buffering
//	POST   /prepare      {"query": "...", ...defaults} -> {"stmt": "s1", ...}
//	DELETE /prepare/{id} close a prepared statement
//	POST   /update       {"relation": "E", "inserts": [[1,2]], "deletes": [[3,4]]}
//	GET    /stats        engine-lifetime counters, registry + plan cache, versions
//	GET    /healthz      liveness probe
//
// Request/Response and UpdateRequest/UpdateResult document the wire
// formats. Every handler executes under r.Context(), so a disconnected
// client (or a server shutdown draining connections) cancels its query
// cooperatively; "timeout_ms" bounds one query from the request itself.
// Errors are returned as {"error": "..."} with a 4xx/5xx status
// (504 when the query's deadline passed).
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decodeInto(w, r, maxRequestBody, &req) {
			return
		}
		if req.Mode == "stream" {
			streamQuery(e, w, r, req)
			return
		}
		resp, err := e.DoCtx(r.Context(), req)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /prepare", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decodeInto(w, r, maxRequestBody, &req) {
			return
		}
		s, err := e.Prepare(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"stmt":  s.ID(),
			"query": s.Text(),
		})
	})
	mux.HandleFunc("DELETE /prepare/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, err := e.Stmt(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		s.Close()
		writeJSON(w, http.StatusOK, map[string]any{"closed": s.ID()})
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var req UpdateRequest
		if !decodeInto(w, r, maxUpdateBody, &req) {
			return
		}
		res, err := e.Update(req)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrReadOnly) {
				// Degraded, not caller error: reads still serve, the
				// operator must intervene (see docs/OPERATIONS.md).
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	// Readiness, not just liveness: this handler only exists once the
	// engine has finished booting, so the 200 means "serving". During a
	// warm boot (mmap verification, WAL replay) the daemon answers 503
	// through the Gate instead — a coordinator uses the transition to
	// gate shard admission. The body carries per-component state so an
	// operator can tell degraded (read-only after a durability failure:
	// still 200, reads serve) from dead.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":  "ok",
			"ready":   true,
			"queries": e.queries.Load(),
			"components": map[string]any{
				"engine": "ok",
				"wal":    "ok",
			},
		}
		if rs := e.ReadOnly(); rs != nil {
			body["status"] = "degraded"
			body["components"].(map[string]any)["wal"] = "read_only"
			body["read_only"] = rs
		}
		writeJSON(w, http.StatusOK, body)
	})
	// The method patterns above answer the happy paths; these bare-path
	// fallbacks catch every other verb so wrong-method requests keep the
	// documented JSON error shape instead of the mux's text/plain 405.
	for path, allow := range map[string]string{
		"/query":        "POST",
		"/prepare":      "POST",
		"/prepare/{id}": "DELETE",
		"/update":       "POST",
		"/stats":        "GET",
		"/healthz":      "GET",
	} {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", allow))
		})
	}
	return mux
}

// streamQuery answers one eval request as NDJSON (one JSON object per
// line) instead of a buffered response: a header line carrying the
// variable order, one {"row": [...]} line per result tuple as the
// sequential engine finds it, and a {"summary": {...}} trailer with the
// row count — or an {"error": "..."} line if the query fails or is
// cancelled mid-stream (the HTTP status is already out by then, which
// is the standard NDJSON trade). Unlike eval mode, nothing is buffered
// and no tuple cap applies unless the request sets "limit" (then the
// scan stops early and the trailer reports truncated). The stream is
// driven through a prepared statement's Rows iterator, so the plan
// cache serves repeats here too.
func streamQuery(e *Engine, w http.ResponseWriter, r *http.Request, req Request) {
	req.Mode = ""
	// wmu serializes the response writer between the scan (encoding
	// rows) and the background flusher that drains buffered rows when
	// the scan goes quiet — without it, a burst of rows under the
	// per-row flush threshold followed by a long matchless stretch
	// would sit in the HTTP buffer until the trailer.
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	dirty := false
	flush := func() { // callers hold wmu
		if flusher != nil {
			flusher.Flush()
		}
		dirty = false
	}
	if flusher != nil {
		// The background flusher only earns its ticker when flushing
		// can actually reach the client.
		stopTick := make(chan struct{})
		defer close(stopTick)
		go func() {
			tick := time.NewTicker(streamFlushAfter)
			defer tick.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-tick.C:
					wmu.Lock()
					if dirty {
						flush()
					}
					wmu.Unlock()
				}
			}
		}()
	}

	started := false
	var rows int64
	sum, err := e.StreamCtx(r.Context(), req,
		func(order []string) {
			// The plan compiled: commit to the NDJSON stream. Failures
			// before this point still get an ordinary JSON error status.
			wmu.Lock()
			defer wmu.Unlock()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
			_ = enc.Encode(map[string]any{"order": order})
			flush()
		},
		func(mu []int64) bool {
			wmu.Lock()
			defer wmu.Unlock()
			_ = enc.Encode(map[string]any{"row": mu})
			if rows++; rows%streamFlushEvery == 0 {
				flush()
			} else {
				dirty = true
			}
			return true
		})
	wmu.Lock()
	defer wmu.Unlock()
	if err != nil {
		if !started {
			writeError(w, errStatus(err), err)
			return
		}
		_ = enc.Encode(map[string]string{"error": err.Error()})
		flush()
		return
	}
	_ = enc.Encode(map[string]any{"summary": map[string]any{
		"count":     sum.Count,
		"truncated": sum.Truncated,
	}})
	flush()
}

// decodeInto reads a bounded JSON body into v, answering the error
// itself and reporting whether the handler should continue.
func decodeInto(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing useful to do on error
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStatus maps an execution error to an HTTP status: a query that
// ran out of wall-clock budget answers 504 (a server-side execution
// deadline; 408 would invite spec-compliant clients to auto-retry the
// join that just timed out), a cancelled one answers the de-facto
// client-closed-request status, everything else is a caller error.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrReadOnly):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
