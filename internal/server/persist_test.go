package server

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
)

const triangles = "E(x,y), E(y,z), E(z,x)"

func testLoader(t *testing.T, calls *int) func() (*relation.DB, error) {
	t.Helper()
	return func() (*relation.DB, error) {
		if calls != nil {
			*calls++
		}
		return relation.NewDB(relation.MustNew("E", 2, [][]int64{
			{1, 2}, {2, 3}, {3, 1}, {2, 1}, {4, 1}, {1, 4}, {4, 2},
		})), nil
	}
}

// TestWarmRestart pins the tentpole end to end: a restarted engine over
// a populated data directory answers its first query with zero trie
// builds (snapshot mmap'd, index files opened), with the WAL replay
// preserving an update applied before the restart.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, DataDir: dir}
	calls := 0
	load := testLoader(t, &calls)

	e1, warm, err := OpenEngine(cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	if warm || calls != 1 {
		t.Fatalf("first boot: warm=%v loads=%d, want cold with one load", warm, calls)
	}
	cold, err := e1.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Counters.TrieBuilds == 0 {
		t.Fatal("cold boot built no tries")
	}
	// One tuple stays under the compaction crossover, so this lands in
	// the WAL (a bigger delta would compact into a fresh snapshot —
	// covered by TestWarmRestartAfterCompaction).
	if _, err := e1.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{3, 4}}}); err != nil {
		t.Fatal(err)
	}
	upd, err := e1.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, warm, err := OpenEngine(cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !warm || calls != 1 {
		t.Fatalf("second boot: warm=%v loads=%d, want warm with no new load", warm, calls)
	}
	first, err := e2.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if first.Count != upd.Count {
		t.Fatalf("warm count %d != pre-restart count %d (wal replay lost the update?)", first.Count, upd.Count)
	}
	if b := first.Stats.Counters.TrieBuilds; b != 0 {
		t.Fatalf("warm first query built %d tries, want 0", b)
	}
	if o := first.Stats.Counters.TrieOpens; o == 0 {
		t.Fatal("warm first query opened no persisted indices")
	}
	s := e2.Stats()
	if s.Persistence == nil {
		t.Fatal("persistent engine reports no persistence stats")
	}
	if s.Persistence.RelationOpens == 0 || s.Persistence.TrieOpens == 0 {
		t.Fatalf("persistence stats = %+v, want relation and trie opens", *s.Persistence)
	}
	if s.Persistence.WALReplayed == 0 {
		t.Fatalf("persistence stats = %+v, want replayed wal records", *s.Persistence)
	}
	if s.Registry.Opens == 0 {
		t.Fatalf("registry stats = %+v, want opens > 0", s.Registry)
	}
	if len(s.Relations) != 1 || s.Relations[0].Version != 1 {
		t.Fatalf("warm inventory = %+v, want E at version 1", s.Relations)
	}

	// Updates keep working after a warm boot, and survive another one.
	if _, err := e2.Update(UpdateRequest{Relation: "E", Deletes: [][]int64{{3, 4}}}); err != nil {
		t.Fatal(err)
	}
	again, err := e2.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	e2.Close()
	e3, warm, err := OpenEngine(cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	third, err := e3.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if !warm || third.Count != again.Count {
		t.Fatalf("third boot: warm=%v count=%d, want %d", warm, third.Count, again.Count)
	}
}

// TestWarmRestartAfterCompaction: deltas past the crossover rewrite the
// snapshot (fresh generation); the next boot opens the compacted base
// with an empty WAL and old index files are not served.
func TestWarmRestartAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	// CompactFraction so low every applied delta compacts.
	cfg := Config{Workers: 1, DataDir: dir, CompactFraction: 0.0001}
	e1, _, err := OpenEngine(cfg, testLoader(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Do(Request{Query: triangles}); err != nil {
		t.Fatal(err)
	}
	res, err := e1.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{5, 6}, {6, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted {
		t.Fatalf("update did not compact: %+v", res)
	}
	want, err := e1.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2, warm, err := OpenEngine(cfg, testLoader(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got, err := e2.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if !warm || got.Count != want.Count {
		t.Fatalf("warm=%v count=%d, want %d", warm, got.Count, want.Count)
	}
	if s := e2.Stats(); s.Persistence.WALReplayed != 0 {
		t.Fatalf("compacted boot replayed %d wal records, want 0", s.Persistence.WALReplayed)
	}
}

// TestCrashRecoveryTornWAL simulates dying mid-append: garbage after the
// last fsync'd record must be truncated away, and every acknowledged
// update must still replay.
func TestCrashRecoveryTornWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, DataDir: dir}
	e1, _, err := OpenEngine(cfg, testLoader(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{3, 4}}}); err != nil {
		t.Fatal(err)
	}
	want, err := e1.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// The crash: a torn record tail lands after the acknowledged one.
	walPath := filepath.Join(dir, "E.wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, warm, err := OpenEngine(cfg, testLoader(t, nil))
	if err != nil {
		t.Fatalf("boot after torn append: %v", err)
	}
	defer e2.Close()
	got, err := e2.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if !warm || got.Count != want.Count {
		t.Fatalf("warm=%v count=%d, want %d", warm, got.Count, want.Count)
	}
	if s := e2.Stats(); s.Persistence.WALTornBytes == 0 {
		t.Fatal("torn tail not detected")
	}
}

// TestCrashRecoveryCorruptState: bit flips in durable state must refuse
// the boot (snapshot, WAL record) — corrupt data is never served.
func TestCrashRecoveryCorruptState(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		e, _, err := OpenEngine(Config{Workers: 1, DataDir: dir}, testLoader(t, nil))
		if err != nil {
			t.Fatal(err)
		}
		// The query triggers the full builds whose write-behind persists
		// the trie files the fall-back subtest corrupts.
		if _, err := e.Do(Request{Query: triangles}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{9, 9}}}); err != nil {
			t.Fatal(err)
		}
		e.Close()
		return dir
	}
	flip := func(t *testing.T, path string, back int) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-back] ^= 0x04
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("snapshot", func(t *testing.T) {
		dir := build(t)
		flip(t, filepath.Join(dir, "E.snap"), 30)
		if _, _, err := OpenEngine(Config{Workers: 1, DataDir: dir}, testLoader(t, nil)); err == nil {
			t.Fatal("corrupt snapshot served")
		}
	})
	t.Run("wal-record", func(t *testing.T) {
		dir := build(t)
		flip(t, filepath.Join(dir, "E.wal"), 5)
		if _, _, err := OpenEngine(Config{Workers: 1, DataDir: dir}, testLoader(t, nil)); err == nil {
			t.Fatal("corrupt wal record replayed")
		}
	})
	t.Run("trie-file-falls-back", func(t *testing.T) {
		// A corrupt index file is not fatal: the engine rebuilds.
		dir := build(t)
		matches, err := filepath.Glob(filepath.Join(dir, "E.*.trie"))
		if err != nil || len(matches) == 0 {
			t.Fatalf("no trie files persisted: %v %v", matches, err)
		}
		for _, m := range matches {
			flip(t, m, 25)
		}
		e, warm, err := OpenEngine(Config{Workers: 1, DataDir: dir}, testLoader(t, nil))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		resp, err := e.Do(Request{Query: triangles})
		if err != nil {
			t.Fatal(err)
		}
		if !warm || resp.Stats.Counters.TrieBuilds == 0 {
			t.Fatalf("warm=%v builds=%d, want a clean rebuild fallback", warm, resp.Stats.Counters.TrieBuilds)
		}
	})
}

// TestMemoryOnlyEngineUnchanged: without DataDir, OpenEngine is plain
// NewEngine — no files, no persistence stats, Close a no-op.
func TestMemoryOnlyEngineUnchanged(t *testing.T) {
	e, warm, err := OpenEngine(Config{Workers: 1}, testLoader(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("memory-only engine reported warm")
	}
	if _, err := e.Do(Request{Query: triangles}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Persistence != nil {
		t.Fatal("memory-only engine reports persistence stats")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
