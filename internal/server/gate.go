package server

import (
	"net/http"
	"sync/atomic"
)

// Gate is the readiness front door of a daemon. A persistent engine can
// take a while to boot — mmap verification sweeps, WAL replay, a
// coordinator waiting to admit its shards — and a load balancer (or a
// coordinator probing a shard) needs an address that answers during
// that window. The daemon binds its listener immediately and serves the
// Gate; until Set installs the real handler every request answers 503
// ("starting"), including GET /healthz — the readiness semantics a
// probe loop keys on. Once Set runs, all traffic flows to the installed
// handler and GET /healthz answers 200 from the engine.
//
// Set may be called once, from any goroutine; requests racing it see
// either the 503 or the live handler, never an inconsistent mix.
type Gate struct {
	h atomic.Pointer[http.Handler]
}

// NewGate returns a gate with no handler installed: every request
// answers 503 until Set.
func NewGate() *Gate { return &Gate{} }

// Set installs the live handler, flipping the gate to ready.
func (g *Gate) Set(h http.Handler) { g.h.Store(&h) }

// Ready reports whether Set has installed the live handler.
func (g *Gate) Ready() bool { return g.h.Load() != nil }

// ServeHTTP delegates to the installed handler, or answers 503 while
// booting. The not-ready /healthz body carries {"status": "starting"}
// so probes can tell "booting" from "down" (connection refused).
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "engine is still booting (warm restart in progress); retry shortly"})
}
