package server

import "repro/internal/relation"

// epochs implements the engine's epoch-based reclamation of superseded
// relation versions. Every query enters at the current epoch; every
// applied delta retires the previous version at the current epoch and
// advances it. A retired version's registry indices may be reclaimed
// only once no in-flight query entered at or before its retirement
// epoch — until then the version is pinned: queries that took their
// snapshot before the update must keep answering from it, bit-identical
// to a fresh engine loaded at that version.
//
// epochs carries no lock of its own: the engine calls it under the same
// mutex that guards the snapshot swap, which is what makes
// enter-and-snapshot atomic with retire-and-swap.
type epochs struct {
	cur      uint64
	inflight map[uint64]int // entry epoch -> active query count
	retired  []retiree      // superseded versions not yet reclaimable
}

type retiree struct {
	epoch uint64 // epoch at retirement: pinned by queries entered at <= epoch
	rel   *relation.Relation
}

// enter registers a query beginning now and returns its entry epoch.
func (ep *epochs) enter() uint64 {
	if ep.inflight == nil {
		ep.inflight = make(map[uint64]int)
	}
	ep.inflight[ep.cur]++
	return ep.cur
}

// exit unregisters a query and returns any versions whose pins drained.
func (ep *epochs) exit(e uint64) []*relation.Relation {
	if ep.inflight[e]--; ep.inflight[e] <= 0 {
		delete(ep.inflight, e)
	}
	return ep.reclaim()
}

// retire records rel as superseded at the current epoch, advances the
// epoch, and returns any versions already reclaimable (none in flight).
func (ep *epochs) retire(rel *relation.Relation) []*relation.Relation {
	ep.retired = append(ep.retired, retiree{epoch: ep.cur, rel: rel})
	ep.cur++
	return ep.reclaim()
}

// reclaim splits off the retired versions no in-flight query can read:
// those retired strictly before the oldest in-flight entry epoch.
func (ep *epochs) reclaim() []*relation.Relation {
	oldest := ep.cur
	for e := range ep.inflight {
		if e < oldest {
			oldest = e
		}
	}
	var out []*relation.Relation
	keep := ep.retired[:0]
	for _, r := range ep.retired {
		if r.epoch < oldest {
			out = append(out, r.rel)
		} else {
			keep = append(keep, r)
		}
	}
	ep.retired = keep
	return out
}

// pinned reports how many superseded versions are still held alive by
// in-flight queries.
func (ep *epochs) pinned() int { return len(ep.retired) }
