package server

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// streamBody POSTs one streaming query and returns the raw NDJSON body.
func streamBody(t *testing.T, srv *httptest.Server, req string) []byte {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestStreamNDJSONGoldenAcrossWorkers pins the parallel streaming
// contract at the wire: the NDJSON bytes of a no-cache stream are
// byte-identical at stream_workers 1, 2 and 8, and match the checked-in
// golden transcript (regenerate deliberately with
// `go test ./internal/server -run StreamNDJSONGolden -update`).
func TestStreamNDJSONGoldenAcrossWorkers(t *testing.T) {
	srv, _ := newTestServer(t)
	bodies := make(map[int][]byte)
	for _, workers := range []int{1, 2, 8} {
		req := fmt.Sprintf(`{"query": "E(x,y), E(y,z), E(x,z)", "mode": "stream", "no_cache": true, "stream_workers": %d}`, workers)
		bodies[workers] = streamBody(t, srv, req)
	}
	for _, workers := range []int{2, 8} {
		if !bytes.Equal(bodies[workers], bodies[1]) {
			t.Fatalf("stream_workers=%d output differs from sequential:\n--- %d workers ---\n%s\n--- sequential ---\n%s",
				workers, workers, bodies[workers], bodies[1])
		}
	}

	golden := filepath.Join("testdata", "stream.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, bodies[1], 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/server -run StreamNDJSONGolden -update`): %v", err)
	}
	if !bytes.Equal(bodies[1], want) {
		t.Errorf("stream output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, bodies[1], want)
	}
}

// TestStreamConcurrentStress mixes parallel streams, live updates and
// registry eviction pressure, with some streams abandoned mid-iteration
// and some cancelled mid-scan, then checks that every producer
// goroutine drains and each completed stream saw one consistent
// snapshot (a round row count for its epoch, never a torn mix). Run
// under -race in CI.
func TestStreamConcurrentStress(t *testing.T) {
	base := runtime.NumGoroutine()
	// A tight trie budget keeps the registry evicting while patched
	// versions come and go under the streams.
	e := NewEngine(testDB(), Config{Workers: 2, TrieBudget: 1 << 16})

	stmt, err := e.Prepare(Request{Query: "E(x,y), E(y,z)", NoCache: true, StreamWorkers: 3, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	stop := make(chan struct{})
	var uwg sync.WaitGroup
	uwg.Add(1)
	go func() {
		defer uwg.Done()
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			tup := [][]int64{{30000 + i, 30001 + i}}
			if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: tup}); err != nil {
				t.Error(err)
				return
			}
			if _, err := e.Update(UpdateRequest{Relation: "E", Deletes: tup}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const clients = 6
	const perClient = 6
	errs := make(chan error, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				switch i % 3 {
				case 0:
					// Full drain through StreamCtx at a random worker count.
					var rows int64
					sum, err := e.StreamCtx(context.Background(), Request{
						Query:         "E(x,y), E(y,z)",
						Mode:          "stream",
						NoCache:       true,
						StreamWorkers: 1 + rng.Intn(4),
						BatchSize:     1 + rng.Intn(16),
					}, nil, func([]int64) bool { rows++; return true })
					if err != nil {
						errs <- fmt.Errorf("client %d stream %d: %w", c, i, err)
					} else if rows != sum.Count {
						errs <- fmt.Errorf("client %d stream %d: %d rows vs summary %d", c, i, rows, sum.Count)
					}
				case 1:
					// Abandon a Rows iteration mid-stream (break).
					n, limit := 0, 1+rng.Intn(10)
					for _, err := range stmt.Rows(context.Background()) {
						if err != nil {
							errs <- fmt.Errorf("client %d rows %d: %w", c, i, err)
							break
						}
						if n++; n >= limit {
							break
						}
					}
				case 2:
					// Cancel mid-scan.
					ctx, cancel := context.WithCancel(context.Background())
					timer := time.AfterFunc(time.Duration(rng.Intn(5))*time.Millisecond, cancel)
					_, err := e.StreamCtx(ctx, Request{
						Query:         "E(a,b), E(b,c), E(c,d)",
						Mode:          "stream",
						StreamWorkers: 2 + rng.Intn(3),
						BatchSize:     4,
					}, nil, func([]int64) bool { return true })
					timer.Stop()
					cancel()
					if err != nil && !errors.Is(err, context.Canceled) {
						errs <- fmt.Errorf("client %d cancel %d: %w", c, i, err)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	uwg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every sharded producer and merger must have drained: the goroutine
	// count settles back to (about) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Abandoned and cancelled streams released their epochs: superseded
	// versions reclaim down to the steady-state inventory (current
	// version + patch base per relation).
	stats := e.Stats()
	if max := 2 * len(stats.Relations); stats.LiveVersions > max {
		t.Fatalf("epochs leaked: %d live versions, want <= %d", stats.LiveVersions, max)
	}
}
