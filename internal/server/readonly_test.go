package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/faults"
)

// openFaulty boots a cold persistent engine with inj armed over its
// store and returns it with the baseline triangle count.
func openFaulty(t *testing.T, dir string, inj *faults.Injector) (*Engine, int64) {
	t.Helper()
	e, _, err := OpenEngine(Config{Workers: 1, DataDir: dir, Faults: inj}, testLoader(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	return e, resp.Count
}

// TestReadOnlyAfterWALFailure pins the degraded-mode contract: a failed
// WAL fsync flips the engine to typed read-only — the failing update
// and every later one answer ErrReadOnly (503 over HTTP), reads keep
// serving the last durable snapshot, /healthz reports the component
// state, and a restart recovers a writable engine without the
// un-persisted update.
func TestReadOnlyAfterWALFailure(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(1).Add(faults.Rule{Site: "store/E.wal/appendsync", Nth: 1})
	e, base := openFaulty(t, dir, inj)

	_, err := e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{5, 6}}})
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("update with failing fsync: %v, want ErrReadOnly", err)
	}
	if rs := e.ReadOnly(); rs == nil || rs.Reason == "" {
		t.Fatalf("ReadOnly() = %+v, want populated state", rs)
	}
	// Reads keep serving, and the un-persisted version was never
	// installed: the count is the durable one.
	resp, err := e.Do(Request{Query: triangles})
	if err != nil {
		t.Fatalf("read in read-only mode: %v", err)
	}
	if resp.Count != base {
		t.Fatalf("read-only count = %d, want durable %d", resp.Count, base)
	}
	// Later updates are refused at entry with the same typed error.
	if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{7, 8}}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("second update: %v, want ErrReadOnly", err)
	}

	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	ur, err := http.Post(srv.URL+"/update", "application/json",
		strings.NewReader(`{"relation": "E", "inserts": [[9, 10]]}`))
	if err != nil {
		t.Fatal(err)
	}
	ur.Body.Close()
	if ur.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read-only /update status = %d, want 503", ur.StatusCode)
	}
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status     string            `json:"status"`
		Ready      bool              `json:"ready"`
		Components map[string]string `json:"components"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || !health.Ready {
		t.Fatalf("degraded /healthz = %d ready=%v, want 200 + ready (reads serve)", hr.StatusCode, health.Ready)
	}
	if health.Status != "degraded" || health.Components["wal"] != "read_only" || health.Components["engine"] != "ok" {
		t.Fatalf("degraded /healthz body = %+v, want status=degraded wal=read_only", health)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart recovers: the directory holds only durable state, so the
	// engine boots warm, writable, at the pre-failure count.
	e2, warm, err := OpenEngine(Config{Workers: 1, DataDir: dir}, testLoader(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !warm {
		t.Fatal("restart after read-only was not warm")
	}
	if e2.ReadOnly() != nil {
		t.Fatal("restarted engine is still read-only")
	}
	resp2, err := e2.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Count != base {
		t.Fatalf("restarted count = %d, want %d", resp2.Count, base)
	}
	if _, err := e2.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{5, 6}}}); err != nil {
		t.Fatalf("restarted engine refused a clean update: %v", err)
	}
}

// TestReadOnlyAfterTornAppend drives the short-write fault: the injected
// append persists a real torn prefix, the engine flips read-only, and
// the next boot truncates the torn tail and serves the durable state.
func TestReadOnlyAfterTornAppend(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(2).Add(faults.Rule{Site: "store/E.wal/append", Kind: faults.KindShort, Nth: 1, Bytes: 5})
	e, base := openFaulty(t, dir, inj)

	if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{5, 6}}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("update with torn append: %v, want ErrReadOnly", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, warm, err := OpenEngine(Config{Workers: 1, DataDir: dir}, testLoader(t, nil))
	if err != nil {
		t.Fatalf("boot over a torn WAL tail: %v", err)
	}
	defer e2.Close()
	if !warm {
		t.Fatal("restart was not warm")
	}
	st := e2.Stats()
	if st.Persistence == nil || st.Persistence.WALTornBytes != 5 {
		t.Fatalf("recovery truncated %v torn bytes, want 5", st.Persistence)
	}
	resp, err := e2.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != base {
		t.Fatalf("recovered count = %d, want durable %d", resp.Count, base)
	}
}

// TestRegistryPressureFault pins the third injection boundary: a query
// under forced eviction pressure pays cold trie rebuilds but stays
// byte-correct.
func TestRegistryPressureFault(t *testing.T) {
	inj := faults.New(3)
	e, _, err := OpenEngine(Config{Workers: 1, Faults: inj}, testLoader(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	warmResp, err := e.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Counters.TrieBuilds != 0 {
		t.Fatalf("warm repeat built %d tries, want 0", again.Stats.Counters.TrieBuilds)
	}
	inj.Add(faults.Rule{Site: "registry/pressure", P: 1})
	cold, err := e.Do(Request{Query: triangles})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Count != warmResp.Count {
		t.Fatalf("count under eviction pressure = %d, want %d", cold.Count, warmResp.Count)
	}
	if cold.Stats.Counters.TrieBuilds == 0 {
		t.Fatal("forced eviction pressure did not trigger rebuilds")
	}
}
