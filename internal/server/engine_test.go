package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/relation"
)

// testDB is a small skewed graph: large enough that joins do real work
// and parallel paths engage, small enough for -race.
func testDB() *relation.DB {
	return dataset.TriadicPA(150, 3, 0.4, 4242).DB(false)
}

// seqCount runs q fresh and sequentially with no registry — the ground
// truth the engine's answers must be bit-identical to.
func seqCount(t *testing.T, db *relation.DB, query string) int64 {
	t.Helper()
	q, err := cq.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.AutoPlan(q, db, core.AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return plan.Count(core.Policy{}).Count
}

// mixedRequests is the workload of the concurrency tests: distinct
// shapes, modes and per-query cache policies over one engine.
func mixedRequests() []Request {
	return []Request{
		{Query: "E(x,y), E(y,z), E(x,z)"},                                         // triangle
		{Query: "E(x,y), E(y,z), E(x,z)", Workers: 1},                             // sequential
		{Query: "E(a,b), E(b,c), E(c,d)", CacheCapacity: 64},                      // 4-path, bounded
		{Query: "E(a,b), E(b,c), E(c,d), E(d,a)", CacheEviction: "lru"},           // 4-cycle
		{Query: "E(a,b), E(b,c), E(c,d), E(d,a)", NoCache: true},                  // 4-cycle, LFTJ
		{Query: "E(x,y), E(y,z), E(x,z)", Mode: "eval", Limit: 7},                 // eval sample
		{Query: "E(a,b), E(b,c), E(c,d)", Mode: "aggregate"},                      // count semiring
		{Query: "E(x,y), E(y,z), E(x,z)", Mode: "aggregate", Semiring: "min"},     // tropical
		{Query: "E(a,b), E(b,c), E(c,a), E(a,d)", CacheSupport: 1},                // tailed triangle
		{Query: "E(a,b), E(b,c), E(c,d), E(d,e)", Workers: 2, CacheCapacity: 128}, // 5-path
	}
}

// TestEngineConcurrentMixedQueries is the acceptance test: one engine,
// loaded once, answers >= 100 concurrent mixed count/eval/aggregate
// queries with counts bit-identical to fresh sequential runs. Run under
// -race in CI.
func TestEngineConcurrentMixedQueries(t *testing.T) {
	db := testDB()
	e := NewEngine(db, Config{Workers: 2})
	reqs := mixedRequests()

	// Ground truth, computed before the engine warms anything.
	want := make([]int64, len(reqs))
	for i, r := range reqs {
		want[i] = seqCount(t, db, r.Query)
	}

	const n = 120 // concurrent queries, >= 100 per the acceptance bar
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := reqs[i%len(reqs)]
			resp, err := e.Do(req)
			if err != nil {
				errs <- fmt.Errorf("query %d (%s): %w", i, req.Query, err)
				return
			}
			if resp.Mode != "aggregate" || req.Semiring == "" || req.Semiring == "count" {
				if resp.Count != want[i%len(reqs)] {
					errs <- fmt.Errorf("query %d (%s): count %d, sequential %d",
						i, req.Query, resp.Count, want[i%len(reqs)])
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := e.Stats()
	if s.Queries != n {
		t.Fatalf("engine counted %d queries, want %d", s.Queries, n)
	}
	if s.Registry.Hits == 0 {
		t.Fatal("registry recorded no hits across 120 queries")
	}
}

// TestEngineRepeatedQueryZeroBuilds is the amortization acceptance test:
// the second run of a repeated query performs zero trie builds.
func TestEngineRepeatedQueryZeroBuilds(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1})
	req := Request{Query: "E(x,y), E(y,z), E(x,z)"}

	first, err := e.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Counters.TrieBuilds == 0 {
		t.Fatal("cold run reported zero trie builds")
	}
	second, err := e.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Stats.Counters.TrieBuilds; got != 0 {
		t.Fatalf("warm run performed %d trie builds, want 0", got)
	}
	if second.Count != first.Count {
		t.Fatalf("warm count %d != cold count %d", second.Count, first.Count)
	}
	// Another shape over the same relation under the same orders also
	// rides the warm registry.
	third, err := e.Do(Request{Query: "E(a,b), E(b,c), E(a,c)"})
	if err != nil {
		t.Fatal(err)
	}
	if got := third.Stats.Counters.TrieBuilds; got != 0 {
		t.Fatalf("renamed query performed %d trie builds, want 0", got)
	}
}

// TestEngineConstantQuerySteadyBuilds pins the accounting for queries
// the registry cannot fully serve, with plan caching disabled so every
// request recompiles: an atom specialized by a constant builds one
// private trie per compile (its derived relation is query-specific),
// but the pure atoms still ride the registry and the plan-selection
// probes stay uncharged — so warm repeats settle at exactly one build,
// not one per candidate order. (With the default plan cache the whole
// compiled plan — private trie included — is reused and warm repeats
// report zero builds; see TestPlanCacheHit.)
func TestEngineConstantQuerySteadyBuilds(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1, PlanCache: -1})
	req := Request{Query: "E(x,y), E(y,z), E(z, 0)"}
	if _, err := e.Do(req); err != nil {
		t.Fatal(err)
	}
	second, err := e.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	third, err := e.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Stats.Counters.TrieBuilds; got != 1 {
		t.Fatalf("warm constant-atom run performed %d trie builds, want 1 (the private derived trie)", got)
	}
	if second.Stats.Counters.TrieBuilds != third.Stats.Counters.TrieBuilds {
		t.Fatalf("warm runs disagree on builds: %d vs %d",
			second.Stats.Counters.TrieBuilds, third.Stats.Counters.TrieBuilds)
	}
}

func TestEngineDisableReuseRebuilds(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1, DisableReuse: true})
	req := Request{Query: "E(x,y), E(y,z), E(x,z)"}
	if _, err := e.Do(req); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Counters.TrieBuilds == 0 {
		t.Fatal("reuse disabled but repeated run built no tries")
	}
	if e.Registry() != nil {
		t.Fatal("DisableReuse engine still carries a registry")
	}
}

func TestEngineEval(t *testing.T) {
	db := testDB()
	e := NewEngine(db, Config{})
	total := seqCount(t, db, "E(x,y), E(y,z), E(x,z)")
	resp, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)", Mode: "eval", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != total {
		t.Fatalf("eval count %d, want %d", resp.Count, total)
	}
	if len(resp.Tuples) != 3 || !resp.Truncated {
		t.Fatalf("eval returned %d tuples (truncated=%v), want 3 truncated", len(resp.Tuples), resp.Truncated)
	}
	if len(resp.Order) != 3 {
		t.Fatalf("order %v, want 3 variables", resp.Order)
	}
	for _, tup := range resp.Tuples {
		if len(tup) != len(resp.Order) {
			t.Fatalf("tuple %v does not align with order %v", tup, resp.Order)
		}
	}
}

func TestEngineAggregate(t *testing.T) {
	db := testDB()
	e := NewEngine(db, Config{})
	total := seqCount(t, db, "E(x,y), E(y,z)")

	resp, err := e.Do(Request{Query: "E(x,y), E(y,z)", Mode: "aggregate"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != total {
		t.Fatalf("aggregate count %d, want %d", resp.Count, total)
	}

	// min over tuples of the sum of bound values must match a direct
	// scan of the evaluated result.
	resp, err = e.Do(Request{Query: "E(x,y), E(y,z)", Mode: "aggregate", Semiring: "min", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.Do(Request{Query: "E(x,y), E(y,z)", Mode: "eval", Limit: int(total) + 1})
	if err != nil {
		t.Fatal(err)
	}
	best := float64(1e300)
	for _, tup := range ev.Tuples {
		s := 0.0
		for _, v := range tup {
			s += float64(v)
		}
		if s < best {
			best = s
		}
	}
	if resp.Value != best {
		t.Fatalf("tropical aggregate %v, scan says %v", resp.Value, best)
	}
}

func TestEngineTrieBudgetEvicts(t *testing.T) {
	// A 1-byte budget admits at most one resident index at a time (a
	// single oversized entry is kept — the engine cannot answer without
	// it); the second query needs E under the opposite column order, so
	// its insertion must evict the first.
	e := NewEngine(testDB(), Config{Workers: 1, TrieBudget: 1})
	if _, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(Request{Query: "E(x,y), E(y,x)"}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats().Registry
	if s.Evictions == 0 {
		t.Fatalf("budget of 1 byte evicted nothing: %+v", s)
	}
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1 under a 1-byte budget", s.Entries)
	}
	if s.Budget != 1 {
		t.Fatalf("budget = %d, want 1", s.Budget)
	}
}

func TestEngineErrors(t *testing.T) {
	e := NewEngine(testDB(), Config{})
	for _, req := range []Request{
		{Query: "not a query"},
		{Query: "R(x,y)"}, // unknown relation
		{Query: "E(x,y)", Mode: "explain"},
		{Query: "E(x,y)", Mode: "stream"}, // transport-level; StreamCtx/HTTP only
		{Query: "E(x,y)", Mode: "aggregate", Semiring: "max"},
		{Query: "E(x,y)", CacheEviction: "random"},
	} {
		if _, err := e.Do(req); err == nil {
			t.Errorf("request %+v: want error", req)
		}
	}
	if got := e.Stats().Queries; got != 0 {
		t.Fatalf("failed requests counted as %d completed queries", got)
	}
}

func TestEngineStatsInventory(t *testing.T) {
	e := NewEngine(testDB(), Config{})
	s := e.Stats()
	if len(s.Relations) != 1 || s.Relations[0].Name != "E" || s.Relations[0].Arity != 2 {
		t.Fatalf("relations = %+v, want one binary E", s.Relations)
	}
	if s.Relations[0].Tuples == 0 {
		t.Fatal("relation E reported empty")
	}
	if _, err := e.Do(Request{Query: "E(x,y), E(y,x)"}); err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.Queries != 1 || s.Lifetime.Total() == 0 {
		t.Fatalf("lifetime stats not merged: %+v", s)
	}
	if !strings.Contains(s.Registry.String(), "entries=") {
		t.Fatalf("registry stats string: %q", s.Registry.String())
	}
}
