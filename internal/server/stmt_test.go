package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/relation"
)

// TestPlanCacheHit pins the tentpole's hot path: the first execution of
// a query compiles and caches, every repeat — including formatting
// variants of the same text — skips compilation entirely.
func TestPlanCacheHit(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1})

	first, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PlanCached {
		t.Fatal("cold run reported a plan-cache hit")
	}
	second, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.PlanCached {
		t.Fatal("warm repeat missed the plan cache")
	}
	if second.Count != first.Count {
		t.Fatalf("cached plan count %d != cold count %d", second.Count, first.Count)
	}
	if second.Stats.Counters.TrieBuilds != 0 {
		t.Fatalf("cached-plan run built %d tries", second.Stats.Counters.TrieBuilds)
	}

	// Formatting variants canonicalize to one cache entry.
	third, err := e.Do(Request{Query: "E(x , y),E(y,z),   E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Stats.PlanCached {
		t.Fatal("whitespace variant of a warm query missed the plan cache")
	}

	// Plan-affecting options key separately: the cheap-planned variant
	// is a different plan, not a stale hit.
	noc, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)", NoOrderCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if noc.Stats.PlanCached {
		t.Fatal("no_order_cost variant hit the thorough plan's cache entry")
	}
	if noc.Count != first.Count {
		t.Fatalf("no_order_cost count %d != %d", noc.Count, first.Count)
	}

	s := e.Stats()
	if s.Plans.Hits != 2 || s.Plans.Misses != 2 {
		t.Fatalf("plan cache stats = %+v, want 2 hits / 2 misses", s.Plans)
	}
	if s.Plans.Size != 2 || s.Plans.Capacity != DefaultPlanCacheSize {
		t.Fatalf("plan cache residency = %+v", s.Plans)
	}
}

// TestPlanCacheDisabled pins the control arm: with a negative capacity
// every request compiles.
func TestPlanCacheDisabled(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1, PlanCache: -1})
	req := Request{Query: "E(x,y), E(y,z), E(x,z)"}
	for i := 0; i < 2; i++ {
		resp, err := e.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Stats.PlanCached {
			t.Fatalf("run %d hit a disabled plan cache", i)
		}
	}
	if s := e.Stats().Plans; s.Capacity != 0 || s.Hits != 0 {
		t.Fatalf("disabled plan cache reported %+v", s)
	}
}

// TestPlanCacheLRUEvicts bounds the cache: distinct queries past the
// capacity evict the least recently used plan.
func TestPlanCacheLRUEvicts(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1, PlanCache: 2})
	queries := []string{
		"E(x,y), E(y,z)",
		"E(x,y), E(y,z), E(z,w)",
		"E(x,y), E(y,z), E(x,z)",
	}
	for _, q := range queries {
		if _, err := e.Do(Request{Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats().Plans
	if s.Size != 2 || s.Evictions != 1 {
		t.Fatalf("plan cache after overflow = %+v, want size 2, 1 eviction", s)
	}
	// The first query was evicted: re-running it compiles again.
	resp, err := e.Do(Request{Query: queries[0]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.PlanCached {
		t.Fatal("evicted plan reported as cached")
	}
}

// twoRelDB pairs the test graph with an independent relation R, to
// show updates invalidate per touched relation, not globally.
func twoRelDB() *relation.DB {
	g := testDB()
	e, _ := g.Get("E")
	r := relation.MustNew("R", 2, [][]int64{{1, 2}, {2, 3}, {3, 1}, {3, 4}})
	return relation.NewDB(e, r)
}

// TestPlanCacheInvalidationOnUpdate is the staleness acceptance test: a
// warm plan must stop serving the moment its relation changes version,
// and the recompiled plan must answer exactly as a fresh engine loaded
// at the new data would — while plans over untouched relations stay
// warm.
func TestPlanCacheInvalidationOnUpdate(t *testing.T) {
	db := twoRelDB()
	e := NewEngine(db, Config{Workers: 1})
	triangle := Request{Query: "E(x,y), E(y,z), E(x,z)"}
	rquery := Request{Query: "R(x,y), R(y,z)"}

	before, err := e.Do(triangle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(rquery); err != nil {
		t.Fatal(err)
	}
	warm, err := e.Do(triangle)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.PlanCached {
		t.Fatal("repeat before update missed the plan cache")
	}

	// Mutate E: a fresh triangle among high ids no base edge touches.
	ins := [][]int64{{9001, 9002}, {9002, 9003}, {9001, 9003}}
	if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: ins}); err != nil {
		t.Fatal(err)
	}

	after, err := e.Do(triangle)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.PlanCached {
		t.Fatal("stale plan served after update (version vector failed to invalidate)")
	}
	if after.Count != before.Count+1 {
		t.Fatalf("post-update count %d, want %d (stale data?)", after.Count, before.Count+1)
	}
	// Ground truth: a fresh engine loaded at the updated snapshot.
	fresh := NewEngine(e.DB(), Config{Workers: 1})
	want, err := fresh.Do(triangle)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != want.Count {
		t.Fatalf("post-update count %d, fresh engine says %d", after.Count, want.Count)
	}

	// The new plan re-warms under the new version vector.
	rewarm, err := e.Do(triangle)
	if err != nil {
		t.Fatal(err)
	}
	if !rewarm.Stats.PlanCached || rewarm.Count != after.Count {
		t.Fatalf("re-warmed run: cached=%v count=%d, want cached with %d",
			rewarm.Stats.PlanCached, rewarm.Count, after.Count)
	}

	// R's plan never staled: E's update is invisible to its key.
	runchanged, err := e.Do(rquery)
	if err != nil {
		t.Fatal(err)
	}
	if !runchanged.Stats.PlanCached {
		t.Fatal("update to E invalidated a plan that only touches R")
	}
}

// TestPlanCacheUpdateReleasesStalePlans guards the memory side of
// invalidation: updates drop the entries they staled eagerly, so the
// resident plan count under continuous updates tracks the live plan
// set, not the LRU capacity — and plans over untouched relations
// survive.
func TestPlanCacheUpdateReleasesStalePlans(t *testing.T) {
	e := NewEngine(twoRelDB(), Config{Workers: 1})
	if _, err := e.Do(Request{Query: "R(x,y), R(y,z)"}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"}); err != nil {
			t.Fatal(err)
		}
		tup := [][]int64{{30000 + i, 30001 + i}}
		if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: tup}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats().Plans
	// One live entry for R's plan; E's current entry was dropped by the
	// last update, so at most one more can linger from a race-free run.
	if s.Size > 2 {
		t.Fatalf("plan cache holds %d entries after 10 updates, want <= 2 (stale plans retained): %+v", s.Size, s)
	}
	if s.Invalidations == 0 {
		t.Fatalf("updates recorded no plan invalidations: %+v", s)
	}
	// R's plan was never staled by E's updates.
	resp, err := e.Do(Request{Query: "R(x,y), R(y,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Stats.PlanCached {
		t.Fatal("plan over untouched relation R was dropped by E's updates")
	}
}

// TestPlanCacheFollowsTrieEviction: a byte-budget eviction in the trie
// registry drops the cached plans pinning that index, so TrieBudget
// keeps bounding resident trie memory (a pinned-but-evicted trie would
// otherwise live on inside warm plans while the registry reports its
// bytes reclaimed).
func TestPlanCacheFollowsTrieEviction(t *testing.T) {
	// A 1-byte budget admits one resident index at a time: the second
	// query needs E under the opposite column order, so building it
	// evicts the first query's trie — and must drop its plan too.
	e := NewEngine(testDB(), Config{Workers: 1, TrieBudget: 1})
	if _, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Do(Request{Query: "E(x,y), E(y,x)"}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Registry.Evictions == 0 || s.Plans.Invalidations == 0 {
		t.Fatalf("trie eviction did not invalidate pinning plans: %+v / %+v", s.Registry, s.Plans)
	}
	// The first query's plan was dropped with its trie: it recompiles.
	resp, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.PlanCached {
		t.Fatal("plan pinning an evicted trie served from cache")
	}
}

// TestPrepare covers the prepared-statement lifecycle: prepare warms
// the plan cache, executions hit it, by-id execution works through
// DoCtx, and Close unregisters.
func TestPrepare(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1})
	stmt, err := e.Prepare(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if stmt.ID() == "" || stmt.Text() == "" {
		t.Fatalf("stmt = %q / %q", stmt.ID(), stmt.Text())
	}
	if got := e.Stats().Prepared; got != 1 {
		t.Fatalf("prepared = %d, want 1", got)
	}

	// The very first execution rides the prepare-time compile.
	resp, err := stmt.Do(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Stats.PlanCached {
		t.Fatal("first execution of a prepared statement compiled again")
	}

	n, err := stmt.CountCtx(context.Background())
	if err != nil || n != resp.Count {
		t.Fatalf("CountCtx = %d, %v; want %d", n, err, resp.Count)
	}

	// Query-by-id through the ordinary Do path, with an override.
	byID, err := e.DoCtx(context.Background(), Request{Stmt: stmt.ID(), Mode: "eval", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if byID.Mode != "eval" || len(byID.Tuples) != 2 || byID.Count != resp.Count {
		t.Fatalf("by-id eval = %+v", byID)
	}

	// Errors: both query and stmt, unknown id, preparing a stmt.
	if _, err := e.DoCtx(context.Background(), Request{Stmt: stmt.ID(), Query: "E(x,y)"}); err == nil {
		t.Fatal("want error for request naming both query and stmt")
	}
	if _, err := e.Stmt("s999"); err == nil {
		t.Fatal("want error for unknown stmt id")
	}
	if _, err := e.Prepare(Request{Stmt: stmt.ID()}); err == nil {
		t.Fatal("want error preparing from a stmt id")
	}
	if _, err := e.Prepare(Request{Query: "not a query"}); err == nil {
		t.Fatal("want parse error from Prepare")
	}
	if _, err := e.Prepare(Request{Query: "Z(x,y)"}); err == nil {
		t.Fatal("want compile error from Prepare (unknown relation)")
	}
	if _, err := e.Prepare(Request{Query: "E(x,y)", Mode: "stream"}); err == nil {
		t.Fatal("want error preparing mode stream (per-execution transport)")
	}
	if _, err := e.Prepare(Request{Query: "E(x,y)", Mode: "explain"}); err == nil {
		t.Fatal("want error preparing unknown mode")
	}
	if _, err := e.Prepare(Request{Query: "E(x,y)", Mode: "aggregate", Semiring: "avg"}); err == nil {
		t.Fatal("want error preparing unknown semiring")
	}

	stmt.Close()
	if got := e.Stats().Prepared; got != 0 {
		t.Fatalf("prepared after close = %d, want 0", got)
	}
	if _, err := e.DoCtx(context.Background(), Request{Stmt: stmt.ID()}); err == nil {
		t.Fatal("closed statement still executable by id")
	}
	stmt.Close() // idempotent
}

// TestPrepareRegistryCap: the registry refuses registrations past
// MaxPrepared (a leaked-handle guard), and Close frees capacity.
func TestPrepareRegistryCap(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1, MaxPrepared: 2})
	s1, err := e.Prepare(Request{Query: "E(x,y)"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(Request{Query: "E(x,y), E(y,z)"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(Request{Query: "E(a,b), E(b,a)"}); err == nil {
		t.Fatal("third Prepare exceeded MaxPrepared: 2 without error")
	}
	s1.Close()
	if _, err := e.Prepare(Request{Query: "E(a,b), E(b,a)"}); err != nil {
		t.Fatalf("Prepare after Close still capped: %v", err)
	}
}

// TestStreamCtxSummarySemantics pins the trailer contract: a result of
// exactly limit rows is not truncated (truncation requires a witness
// row beyond the limit), and a consumer stop counts the row it was
// delivered.
func TestStreamCtxSummarySemantics(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1})
	query := "E(x,y), E(y,z), E(x,z)"
	full, err := e.Do(Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	total := full.Count

	// limit == |result|: everything streamed, nothing truncated.
	sum, err := e.StreamCtx(context.Background(), Request{Query: query, Limit: int(total)},
		nil, func([]int64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != total || sum.Truncated {
		t.Fatalf("exact-limit stream: %+v, want count %d untruncated", sum, total)
	}

	// limit < |result|: truncated at the limit.
	sum, err = e.StreamCtx(context.Background(), Request{Query: query, Limit: 5},
		nil, func([]int64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 5 || !sum.Truncated {
		t.Fatalf("under-limit stream: %+v, want 5 truncated", sum)
	}

	// Consumer stop on the k-th row: that row is counted, no truncation.
	k := 0
	sum, err = e.StreamCtx(context.Background(), Request{Query: query},
		nil, func([]int64) bool { k++; return k < 3 })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 3 || sum.Truncated {
		t.Fatalf("consumer-stop stream: %+v after %d deliveries, want count 3 untruncated", sum, k)
	}

	// A negative override clears a prepared statement's default limit
	// (0 would keep it: zero means unset in the merge).
	stmt, err := e.Prepare(Request{Query: query, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum, err = e.StreamCtx(context.Background(), Request{Stmt: stmt.ID()},
		nil, func([]int64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 2 || !sum.Truncated {
		t.Fatalf("prepared-default stream: %+v, want 2 truncated", sum)
	}
	sum, err = e.StreamCtx(context.Background(), Request{Stmt: stmt.ID(), Limit: -1},
		nil, func([]int64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != total || sum.Truncated {
		t.Fatalf("negative-limit stream: %+v, want full %d untruncated", sum, total)
	}
}

// TestPrepareFollowsUpdates: a statement prepared before an update
// answers from the new snapshot afterwards (the engine variant is
// never pinned to stale data).
func TestPrepareFollowsUpdates(t *testing.T) {
	e := NewEngine(twoRelDB(), Config{Workers: 1})
	stmt, err := e.Prepare(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	before, err := stmt.CountCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ins := [][]int64{{9001, 9002}, {9002, 9003}, {9001, 9003}}
	if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: ins}); err != nil {
		t.Fatal(err)
	}
	after, err := stmt.CountCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if after != before+1 {
		t.Fatalf("prepared count after update = %d, want %d", after, before+1)
	}
}

// TestStmtRows checks the streaming iterator against buffered eval:
// same tuples, same order; break stops the scan; a cancelled ctx ends
// the stream with its error.
func TestStmtRows(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1})
	stmt, err := e.Prepare(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}

	want, err := stmt.Do(context.Background(), Request{Mode: "eval", Limit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}

	var got [][]int64
	for row, rerr := range stmt.Rows(context.Background()) {
		if rerr != nil {
			t.Fatal(rerr)
		}
		got = append(got, row)
	}
	if int64(len(got)) != want.Count {
		t.Fatalf("Rows yielded %d tuples, eval counted %d", len(got), want.Count)
	}
	for i, tup := range want.Tuples {
		if fmt.Sprint(got[i]) != fmt.Sprint(tup) {
			t.Fatalf("row %d = %v, eval says %v", i, got[i], tup)
		}
	}

	// Early break is a clean stop, not an error.
	seen := 0
	for _, rerr := range stmt.Rows(context.Background()) {
		if rerr != nil {
			t.Fatal(rerr)
		}
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("broke after %d rows, want 3", seen)
	}

	// A pre-cancelled ctx yields exactly one error pair.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var errSeen error
	rows := 0
	for row, rerr := range stmt.Rows(ctx) {
		if rerr != nil {
			errSeen = rerr
			continue
		}
		_ = row
		rows++
	}
	if !errors.Is(errSeen, context.Canceled) || rows != 0 {
		t.Fatalf("cancelled Rows: err=%v rows=%d", errSeen, rows)
	}
}

// TestDoCtxTimeout: a 1ms budget on a heavy cyclic query fails with
// DeadlineExceeded and does not count as a completed query.
func TestDoCtxTimeout(t *testing.T) {
	db := dataset.CliqueUnion(500, 280, 18, 1.6, 9).DB(false)
	e := NewEngine(db, Config{Workers: 1})
	// 20ms: far below the query's runtime (deadline lands mid-join) yet
	// wide enough that the scan demonstrably worked before it tripped.
	req := Request{Query: "E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)", TimeoutMS: 20}
	// Warm the plan first so the timeout lands in execution, not compile.
	warm := req
	warm.TimeoutMS = 0
	if _, err := e.Do(warm); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	_, err := e.DoCtx(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	after := e.Stats()
	if after.Queries != before.Queries {
		t.Fatalf("timed-out query counted as completed (%d -> %d)", before.Queries, after.Queries)
	}
	// ... but the work it performed before the deadline still lands in
	// the lifetime counters.
	if after.Lifetime.Total() <= before.Lifetime.Total() {
		t.Fatalf("timed-out query's work missing from lifetime counters (%d -> %d)",
			before.Lifetime.Total(), after.Lifetime.Total())
	}
}

// TestCancelUpdateStress is the -race acceptance test: queries being
// cancelled mid-join while updates land concurrently, with no leaked
// workers afterwards. Run under -race in CI.
func TestCancelUpdateStress(t *testing.T) {
	base := runtime.NumGoroutine()
	db := dataset.CliqueUnion(300, 170, 14, 1.6, 9).DB(false)
	e := NewEngine(db, Config{Workers: 2})

	const clients = 8
	const perClient = 10
	var wg, uwg sync.WaitGroup

	// Updater: small insert/delete deltas landing throughout.
	stop := make(chan struct{})
	uwg.Add(1)
	go func() {
		defer uwg.Done()
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			tup := [][]int64{{20000 + i, 20001 + i}}
			if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: tup}); err != nil {
				t.Error(err)
				return
			}
			if _, err := e.Update(UpdateRequest{Relation: "E", Deletes: tup}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				delay := time.Duration(rng.Intn(15)) * time.Millisecond
				timer := time.AfterFunc(delay, cancel)
				_, err := e.DoCtx(ctx, Request{
					Query:   "E(a,b), E(b,c), E(c,d), E(d,a)",
					Workers: 2,
				})
				timer.Stop()
				cancel()
				if err != nil && !errors.Is(err, context.Canceled) {
					errs <- fmt.Errorf("client %d query %d: %w", c, i, err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	uwg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No leaked workers: the goroutine count settles back to (about)
	// the baseline once cancelled queries have drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The engine is still healthy: a fresh query answers and matches a
	// fresh engine at the final snapshot.
	resp, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewEngine(e.DB(), Config{Workers: 1})
	want, err := fresh.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != want.Count {
		t.Fatalf("post-stress count %d, fresh engine says %d", resp.Count, want.Count)
	}
}
