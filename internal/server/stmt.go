package server

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro/internal/cq"
	"repro/internal/stats"
)

// Stmt is a prepared statement: one query parsed, validated and
// compiled once, executable any number of times. The compiled plan
// lives in the engine's plan cache keyed by the versions of the
// relations the query touches, so a Stmt never serves a stale plan —
// after an Update the next execution recompiles against the new
// versions (and re-warms the cache) transparently. A Stmt is safe for
// concurrent use; executions are independent requests with private
// caches and counters, exactly as Engine.DoCtx.
//
// The request passed to Prepare supplies the statement's default mode,
// cache policy, parallelism, limit and timeout; per-execution overrides
// go through Do.
type Stmt struct {
	e     *Engine
	id    string
	q     *cq.Query
	text  string   // canonical query text (q.String())
	names []string // sorted distinct relation names, for the version sub-vector
	def   Request  // defaults from the prepare request (Query and Stmt cleared)
}

// Prepare parses, validates and compiles req.Query, registers the
// statement under a fresh id (execute over HTTP as {"stmt": id}), and
// returns it. The compile warms the plan cache, so the first execution
// is already a plan-cache hit; the compile's work (including any shared
// trie builds) is charged to the engine's lifetime counters. req's
// execution fields become the statement's defaults.
func (e *Engine) Prepare(req Request) (*Stmt, error) {
	if req.Stmt != "" {
		return nil, fmt.Errorf("server: cannot prepare from prepared statement %q", req.Stmt)
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		return nil, err
	}
	if _, err := e.policyOf(req); err != nil {
		return nil, err
	}
	// Surface every deferred-execution error now, not on the first of
	// many executions: an unknown default mode or semiring would fail
	// each Do, and streaming is a per-execution transport choice, not
	// a default.
	switch req.Mode {
	case "", "count", "eval", "aggregate":
	default:
		return nil, fmt.Errorf("server: cannot prepare mode %q (want count, eval or aggregate; request streaming per execution)", req.Mode)
	}
	switch req.Semiring {
	case "", "count", "sum", "min":
	default:
		return nil, fmt.Errorf("server: cannot prepare semiring %q (want count, sum or min)", req.Semiring)
	}
	s := &Stmt{e: e, q: q, text: q.String(), names: relNames(q), def: req}
	s.def.Query = ""

	// Refuse a full registry before compiling: a leaking client looping
	// Prepare past the cap must not keep paying (and charging the
	// shared caches for) full plan compilations. The registration below
	// re-checks under the same lock, so the cap itself stays exact.
	maxPrepared := e.cfg.MaxPrepared
	if maxPrepared <= 0 {
		maxPrepared = DefaultMaxPrepared
	}
	capErr := func() error {
		return fmt.Errorf("server: %d prepared statements already registered (close unused ones or raise Config.MaxPrepared)", maxPrepared)
	}
	e.stmtMu.Lock()
	full := len(e.stmts) >= maxPrepared
	e.stmtMu.Unlock()
	if full {
		return nil, capErr()
	}

	// Compile once now: surfaces plan errors at prepare time and leaves
	// the plan resident for the first execution. The work is merged
	// into the lifetime counters either way — it happened.
	db, vec, _, ep := e.snapshotFor(s.names)
	var c stats.Counters
	_, _, _, err = e.planFor(q, s.text, s.names, vec, db, s.def, &c)
	e.finish(ep)
	e.life.Merge(&c)
	if err != nil {
		return nil, err
	}

	e.stmtMu.Lock()
	if len(e.stmts) >= maxPrepared {
		e.stmtMu.Unlock()
		return nil, capErr()
	}
	e.stmtSeq++
	s.id = fmt.Sprintf("s%d", e.stmtSeq)
	e.stmts[s.id] = s
	e.stmtMu.Unlock()
	return s, nil
}

// Stmt returns the prepared statement registered under id.
func (e *Engine) Stmt(id string) (*Stmt, error) {
	e.stmtMu.Lock()
	defer e.stmtMu.Unlock()
	s, ok := e.stmts[id]
	if !ok {
		return nil, fmt.Errorf("server: no prepared statement %q", id)
	}
	return s, nil
}

// ID returns the statement's registry id.
func (s *Stmt) ID() string { return s.id }

// Text returns the canonical query text.
func (s *Stmt) Text() string { return s.text }

// Close unregisters the statement: later executions by id fail, and
// in-process handles stop pinning it. Cached plans are unaffected (they
// belong to the plan cache, not the statement). Closing twice is a
// no-op.
func (s *Stmt) Close() {
	s.e.stmtMu.Lock()
	defer s.e.stmtMu.Unlock()
	if s.e.stmts[s.id] == s {
		delete(s.e.stmts, s.id)
	}
}

// merge overlays per-execution overrides on the statement's defaults:
// any field set in over wins, zero fields keep the prepared value.
// Query/Stmt are identity fields and never merged.
func (s *Stmt) merge(over Request) Request {
	req := s.def
	if over.Mode != "" {
		req.Mode = over.Mode
	}
	if over.Workers != 0 {
		req.Workers = over.Workers
	}
	if over.StreamWorkers != 0 {
		req.StreamWorkers = over.StreamWorkers
	}
	if over.BatchSize != 0 {
		req.BatchSize = over.BatchSize
	}
	if over.CacheCapacity != 0 {
		req.CacheCapacity = over.CacheCapacity
	}
	if over.CacheSupport != 0 {
		req.CacheSupport = over.CacheSupport
	}
	if over.CacheEviction != "" {
		req.CacheEviction = over.CacheEviction
	}
	if over.NoCache {
		req.NoCache = true
	}
	if over.Limit != 0 {
		req.Limit = over.Limit
	}
	if over.Semiring != "" {
		req.Semiring = over.Semiring
	}
	if over.TimeoutMS != 0 {
		req.TimeoutMS = over.TimeoutMS
	}
	if over.NoOrderCost {
		req.NoOrderCost = true
	}
	if over.Orderer != "" {
		req.Orderer = over.Orderer
	}
	return req
}

// Do executes the prepared statement, applying over's non-zero
// execution fields on top of the prepare-time defaults. It is
// Engine.DoCtx minus parsing — with a warm cache, minus TD selection
// and plan compilation too.
func (s *Stmt) Do(ctx context.Context, over Request) (*Response, error) {
	return s.e.exec(ctx, s.q, s.text, s.names, s.merge(over))
}

// CountCtx counts |q(D)| at the engine's current snapshot under the
// statement's default policy.
func (s *Stmt) CountCtx(ctx context.Context) (int64, error) {
	resp, err := s.Do(ctx, Request{Mode: "count"})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Rows streams the result set one assignment at a time, aligned with
// the plan's variable order (each yielded slice is a fresh copy the
// consumer may retain). Unlike eval-mode Do, nothing is buffered and no
// limit applies: rows are produced as the scan finds them (by the
// sequential engine, or by the sharded streaming producer when the
// statement's StreamWorkers default asks for parallelism — the row
// sequence is identical either way), so the first row arrives before
// the join finishes and an abandoned iteration (break) stops the scan
// immediately. When ctx is cancelled — or the statement's default
// timeout passes — the stream ends with a final (nil, ctx.Err()) pair
// after the rows already yielded; iterate with
// `for row, err := range stmt.Rows(ctx)` and check err before using
// row.
//
// Snapshot contract: the iteration pins one epoch for its whole
// lifetime. The stream enters the epoch tracker before the first row
// and answers from that single consistent snapshot — a concurrent
// Update installs new versions for later queries but never mutates the
// live stream's view, and the versions the stream reads stay resident
// (pinned against registry reclamation) until the iteration ends. The
// epoch is released exactly once, whether the stream drains, errors, or
// is abandoned by break/return — but until then it holds superseded
// versions alive, so break or return from the loop promptly.
func (s *Stmt) Rows(ctx context.Context) iter.Seq2[[]int64, error] {
	return func(yield func([]int64, error) bool) {
		stopped := false
		err := s.stream(ctx, s.def, nil, func(mu []int64) bool {
			if !yield(append([]int64(nil), mu...), nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// stream is the shared streaming execution under Rows and
// Engine.StreamCtx: sequential eval of req against the current
// snapshot, header invoked once with the plan's variable order (may be
// nil), row per assignment (reused slice; return false to stop). The
// row callbacks run as the scan finds matches — nothing is buffered.
// The returned error is the compile failure or ctx's error; a consumer
// stop is a normal completion.
func (s *Stmt) stream(ctx context.Context, req Request, header func(order []string), row func(mu []int64) bool) error {
	pol, err := s.e.policyOf(req)
	if err != nil {
		return err
	}
	// Streaming never uses the buffering EvalParallel path: the Workers
	// default applies to Do executions only. Parallelism here comes from
	// the dedicated StreamWorkers knob and runs the sharded streaming
	// producer, whose merged output is byte-identical for every worker
	// count (core.EvalStreamCtx).
	pol.Workers = 1
	streamWorkers := req.StreamWorkers
	if streamWorkers == 0 {
		streamWorkers = s.e.cfg.StreamWorkers
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	db, vec, _, ep := s.e.snapshotFor(s.names)
	defer s.e.finish(ep)

	// As in exec: lifetime counters absorb the work even when the
	// stream fails mid-scan; only Queries is success-only.
	var c stats.Counters
	defer func() { s.e.life.Merge(&c) }()
	plan, _, _, err := s.e.planFor(s.q, s.text, s.names, vec, db, req, &c)
	if err != nil {
		return err
	}
	if header != nil {
		header(plan.Order())
	}
	if _, err := plan.EvalStreamCtx(ctx, pol, streamWorkers, row); err != nil {
		return err
	}
	s.e.queries.Add(1)
	return nil
}

// StreamSummary is StreamCtx's trailer: how many rows were delivered
// and whether the request's (or prepared default's) limit cut the
// enumeration short. Partial and Missing are set only by a cluster
// coordinator serving an allow_partial stream over a degraded fleet
// (the delivered rows are the exact merge of the surviving shards);
// a single engine always leaves them zero.
type StreamSummary struct {
	Count     int64
	Truncated bool
	Partial   bool
	Missing   []string
}

// StreamCtx executes one eval request in streaming form: header is
// invoked once with the plan's variable order, then row per result
// tuple (reused slice — copy to retain; return false to stop early).
// The request may name a prepared statement ("stmt") or carry query
// text; either way the plan comes from the plan cache when warm, and
// the effective limit — the override if set, else the statement's
// prepared default — stops the scan early with Truncated set. With no
// effective limit the whole result streams (unlike buffered eval's
// default cap); a negative override clears a prepared default limit
// explicitly, since 0 means "unset" in the merge. This is the
// transport-agnostic core of the HTTP NDJSON endpoint.
func (e *Engine) StreamCtx(ctx context.Context, req Request, header func(order []string), row func(mu []int64) bool) (StreamSummary, error) {
	var s *Stmt
	merged := req
	if req.Stmt != "" {
		if req.Query != "" {
			return StreamSummary{}, fmt.Errorf("server: request names both a query and prepared statement %q", req.Stmt)
		}
		var err error
		if s, err = e.Stmt(req.Stmt); err != nil {
			return StreamSummary{}, err
		}
		merged = s.merge(req)
	} else {
		q, err := cq.Parse(req.Query)
		if err != nil {
			return StreamSummary{}, err
		}
		s = &Stmt{e: e, q: q, text: q.String(), names: relNames(q), def: req}
	}

	var sum StreamSummary
	limit := int64(merged.Limit)
	err := s.stream(ctx, merged, header, func(mu []int64) bool {
		if limit > 0 && sum.Count >= limit {
			// Only now is truncation a fact, not a guess: a row beyond
			// the limit exists (a result of exactly limit rows ends the
			// scan naturally and stays Truncated == false).
			sum.Truncated = true
			return false
		}
		sum.Count++
		return row(mu) // a consumer stop still counts the delivered row
	})
	return sum, err
}
