package server

import (
	"testing"

	"repro/internal/leapfrog"
	"repro/internal/relation"
)

// TestPlanCachePerEntryInvalidation pins the precision contract of the
// registry evict hook: dropping one (relation, column order) registry
// entry invalidates exactly the plans embedding that entry — plans
// over the same relation's other, still-resident orders stay warm, as
// do plans embedding no shared index at all. (The coarse by-name drop
// this replaced recompiled all of them; see ROADMAP's closed
// "plan cache × trie-budget precision" item.)
func TestPlanCachePerEntryInvalidation(t *testing.T) {
	pc := newPlanCache(8)
	relE := relation.MustNew("E", 2, [][]int64{{1, 2}})
	relR := relation.MustNew("R", 2, [][]int64{{2, 3}})
	permID, permSwap := "\x00\x01", "\x01\x00"

	keyA := planKey{text: "a"}
	keyB := planKey{text: "b"}
	keyC := planKey{text: "c"}
	keyD := planKey{text: "d"}
	pc.put(keyA, nil, []string{"E"}, []leapfrog.SourceEntry{{Rel: relE, Perm: permID}}, 0)
	pc.put(keyB, nil, []string{"E"}, []leapfrog.SourceEntry{{Rel: relE, Perm: permSwap}}, 0)
	pc.put(keyC, nil, []string{"E"}, nil, 0) // private (constant-specialized) tries only
	pc.put(keyD, nil, []string{"R"}, []leapfrog.SourceEntry{{Rel: relR, Perm: permID}}, 0)

	pc.invalidateEmbedding(relE, permID)

	if _, ok := pc.get(keyA); ok {
		t.Fatal("plan embedding the evicted (E, id) entry survived")
	}
	for _, tc := range []struct {
		key  planKey
		what string
	}{
		{keyB, "plan over E's other, still-resident order"},
		{keyC, "plan with no shared index"},
		{keyD, "plan over an unrelated relation"},
	} {
		if _, ok := pc.get(tc.key); !ok {
			t.Fatalf("%s was invalidated by an unrelated eviction", tc.what)
		}
	}
	if s := pc.stats(); s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want exactly 1", s.Invalidations)
	}

	// Relation identity, not name, scopes the match: evicting a *newer*
	// version's entry must not drop plans compiled against the old one.
	relE2 := relation.MustNew("E", 2, [][]int64{{1, 2}, {3, 4}})
	pc.invalidateEmbedding(relE2, permSwap)
	if _, ok := pc.get(keyB); !ok {
		t.Fatal("eviction of another version's entry dropped an unrelated plan")
	}
}

// TestEngineEvictionKeepsOtherOrdersWarm drives the same contract
// through a live engine: with a byte budget that forces the registry to
// evict E's index when R's is built, the cached plan over R must stay
// warm afterwards while only the plan pinning the evicted index
// recompiles.
func TestEngineEvictionKeepsOtherOrdersWarm(t *testing.T) {
	db := relation.NewDB()
	g := testDB()
	e1, err := g.Get("E")
	if err != nil {
		t.Fatal(err)
	}
	db.Put(e1)
	db.Put(e1.Rename("R"))
	// Budget: one resident index at a time.
	e := NewEngine(db, Config{Workers: 1, TrieBudget: 1})
	if _, err := e.Do(Request{Query: "E(x,y), E(y,z), E(x,z)"}); err != nil {
		t.Fatal(err)
	}
	// R's index build evicts E's; E's plan must drop, R's must stay.
	if _, err := e.Do(Request{Query: "R(x,y), R(y,z), R(x,z)"}); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Do(Request{Query: "R(x,y), R(y,z), R(x,z)"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Stats.PlanCached {
		t.Fatal("R's plan did not survive the eviction that only touched E")
	}
}
