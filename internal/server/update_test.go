package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/relation"
)

func TestEngineUpdateBasics(t *testing.T) {
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{
		{1, 2}, {2, 3}, {3, 1},
	}))
	e := NewEngine(db, Config{Workers: 1})

	before, err := e.Do(Request{Query: "E(x,y), E(y,z), E(z,x)"})
	if err != nil {
		t.Fatal(err)
	}
	if before.Count != 3 {
		t.Fatalf("triangle count = %d, want 3 (cyclic rotations)", before.Count)
	}

	// Deleting one edge breaks the triangle; inserting a reverse edge
	// builds new 2-cycles.
	res, err := e.Update(UpdateRequest{
		Relation: "E",
		Inserts:  [][]int64{{2, 1}},
		Deletes:  [][]int64{{3, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied || res.Version != 1 || res.Tuples != 3 {
		t.Fatalf("update result = %+v", res)
	}
	after, err := e.Do(Request{Query: "E(x,y), E(y,z), E(z,x)"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != 0 {
		t.Fatalf("post-delete triangle count = %d, want 0", after.Count)
	}
	two, err := e.Do(Request{Query: "E(x,y), E(y,x)"})
	if err != nil {
		t.Fatal(err)
	}
	if two.Count != 2 {
		t.Fatalf("2-cycle count = %d, want 2", two.Count)
	}

	// No-op deltas are reported but change nothing.
	res, err = e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied || res.Version != 1 {
		t.Fatalf("no-op update result = %+v", res)
	}

	// Unknown relations and bad arities are errors.
	if _, err := e.Update(UpdateRequest{Relation: "R"}); err == nil {
		t.Fatal("update of unknown relation accepted")
	}
	if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{1}}}); err == nil {
		t.Fatal("bad-arity insert accepted")
	}

	s := e.Stats()
	if s.Updates != 1 || s.Lifetime.DeltaApplies != 1 {
		t.Fatalf("stats updates=%d deltaApplies=%d, want 1/1", s.Updates, s.Lifetime.DeltaApplies)
	}
	if len(s.Relations) != 1 || s.Relations[0].Version != 1 {
		t.Fatalf("relation inventory = %+v, want E at version 1", s.Relations)
	}
}

// TestEngineWarmUpdatePatchesNotRebuilds is the steady-state acceptance
// test: a warm engine under small deltas answers every post-update
// query through copy-on-write patches — zero full trie rebuilds — with
// counts bit-identical to a fresh engine loaded at the same version.
func TestEngineWarmUpdatePatchesNotRebuilds(t *testing.T) {
	db := testDB()
	// A huge compact fraction keeps every delta below the crossover.
	e := NewEngine(db, Config{Workers: 1, CompactFraction: 1e9})
	const query = "E(x,y), E(y,z), E(x,z)"
	if _, err := e.Do(Request{Query: query}); err != nil {
		t.Fatal(err) // warm the base indices
	}

	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 12; step++ {
		ins := [][]int64{{rng.Int63n(150), rng.Int63n(150)}, {rng.Int63n(150), rng.Int63n(150)}}
		var del [][]int64
		cur := e.DB()
		rel, _ := cur.Get("E")
		del = append(del, append([]int64(nil), rel.Tuple(rng.Intn(rel.Len()))...))
		if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: ins, Deletes: del}); err != nil {
			t.Fatal(err)
		}
		resp, err := e.Do(Request{Query: query})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Stats.Counters.TrieBuilds != 0 {
			t.Fatalf("step %d: post-update query performed %d full trie rebuilds (patches=%d)",
				step, resp.Stats.Counters.TrieBuilds, resp.Stats.Counters.TriePatches)
		}
		if resp.Stats.Counters.TriePatches == 0 {
			t.Fatalf("step %d: post-update query derived no patched tries", step)
		}
		if want := seqCount(t, e.DB(), query); resp.Count != want {
			t.Fatalf("step %d: patched count %d, fresh engine says %d", step, resp.Count, want)
		}
	}
	s := e.Stats()
	if s.Registry.Patches == 0 || s.Registry.Builds == 0 {
		t.Fatalf("registry saw patches=%d builds=%d", s.Registry.Patches, s.Registry.Builds)
	}
	if s.LiveVersions != 2 { // current patched version + its base
		t.Fatalf("live versions = %d, want 2", s.LiveVersions)
	}
}

// TestEngineCompactionCrossover pins the other side of the crossover: a
// delta larger than the compact fraction installs a compacted version
// whose indices are rebuilt in full, once, and later small deltas patch
// against the new base.
func TestEngineCompactionCrossover(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1}) // default fraction 0.25
	const query = "E(x,y), E(y,z), E(x,z)"
	if _, err := e.Do(Request{Query: query}); err != nil {
		t.Fatal(err)
	}
	rel, _ := e.DB().Get("E")
	big := make([][]int64, 0, rel.Len()/2)
	for i := 0; i < rel.Len()/2; i++ {
		big = append(big, []int64{int64(1000 + i), int64(2000 + i)})
	}
	res, err := e.Update(UpdateRequest{Relation: "E", Inserts: big})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.PendingDelta != 0 {
		t.Fatalf("oversized delta did not compact: %+v", res)
	}
	resp, err := e.Do(Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Counters.TrieBuilds == 0 || resp.Stats.Counters.TriePatches != 0 {
		t.Fatalf("compacted version: builds=%d patches=%d, want full rebuilds only",
			resp.Stats.Counters.TrieBuilds, resp.Stats.Counters.TriePatches)
	}
	// Small follow-up delta: back to patching, against the new base.
	if _, err := e.Update(UpdateRequest{Relation: "E", Deletes: [][]int64{{1000, 2000}}}); err != nil {
		t.Fatal(err)
	}
	resp, err = e.Do(Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Counters.TrieBuilds != 0 || resp.Stats.Counters.TriePatches == 0 {
		t.Fatalf("post-compaction delta: builds=%d patches=%d, want patches only",
			resp.Stats.Counters.TrieBuilds, resp.Stats.Counters.TriePatches)
	}
}

// TestEngineEpochPinsOldVersions white-boxes the reclamation protocol:
// a superseded version's registry indices survive exactly as long as a
// query that entered before the update is still in flight.
func TestEngineEpochPinsOldVersions(t *testing.T) {
	e := NewEngine(testDB(), Config{Workers: 1, CompactFraction: -1}) // compact always: no shared bases
	const query = "E(x,y), E(y,x)"
	if _, err := e.Do(Request{Query: query}); err != nil {
		t.Fatal(err) // resident indices for version 0
	}

	_, ep := e.snapshot() // a query in flight at version 0
	if _, err := e.Update(UpdateRequest{Relation: "E", Inserts: [][]int64{{7777, 7778}}}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Registry.Released != 0 {
		t.Fatalf("pinned version reclaimed early: %+v", s.Registry)
	}
	if s.LiveVersions != 2 { // new version + pinned old one
		t.Fatalf("live versions = %d, want 2 while pinned", s.LiveVersions)
	}

	e.finish(ep) // the old query drains
	s = e.Stats()
	if s.Registry.Released == 0 {
		t.Fatalf("drained version not reclaimed: %+v", s.Registry)
	}
	if s.LiveVersions != 1 {
		t.Fatalf("live versions = %d, want 1 after drain", s.LiveVersions)
	}
}

// TestEngineConcurrentUpdatesQueriesEvictions is the satellite -race
// stress test: updaters, queriers and LRU byte pressure run together,
// and every observed count must be explainable by a database snapshot
// that was current at some instant during that query — verified against
// fresh sequential runs after the storm.
func TestEngineConcurrentUpdatesQueriesEvictions(t *testing.T) {
	db := dataset.TriadicPA(120, 3, 0.4, 911).DB(false)
	// The budget holds only a few indices, so version turnover plus the
	// two attribute orders of E force evictions throughout.
	e := NewEngine(db, Config{Workers: 2, TrieBudget: 12_000, CompactFraction: 0.6})

	queries := []string{
		"E(x,y), E(y,z), E(x,z)",
		"E(a,b), E(b,c)",
		"E(x,y), E(y,x)",
	}

	// history[i] is the database after the i-th serialized update;
	// history[0] is the load state. Appends are atomic with the install
	// (updMu wraps Update), so a query running while len(history)
	// moves from h0 to h1 must have seen one of history[h0-1 : h1+1].
	var updMu sync.Mutex
	history := []*relation.DB{db}
	histLen := func() int {
		updMu.Lock()
		defer updMu.Unlock()
		return len(history)
	}

	const updaters, queriers = 2, 4
	const updatesPer, queriesPer = 12, 16
	type obs struct {
		query  string
		count  int64
		h0, h1 int
	}
	var obsMu sync.Mutex
	var observed []obs
	errs := make(chan error, updaters*updatesPer+queriers*queriesPer)

	var wg sync.WaitGroup
	var applied int64 // applied (non-no-op) deltas, guarded by updMu
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < updatesPer; i++ {
				ins := [][]int64{{rng.Int63n(130), rng.Int63n(130)}}
				var del [][]int64
				if rng.Intn(2) == 0 {
					rel, _ := e.DB().Get("E")
					if rel.Len() > 0 {
						del = append(del, append([]int64(nil), rel.Tuple(rng.Intn(rel.Len()))...))
					}
				}
				updMu.Lock()
				res, err := e.Update(UpdateRequest{Relation: "E", Inserts: ins, Deletes: del})
				if err == nil && res.Applied {
					applied++
					history = append(history, e.DB())
				}
				updMu.Unlock()
				if err != nil {
					errs <- fmt.Errorf("update %d: %w", i, err)
					return
				}
			}
		}(int64(1000 + u))
	}
	for qg := 0; qg < queriers; qg++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesPer; i++ {
				q := queries[rng.Intn(len(queries))]
				h0 := histLen()
				resp, err := e.Do(Request{Query: q})
				if err != nil {
					errs <- fmt.Errorf("query %d (%s): %w", i, q, err)
					return
				}
				h1 := histLen()
				obsMu.Lock()
				observed = append(observed, obs{query: q, count: resp.Count, h0: h0, h1: h1})
				obsMu.Unlock()
			}
		}(int64(2000 + qg))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Replay: every count must match a fresh sequential run against one
	// of the snapshots current during the query's execution window.
	truth := make(map[string]int64) // (snapshot idx, query) -> count
	lookup := func(h int, q string) int64 {
		key := fmt.Sprintf("%d|%s", h, q)
		if v, ok := truth[key]; ok {
			return v
		}
		v := seqCount(t, history[h], q)
		truth[key] = v
		return v
	}
	for i, o := range observed {
		lo := o.h0 - 1
		hi := o.h1 // inclusive; h1 counts appends completed by query end
		if hi > len(history)-1 {
			hi = len(history) - 1
		}
		ok := false
		for h := lo; h <= hi; h++ {
			if lookup(h, o.query) == o.count {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("observation %d: count %d for %q matches no snapshot in window [%d,%d]",
				i, o.count, o.query, lo, hi)
		}
	}

	s := e.Stats()
	if s.Updates != applied || applied == 0 {
		t.Errorf("updates = %d, want %d applied", s.Updates, applied)
	}
	if s.Lifetime.DeltaApplies != s.Updates {
		t.Errorf("lifetime DeltaApplies = %d, updates = %d", s.Lifetime.DeltaApplies, s.Updates)
	}
	if s.Registry.Evictions == 0 {
		t.Error("byte pressure produced no evictions")
	}
	if s.Registry.Bytes < 0 {
		t.Errorf("registry bytes went negative: %+v", s.Registry)
	}
	if s.LiveVersions < 1 || s.LiveVersions > 2 {
		t.Errorf("live versions after drain = %d, want 1 or 2 (current [+ base])", s.LiveVersions)
	}
	if s.Queries != int64(queriers*queriesPer) {
		t.Errorf("queries = %d, want %d", s.Queries, queriers*queriesPer)
	}
}
