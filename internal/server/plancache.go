package server

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/leapfrog"
	"repro/internal/relation"
)

// DefaultPlanCacheSize is the plan cache capacity (compiled plans) when
// the config does not name one.
const DefaultPlanCacheSize = 128

// planKey identifies one compiled plan: the canonical query text, the
// plan-affecting options, and the version sub-vector of the relations
// the query touches. Keying the cache on the version vector is what
// makes invalidation free: an update to relation R changes R's version
// number, so every later execution of a query touching R assembles a
// key no stale entry can match — the old plan is unreachable by
// construction, without flushing, and without touching plans for
// queries that never read R. Stale entries age out through the LRU
// list like any other cold entry.
type planKey struct {
	// text is the canonical query text (cq.Query.String of the parsed
	// query, so formatting variants of one query share an entry).
	text string
	// opts canonicalizes the plan-affecting request options (today:
	// whether order-cost probing was skipped; execution-only knobs like
	// workers or cache policy never enter the key).
	opts string
	// vers is the version sub-vector: "name:num" per relation the query
	// references, sorted by name.
	vers string
}

// planOptsKey canonicalizes the plan-affecting options of a request.
func planOptsKey(req Request) string {
	if req.NoOrderCost {
		return "noc"
	}
	return ""
}

// versionVector renders the version sub-vector for the given sorted
// relation names against the versions map (callers pass the engine's
// installed-versions map while holding verMu, so the vector is atomic
// with the snapshot it describes). Relations the engine does not store
// (unknown names surface as compile errors later) render as "?".
func versionVector(names []string, versions map[string]relation.Version) string {
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte(':')
		if v, ok := versions[name]; ok {
			fmt.Fprintf(&b, "%d", v.Num)
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}

// PlanCacheStats reports the plan cache's lifetime activity and current
// residency, served under "plans" in GET /stats.
type PlanCacheStats struct {
	// Hits and Misses count executions served by a cached plan and
	// executions that had to compile (parse + TD selection + plan
	// compilation), respectively.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to respect the capacity bound;
	// Invalidations counts entries dropped eagerly by updates to a
	// relation they touch (their keys were already unreachable — the
	// drop releases the trie indices the stale plans pinned).
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// Size and Capacity describe the current residency (Capacity 0:
	// the cache is disabled).
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// String renders the stats as a one-line summary for logs and CLIs.
func (s PlanCacheStats) String() string {
	return fmt.Sprintf("size=%d capacity=%d hits=%d misses=%d evictions=%d invalidations=%d",
		s.Size, s.Capacity, s.Hits, s.Misses, s.Evictions, s.Invalidations)
}

// planCache is an LRU cache of compiled plans. Cached plans are stored
// with a nil counters sink; executions attach per-request accounting
// via Plan.WithCounters, so one resident plan serves any number of
// concurrent requests. Concurrent misses on one key may compile the
// same plan twice and both store it — compilation is pure, so the
// duplicate work is benign and not worth a singleflight (the expensive
// shared part, trie construction, is already singleflighted by the trie
// registry underneath).
type planCache struct {
	mu          sync.Mutex
	cap         int
	entries     map[planKey]*planEntry
	head        *planEntry // least recently used (next victim)
	tail        *planEntry // most recently used
	hits        int64
	misses      int64
	evicted     int64
	invalidated int64
}

type planEntry struct {
	key  planKey
	plan *core.Plan
	// names are the relations the plan touches (the sub-vector's
	// components), so an update can drop exactly the entries it staled.
	names []string
	// embedded are the shared-registry indices the plan pins (one per
	// (relation, column order) drawn at compile time), so a registry
	// byte-budget eviction can drop exactly the plans holding the
	// evicted index and no others.
	embedded   []leapfrog.SourceEntry
	prev, next *planEntry
}

// newPlanCache returns an LRU plan cache holding at most capacity
// compiled plans; capacity <= 0 returns nil (caching disabled — every
// execution compiles, the E14 control arm).
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{cap: capacity, entries: make(map[planKey]*planEntry)}
}

// get returns the cached plan for key, refreshing its recency. The miss
// is counted here so hit-rate accounting lives in one place.
func (pc *planCache) get(key planKey) (*core.Plan, bool) {
	if pc == nil {
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.hits++
	if pc.tail != e {
		pc.unlink(e)
		pc.pushBack(e)
	}
	return e.plan, true
}

// put stores a compiled plan, evicting the least recently used entry
// past capacity. Re-storing an existing key (two requests raced on the
// same miss) keeps the incumbent. names are the relations the plan
// touches (retained for invalidateTouching); embedded the registry
// entries it pins (retained for invalidateEmbedding).
func (pc *planCache) put(key planKey, p *core.Plan, names []string, embedded []leapfrog.SourceEntry) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, ok := pc.entries[key]; ok {
		return
	}
	e := &planEntry{key: key, plan: p, names: names, embedded: embedded}
	pc.entries[key] = e
	pc.pushBack(e)
	for len(pc.entries) > pc.cap {
		victim := pc.head
		pc.unlink(victim)
		delete(pc.entries, victim.key)
		pc.evicted++
	}
}

// invalidateTouching drops every cached plan that references the given
// relation. Correctness never needs this — an update bumps the
// relation's version, so stale keys are unreachable by construction —
// but dropping them eagerly releases the trie indices the stale plans
// pin, keeping resident memory proportional to the *live* plan set
// under continuous updates instead of to the LRU capacity. (A query
// racing the update may re-insert one entry for the superseded
// snapshot it already admitted against; it is unreachable afterwards
// and ages out through the LRU like any cold entry.)
func (pc *planCache) invalidateTouching(name string) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, e := range pc.entries {
		for _, n := range e.names {
			if n == name {
				pc.unlink(e)
				delete(pc.entries, key)
				pc.invalidated++
				break
			}
		}
	}
}

// invalidateEmbedding drops every cached plan that embeds the registry
// entry (rel, perm) — the trie over rel whose levels follow the column
// permutation perm (trie.PermSig). It is the registry's byte-budget
// evict hook: only plans pinning the evicted index recompile, while
// plans over the same relation's other, still-resident orders stay
// warm (the precision the coarse by-name drop of earlier versions
// lacked). Matching is by relation identity, not name, so a plan over
// a newer version of the relation never matches an older version's
// eviction.
//
// Plans over a *patched* version V2 record only {V2, perm}, so a
// budget eviction of the base entry {V1, perm} — whose level arrays
// V2's patched trie shares — leaves them warm. That is sound for the
// byte bound: the registry deliberately charges a patched entry its
// full MemoryBytes including the shared base arrays (see
// Trie.MemoryBytes), so the pinned memory stays covered by the
// resident {V2, perm} entry, and evicting *that* entry reaches these
// plans through this hook as usual.
func (pc *planCache) invalidateEmbedding(rel *relation.Relation, perm string) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, e := range pc.entries {
		for _, emb := range e.embedded {
			if emb.Rel == rel && emb.Perm == perm {
				pc.unlink(e)
				delete(pc.entries, key)
				pc.invalidated++
				break
			}
		}
	}
}

func (pc *planCache) stats() PlanCacheStats {
	if pc == nil {
		return PlanCacheStats{}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits,
		Misses:        pc.misses,
		Evictions:     pc.evicted,
		Invalidations: pc.invalidated,
		Size:          len(pc.entries),
		Capacity:      pc.cap,
	}
}

func (pc *planCache) pushBack(e *planEntry) {
	e.prev, e.next = pc.tail, nil
	if pc.tail != nil {
		pc.tail.next = e
	} else {
		pc.head = e
	}
	pc.tail = e
}

func (pc *planCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
