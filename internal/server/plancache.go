package server

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/leapfrog"
	"repro/internal/relation"
)

// DefaultPlanCacheSize is the plan cache capacity (compiled plans) when
// the config does not name one.
const DefaultPlanCacheSize = 128

// planKey identifies one compiled plan: the canonical query text, the
// plan-affecting options, and the version sub-vector of the relations
// the query touches. Keying the cache on the version vector is what
// makes invalidation free: an update to relation R changes R's version
// number, so every later execution of a query touching R assembles a
// key no stale entry can match — the old plan is unreachable by
// construction, without flushing, and without touching plans for
// queries that never read R. Stale entries age out through the LRU
// list like any other cold entry.
type planKey struct {
	// text is the canonical query text (cq.Query.String of the parsed
	// query, so formatting variants of one query share an entry).
	text string
	// opts canonicalizes the plan-affecting request options (today:
	// whether order-cost probing was skipped; execution-only knobs like
	// workers or cache policy never enter the key).
	opts string
	// vers is the version sub-vector: "name:num" per relation the query
	// references, sorted by name.
	vers string
}

// planOptsKey canonicalizes the plan-affecting options of a request:
// the resolved orderer and whether order-cost probing was skipped
// (docs/PLANNING.md enumerates which options are plan-affecting and
// why). ord must be the resolved strategy, request overlaid on engine
// default, so one query's cost and greedy plans coexist as distinct
// entries while requests spelling the default explicitly share the
// default's entry.
func planOptsKey(req Request, ord core.Orderer) string {
	var parts []string
	if req.NoOrderCost {
		parts = append(parts, "noc")
	}
	if ord != "" && ord != core.OrdererCost {
		parts = append(parts, "ord="+string(ord))
	}
	return strings.Join(parts, ",")
}

// DefaultAdaptThreshold is the relative divergence of observed trie
// accesses from a cached plan's baseline that counts as divergent when
// the config does not name one: 0.5 means an execution touching the
// index 50% more (or less) than the entry's baseline execution.
const DefaultAdaptThreshold = 0.5

// DefaultAdaptRuns is the number of consecutive divergent cache-hit
// executions that trigger a re-plan when the config does not name one.
const DefaultAdaptRuns = 3

// adaptMaxReplans caps the re-plans one cache entry may trigger over
// its lifetime, so a workload that genuinely alternates between two
// traffic regimes cannot make the engine recompile forever.
const adaptMaxReplans = 3

// adaptiveState is the feedback record of one cached plan under the
// adaptive orderer. All fields are guarded by planCache.mu.
type adaptiveState struct {
	// predicted is the orderer's implicit traffic prediction at compile
	// time — Instance.EstimateOrderCost, in estimated prefix visits. It
	// is recorded for observability (not compared against observations
	// directly: its units are estimates, not accesses).
	predicted float64
	// baseline is the first observed stats.Counters.TrieAccesses of a
	// cache-hit execution (0: not yet observed). Divergence is measured
	// relative to it; a re-plan clears it so the swapped plan
	// re-baselines.
	baseline int64
	// divergent counts consecutive cache-hit executions beyond the
	// threshold; any conforming execution resets it.
	divergent int
	// demote accumulates the variables of always-empty intersection
	// levels seen during divergent executions — the divergence-informed
	// order hint handed to the re-plan.
	demote []string
	// replans counts re-plans already performed for this entry.
	replans int
}

// versionVector renders the version sub-vector for the given sorted
// relation names against the versions map (callers pass the engine's
// installed-versions map while holding verMu, so the vector is atomic
// with the snapshot it describes). Relations the engine does not store
// (unknown names surface as compile errors later) render as "?".
func versionVector(names []string, versions map[string]relation.Version) string {
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(name)
		b.WriteByte(':')
		if v, ok := versions[name]; ok {
			fmt.Fprintf(&b, "%d", v.Num)
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}

// PlanCacheStats reports the plan cache's lifetime activity and current
// residency, served under "plans" in GET /stats.
type PlanCacheStats struct {
	// Hits and Misses count executions served by a cached plan and
	// executions that had to compile (parse + TD selection + plan
	// compilation), respectively.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to respect the capacity bound;
	// Invalidations counts entries dropped eagerly by updates to a
	// relation they touch (their keys were already unreachable — the
	// drop releases the trie indices the stale plans pinned).
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// Replans counts adaptive re-plans: cached plans recompiled with a
	// divergence-informed order and swapped in place after observed trie
	// traffic diverged from the entry's baseline for
	// Config.AdaptRuns consecutive executions.
	Replans int64 `json:"replans"`
	// Size and Capacity describe the current residency (Capacity 0:
	// the cache is disabled).
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// String renders the stats as a one-line summary for logs and CLIs.
func (s PlanCacheStats) String() string {
	return fmt.Sprintf("size=%d capacity=%d hits=%d misses=%d evictions=%d invalidations=%d replans=%d",
		s.Size, s.Capacity, s.Hits, s.Misses, s.Evictions, s.Invalidations, s.Replans)
}

// planCache is an LRU cache of compiled plans. Cached plans are stored
// with a nil counters sink; executions attach per-request accounting
// via Plan.WithCounters, so one resident plan serves any number of
// concurrent requests. Concurrent misses on one key may compile the
// same plan twice and both store it — compilation is pure, so the
// duplicate work is benign and not worth a singleflight (the expensive
// shared part, trie construction, is already singleflighted by the trie
// registry underneath).
type planCache struct {
	mu          sync.Mutex
	cap         int
	entries     map[planKey]*planEntry
	head        *planEntry // least recently used (next victim)
	tail        *planEntry // most recently used
	hits        int64
	misses      int64
	evicted     int64
	invalidated int64
	replans     int64
}

type planEntry struct {
	key  planKey
	plan *core.Plan
	// names are the relations the plan touches (the sub-vector's
	// components), so an update can drop exactly the entries it staled.
	names []string
	// embedded are the shared-registry indices the plan pins (one per
	// (relation, column order) drawn at compile time), so a registry
	// byte-budget eviction can drop exactly the plans holding the
	// evicted index and no others.
	embedded []leapfrog.SourceEntry
	// adapt is the adaptive-orderer feedback record; only entries whose
	// key carries the adaptive orderer ever observe into it.
	adapt      adaptiveState
	prev, next *planEntry
}

// newPlanCache returns an LRU plan cache holding at most capacity
// compiled plans; capacity <= 0 returns nil (caching disabled — every
// execution compiles, the E14 control arm).
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{cap: capacity, entries: make(map[planKey]*planEntry)}
}

// get returns the cached plan for key, refreshing its recency. The miss
// is counted here so hit-rate accounting lives in one place.
func (pc *planCache) get(key planKey) (*core.Plan, bool) {
	if pc == nil {
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.hits++
	if pc.tail != e {
		pc.unlink(e)
		pc.pushBack(e)
	}
	return e.plan, true
}

// put stores a compiled plan, evicting the least recently used entry
// past capacity. Re-storing an existing key (two requests raced on the
// same miss) keeps the incumbent. names are the relations the plan
// touches (retained for invalidateTouching); embedded the registry
// entries it pins (retained for invalidateEmbedding); predicted the
// orderer's traffic estimate at compile time (retained as the adaptive
// feedback record's prediction).
func (pc *planCache) put(key planKey, p *core.Plan, names []string, embedded []leapfrog.SourceEntry, predicted float64) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if _, ok := pc.entries[key]; ok {
		return
	}
	e := &planEntry{key: key, plan: p, names: names, embedded: embedded,
		adapt: adaptiveState{predicted: predicted}}
	pc.entries[key] = e
	pc.pushBack(e)
	for len(pc.entries) > pc.cap {
		victim := pc.head
		pc.unlink(victim)
		delete(pc.entries, victim.key)
		pc.evicted++
	}
}

// invalidateTouching drops every cached plan that references the given
// relation. Correctness never needs this — an update bumps the
// relation's version, so stale keys are unreachable by construction —
// but dropping them eagerly releases the trie indices the stale plans
// pin, keeping resident memory proportional to the *live* plan set
// under continuous updates instead of to the LRU capacity. (A query
// racing the update may re-insert one entry for the superseded
// snapshot it already admitted against; it is unreachable afterwards
// and ages out through the LRU like any cold entry.)
func (pc *planCache) invalidateTouching(name string) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, e := range pc.entries {
		for _, n := range e.names {
			if n == name {
				pc.unlink(e)
				delete(pc.entries, key)
				pc.invalidated++
				break
			}
		}
	}
}

// invalidateEmbedding drops every cached plan that embeds the registry
// entry (rel, perm) — the trie over rel whose levels follow the column
// permutation perm (trie.PermSig). It is the registry's byte-budget
// evict hook: only plans pinning the evicted index recompile, while
// plans over the same relation's other, still-resident orders stay
// warm (the precision the coarse by-name drop of earlier versions
// lacked). Matching is by relation identity, not name, so a plan over
// a newer version of the relation never matches an older version's
// eviction.
//
// Plans over a *patched* version V2 record only {V2, perm}, so a
// budget eviction of the base entry {V1, perm} — whose level arrays
// V2's patched trie shares — leaves them warm. That is sound for the
// byte bound: the registry deliberately charges a patched entry its
// full MemoryBytes including the shared base arrays (see
// Trie.MemoryBytes), so the pinned memory stays covered by the
// resident {V2, perm} entry, and evicting *that* entry reaches these
// plans through this hook as usual.
func (pc *planCache) invalidateEmbedding(rel *relation.Relation, perm string) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key, e := range pc.entries {
		for _, emb := range e.embedded {
			if emb.Rel == rel && emb.Perm == perm {
				pc.unlink(e)
				delete(pc.entries, key)
				pc.invalidated++
				break
			}
		}
	}
}

// observe feeds one cache-hit execution's outcome into the entry's
// adaptive feedback record: observed is the execution's
// stats.Counters.TrieAccesses, emptyVars the variables of the depths
// whose every attempted intersection was empty (core.AlwaysEmptyLevels
// mapped through the plan's order). The first observation sets the
// baseline; later ones diverging from it by more than threshold
// (relative) bump a consecutive-divergence counter and accumulate
// emptyVars, and once the counter reaches runs the method returns the
// accumulated demote set and true — the caller must re-plan with it and
// swap via replace. At most adaptMaxReplans re-plans are signalled per
// entry. Missing entries (evicted or invalidated since the hit) are
// ignored.
func (pc *planCache) observe(key planKey, observed int64, emptyVars []string, threshold float64, runs int) ([]string, bool) {
	if pc == nil {
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		return nil, false
	}
	a := &e.adapt
	if a.baseline == 0 {
		a.baseline = observed
		return nil, false
	}
	div := float64(observed-a.baseline) / float64(a.baseline)
	if div < 0 {
		div = -div
	}
	if div <= threshold {
		a.divergent = 0
		return nil, false
	}
	a.divergent++
	for _, v := range emptyVars {
		seen := false
		for _, d := range a.demote {
			if d == v {
				seen = true
				break
			}
		}
		if !seen {
			a.demote = append(a.demote, v)
		}
	}
	if a.divergent < runs || a.replans >= adaptMaxReplans {
		return nil, false
	}
	a.divergent = 0
	a.replans++
	return append([]string(nil), a.demote...), true
}

// replace swaps a re-planned entry's plan in place — same key (the
// query, options and snapshot are unchanged; only the variable order
// moved), fresh plan, names and pinned registry entries — and
// re-baselines the feedback record so the swapped plan's own traffic
// becomes the new reference. Counted in Replans. If the entry vanished
// meanwhile (evicted, invalidated), the swap is dropped: the next miss
// compiles fresh anyway.
func (pc *planCache) replace(key planKey, p *core.Plan, names []string, embedded []leapfrog.SourceEntry, predicted float64) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[key]
	if !ok {
		return
	}
	e.plan = p
	e.names = names
	e.embedded = embedded
	e.adapt.predicted = predicted
	e.adapt.baseline = 0
	e.adapt.divergent = 0
	pc.replans++
}

func (pc *planCache) stats() PlanCacheStats {
	if pc == nil {
		return PlanCacheStats{}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits,
		Misses:        pc.misses,
		Evictions:     pc.evicted,
		Invalidations: pc.invalidated,
		Replans:       pc.replans,
		Size:          len(pc.entries),
		Capacity:      pc.cap,
	}
}

func (pc *planCache) pushBack(e *planEntry) {
	e.prev, e.next = pc.tail, nil
	if pc.tail != nil {
		pc.tail.next = e
	} else {
		pc.head = e
	}
	pc.tail = e
}

func (pc *planCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
