package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	e := NewEngine(testDB(), Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return srv, e
}

func postQuery(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	return resp, decoded
}

func TestHTTPQueryRoundTrip(t *testing.T) {
	srv, e := newTestServer(t)
	resp, body := postQuery(t, srv, `{"query": "E(x,y), E(y,z), E(x,z)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %v", resp.StatusCode, body)
	}
	if body["mode"] != "count" {
		t.Fatalf("mode = %v", body["mode"])
	}
	want := seqCount(t, e.DB(), "E(x,y), E(y,z), E(x,z)")
	if int64(body["count"].(float64)) != want {
		t.Fatalf("count = %v, want %d", body["count"], want)
	}
	if _, ok := body["stats"].(map[string]any); !ok {
		t.Fatalf("response missing stats: %v", body)
	}
}

func TestHTTPQueryEval(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, body := postQuery(t, srv, `{"query": "E(x,y), E(y,z)", "mode": "eval", "limit": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %v", resp.StatusCode, body)
	}
	tuples, ok := body["tuples"].([]any)
	if !ok || len(tuples) != 2 {
		t.Fatalf("tuples = %v, want 2", body["tuples"])
	}
	if body["truncated"] != true {
		t.Fatalf("truncated = %v, want true", body["truncated"])
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"parse error", `{"query": "nope("}`},
		{"bad json", `{"query":`},
		{"unknown field", `{"query": "E(x,y)", "bogus": 1}`},
		{"unknown mode", `{"query": "E(x,y)", "mode": "drop"}`},
	} {
		resp, body := postQuery(t, srv, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}

	// Wrong method on every route answers the documented JSON error
	// shape, not the mux's text/plain 405.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	var e405 map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e405); err != nil {
		t.Fatalf("GET /query: non-JSON 405 body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || e405["error"] == "" {
		t.Fatalf("GET /query: status %d body %v, want JSON 405", resp.StatusCode, e405)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET /query 405 Content-Type = %q", ct)
	}
	resp, err = http.Post(srv.URL+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPStatsAndHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	if _, body := postQuery(t, srv, `{"query": "E(x,y), E(y,x)"}`); body["error"] != nil {
		t.Fatalf("seed query failed: %v", body["error"])
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s EngineStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Queries != 1 {
		t.Fatalf("stats queries = %d, want 1", s.Queries)
	}
	if s.Registry.Builds == 0 {
		t.Fatal("stats report no trie builds after a query")
	}
	if len(s.Relations) != 1 {
		t.Fatalf("relations = %+v", s.Relations)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}
}

func TestHTTPPrepareAndExecuteByID(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/prepare", "application/json",
		strings.NewReader(`{"query": "E(x,y), E(y,z), E(x,z)", "workers": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var prep map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&prep); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: status %d body %v", resp.StatusCode, prep)
	}
	id, _ := prep["stmt"].(string)
	if id == "" || prep["query"] == "" {
		t.Fatalf("prepare response %v", prep)
	}

	// Execute by id: the prepare-time compile makes even the first
	// execution a plan-cache hit.
	hresp, body := postQuery(t, srv, `{"stmt": "`+id+`"}`)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("by-id query: status %d body %v", hresp.StatusCode, body)
	}
	stats, _ := body["stats"].(map[string]any)
	if stats == nil || stats["plan_cached"] != true {
		t.Fatalf("by-id execution not plan-cached: %v", body)
	}

	// The hit/miss history shows up in /stats.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var s EngineStats
	if err := json.NewDecoder(sresp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Plans.Hits == 0 || s.Plans.Misses == 0 || s.Prepared != 1 {
		t.Fatalf("stats plans = %+v prepared = %d, want hits+misses and 1 stmt", s.Plans, s.Prepared)
	}

	// Close over HTTP; executing the closed id fails.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/prepare/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /prepare/%s: status %d", id, dresp.StatusCode)
	}
	gone, body := postQuery(t, srv, `{"stmt": "`+id+`"}`)
	if gone.StatusCode != http.StatusBadRequest {
		t.Fatalf("closed stmt: status %d body %v", gone.StatusCode, body)
	}
	req2, _ := http.NewRequest(http.MethodDelete, srv.URL+"/prepare/nope", nil)
	nresp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown stmt: status %d, want 404", nresp.StatusCode)
	}
}

func TestHTTPStreamNDJSON(t *testing.T) {
	srv, e := newTestServer(t)
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"query": "E(x,y), E(y,z), E(x,z)", "mode": "stream"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	dec := json.NewDecoder(resp.Body)
	var header struct {
		Order []string `json:"order"`
	}
	if err := dec.Decode(&header); err != nil || len(header.Order) != 3 {
		t.Fatalf("header = %+v, %v", header, err)
	}
	var rows int64
	var summary map[string]any
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		switch {
		case line["row"] != nil:
			if len(line["row"].([]any)) != len(header.Order) {
				t.Fatalf("row %v misaligned with order %v", line["row"], header.Order)
			}
			rows++
		case line["summary"] != nil:
			summary = line["summary"].(map[string]any)
		case line["error"] != nil:
			t.Fatalf("stream error: %v", line["error"])
		}
	}
	want := seqCount(t, e.DB(), "E(x,y), E(y,z), E(x,z)")
	if rows != want {
		t.Fatalf("streamed %d rows, want %d", rows, want)
	}
	if summary == nil || int64(summary["count"].(float64)) != want || summary["truncated"] != false {
		t.Fatalf("summary = %v, want count %d", summary, want)
	}

	// A limit stops the stream early and flags truncation.
	lresp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"query": "E(x,y), E(y,z), E(x,z)", "mode": "stream", "limit": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	ldec := json.NewDecoder(lresp.Body)
	var lrows int64
	var lsummary map[string]any
	for ldec.More() {
		var line map[string]any
		if err := ldec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line["row"] != nil {
			lrows++
		}
		if line["summary"] != nil {
			lsummary = line["summary"].(map[string]any)
		}
	}
	if lrows != 2 || lsummary == nil || lsummary["truncated"] != true {
		t.Fatalf("limited stream: %d rows, summary %v", lrows, lsummary)
	}

	// Compile failures surface as an ordinary JSON error status, not a
	// broken stream.
	eresp, ebody := postQuery(t, srv, `{"query": "Z(x,y)", "mode": "stream"}`)
	if eresp.StatusCode != http.StatusBadRequest || ebody["error"] == nil {
		t.Fatalf("stream compile error: status %d body %v", eresp.StatusCode, ebody)
	}

	// Streaming a prepared statement honors the prepare-time default
	// limit when the stream request sets none.
	presp, err := http.Post(srv.URL+"/prepare", "application/json",
		strings.NewReader(`{"query": "E(x,y), E(y,z)", "limit": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	var prep map[string]any
	if err := json.NewDecoder(presp.Body).Decode(&prep); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"stmt": "`+prep["stmt"].(string)+`", "mode": "stream"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sdec := json.NewDecoder(sresp.Body)
	var srows int64
	var ssummary map[string]any
	for sdec.More() {
		var line map[string]any
		if err := sdec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line["row"] != nil {
			srows++
		}
		if line["summary"] != nil {
			ssummary = line["summary"].(map[string]any)
		}
	}
	if srows != 4 || ssummary == nil || ssummary["truncated"] != true {
		t.Fatalf("prepared-default limit ignored by stream: %d rows, summary %v", srows, ssummary)
	}
}

func TestHTTPTimeoutStatus(t *testing.T) {
	e := NewEngine(dataset.CliqueUnion(500, 280, 18, 1.6, 9).DB(false), Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)

	// Warm the plan so the 1ms budget lands mid-join.
	warm, body := postQuery(t, srv, `{"query": "E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)"}`)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d %v", warm.StatusCode, body)
	}
	resp, body := postQuery(t, srv, `{"query": "E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)", "timeout_ms": 1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timeout status = %d (%v), want 504", resp.StatusCode, body)
	}
}

func TestHTTPUpdateRoundTrip(t *testing.T) {
	srv, e := newTestServer(t)
	// Warm, mutate over the wire, and re-query: the count must move and
	// match a fresh sequential run at the new version.
	if _, body := postQuery(t, srv, `{"query": "E(x,y), E(y,x)"}`); body["error"] != nil {
		t.Fatalf("warm query failed: %v", body["error"])
	}

	resp, err := http.Post(srv.URL+"/update", "application/json",
		strings.NewReader(`{"relation": "E", "inserts": [[9001, 9002], [9002, 9001]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res["applied"] != true || res["version"].(float64) != 1 {
		t.Fatalf("update response: status %d body %v", resp.StatusCode, res)
	}

	_, body := postQuery(t, srv, `{"query": "E(x,y), E(y,x)"}`)
	want := seqCount(t, e.DB(), "E(x,y), E(y,x)")
	if int64(body["count"].(float64)) != want {
		t.Fatalf("post-update count = %v, fresh run says %d", body["count"], want)
	}

	// Errors come back as 4xx JSON.
	for _, bad := range []string{
		`{"relation": "R", "inserts": [[1,2]]}`,
		`{"relation": "E", "inserts": [[1]]}`,
		`{"relation": "E", "bogus": 1}`,
	} {
		resp, err := http.Post(srv.URL+"/update", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	getResp, err := http.Get(srv.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: status %d, want 405", getResp.StatusCode)
	}

	// /stats surfaces the update and version accounting.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["updates"].(float64) != 1 || stats["live_versions"] == nil {
		t.Fatalf("stats missing update accounting: %v", stats)
	}
	reg, ok := stats["registry"].(map[string]any)
	if !ok || reg["bytes"] == nil || reg["evictions"] == nil || reg["patches"] == nil {
		t.Fatalf("stats registry lacks residency fields: %v", stats["registry"])
	}
}
