package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	e := NewEngine(testDB(), Config{Workers: 2})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return srv, e
}

func postQuery(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	return resp, decoded
}

func TestHTTPQueryRoundTrip(t *testing.T) {
	srv, e := newTestServer(t)
	resp, body := postQuery(t, srv, `{"query": "E(x,y), E(y,z), E(x,z)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %v", resp.StatusCode, body)
	}
	if body["mode"] != "count" {
		t.Fatalf("mode = %v", body["mode"])
	}
	want := seqCount(t, e.DB(), "E(x,y), E(y,z), E(x,z)")
	if int64(body["count"].(float64)) != want {
		t.Fatalf("count = %v, want %d", body["count"], want)
	}
	if _, ok := body["stats"].(map[string]any); !ok {
		t.Fatalf("response missing stats: %v", body)
	}
}

func TestHTTPQueryEval(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, body := postQuery(t, srv, `{"query": "E(x,y), E(y,z)", "mode": "eval", "limit": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %v", resp.StatusCode, body)
	}
	tuples, ok := body["tuples"].([]any)
	if !ok || len(tuples) != 2 {
		t.Fatalf("tuples = %v, want 2", body["tuples"])
	}
	if body["truncated"] != true {
		t.Fatalf("truncated = %v, want true", body["truncated"])
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"parse error", `{"query": "nope("}`},
		{"bad json", `{"query":`},
		{"unknown field", `{"query": "E(x,y)", "bogus": 1}`},
		{"unknown mode", `{"query": "E(x,y)", "mode": "drop"}`},
	} {
		resp, body := postQuery(t, srv, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}

	// Wrong method on every route.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPStatsAndHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	if _, body := postQuery(t, srv, `{"query": "E(x,y), E(y,x)"}`); body["error"] != nil {
		t.Fatalf("seed query failed: %v", body["error"])
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s EngineStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Queries != 1 {
		t.Fatalf("stats queries = %d, want 1", s.Queries)
	}
	if s.Registry.Builds == 0 {
		t.Fatal("stats report no trie builds after a query")
	}
	if len(s.Relations) != 1 {
		t.Fatalf("relations = %+v", s.Relations)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}
}

func TestHTTPUpdateRoundTrip(t *testing.T) {
	srv, e := newTestServer(t)
	// Warm, mutate over the wire, and re-query: the count must move and
	// match a fresh sequential run at the new version.
	if _, body := postQuery(t, srv, `{"query": "E(x,y), E(y,x)"}`); body["error"] != nil {
		t.Fatalf("warm query failed: %v", body["error"])
	}

	resp, err := http.Post(srv.URL+"/update", "application/json",
		strings.NewReader(`{"relation": "E", "inserts": [[9001, 9002], [9002, 9001]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res["applied"] != true || res["version"].(float64) != 1 {
		t.Fatalf("update response: status %d body %v", resp.StatusCode, res)
	}

	_, body := postQuery(t, srv, `{"query": "E(x,y), E(y,x)"}`)
	want := seqCount(t, e.DB(), "E(x,y), E(y,x)")
	if int64(body["count"].(float64)) != want {
		t.Fatalf("post-update count = %v, fresh run says %d", body["count"], want)
	}

	// Errors come back as 4xx JSON.
	for _, bad := range []string{
		`{"relation": "R", "inserts": [[1,2]]}`,
		`{"relation": "E", "inserts": [[1]]}`,
		`{"relation": "E", "bogus": 1}`,
	} {
		resp, err := http.Post(srv.URL+"/update", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	getResp, err := http.Get(srv.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: status %d, want 405", getResp.StatusCode)
	}

	// /stats surfaces the update and version accounting.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["updates"].(float64) != 1 || stats["live_versions"] == nil {
		t.Fatalf("stats missing update accounting: %v", stats)
	}
	reg, ok := stats["registry"].(map[string]any)
	if !ok || reg["bytes"] == nil || reg["evictions"] == nil || reg["patches"] == nil {
		t.Fatalf("stats registry lacks residency fields: %v", stats["registry"])
	}
}
