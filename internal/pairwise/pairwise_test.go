package pairwise

import (
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
)

func checkPairwise(t *testing.T, q *cq.Query, db *relation.DB) {
	t.Helper()
	want, err := naive.Count(q, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Count(q, db, nil)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if res.Count != want {
		t.Errorf("pairwise count = %d, want %d", res.Count, want)
	}
	if res.PeakIntermediate < int(res.Count) && want > 0 {
		t.Errorf("peak intermediate %d below final size %d", res.PeakIntermediate, res.Count)
	}

	wantTuples, err := naive.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	if err := Eval(q, db, nil, func(tup []int64) bool {
		got = append(got, append([]int64(nil), tup...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return relation.CompareTuples(got[i], got[j]) < 0 })
	if len(got) != len(wantTuples) {
		t.Fatalf("pairwise eval: %d tuples, want %d", len(got), len(wantTuples))
	}
	for i := range got {
		if relation.CompareTuples(got[i], wantTuples[i]) != 0 {
			t.Fatalf("pairwise eval tuple %d = %v, want %v", i, got[i], wantTuples[i])
		}
	}
}

func TestPairwiseAgreesWithNaive(t *testing.T) {
	g := dataset.ErdosRenyi(24, 0.15, 31)
	db := g.DB(false)
	for _, q := range []*cq.Query{
		queries.Path(3), queries.Path(4),
		queries.Cycle(3), queries.Cycle(4), queries.Cycle(5),
		queries.Lollipop(3, 1),
		queries.Random(5, 0.5, 23),
	} {
		checkPairwise(t, q, db)
	}
}

func TestPairwiseWithConstants(t *testing.T) {
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 2}, {2, 3}, {3, 4}, {1, 3}}))
	q := cq.New(
		cq.Atom{Rel: "E", Args: []cq.Term{cq.C(1), cq.V("y")}},
		cq.NewAtom("E", "y", "z"),
	)
	checkPairwise(t, q, db)
}

func TestPairwiseDisconnectedPattern(t *testing.T) {
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 2}, {3, 4}}))
	// Two independent edges: a cross product.
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("E", "c", "d"))
	checkPairwise(t, q, db)
}

func TestPairwiseEmptyRelation(t *testing.T) {
	db := relation.NewDB(
		relation.MustNew("E", 2, [][]int64{{1, 2}}),
		relation.MustNew("F", 2, nil),
	)
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("F", "b", "c"))
	res, err := Count(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Errorf("count over empty relation = %d, want 0", res.Count)
	}
}

func TestPairwiseAccountsAccesses(t *testing.T) {
	g := dataset.ErdosRenyi(20, 0.2, 3)
	db := g.DB(false)
	var c stats.Counters
	if _, err := Count(queries.Cycle(4), db, &c); err != nil {
		t.Fatal(err)
	}
	if c.Total() == 0 {
		t.Error("pairwise performed no counted accesses")
	}
}
