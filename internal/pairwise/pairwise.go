// Package pairwise implements the traditional pairwise-join baseline
// standing in for the PostgreSQL comparison point of §5.3.5: a
// Selinger-style left-deep plan of hash joins with greedy ordering
// (smallest connected atom next), fully materializing every intermediate
// result. Its blow-up on cyclic queries is precisely the behaviour
// worst-case-optimal joins avoid.
package pairwise

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
)

// intermediate is a materialized result over a schema of variable names.
type intermediate struct {
	vars   []string
	tuples [][]int64
}

// Result reports a pairwise execution.
type Result struct {
	// Count is |q(D)|.
	Count int64
	// PeakIntermediate is the largest materialized intermediate tuple
	// count (the memory-pressure proxy).
	PeakIntermediate int
}

// Count runs the pairwise plan and returns |q(D)| together with the peak
// intermediate size. counters may be nil.
func Count(q *cq.Query, db *relation.DB, counters *stats.Counters) (Result, error) {
	inter, err := run(q, db, counters)
	if err != nil {
		return Result{}, err
	}
	return Result{Count: int64(len(inter.res.tuples)), PeakIntermediate: inter.peak}, nil
}

// Eval runs the pairwise plan and emits tuples over q.Vars() order.
func Eval(q *cq.Query, db *relation.DB, counters *stats.Counters, emit func([]int64) bool) error {
	inter, err := run(q, db, counters)
	if err != nil {
		return err
	}
	qvars := q.Vars()
	pos := make([]int, len(qvars))
	for i, v := range qvars {
		pos[i] = indexOf(inter.res.vars, v)
	}
	out := make([]int64, len(qvars))
	for _, t := range inter.res.tuples {
		for i, p := range pos {
			out[i] = t[p]
		}
		if !emit(out) {
			return nil
		}
	}
	return nil
}

type runResult struct {
	res  *intermediate
	peak int
}

func run(q *cq.Query, db *relation.DB, counters *stats.Counters) (*runResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Derive atom relations (constants/repeats handled once).
	type atomRel struct {
		vars []string
		rel  *relation.Relation
	}
	var atoms []atomRel
	for _, atom := range q.Atoms {
		rel, err := db.Get(atom.Rel)
		if err != nil {
			return nil, err
		}
		if rel.Arity() != len(atom.Args) {
			return nil, fmt.Errorf("pairwise: atom %s has %d args, relation has arity %d",
				atom, len(atom.Args), rel.Arity())
		}
		derived, vars, err := leapfrog.DeriveAtomRelation(rel, atom)
		if err != nil {
			return nil, err
		}
		if derived.Len() == 0 {
			return &runResult{res: &intermediate{vars: q.Vars()}}, nil
		}
		if len(vars) == 0 {
			continue // satisfied constant guard
		}
		atoms = append(atoms, atomRel{vars: vars, rel: derived})
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("pairwise: query has no variable atoms")
	}

	used := make([]bool, len(atoms))
	// Greedy left-deep order: start from the smallest relation; then
	// repeatedly join the smallest unused atom sharing a variable with
	// the current schema (falling back to a cross product when the
	// pattern is disconnected).
	start := 0
	for i := range atoms {
		if atoms[i].rel.Len() < atoms[start].rel.Len() {
			start = i
		}
	}
	used[start] = true
	cur := &intermediate{vars: append([]string(nil), atoms[start].vars...), tuples: atoms[start].rel.Tuples()}
	if counters != nil {
		counters.TupleAccesses += int64(len(cur.tuples) * len(cur.vars))
	}
	peak := len(cur.tuples)
	for remaining := len(atoms) - 1; remaining > 0; remaining-- {
		next := -1
		nextShares := false
		for i := range atoms {
			if used[i] {
				continue
			}
			shares := sharesVar(cur.vars, atoms[i].vars)
			switch {
			case next == -1,
				shares && !nextShares,
				shares == nextShares && atoms[i].rel.Len() < atoms[next].rel.Len():
				next = i
				nextShares = shares
			}
		}
		used[next] = true
		cur = hashJoin(cur, atoms[next].vars, atoms[next].rel, counters)
		if len(cur.tuples) > peak {
			peak = len(cur.tuples)
		}
	}
	return &runResult{res: cur, peak: peak}, nil
}

// hashJoin joins the intermediate with an atom relation on their shared
// variables, building the hash table on the atom side.
func hashJoin(left *intermediate, rightVars []string, right *relation.Relation, counters *stats.Counters) *intermediate {
	var sharedL, sharedR []int
	var newR []int
	for ri, v := range rightVars {
		if li := indexOf(left.vars, v); li >= 0 {
			sharedL = append(sharedL, li)
			sharedR = append(sharedR, ri)
		} else {
			newR = append(newR, ri)
		}
	}
	outVars := append([]string(nil), left.vars...)
	for _, ri := range newR {
		outVars = append(outVars, rightVars[ri])
	}

	table := make(map[string][][]int64)
	key := make([]int64, len(sharedR))
	for i := 0; i < right.Len(); i++ {
		t := right.Tuple(i)
		for j, ri := range sharedR {
			key[j] = t[ri]
		}
		k := relation.Key(key)
		table[k] = append(table[k], t)
		if counters != nil {
			counters.HashAccesses++
			counters.TupleAccesses += int64(len(t))
		}
	}

	out := &intermediate{vars: outVars}
	lkey := make([]int64, len(sharedL))
	for _, lt := range left.tuples {
		for j, li := range sharedL {
			lkey[j] = lt[li]
		}
		if counters != nil {
			counters.HashAccesses++
			counters.TupleAccesses += int64(len(sharedL))
		}
		for _, rt := range table[relation.Key(lkey)] {
			tup := make([]int64, 0, len(outVars))
			tup = append(tup, lt...)
			for _, ri := range newR {
				tup = append(tup, rt[ri])
			}
			if counters != nil {
				counters.TupleAccesses += int64(len(tup))
			}
			out.tuples = append(out.tuples, tup)
		}
	}
	return out
}

func sharesVar(a, b []string) bool {
	for _, v := range b {
		if indexOf(a, v) >= 0 {
			return true
		}
	}
	return false
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
