package core

import (
	"context"

	"repro/internal/leapfrog"
)

// This file implements the paper's §6 extension direction "general
// aggregate operators (e.g., based on the work of Joglekar et al. [10]
// and Khamis et al. [11])": CLFTJ over an arbitrary commutative semiring.
// The count algorithm of Fig. 2 is the special case over (ℕ, +, ×) with
// unit weights; the same multivalued dependency that justifies caching
// counts justifies caching any semiring aggregate of the subtree, because
// the per-variable weights factor along the decomposition.

// Semiring is a commutative semiring (T, Add, Mul, Zero, One). Add and
// Mul must be associative and commutative, Mul must distribute over Add,
// Zero must annihilate Mul and be the unit of Add, One the unit of Mul.
type Semiring[T any] struct {
	Zero T
	One  T
	Add  func(a, b T) T
	Mul  func(a, b T) T
	// IsZero optionally recognizes the annihilator so cached dead
	// subtrees prune the scan (nil disables the optimization).
	IsZero func(a T) bool
}

// CountSemiring is the counting semiring (ℕ, +, ×).
func CountSemiring() Semiring[int64] {
	return Semiring[int64]{
		Zero:   0,
		One:    1,
		Add:    func(a, b int64) int64 { return a + b },
		Mul:    func(a, b int64) int64 { return a * b },
		IsZero: func(a int64) bool { return a == 0 },
	}
}

// SumProductSemiring is (ℝ, +, ×) over float64 weights.
func SumProductSemiring() Semiring[float64] {
	return Semiring[float64]{
		Zero:   0,
		One:    1,
		Add:    func(a, b float64) float64 { return a + b },
		Mul:    func(a, b float64) float64 { return a * b },
		IsZero: func(a float64) bool { return a == 0 },
	}
}

// TropicalSemiring is (ℝ∪{+∞}, min, +): Aggregate computes the minimum
// total weight over all result tuples (e.g., shortest witness).
func TropicalSemiring() Semiring[float64] {
	const inf = 1e300
	return Semiring[float64]{
		Zero: inf,
		One:  0,
		Add: func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		Mul:    func(a, b float64) float64 { return a + b },
		IsZero: func(a float64) bool { return a >= inf },
	}
}

// VarWeight assigns a semiring weight to variable depth d taking value v.
// The aggregate computed is ⊕ over all result tuples of ⊗ over depths of
// the weights — the FAQ/AJAR form restricted to per-variable factors.
type VarWeight[T any] func(d int, v int64) T

// UnitWeight weighs every assignment with One, making Aggregate over the
// counting semiring coincide with Count.
func UnitWeight[T any](sr Semiring[T]) VarWeight[T] {
	return func(int, int64) T { return sr.One }
}

// Aggregate runs cached trie-join aggregation over the plan: it returns
//
//	⊕_{µ ∈ q(D)} ⊗_{d} w(d, µ(x_d))
//
// using the same adhesion caches as Count — cached entries hold the
// subtree's aggregate for the adhesion assignment. With CountSemiring
// and UnitWeight this is exactly CachedTJCount.
func Aggregate[T any](p *Plan, policy Policy, sr Semiring[T], w VarWeight[T]) T {
	t, _ := AggregateCtx(context.Background(), p, policy, sr, w)
	return t
}

// AggregateCtx is Aggregate with cooperative cancellation: the scan
// polls ctx once per leapfrog.CancelCheckEvery iterator advances and
// unwinds promptly when it trips, returning sr.Zero and ctx's error.
// Nothing is cached from a cancelled run. A non-cancellable ctx runs
// the exact Aggregate code path. (A free function, not a Plan method,
// because Go methods cannot introduce type parameters.)
func AggregateCtx[T any](ctx context.Context, p *Plan, policy Policy, sr Semiring[T], w VarWeight[T]) (T, error) {
	if err := ctx.Err(); err != nil {
		return sr.Zero, err
	}
	if p.inst.Empty() {
		return sr.Zero, nil
	}
	e := &aggExec[T]{
		plan:   p,
		run:    leapfrog.NewRunnerCounters(p.inst, p.counters),
		sr:     sr,
		w:      w,
		total:  sr.Zero,
		intrmd: make([]T, p.numNodes),
		cm:     newManager[T](policy, p.numNodes, p.cacheable, p.counters, nil),
		cancel: leapfrog.NewCanceler(ctx),
	}
	e.mu = e.run.Assignment()
	e.rjoin(0, sr.One)
	e.run.Release()
	if err := e.cancel.Err(); err != nil {
		return sr.Zero, err
	}
	return e.total, nil
}

type aggExec[T any] struct {
	plan   *Plan
	run    *leapfrog.Runner
	mu     []int64
	sr     Semiring[T]
	w      VarWeight[T]
	intrmd []T
	cm     *manager[T]
	cancel *leapfrog.Canceler // nil never cancels
	total  T
}

func (e *aggExec[T]) rjoin(d int, f T) {
	p := e.plan
	if d == p.numVars {
		e.total = e.sr.Add(e.total, f)
		return
	}
	v := p.ownerOf[d]
	entering := p.bagFirst[d] && v != p.root && p.cacheable[v]
	var key Key
	if p.bagFirst[d] {
		e.intrmd[v] = e.sr.Zero
	}
	if entering {
		key = p.keyAt(v, e.mu)
		if val, ok := e.cm.lookup(v, key); ok {
			e.intrmd[v] = val
			if e.sr.IsZero == nil || !e.sr.IsZero(val) {
				e.rjoin(p.subtreeEnd[v]+1, e.sr.Mul(f, val))
			}
			return
		}
	}

	frog, ok := e.run.OpenDepth(d)
	for ok && !e.cancel.Poll() {
		a := frog.Key()
		e.mu[d] = a
		e.rjoin(d+1, e.sr.Mul(f, e.w(d, a)))
		if p.bagLast[d] {
			// Fold the children's aggregates with the weight of the
			// bag's own variable block under the current assignment.
			prod := e.sr.One
			for dd := p.firstVar[v]; dd <= p.lastVar[v]; dd++ {
				prod = e.sr.Mul(prod, e.w(dd, e.mu[dd]))
			}
			for _, c := range p.children[v] {
				prod = e.sr.Mul(prod, e.intrmd[c])
				if e.sr.IsZero != nil && e.sr.IsZero(prod) {
					break
				}
			}
			e.intrmd[v] = e.sr.Add(e.intrmd[v], prod)
		}
		ok = frog.Next()
	}
	e.run.CloseDepth(d)

	// A cancelled scan left intrmd[v] partial — never cache it.
	if entering && e.cancel.Err() == nil && e.cm.shouldCache(v, key) {
		e.cm.store(v, key, e.intrmd[v])
	}
}
