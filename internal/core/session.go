package core

import "repro/internal/leapfrog"

// Session keeps a plan's caches alive across executions. The paper
// frames CLFTJ's caches as dynamically sized memory the operator may
// grant or reclaim at any time (§5.3.3, multi-tenancy); a Session is the
// corresponding API: repeated counts over the same plan reuse earlier
// intermediate results, so later runs probe warm caches, and the
// capacity bound applies to the session as a whole.
type Session struct {
	plan   *Plan
	policy Policy
	cm     *manager[int64]
}

// NewSession returns a counting session with empty caches under the
// given policy.
func (p *Plan) NewSession(policy Policy) *Session {
	return &Session{
		plan:   p,
		policy: policy,
		cm:     newManager[int64](policy, p.numNodes, p.cacheable, p.counters, nil),
	}
}

// Count runs CachedTJCount reusing the session's caches.
func (s *Session) Count() CountResult {
	if s.plan.inst.Empty() {
		return CountResult{}
	}
	e := &countExec{
		plan:   s.plan,
		run:    leapfrog.NewRunnerCounters(s.plan.inst, s.plan.counters),
		intrmd: make([]int64, s.plan.numNodes),
		cm:     s.cm,
	}
	e.mu = e.run.Assignment()
	e.rjoin(0, 1)
	e.run.Release()
	return CountResult{Count: e.total, CachedEntries: s.cm.Entries()}
}

// CachedEntries reports the intermediate results currently resident.
func (s *Session) CachedEntries() int { return s.cm.Entries() }

// Shrink reduces the resident cache to at most maxEntries, evicting in
// the policy's eviction order — the "dynamically adjust the size of the
// cache" knob from the paper's abstract. It reports the resulting size.
func (s *Session) Shrink(maxEntries int) int {
	if maxEntries < 0 {
		maxEntries = 0
	}
	s.cm.evictUntil(maxEntries)
	return s.cm.Entries()
}
