package core

import (
	"context"

	"repro/internal/factorized"
	"repro/internal/leapfrog"
	"repro/internal/stats"
)

// EvalResult reports a cached evaluation.
type EvalResult struct {
	// Emitted is the number of result tuples delivered to the callback.
	Emitted int64
	// CachedEntries is the number of factorized entries resident in the
	// caches at the end of the run.
	CachedEntries int
	// Levels holds the per-depth intersection tallies (merged across
	// workers in parallel runs); see AlwaysEmptyLevels for the re-plan
	// feedback they carry. Empty on cancelled runs.
	Levels []LevelStat
}

// Eval runs the evaluation variant of CachedTJCount (§3.4): the ordinary
// LFTJ scan, but cached bags store factorized representations of their
// subtree's assignments, and a cache hit skips the subtree, leaving a
// pointer to the factorized set that is expanded when results are
// emitted. emit receives the full assignment indexed by depth (aligned
// with Plan.Order); the slice is reused, so emit must copy to retain.
// Returning false stops the enumeration.
func (p *Plan) Eval(policy Policy, emit func(mu []int64) bool) EvalResult {
	res, _ := p.EvalCtx(context.Background(), policy, emit)
	return res
}

// EvalCtx is Eval with cooperative cancellation: the scan polls ctx
// once per leapfrog.CancelCheckEvery iterator advances and unwinds
// promptly when it trips, returning ctx's error. Tuples already emitted
// stand (the stream simply ends early); nothing is cached from a
// cancelled run. A non-cancellable ctx runs the exact Eval code path.
func (p *Plan) EvalCtx(ctx context.Context, policy Policy, emit func(mu []int64) bool) (EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return EvalResult{}, err
	}
	if p.inst.Empty() {
		return EvalResult{}, nil
	}
	e := &evalExec{
		plan:    p,
		run:     leapfrog.NewRunnerCounters(p.inst, p.counters),
		ctrs:    p.counters,
		sets:    make([]factorized.Set, p.numNodes),
		collect: make([]bool, p.numNodes),
		intent:  make([]bool, p.numNodes),
		emit:    emit,
		cancel:  leapfrog.NewCanceler(ctx),
		cm: newManager[factorized.Set](policy, p.numNodes, p.cacheable, p.counters,
			func(s factorized.Set) int { return len(s) }),
		block: policy.leafBlock(),
	}
	e.mu = e.run.Assignment()
	e.rjoin(0)
	levels := mergeLevels(nil, e.run)
	e.run.Release()
	if err := e.cancel.Err(); err != nil {
		return EvalResult{Emitted: e.emitted}, err
	}
	return EvalResult{Emitted: e.emitted, CachedEntries: e.cm.Entries(), Levels: levels}, nil
}

// EvalTuples materializes the result in order-variable order; intended
// for tests and small results.
func (p *Plan) EvalTuples(policy Policy) [][]int64 {
	var out [][]int64
	p.Eval(policy, func(mu []int64) bool {
		out = append(out, append([]int64(nil), mu...))
		return true
	})
	return out
}

// EvalFactorized materializes the entire result as a factorized
// (d-)representation rooted at the plan's root bag (§3.4: the result may
// "constitute a factorized representation that may be decomposed upon
// need"). Cache hits link shared sub-sets, so heavily reused subtrees are
// stored once; Set.Count() equals |q(D)| while Set.NumEntries() is often
// far smaller. Decompress with ExpandFactorized.
func (p *Plan) EvalFactorized(policy Policy) factorized.Set {
	if p.inst.Empty() {
		return nil
	}
	e := &evalExec{
		plan:        p,
		run:         leapfrog.NewRunnerCounters(p.inst, p.counters),
		ctrs:        p.counters,
		sets:        make([]factorized.Set, p.numNodes),
		collect:     make([]bool, p.numNodes),
		intent:      make([]bool, p.numNodes),
		collectRoot: true,
		emit:        func([]int64) bool { return true },
		cm: newManager[factorized.Set](policy, p.numNodes, p.cacheable, p.counters,
			func(s factorized.Set) int { return len(s) }),
	}
	e.mu = e.run.Assignment()
	e.rjoin(0)
	e.run.Release()
	return e.sets[p.root]
}

// ExpandFactorized enumerates the tuples a factorized result produced by
// EvalFactorized represents, invoking emit with assignments aligned with
// Plan.Order (reused slice; copy to retain). Returning false stops.
func (p *Plan) ExpandFactorized(s factorized.Set, emit func(mu []int64) bool) {
	e := &evalExec{plan: p, ctrs: p.counters, mu: make([]int64, p.numVars), emit: emit}
	e.expandSet(p.root, s, func() bool { return emit(e.mu) })
}

type skipFrame struct {
	node int
	set  factorized.Set
}

type evalExec struct {
	plan        *Plan
	run         *leapfrog.Runner
	ctrs        *stats.Counters // this execution's sink (worker-local in parallel runs)
	mu          []int64
	sets        []factorized.Set // per bag: the set built/reused in the current iteration
	collect     []bool           // per bag: building its factorized set right now
	intent      []bool           // per bag: will store to cache on exit
	collectRoot bool             // materialize the whole result as a factorized set
	cm          *manager[factorized.Set]
	cancel      *leapfrog.Canceler // nil never cancels
	pending     []skipFrame
	emit        func([]int64) bool
	emitted     int64

	// Batched execution state (see batch.go; all nil/zero on the scalar
	// path). block is the deepest level's key block; batch, batchCap and
	// yieldB carry the columnar output of EvalBatchesCtx.
	block    []int64
	batch    *Batch
	batchCap int
	yieldB   func(*Batch) bool
}

// rjoin mirrors countExec.rjoin with factorized intermediates. It returns
// false when the consumer stopped the enumeration.
func (e *evalExec) rjoin(d int) bool {
	p := e.plan
	if d == p.numVars {
		return e.emitPending(0)
	}
	v := p.ownerOf[d]
	entering := p.bagFirst[d] && v != p.root && p.cacheable[v]
	var key Key
	if p.bagFirst[d] {
		e.intent[v] = false
		e.collect[v] = (p.parent[v] != -1 && e.collect[p.parent[v]]) ||
			(v == p.root && e.collectRoot)
		e.sets[v] = nil
	}
	if entering {
		key = p.keyAt(v, e.mu)
		if set, ok := e.cm.lookup(v, key); ok {
			e.sets[v] = set
			if len(set) == 0 {
				// Cached empty subtree: the prefix is dead.
				return true
			}
			e.pending = append(e.pending, skipFrame{node: v, set: set})
			cont := e.rjoin(p.subtreeEnd[v] + 1)
			e.pending = e.pending[:len(e.pending)-1]
			return cont
		}
		if e.cm.shouldCache(v, key) {
			// Decide the caching intent on entry: evaluation must build
			// the factorized set during the scan to have something to
			// store on exit (§3.4: intrmd is maintained only when needed).
			e.intent[v] = true
			e.collect[v] = true
		}
	}

	frog, ok := e.run.OpenDepth(d)
	cont := true
	switch {
	case e.block != nil && d == p.numVars-1 && e.batch != nil && !e.collect[v] && len(e.pending) == 0:
		// Bulk columnar leaf: every block key completes a plain tuple
		// (no pending cache-hit frames to expand, no factorized set to
		// build), so the whole block lands in the output batch with one
		// copy per column instead of per-tuple appends. Frog.NextBatch
		// replays the scalar Key/Next charges, and plain tuple emission
		// charges nothing on either path, so completed scans account
		// bit-identically to the scalar loop.
		for ok && cont && !e.cancel.Poll() {
			n := frog.NextBatch(e.block)
			ok = !frog.AtEnd()
			cont = e.appendRows(d, e.block[:n])
		}
	case e.block != nil && d == p.numVars-1:
		// Batched leaf advances feeding the scalar per-tuple epilogue
		// (pending expansions, factorized collection).
		for ok && cont && !e.cancel.Poll() {
			n := frog.NextBatch(e.block)
			ok = !frog.AtEnd()
			for j := 0; j < n && cont; j++ {
				e.mu[d] = e.block[j]
				cont = e.rjoin(d + 1)
				if p.bagLast[d] && e.collect[v] && cont {
					e.appendEntry(v)
				}
			}
		}
	default:
		for ok && cont && !e.cancel.Poll() {
			e.mu[d] = frog.Key()
			cont = e.rjoin(d + 1)
			if p.bagLast[d] && e.collect[v] && cont {
				e.appendEntry(v)
			}
			if cont {
				ok = frog.Next()
			}
		}
	}
	e.run.CloseDepth(d)

	// A cancelled scan left sets[v] partial — never cache it.
	if entering && e.intent[v] && cont && e.cancel.Err() == nil {
		e.cm.store(v, key, e.sets[v])
	}
	return cont
}

// appendEntry records one assignment of bag v's owned variables together
// with the children's factorized sets. Combinations with an empty child
// set represent zero tuples and are skipped.
func (e *evalExec) appendEntry(v int) {
	p := e.plan
	var children []factorized.Set
	if n := len(p.children[v]); n > 0 {
		children = make([]factorized.Set, n)
		for i, c := range p.children[v] {
			s := e.sets[c]
			if len(s) == 0 {
				return
			}
			children[i] = s
		}
	}
	vals := make([]int64, p.lastVar[v]-p.firstVar[v]+1)
	copy(vals, e.mu[p.firstVar[v]:p.lastVar[v]+1])
	if c := e.ctrs; c != nil {
		c.TupleAccesses += int64(len(vals))
	}
	e.sets[v] = append(e.sets[v], &factorized.Entry{Vals: vals, Children: children})
}

// emitPending expands the pending cache-hit skips (disjoint depth
// intervals along the current path) into the assignment buffer and emits
// every completed tuple.
func (e *evalExec) emitPending(i int) bool {
	if i == len(e.pending) {
		e.emitted++
		return e.emit(e.mu)
	}
	fr := e.pending[i]
	return e.expandSet(fr.node, fr.set, func() bool { return e.emitPending(i + 1) })
}

// expandSet enumerates the assignments a factorized set represents,
// writing them into the buffer at bag v's depth interval. It polls the
// canceler too: a cache hit emits whole subtrees without advancing any
// iterator, so without a check here a cancelled eval could keep
// expanding a huge memoized set long after the scan loops stopped.
func (e *evalExec) expandSet(v int, s factorized.Set, then func() bool) bool {
	p := e.plan
	for _, entry := range s {
		if e.cancel.Poll() {
			return false
		}
		copy(e.mu[p.firstVar[v]:], entry.Vals)
		if c := e.ctrs; c != nil {
			c.TupleAccesses += int64(len(entry.Vals))
		}
		if !e.expandChildren(v, entry, 0, then) {
			return false
		}
	}
	return true
}

func (e *evalExec) expandChildren(v int, entry *factorized.Entry, j int, then func() bool) bool {
	if j == len(entry.Children) {
		return then()
	}
	c := e.plan.children[v][j]
	return e.expandSet(c, entry.Children[j], func() bool {
		return e.expandChildren(v, entry, j+1, then)
	})
}
