package core

import "repro/internal/leapfrog"

// LevelStat aggregates one depth's intersection outcomes over an
// execution: Attempts counts the times the leapfrog scan opened the
// depth (one per distinct assignment of the shallower variables that
// reached it), Empties the subset whose k-way intersection held no
// value at all. Units are level openings, not trie accesses — a depth
// opened once over a huge range still counts 1.
type LevelStat struct {
	Attempts int64 `json:"attempts"`
	Empties  int64 `json:"empties"`
}

// AlwaysEmptyLevels returns the depths d > 0 that were attempted at
// least once and came up empty on every attempt — across every
// root-domain shard, since callers pass merged per-worker stats. These
// are the early-termination levels: the variable at such a depth never
// extended any assignment, so every visit was wasted prefix work, and
// an adaptive re-plan demotes it (td.GreedyConfig.Demote) to push the
// dead intersection earlier in the scan. Depth 0 is excluded: an empty
// root domain means the whole result is empty and no reordering helps.
func AlwaysEmptyLevels(levels []LevelStat) []int {
	var out []int
	for d, l := range levels {
		if d > 0 && l.Attempts > 0 && l.Empties == l.Attempts {
			out = append(out, d)
		}
	}
	return out
}

// mergeLevels folds the runner's per-depth tallies into dst (allocated
// on first use), summing across workers so parallel executions report
// the same totals a sequential run over the union of shards would.
// Call before the runner is Released — the tallies are pooled state.
func mergeLevels(dst []LevelStat, r *leapfrog.Runner) []LevelStat {
	attempts, empties := r.LevelStats()
	if dst == nil {
		dst = make([]LevelStat, len(attempts))
	}
	for d := range attempts {
		dst[d].Attempts += attempts[d]
		dst[d].Empties += empties[d]
	}
	return dst
}

// sumLevels adds src into dst elementwise (dst allocated on first use) —
// the cross-worker merge of already-copied per-worker tallies.
func sumLevels(dst, src []LevelStat) []LevelStat {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = make([]LevelStat, len(src))
	}
	for d := range src {
		dst[d].Attempts += src[d].Attempts
		dst[d].Empties += src[d].Empties
	}
	return dst
}
