package core

import (
	"context"
	"sync"

	"repro/internal/factorized"
	"repro/internal/leapfrog"
	"repro/internal/stats"
)

// This file implements parallel streaming: the sharded producer behind
// Stmt.Rows and the HTTP "stream" mode. Workers run EvalParallel-style
// root-domain shards, but instead of materializing the whole result
// before the first emit (EvalParallel's tradeoff), each worker feeds a
// bounded channel of row blocks and a merger forwards them to the
// consumer in deterministic shard order: root key i's rows always come
// from channel i%K, and a worker produces its groups in exactly the
// index order the merger consumes them, so the stream is the same
// root-value blocks in the same order regardless of K. Workers run with
// caching disabled — a cache hit expands the memoized subtree at emit
// time rather than during the scan, so a cached stream's intra-block
// order depends on per-worker cache state; disabling makes every
// worker's order the plain scan order and the merged stream
// byte-deterministic across worker counts. The first rows flow as soon
// as worker 0 finds them, and an emit returning false cancels the
// producers instead of finishing the join.

// streamItem is one block of rows from a worker. last marks the end of
// one root value's group; a group may span several items when it
// overflows the block size.
type streamItem struct {
	rows [][]int64
	last bool
}

// streamChanDepth bounds each worker's channel: enough to keep a
// producer ahead of the merger without buffering unbounded results.
const streamChanDepth = 4

// EvalStream is EvalStreamCtx under context.Background().
func (p *Plan) EvalStream(policy Policy, workers int, emit func(mu []int64) bool) EvalResult {
	res, _ := p.EvalStreamCtx(context.Background(), policy, workers, emit)
	return res
}

// EvalStreamCtx evaluates the plan and streams result tuples to emit in
// the canonical (no-cache sequential scan) order, sharding the root
// domain over the given worker count (<= 1, or a root domain too small
// to shard, falls back to the sequential EvalCtx under the unmodified
// policy — including its caches). For workers > 1 the emitted stream is
// tuple-for-tuple identical for every worker count; relative to a
// *cached* sequential run it may reorder tuples within a root-value
// block exactly where cache hits would (the tuple set is always
// identical). Emitted slices are freshly allocated and may be retained.
// Returning false from emit stops the stream and cancels the workers.
// Policy.BatchSize batches the workers' leaf scans and sizes the row
// blocks handed between producer and merger (DefaultBatchSize when
// unset). CachedEntries is 0 on the sharded path: workers trade their
// caches for the deterministic order. When ctx trips, delivery stops
// and ctx's error is returned; tuples already emitted stand.
func (p *Plan) EvalStreamCtx(ctx context.Context, policy Policy, workers int, emit func(mu []int64) bool) (EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return EvalResult{}, err
	}
	if p.inst.Empty() {
		return EvalResult{}, nil
	}
	keys, workers := leapfrog.ShardDomain(p.inst, workers, p.counters)
	if workers <= 1 {
		return p.EvalCtx(ctx, policy, emit)
	}

	wpol := policy
	wpol.Disabled = true
	bs := wpol.batchCap()
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	chans := make([]chan streamItem, workers)
	for w := range chans {
		chans[w] = make(chan streamItem, streamChanDepth)
	}

	var wg sync.WaitGroup
	ctrs := make([]*stats.Counters, workers)
	for w := 0; w < workers; w++ {
		if p.counters != nil {
			ctrs[w] = &stats.Counters{}
		}
		wg.Add(1)
		go func(w int, wc *stats.Counters) {
			defer wg.Done()
			defer close(chans[w])
			e := &evalExec{
				plan:    p,
				run:     leapfrog.NewRunnerCounters(p.inst, wc),
				ctrs:    wc,
				sets:    make([]factorized.Set, p.numNodes),
				collect: make([]bool, p.numNodes),
				intent:  make([]bool, p.numNodes),
				cancel:  leapfrog.NewCanceler(sctx),
				cm: newManager[factorized.Set](wpol, p.numNodes, p.cacheable, wc,
					func(s factorized.Set) int { return len(s) }),
				block: wpol.leafBlock(),
			}
			// dead flips when the merger has gone away (sctx cancelled
			// mid-send); emit then returns false so the scan unwinds.
			dead := false
			var buf [][]int64
			send := func(it streamItem) bool {
				select {
				case chans[w] <- it:
					return true
				case <-sctx.Done():
					dead = true
					return false
				}
			}
			e.emit = func(mu []int64) bool {
				if dead {
					return false
				}
				buf = append(buf, append([]int64(nil), mu...))
				if len(buf) >= bs {
					if !send(streamItem{rows: buf}) {
						return false
					}
					buf = nil
				}
				return true
			}
			open := false
			e.mu = e.run.Assignment()
			e.shardScan(keys, w, workers, func(int) {
				// Group boundary: seal the previous root value's rows.
				if open && !dead {
					if send(streamItem{rows: buf, last: true}) {
						buf = nil
					}
				}
				open = true
			})
			if open && !dead {
				send(streamItem{rows: buf, last: true})
			}
			e.run.Release()
		}(w, ctrs[w])
	}

	var res EvalResult
	stopped := false
	for i := 0; i < len(keys) && !stopped; i++ {
		ch := chans[i%workers]
		for {
			item, ok := <-ch
			if !ok {
				// The worker ended without sealing this group — it was
				// cancelled (workers otherwise produce one sealed group
				// per owned index, in index order).
				stopped = true
				break
			}
			for _, row := range item.rows {
				res.Emitted++
				if !emit(row) {
					stopped = true
					cancel()
					break
				}
			}
			if stopped || item.last {
				break
			}
		}
	}
	cancel()
	wg.Wait()
	if p.counters != nil {
		p.counters.Merge(ctrs...)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}
