package core

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
)

// parallelShapes returns every query-shape family of internal/queries
// paired with a database it runs against: the graph shapes over a skewed
// triangle-rich graph and the IMDB cycles over the cast stand-in.
func parallelShapes() []struct {
	name string
	q    *cq.Query
	db   *relation.DB
} {
	g := dataset.TriadicPA(90, 3, 0.5, 7).DB(false)
	imdbCfg := dataset.DefaultIMDB()
	imdbCfg.Persons, imdbCfg.Movies, imdbCfg.Appearances = 120, 40, 480
	imdb := dataset.IMDBCast(imdbCfg)
	return []struct {
		name string
		q    *cq.Query
		db   *relation.DB
	}{
		{"4-path", queries.Path(4), g},
		{"5-path", queries.Path(5), g},
		{"4-cycle", queries.Cycle(4), g},
		{"5-cycle", queries.Cycle(5), g},
		{"triangle", queries.Clique(3), g},
		{"4-clique", queries.Clique(4), g},
		{"lollipop-3-2", queries.Lollipop(3, 2), g},
		{"rand-5", queries.Random(5, 0.5, 11), g},
		{"imdb-4-cycle", queries.IMDBCycle(2), imdb},
		{"imdb-6-cycle", queries.IMDBCycle(3), imdb},
	}
}

var parallelPolicies = []Policy{
	{},
	{Capacity: 8},
	{Capacity: 16, Eviction: EvictLRU},
	{Capacity: 4, Eviction: EvictNone},
	{SupportThreshold: 1},
	{Disabled: true},
}

// TestParallelCountMatchesSequential is the tentpole's correctness bar:
// for every query shape, policy and worker count, the sharded count must
// be bit-identical to the sequential one (and to the naive oracle).
func TestParallelCountMatchesSequential(t *testing.T) {
	for _, sh := range parallelShapes() {
		plan, err := AutoPlan(sh.q, sh.db, AutoOptions{})
		if err != nil {
			t.Fatalf("%s: AutoPlan: %v", sh.name, err)
		}
		want, err := naive.Count(sh.q, sh.db)
		if err != nil {
			t.Fatalf("%s: naive: %v", sh.name, err)
		}
		for _, pol := range parallelPolicies {
			seq := plan.Count(pol)
			if seq.Count != want {
				t.Fatalf("%s: sequential count = %d, naive = %d", sh.name, seq.Count, want)
			}
			for _, workers := range []int{0, 2, 3, 4, 7} {
				pol := pol
				pol.Workers = workers
				par := plan.CountParallel(pol)
				if par.Count != seq.Count {
					t.Errorf("%s workers=%d policy=%+v: parallel count = %d, sequential = %d",
						sh.name, workers, pol, par.Count, seq.Count)
				}
			}
		}
	}
}

// TestParallelEvalMatchesSequential checks that the parallel evaluation
// emits exactly the sequential tuple multiset. With caching disabled the
// order must match the sequential scan order tuple-for-tuple; with caches
// the order within one root value may legitimately differ (a cache hit
// expands the memoized subtree at emit time, a scan emits it during the
// scan — this reordering already happens sequentially and depends on
// cache state), so the comparison is on sorted streams, plus the
// guarantee that root values appear in ascending blocks.
func TestParallelEvalMatchesSequential(t *testing.T) {
	for _, sh := range parallelShapes() {
		plan, err := AutoPlan(sh.q, sh.db, AutoOptions{})
		if err != nil {
			t.Fatalf("%s: AutoPlan: %v", sh.name, err)
		}
		for _, pol := range []Policy{{}, {Capacity: 8}, {Disabled: true}} {
			seq := plan.EvalTuples(pol)
			for _, workers := range []int{2, 4} {
				pol := pol
				pol.Workers = workers
				var par [][]int64
				res := plan.EvalParallel(pol, func(mu []int64) bool {
					par = append(par, append([]int64(nil), mu...))
					return true
				})
				if res.Emitted != int64(len(seq)) {
					t.Fatalf("%s workers=%d: emitted %d, want %d", sh.name, workers, res.Emitted, len(seq))
				}
				for i := 1; i < len(par); i++ {
					if par[i][0] < par[i-1][0] {
						t.Fatalf("%s workers=%d: root values not ascending at tuple %d", sh.name, workers, i)
					}
				}
				if pol.Disabled {
					if !reflect.DeepEqual(par, seq) {
						t.Errorf("%s workers=%d: uncached parallel stream differs from sequential order", sh.name, workers)
					}
					continue
				}
				if !reflect.DeepEqual(sortTuples(par), sortTuples(seq)) {
					t.Errorf("%s workers=%d: parallel tuple multiset differs from sequential", sh.name, workers)
				}
			}
		}
	}
}

// sortTuples returns a lexicographically sorted copy of the tuple list.
func sortTuples(ts [][]int64) [][]int64 {
	out := append([][]int64(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// TestParallelEvalEarlyStop pins the documented early-stop semantics:
// the callback returning false stops the delivery, and Emitted reports
// only delivered tuples.
func TestParallelEvalEarlyStop(t *testing.T) {
	sh := parallelShapes()[0]
	plan, err := AutoPlan(sh.q, sh.db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := plan.Count(Policy{}).Count
	if total < 5 {
		t.Fatalf("workload too small for the test: %d tuples", total)
	}
	var seen int64
	res := plan.EvalParallel(Policy{Workers: 3}, func([]int64) bool {
		seen++
		return seen < 3
	})
	if seen != 3 || res.Emitted != 3 {
		t.Fatalf("early stop delivered %d (reported %d), want 3", seen, res.Emitted)
	}
}

// TestParallelAggregateMatchesSequential checks the semiring engine:
// counting and tropical (min-plus) aggregates — whose ⊕ is exactly
// associative — must be bit-identical to the sequential run under every
// worker count.
func TestParallelAggregateMatchesSequential(t *testing.T) {
	weight := func(d int, v int64) float64 { return float64(v % 17) }
	for _, sh := range parallelShapes() {
		plan, err := AutoPlan(sh.q, sh.db, AutoOptions{})
		if err != nil {
			t.Fatalf("%s: AutoPlan: %v", sh.name, err)
		}
		cnt := CountSemiring()
		seqCount := Aggregate(plan, Policy{}, cnt, UnitWeight(cnt))
		trop := TropicalSemiring()
		seqMin := Aggregate(plan, Policy{}, trop, weight)
		for _, workers := range []int{0, 2, 4} {
			pol := Policy{Workers: workers}
			if got := AggregateParallel(plan, pol, cnt, UnitWeight(cnt)); got != seqCount {
				t.Errorf("%s workers=%d: count aggregate = %d, sequential = %d", sh.name, workers, got, seqCount)
			}
			if got := AggregateParallel(plan, pol, trop, weight); got != seqMin {
				t.Errorf("%s workers=%d: tropical aggregate = %v, sequential = %v", sh.name, workers, got, seqMin)
			}
		}
	}
}

// TestParallelWorkersOneIsSequential is the regression test that
// Workers: 1 takes the sequential code path: the parallel entry points
// must then produce exactly the sequential accounting — in particular no
// root-domain prescan (which any sharded run performs) may appear.
func TestParallelWorkersOneIsSequential(t *testing.T) {
	sh := parallelShapes()[3] // 5-cycle: multi-bag TD, caches in play
	var c stats.Counters
	plan, err := AutoPlan(sh.q, sh.db, AutoOptions{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}

	c.Reset()
	seq := plan.Count(Policy{})
	seqCtrs := c

	c.Reset()
	par := plan.CountParallel(Policy{Workers: 1})
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("CountParallel(Workers:1) = %+v, sequential = %+v", par, seq)
	}
	if c != seqCtrs {
		t.Errorf("CountParallel(Workers:1) accounting %+v differs from sequential %+v (parallel path taken?)", c, seqCtrs)
	}

	c.Reset()
	plan.Count(Policy{})
	seqCtrs = c
	c.Reset()
	par2 := plan.CountParallel(Policy{Workers: 2})
	if par2.Count != seq.Count {
		t.Fatalf("CountParallel(Workers:2) = %d, want %d", par2.Count, seq.Count)
	}
	if c == seqCtrs {
		t.Errorf("CountParallel(Workers:2) accounting identical to sequential; expected the root prescan to show up")
	}
}

// TestParallelAccountingMergesExactly checks that per-worker counters
// merged after the join add up: the merged sink must equal the sum the
// workers would report individually — verified indirectly by running the
// same parallel execution twice and requiring identical accounting
// (deterministic sharding) and a non-empty trie trace.
func TestParallelAccountingMergesExactly(t *testing.T) {
	sh := parallelShapes()[5] // 4-clique
	var c stats.Counters
	plan, err := AutoPlan(sh.q, sh.db, AutoOptions{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{Workers: 4}
	c.Reset()
	plan.CountParallel(pol)
	first := c
	c.Reset()
	plan.CountParallel(pol)
	if c != first {
		t.Errorf("parallel accounting not deterministic: %+v vs %+v", c, first)
	}
	if c.TrieAccesses == 0 {
		t.Errorf("parallel run accounted no trie accesses")
	}
}

// TestParallelRandomizedEquivalence is the quick-check twin of the core
// cross-engine property test: random graphs, random patterns, random
// policies and random worker counts must agree with the naive oracle.
func TestParallelRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(12)
		g := dataset.ErdosRenyi(n, 0.12+rng.Float64()*0.2, rng.Int63())
		db := g.DB(rng.Intn(2) == 0)
		var q *cq.Query
		switch trial % 4 {
		case 0:
			q = queries.Path(3 + rng.Intn(3))
		case 1:
			q = queries.Cycle(3 + rng.Intn(3))
		case 2:
			q = queries.Random(4+rng.Intn(2), 0.4+rng.Float64()*0.3, rng.Int63())
		default:
			q = queries.Clique(3 + rng.Intn(2))
		}
		want, err := naive.Count(q, db)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := AutoPlan(q, db, AutoOptions{})
		if err != nil {
			t.Fatalf("trial %d: AutoPlan: %v", trial, err)
		}
		pol := Policy{
			Capacity:         rng.Intn(20),
			SupportThreshold: rng.Intn(3),
			Eviction:         EvictionMode(rng.Intn(3)),
			Disabled:         rng.Intn(4) == 0,
			Workers:          2 + rng.Intn(4),
		}
		if got := plan.CountParallel(pol).Count; got != want {
			t.Errorf("trial %d (%s, workers=%d): parallel count = %d, naive = %d",
				trial, q, pol.Workers, got, want)
		}
	}
}

// TestPooledRunnersParallelEvalRace exercises the per-instance runner
// pool under concurrent parallel evaluation and counting — recycled
// frogs and trie cursors crossing worker goroutines is exactly where a
// pooling bug would race. Run under -race by the CI race job.
func TestPooledRunnersParallelEvalRace(t *testing.T) {
	db := dataset.TriadicPA(140, 3, 0.5, 21).DB(false)
	q := queries.Cycle(4)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Count(Policy{}).Count
	if want == 0 {
		t.Fatal("workload counts zero matches; test would prove nothing")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if g%2 == 0 {
					var n int64
					plan.EvalParallel(Policy{Workers: 3}, func(mu []int64) bool { n++; return true })
					if n != want {
						t.Errorf("parallel eval enumerated %d, want %d", n, want)
						return
					}
				} else if got := plan.CountParallel(Policy{Workers: 3}).Count; got != want {
					t.Errorf("parallel count = %d, want %d", got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
