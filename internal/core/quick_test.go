package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/td"
	"repro/internal/yannakakis"
)

// TestRandomizedCrossEngineEquivalence is the repository's central
// property test: on random graphs and random pattern queries, CLFTJ
// under random cache policies, every enumerated TD, LFTJ, YTD and the
// naive oracle must all agree on counts — and CLFTJ evaluation must
// produce the oracle's exact tuple set.
func TestRandomizedCrossEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(15)
		g := dataset.ErdosRenyi(n, 0.1+rng.Float64()*0.2, rng.Int63())
		db := g.DB(rng.Intn(2) == 0)

		var q *cq.Query
		switch trial % 5 {
		case 0:
			q = queries.Path(3 + rng.Intn(3))
		case 1:
			q = queries.Cycle(3 + rng.Intn(3))
		case 2:
			q = queries.Random(4+rng.Intn(2), 0.4+rng.Float64()*0.3, rng.Int63())
		case 3:
			q = queries.Lollipop(3, 1+rng.Intn(2))
		default:
			q = queries.Clique(3 + rng.Intn(2))
		}

		want, err := naive.Count(q, db)
		if err != nil {
			t.Fatal(err)
		}

		// Every enumerated TD must produce the right count under a
		// random policy.
		for _, tree := range td.Enumerate(q, td.Options{}) {
			order := orderNamesFor(q, tree)
			plan, err := NewPlan(q, db, tree, order, nil)
			if err != nil {
				t.Fatalf("trial %d: NewPlan: %v\n%s", trial, err, tree)
			}
			pol := Policy{
				Capacity:         rng.Intn(20),
				SupportThreshold: rng.Intn(3),
				Eviction:         EvictionMode(rng.Intn(3)),
				Disabled:         rng.Intn(4) == 0,
			}
			if got := plan.Count(pol).Count; got != want {
				t.Fatalf("trial %d: CLFTJ(%+v) = %d, want %d\nquery %s\n%s",
					trial, pol, got, want, q, tree)
			}
			if got := plan.Eval(pol, func([]int64) bool { return true }).Emitted; got != want {
				t.Fatalf("trial %d: CLFTJ eval emitted %d, want %d\nquery %s\n%s",
					trial, got, want, q, tree)
			}
			// YTD over the same TD.
			e, err := yannakakis.New(q, db, tree, nil)
			if err != nil {
				t.Fatalf("trial %d: yannakakis: %v", trial, err)
			}
			if got := e.Count(); got != want {
				t.Fatalf("trial %d: YTD = %d, want %d\nquery %s\n%s", trial, got, want, q, tree)
			}
		}
	}
}

func orderNamesFor(q *cq.Query, tree *td.TD) []string {
	qvars := q.Vars()
	idx := tree.CompatibleOrder(len(qvars))
	out := make([]string, len(idx))
	for d, xi := range idx {
		out[d] = qvars[xi]
	}
	return out
}

// TestEvalNestedCacheHits drives evaluation on a query whose TD has a
// chain of cached bags, so cache hits occur while an ancestor is itself
// collecting a factorized set (shared substructure), and verifies the
// exact tuple set.
func TestEvalNestedCacheHits(t *testing.T) {
	g := dataset.PreferentialAttachment(40, 3, 77)
	db := g.DB(false)
	q := queries.Path(6)
	// Force the chain TD {x1,x2}-{x2,x3}-...-{x5,x6}: every non-root bag
	// is a cache site, nested five deep.
	bags := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	parent := []int{-1, 0, 1, 2, 3}
	tree := td.MustNew(bags, parent)
	plan, err := NewPlan(q, db, tree, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{{}, {SupportThreshold: 1}, {Capacity: 7}} {
		var got [][]int64
		plan.Eval(pol, func(mu []int64) bool {
			got = append(got, append([]int64(nil), mu...))
			return true
		})
		sort.Slice(got, func(i, j int) bool { return relation.CompareTuples(got[i], got[j]) < 0 })
		if len(got) != len(want) {
			t.Fatalf("policy %+v: %d tuples, want %d", pol, len(got), len(want))
		}
		for i := range got {
			if relation.CompareTuples(got[i], want[i]) != 0 {
				t.Fatalf("policy %+v: tuple %d = %v, want %v", pol, i, got[i], want[i])
			}
		}
	}
}

// TestEvalEarlyStopUnderCaching verifies that stopping the consumer
// mid-expansion (inside a cache-hit expansion) terminates cleanly.
func TestEvalEarlyStopUnderCaching(t *testing.T) {
	g := dataset.PreferentialAttachment(60, 4, 13)
	db := g.DB(false)
	q := queries.Path(5)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := plan.Count(Policy{}).Count
	if total < 100 {
		t.Skipf("result too small (%d) for the early-stop test", total)
	}
	for _, stop := range []int64{1, 7, total / 2} {
		var n int64
		res := plan.Eval(Policy{}, func([]int64) bool {
			n++
			return n < stop
		})
		if n != stop {
			t.Fatalf("stop=%d: emitted %d", stop, n)
		}
		if res.Emitted != stop {
			t.Fatalf("stop=%d: result reports %d emitted", stop, res.Emitted)
		}
	}
}

// TestCountDeterministic ensures repeated runs over one plan are
// bit-identical (fresh caches per execution).
func TestCountDeterministic(t *testing.T) {
	g := dataset.PreferentialAttachment(80, 3, 5)
	db := g.DB(false)
	plan, err := AutoPlan(queries.Cycle(4), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := plan.Count(Policy{Capacity: 16})
	for i := 0; i < 3; i++ {
		again := plan.Count(Policy{Capacity: 16})
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d differs: %+v vs %+v", i, again, first)
		}
	}
}
