package core

import (
	"math"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
)

// naiveAggregate folds the oracle's result set with per-variable weights
// reordered from q.Vars() to the plan's order.
func naiveAggregate[T any](t *testing.T, q *cq.Query, db *relation.DB, order []string,
	sr Semiring[T], w VarWeight[T]) T {
	t.Helper()
	tuples, err := naive.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	qvars := q.Vars()
	depthOf := make(map[string]int)
	for d, name := range order {
		depthOf[name] = d
	}
	total := sr.Zero
	for _, tup := range tuples {
		prod := sr.One
		for i, name := range qvars {
			prod = sr.Mul(prod, w(depthOf[name], tup[i]))
		}
		total = sr.Add(total, prod)
	}
	return total
}

func aggregateFixtures(t *testing.T) (*Plan, *cq.Query, *relation.DB) {
	t.Helper()
	g := dataset.PreferentialAttachment(60, 3, 21)
	db := g.DB(false)
	q := queries.Path(4)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return plan, q, db
}

func TestAggregateCountCoincidesWithCount(t *testing.T) {
	plan, _, _ := aggregateFixtures(t)
	sr := CountSemiring()
	for _, pol := range []Policy{{}, {Disabled: true}, {Capacity: 4}} {
		agg := Aggregate(plan, pol, sr, UnitWeight(sr))
		cnt := plan.Count(pol).Count
		if agg != cnt {
			t.Errorf("policy %+v: aggregate %d != count %d", pol, agg, cnt)
		}
	}
}

func TestAggregateSumProduct(t *testing.T) {
	plan, q, db := aggregateFixtures(t)
	sr := SumProductSemiring()
	// Weight: each variable value contributes (1 + v mod 3) / 2.
	w := func(d int, v int64) float64 { return (1 + float64(v%3)) / 2 }
	want := naiveAggregate(t, q, db, plan.Order(), sr, w)
	for _, pol := range []Policy{{}, {Disabled: true}, {SupportThreshold: 1}} {
		got := Aggregate(plan, pol, sr, w)
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("policy %+v: sum-product %g, want %g", pol, got, want)
		}
	}
}

func TestAggregateTropicalMinWeight(t *testing.T) {
	plan, q, db := aggregateFixtures(t)
	sr := TropicalSemiring()
	// Weight of a tuple = sum of node ids; Aggregate = cheapest witness.
	w := func(d int, v int64) float64 { return float64(v) }
	want := naiveAggregate(t, q, db, plan.Order(), sr, w)
	for _, pol := range []Policy{{}, {Disabled: true}, {Capacity: 8}} {
		got := Aggregate(plan, pol, sr, w)
		if got != want {
			t.Errorf("policy %+v: tropical %g, want %g", pol, got, want)
		}
	}
}

func TestAggregateOnCycles(t *testing.T) {
	g := dataset.ErdosRenyi(25, 0.18, 31)
	db := g.DB(false)
	q := queries.Cycle(5)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr := SumProductSemiring()
	w := func(d int, v int64) float64 { return 1 + float64(v%5)/7 }
	want := naiveAggregate(t, q, db, plan.Order(), sr, w)
	got := Aggregate(plan, Policy{}, sr, w)
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("cycle sum-product %g, want %g", got, want)
	}
}

func TestAggregateEmptyResult(t *testing.T) {
	db := relation.NewDB(
		relation.MustNew("E", 2, [][]int64{{1, 2}}),
		relation.MustNew("F", 2, nil),
	)
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("F", "b", "c"))
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr := CountSemiring()
	if got := Aggregate(plan, Policy{}, sr, UnitWeight(sr)); got != 0 {
		t.Fatalf("aggregate over empty result = %d", got)
	}
}
