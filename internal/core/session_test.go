package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/stats"
)

func TestSessionCountsStayCorrect(t *testing.T) {
	g := dataset.PreferentialAttachment(100, 3, 41)
	db := g.DB(false)
	plan, err := AutoPlan(queries.Path(5), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Count(Policy{Disabled: true}).Count
	s := plan.NewSession(Policy{})
	for i := 0; i < 3; i++ {
		if got := s.Count(); got.Count != want {
			t.Fatalf("run %d: count %d, want %d", i, got.Count, want)
		}
	}
}

func TestSessionWarmRunsCheaper(t *testing.T) {
	g := dataset.PreferentialAttachment(150, 4, 42)
	db := g.DB(false)
	var c stats.Counters
	plan, err := AutoPlan(queries.Path(5), db, AutoOptions{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession(Policy{})

	c.Reset()
	s.Count()
	cold := c.TrieAccesses

	c.Reset()
	s.Count()
	warm := c.TrieAccesses

	if warm >= cold {
		t.Errorf("warm run not cheaper: cold=%d warm=%d", cold, warm)
	}
	if s.CachedEntries() == 0 {
		t.Error("session retained no entries")
	}
}

func TestSessionShrink(t *testing.T) {
	g := dataset.PreferentialAttachment(120, 3, 43)
	db := g.DB(false)
	plan, err := AutoPlan(queries.Path(5), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession(Policy{})
	want := s.Count().Count
	before := s.CachedEntries()
	if before < 4 {
		t.Skip("too few entries to shrink")
	}
	target := before / 4
	if got := s.Shrink(target); got > target {
		t.Fatalf("Shrink left %d entries, want <= %d", got, target)
	}
	// Counts stay correct after an arbitrary deletion (§3.4: "the
	// algorithm allows for arbitrary replacements or deletions").
	if got := s.Count(); got.Count != want {
		t.Fatalf("post-shrink count %d, want %d", got.Count, want)
	}
	if got := s.Shrink(0); got != 0 {
		t.Fatalf("Shrink(0) left %d entries", got)
	}
	if got := s.Count(); got.Count != want {
		t.Fatalf("post-flush count %d, want %d", got.Count, want)
	}
}

func TestSessionRespectsCapacityAcrossRuns(t *testing.T) {
	g := dataset.PreferentialAttachment(120, 3, 44)
	db := g.DB(false)
	plan, err := AutoPlan(queries.Path(5), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.NewSession(Policy{Capacity: 10})
	for i := 0; i < 3; i++ {
		res := s.Count()
		if res.CachedEntries > 10 {
			t.Fatalf("run %d: %d entries exceed capacity", i, res.CachedEntries)
		}
	}
}
