// Package core implements CLFTJ — the paper's contribution: Leapfrog Trie
// Join with flexible caching (Fig. 2). A Plan binds a query, a database,
// an ordered tree decomposition and a strongly compatible variable order;
// executions then run ordinary LFTJ while consulting and filling bounded
// adhesion-keyed caches, so that when no caching takes place the
// algorithm coincides with LFTJ, and any amount of available memory
// translates into memoization (§3).
package core

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
)

// Plan is a compiled CLFTJ execution plan. Build once, run many times.
type Plan struct {
	inst  *leapfrog.Instance
	tree  *td.TD
	order []string

	numVars  int
	numNodes int

	// ownerOf[d] is the (effective) bag owning depth d's variable.
	ownerOf []int
	// bagFirst[d] / bagLast[d] mark the first/last depth owned by the bag.
	bagFirst []bool
	bagLast  []bool
	// firstVar[v] / subtreeEnd[v] delimit the contiguous depth interval
	// of node v's subtree: v's owned depths start the interval and the
	// descendants' depths complete it (a consequence of strong
	// compatibility; it is what makes the cache-hit skip sound).
	firstVar   []int
	lastVar    []int
	subtreeEnd []int
	// children lists effective children (bags owning no variable are
	// contracted into their nearest owning ancestor); parent is the
	// inverse (-1 for the root and contracted bags).
	children [][]int
	parent   []int
	// adhesionDepths[v] holds the depths of adhesion(v), ascending; these
	// index the partial assignment to form cache keys.
	adhesionDepths [][]int
	// cacheable[v] marks non-root bags with adhesion width <= MaxKeyDim.
	cacheable []bool
	root      int

	counters *stats.Counters
}

// NewPlan compiles q against db with the given ordered TD and variable
// order (names). The TD must be valid for q and strongly compatible with
// the order; both are verified. counters may be nil.
func NewPlan(q *cq.Query, db *relation.DB, tree *td.TD, order []string, counters *stats.Counters) (*Plan, error) {
	return NewPlanWith(q, db, tree, order, counters, nil)
}

// NewPlanWith is NewPlan with an optional shared trie source (see
// leapfrog.BuildWith): a long-lived engine passes its trie.Registry so
// plan compilation reuses resident indices instead of rebuilding them
// per query. tries may be nil.
func NewPlanWith(q *cq.Query, db *relation.DB, tree *td.TD, order []string, counters *stats.Counters, tries leapfrog.TrieSource) (*Plan, error) {
	return newPlan(q, db, tree, order, leapfrog.BuildOpts{Counters: counters, Tries: tries})
}

// newPlan compiles the plan with full build options (AutoPlan threads
// the trie-build parallelism knob through here).
func newPlan(q *cq.Query, db *relation.DB, tree *td.TD, order []string, bopts leapfrog.BuildOpts) (*Plan, error) {
	if err := tree.Validate(q); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	qvars := q.Vars()
	qidx := q.VarIndex()
	if len(order) != len(qvars) {
		return nil, fmt.Errorf("core: order has %d variables, query has %d", len(order), len(qvars))
	}
	orderIdx := make([]int, len(order))
	for d, name := range order {
		xi, ok := qidx[name]
		if !ok {
			return nil, fmt.Errorf("core: order variable %q not in query", name)
		}
		orderIdx[d] = xi
	}
	if !tree.StronglyCompatible(orderIdx) {
		return nil, fmt.Errorf("core: tree decomposition is not strongly compatible with order %v", order)
	}
	inst, err := leapfrog.BuildOptions(q, db, order, bopts)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		inst:     inst,
		tree:     tree,
		order:    append([]string(nil), order...),
		numVars:  len(order),
		counters: bopts.Counters,
	}
	if err := p.compile(orderIdx); err != nil {
		return nil, err
	}
	return p, nil
}

// compile derives the owner/adhesion/interval tables from the TD.
func (p *Plan) compile(orderIdx []int) error {
	t := p.tree
	n := p.numVars
	owners := t.Owners(n) // per variable index
	depthOf := make([]int, n)
	for d, xi := range orderIdx {
		depthOf[xi] = d
	}

	// Owner per depth (original node ids).
	ownerOf := make([]int, n)
	for d, xi := range orderIdx {
		v := owners[xi]
		if v == -1 {
			return fmt.Errorf("core: variable %q owned by no bag", p.order[d])
		}
		ownerOf[d] = v
	}

	// Contract bags that own no depth: re-parent to the nearest owning
	// ancestor; the root is kept regardless (it owns depth 0 in any valid
	// strongly compatible setup, verified below).
	numNodes := t.N()
	owns := make([]bool, numNodes)
	for _, v := range ownerOf {
		owns[v] = true
	}
	if !owns[t.Root] {
		return fmt.Errorf("core: root bag owns no variable")
	}
	keptParent := make([]int, numNodes)
	for i := range keptParent {
		keptParent[i] = -1
	}
	var children [][]int = make([][]int, numNodes)
	var link func(v, ancestor int)
	link = func(v, ancestor int) {
		next := ancestor
		if owns[v] {
			if ancestor != -1 {
				children[ancestor] = append(children[ancestor], v)
			}
			keptParent[v] = ancestor
			next = v
		}
		for _, c := range t.Children[v] {
			link(c, next)
		}
	}
	link(t.Root, -1)

	firstVar := make([]int, numNodes)
	lastVar := make([]int, numNodes)
	for v := range firstVar {
		firstVar[v], lastVar[v] = -1, -1
	}
	for d := 0; d < n; d++ {
		v := ownerOf[d]
		if firstVar[v] == -1 {
			firstVar[v] = d
		} else if d != lastVar[v]+1 {
			return fmt.Errorf("core: depths owned by bag %d are not contiguous (order not strongly compatible within bags)", v)
		}
		lastVar[v] = d
	}

	subtreeEnd := make([]int, numNodes)
	var span func(v int) int
	span = func(v int) int {
		end := lastVar[v]
		for _, c := range children[v] {
			ce := span(c)
			if ce > end {
				end = ce
			}
		}
		subtreeEnd[v] = end
		return end
	}
	span(t.Root)

	// Verify the subtree interval property: children intervals follow the
	// owner's block contiguously.
	for v := range children {
		if firstVar[v] == -1 {
			continue
		}
		next := lastVar[v] + 1
		for _, c := range children[v] {
			if firstVar[c] != next {
				return fmt.Errorf("core: bag %d subtree interval broken at child %d (got first %d, want %d)",
					v, c, firstVar[c], next)
			}
			next = subtreeEnd[c] + 1
		}
	}

	bagFirst := make([]bool, n)
	bagLast := make([]bool, n)
	for d := 0; d < n; d++ {
		bagFirst[d] = firstVar[ownerOf[d]] == d
		bagLast[d] = lastVar[ownerOf[d]] == d
	}

	adhesionDepths := make([][]int, numNodes)
	cacheable := make([]bool, numNodes)
	for v := 0; v < numNodes; v++ {
		if firstVar[v] == -1 || v == t.Root {
			continue
		}
		adh := t.Adhesion(v) // variable indices, sorted
		depths := make([]int, len(adh))
		good := true
		for i, xi := range adh {
			depths[i] = depthOf[xi]
			if depths[i] >= firstVar[v] {
				return fmt.Errorf("core: adhesion variable of bag %d not assigned before the bag", v)
			}
		}
		sortInts(depths)
		adhesionDepths[v] = depths
		cacheable[v] = good && len(depths) <= MaxKeyDim
	}

	p.numNodes = numNodes
	p.ownerOf = ownerOf
	p.bagFirst = bagFirst
	p.bagLast = bagLast
	p.firstVar = firstVar
	p.lastVar = lastVar
	p.subtreeEnd = subtreeEnd
	p.children = children
	p.parent = keptParent
	p.adhesionDepths = adhesionDepths
	p.cacheable = cacheable
	p.root = t.Root
	return nil
}

// Instance exposes the underlying leapfrog instance.
func (p *Plan) Instance() *leapfrog.Instance { return p.inst }

// Embedded returns the shared-registry indices the plan's instance
// draws on (see leapfrog.Instance.Embedded) — what a plan cache tracks
// to invalidate precisely on registry evictions.
func (p *Plan) Embedded() []leapfrog.SourceEntry { return p.inst.Embedded() }

// TD returns the plan's tree decomposition.
func (p *Plan) TD() *td.TD { return p.tree }

// Order returns the variable order (names by depth).
func (p *Plan) Order() []string { return p.order }

// Counters returns the accounting sink (possibly nil).
func (p *Plan) Counters() *stats.Counters { return p.counters }

// WithCounters returns a shallow copy of the plan whose executions
// account into c (which may be nil to disable accounting). The compiled
// tables and trie indices are shared — they are immutable after
// compilation — so the copy is cheap and the original and copy may
// execute concurrently. This is how a long-lived engine runs one cached
// plan for many requests, each with private accounting: every execution
// entry point reads the counters sink from the plan it is invoked on,
// never from shared state.
func (p *Plan) WithCounters(c *stats.Counters) *Plan {
	cp := *p
	cp.counters = c
	return &cp
}

// CacheDims returns the adhesion widths of the cacheable bags (the cache
// dimensions, cf. Fig. 11's cache structures).
func (p *Plan) CacheDims() []int {
	var dims []int
	for v := 0; v < p.numNodes; v++ {
		if p.cacheable[v] {
			dims = append(dims, len(p.adhesionDepths[v]))
		}
	}
	return dims
}

// keyAt assembles the cache key of bag v from the current assignment.
func (p *Plan) keyAt(v int, mu []int64) Key {
	var k Key
	for i, d := range p.adhesionDepths[v] {
		k[i] = mu[d]
	}
	return k
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
