package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/leapfrog"
	"repro/internal/queries"
	"repro/internal/relation"
)

// slowPlan compiles a cyclic query that runs for hundreds of
// milliseconds sequentially — long enough that a cancellation landing
// mid-join exercises the cooperative unwind, short enough for CI.
func slowPlan(t *testing.T) *Plan {
	t.Helper()
	db := dataset.CliqueUnion(600, 340, 20, 1.6, 9).DB(false)
	plan, err := AutoPlan(queries.Cycle(5), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func quickPlan(t *testing.T) *Plan {
	t.Helper()
	db := dataset.TriadicPA(120, 3, 0.4, 7).DB(false)
	plan, err := AutoPlan(queries.Cycle(4), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCountCtxBackgroundMatchesCount pins the wrapper contract: under a
// non-cancellable context every Ctx variant returns exactly what its
// plain twin does.
func TestCountCtxBackgroundMatchesCount(t *testing.T) {
	plan := quickPlan(t)
	ctx := context.Background()
	want := plan.Count(Policy{})

	got, err := plan.CountCtx(ctx, Policy{})
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("CountCtx = %+v, %v; want %+v", got, err, want)
	}
	gotPar, err := plan.CountParallelCtx(ctx, Policy{Workers: 4})
	if err != nil || gotPar.Count != want.Count {
		t.Fatalf("CountParallelCtx = %+v, %v; want count %d", gotPar, err, want.Count)
	}
	sr := CountSemiring()
	agg, err := AggregateCtx(ctx, plan, Policy{}, sr, UnitWeight(sr))
	if err != nil || agg != want.Count {
		t.Fatalf("AggregateCtx = %d, %v; want %d", agg, err, want.Count)
	}
	aggPar, err := AggregateParallelCtx(ctx, plan, Policy{Workers: 4}, sr, UnitWeight(sr))
	if err != nil || aggPar != want.Count {
		t.Fatalf("AggregateParallelCtx = %d, %v; want %d", aggPar, err, want.Count)
	}
	var n int64
	res, err := plan.EvalCtx(ctx, Policy{}, func([]int64) bool { n++; return true })
	if err != nil || n != want.Count || res.Emitted != want.Count {
		t.Fatalf("EvalCtx emitted %d (res %+v, err %v), want %d", n, res, err, want.Count)
	}
}

// TestCountCtxCancelPromptness is the acceptance bar: a cancellation
// landing mid-join on a long-running cyclic query must surface as
// ctx.Err() within 50ms, sequential and parallel alike.
func TestCountCtxCancelPromptness(t *testing.T) {
	plan := slowPlan(t)
	for _, tc := range []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"sequential", func(ctx context.Context) error {
			_, err := plan.CountCtx(ctx, Policy{})
			return err
		}},
		{"parallel", func(ctx context.Context) error {
			_, err := plan.CountParallelCtx(ctx, Policy{Workers: 4})
			return err
		}},
		{"eval", func(ctx context.Context) error {
			_, err := plan.EvalCtx(ctx, Policy{}, func([]int64) bool { return true })
			return err
		}},
		{"aggregate", func(ctx context.Context) error {
			sr := CountSemiring()
			_, err := AggregateParallelCtx(ctx, plan, Policy{Workers: 4}, sr, UnitWeight(sr))
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- tc.run(ctx) }()

			time.Sleep(30 * time.Millisecond) // let the join get going
			cancelled := time.Now()
			cancel()
			select {
			case err := <-done:
				if lag := time.Since(cancelled); lag > 50*time.Millisecond {
					t.Fatalf("returned %v after cancel, want <= 50ms", lag)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("cancelled join did not return within 2s")
			}
		})
	}
}

// TestCountCtxDeadline exercises the deadline path: an expired context
// fails before the scan starts, a mid-join deadline unwinds like an
// explicit cancel.
func TestCountCtxDeadline(t *testing.T) {
	plan := slowPlan(t)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := plan.CountCtx(expired, Policy{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: err = %v, want DeadlineExceeded", err)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := plan.CountParallelCtx(ctx, Policy{Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-join deadline: err = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("deadline unwind took %s", took)
	}
}

// TestEvalCtxCancelKeepsEmitted pins the streaming contract: tuples
// emitted before the cancel stand, and no emission follows it.
func TestEvalCtxCancelKeepsEmitted(t *testing.T) {
	plan := slowPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	var emitted int64
	var afterCancel int64
	cancelledAt := int64(-1)
	_, err := plan.EvalCtx(ctx, Policy{}, func([]int64) bool {
		emitted++
		if emitted == 1000 {
			cancel()
			cancelledAt = emitted
		} else if cancelledAt >= 0 {
			afterCancel++
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cancelledAt < 0 {
		t.Skip("result smaller than cancel threshold")
	}
	// Cooperative polling may deliver a bounded tail after the cancel
	// (up to one polling period per open depth), never an unbounded one.
	if afterCancel > 8*1024 {
		t.Fatalf("%d tuples emitted after cancel", afterCancel)
	}
}

// TestEvalCtxCancelDuringExpansion pins the cache-hit path's
// promptness: expanding a memoized factorized set advances no
// iterator, so the expansion itself must poll the canceler — without
// that, a cancelled eval would keep emitting a huge cached subtree to
// completion. The disconnected query E(x,y), F(z,w) makes bag {z,w}
// cacheable with an empty adhesion: after the first (x,y) prefix
// builds F's set, every later prefix is a pure expansion of it.
func TestEvalCtxCancelDuringExpansion(t *testing.T) {
	n := int64(5000) // one expansion is n rows — far above the poll period
	var etuples, ftuples [][]int64
	for i := int64(0); i < n; i++ {
		etuples = append(etuples, []int64{i, i + 1})
		ftuples = append(ftuples, []int64{i, i + 2})
	}
	db := relation.NewDB(
		relation.MustNew("E", 2, etuples),
		relation.MustNew("F", 2, ftuples),
	)
	q, err := cq.Parse("E(x,y), F(z,w)")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var emitted, afterCancel int64
	_, err = plan.EvalCtx(ctx, Policy{}, func([]int64) bool {
		emitted++
		if emitted == 2*n { // inside the second prefix: expansion territory
			cancel()
		} else if emitted > 2*n {
			afterCancel++
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (emitted %d of %d)", err, emitted, n*n)
	}
	// The expansion polls every entry, so the post-cancel tail is
	// bounded by the polling period per nesting level — far below the
	// n*n full result.
	if afterCancel > 4*leapfrog.CancelCheckEvery {
		t.Fatalf("%d tuples emitted after cancel during expansion", afterCancel)
	}
}

// TestCancelledRunCachesNothing guards the partial-intermediate hazard:
// a cancelled count must not leave partial subtree counts in a session
// cache that a later run could trust.
func TestCancelledRunCachesNothing(t *testing.T) {
	db := dataset.CliqueUnion(600, 340, 20, 1.6, 9).DB(false)
	plan, err := AutoPlan(queries.Cycle(5), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Count(Policy{}).Count

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := plan.CountCtx(ctx, Policy{})
	if !errors.Is(err, context.Canceled) {
		t.Skipf("join finished before cancel (res=%+v)", res)
	}
	if res.CachedEntries != 0 {
		t.Fatalf("cancelled run reported %d cached entries", res.CachedEntries)
	}
	// The plan is stateless across runs; a full re-run must agree with
	// the ground truth.
	if got := plan.Count(Policy{}).Count; got != want {
		t.Fatalf("count after cancelled run = %d, want %d", got, want)
	}
}
