package core

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
)

// batchDiffSizes are the block sizes the differential harness drives:
// degenerate (1), tiny primes that straddle shard and batch boundaries,
// the default-ish 64, and one far larger than any trial's result set.
var batchDiffSizes = []int{1, 2, 3, 7, 64, 1024}

// diffQuery draws a query shape the same way the central cross-engine
// property test does.
func diffQuery(trial int, rng *rand.Rand) *cq.Query {
	switch trial % 5 {
	case 0:
		return queries.Path(3 + rng.Intn(3))
	case 1:
		return queries.Cycle(3 + rng.Intn(3))
	case 2:
		return queries.Random(4+rng.Intn(2), 0.4+rng.Float64()*0.3, rng.Int63())
	case 3:
		return queries.Lollipop(3, 1+rng.Intn(2))
	default:
		return queries.Clique(3 + rng.Intn(2))
	}
}

// collectTuples runs one eval-style execution and materializes its
// emitted tuple sequence (copies; order preserved).
func collectTuples(run func(emit func(mu []int64) bool)) [][]int64 {
	var out [][]int64
	run(func(mu []int64) bool {
		out = append(out, append([]int64(nil), mu...))
		return true
	})
	return out
}

func sameTuples(t *testing.T, label string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		if relation.CompareTuples(got[i], want[i]) != 0 {
			t.Fatalf("%s: tuple %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestBatchedDifferentialEquivalence is the batched-execution
// differential harness: on random graphs, random query shapes and
// random cache policies, every batched execution (Count, Eval, the
// columnar EvalBatches and the streaming producer) must reproduce the
// scalar path exactly — same counts, same tuples in the same order, and
// bit-identical stats.Counters for completed scans — across worker
// counts 1..3 and block sizes from 1 to far past the result size.
func TestBatchedDifferentialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(12)
		g := dataset.ErdosRenyi(n, 0.1+rng.Float64()*0.2, rng.Int63())
		db := g.DB(rng.Intn(2) == 0)
		q := diffQuery(trial, rng)
		plan, err := AutoPlan(q, db, AutoOptions{})
		if err != nil {
			t.Fatalf("trial %d: AutoPlan: %v", trial, err)
		}
		want, err := naive.Count(q, db)
		if err != nil {
			t.Fatal(err)
		}
		pol := Policy{
			Capacity:         rng.Intn(20),
			SupportThreshold: rng.Intn(3),
			Eviction:         EvictionMode(rng.Intn(3)),
			Disabled:         rng.Intn(4) == 0,
		}

		for _, workers := range []int{1, 2, 3} {
			base := pol
			base.Workers = workers

			// Scalar reference for this worker count.
			var cs stats.Counters
			sp := plan.WithCounters(&cs)
			if got := sp.CountParallel(base).Count; got != want {
				t.Fatalf("trial %d w=%d: scalar count %d, want %d (query %s)", trial, workers, got, want, q)
			}
			var es stats.Counters
			wantTuples := collectTuples(func(emit func([]int64) bool) {
				plan.WithCounters(&es).EvalParallel(base, emit)
			})
			if int64(len(wantTuples)) != want {
				t.Fatalf("trial %d w=%d: scalar eval emitted %d, want %d", trial, workers, len(wantTuples), want)
			}

			for _, bs := range batchDiffSizes {
				bpol := base
				bpol.BatchSize = bs

				var cb stats.Counters
				if got := plan.WithCounters(&cb).CountParallel(bpol).Count; got != want {
					t.Fatalf("trial %d w=%d bs=%d: batched count %d, want %d (query %s)", trial, workers, bs, got, want, q)
				}
				if cb != cs {
					t.Fatalf("trial %d w=%d bs=%d: count counters diverge\nbatch:  %+v\nscalar: %+v", trial, workers, bs, cb, cs)
				}

				var eb stats.Counters
				gotTuples := collectTuples(func(emit func([]int64) bool) {
					plan.WithCounters(&eb).EvalParallel(bpol, emit)
				})
				sameTuples(t, "batched eval", gotTuples, wantTuples)
				if eb != es {
					t.Fatalf("trial %d w=%d bs=%d: eval counters diverge\nbatch:  %+v\nscalar: %+v", trial, workers, bs, eb, es)
				}
			}
		}

		// Columnar batches (sequential by construction): the concatenated
		// blocks must carry exactly the sequential scalar tuple sequence,
		// with bit-identical accounting.
		seq := pol
		seq.Workers = 1
		var es stats.Counters
		wantSeq := collectTuples(func(emit func([]int64) bool) {
			plan.WithCounters(&es).Eval(seq, emit)
		})
		for _, bs := range batchDiffSizes {
			bpol := seq
			bpol.BatchSize = bs
			var eb stats.Counters
			bp := plan.WithCounters(&eb)
			var gotSeq [][]int64
			row := make([]int64, len(plan.Order()))
			bp.EvalBatches(bpol, func(b *Batch) bool {
				for i := 0; i < b.Len(); i++ {
					gotSeq = append(gotSeq, append([]int64(nil), b.Row(i, row)...))
				}
				return true
			})
			sameTuples(t, "columnar batches", gotSeq, wantSeq)
			if eb != es {
				t.Fatalf("trial %d bs=%d: EvalBatches counters diverge\nbatch:  %+v\nscalar: %+v", trial, bs, eb, es)
			}
		}

		// Streaming producer: under a disabled cache the stream must be
		// tuple-for-tuple the sequential scan order at every worker count
		// and block size — the byte-determinism the NDJSON endpoint
		// relies on. Counters must match the scalar stream at the same
		// worker count.
		nc := pol
		nc.Disabled = true
		nc.Workers = 1
		canon := collectTuples(func(emit func([]int64) bool) {
			plan.Eval(nc, emit)
		})
		for _, workers := range []int{1, 2, 3} {
			var ss stats.Counters
			scalarStream := collectTuples(func(emit func([]int64) bool) {
				plan.WithCounters(&ss).EvalStream(nc, workers, emit)
			})
			sameTuples(t, "stream scalar", scalarStream, canon)
			for _, bs := range batchDiffSizes {
				bpol := nc
				bpol.BatchSize = bs
				var sb stats.Counters
				stream := collectTuples(func(emit func([]int64) bool) {
					plan.WithCounters(&sb).EvalStream(bpol, workers, emit)
				})
				sameTuples(t, "stream batched", stream, canon)
				if sb != ss {
					t.Fatalf("trial %d w=%d bs=%d: stream counters diverge\nbatch:  %+v\nscalar: %+v", trial, workers, bs, sb, ss)
				}
			}
		}

		// A cached parallel stream silently trades its caches for the
		// canonical order: same bytes as the no-cache stream.
		for _, workers := range []int{2, 3} {
			cached := pol
			cached.Workers = 1
			stream := collectTuples(func(emit func([]int64) bool) {
				plan.EvalStream(cached, workers, emit)
			})
			sameTuples(t, "cached parallel stream", stream, canon)
		}
	}
}

// TestBatchedEarlyStop checks the one place batched execution is
// allowed to differ from scalar: an early-stopped scan (consumer
// returning false) must still terminate cleanly, deliver exactly the
// requested prefix of the canonical order, and stop the sharded
// producers without leaking goroutines (the -race run covers the leak
// half; here we pin the prefix semantics).
func TestBatchedEarlyStop(t *testing.T) {
	g := dataset.PreferentialAttachment(60, 4, 13)
	db := g.DB(false)
	q := queries.Path(4)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nc := Policy{Disabled: true}
	canon := collectTuples(func(emit func([]int64) bool) {
		plan.Eval(nc, emit)
	})
	if len(canon) < 50 {
		t.Skipf("result too small (%d) for the early-stop test", len(canon))
	}
	for _, workers := range []int{1, 2, 4} {
		for _, stop := range []int{1, 7, len(canon) / 2} {
			for _, bs := range []int{0, 1, 3, 64} {
				pol := nc
				pol.BatchSize = bs
				var got [][]int64
				res := plan.EvalStream(pol, workers, func(mu []int64) bool {
					got = append(got, append([]int64(nil), mu...))
					return len(got) < stop
				})
				if len(got) != stop {
					t.Fatalf("w=%d stop=%d bs=%d: got %d rows", workers, stop, bs, len(got))
				}
				if res.Emitted != int64(stop) {
					t.Fatalf("w=%d stop=%d bs=%d: result reports %d emitted", workers, stop, bs, res.Emitted)
				}
				sameTuples(t, "early-stop prefix", got, canon[:stop])
			}
		}
	}
}
