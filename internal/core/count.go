package core

import (
	"context"

	"repro/internal/leapfrog"
)

// CountResult reports a cached count execution.
type CountResult struct {
	// Count is |q(D)|.
	Count int64
	// CachedEntries is the number of intermediate results resident in the
	// caches at the end of the run.
	CachedEntries int
	// Levels holds the per-depth intersection tallies (merged across
	// workers in parallel runs); see AlwaysEmptyLevels for the re-plan
	// feedback they carry. Empty on cancelled runs.
	Levels []LevelStat
}

// Count runs CachedTJCount (Fig. 2) over the plan under the given policy
// and returns |q(D)|.
func (p *Plan) Count(policy Policy) CountResult {
	res, _ := p.CountCtx(context.Background(), policy)
	return res
}

// CountCtx is Count with cooperative cancellation: the recursive scan
// polls ctx once per leapfrog.CancelCheckEvery iterator advances and
// unwinds promptly when it is cancelled or its deadline passes,
// returning ctx's error and a zero result. A non-cancellable ctx
// (context.Background) runs the exact Count code path. Nothing is
// cached from a cancelled run: a partial intermediate must never be
// mistaken for the subtree's true count.
func (p *Plan) CountCtx(ctx context.Context, policy Policy) (CountResult, error) {
	if err := ctx.Err(); err != nil {
		return CountResult{}, err
	}
	if p.inst.Empty() {
		return CountResult{}, nil
	}
	e := &countExec{
		plan:   p,
		run:    leapfrog.NewRunnerCounters(p.inst, p.counters),
		intrmd: make([]int64, p.numNodes),
		cm:     newManager[int64](policy, p.numNodes, p.cacheable, p.counters, nil),
		cancel: leapfrog.NewCanceler(ctx),
		block:  policy.leafBlock(),
	}
	e.mu = e.run.Assignment()
	e.rjoin(0, 1)
	levels := mergeLevels(nil, e.run)
	e.run.Release()
	if err := e.cancel.Err(); err != nil {
		return CountResult{}, err
	}
	return CountResult{Count: e.total, CachedEntries: e.cm.Entries(), Levels: levels}, nil
}

type countExec struct {
	plan   *Plan
	run    *leapfrog.Runner
	mu     []int64
	intrmd []int64
	cm     *manager[int64]
	cancel *leapfrog.Canceler // nil never cancels
	total  int64
	block  []int64 // deepest-level key block; nil = scalar advances
}

// rjoin is RCachedJoin(d, f) of Fig. 2 (0-based depths). f aggregates the
// cached factors of skipped subtrees; every arrival at depth n adds f to
// the total, so with no cache hits (f == 1 throughout) the procedure is
// exactly RJoin of Fig. 1.
func (e *countExec) rjoin(d int, f int64) {
	p := e.plan
	if d == p.numVars {
		e.total += f
		return
	}
	v := p.ownerOf[d]
	// Caching applies only when entering a cacheable bag; bags whose
	// adhesion is wider than MaxKeyDim run plain LFTJ (cf. §4 footnote on
	// wide relations).
	entering := p.bagFirst[d] && v != p.root && p.cacheable[v]
	var key Key
	if p.bagFirst[d] {
		e.intrmd[v] = 0
	}
	if entering {
		// Lines 6-12: entering v from a different bag; its adhesion is
		// fully assigned (strong compatibility), so probe the cache.
		key = p.keyAt(v, e.mu)
		if val, ok := e.cm.lookup(v, key); ok {
			// Skip past the subtree interval, multiplying the factor. A
			// cached zero means the subtree cannot match this adhesion
			// assignment at all, so the whole prefix is dead — prune
			// rather than carry a zero factor as Fig. 2 literally would.
			e.intrmd[v] = val
			if val != 0 {
				e.rjoin(p.subtreeEnd[v]+1, f*val)
			}
			return
		}
	}

	// Lines 13-19: the ordinary trie-join scan of x_d.
	frog, ok := e.run.OpenDepth(d)
	if e.block != nil && d == p.numVars-1 {
		// Batched leaf: the deepest depth is always its bag's last (the
		// subtree intervals compile() builds are contiguous and end at
		// numVars-1) and the bag has no effective children, so every
		// block match contributes f to the total and 1 to intrmd[v] —
		// no per-key mu write or child fold is needed. Frog.NextBatch
		// replays the scalar Key/Next charges, so completed scans
		// account bit-identically to the loop below.
		for ok && !e.cancel.Poll() {
			n := int64(frog.NextBatch(e.block))
			e.total += f * n
			e.intrmd[v] += n
			ok = !frog.AtEnd()
		}
	} else {
		for ok && !e.cancel.Poll() {
			e.mu[d] = frog.Key()
			e.rjoin(d+1, f)
			if p.bagLast[d] {
				// Line 16-18: fold the children's intermediate counts.
				prod := int64(1)
				for _, c := range p.children[v] {
					prod *= e.intrmd[c]
					if prod == 0 {
						break
					}
				}
				e.intrmd[v] += prod
			}
			ok = frog.Next()
		}
	}
	e.run.CloseDepth(d)

	// Lines 20-22: about to leave v upward; cache if the policy agrees.
	// A cancelled scan left intrmd[v] partial — never cache it.
	if entering && e.cancel.Err() == nil && e.cm.shouldCache(v, key) {
		e.cm.store(v, key, e.intrmd[v])
	}
}
