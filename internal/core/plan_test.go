package core

import (
	"reflect"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/td"
)

func TestNewPlanRejectsIncompatibleOrder(t *testing.T) {
	q := queries.Path(3)
	db := dataset.ErdosRenyi(10, 0.3, 1).DB(false)
	tree := td.MustNew([][]int{{0, 1}, {1, 2}}, []int{-1, 0})
	// x3 before x1 puts the child's variable before the root's.
	if _, err := NewPlan(q, db, tree, []string{"x3", "x2", "x1"}, nil); err == nil {
		t.Fatal("incompatible order accepted")
	}
	if _, err := NewPlan(q, db, tree, []string{"x1", "x2", "x3"}, nil); err != nil {
		t.Fatalf("compatible order rejected: %v", err)
	}
}

func TestNewPlanRejectsInvalidTD(t *testing.T) {
	q := queries.Path(3)
	db := dataset.ErdosRenyi(10, 0.3, 1).DB(false)
	bad := td.MustNew([][]int{{0, 1}}, []int{-1}) // misses atom E(x2,x3)
	if _, err := NewPlan(q, db, bad, []string{"x1", "x2", "x3"}, nil); err == nil {
		t.Fatal("invalid TD accepted")
	}
}

func TestNewPlanRejectsWrongOrderLength(t *testing.T) {
	q := queries.Path(3)
	db := dataset.ErdosRenyi(10, 0.3, 1).DB(false)
	tree := td.MustNew([][]int{{0, 1, 2}}, []int{-1})
	if _, err := NewPlan(q, db, tree, []string{"x1", "x2"}, nil); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := NewPlan(q, db, tree, []string{"x1", "x2", "zz"}, nil); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

func TestPlanContractsOwnerlessBags(t *testing.T) {
	// A TD with a redundant middle bag that owns nothing: {x1,x2} -
	// {x2} - {x2,x3}. The plan must contract it and still count right.
	q := queries.Path(3)
	db := dataset.ErdosRenyi(12, 0.3, 2).DB(false)
	tree := td.MustNew([][]int{{0, 1}, {1}, {1, 2}}, []int{-1, 0, 1})
	plan, err := NewPlan(q, db, tree, []string{"x1", "x2", "x3"}, nil)
	if err != nil {
		t.Fatalf("plan with ownerless bag rejected: %v", err)
	}
	lftj := plan.Count(Policy{Disabled: true}).Count
	cached := plan.Count(Policy{}).Count
	if lftj != cached {
		t.Fatalf("counts differ: %d vs %d", lftj, cached)
	}
}

func TestPlanWideAdhesionUncached(t *testing.T) {
	// Construct a query whose only non-trivial TD has a 5-dimensional
	// adhesion: a K5 plus a pendant connected to all five — the bag
	// {pendant + K5} hangs below the K5 bag with adhesion of size 5.
	var atoms []cq.Atom
	names := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			atoms = append(atoms, cq.NewAtom("E", names[i], names[j]))
		}
	}
	for i := 0; i < 5; i++ {
		atoms = append(atoms, cq.NewAtom("E", names[i], "p"))
	}
	q := cq.New(atoms...)
	db := dataset.ErdosRenyi(8, 0.6, 3).DB(false)
	tree := td.MustNew([][]int{{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4, 5}}, []int{-1, 0})
	plan, err := NewPlan(q, db, tree, append(append([]string(nil), names...), "p"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dims := plan.CacheDims(); len(dims) != 0 {
		t.Fatalf("5-dimensional adhesion should be uncacheable, got dims %v", dims)
	}
	// Still counts correctly (as pure LFTJ).
	if got, want := plan.Count(Policy{}).Count, plan.Count(Policy{Disabled: true}).Count; got != want {
		t.Fatalf("counts differ: %d vs %d", got, want)
	}
}

func TestPlanAccessors(t *testing.T) {
	q := queries.Path(4)
	db := dataset.ErdosRenyi(15, 0.25, 4).DB(false)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Instance() == nil || plan.TD() == nil {
		t.Fatal("nil accessors")
	}
	if len(plan.Order()) != 4 {
		t.Fatalf("Order = %v", plan.Order())
	}
	dims := plan.CacheDims()
	for _, d := range dims {
		if d != 1 {
			t.Errorf("path cache dims = %v, want all 1", dims)
		}
	}
}

func TestAutoPlanSingletonForClique(t *testing.T) {
	q := queries.Clique(4)
	db := dataset.ErdosRenyi(12, 0.5, 5).DB(false)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TD().N() != 1 {
		t.Fatalf("clique TD has %d bags:\n%s", plan.TD().N(), plan.TD())
	}
	if len(plan.CacheDims()) != 0 {
		t.Fatalf("clique plan has cache sites %v", plan.CacheDims())
	}
}

func TestAutoPlanOptionsVariants(t *testing.T) {
	q := queries.Cycle(4)
	db := dataset.ErdosRenyi(15, 0.25, 6).DB(false)
	base, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noCost, err := AutoPlan(q, db, AutoOptions{SkipOrderCost: true, SkipSkew: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := noCost.Count(Policy{}).Count, base.Count(Policy{}).Count; got != want {
		t.Fatalf("counts differ across cost options: %d vs %d", got, want)
	}
}

func TestKeyAt(t *testing.T) {
	q := queries.Path(3)
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 2}, {2, 3}}))
	tree := td.MustNew([][]int{{0, 1}, {1, 2}}, []int{-1, 0})
	plan, err := NewPlan(q, db, tree, []string{"x1", "x2", "x3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu := []int64{7, 8, 9}
	got := plan.keyAt(1, mu) // bag 1's adhesion is {x2} at depth 1
	if !reflect.DeepEqual(got, Key{8, 0, 0, 0}) {
		t.Fatalf("keyAt = %v", got)
	}
}
