package core

import (
	"testing"

	"repro/internal/stats"
)

func newTestManager(p Policy, nodes int) *manager[int64] {
	cacheable := make([]bool, nodes)
	for i := range cacheable {
		cacheable[i] = true
	}
	return newManager[int64](p, nodes, cacheable, nil, nil)
}

func key(vals ...int64) Key {
	var k Key
	copy(k[:], vals)
	return k
}

func TestManagerStoreLookup(t *testing.T) {
	m := newTestManager(Policy{}, 2)
	if _, ok := m.lookup(0, key(1)); ok {
		t.Fatal("lookup hit on empty cache")
	}
	m.store(0, key(1), 42)
	if v, ok := m.lookup(0, key(1)); !ok || v != 42 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	// Caches are per bag.
	if _, ok := m.lookup(1, key(1)); ok {
		t.Fatal("bag 1 sees bag 0's entry")
	}
	if m.Entries() != 1 {
		t.Fatalf("Entries = %d", m.Entries())
	}
}

func TestManagerOverwriteInPlace(t *testing.T) {
	m := newTestManager(Policy{Capacity: 1}, 1)
	m.store(0, key(1), 10)
	m.store(0, key(1), 20)
	if v, _ := m.lookup(0, key(1)); v != 20 {
		t.Fatalf("overwrite kept %d", v)
	}
	if m.Entries() != 1 {
		t.Fatalf("Entries = %d after overwrite", m.Entries())
	}
}

func TestManagerCapacityFIFO(t *testing.T) {
	m := newTestManager(Policy{Capacity: 2, Eviction: EvictFIFO}, 1)
	m.store(0, key(1), 1)
	m.store(0, key(2), 2)
	m.store(0, key(3), 3) // evicts key(1)
	if m.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", m.Entries())
	}
	if _, ok := m.lookup(0, key(1)); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := m.lookup(0, key(3)); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestManagerCapacityLRU(t *testing.T) {
	m := newTestManager(Policy{Capacity: 2, Eviction: EvictLRU}, 1)
	m.store(0, key(1), 1)
	m.store(0, key(2), 2)
	// Touch key(1): key(2) becomes the LRU victim.
	if _, ok := m.lookup(0, key(1)); !ok {
		t.Fatal("lookup miss")
	}
	m.store(0, key(3), 3)
	if _, ok := m.lookup(0, key(2)); ok {
		t.Fatal("LRU victim key(2) survived")
	}
	if _, ok := m.lookup(0, key(1)); !ok {
		t.Fatal("recently used key(1) evicted")
	}
	if _, ok := m.lookup(0, key(3)); !ok {
		t.Fatal("new key(3) missing")
	}
}

func TestManagerLRUVsFIFODiffer(t *testing.T) {
	// Same access pattern; FIFO evicts the touched key, LRU keeps it.
	fifo := newTestManager(Policy{Capacity: 2, Eviction: EvictFIFO}, 1)
	fifo.store(0, key(1), 1)
	fifo.store(0, key(2), 2)
	fifo.lookup(0, key(1))
	fifo.store(0, key(3), 3)
	if _, ok := fifo.lookup(0, key(1)); ok {
		t.Fatal("FIFO kept the oldest entry")
	}
}

func TestManagerCapacityRejectNew(t *testing.T) {
	m := newTestManager(Policy{Capacity: 2, Eviction: EvictNone}, 1)
	m.store(0, key(1), 1)
	m.store(0, key(2), 2)
	m.store(0, key(3), 3) // rejected
	if _, ok := m.lookup(0, key(3)); ok {
		t.Fatal("entry inserted beyond capacity with EvictNone")
	}
	if _, ok := m.lookup(0, key(1)); !ok {
		t.Fatal("existing entry lost with EvictNone")
	}
}

func TestManagerSupportThreshold(t *testing.T) {
	m := newTestManager(Policy{SupportThreshold: 2}, 1)
	// First and second sightings: below support.
	m.lookup(0, key(7))
	if m.shouldCache(0, key(7)) {
		t.Fatal("cached after 1 sighting with threshold 2")
	}
	m.lookup(0, key(7))
	if m.shouldCache(0, key(7)) {
		t.Fatal("cached after 2 sightings with threshold 2")
	}
	m.lookup(0, key(7))
	if !m.shouldCache(0, key(7)) {
		t.Fatal("not cached after 3 sightings with threshold 2")
	}
}

func TestManagerDisabled(t *testing.T) {
	cacheable := []bool{true}
	m := newManager[int64](Policy{Disabled: true}, 1, cacheable, nil, nil)
	m.store(0, key(1), 1)
	if _, ok := m.lookup(0, key(1)); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if m.shouldCache(0, key(1)) {
		// shouldCache must be false when disabled.
		t.Fatal("disabled cache wants to cache")
	}
}

func TestManagerUncacheableBag(t *testing.T) {
	m := newManager[int64](Policy{}, 2, []bool{true, false}, nil, nil)
	m.store(1, key(1), 5)
	if _, ok := m.lookup(1, key(1)); ok {
		t.Fatal("uncacheable bag stored an entry")
	}
}

func TestManagerCountsStats(t *testing.T) {
	var c stats.Counters
	m := newManager[int64](Policy{}, 1, []bool{true}, &c, nil)
	m.lookup(0, key(1))
	m.store(0, key(1), 9)
	m.lookup(0, key(1))
	if c.CacheMisses != 1 || c.CacheHits != 1 || c.CacheInserts != 1 {
		t.Fatalf("stats = %+v", c)
	}
	if c.HashAccesses == 0 {
		t.Fatal("no hash accesses recorded")
	}
}

func TestManagerWeightedCost(t *testing.T) {
	cacheable := []bool{true}
	m := newManager[[]int64](Policy{Capacity: 5}, 1, cacheable, nil, func(v []int64) int { return len(v) })
	m.store(0, key(1), []int64{1, 2, 3})
	if m.Entries() != 3 {
		t.Fatalf("weighted Entries = %d, want 3", m.Entries())
	}
	m.store(0, key(2), []int64{1, 2, 3}) // 3+3 > 5: evict the first
	if m.Entries() > 5 {
		t.Fatalf("capacity exceeded: %d", m.Entries())
	}
	// A value larger than the whole capacity is rejected outright.
	m2 := newManager[[]int64](Policy{Capacity: 2}, 1, cacheable, nil, func(v []int64) int { return len(v) })
	m2.store(0, key(1), []int64{1, 2, 3})
	if _, ok := m2.lookup(0, key(1)); ok {
		t.Fatal("oversized value stored")
	}
}
