package core

import (
	"context"

	"repro/internal/factorized"
	"repro/internal/leapfrog"
	"repro/internal/stats"
)

// This file parallelizes CLFTJ by sharding the root trie level. The
// outermost loop of CachedTJCount iterates the matches of the first
// variable, and distinct root values are independent: no cache key ever
// spans two of them, because adhesion depths of every cacheable bag are
// strictly smaller than the bag's first depth and depth 0 belongs to the
// root bag, which is never cached. The engine therefore enumerates the
// root domain once (a cheap k-way intersection scan), deals the values to
// K workers round-robin, and gives every worker its own runner (private
// trie cursors over the shared immutable tries), its own cache manager
// and its own stats.Counters. Workers never share mutable state; worker
// results and accounting are merged after the join, in worker order, so
// runs are deterministic. See DESIGN.md, "Parallel execution", for the
// shared-vs-per-worker cache tradeoff this design picks a side of.

// shardSetup resolves the worker count and, when sharding is worthwhile,
// enumerates the shard domain (the root trie level) via the shared
// leapfrog.ShardDomain helper. A returned count of 1 means the caller
// must take the sequential path.
func (p *Plan) shardSetup(policy Policy) ([]int64, int) {
	return leapfrog.ShardDomain(p.inst, policy.Workers, p.counters)
}

// runShards runs body on one goroutine per worker via the shared
// leapfrog.RunSharded orchestration, merging per-worker accounting into
// the plan's sink.
func (p *Plan) runShards(workers int, body func(w int, wc *stats.Counters)) {
	leapfrog.RunSharded(workers, p.counters, body)
}

// CountParallel runs CachedTJCount sharded over policy.Workers goroutines
// (0: one per core; 1: exactly the sequential Count code path). The count
// is bit-identical to Count(policy) under every policy: per-worker caches
// only change which subtrees are recomputed rather than reused, and a
// cached intermediate always equals what recomputation would produce.
// CachedEntries sums the workers' resident entries; note that the
// capacity bound applies per worker, so K workers may retain up to
// K*Capacity entries in total.
func (p *Plan) CountParallel(policy Policy) CountResult {
	res, _ := p.CountParallelCtx(context.Background(), policy)
	return res
}

// CountParallelCtx is CountParallel with cooperative cancellation:
// every worker polls ctx through its own leapfrog.Canceler (private
// tick state, like its private Counters and caches) and stops both its
// per-shard seek loop and the recursive scan under each root value when
// ctx trips, so all workers drain within one polling period and the
// call returns ctx's error with no goroutine left behind. A
// non-cancellable ctx runs the exact CountParallel code path.
func (p *Plan) CountParallelCtx(ctx context.Context, policy Policy) (CountResult, error) {
	if err := ctx.Err(); err != nil {
		return CountResult{}, err
	}
	if p.inst.Empty() {
		return CountResult{}, nil
	}
	keys, workers := p.shardSetup(policy)
	if workers <= 1 {
		return p.CountCtx(ctx, policy)
	}
	totals := make([]int64, workers)
	entries := make([]int, workers)
	wlevels := make([][]LevelStat, workers)
	p.runShards(workers, func(w int, wc *stats.Counters) {
		e := &countExec{
			plan:   p,
			run:    leapfrog.NewRunnerCounters(p.inst, wc),
			intrmd: make([]int64, p.numNodes),
			cm:     newManager[int64](policy, p.numNodes, p.cacheable, wc, nil),
			cancel: leapfrog.NewCanceler(ctx),
			block:  policy.leafBlock(),
		}
		e.mu = e.run.Assignment()
		e.shardScan(keys, w, workers)
		wlevels[w] = mergeLevels(nil, e.run)
		e.run.Release()
		totals[w] = e.total
		entries[w] = e.cm.Entries()
	})
	if err := ctx.Err(); err != nil {
		return CountResult{}, err
	}
	var res CountResult
	for w := range totals {
		res.Count += totals[w]
		res.CachedEntries += entries[w]
		res.Levels = sumLevels(res.Levels, wlevels[w])
	}
	return res, nil
}

// shardScan runs the depth-0 loop of rjoin restricted to the root values
// keys[start], keys[start+stride], ... — the worker's shard. Values in a
// shard ascend, so the forward-only frog seek visits each in one pass.
func (e *countExec) shardScan(keys []int64, start, stride int) {
	p := e.plan
	root := p.root
	e.intrmd[root] = 0
	frog, ok := e.run.OpenDepth(0)
	for i := start; ok && i < len(keys) && !e.cancel.Poll(); i += stride {
		if !frog.SeekGE(keys[i]) {
			break
		}
		e.mu[0] = keys[i]
		e.rjoin(1, 1)
		if p.bagLast[0] {
			prod := int64(1)
			for _, c := range p.children[root] {
				prod *= e.intrmd[c]
				if prod == 0 {
					break
				}
			}
			e.intrmd[root] += prod
		}
	}
	e.run.CloseDepth(0)
}

// AggregateParallel is Aggregate sharded over policy.Workers goroutines
// (0: one per core; 1: the sequential code path). Per-tuple ⊗-products
// are formed in exactly the sequential association; only the ⊕-fold is
// regrouped by shard, so the result is bit-identical to Aggregate
// whenever ⊕ is exactly associative (integer addition, min/max — hence
// CountSemiring and TropicalSemiring reproduce sequential results
// bit-for-bit). For floating-point ⊕ (SumProductSemiring) the result is
// deterministic for a fixed worker count but may differ from the
// sequential rounding by the usual reassociation error.
func AggregateParallel[T any](p *Plan, policy Policy, sr Semiring[T], w VarWeight[T]) T {
	t, _ := AggregateParallelCtx(context.Background(), p, policy, sr, w)
	return t
}

// AggregateParallelCtx is AggregateParallel with cooperative
// cancellation (per-worker Cancelers, exactly as CountParallelCtx);
// it returns sr.Zero and ctx's error when ctx trips.
func AggregateParallelCtx[T any](ctx context.Context, p *Plan, policy Policy, sr Semiring[T], w VarWeight[T]) (T, error) {
	if err := ctx.Err(); err != nil {
		return sr.Zero, err
	}
	if p.inst.Empty() {
		return sr.Zero, nil
	}
	keys, workers := p.shardSetup(policy)
	if workers <= 1 {
		return AggregateCtx(ctx, p, policy, sr, w)
	}
	totals := make([]T, workers)
	p.runShards(workers, func(wi int, wc *stats.Counters) {
		e := &aggExec[T]{
			plan:   p,
			run:    leapfrog.NewRunnerCounters(p.inst, wc),
			sr:     sr,
			w:      w,
			total:  sr.Zero,
			intrmd: make([]T, p.numNodes),
			cm:     newManager[T](policy, p.numNodes, p.cacheable, wc, nil),
			cancel: leapfrog.NewCanceler(ctx),
		}
		e.mu = e.run.Assignment()
		e.shardScan(keys, wi, workers)
		e.run.Release()
		totals[wi] = e.total
	})
	if err := ctx.Err(); err != nil {
		return sr.Zero, err
	}
	total := sr.Zero
	for _, t := range totals {
		total = sr.Add(total, t)
	}
	return total, nil
}

// shardScan is the aggregate twin of countExec.shardScan: the depth-0
// scan restricted to the worker's root values, with the same per-value
// weight factoring and child folding as the sequential rjoin.
func (e *aggExec[T]) shardScan(keys []int64, start, stride int) {
	p := e.plan
	root := p.root
	e.intrmd[root] = e.sr.Zero
	frog, ok := e.run.OpenDepth(0)
	for i := start; ok && i < len(keys) && !e.cancel.Poll(); i += stride {
		if !frog.SeekGE(keys[i]) {
			break
		}
		a := keys[i]
		e.mu[0] = a
		e.rjoin(1, e.sr.Mul(e.sr.One, e.w(0, a)))
		if p.bagLast[0] {
			prod := e.sr.One
			for dd := p.firstVar[root]; dd <= p.lastVar[root]; dd++ {
				prod = e.sr.Mul(prod, e.w(dd, e.mu[dd]))
			}
			for _, c := range p.children[root] {
				prod = e.sr.Mul(prod, e.intrmd[c])
				if e.sr.IsZero != nil && e.sr.IsZero(prod) {
					break
				}
			}
			e.intrmd[root] = e.sr.Add(e.intrmd[root], prod)
		}
	}
	e.run.CloseDepth(0)
}

// EvalParallel is Eval sharded over policy.Workers goroutines (0: one per
// core; 1: the sequential, streaming code path). Workers buffer their
// tuples per root value; once all workers join, the buffers are emitted
// in ascending root order, so the stream consists of the same root-value
// blocks in the same order as sequential Eval. Within one block the order
// matches the sequential run except where caches reorder subtree
// expansion (a cache hit expands the memoized subtree at emit time, a
// scan emits it during the scan — the same reordering a sequential cached
// run exhibits); with Policy.Disabled the stream is tuple-for-tuple the
// sequential scan order. The tradeoff is materialization: the full result
// is held in memory before the first emit, and an emit callback returning
// false stops the delivery but not the (already finished) join — use the
// sequential Eval for streaming or early-stopping consumers. Unlike
// sequential Eval, the emitted slices are freshly allocated and may be
// retained by the callback.
func (p *Plan) EvalParallel(policy Policy, emit func(mu []int64) bool) EvalResult {
	res, _ := p.EvalParallelCtx(context.Background(), policy, emit)
	return res
}

// EvalParallelCtx is EvalParallel with cooperative cancellation
// (per-worker Cancelers, exactly as CountParallelCtx). When ctx trips,
// the workers drain within one polling period, the partially buffered
// result is discarded without any emit call, and ctx's error is
// returned. A non-cancellable ctx runs the exact EvalParallel code
// path.
func (p *Plan) EvalParallelCtx(ctx context.Context, policy Policy, emit func(mu []int64) bool) (EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return EvalResult{}, err
	}
	if p.inst.Empty() {
		return EvalResult{}, nil
	}
	keys, workers := p.shardSetup(policy)
	if workers <= 1 {
		return p.EvalCtx(ctx, policy, emit)
	}
	// buckets[i] collects the result tuples whose root value is keys[i];
	// shards own disjoint index sets, so no locking is needed.
	buckets := make([][][]int64, len(keys))
	entries := make([]int, workers)
	wlevels := make([][]LevelStat, workers)
	p.runShards(workers, func(w int, wc *stats.Counters) {
		e := &evalExec{
			plan:    p,
			run:     leapfrog.NewRunnerCounters(p.inst, wc),
			ctrs:    wc,
			sets:    make([]factorized.Set, p.numNodes),
			collect: make([]bool, p.numNodes),
			intent:  make([]bool, p.numNodes),
			cancel:  leapfrog.NewCanceler(ctx),
			cm: newManager[factorized.Set](policy, p.numNodes, p.cacheable, wc,
				func(s factorized.Set) int { return len(s) }),
			block: policy.leafBlock(),
		}
		cur := -1
		e.emit = func(mu []int64) bool {
			buckets[cur] = append(buckets[cur], append([]int64(nil), mu...))
			return true
		}
		e.mu = e.run.Assignment()
		e.shardScan(keys, w, workers, func(i int) { cur = i })
		wlevels[w] = mergeLevels(nil, e.run)
		e.run.Release()
		entries[w] = e.cm.Entries()
	})
	if err := ctx.Err(); err != nil {
		return EvalResult{}, err
	}
	var res EvalResult
	for w, n := range entries {
		res.CachedEntries += n
		res.Levels = sumLevels(res.Levels, wlevels[w])
	}
	for _, bucket := range buckets {
		for _, tup := range bucket {
			res.Emitted++
			if !emit(tup) {
				return res, nil
			}
		}
	}
	return res, nil
}

// shardScan is the evaluation twin of countExec.shardScan. enter is
// invoked with the root key index before each root value is evaluated
// (the parallel driver uses it to select the output bucket).
func (e *evalExec) shardScan(keys []int64, start, stride int, enter func(i int)) bool {
	p := e.plan
	root := p.root
	e.intent[root] = false
	e.collect[root] = e.collectRoot
	e.sets[root] = nil
	frog, ok := e.run.OpenDepth(0)
	cont := true
	for i := start; ok && cont && i < len(keys) && !e.cancel.Poll(); i += stride {
		if !frog.SeekGE(keys[i]) {
			break
		}
		enter(i)
		e.mu[0] = keys[i]
		cont = e.rjoin(1)
		if p.bagLast[0] && e.collect[root] && cont {
			e.appendEntry(root)
		}
	}
	e.run.CloseDepth(0)
	return cont
}
