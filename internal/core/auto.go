package core

import (
	"math"

	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
	"repro/internal/trie"
)

// Orderer names a planning strategy for AutoPlan: how the tree
// decomposition and its strongly compatible variable order are chosen.
// The planner taxonomy and the exact ranking rules are normative in
// docs/PLANNING.md.
type Orderer string

const (
	// OrdererCost is the default data-dependent strategy: score TD
	// candidates with the full heuristic cost model (adhesion dimension,
	// bag count, depth, data skew, estimated order cost — the expensive
	// term, one probe trie set per candidate).
	OrdererCost Orderer = "cost"
	// OrdererGreedy is the stats-free strategy: rank variables by
	// constant-specialized atoms, then shared-variable connectivity
	// (td.GreedyOrder) and select a TD by structural terms plus ranking
	// agreement — O(vars·atoms) planning, no index ever touched.
	OrdererGreedy Orderer = "greedy"
	// OrdererAdaptive plans like OrdererGreedy; engines layered above
	// (package server) additionally observe executions of the cached
	// plan and re-plan with demoted variables when the observed trie
	// traffic diverges from the estimate. At this layer it differs from
	// OrdererGreedy only in honoring AutoOptions.Demote.
	OrdererAdaptive Orderer = "adaptive"
)

// Valid reports whether o names a known strategy ("" counts: it means
// OrdererCost).
func (o Orderer) Valid() bool {
	switch o {
	case "", OrdererCost, OrdererGreedy, OrdererAdaptive:
		return true
	}
	return false
}

// AutoOptions configures automatic plan selection.
type AutoOptions struct {
	// TD controls the decomposition enumeration (zero value: defaults).
	TD td.Options
	// Cost overrides the TD cost weights (zero value: defaults).
	Cost td.CostConfig
	// Orderer selects the planning strategy ("" = OrdererCost). Greedy
	// and adaptive skip the entire cost model — skew probes and
	// order-cost trie builds included — so SkipOrderCost/SkipSkew are
	// irrelevant under them.
	Orderer Orderer
	// Demote lists variable names pushed to the back of the greedy
	// ranking (execution feedback from always-empty intersection levels;
	// see AlwaysEmptyLevels). Ignored under OrdererCost.
	Demote []string
	// SkipOrderCost disables the Chu-et-al.-style order-cost term, which
	// requires building one trie set per candidate decomposition.
	SkipOrderCost bool
	// SkipSkew disables the data-skew term of the cost model.
	SkipSkew bool
	// Counters is the accounting sink for the final plan (may be nil).
	Counters *stats.Counters
	// Tries is an optional shared trie source (a trie.Registry): both
	// the order-cost probes and the final plan draw their indices from
	// it, so a long-lived engine compiles repeated queries without a
	// single trie build. May be nil.
	Tries leapfrog.TrieSource
	// BuildWorkers bounds the goroutines each private trie build of the
	// final plan may use (0 or 1: sequential; < 0: one per core); see
	// leapfrog.BuildOpts.Workers. Order-cost probe builds stay
	// sequential — they are throwaway and already amortized.
	BuildWorkers int
}

// AutoPlan selects a tree decomposition and strongly compatible variable
// order for q (AutoSelect) and compiles them. Under the default
// OrdererCost selection follows §4: enumerate decompositions biased
// toward small adhesions, score them with the heuristic cost model
// (adhesion dimension, bag count, depth, data skew, estimated order
// cost) and compile the best. Under OrdererGreedy/OrdererAdaptive it
// ranks variables from the query pattern alone (td.SelectGreedy) —
// planning touches no data, which is the point: the E17 benchmark pits
// the two planning costs against each other.
func AutoPlan(q *cq.Query, db *relation.DB, opts AutoOptions) (*Plan, error) {
	tree, order, err := AutoSelect(q, db, opts)
	if err != nil {
		return nil, err
	}
	return newPlan(q, db, tree, order, leapfrog.BuildOpts{
		Counters: opts.Counters,
		Tries:    opts.Tries,
		Workers:  opts.BuildWorkers,
	})
}

// AutoSelect is the planning stage of AutoPlan alone: it returns the
// tree decomposition and strongly compatible variable order AutoPlan
// would compile, without building the plan (no final-plan trie work).
// Under OrdererCost the order-cost probes still touch data — and still
// charge shared-source builds to opts.Counters — because they ARE
// planning; under OrdererGreedy/OrdererAdaptive no index is ever
// opened. The E17 benchmark times exactly this function per strategy.
func AutoSelect(q *cq.Query, db *relation.DB, opts AutoOptions) (*td.TD, []string, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	qvars := q.Vars()
	if opts.Orderer == OrdererGreedy || opts.Orderer == OrdererAdaptive {
		tree, orderIdx := td.SelectGreedy(q, opts.TD, td.GreedyConfig{Demote: opts.Demote})
		order := make([]string, len(orderIdx))
		for d, xi := range orderIdx {
			order[d] = qvars[xi]
		}
		return tree, order, nil
	}
	cfg := opts.Cost
	if cfg.AdhesionBase == 0 {
		cfg = td.DefaultCostConfig(len(qvars))
	}
	cfg.NumVars = len(qvars)
	if !opts.SkipSkew && cfg.VarSkew == nil {
		cfg.VarSkew = varSkewFunc(q, db)
	}
	if !opts.SkipOrderCost && cfg.OrderCost == nil {
		// Probe builds are excluded from accounting (the paper measures
		// the run, not plan selection) — except for builds that land in a
		// shared trie source: those are real, once-per-engine work that
		// the triggering query must be charged for, and must NOT be
		// charged to later queries that reuse them (the registry prewarms
		// here, before the final plan compiles). Private probe tries
		// (constant-specialized atoms) are throwaway either way and stay
		// unaccounted, so a warm repeat of any query shape reports zero
		// probe builds.
		probeTries := opts.Tries
		if opts.Tries != nil {
			probeTries = chargedSource{src: opts.Tries, c: opts.Counters}
		}
		cfg.OrderCost = func(orderIdx []int) float64 {
			names := make([]string, len(orderIdx))
			for d, xi := range orderIdx {
				names[d] = qvars[xi]
			}
			inst, err := leapfrog.BuildWith(q, db, names, nil, probeTries)
			if err != nil {
				return math.Inf(1)
			}
			return inst.EstimateOrderCost()
		}
	}
	tree, orderIdx := td.Select(q, opts.TD, cfg)
	order := make([]string, len(orderIdx))
	for d, xi := range orderIdx {
		order[d] = qvars[xi]
	}
	return tree, order, nil
}

// chargedSource redirects a trie source's accounting to a fixed sink:
// the order-cost probes build instances with nil counters (their private
// tries are throwaway), but shared-source builds outlive the probe and
// must be charged to the query that triggered them.
type chargedSource struct {
	src leapfrog.TrieSource
	c   *stats.Counters
}

func (s chargedSource) Trie(rel *relation.Relation, perm []int, _ *stats.Counters) (*trie.Trie, error) {
	return s.src.Trie(rel, perm, s.c)
}

// varSkewFunc derives a per-variable skew coefficient from the database:
// the maximum skew of any relation column the variable is matched
// against. Column skews are computed once per (relation, column).
func varSkewFunc(q *cq.Query, db *relation.DB) func(int) float64 {
	type colKey struct {
		rel string
		col int
	}
	colSkew := make(map[colKey]float64)
	skewOf := func(rel *relation.Relation, col int) float64 {
		k := colKey{rel.Name(), col}
		if s, ok := colSkew[k]; ok {
			return s
		}
		s := stats.ColumnSkew(rel.Tuples(), col)
		colSkew[k] = s
		return s
	}
	idx := q.VarIndex()
	skews := make([]float64, len(idx))
	for _, atom := range q.Atoms {
		rel, err := db.Get(atom.Rel)
		if err != nil || rel.Arity() != len(atom.Args) {
			continue
		}
		for col, t := range atom.Args {
			if !t.IsVar() {
				continue
			}
			if s := skewOf(rel, col); s > skews[idx[t.Var]] {
				skews[idx[t.Var]] = s
			}
		}
	}
	return func(x int) float64 {
		if x < 0 || x >= len(skews) {
			return 0
		}
		return skews[x]
	}
}
