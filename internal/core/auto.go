package core

import (
	"math"

	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
	"repro/internal/trie"
)

// AutoOptions configures automatic plan selection.
type AutoOptions struct {
	// TD controls the decomposition enumeration (zero value: defaults).
	TD td.Options
	// Cost overrides the TD cost weights (zero value: defaults).
	Cost td.CostConfig
	// SkipOrderCost disables the Chu-et-al.-style order-cost term, which
	// requires building one trie set per candidate decomposition.
	SkipOrderCost bool
	// SkipSkew disables the data-skew term of the cost model.
	SkipSkew bool
	// Counters is the accounting sink for the final plan (may be nil).
	Counters *stats.Counters
	// Tries is an optional shared trie source (a trie.Registry): both
	// the order-cost probes and the final plan draw their indices from
	// it, so a long-lived engine compiles repeated queries without a
	// single trie build. May be nil.
	Tries leapfrog.TrieSource
	// BuildWorkers bounds the goroutines each private trie build of the
	// final plan may use (0 or 1: sequential; < 0: one per core); see
	// leapfrog.BuildOpts.Workers. Order-cost probe builds stay
	// sequential — they are throwaway and already amortized.
	BuildWorkers int
}

// AutoPlan selects a tree decomposition for q following §4: enumerate
// decompositions biased toward small adhesions, score them with the
// heuristic cost model (adhesion dimension, bag count, depth, data skew,
// estimated order cost) and compile the best one with its strongly
// compatible variable order.
func AutoPlan(q *cq.Query, db *relation.DB, opts AutoOptions) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	qvars := q.Vars()
	cfg := opts.Cost
	if cfg.AdhesionBase == 0 {
		cfg = td.DefaultCostConfig(len(qvars))
	}
	cfg.NumVars = len(qvars)
	if !opts.SkipSkew && cfg.VarSkew == nil {
		cfg.VarSkew = varSkewFunc(q, db)
	}
	if !opts.SkipOrderCost && cfg.OrderCost == nil {
		// Probe builds are excluded from accounting (the paper measures
		// the run, not plan selection) — except for builds that land in a
		// shared trie source: those are real, once-per-engine work that
		// the triggering query must be charged for, and must NOT be
		// charged to later queries that reuse them (the registry prewarms
		// here, before the final plan compiles). Private probe tries
		// (constant-specialized atoms) are throwaway either way and stay
		// unaccounted, so a warm repeat of any query shape reports zero
		// probe builds.
		probeTries := opts.Tries
		if opts.Tries != nil {
			probeTries = chargedSource{src: opts.Tries, c: opts.Counters}
		}
		cfg.OrderCost = func(orderIdx []int) float64 {
			names := make([]string, len(orderIdx))
			for d, xi := range orderIdx {
				names[d] = qvars[xi]
			}
			inst, err := leapfrog.BuildWith(q, db, names, nil, probeTries)
			if err != nil {
				return math.Inf(1)
			}
			return inst.EstimateOrderCost()
		}
	}
	tree, orderIdx := td.Select(q, opts.TD, cfg)
	order := make([]string, len(orderIdx))
	for d, xi := range orderIdx {
		order[d] = qvars[xi]
	}
	return newPlan(q, db, tree, order, leapfrog.BuildOpts{
		Counters: opts.Counters,
		Tries:    opts.Tries,
		Workers:  opts.BuildWorkers,
	})
}

// chargedSource redirects a trie source's accounting to a fixed sink:
// the order-cost probes build instances with nil counters (their private
// tries are throwaway), but shared-source builds outlive the probe and
// must be charged to the query that triggered them.
type chargedSource struct {
	src leapfrog.TrieSource
	c   *stats.Counters
}

func (s chargedSource) Trie(rel *relation.Relation, perm []int, _ *stats.Counters) (*trie.Trie, error) {
	return s.src.Trie(rel, perm, s.c)
}

// varSkewFunc derives a per-variable skew coefficient from the database:
// the maximum skew of any relation column the variable is matched
// against. Column skews are computed once per (relation, column).
func varSkewFunc(q *cq.Query, db *relation.DB) func(int) float64 {
	type colKey struct {
		rel string
		col int
	}
	colSkew := make(map[colKey]float64)
	skewOf := func(rel *relation.Relation, col int) float64 {
		k := colKey{rel.Name(), col}
		if s, ok := colSkew[k]; ok {
			return s
		}
		s := stats.ColumnSkew(rel.Tuples(), col)
		colSkew[k] = s
		return s
	}
	idx := q.VarIndex()
	skews := make([]float64, len(idx))
	for _, atom := range q.Atoms {
		rel, err := db.Get(atom.Rel)
		if err != nil || rel.Arity() != len(atom.Args) {
			continue
		}
		for col, t := range atom.Args {
			if !t.IsVar() {
				continue
			}
			if s := skewOf(rel, col); s > skews[idx[t.Var]] {
				skews[idx[t.Var]] = s
			}
		}
	}
	return func(x int) float64 {
		if x < 0 || x >= len(skews) {
			return 0
		}
		return skews[x]
	}
}
