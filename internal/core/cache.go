package core

import "repro/internal/stats"

// MaxKeyDim is the largest adhesion cardinality the caches index. The
// paper's caches support up to two dimensions (§5.1); we allow four.
// Bags whose adhesion is wider are simply never cached, exactly as the
// paper leaves wide-relation caching to future work.
const MaxKeyDim = 4

// Key is a fixed-width adhesion assignment; unused positions stay zero
// and the adhesion width is fixed per cache, so keys never collide.
type Key [MaxKeyDim]int64

// EvictionMode selects the behaviour of a full cache. The paper notes
// "the algorithm allows for arbitrary replacements or deletions from the
// cache" (§3.4); these are the deterministic policies provided.
type EvictionMode int

const (
	// EvictFIFO replaces the oldest-inserted entry (the default).
	EvictFIFO EvictionMode = iota
	// EvictNone rejects new insertions once the capacity is reached.
	EvictNone
	// EvictLRU replaces the least-recently-used entry (hits refresh).
	EvictLRU
)

// Policy configures CLFTJ's caching decisions (§3.4, §5.3.3).
type Policy struct {
	// Capacity bounds the total number of cached intermediate results
	// across all adhesion caches; 0 means unbounded. For evaluation,
	// factorized entries count individually.
	Capacity int
	// SupportThreshold caches an adhesion assignment only once it has
	// been encountered more than this many times (the paper's "support
	// larger than a threshold"); 0 caches on first sight.
	SupportThreshold int
	// Eviction selects full-cache behaviour.
	Eviction EvictionMode
	// Disabled turns all caching off; CLFTJ then coincides with LFTJ.
	Disabled bool
	// Workers sets the parallelism of the Parallel* entry points
	// (CountParallel, EvalParallel, AggregateParallel): 0 uses one worker
	// per core (runtime.GOMAXPROCS), 1 forces the sequential code path,
	// K > 1 shards the root variable's domain over K goroutines, each
	// with private caches and counters (merged after the join). The plain
	// Count/Eval/Aggregate entry points ignore the field and always run
	// sequentially.
	Workers int
	// BatchSize selects block-at-a-time execution for Count and Eval
	// (sequential, parallel and streaming): the deepest level's scan
	// advances in blocks of up to BatchSize keys through the trie/frog
	// batch primitives instead of one key per recursive step. 0 (the
	// default) keeps the scalar loops. Results, tuple order and — for
	// scans that run to completion — stats.Counters are bit-identical to
	// the scalar path (the batch primitives replay the scalar charge
	// sequence; the differential harness enforces it); an early-stopped
	// or cancelled batched scan may have read ahead up to one block.
	// Aggregate ignores the field (its leaf folds per-value weights, so
	// there is nothing to fuse).
	BatchSize int
}

// cache is one adhesion cache (one per cacheable bag), generic over the
// stored intermediate result: int64 counts, semiring values or
// factorized sets. Entries live in an intrusive doubly linked list in
// eviction order (front = next victim); FIFO never reorders, LRU moves
// hit entries to the back.
type cache[V any] struct {
	entries map[Key]*cacheEntry[V]
	head    *cacheEntry[V] // next eviction victim
	tail    *cacheEntry[V] // most recently inserted/used
}

type cacheEntry[V any] struct {
	key        Key
	val        V
	cost       int
	prev, next *cacheEntry[V]
}

func newCache[V any]() *cache[V] {
	return &cache[V]{entries: make(map[Key]*cacheEntry[V])}
}

func (c *cache[V]) pushBack(e *cacheEntry[V]) {
	e.prev, e.next = c.tail, nil
	if c.tail != nil {
		c.tail.next = e
	} else {
		c.head = e
	}
	c.tail = e
}

func (c *cache[V]) unlink(e *cacheEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// touch moves a hit entry to the back (LRU refresh).
func (c *cache[V]) touch(e *cacheEntry[V]) {
	if c.tail == e {
		return
	}
	c.unlink(e)
	c.pushBack(e)
}

// manager coordinates the per-bag caches of one execution under a shared
// capacity and support policy.
type manager[V any] struct {
	policy  Policy
	caches  []*cache[V] // indexed by bag node; nil for uncacheable bags
	support []map[Key]int
	total   int // stored cost units (entries for counts, factorized entries for sets)
	c       *stats.Counters
	cost    func(V) int // capacity cost of one value
}

func newManager[V any](policy Policy, numNodes int, cacheable []bool, c *stats.Counters, cost func(V) int) *manager[V] {
	m := &manager[V]{
		policy:  policy,
		caches:  make([]*cache[V], numNodes),
		support: make([]map[Key]int, numNodes),
		c:       c,
		cost:    cost,
	}
	for v := 0; v < numNodes; v++ {
		if cacheable[v] && !policy.Disabled {
			m.caches[v] = newCache[V]()
			if policy.SupportThreshold > 0 {
				m.support[v] = make(map[Key]int)
			}
		}
	}
	return m
}

// lookup probes bag v's cache; it also bumps the support counter, so call
// it exactly once per bag entry.
func (m *manager[V]) lookup(v int, key Key) (V, bool) {
	var zero V
	ch := m.caches[v]
	if ch == nil {
		return zero, false
	}
	if m.c != nil {
		m.c.HashAccesses++
	}
	if m.support[v] != nil {
		m.support[v][key]++
		if m.c != nil {
			m.c.HashAccesses++
		}
	}
	e, ok := ch.entries[key]
	if m.c != nil {
		if ok {
			m.c.CacheHits++
		} else {
			m.c.CacheMisses++
		}
	}
	if !ok {
		return zero, false
	}
	if m.policy.Eviction == EvictLRU {
		ch.touch(e)
	}
	return e.val, true
}

// shouldCache applies the support threshold for bag v and key.
func (m *manager[V]) shouldCache(v int, key Key) bool {
	ch := m.caches[v]
	if ch == nil {
		return false
	}
	if sup := m.support[v]; sup != nil && sup[key] <= m.policy.SupportThreshold {
		return false
	}
	return true
}

// store inserts the value, evicting per policy when the shared capacity
// is exhausted. Re-inserting an existing key overwrites in place.
func (m *manager[V]) store(v int, key Key, val V) {
	ch := m.caches[v]
	if ch == nil {
		return
	}
	cost := m.costOf(val)
	if old, exists := ch.entries[key]; exists {
		m.total += cost - old.cost
		old.val = val
		old.cost = cost
		if m.policy.Eviction == EvictLRU {
			ch.touch(old)
		}
		if m.c != nil {
			m.c.HashAccesses++
			m.c.CacheInserts++
		}
		return
	}
	if m.policy.Capacity > 0 && m.total+cost > m.policy.Capacity {
		if m.policy.Eviction == EvictNone {
			return
		}
		if !m.evictUntil(m.policy.Capacity - cost) {
			return // cannot make room (value larger than capacity)
		}
	}
	e := &cacheEntry[V]{key: key, val: val, cost: cost}
	ch.entries[key] = e
	ch.pushBack(e)
	m.total += cost
	if m.c != nil {
		m.c.HashAccesses++
		m.c.CacheInserts++
	}
}

func (m *manager[V]) costOf(val V) int {
	cost := 1
	if m.cost != nil {
		cost = m.cost(val)
		if cost < 1 {
			cost = 1
		}
	}
	return cost
}

// evictUntil evicts front entries (FIFO/LRU order, round-robin across
// bags) until total <= target, reporting success.
func (m *manager[V]) evictUntil(target int) bool {
	if target < 0 {
		return false
	}
	for m.total > target {
		evicted := false
		for _, ch := range m.caches {
			if ch == nil || ch.head == nil {
				continue
			}
			victim := ch.head
			ch.unlink(victim)
			delete(ch.entries, victim.key)
			m.total -= victim.cost
			if m.c != nil {
				m.c.CacheEvictions++
			}
			evicted = true
			if m.total <= target {
				return true
			}
		}
		if !evicted {
			return false
		}
	}
	return true
}

// Entries returns the number of stored cost units (for tests and stats).
func (m *manager[V]) Entries() int { return m.total }
