package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/queries"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPlanShapeGolden pins the planner's output per (query shape,
// orderer): the chosen variable order and the TD silhouette (bag count,
// max adhesion) over a fixed dataset. Any change to the cost model, the
// greedy ranking rules, or TD enumeration that moves a plan shows up as
// a diff against testdata/planshape.golden — regenerate deliberately
// with `go test ./internal/core -run PlanShapeGolden -update` and read
// the diff before committing it. The adaptive orderer is pinned twice:
// bare (identical to greedy by contract) and with a demoted variable,
// the re-plan input that must reorder the tail.
func TestPlanShapeGolden(t *testing.T) {
	db := dataset.TriadicPA(120, 3, 0.4, 4177).DB(false)

	constQ, err := cq.Parse("E(a,b), E(b,c), E(c,7)")
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct {
		name string
		q    *cq.Query
	}{
		{"triangle", queries.Clique(3)},
		{"4-clique", queries.Clique(4)},
		{"4-path", queries.Path(4)},
		{"4-cycle", queries.Cycle(4)},
		{"5-path", queries.Path(5)},
		{"lollipop(3,2)", queries.Lollipop(3, 2)},
		{"const-tail", constQ},
	}

	var sb strings.Builder
	for _, s := range shapes {
		for _, arm := range []struct {
			label string
			opts  AutoOptions
		}{
			{"cost", AutoOptions{}},
			{"greedy", AutoOptions{Orderer: OrdererGreedy}},
			{"adaptive", AutoOptions{Orderer: OrdererAdaptive}},
			{"adaptive+demote", AutoOptions{Orderer: OrdererAdaptive, Demote: s.q.Vars()[:1]}},
		} {
			tree, order, err := AutoSelect(s.q, db, arm.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.name, arm.label, err)
			}
			fmt.Fprintf(&sb, "%-14s %-16s order=[%s] bags=%d maxadh=%d\n",
				s.name, arm.label, strings.Join(order, " "), tree.N(), tree.MaxAdhesion())
		}
	}
	got := sb.String()

	// The layering contract stated in the Orderer docs: at this layer
	// adaptive differs from greedy only in honoring Demote.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, " adaptive ") {
			if g := strings.Replace(line, " adaptive        ", " greedy          ", 1); !strings.Contains(got, g) {
				t.Errorf("adaptive plan diverges from greedy without demotion:\n%s", line)
			}
		}
	}

	golden := filepath.Join("testdata", "planshape.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/core -run PlanShapeGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("plan shapes drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
