package core

import (
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
)

func TestEvalFactorizedCountsMatch(t *testing.T) {
	g := dataset.PreferentialAttachment(60, 3, 51)
	db := g.DB(false)
	q := queries.Path(5)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Count(Policy{}).Count
	set := plan.EvalFactorized(Policy{})
	if got := set.Count(); got != want {
		t.Fatalf("factorized count = %d, want %d", got, want)
	}
	// The factorized representation must be (much) smaller than the flat
	// result on a skewed path workload.
	if want > 1000 && int64(set.NumEntries()) >= want {
		t.Errorf("factorized entries %d not below flat count %d", set.NumEntries(), want)
	}
}

func TestEvalFactorizedExpansionMatchesNaive(t *testing.T) {
	g := dataset.ErdosRenyi(20, 0.2, 52)
	db := g.DB(false)
	q := queries.Path(4)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	set := plan.EvalFactorized(Policy{})

	var got [][]int64
	plan.ExpandFactorized(set, func(mu []int64) bool {
		got = append(got, append([]int64(nil), mu...))
		return true
	})
	// Reorder to q.Vars() and compare with the oracle.
	order := plan.Order()
	pos := make(map[string]int)
	for d, v := range order {
		pos[v] = d
	}
	for i, tup := range got {
		fixed := make([]int64, len(tup))
		for j, v := range q.Vars() {
			fixed[j] = tup[pos[v]]
		}
		got[i] = fixed
	}
	sort.Slice(got, func(i, j int) bool { return relation.CompareTuples(got[i], got[j]) < 0 })
	want, err := naive.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("expansion produced %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if relation.CompareTuples(got[i], want[i]) != 0 {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvalFactorizedEarlyStopExpansion(t *testing.T) {
	g := dataset.PreferentialAttachment(60, 3, 53)
	db := g.DB(false)
	plan, err := AutoPlan(queries.Path(4), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	set := plan.EvalFactorized(Policy{})
	if set.Count() < 10 {
		t.Skip("result too small")
	}
	n := 0
	plan.ExpandFactorized(set, func([]int64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop expanded %d, want 10", n)
	}
}

func TestEvalFactorizedEmpty(t *testing.T) {
	db := relation.NewDB(
		relation.MustNew("E", 2, [][]int64{{1, 2}}),
		relation.MustNew("F", 2, nil),
	)
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("F", "b", "c"))
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if set := plan.EvalFactorized(Policy{}); set.Count() != 0 {
		t.Fatalf("factorized set over empty result counts %d", set.Count())
	}
}
