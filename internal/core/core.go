package core
