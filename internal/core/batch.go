package core

import (
	"context"

	"repro/internal/factorized"
	"repro/internal/leapfrog"
)

// DefaultBatchSize is the block size batched executions use when the
// policy asks for batching without naming a size (Policy.BatchSize <= 0
// at a batch-only entry point, or the streaming engine's row blocks).
const DefaultBatchSize = 256

// maxBatchSize caps a request-supplied block size so a hostile or
// mistyped BatchSize cannot allocate an absurd scratch block.
const maxBatchSize = 1 << 16

// leafBlock allocates the deepest-level key block a batched execution
// scans through, or nil when the policy keeps the scalar loops.
func (p Policy) leafBlock() []int64 {
	n := p.BatchSize
	if n <= 0 {
		return nil
	}
	if n > maxBatchSize {
		n = maxBatchSize
	}
	return make([]int64, n)
}

// batchCap resolves the output block size for batch-producing entry
// points: the policy's BatchSize, defaulted and capped.
func (p Policy) batchCap() int {
	n := p.BatchSize
	if n <= 0 {
		n = DefaultBatchSize
	}
	if n > maxBatchSize {
		n = maxBatchSize
	}
	return n
}

// Batch is a columnar block of result tuples: Cols[d][i] is row i's
// value for the d-th variable of the plan's order, and every column has
// Len() entries. The batched evaluation fills the deepest column with
// one bulk copy per frog block and the prefix columns with run-length
// repeats, instead of appending tuples one at a time.
type Batch struct {
	Cols [][]int64
	n    int
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Row copies row i into dst (which must have len(Cols) room) and
// returns it — a convenience for consumers that want tuple views.
func (b *Batch) Row(i int, dst []int64) []int64 {
	for d := range b.Cols {
		dst[d] = b.Cols[d][i]
	}
	return dst
}

// reset empties the batch, retaining column capacity.
func (b *Batch) reset() {
	for d := range b.Cols {
		b.Cols[d] = b.Cols[d][:0]
	}
	b.n = 0
}

// EvalBatches is EvalBatchesCtx under context.Background().
func (p *Plan) EvalBatches(policy Policy, yield func(b *Batch) bool) EvalResult {
	res, _ := p.EvalBatchesCtx(context.Background(), policy, yield)
	return res
}

// EvalBatchesCtx runs the evaluation with columnar output: result
// construction fills a Batch of up to the policy's block size
// (BatchSize; DefaultBatchSize when unset) and yields it whenever it
// fills, plus once for the tail. The concatenated batches carry exactly
// the tuple sequence EvalCtx emits — same rows, same order — and the
// accounting is bit-identical to the scalar path for completed scans.
// The Batch is reused between yields; the consumer must copy what it
// retains. Returning false stops the enumeration. The deepest level's
// scan is always batched here (block-at-a-time is the point of the
// entry point), at the policy's block size.
func (p *Plan) EvalBatchesCtx(ctx context.Context, policy Policy, yield func(b *Batch) bool) (EvalResult, error) {
	if err := ctx.Err(); err != nil {
		return EvalResult{}, err
	}
	if p.inst.Empty() {
		return EvalResult{}, nil
	}
	if policy.BatchSize <= 0 {
		policy.BatchSize = DefaultBatchSize
	}
	e := &evalExec{
		plan:    p,
		run:     leapfrog.NewRunnerCounters(p.inst, p.counters),
		ctrs:    p.counters,
		sets:    make([]factorized.Set, p.numNodes),
		collect: make([]bool, p.numNodes),
		intent:  make([]bool, p.numNodes),
		cancel:  leapfrog.NewCanceler(ctx),
		cm: newManager[factorized.Set](policy, p.numNodes, p.cacheable, p.counters,
			func(s factorized.Set) int { return len(s) }),
		block:    policy.leafBlock(),
		batchCap: policy.batchCap(),
		yieldB:   yield,
	}
	e.batch = &Batch{Cols: make([][]int64, p.numVars)}
	for d := range e.batch.Cols {
		e.batch.Cols[d] = make([]int64, 0, e.batchCap)
	}
	e.emit = e.appendRow
	e.mu = e.run.Assignment()
	cont := e.rjoin(0)
	e.run.Release()
	if err := e.cancel.Err(); err != nil {
		return EvalResult{Emitted: e.emitted}, err
	}
	if cont && e.batch.n > 0 {
		e.yieldB(e.batch) // the tail block
	}
	return EvalResult{Emitted: e.emitted, CachedEntries: e.cm.Entries()}, nil
}

// appendRow adds one assignment as a row of the columnar batch,
// yielding the batch when it fills. It is the emit callback of
// batch-producing executions; the expansion paths (cache-hit frames,
// collected bags) funnel through it row by row, while the bulk leaf
// fill below bypasses it with whole-block copies.
func (e *evalExec) appendRow(mu []int64) bool {
	b := e.batch
	for d, v := range mu {
		b.Cols[d] = append(b.Cols[d], v)
	}
	b.n++
	if b.n >= e.batchCap {
		return e.flushBatch()
	}
	return true
}

// appendRows bulk-fills rows sharing the scan prefix mu[:d]: the
// prefix columns get run-length repeats and column d a single copy of
// the leaf keys — the columnar counterpart of emitting each key
// through emitPending, charge-free on both paths.
func (e *evalExec) appendRows(d int, keys []int64) bool {
	b := e.batch
	for len(keys) > 0 {
		take := e.batchCap - b.n
		if take > len(keys) {
			take = len(keys)
		}
		for j := 0; j < d; j++ {
			v := e.mu[j]
			for i := 0; i < take; i++ {
				b.Cols[j] = append(b.Cols[j], v)
			}
		}
		b.Cols[d] = append(b.Cols[d], keys[:take]...)
		b.n += take
		e.emitted += int64(take)
		keys = keys[take:]
		if b.n >= e.batchCap && !e.flushBatch() {
			return false
		}
	}
	return true
}

// flushBatch yields the full batch and resets it for the next block.
func (e *evalExec) flushBatch() bool {
	if e.batch.n == 0 {
		return true
	}
	ok := e.yieldB(e.batch)
	e.batch.reset()
	return ok
}
