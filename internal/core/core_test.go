package core

import (
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/leapfrog"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/td"
)

// paperExampleDB is the database of Example 3.1: R(1,1) R(1,2) R(2,1) R(2,2).
func paperExampleDB() *relation.DB {
	return relation.NewDB(relation.MustNew("R", 2, [][]int64{{1, 1}, {1, 2}, {2, 1}, {2, 2}}))
}

// paperExampleQuery is the query of Fig. 3 (left): binary atoms over R
// for the edges x1-x2, x2-x3, x3-x4, x2-x4, x3-x5 and x4-x6.
func paperExampleQuery() *cq.Query {
	return cq.New(
		cq.NewAtom("R", "x1", "x2"),
		cq.NewAtom("R", "x2", "x3"),
		cq.NewAtom("R", "x3", "x4"),
		cq.NewAtom("R", "x2", "x4"),
		cq.NewAtom("R", "x3", "x5"),
		cq.NewAtom("R", "x4", "x6"),
	)
}

// paperExampleTD is the ordered TD on the right of Fig. 3: root {x1,x2},
// child {x2,x3,x4} with children {x3,x5} and {x4,x6}.
func paperExampleTD() *td.TD {
	return td.MustNew(
		[][]int{{0, 1}, {1, 2, 3}, {2, 4}, {3, 5}},
		[]int{-1, 0, 1, 1},
	)
}

func TestPaperExampleCount(t *testing.T) {
	q := paperExampleQuery()
	db := paperExampleDB()
	tree := paperExampleTD()
	if err := tree.Validate(q); err != nil {
		t.Fatalf("example TD invalid: %v", err)
	}
	order := []string{"x1", "x2", "x3", "x4", "x5", "x6"}
	plan, err := NewPlan(q, db, tree, order, nil)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	// On the complete bipartite-ish database every variable can take both
	// values independently: |q(D)| = 2^6 = 64, and the subtree below the
	// {x2,x3,x4} bag has 16 assignments per x2 value (Example 3.1).
	got := plan.Count(Policy{})
	if got.Count != 64 {
		t.Fatalf("count = %d, want 64", got.Count)
	}
	want, err := naive.Count(q, db)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if got.Count != want {
		t.Fatalf("count = %d, naive = %d", got.Count, want)
	}
}

// TestPaperExampleCacheContents pins down the cache semantics of
// Example 3.1: every adhesion is unary over a domain of {1,2}, so with
// unbounded caching exactly 6 intermediate results are stored (two per
// non-root bag), each later re-used (the example's cache[{x2},µ] = 16
// reuse on the second variable scan).
func TestPaperExampleCacheContents(t *testing.T) {
	q := paperExampleQuery()
	db := paperExampleDB()
	var c stats.Counters
	plan, err := NewPlan(q, db, paperExampleTD(), []string{"x1", "x2", "x3", "x4", "x5", "x6"}, &c)
	if err != nil {
		t.Fatal(err)
	}
	res := plan.Count(Policy{})
	if res.Count != 64 {
		t.Fatalf("count = %d, want 64", res.Count)
	}
	if res.CachedEntries != 6 {
		t.Errorf("cached entries = %d, want 6 (two per non-root bag)", res.CachedEntries)
	}
	if c.CacheHits == 0 {
		t.Error("no cache hits in the paper's example")
	}
	// The subtree below the {x2,x3,x4} bag has 16 assignments per x2
	// value (Example 3.1); check via a warm session lookup: a second run
	// must hit on every bag entry.
	s := plan.NewSession(Policy{})
	s.Count()
	c.Reset()
	again := s.Count()
	if again.Count != 64 {
		t.Fatalf("warm count = %d", again.Count)
	}
	if c.CacheMisses != 0 {
		t.Errorf("warm run had %d cache misses, want 0", c.CacheMisses)
	}
}

// engines under comparison: CLFTJ with various policies vs LFTJ vs naive.
func checkAllEngines(t *testing.T, q *cq.Query, db *relation.DB) {
	t.Helper()
	want, err := naive.Count(q, db)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}

	inst, err := leapfrog.Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatalf("leapfrog.Build: %v", err)
	}
	if got := leapfrog.Count(inst); got != want {
		t.Errorf("LFTJ count = %d, want %d", got, want)
	}

	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatalf("AutoPlan: %v", err)
	}
	policies := []Policy{
		{},               // cache everything
		{Disabled: true}, // pure LFTJ
		{Capacity: 3},    // tiny bounded cache, FIFO eviction
		{Capacity: 3, Eviction: EvictNone},
		{SupportThreshold: 1}, // cache from the second occurrence
		{SupportThreshold: 2, Capacity: 5},
	}
	for _, pol := range policies {
		if got := plan.Count(pol); got.Count != want {
			t.Errorf("CLFTJ count with %+v = %d, want %d (td=\n%s order=%v)",
				pol, got.Count, want, plan.TD(), plan.Order())
		}
	}

	// Evaluation must produce exactly the naive result set.
	wantTuples, err := naive.Eval(q, db)
	if err != nil {
		t.Fatalf("naive eval: %v", err)
	}
	for _, pol := range policies {
		got := evalSortedQVars(plan, pol, q)
		if len(got) != len(wantTuples) {
			t.Errorf("CLFTJ eval with %+v: %d tuples, want %d", pol, len(got), len(wantTuples))
			continue
		}
		for i := range got {
			if relation.CompareTuples(got[i], wantTuples[i]) != 0 {
				t.Errorf("CLFTJ eval with %+v: tuple %d = %v, want %v", pol, i, got[i], wantTuples[i])
				break
			}
		}
	}
}

// evalSortedQVars runs plan.Eval and reorders tuples into q.Vars() order,
// sorted, for comparison with the naive oracle.
func evalSortedQVars(plan *Plan, pol Policy, q *cq.Query) [][]int64 {
	order := plan.Order()
	qvars := q.Vars()
	pos := make(map[string]int, len(order))
	for d, v := range order {
		pos[v] = d
	}
	var out [][]int64
	plan.Eval(pol, func(mu []int64) bool {
		tup := make([]int64, len(qvars))
		for i, v := range qvars {
			tup[i] = mu[pos[v]]
		}
		out = append(out, tup)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return relation.CompareTuples(out[i], out[j]) < 0 })
	return out
}

func TestEnginesAgreeOnWorkloads(t *testing.T) {
	g := dataset.ErdosRenyi(30, 0.12, 7)
	db := g.DB(false)
	cases := []struct {
		name string
		q    *cq.Query
	}{
		{"3-path", queries.Path(3)},
		{"4-path", queries.Path(4)},
		{"5-path", queries.Path(5)},
		{"3-cycle", queries.Cycle(3)},
		{"4-cycle", queries.Cycle(4)},
		{"5-cycle", queries.Cycle(5)},
		{"lollipop-3-2", queries.Lollipop(3, 2)},
		{"4-clique", queries.Clique(4)},
		{"5-rand", queries.Random(5, 0.5, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkAllEngines(t, tc.q, db) })
	}
}

func TestEnginesAgreeOnSkewedData(t *testing.T) {
	g := dataset.PreferentialAttachment(60, 3, 11)
	db := g.DB(false)
	for _, q := range []*cq.Query{queries.Path(4), queries.Cycle(4), queries.Cycle(5)} {
		checkAllEngines(t, q, db)
	}
}

func TestIMDBQueriesAgree(t *testing.T) {
	db := dataset.IMDBCast(dataset.IMDBConfig{Persons: 40, Movies: 15, Appearances: 150, PersonSkew: 1.7, Seed: 5})
	for _, k := range []int{2, 3} {
		checkAllEngines(t, queries.IMDBCycle(k), db)
	}
}

// TestDisabledCacheMatchesLFTJAccesses verifies the §3.2 claim that with
// no caching the two algorithms coincide — including identical trie
// memory traffic.
func TestDisabledCacheMatchesLFTJAccesses(t *testing.T) {
	g := dataset.ErdosRenyi(25, 0.15, 9)
	db := g.DB(false)
	q := queries.Path(4)

	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	order := plan.Order()

	var cLFTJ stats.Counters
	inst, err := leapfrog.Build(q, db, order, &cLFTJ)
	if err != nil {
		t.Fatal(err)
	}
	lftjCount := leapfrog.Count(inst)

	var cCLFTJ stats.Counters
	plan2, err := NewPlan(q, db, plan.TD(), order, &cCLFTJ)
	if err != nil {
		t.Fatal(err)
	}
	// Building the plan builds tries but performs no iterator accesses;
	// run and compare traffic.
	res := plan2.Count(Policy{Disabled: true})
	if res.Count != lftjCount {
		t.Fatalf("counts differ: CLFTJ %d vs LFTJ %d", res.Count, lftjCount)
	}
	if cCLFTJ.TrieAccesses != cLFTJ.TrieAccesses {
		t.Errorf("trie accesses differ with caching disabled: CLFTJ %d vs LFTJ %d",
			cCLFTJ.TrieAccesses, cLFTJ.TrieAccesses)
	}
	if cCLFTJ.HashAccesses != 0 {
		t.Errorf("disabled cache still probed: %d hash accesses", cCLFTJ.HashAccesses)
	}
}

// TestCachingReducesAccesses asserts the headline effect: on a skewed
// dataset, CLFTJ with caches performs fewer trie accesses than LFTJ.
func TestCachingReducesAccesses(t *testing.T) {
	g := dataset.PreferentialAttachment(150, 4, 3)
	db := g.DB(false)
	q := queries.Path(5)

	var cOn, cOff stats.Counters
	planOn, err := AutoPlan(q, db, AutoOptions{Counters: &cOn})
	if err != nil {
		t.Fatal(err)
	}
	resOn := planOn.Count(Policy{})

	planOff, err := NewPlan(q, db, planOn.TD(), planOn.Order(), &cOff)
	if err != nil {
		t.Fatal(err)
	}
	resOff := planOff.Count(Policy{Disabled: true})

	if resOn.Count != resOff.Count {
		t.Fatalf("counts differ: %d vs %d", resOn.Count, resOff.Count)
	}
	if cOn.TrieAccesses >= cOff.TrieAccesses {
		t.Errorf("caching did not reduce trie accesses: on=%d off=%d", cOn.TrieAccesses, cOff.TrieAccesses)
	}
	if cOn.CacheHits == 0 {
		t.Errorf("no cache hits on a skewed 5-path; td=\n%s", planOn.TD())
	}
}

func TestCacheCapacityRespected(t *testing.T) {
	g := dataset.PreferentialAttachment(120, 4, 13)
	db := g.DB(false)
	q := queries.Path(5)
	plan, err := AutoPlan(q, db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	unbounded := plan.Count(Policy{})
	if unbounded.CachedEntries == 0 {
		t.Skip("query cached nothing; capacity test not meaningful")
	}
	cap := unbounded.CachedEntries / 4
	if cap < 1 {
		cap = 1
	}
	for _, mode := range []EvictionMode{EvictFIFO, EvictNone} {
		res := plan.Count(Policy{Capacity: cap, Eviction: mode})
		if res.Count != unbounded.Count {
			t.Errorf("mode %v: count %d, want %d", mode, res.Count, unbounded.Count)
		}
		if res.CachedEntries > cap {
			t.Errorf("mode %v: %d entries cached, capacity %d", mode, res.CachedEntries, cap)
		}
	}
}
