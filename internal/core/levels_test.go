package core

import (
	"reflect"
	"testing"

	"repro/internal/queries"
	"repro/internal/relation"
)

// TestAlwaysEmptyLevels pins the early-termination feedback signal on a
// triangle query over a triangle-free graph: every (x, y) edge reaches
// depth 2 and finds the z-intersection empty, so depth 2 must report
// all-empty while the shallower depths (which do extend assignments)
// must not.
func TestAlwaysEmptyLevels(t *testing.T) {
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 2}, {2, 3}}))
	plan, err := AutoPlan(queries.Clique(3), db, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := plan.Count(Policy{})
	if res.Count != 0 {
		t.Fatalf("triangle count over a 2-path = %d, want 0", res.Count)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("Levels = %+v, want 3 depths", res.Levels)
	}
	for d, l := range res.Levels {
		if l.Attempts == 0 {
			t.Errorf("depth %d never attempted: %+v", d, res.Levels)
		}
	}
	if got := AlwaysEmptyLevels(res.Levels); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("AlwaysEmptyLevels(%+v) = %v, want [2]", res.Levels, got)
	}

	// The parallel merge must report the same totals as the sequential
	// scan at every depth past the root: shards partition the root
	// domain, and per-depth tallies are summed exactly. (Depth 0 is
	// opened once per worker, so its attempt count scales with the
	// worker count — which is why AlwaysEmptyLevels excludes it.)
	par := plan.CountParallel(Policy{Workers: 4})
	if len(par.Levels) != len(res.Levels) ||
		!reflect.DeepEqual(par.Levels[1:], res.Levels[1:]) {
		t.Fatalf("parallel Levels %+v differ from sequential %+v past depth 0", par.Levels, res.Levels)
	}
	if got := AlwaysEmptyLevels(par.Levels); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("parallel AlwaysEmptyLevels = %v, want [2]", got)
	}

	// A satisfiable query has no always-empty level.
	db2 := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 2}, {2, 3}, {1, 3}}))
	plan2, err := AutoPlan(queries.Clique(3), db2, AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res2 := plan2.Count(Policy{})
	if res2.Count != 1 {
		t.Fatalf("triangle count = %d, want 1", res2.Count)
	}
	if got := AlwaysEmptyLevels(res2.Levels); got != nil {
		t.Fatalf("AlwaysEmptyLevels on a satisfiable query = %v, want none", got)
	}
}
