package store

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
	"repro/internal/trie"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Fixed stamps so golden bytes are deterministic.
const (
	goldGen = 0x0123456789ABCDEF
	goldNum = 7
)

func tinyRelation(t *testing.T) *relation.Relation {
	t.Helper()
	return relation.MustNew("r", 2, [][]int64{{1, 2}, {1, 3}, {2, 1}})
}

func sameLevels(t *testing.T, a, b *trie.Trie) {
	t.Helper()
	la, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot a: %v", err)
	}
	lb, err := b.Snapshot()
	if err != nil {
		t.Fatalf("snapshot b: %v", err)
	}
	if len(la) != len(lb) {
		t.Fatalf("depth %d != %d", len(la), len(lb))
	}
	for d := range la {
		if !equalInt64s(la[d].Vals, lb[d].Vals) || !equalInt32s(la[d].Start, lb[d].Start) {
			t.Fatalf("level %d differs:\n a: %v %v\n b: %v %v", d, la[d].Vals, la[d].Start, lb[d].Vals, lb[d].Start)
		}
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRelationSnapshotRoundTrip(t *testing.T) {
	rel := tinyRelation(t)
	path := filepath.Join(t.TempDir(), "r.snap")
	if _, err := writeRelationSnapshot(path, rel, goldNum, goldGen, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, h, m, err := openRelationSnapshot(path, "r")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer m.close()
	if h.Generation != goldGen || h.VersionNum != goldNum || int(h.Arity) != 2 {
		t.Fatalf("header = %+v", h)
	}
	if got.Len() != rel.Len() || !equalInt64s(got.Data(), rel.Data()) {
		t.Fatalf("data mismatch: %v vs %v", got.Data(), rel.Data())
	}
}

func TestTrieSnapshotRoundTrip(t *testing.T) {
	tr := trie.Build(tinyRelation(t), nil)
	path := filepath.Join(t.TempDir(), "r.0001.trie")
	if _, err := writeTrieSnapshot(path, tr, goldNum, goldGen, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, m, err := openTrieSnapshot(path, goldGen, goldNum)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer m.close()
	sameLevels(t, tr, got)

	if _, _, err := openTrieSnapshot(path, goldGen+1, goldNum); err == nil {
		t.Fatal("generation mismatch not refused")
	}
	if _, _, err := openTrieSnapshot(path, goldGen, goldNum+1); err == nil {
		t.Fatal("version mismatch not refused")
	}
}

// TestGoldenBytes pins the on-disk encoding: a change to the format that
// alters these bytes must bump FormatVersion and update docs/FORMAT.md
// (regenerate with go test ./internal/store -update). The golden files
// are also re-opened, proving the committed bytes stay readable.
func TestGoldenBytes(t *testing.T) {
	rel := tinyRelation(t)
	tr := trie.Build(rel, nil)
	dir := t.TempDir()

	snapPath := filepath.Join(dir, "tiny.snap")
	triePath := filepath.Join(dir, "tiny.trie")
	if _, err := writeRelationSnapshot(snapPath, rel, goldNum, goldGen, nil); err != nil {
		t.Fatalf("write snap: %v", err)
	}
	if _, err := writeTrieSnapshot(triePath, tr, goldNum, goldGen, nil); err != nil {
		t.Fatalf("write trie: %v", err)
	}

	for _, tc := range []struct{ fresh, golden string }{
		{snapPath, "tiny.snap.golden"},
		{triePath, "tiny.trie.golden"},
	} {
		fresh, err := os.ReadFile(tc.fresh)
		if err != nil {
			t.Fatal(err)
		}
		goldenPath := filepath.Join("testdata", tc.golden)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath, fresh, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		golden, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("read golden (run with -update to create): %v", err)
		}
		if !bytes.Equal(fresh, golden) {
			t.Errorf("%s: on-disk bytes changed (len %d vs golden %d); if intentional, bump FormatVersion, update docs/FORMAT.md and regenerate with -update",
				tc.golden, len(fresh), len(golden))
		}
	}

	// The committed bytes must keep decoding to the same data.
	got, _, m, err := openRelationSnapshot(filepath.Join("testdata", "tiny.snap.golden"), "r")
	if err != nil {
		t.Fatalf("open golden snap: %v", err)
	}
	defer m.close()
	if !equalInt64s(got.Data(), rel.Data()) {
		t.Fatal("golden snapshot decodes to different tuples")
	}
	gt, m2, err := openTrieSnapshot(filepath.Join("testdata", "tiny.trie.golden"), goldGen, goldNum)
	if err != nil {
		t.Fatalf("open golden trie: %v", err)
	}
	defer m2.close()
	sameLevels(t, tr, gt)
}

func TestSnapshotCorruptionRefused(t *testing.T) {
	rel := tinyRelation(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "r.snap")
	if _, err := writeRelationSnapshot(path, rel, goldNum, goldGen, nil); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := mutate(append([]byte(nil), pristine...))
			p := filepath.Join(dir, name+".snap")
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, m, err := openRelationSnapshot(p, "r"); err == nil {
				m.close()
				t.Fatal("corrupt snapshot served")
			}
		})
	}
	corrupt("bitflip-payload", func(b []byte) []byte { b[len(b)-20] ^= 0x40; return b })
	corrupt("bitflip-header", func(b []byte) []byte { b[17] ^= 0x01; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("truncated-header", func(b []byte) []byte { return b[:10] })
	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("unsorted", func(b []byte) []byte {
		// Swap the first two tuples in the payload, then fix that page's
		// CRC so only the structural check can catch it.
		off := payloadOffset(1)
		for i := 0; i < 16; i++ {
			b[off+i], b[off+16+i] = b[off+16+i], b[off+i]
		}
		payLen := int(nativeEndian.Uint64(b[40:48]))
		nativeEndian.PutUint32(b[off+payLen:], crc(b[off:off+payLen]))
		pagesEnd := 4 * numPages(payLen)
		nativeEndian.PutUint32(b[off+payLen+pagesEnd:], crc(b[off+payLen:off+payLen+pagesEnd]))
		return b
	})
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	w, err := createWAL(path, 2, goldGen, goldNum)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(goldNum+1, [][]int64{{5, 6}, {7, 8}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(goldNum+2, nil, [][]int64{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	w.close()

	w2, recs, torn, err := openWAL(path, 2, goldGen, goldNum)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if torn != 0 {
		t.Fatalf("torn = %d on a clean log", torn)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if recs[0].Version != goldNum+1 || len(recs[0].Inserts) != 2 || len(recs[0].Deletes) != 0 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Version != goldNum+2 || len(recs[1].Deletes) != 1 || recs[1].Deletes[0][0] != 5 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	// The reopened log keeps accepting appends after its records.
	if _, err := w2.append(goldNum+3, [][]int64{{9, 9}}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTail simulates a crash mid-append: a partial record at the
// tail must be truncated away and every record before it replayed.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	w, err := createWAL(path, 2, goldGen, goldNum)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(goldNum+1, [][]int64{{1, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	w.close()

	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 30; cut += 7 { // several torn shapes, incl. a cut record header
		b := append([]byte(nil), clean...)
		b = append(b, make([]byte, walRecordHeader+40)[:cut]...) // a record the crash half-wrote
		if cut > 4 {
			nativeEndian.PutUint32(b[len(clean):], 40) // announced length larger than what's on disk
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, recs, torn, err := openWAL(path, 2, goldGen, goldNum)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || torn != int64(cut) {
			t.Fatalf("cut %d: got %d records, torn %d", cut, len(recs), torn)
		}
		// After recovery the log must be append-clean again.
		if _, err := w2.append(goldNum+2, [][]int64{{2, 2}}, nil); err != nil {
			t.Fatal(err)
		}
		w2.close()
		w3, recs3, _, err := openWAL(path, 2, goldGen, goldNum)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs3) != 2 {
			t.Fatalf("cut %d: post-recovery log replays %d records, want 2", cut, len(recs3))
		}
		w3.close()
	}
}

// TestWALBitFlipRefused: a checksum failure on a *complete* record is
// corruption, not a torn append — the log must refuse, never replay.
func TestWALBitFlipRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	w, err := createWAL(path, 2, goldGen, goldNum)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(goldNum+1, [][]int64{{1, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(goldNum+2, [][]int64{{2, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	w.close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+walRecordHeader+3] ^= 0x10 // flip a payload byte of record 0
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := openWAL(path, 2, goldGen, goldNum); err == nil {
		t.Fatal("bit-flipped WAL replayed")
	}
}

// TestWALStaleGenerationDiscarded covers the crash window between a
// compaction's snapshot rename and its WAL reset: the leftover log
// carries the old generation and its effects are already in the new
// snapshot, so boot must discard it silently.
func TestWALStaleGenerationDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	w, err := createWAL(path, 2, goldGen, goldNum)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(goldNum+1, [][]int64{{1, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	w.close()

	newGen := uint64(goldGen + 99)
	w2, recs, _, err := openWAL(path, 2, newGen, goldNum+1)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(recs) != 0 {
		t.Fatalf("stale-generation WAL replayed %d records", len(recs))
	}
	// And the reset log is usable under the new stamp.
	if _, err := w2.append(goldNum+2, [][]int64{{3, 3}}, nil); err != nil {
		t.Fatal(err)
	}
	w3, recs3, _, err := openWAL(path, 2, newGen, goldNum+1)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.close()
	if len(recs3) != 1 {
		t.Fatalf("reset log replays %d records, want 1", len(recs3))
	}
}

// TestDBLifecycle drives the full manager the way the engine does:
// bootstrap, durable deltas, trie write-behind, restart with replay, and
// compaction invalidating index files.
func TestDBLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	rel := tinyRelation(t)
	if err := db.SaveRelation("r", rel, 0); err != nil {
		t.Fatal(err)
	}
	st := relation.NewStore(rel)
	apply := func(ins, del [][]int64) relation.Version {
		v, changed, err := st.ApplyDelta(ins, del)
		if err != nil || !changed {
			t.Fatalf("apply: changed=%v err=%v", changed, err)
		}
		if err := db.AppendDelta("r", v.Num, ins, del); err != nil {
			t.Fatal(err)
		}
		return v
	}
	apply([][]int64{{10, 10}}, nil)
	v := apply([][]int64{{11, 11}}, [][]int64{{1, 2}})

	// Write-behind index persistence for the base snapshot.
	perm := []int{0, 1}
	baseTrie := trie.Build(rel, nil)
	if !db.SaveTrie(rel, perm, baseTrie) {
		t.Fatal("SaveTrie skipped the persisted base")
	}
	if db.SaveTrie(v.Rel, perm, trie.Build(v.Rel, nil)) {
		t.Fatal("SaveTrie persisted a non-base relation")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: open, replay, and land on the same final relation.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rel2, num, recs, found, err := db2.OpenRelation("r", 2)
	if err != nil || !found {
		t.Fatalf("open: found=%v err=%v", found, err)
	}
	if num != 0 || !equalInt64s(rel2.Data(), rel.Data()) {
		t.Fatalf("base mismatch: num=%d", num)
	}
	st2 := relation.NewStoreAt(rel2, num)
	for _, r := range recs {
		if _, _, err := st2.ApplyDelta(r.Inserts, r.Deletes); err != nil {
			t.Fatal(err)
		}
	}
	v2 := st2.Version()
	if v2.Num != v.Num || !equalInt64s(v2.Rel.Data(), v.Rel.Data()) {
		t.Fatalf("replayed version %d != live version %d (or data differs)", v2.Num, v.Num)
	}

	// The persisted index opens without a build and matches the build.
	opened := db2.OpenTrie(rel2, perm)
	if opened == nil {
		t.Fatal("OpenTrie missed a persisted index")
	}
	sameLevels(t, baseTrie, opened)
	if db2.OpenTrie(rel2, []int{1, 0}) != nil {
		t.Fatal("OpenTrie served a column order that was never saved")
	}

	// Compaction rewrites the snapshot under a new generation: the WAL
	// resets and stale index files stop being served.
	if err := db2.SaveRelation("r", v2.Rel, v2.Num); err != nil {
		t.Fatal(err)
	}
	if db2.OpenTrie(rel2, perm) != nil {
		t.Fatal("stale trie served after compaction")
	}
	s := db2.Stats()
	if s.SnapshotWrites != 1 || s.RelationOpens != 1 || s.TrieOpens != 1 || s.WALReplayed != 2 {
		t.Fatalf("stats = %+v", s)
	}

	// Third boot: the compacted snapshot is the new base with no WAL.
	db3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rel3, num3, recs3, found, err := db3.OpenRelation("r", 2)
	if err != nil || !found {
		t.Fatalf("open after compaction: found=%v err=%v", found, err)
	}
	if num3 != v2.Num || len(recs3) != 0 || !equalInt64s(rel3.Data(), v2.Rel.Data()) {
		t.Fatalf("after compaction: num=%d records=%d", num3, len(recs3))
	}
	names, err := db3.Relations()
	if err != nil || len(names) != 1 || names[0] != "r" {
		t.Fatalf("Relations() = %v, %v", names, err)
	}
}

// TestDBTrieCorruptionFallsBack: a damaged index file must be ignored
// (nil → registry rebuilds), never served.
func TestDBTrieCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rel := tinyRelation(t)
	if err := db.SaveRelation("r", rel, 0); err != nil {
		t.Fatal(err)
	}
	perm := []int{0, 1}
	if !db.SaveTrie(rel, perm, trie.Build(rel, nil)) {
		t.Fatal("save failed")
	}
	path := db.triePath("r", perm)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-9] ^= 0x02
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if db.OpenTrie(rel, perm) != nil {
		t.Fatal("corrupt trie snapshot served")
	}
}

func TestSafeName(t *testing.T) {
	cases := map[string]string{
		"ca-GrQc":  "ca-GrQc",
		"a/b":      "a%2Fb",
		"x%y":      "x%25y",
		"":         "%-",
		"plain_1.": "plain_1.",
	}
	for in, want := range cases {
		got := safeName(in)
		if got != want {
			t.Errorf("safeName(%q) = %q, want %q", in, got, want)
		}
		back, err := unescapeName(got)
		if err != nil || back != in {
			t.Errorf("unescapeName(%q) = %q, %v; want %q", got, back, err, in)
		}
	}
	if safeName("a/b") == safeName("a%2Fb") {
		t.Error("safeName not injective")
	}
	if _, err := unescapeName("bad%zz"); err == nil {
		t.Error("bad escape accepted")
	}
}
