package store

import "unsafe"

// Reinterpreting byte views: the payload arrays on disk are raw memory
// images of []int64 / []int32, so opening a snapshot is a cast, not a
// decode. All offsets handed to these helpers are 8-aligned (enforced by
// the container format), which satisfies the alignment contract of
// unsafe.Slice for both element widths.

func int64sAsBytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func int32sAsBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func bytesAsInt64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesAsInt32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
