// Package store persists the engine's state: relation snapshots and trie
// index snapshots in a checksummed, mmap-able container format, plus a
// write-ahead log that makes the versioned relation store durable across
// restarts. The on-disk byte layout is specified in docs/FORMAT.md; this
// file implements the shared container (header, section table, page
// checksums) that both snapshot kinds use.
//
// The design goal is warm restarts: a snapshot mirrors the in-memory
// columnar arrays byte-for-byte, so opening one is an mmap plus a single
// verification pass — no parsing, no sorting, no trie construction — and
// the resulting slices alias the mapped file directly (zero copy). Every
// open verifies all page checksums and the structural invariants before
// any query can touch the data: a corrupt or truncated file is refused,
// never served.
package store

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faults"
)

// Container constants. See docs/FORMAT.md for the normative byte layout.
const (
	// FormatVersion is the on-disk format revision. Readers refuse files
	// with a different version: the format carries no compatibility
	// shims yet (forward-compatibility policy in docs/FORMAT.md).
	FormatVersion = 1

	// EndianMarker is stored in the header using the writer's native
	// byte order. A reader whose native decoding does not reproduce it
	// was built for the other endianness and must refuse the file,
	// because the payload arrays are raw native-endian memory images.
	EndianMarker = 0x0A0B0C0D

	// PageSize is the checksum granularity over the payload: one CRC-32C
	// per 64 KiB page (the last page may be short). Page-sized checksums
	// localize corruption and keep the verify pass sequential.
	PageSize = 64 * 1024

	headerSize  = 64
	sectionSize = 16 // {offset u64, length u64}
)

// Magic numbers, one per file kind.
var (
	MagicRelation = [8]byte{'C', 'L', 'T', 'J', 'S', 'N', 'P', '1'}
	MagicTrie     = [8]byte{'C', 'L', 'T', 'J', 'T', 'R', 'I', '1'}
	MagicWAL      = [8]byte{'C', 'L', 'T', 'J', 'W', 'A', 'L', '1'}
)

// crcTable selects the Castagnoli polynomial: hardware-accelerated on
// amd64/arm64 via crc32.Castagnoli and with better error detection than
// IEEE for storage workloads.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// nativeEndian is the writer's and reader's shared byte order. The
// payload arrays are raw memory images, so scalar fields use the same
// native order; the EndianMarker check refuses cross-endian files.
var nativeEndian = binary.NativeEndian

func crc(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// header is the fixed 64-byte file preamble common to all three kinds.
type header struct {
	Magic      [8]byte
	Version    uint32 // format revision (FormatVersion)
	Arity      uint32 // relation arity / trie depth; 0 for WAL headers
	Sections   uint32 // number of section-table entries
	Generation uint64 // random stamp tying a file family together
	VersionNum uint64 // relation version number the file reflects
	PayloadLen uint64 // payload bytes (8-aligned); 0 for WAL headers
}

// section locates one array inside the payload. Offsets are relative to
// the payload start and 8-aligned so int64 views stay aligned under mmap
// (the payload itself starts 8-aligned in the file, and mmap bases are
// page-aligned).
type section struct {
	Off uint64
	Len uint64 // exact byte length; the gap to the next section is padding
}

// encodeHeader renders h into a fresh 64-byte block. All scalar fields
// are encoded with the native byte order (on every supported target:
// little-endian); the endian marker is what detects a foreign file.
func encodeHeader(h header) []byte {
	b := make([]byte, headerSize)
	copy(b[0:8], h.Magic[:])
	nativeEndian.PutUint32(b[8:12], EndianMarker)
	nativeEndian.PutUint32(b[12:16], h.Version)
	nativeEndian.PutUint32(b[16:20], h.Arity)
	nativeEndian.PutUint32(b[20:24], h.Sections)
	nativeEndian.PutUint64(b[24:32], h.Generation)
	nativeEndian.PutUint64(b[32:40], h.VersionNum)
	nativeEndian.PutUint64(b[40:48], h.PayloadLen)
	nativeEndian.PutUint32(b[48:52], PageSize)
	// b[52:60] reserved, zero.
	nativeEndian.PutUint32(b[60:64], crc(b[:60]))
	return b
}

// decodeHeader parses and verifies a 64-byte header block: magic, endian
// marker, header CRC, format version, and page size must all check out.
func decodeHeader(b []byte, wantMagic [8]byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("store: file shorter than the %d-byte header", headerSize)
	}
	copy(h.Magic[:], b[0:8])
	if h.Magic != wantMagic {
		return h, fmt.Errorf("store: bad magic %q, want %q", h.Magic[:], wantMagic[:])
	}
	if m := nativeEndian.Uint32(b[8:12]); m != EndianMarker {
		return h, fmt.Errorf("store: endianness marker %#x does not decode natively (want %#x): file written with foreign byte order", m, uint32(EndianMarker))
	}
	if got, want := crc(b[:60]), nativeEndian.Uint32(b[60:64]); got != want {
		return h, fmt.Errorf("store: header checksum mismatch (got %#x, want %#x)", got, want)
	}
	h.Version = nativeEndian.Uint32(b[12:16])
	if h.Version != FormatVersion {
		return h, fmt.Errorf("store: format version %d not supported (reader handles %d)", h.Version, FormatVersion)
	}
	h.Arity = nativeEndian.Uint32(b[16:20])
	h.Sections = nativeEndian.Uint32(b[20:24])
	h.Generation = nativeEndian.Uint64(b[24:32])
	h.VersionNum = nativeEndian.Uint64(b[32:40])
	h.PayloadLen = nativeEndian.Uint64(b[40:48])
	if ps := nativeEndian.Uint32(b[48:52]); ps != PageSize {
		return h, fmt.Errorf("store: page size %d not supported (want %d)", ps, PageSize)
	}
	return h, nil
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// payloadOffset is where the payload begins for a file with n sections:
// header, section table, table CRC, then padding to 8 alignment.
func payloadOffset(n int) int { return align8(headerSize + n*sectionSize + 4) }

// numPages returns how many checksum pages cover payloadLen bytes.
func numPages(payloadLen int) int { return (payloadLen + PageSize - 1) / PageSize }

// writeContainer writes a complete snapshot container to path atomically:
// the file is assembled in a same-directory temp file, fsync'd, and
// renamed into place, so readers only ever observe either the old file or
// the complete new one. sections describes the payload arrays; write is
// called once per section with the destination slice of a fully
// assembled in-memory image (snapshot payloads are bounded by the trie
// byte budget, so buffering the image is acceptable and keeps the
// checksum pass single-threaded and simple). Returns total bytes written.
func writeContainer(path string, h header, sections []section, fill func(i int, dst []byte), inj *faults.Injector) (int64, error) {
	if len(sections) > 0 {
		last := sections[len(sections)-1]
		h.PayloadLen = uint64(align8(int(last.Off + last.Len)))
	} else {
		h.PayloadLen = 0
	}
	h.Version = FormatVersion
	h.Sections = uint32(len(sections))

	payLen := int(h.PayloadLen)
	off := payloadOffset(len(sections))
	total := off + payLen + 4*numPages(payLen) + 4
	buf := make([]byte, total)

	copy(buf, encodeHeader(h))
	tab := buf[headerSize:]
	for i, s := range sections {
		nativeEndian.PutUint64(tab[i*sectionSize:], s.Off)
		nativeEndian.PutUint64(tab[i*sectionSize+8:], s.Len)
	}
	tabEnd := len(sections) * sectionSize
	nativeEndian.PutUint32(tab[tabEnd:], crc(tab[:tabEnd]))

	payload := buf[off : off+payLen]
	for i, s := range sections {
		fill(i, payload[s.Off:s.Off+s.Len])
	}

	crcs := buf[off+payLen:]
	for p := 0; p < numPages(payLen); p++ {
		lo := p * PageSize
		hi := min(lo+PageSize, payLen)
		nativeEndian.PutUint32(crcs[4*p:], crc(payload[lo:hi]))
	}
	pagesEnd := 4 * numPages(payLen)
	nativeEndian.PutUint32(crcs[pagesEnd:], crc(crcs[:pagesEnd]))

	if err := atomicWriteInj(path, buf, inj); err != nil {
		return 0, err
	}
	return int64(total), nil
}

// openContainer maps (or reads) the container at path and verifies it
// completely: header, section table CRC, every payload page CRC, the
// page-table CRC, and section extents. On success the returned view's
// payload slice aliases the mapping; the caller must keep the mapping
// referenced for as long as any derived slice lives (DB retains them
// until Close).
type containerView struct {
	h        header
	sections []section
	payload  []byte
	m        *mapping
}

func openContainer(path string, wantMagic [8]byte) (*containerView, error) {
	m, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	v, err := verifyContainer(m.data, wantMagic)
	if err != nil {
		m.close()
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	v.m = m
	return v, nil
}

// verifyContainer checks a complete in-memory container image. Split out
// from openContainer so tests can corrupt images directly.
func verifyContainer(b []byte, wantMagic [8]byte) (*containerView, error) {
	h, err := decodeHeader(b, wantMagic)
	if err != nil {
		return nil, err
	}
	nSec := int(h.Sections)
	off := payloadOffset(nSec)
	payLen := int(h.PayloadLen)
	if payLen%8 != 0 {
		return nil, fmt.Errorf("store: payload length %d not 8-aligned", payLen)
	}
	want := off + payLen + 4*numPages(payLen) + 4
	if len(b) != want {
		return nil, fmt.Errorf("store: file is %d bytes, want %d (truncated or trailing garbage)", len(b), want)
	}

	tab := b[headerSize:]
	tabEnd := nSec * sectionSize
	if got, wantCRC := crc(tab[:tabEnd]), nativeEndian.Uint32(tab[tabEnd:]); got != wantCRC {
		return nil, fmt.Errorf("store: section table checksum mismatch")
	}
	sections := make([]section, nSec)
	prevEnd := uint64(0)
	for i := range sections {
		s := section{
			Off: nativeEndian.Uint64(tab[i*sectionSize:]),
			Len: nativeEndian.Uint64(tab[i*sectionSize+8:]),
		}
		if s.Off%8 != 0 {
			return nil, fmt.Errorf("store: section %d offset %d not 8-aligned", i, s.Off)
		}
		if s.Off < prevEnd || s.Off+s.Len > uint64(payLen) {
			return nil, fmt.Errorf("store: section %d extent [%d,%d) out of bounds or overlapping", i, s.Off, s.Off+s.Len)
		}
		prevEnd = s.Off + s.Len
		sections[i] = s
	}

	payload := b[off : off+payLen]
	crcs := b[off+payLen:]
	pagesEnd := 4 * numPages(payLen)
	if got, wantCRC := crc(crcs[:pagesEnd]), nativeEndian.Uint32(crcs[pagesEnd:]); got != wantCRC {
		return nil, fmt.Errorf("store: page checksum table corrupt")
	}
	for p := 0; p < numPages(payLen); p++ {
		lo := p * PageSize
		hi := min(lo+PageSize, payLen)
		if got, wantCRC := crc(payload[lo:hi]), nativeEndian.Uint32(crcs[4*p:]); got != wantCRC {
			return nil, fmt.Errorf("store: payload page %d checksum mismatch", p)
		}
	}
	return &containerView{h: h, sections: sections, payload: payload}, nil
}

// atomicWrite writes data to path via a same-directory temp file, fsync,
// and rename, then fsyncs the directory so the rename itself is durable.
func atomicWrite(path string, data []byte) error {
	return atomicWriteInj(path, data, nil)
}

// atomicWriteInj is atomicWrite with fault-injection sites at each
// failure point: "store/<file>/write" (a KindShort leaves a real torn
// temp file, which the cleanup removes — exactly what a crash leaves
// for the next boot to ignore), "store/<file>/sync", and
// "store/<file>/rename".
func atomicWriteInj(path string, data []byte, inj *faults.Injector) error {
	dir := filepath.Dir(path)
	site := "store/" + filepath.Base(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if n, ierr := inj.WriteLen(site+"/write", len(data)); ierr != nil {
		f.Write(data[:n])
		return cleanup(ierr)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := inj.Check(site + "/sync"); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := inj.Check(site + "/rename"); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms cannot fsync directories; the rename is still
	// atomic, just not durable over power loss there.
	if err := d.Sync(); err != nil && err != io.EOF {
		return nil //nolint:nilerr // best effort by design
	}
	return nil
}

// newGeneration draws a random 64-bit stamp used to tie a snapshot, its
// WAL, and its trie files together. Collisions across the lifetime of
// one data directory are vanishingly unlikely (2^-64 per pair).
func newGeneration() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("store: cannot read random generation: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:])
}
