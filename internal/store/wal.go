package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faults"
)

// Write-ahead log (.wal): a 64-byte container header (Sections = 0,
// PayloadLen = 0 — the log grows by appends, so its length lives in the
// file size) followed by self-delimiting records:
//
//	u32 length   — payload bytes that follow the 8-byte record header
//	u32 crc      — CRC-32C of the payload
//	payload      — u64 version, u32 insCount, u32 delCount,
//	               insCount·arity i64, delCount·arity i64 (native order)
//
// Every append is fsync'd before the in-memory version becomes visible,
// so an acknowledged update survives a crash. The header's Generation
// must match the relation snapshot it extends: after a compaction
// rewrites the snapshot, a crash before the WAL reset leaves a log whose
// content is already folded into the snapshot — the generation mismatch
// discards it cleanly on the next boot.
//
// Recovery distinguishes two failure shapes. A torn tail — fewer bytes
// than the record header announces, from a crash mid-append — is
// expected and truncated away; everything before it was fsync'd and
// replays. A checksum mismatch on a *complete* record is real
// corruption: the log is refused and the operator must intervene, never
// served.
type wal struct {
	f     *os.File
	path  string
	arity int
	gen   uint64
	inj   *faults.Injector
}

const walRecordHeader = 8 // u32 length + u32 crc

// ErrWALCorrupt marks a complete WAL record whose checksum fails —
// corruption, not a torn append. Boot refuses the data directory.
var ErrWALCorrupt = errors.New("store: wal record checksum mismatch")

// createWAL truncates/creates the log at path for a snapshot stamped
// (gen, num) and leaves it open for appends.
func createWAL(path string, arity int, gen, num uint64) (*wal, error) {
	h := header{Magic: MagicWAL, Version: FormatVersion, Arity: uint32(arity), Generation: gen, VersionNum: num}
	if err := atomicWrite(path, encodeHeader(h)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, path: path, arity: arity, gen: gen}, nil
}

// walRecord is one replayed delta.
type walRecord struct {
	Version  uint64
	Inserts  [][]int64
	Deletes  [][]int64
	rawBytes int
}

// openWAL reads the log at path, verifies the header against the
// snapshot stamp (gen), replays every intact record, truncates a torn
// tail, and reopens the file for appends. If the header generation does
// not match gen the log predates the current snapshot; it is reset
// (discarded) rather than replayed. Returns the open log, the replayable
// records in append order, and how many tail bytes were truncated.
func openWAL(path string, arity int, gen, num uint64) (*wal, []walRecord, int64, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		w, cerr := createWAL(path, arity, gen, num)
		return w, nil, 0, cerr
	}
	if err != nil {
		return nil, nil, 0, err
	}
	if len(raw) < headerSize {
		// A torn header write can only happen on first creation, before
		// any update was acknowledged; start fresh.
		w, cerr := createWAL(path, arity, gen, num)
		return w, nil, int64(len(raw)), cerr
	}
	h, err := decodeHeader(raw[:headerSize], MagicWAL)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("store: wal header: %w", err)
	}
	if h.Generation != gen || int(h.Arity) != arity {
		// Stale log from before the last snapshot rewrite (crash between
		// snapshot rename and wal reset): its effects are already in the
		// snapshot. Discard.
		w, cerr := createWAL(path, arity, gen, num)
		return w, nil, 0, cerr
	}

	records, validLen, err := decodeWALRecords(raw[headerSize:], arity)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	torn := int64(len(raw)) - int64(headerSize+validLen)
	if torn > 0 {
		if err := os.Truncate(path, int64(headerSize+validLen)); err != nil {
			return nil, nil, 0, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	return &wal{f: f, path: path, arity: arity, gen: gen}, records, torn, nil
}

// decodeWALRecords parses the record region, returning the intact
// records and the byte length of the intact prefix. A short tail is
// reported via validLen (caller truncates); a bad checksum on a complete
// record returns ErrWALCorrupt.
func decodeWALRecords(b []byte, arity int) (records []walRecord, validLen int, err error) {
	off := 0
	for off+walRecordHeader <= len(b) {
		plen := int(nativeEndian.Uint32(b[off:]))
		want := nativeEndian.Uint32(b[off+4:])
		if off+walRecordHeader+plen > len(b) {
			break // torn tail: announced payload extends past EOF
		}
		payload := b[off+walRecordHeader : off+walRecordHeader+plen]
		if crc(payload) != want {
			return nil, 0, fmt.Errorf("%w (record at offset %d)", ErrWALCorrupt, headerSize+off)
		}
		rec, derr := decodeWALPayload(payload, arity)
		if derr != nil {
			return nil, 0, fmt.Errorf("%w: %v (record at offset %d)", ErrWALCorrupt, derr, headerSize+off)
		}
		rec.rawBytes = walRecordHeader + plen
		records = append(records, rec)
		off += walRecordHeader + plen
	}
	return records, off, nil
}

func decodeWALPayload(p []byte, arity int) (walRecord, error) {
	var r walRecord
	if len(p) < 16 {
		return r, fmt.Errorf("payload %d bytes, want >= 16", len(p))
	}
	r.Version = nativeEndian.Uint64(p[0:8])
	ins := int(nativeEndian.Uint32(p[8:12]))
	del := int(nativeEndian.Uint32(p[12:16]))
	want := 16 + (ins+del)*arity*8
	if len(p) != want {
		return r, fmt.Errorf("payload %d bytes for %d+%d arity-%d tuples, want %d", len(p), ins, del, arity, want)
	}
	read := func(n int, off int) [][]int64 {
		out := make([][]int64, n)
		for i := range out {
			t := make([]int64, arity)
			for j := range t {
				t[j] = int64(nativeEndian.Uint64(p[off:]))
				off += 8
			}
			out[i] = t
		}
		return out
	}
	r.Inserts = read(ins, 16)
	r.Deletes = read(del, 16+ins*arity*8)
	return r, nil
}

// append encodes and appends one delta record and fsyncs. version is the
// relation version number the delta produced. Returns bytes appended.
func (w *wal) append(version uint64, inserts, deletes [][]int64) (int, error) {
	plen := 16 + (len(inserts)+len(deletes))*w.arity*8
	buf := make([]byte, walRecordHeader+plen)
	p := buf[walRecordHeader:]
	nativeEndian.PutUint64(p[0:8], version)
	nativeEndian.PutUint32(p[8:12], uint32(len(inserts)))
	nativeEndian.PutUint32(p[12:16], uint32(len(deletes)))
	off := 16
	for _, ts := range [2][][]int64{inserts, deletes} {
		for _, t := range ts {
			for _, v := range t {
				nativeEndian.PutUint64(p[off:], uint64(v))
				off += 8
			}
		}
	}
	nativeEndian.PutUint32(buf[0:4], uint32(plen))
	nativeEndian.PutUint32(buf[4:8], crc(p))
	// Injection sites: "store/<file>/append" for the record write (a
	// KindShort persists a real torn prefix for recovery to truncate),
	// "store/<file>/appendsync" for the fsync.
	site := "store/" + filepath.Base(w.path)
	if n, ierr := w.inj.WriteLen(site+"/append", len(buf)); ierr != nil {
		if n > 0 {
			w.f.Write(buf[:n])
		}
		return 0, ierr
	}
	if _, err := w.f.Write(buf); err != nil {
		return 0, err
	}
	if err := w.inj.Check(site + "/appendsync"); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// reset rewrites the log as empty for a new snapshot stamp (after a
// compaction wrote a fresh snapshot) and reopens it for appends.
func (w *wal) reset(gen, num uint64) error {
	w.f.Close()
	nw, err := createWAL(w.path, w.arity, gen, num)
	if err != nil {
		return err
	}
	nw.inj = w.inj
	*w = *nw
	return nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// sizeBytes reports the current log size (header + records).
func (w *wal) sizeBytes() int64 {
	st, err := w.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}
