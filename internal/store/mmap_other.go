//go:build !unix

package store

import "os"

// mapping on non-unix platforms is a plain read of the file into an
// 8-aligned heap buffer — the same zero-copy aliasing downstream (slices
// point into data), just without demand paging. Warm restarts still skip
// parsing and trie construction.
type mapping struct {
	data   []byte
	mapped bool // always false here
}

func mapFile(path string) (*mapping, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Re-house the bytes in an int64-backed buffer so the payload's
	// 8-aligned file offsets stay 8-aligned in memory (unsafe.Slice on
	// int64 views requires it; mmap gives page alignment for free).
	buf := make([]int64, (len(raw)+7)/8)
	b := int64sAsBytes(buf)[:len(raw)]
	copy(b, raw)
	return &mapping{data: b}, nil
}

func (m *mapping) close() error {
	m.data = nil
	return nil
}
