//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only view of a whole file. On unix it is a private
// read-only mmap: opening a snapshot costs page-table setup plus the
// verification pass, and the level arrays served to queries alias the
// page cache directly — no copy, and cold pages fault in on first touch.
type mapping struct {
	data   []byte
	mapped bool // true: munmap on close; false: heap-backed
}

// mapFile maps path read-only. Empty files yield an empty, unmapped view
// (mmap of length 0 is an error on Linux).
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return &mapping{}, nil
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("store: %s too large to map", path)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return &mapping{data: b, mapped: true}, nil
}

// close releases the mapping. The caller guarantees no slice derived
// from data is referenced afterwards: the DB keeps every mapping alive
// until DB.Close, which runs only after the engine has quiesced.
func (m *mapping) close() error {
	if !m.mapped || m.data == nil {
		return nil
	}
	err := syscall.Munmap(m.data)
	m.data, m.mapped = nil, false
	return err
}
