package store

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/trie"
)

// Relation snapshots (.snap) and trie snapshots (.trie): concrete
// encodings over the shared container. A relation snapshot has one
// section — the flat sorted tuple array. A trie snapshot has two
// sections per level, values then child offsets, in depth order; its
// header's Arity field is the trie depth and its Generation must equal
// the relation snapshot's, which is what invalidates stale index files
// when the data is re-imported or compacted.

// writeRelationSnapshot writes rel (at version num, stamped gen) to path
// atomically and returns the file size.
func writeRelationSnapshot(path string, rel *relation.Relation, num, gen uint64, inj *faults.Injector) (int64, error) {
	data := rel.Data()
	h := header{
		Magic:      MagicRelation,
		Arity:      uint32(rel.Arity()),
		Generation: gen,
		VersionNum: num,
	}
	secs := []section{{Off: 0, Len: uint64(len(data) * 8)}}
	return writeContainer(path, h, secs, func(_ int, dst []byte) {
		copy(dst, int64sAsBytes(data))
	}, inj)
}

// openRelationSnapshot maps path and reconstructs the relation around
// the mapped tuple array (zero copy). Beyond the container checks it
// verifies the relation invariant — strictly increasing tuples — so a
// checksummed-but-impossible file is refused rather than served.
func openRelationSnapshot(path, name string) (*relation.Relation, header, *mapping, error) {
	v, err := openContainer(path, MagicRelation)
	if err != nil {
		return nil, header{}, nil, err
	}
	fail := func(err error) (*relation.Relation, header, *mapping, error) {
		v.m.close()
		return nil, header{}, nil, err
	}
	if len(v.sections) != 1 {
		return fail(fmt.Errorf("store: relation snapshot has %d sections, want 1", len(v.sections)))
	}
	s := v.sections[0]
	if s.Len%8 != 0 {
		return fail(fmt.Errorf("store: relation snapshot data length %d not a multiple of 8", s.Len))
	}
	data := bytesAsInt64s(v.payload[s.Off : s.Off+s.Len])
	arity := int(v.h.Arity)
	rel, err := relation.FromSorted(name, arity, data)
	if err != nil {
		return fail(err)
	}
	n := rel.Len()
	for i := 1; i < n; i++ {
		if relation.CompareTuples(rel.Tuple(i-1), rel.Tuple(i)) >= 0 {
			return fail(fmt.Errorf("store: relation snapshot tuples not strictly sorted at %d", i))
		}
	}
	return rel, v.h, v.m, nil
}

// writeTrieSnapshot writes t's level arrays to path atomically, stamped
// with the owning relation snapshot's generation and version. Patched
// tries refuse to snapshot (see trie.Snapshot); callers only persist
// full builds.
func writeTrieSnapshot(path string, t *trie.Trie, num, gen uint64, inj *faults.Injector) (int64, error) {
	levels, err := t.Snapshot()
	if err != nil {
		return 0, err
	}
	h := header{
		Magic:      MagicTrie,
		Arity:      uint32(len(levels)),
		Generation: gen,
		VersionNum: num,
	}
	secs := make([]section, 0, 2*len(levels))
	off := 0
	push := func(byteLen int) {
		secs = append(secs, section{Off: uint64(off), Len: uint64(byteLen)})
		off = align8(off + byteLen)
	}
	for _, lvl := range levels {
		push(len(lvl.Vals) * 8)
		push(len(lvl.Start) * 4)
	}
	return writeContainer(path, h, secs, func(i int, dst []byte) {
		lvl := levels[i/2]
		if i%2 == 0 {
			copy(dst, int64sAsBytes(lvl.Vals))
		} else {
			copy(dst, int32sAsBytes(lvl.Start))
		}
	}, inj)
}

// openTrieSnapshot maps path and reconstructs the trie around the mapped
// level arrays (zero copy). wantGen/wantNum tie the index file to the
// relation snapshot the caller booted from: a mismatch means the file
// describes other data and is refused. Structural validation happens in
// trie.FromLevels before any iterator can read the arrays.
func openTrieSnapshot(path string, wantGen, wantNum uint64) (*trie.Trie, *mapping, error) {
	v, err := openContainer(path, MagicTrie)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*trie.Trie, *mapping, error) {
		v.m.close()
		return nil, nil, err
	}
	if v.h.Generation != wantGen || v.h.VersionNum != wantNum {
		return fail(fmt.Errorf("store: trie snapshot generation/version (%#x, %d) does not match relation snapshot (%#x, %d)",
			v.h.Generation, v.h.VersionNum, wantGen, wantNum))
	}
	depth := int(v.h.Arity)
	if depth == 0 || len(v.sections) != 2*depth {
		return nil, nil, fmt.Errorf("store: trie snapshot has %d sections for depth %d, want %d", len(v.sections), depth, 2*depth)
	}
	levels := make([]trie.LevelData, depth)
	for d := 0; d < depth; d++ {
		vs, ss := v.sections[2*d], v.sections[2*d+1]
		if vs.Len%8 != 0 || ss.Len%4 != 0 {
			return fail(fmt.Errorf("store: trie snapshot level %d has misaligned section lengths", d))
		}
		levels[d] = trie.LevelData{
			Vals:  bytesAsInt64s(v.payload[vs.Off : vs.Off+vs.Len]),
			Start: bytesAsInt32s(v.payload[ss.Off : ss.Off+ss.Len]),
		}
	}
	t, err := trie.FromLevels(levels)
	if err != nil {
		return fail(err)
	}
	return t, v.m, nil
}
