package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/trie"
)

// DB manages one data directory: per-relation snapshot + WAL pairs and
// per-(relation, column order) trie snapshots. Layout:
//
//	<dir>/<name>.snap           relation snapshot (MagicRelation)
//	<dir>/<name>.wal            write-ahead log extending that snapshot
//	<dir>/<name>.<perm>.trie    trie snapshot, perm in hex (MagicTrie)
//
// A snapshot, its WAL, and its trie files share a random Generation
// stamp; rewriting the snapshot (bootstrap or compaction) draws a new
// one, which atomically invalidates every index file of the old data.
//
// Mappings returned to callers (relations and tries alias mmap'd pages)
// are retained until Close, which the engine calls only after all
// queries have drained — so no live iterator can touch an unmapped page.
//
// DB methods are safe for concurrent use; the engine serializes updates
// itself, so per-relation WAL appends never race.
type DB struct {
	dir string

	mu       sync.Mutex
	inj      *faults.Injector
	rels     map[string]*relState
	bases    map[*relation.Relation]baseInfo
	mappings []*mapping
	stats    Stats
}

// relState tracks one persisted relation's live artifacts.
type relState struct {
	arity int
	gen   uint64
	num   uint64 // snapshot version number
	wal   *wal
}

// baseInfo locates the snapshot a resident base relation was opened from
// (or saved to), keyed by the relation's pointer identity — the same
// identity the trie registry keys on.
type baseInfo struct {
	name string
	gen  uint64
	num  uint64
}

// Record is one WAL delta to replay through Store.ApplyDelta, in append
// order.
type Record struct {
	Inserts [][]int64
	Deletes [][]int64
}

// Stats reports a DB's lifetime persistence activity. All fields are
// cumulative since Open.
type Stats struct {
	// SnapshotWrites / SnapshotBytes count relation snapshot rewrites
	// (bootstrap and compaction) and their total file bytes.
	SnapshotWrites int64 `json:"snapshot_writes"`
	SnapshotBytes  int64 `json:"snapshot_bytes"`
	// TrieWrites / TrieBytes count trie snapshot files written behind
	// registry builds.
	TrieWrites int64 `json:"trie_writes"`
	TrieBytes  int64 `json:"trie_bytes"`
	// RelationOpens / TrieOpens count snapshots served by mapping an
	// existing file — the warm-restart path that replaces text parsing,
	// respectively trie construction. MappedBytes is the total bytes
	// currently mapped (or buffered on non-unix platforms).
	RelationOpens int64 `json:"relation_opens"`
	TrieOpens     int64 `json:"trie_opens"`
	MappedBytes   int64 `json:"mapped_bytes"`
	// WALAppends / WALAppendBytes count durable delta records written;
	// WALReplayed counts records replayed on open; WALTornBytes counts
	// torn-tail bytes truncated during recovery.
	WALAppends     int64 `json:"wal_appends"`
	WALAppendBytes int64 `json:"wal_append_bytes"`
	WALReplayed    int64 `json:"wal_replayed"`
	WALTornBytes   int64 `json:"wal_torn_bytes"`
}

// Open prepares the data directory (creating it if needed) and returns
// an empty DB; relations attach via OpenRelation/SaveRelation.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DB{
		dir:   dir,
		rels:  make(map[string]*relState),
		bases: make(map[*relation.Relation]baseInfo),
	}, nil
}

// Dir returns the managed data directory.
func (db *DB) Dir() string { return db.dir }

// SetFaults installs a fault injector over the DB's file operations
// (WAL appends and fsyncs, snapshot writes/syncs/renames). Call it
// before attaching relations; a nil injector (the default) is inert.
func (db *DB) SetFaults(inj *faults.Injector) {
	db.mu.Lock()
	db.inj = inj
	for _, rs := range db.rels {
		rs.wal.inj = inj
	}
	db.mu.Unlock()
}

// faults returns the installed injector (possibly nil).
func (db *DB) faults() *faults.Injector {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.inj
}

// Close releases every WAL handle and unmaps every snapshot. Callers
// must guarantee no query still references an opened relation or trie —
// the engine closes its DB only after draining in-flight work.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, rs := range db.rels {
		if err := rs.wal.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, m := range db.mappings {
		if err := m.close(); err != nil && first == nil {
			first = err
		}
	}
	db.mappings = nil
	return first
}

// Relations lists the relation names with a snapshot in the data
// directory. A non-empty result is what makes a boot warm: the engine
// opens these instead of re-reading its original dataset.
func (db *DB) Relations() ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(db.dir, "*.snap"))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(matches))
	for _, p := range matches {
		base := strings.TrimSuffix(filepath.Base(p), ".snap")
		name, err := unescapeName(base)
		if err != nil {
			return nil, fmt.Errorf("store: stray snapshot file %s: %w", p, err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// OpenRelation opens name's snapshot and WAL. found reports whether a
// snapshot exists; when false (cold boot) the caller loads the relation
// from its original source and persists it with SaveRelation. When true,
// the returned relation aliases the verified mapped file, num is the
// snapshot's version number, and records holds the WAL deltas to replay
// through a relation.Store built at (rel, num). arity < 0 accepts the
// verified header's arity (warm boots have no other source for it); a
// non-negative arity must match. A corrupt snapshot or WAL returns an
// error — a persistent engine refuses to start on corrupt state rather
// than serving it.
func (db *DB) OpenRelation(name string, arity int) (rel *relation.Relation, num uint64, records []Record, found bool, err error) {
	snapPath := db.path(name, "snap")
	if _, serr := os.Stat(snapPath); os.IsNotExist(serr) {
		return nil, 0, nil, false, nil
	}
	rel, h, m, err := openRelationSnapshot(snapPath, name)
	if err != nil {
		return nil, 0, nil, false, err
	}
	if arity >= 0 && int(h.Arity) != arity {
		m.close()
		return nil, 0, nil, false, fmt.Errorf("store: %s snapshot has arity %d, want %d", name, h.Arity, arity)
	}
	arity = int(h.Arity)
	w, recs, torn, err := openWAL(db.path(name, "wal"), arity, h.Generation, h.VersionNum)
	if err != nil {
		m.close()
		return nil, 0, nil, false, err
	}
	w.inj = db.faults()
	records = make([]Record, len(recs))
	for i, r := range recs {
		records[i] = Record{Inserts: r.Inserts, Deletes: r.Deletes}
	}

	db.mu.Lock()
	db.retain(m)
	db.rels[name] = &relState{arity: arity, gen: h.Generation, num: h.VersionNum, wal: w}
	db.bases[rel] = baseInfo{name: name, gen: h.Generation, num: h.VersionNum}
	db.stats.RelationOpens++
	db.stats.WALReplayed += int64(len(records))
	db.stats.WALTornBytes += torn
	db.mu.Unlock()
	return rel, h.VersionNum, records, true, nil
}

// SaveRelation writes rel as name's snapshot at version num under a
// fresh generation, resets the WAL, and registers rel as the persisted
// base. It is both the cold-boot bootstrap and the compaction rewrite;
// stale trie snapshot files of the previous generation are deleted (they
// would be refused anyway by the generation check).
func (db *DB) SaveRelation(name string, rel *relation.Relation, num uint64) error {
	gen := newGeneration()
	n, err := writeRelationSnapshot(db.path(name, "snap"), rel, num, gen, db.faults())
	if err != nil {
		return err
	}

	db.mu.Lock()
	rs := db.rels[name]
	db.mu.Unlock()
	if rs == nil {
		w, werr := createWAL(db.path(name, "wal"), rel.Arity(), gen, num)
		if werr != nil {
			return werr
		}
		w.inj = db.faults()
		rs = &relState{arity: rel.Arity(), wal: w}
	} else if err := rs.wal.reset(gen, num); err != nil {
		return err
	}

	db.mu.Lock()
	for old, info := range db.bases {
		if info.name == name {
			delete(db.bases, old)
		}
	}
	rs.gen, rs.num = gen, num
	db.rels[name] = rs
	db.bases[rel] = baseInfo{name: name, gen: gen, num: num}
	db.stats.SnapshotWrites++
	db.stats.SnapshotBytes += n
	db.mu.Unlock()

	db.removeTrieFiles(name)
	return nil
}

// AppendDelta durably logs one applied delta (fsync before return).
// version is the relation version number the delta produced. The engine
// calls it after Store.ApplyDelta reported a non-compacting change and
// before the new version becomes visible to queries, so an acknowledged
// update always survives a restart.
func (db *DB) AppendDelta(name string, version uint64, inserts, deletes [][]int64) error {
	db.mu.Lock()
	rs := db.rels[name]
	db.mu.Unlock()
	if rs == nil {
		return fmt.Errorf("store: relation %s is not persisted", name)
	}
	n, err := rs.wal.append(version, inserts, deletes)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.stats.WALAppends++
	db.stats.WALAppendBytes += int64(n)
	db.mu.Unlock()
	return nil
}

// SaveTrie persists t — a fully built index over rel permuted by perm —
// next to rel's snapshot, stamped with its generation. It reports
// whether a file was written: relations that are not persisted bases
// (patched versions, derived relations) are skipped silently, as are
// patched tries. Errors are swallowed after accounting — index files
// are an optimization and a failed write must not fail the query that
// triggered the build.
func (db *DB) SaveTrie(rel *relation.Relation, perm []int, t *trie.Trie) bool {
	db.mu.Lock()
	info, ok := db.bases[rel]
	db.mu.Unlock()
	if !ok {
		return false
	}
	n, err := writeTrieSnapshot(db.triePath(info.name, perm), t, info.num, info.gen, db.faults())
	if err != nil {
		return false
	}
	db.mu.Lock()
	db.stats.TrieWrites++
	db.stats.TrieBytes += n
	db.mu.Unlock()
	return true
}

// OpenTrie serves a registry miss from disk: if rel is a persisted base
// and a trie snapshot for perm with a matching generation exists and
// verifies, the index is reconstructed around the mapped arrays and
// returned; any miss, mismatch, or corruption returns nil and the
// registry falls through to a clean rebuild — a damaged index file is
// never served, only ignored.
func (db *DB) OpenTrie(rel *relation.Relation, perm []int) *trie.Trie {
	db.mu.Lock()
	info, ok := db.bases[rel]
	db.mu.Unlock()
	if !ok {
		return nil
	}
	t, m, err := openTrieSnapshot(db.triePath(info.name, perm), info.gen, info.num)
	if err != nil {
		return nil
	}
	db.mu.Lock()
	db.retain(m)
	db.stats.TrieOpens++
	db.mu.Unlock()
	return t
}

// Stats returns a snapshot of the DB's persistence counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// retain keeps a mapping alive until Close and accounts its bytes.
// Callers must hold db.mu.
func (db *DB) retain(m *mapping) {
	db.mappings = append(db.mappings, m)
	db.stats.MappedBytes += int64(len(m.data))
}

// path builds <dir>/<safe name>.<ext>.
func (db *DB) path(name, ext string) string {
	return filepath.Join(db.dir, safeName(name)+"."+ext)
}

// triePath builds <dir>/<safe name>.<perm hex>.trie.
func (db *DB) triePath(name string, perm []int) string {
	var sb strings.Builder
	for _, p := range perm {
		fmt.Fprintf(&sb, "%02x", p)
	}
	return filepath.Join(db.dir, safeName(name)+"."+sb.String()+".trie")
}

// removeTrieFiles deletes every trie snapshot of name (any column
// order); called after a snapshot rewrite made them stale.
func (db *DB) removeTrieFiles(name string) {
	matches, err := filepath.Glob(filepath.Join(db.dir, safeName(name)+".*.trie"))
	if err != nil {
		return
	}
	for _, p := range matches {
		os.Remove(p)
	}
}

// safeName makes a relation name filesystem-safe: letters, digits, '_',
// '-' and '.' pass through; every other byte is escaped as %XX. The
// mapping is injective, so distinct relation names never collide on
// disk.
func safeName(name string) string {
	ok := func(c byte) bool {
		return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == '.'
	}
	clean := true
	for i := 0; i < len(name); i++ {
		if !ok(name[i]) || name[i] == '%' {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		if ok(name[i]) && name[i] != '%' {
			sb.WriteByte(name[i])
		} else {
			fmt.Fprintf(&sb, "%%%02X", name[i])
		}
	}
	if sb.Len() == 0 {
		// "%-" cannot be produced by the %XX escapes ('-' is not hex),
		// so the empty name stays injective and round-trips.
		return "%-"
	}
	return sb.String()
}

// unescapeName inverts safeName; it errors on byte sequences safeName
// cannot produce (stray files in the data directory).
func unescapeName(s string) (string, error) {
	if s == "%-" {
		return "", nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			sb.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("truncated %%XX escape in %q", s)
		}
		hi, lo := unhex(s[i+1]), unhex(s[i+2])
		if hi < 0 || lo < 0 {
			return "", fmt.Errorf("bad %%XX escape in %q", s)
		}
		sb.WriteByte(byte(hi<<4 | lo))
		i += 2
	}
	return sb.String(), nil
}

func unhex(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}
