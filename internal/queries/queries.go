// Package queries builds the query workloads of the paper's experimental
// study (§5.2.2): k-paths, k-cycles, k-cliques, the {c,t}-lollipop of
// Fig. 12, Erdős–Rényi random pattern queries, and the IMDB 4/6-cycles of
// Fig. 14. Pattern variables are named x1, x2, ... and edge atoms range
// over a binary relation (default "E").
package queries

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
)

// EdgeRel is the default edge relation name used by the builders.
const EdgeRel = "E"

func x(i int) string { return fmt.Sprintf("x%d", i) }

// Path returns the k-path query: k variables joined by k-1 edge atoms
// E(x1,x2), ..., E(x_{k-1},x_k). The paper's "4-path" is Path(4):
// E(a,b), E(b,c), E(c,d).
func Path(k int) *cq.Query {
	if k < 2 {
		panic("queries: path needs at least 2 variables")
	}
	var atoms []cq.Atom
	for i := 1; i < k; i++ {
		atoms = append(atoms, cq.NewAtom(EdgeRel, x(i), x(i+1)))
	}
	return cq.New(atoms...)
}

// Cycle returns the k-cycle query with k variables and k edge atoms, the
// closing atom oriented as in the paper's example (§5.2.2): a 4-cycle is
// E(a,b), E(b,c), E(c,d), E(a,d).
func Cycle(k int) *cq.Query {
	if k < 3 {
		panic("queries: cycle needs at least 3 variables")
	}
	var atoms []cq.Atom
	for i := 1; i < k; i++ {
		atoms = append(atoms, cq.NewAtom(EdgeRel, x(i), x(i+1)))
	}
	atoms = append(atoms, cq.NewAtom(EdgeRel, x(1), x(k)))
	return cq.New(atoms...)
}

// Clique returns the k-clique query: one atom E(xi,xj) per pair i<j.
// Cliques admit no non-trivial decomposition, so CLFTJ coincides with
// LFTJ on them (§5.2.2).
func Clique(k int) *cq.Query {
	if k < 2 {
		panic("queries: clique needs at least 2 variables")
	}
	var atoms []cq.Atom
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			atoms = append(atoms, cq.NewAtom(EdgeRel, x(i), x(j)))
		}
	}
	return cq.New(atoms...)
}

// Lollipop returns the {c,t}-lollipop query: a c-clique whose last node
// starts a t-edge tail. Lollipop(3,2) is the paper's {3,2}-lollipop
// (Fig. 12): a triangle on x1,x2,x3 with tail x3-x4-x5.
func Lollipop(c, t int) *cq.Query {
	if c < 3 || t < 1 {
		panic("queries: lollipop needs clique size >= 3 and tail length >= 1")
	}
	var atoms []cq.Atom
	for i := 1; i <= c; i++ {
		for j := i + 1; j <= c; j++ {
			atoms = append(atoms, cq.NewAtom(EdgeRel, x(i), x(j)))
		}
	}
	for i := 0; i < t; i++ {
		atoms = append(atoms, cq.NewAtom(EdgeRel, x(c+i), x(c+i+1)))
	}
	return cq.New(atoms...)
}

// Random returns an Erdős–Rényi pattern query over n variables where
// each pair is an edge atom with probability p (§5.2.2's N-rand(P)).
// Only connected patterns are returned: disconnected draws are retried
// with successive sub-seeds, so the result is deterministic in seed.
func Random(n int, p float64, seed int64) *cq.Query {
	if n < 2 {
		panic("queries: random pattern needs at least 2 variables")
	}
	for attempt := int64(0); ; attempt++ {
		rng := rand.New(rand.NewSource(seed + attempt*1_000_003))
		var atoms []cq.Atom
		adj := make([][]bool, n+1)
		for i := range adj {
			adj[i] = make([]bool, n+1)
		}
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if rng.Float64() < p {
					atoms = append(atoms, cq.NewAtom(EdgeRel, x(i), x(j)))
					adj[i][j], adj[j][i] = true, true
				}
			}
		}
		if len(atoms) == 0 || !connected(adj, n) {
			continue
		}
		return cq.New(atoms...)
	}
}

func connected(adj [][]bool, n int) bool {
	seen := make([]bool, n+1)
	stack := []int{1}
	seen[1] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := 1; v <= n; v++ {
			if adj[u][v] && !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// Names of the IMDB cast relations (Fig. 13/14): both have the schema
// (person_id, movie_id).
const (
	MaleCastRel   = "male_cast"
	FemaleCastRel = "female_cast"
)

// IMDBCycle returns the 2k-variable cycle over the male/female cast
// relations of Fig. 14: persons p1..pk alternate with movies m1..mk
// around a cycle p1-m1-p2-m2-...-pk-mk-p1, odd persons matched through
// male_cast and even persons through female_cast. IMDBCycle(2) and
// IMDBCycle(3) are the paper's 4-cycle and 6-cycle.
func IMDBCycle(k int) *cq.Query {
	if k < 2 {
		panic("queries: IMDB cycle needs at least 2 person/movie pairs")
	}
	rel := func(person int) string {
		if person%2 == 1 {
			return MaleCastRel
		}
		return FemaleCastRel
	}
	p := func(i int) string { return fmt.Sprintf("p%d", i) }
	m := func(i int) string { return fmt.Sprintf("m%d", i) }
	var atoms []cq.Atom
	for i := 1; i <= k; i++ {
		// person i appears in movie i and in movie i-1 (movie k for i=1).
		atoms = append(atoms, cq.NewAtom(rel(i), p(i), m(i)))
		prev := i - 1
		if prev == 0 {
			prev = k
		}
		atoms = append(atoms, cq.NewAtom(rel(i), p(i), m(prev)))
	}
	return cq.New(atoms...)
}
