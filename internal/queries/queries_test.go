package queries

import (
	"testing"

	"repro/internal/cq"
)

func TestPathShape(t *testing.T) {
	q := Path(4)
	if len(q.Atoms) != 3 {
		t.Fatalf("4-path has %d atoms, want 3 (paper's E(a,b),E(b,c),E(c,d))", len(q.Atoms))
	}
	if len(q.Vars()) != 4 {
		t.Fatalf("4-path has %d vars", len(q.Vars()))
	}
	if got := q.String(); got != "E(x1,x2), E(x2,x3), E(x3,x4)" {
		t.Fatalf("4-path = %s", got)
	}
}

func TestCycleShape(t *testing.T) {
	q := Cycle(4)
	if len(q.Atoms) != 4 || len(q.Vars()) != 4 {
		t.Fatalf("4-cycle: %d atoms %d vars", len(q.Atoms), len(q.Vars()))
	}
	// The closing atom follows the paper's orientation: E(x1,x4).
	last := q.Atoms[len(q.Atoms)-1]
	if last.String() != "E(x1,x4)" {
		t.Fatalf("closing atom = %s, want E(x1,x4)", last)
	}
}

func TestCliqueShape(t *testing.T) {
	q := Clique(4)
	if len(q.Atoms) != 6 {
		t.Fatalf("4-clique has %d atoms, want 6", len(q.Atoms))
	}
}

func TestLollipopShape(t *testing.T) {
	q := Lollipop(3, 2)
	// Triangle (3 atoms) + tail (2 atoms).
	if len(q.Atoms) != 5 || len(q.Vars()) != 5 {
		t.Fatalf("{3,2}-lollipop: %d atoms %d vars", len(q.Atoms), len(q.Vars()))
	}
}

func TestRandomConnectedAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := Random(5, 0.4, seed)
		b := Random(5, 0.4, seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: not deterministic", seed)
		}
		if len(a.Vars()) != 5 {
			t.Fatalf("seed %d: %d vars", seed, len(a.Vars()))
		}
		assertConnected(t, a)
	}
}

func assertConnected(t *testing.T, q *cq.Query) {
	t.Helper()
	edges := q.GaifmanEdges()
	n := len(q.Vars())
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != n {
		t.Fatalf("pattern not connected: %s", q)
	}
}

func TestIMDBCycleShape(t *testing.T) {
	q := IMDBCycle(2)
	if len(q.Atoms) != 4 || len(q.Vars()) != 4 {
		t.Fatalf("IMDB 4-cycle: %d atoms %d vars", len(q.Atoms), len(q.Vars()))
	}
	male, female := 0, 0
	for _, a := range q.Atoms {
		switch a.Rel {
		case MaleCastRel:
			male++
		case FemaleCastRel:
			female++
		default:
			t.Fatalf("unexpected relation %s", a.Rel)
		}
	}
	if male != 2 || female != 2 {
		t.Fatalf("male=%d female=%d atoms", male, female)
	}
	q6 := IMDBCycle(3)
	if len(q6.Atoms) != 6 || len(q6.Vars()) != 6 {
		t.Fatalf("IMDB 6-cycle: %d atoms %d vars", len(q6.Atoms), len(q6.Vars()))
	}
	assertConnected(t, q6)
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"path":     func() { Path(1) },
		"cycle":    func() { Cycle(2) },
		"clique":   func() { Clique(1) },
		"lollipop": func() { Lollipop(2, 1) },
		"random":   func() { Random(1, 0.5, 0) },
		"imdb":     func() { IMDBCycle(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on invalid size", name)
				}
			}()
			f()
		}()
	}
}
