package naive

import (
	"reflect"
	"testing"

	"repro/internal/cq"
	"repro/internal/relation"
)

func TestEvalHandComputed(t *testing.T) {
	// E = {(1,2),(2,3),(1,3)}; paths E(x,y),E(y,z): (1,2,3) only.
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 2}, {2, 3}, {1, 3}}))
	q := cq.New(cq.NewAtom("E", "x", "y"), cq.NewAtom("E", "y", "z"))
	got, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
	n, err := Count(q, db)
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestEvalConstantsAndRepeats(t *testing.T) {
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 1}, {1, 2}, {2, 2}}))
	// Self loops.
	qSelf := cq.New(cq.Atom{Rel: "E", Args: []cq.Term{cq.V("x"), cq.V("x")}})
	got, err := Eval(qSelf, db)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]int64{{1}, {2}}) {
		t.Fatalf("self loops = %v", got)
	}
	// Constant filter.
	qConst := cq.New(cq.Atom{Rel: "E", Args: []cq.Term{cq.C(1), cq.V("y")}})
	got, err = Eval(qConst, db)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]int64{{1}, {2}}) {
		t.Fatalf("constant filter = %v", got)
	}
	// Unsatisfiable constant.
	qNo := cq.New(cq.Atom{Rel: "E", Args: []cq.Term{cq.C(7), cq.V("y")}})
	if n, _ := Count(qNo, db); n != 0 {
		t.Fatalf("unsatisfiable constant = %d", n)
	}
}

func TestEvalDeduplicates(t *testing.T) {
	// Two identical atoms must not duplicate results.
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 2}, {3, 4}}))
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("E", "a", "b"))
	got, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("duplicate atoms produced %d tuples, want 2", len(got))
	}
}

func TestEvalMissingRelation(t *testing.T) {
	db := relation.NewDB()
	q := cq.New(cq.NewAtom("E", "a", "b"))
	if _, err := Eval(q, db); err == nil {
		t.Fatal("missing relation accepted")
	}
}
