// Package naive evaluates full CQs by brute-force backtracking over
// atoms. It is the correctness oracle for the test suite: every join
// engine in this repository is checked against it on randomized inputs.
// It is deliberately simple — full relation scans, no indices.
package naive

import (
	"sort"

	"repro/internal/cq"
	"repro/internal/relation"
)

// Eval returns q(D) as tuples over q.Vars() (first-appearance order),
// sorted lexicographically and deduplicated.
func Eval(q *cq.Query, db *relation.DB) ([][]int64, error) {
	vars := q.Vars()
	idx := q.VarIndex()
	rels := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		r, err := db.Get(a.Rel)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	assigned := make([]bool, len(vars))
	mu := make([]int64, len(vars))
	seen := make(map[string]bool)
	var out [][]int64

	var rec func(ai int)
	rec = func(ai int) {
		if ai == len(q.Atoms) {
			key := relation.Key(mu)
			if !seen[key] {
				seen[key] = true
				out = append(out, append([]int64(nil), mu...))
			}
			return
		}
		atom := q.Atoms[ai]
		rel := rels[ai]
	tuples:
		for ti := 0; ti < rel.Len(); ti++ {
			t := rel.Tuple(ti)
			var newly []int
			for col, term := range atom.Args {
				if !term.IsVar() {
					if t[col] != term.Const {
						for _, x := range newly {
							assigned[x] = false
						}
						continue tuples
					}
					continue
				}
				x := idx[term.Var]
				if assigned[x] {
					if mu[x] != t[col] {
						for _, y := range newly {
							assigned[y] = false
						}
						continue tuples
					}
					continue
				}
				assigned[x] = true
				mu[x] = t[col]
				newly = append(newly, x)
			}
			rec(ai + 1)
			for _, x := range newly {
				assigned[x] = false
			}
		}
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool { return relation.CompareTuples(out[i], out[j]) < 0 })
	return out, nil
}

// Count returns |q(D)|.
func Count(q *cq.Query, db *relation.DB) (int64, error) {
	tuples, err := Eval(q, db)
	if err != nil {
		return 0, err
	}
	return int64(len(tuples)), nil
}
