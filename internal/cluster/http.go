package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
)

// NewHandler exposes the coordinator over the same HTTP/JSON surface a
// single daemon serves, so clients need not know whether they talk to
// one engine or a fleet:
//
//	POST /query    count/eval/aggregate merged across the fleet;
//	               "mode": "stream" streams merged NDJSON rows,
//	               byte-identical to a single engine over the union
//	POST /update   delta routed to the shards its tuples hash to
//	GET  /stats    merged fleet stats (exact lifetime-counter fold)
//	GET  /healthz  ready only when every shard is ready
//
// Prepared statements are not served — they are engine-local handles.
// Error statuses: 400 for malformed or unshardable requests (a shard's
// own 4xx rejection passes through), 409 when the snapshot handshake
// failed (ErrSnapshotMoved — retry against the settled state), 502 with
// the failed shard's name for shard failures, 504/499 for
// deadline/disconnect, exactly like the single-engine surface.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req server.Request
		if !decodeInto(w, r, maxRequestBody, &req) {
			return
		}
		if req.Mode == "stream" {
			streamQuery(c, w, r, req)
			return
		}
		resp, err := c.Do(r.Context(), req)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var req server.UpdateRequest
		if !decodeInto(w, r, maxUpdateBody, &req) {
			return
		}
		res, err := c.Update(r.Context(), req)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Stats(r.Context())
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The coordinator is ready exactly when its whole fleet is: a
		// fleet with an unready shard cannot answer any multi-shard
		// query, so advertising readiness stays 503 — but the body
		// itemizes which partitions are down (allow_partial queries can
		// still be served over the rest) and the circuit states, so an
		// operator sees the blast radius in one probe. Every shard is
		// probed individually; a dead one does not mask the others.
		ctx, cancel := context.WithTimeout(r.Context(), healthProbeTimeout)
		defer cancel()
		errs := c.eachPartial(ctx, c.allShards(), "ready", func(ctx context.Context, i int) error {
			return c.shards[i].Ready(ctx)
		})
		shards := make([]map[string]any, len(c.shards))
		var firstErr error
		for i := range c.shards {
			state := map[string]any{"shard": c.shards[i].Name(), "ready": errs[i] == nil}
			if errs[i] != nil {
				state["error"] = errs[i].Error()
				if firstErr == nil {
					firstErr = errs[i]
				}
			}
			shards[i] = state
		}
		var breakers []BreakerState
		for _, s := range c.shards {
			if bs, ok := s.(BreakerStater); ok {
				breakers = append(breakers, bs.BreakerStates()...)
			}
		}
		body := map[string]any{
			"status":   "ok",
			"ready":    true,
			"shards":   len(c.shards),
			"fleet":    shards,
			"breakers": breakers,
		}
		if firstErr != nil {
			body["status"] = "degraded"
			body["ready"] = false
			body["error"] = firstErr.Error()
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		writeJSON(w, http.StatusOK, body)
	})
	for path, allow := range map[string]string{
		"/query":   "POST",
		"/update":  "POST",
		"/stats":   "GET",
		"/healthz": "GET",
	} {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", allow))
		})
	}
	return mux
}

// healthProbeTimeout bounds one fleet readiness sweep.
const healthProbeTimeout = 5 * time.Second

// Body bounds and NDJSON flush pacing match the single daemon's.
const (
	maxRequestBody   = 1 << 20
	maxUpdateBody    = 64 << 20
	streamFlushEvery = 128
	streamFlushAfter = 100 * time.Millisecond
)

// streamQuery answers one merged eval as NDJSON with exactly the
// single-daemon line shapes — {"order": [...]}, {"row": [...]} per
// tuple, {"summary": {"count": N, "truncated": B}} or {"error": "..."}
// — so the merged stream is byte-identical to one engine streaming the
// union. The writer discipline (per-row flush threshold plus a
// time-based background flusher) mirrors server.NewHandler's.
func streamQuery(c *Coordinator, w http.ResponseWriter, r *http.Request, req server.Request) {
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	dirty := false
	flush := func() { // callers hold wmu
		if flusher != nil {
			flusher.Flush()
		}
		dirty = false
	}
	if flusher != nil {
		stopTick := make(chan struct{})
		defer close(stopTick)
		go func() {
			tick := time.NewTicker(streamFlushAfter)
			defer tick.Stop()
			for {
				select {
				case <-stopTick:
					return
				case <-tick.C:
					wmu.Lock()
					if dirty {
						flush()
					}
					wmu.Unlock()
				}
			}
		}()
	}

	started := false
	var rows int64
	sum, err := c.StreamCtx(r.Context(), req,
		func(order []string) {
			wmu.Lock()
			defer wmu.Unlock()
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
			_ = enc.Encode(map[string]any{"order": order})
			flush()
		},
		func(mu []int64) bool {
			wmu.Lock()
			defer wmu.Unlock()
			_ = enc.Encode(map[string]any{"row": mu})
			if rows++; rows%streamFlushEvery == 0 {
				flush()
			} else {
				dirty = true
			}
			return true
		})
	wmu.Lock()
	defer wmu.Unlock()
	if err != nil {
		if !started {
			writeError(w, errStatus(err), err)
			return
		}
		_ = enc.Encode(map[string]string{"error": err.Error()})
		flush()
		return
	}
	trailer := map[string]any{
		"count":     sum.Count,
		"truncated": sum.Truncated,
	}
	if sum.Partial {
		// Only degraded merges carry the extra keys: a healthy fleet's
		// trailer stays byte-identical to a single engine's.
		trailer["partial"] = true
		trailer["missing_shards"] = sum.Missing
	}
	_ = enc.Encode(map[string]any{"summary": trailer})
	flush()
}

func decodeInto(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStatus maps a coordinator failure to its HTTP status. Ordering
// matters: context outcomes first (a cancelled fan-out wraps the
// context error inside a ShardError), then the handshake rejection,
// then shard failures — where a shard's own 4xx rejection passes
// through (the request was wrong, not the fleet) and everything else is
// a 502 naming the failed shard via the ShardError message.
func errStatus(err error) int {
	var se *StatusError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, ErrSnapshotMoved):
		return http.StatusConflict
	case errors.Is(err, ErrNotShardable):
		return http.StatusBadRequest
	case errors.As(err, &se) && se.Status >= 400 && se.Status < 500:
		return se.Status
	default:
		var she *ShardError
		if errors.As(err, &she) {
			return http.StatusBadGateway
		}
		return http.StatusBadRequest
	}
}
