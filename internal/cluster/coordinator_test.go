package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/stats"
)

// harness is one in-process fleet next to the single engine it must be
// indistinguishable from.
type harness struct {
	single  *server.Engine
	engines []*server.Engine
	coord   *Coordinator
}

// newHarness partitions db across n in-process engines and stands up a
// coordinator over them, plus one single engine over the full db as
// ground truth.
func newHarness(t *testing.T, db *relation.DB, n int, cfg server.Config) *harness {
	t.Helper()
	dbs, routing, err := Partition(db, n)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{single: server.NewEngine(db, cfg)}
	shards := make([]Shard, n)
	for i, pdb := range dbs {
		e := server.NewEngine(pdb, cfg)
		h.engines = append(h.engines, e)
		shards[i] = NewEngineShard(fmt.Sprintf("shard-%d", i), e)
	}
	h.coord, err = New(routing, shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// shardableQueries is the differential workload: every routable shape —
// single atom, stars of width 2..3, cross-relation star, constant
// selections on the lead and non-lead positions.
var shardableQueries = []string{
	"E(x,y)",
	"E(x,y), E(x,z)",
	"E(x,y), E(x,z), E(x,w)",
	"E(x,y), R(x,z)",
	"E(x,5), E(x,z)",
	"E(3,y)",
	"E(3,y), E(3,z)",
}

// checkDo runs req against the fleet and the single engine (pinned to
// the greedy orderer the coordinator forces) and requires identical
// results.
func checkDo(t *testing.T, h *harness, req server.Request) (*server.Response, *server.Response) {
	t.Helper()
	ctx := context.Background()
	merged, err := h.coord.Do(ctx, req)
	if err != nil {
		t.Fatalf("coordinator %+v: %v", req, err)
	}
	sreq := req
	sreq.Orderer = "greedy"
	want, err := h.single.DoCtx(ctx, sreq)
	if err != nil {
		t.Fatalf("single engine %+v: %v", req, err)
	}
	if merged.Count != want.Count {
		t.Errorf("%+v: count %d, single engine %d", req, merged.Count, want.Count)
	}
	if merged.Value != want.Value {
		t.Errorf("%+v: value %v, single engine %v", req, merged.Value, want.Value)
	}
	if !reflect.DeepEqual(merged.Order, want.Order) {
		t.Errorf("%+v: order %v, single engine %v", req, merged.Order, want.Order)
	}
	if merged.Truncated != want.Truncated {
		t.Errorf("%+v: truncated %v, single engine %v", req, merged.Truncated, want.Truncated)
	}
	if !reflect.DeepEqual(merged.Tuples, want.Tuples) {
		t.Errorf("%+v: merged eval sample diverges from single engine\nmerged: %v\nsingle: %v", req, merged.Tuples, want.Tuples)
	}
	return merged, want
}

// streamAll collects a full stream: order, rows, summary.
func streamAll(t *testing.T, run func(header func([]string), row func([]int64) bool) (server.StreamSummary, error)) ([]string, [][]int64, server.StreamSummary) {
	t.Helper()
	var order []string
	var rows [][]int64
	sum, err := run(
		func(o []string) { order = append([]string(nil), o...) },
		func(mu []int64) bool {
			rows = append(rows, append([]int64(nil), mu...))
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	return order, rows, sum
}

// TestCoordinatorDifferential is the acceptance harness: at shard
// counts 1, 2 and 4, every shardable query's count, eval sample,
// aggregate and stream are identical to a single engine over the union,
// and the fleet's lifetime counters fold exactly.
func TestCoordinatorDifferential(t *testing.T) {
	db := testGraphDB()
	ctx := context.Background()
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			h := newHarness(t, db, n, server.Config{Workers: 2})
			for _, q := range shardableQueries {
				checkDo(t, h, server.Request{Query: q})
				checkDo(t, h, server.Request{Query: q, Mode: "eval"})
				checkDo(t, h, server.Request{Query: q, Mode: "eval", Limit: 7})
				checkDo(t, h, server.Request{Query: q, Mode: "eval", Limit: 100000})
				checkDo(t, h, server.Request{Query: q, Mode: "aggregate"})
				checkDo(t, h, server.Request{Query: q, Mode: "aggregate", Semiring: "sum"})
				checkDo(t, h, server.Request{Query: q, Mode: "aggregate", Semiring: "min"})

				for _, limit := range []int{0, 5} {
					req := server.Request{Query: q, Mode: "stream", Limit: limit}
					gotOrder, gotRows, gotSum := streamAll(t, func(hd func([]string), row func([]int64) bool) (server.StreamSummary, error) {
						return h.coord.StreamCtx(ctx, req, hd, row)
					})
					sreq := req
					sreq.Orderer = "greedy"
					wantOrder, wantRows, wantSum := streamAll(t, func(hd func([]string), row func([]int64) bool) (server.StreamSummary, error) {
						return h.single.StreamCtx(ctx, sreq, hd, row)
					})
					if !reflect.DeepEqual(gotOrder, wantOrder) {
						t.Errorf("stream %s limit=%d: order %v, single %v", q, limit, gotOrder, wantOrder)
					}
					if !reflect.DeepEqual(gotSum, wantSum) {
						t.Errorf("stream %s limit=%d: summary %+v, single %+v", q, limit, gotSum, wantSum)
					}
					if !reflect.DeepEqual(gotRows, wantRows) {
						t.Errorf("stream %s limit=%d: %d merged rows diverge from single engine's %d", q, limit, len(gotRows), len(wantRows))
					}
				}
			}

			// Counter exactness: the fleet's merged lifetime is the exact
			// fold of the per-shard lifetimes, via the same Merge.
			st, err := h.coord.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var want stats.Counters
			for _, e := range h.engines {
				es := e.Stats()
				want.Merge(&es.Lifetime)
			}
			if !reflect.DeepEqual(st.Lifetime, want) {
				t.Errorf("merged lifetime counters %+v diverge from exact per-shard fold %+v", st.Lifetime, want)
			}
			if st.Shards != n || len(st.PerShard) != n {
				t.Errorf("stats fleet size %d/%d, want %d", st.Shards, len(st.PerShard), n)
			}

			// Unshardable shapes are refused with the typed error, never
			// silently partial.
			if _, err := h.coord.Do(ctx, server.Request{Query: "E(x,y), E(y,z), E(x,z)"}); !errors.Is(err, ErrNotShardable) {
				t.Errorf("triangle: %v, want ErrNotShardable", err)
			}
		})
	}
}

// TestCoordinatorUpdateDifferential applies one delta through the
// coordinator and the same delta to the single engine, then requires
// query results to stay identical — the routed sub-deltas land exactly
// where the partitioner would have put the tuples.
func TestCoordinatorUpdateDifferential(t *testing.T) {
	db := testGraphDB()
	ctx := context.Background()
	h := newHarness(t, db, 4, server.Config{})
	delta := server.UpdateRequest{
		Relation: "E",
		Inserts:  [][]int64{{1, 2}, {2, 3}, {3, 4}, {200, 201}, {201, 202}, {202, 200}},
		Deletes:  [][]int64{{0, 1}},
	}
	res, err := h.coord.Update(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Applied {
		t.Fatal("delta reported unapplied")
	}
	if _, err := h.single.Update(delta); err != nil {
		t.Fatal(err)
	}
	for _, q := range shardableQueries {
		checkDo(t, h, server.Request{Query: q})
		checkDo(t, h, server.Request{Query: q, Mode: "eval"})
	}

	// A second identical update is a no-op everywhere (set semantics),
	// and versions do not advance — the retry-after-partial-failure
	// convergence story rests on this.
	res2, err := h.coord.Update(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied {
		t.Fatal("replayed delta reported applied")
	}

	// Unknown relations fail like a single engine, even for an empty
	// delta that routes nowhere.
	if _, err := h.coord.Update(ctx, server.UpdateRequest{Relation: "nope"}); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

// TestCoordinatorRouteCache checks the routing cache keys on the global
// version vector: repeats hit, an update anywhere moves the key.
func TestCoordinatorRouteCache(t *testing.T) {
	db := testGraphDB()
	ctx := context.Background()
	h := newHarness(t, db, 2, server.Config{})
	req := server.Request{Query: "E(x,y), E(x,z)"}
	if _, err := h.coord.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := h.coord.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	st, _ := h.coord.Stats(ctx)
	if st.Routes.Hits < 1 || st.Routes.Misses < 1 {
		t.Fatalf("route cache hits=%d misses=%d after a repeat", st.Routes.Hits, st.Routes.Misses)
	}
	if _, err := h.coord.Update(ctx, server.UpdateRequest{Relation: "E", Inserts: [][]int64{{500, 501}}}); err != nil {
		t.Fatal(err)
	}
	misses := st.Routes.Misses
	if _, err := h.coord.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	st, _ = h.coord.Stats(ctx)
	if st.Routes.Misses != misses+1 {
		t.Fatalf("update did not move the route key: misses %d -> %d", misses, st.Routes.Misses)
	}
}

// movingShard wraps a shard and injects one local update between the
// coordinator's handshake and the query's execution — the exact race
// the consistent-snapshot check exists to catch.
type movingShard struct {
	*EngineShard
	delta server.UpdateRequest
	armed bool
}

func (m *movingShard) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	if m.armed {
		m.armed = false
		if _, err := m.Engine().Update(m.delta); err != nil {
			return nil, err
		}
	}
	return m.EngineShard.Do(ctx, req)
}

func (m *movingShard) Stream(ctx context.Context, req server.Request, header func([]string), row func([]int64) bool) (server.StreamSummary, error) {
	if m.armed {
		m.armed = false
		if _, err := m.Engine().Update(m.delta); err != nil {
			return server.StreamSummary{}, err
		}
	}
	return m.EngineShard.Stream(ctx, req, header, row)
}

// TestCoordinatorSnapshotMoved rejects a merge whose shard moved
// between handshake and execution, for both buffered and streaming
// paths, and recovers on retry once the fleet settles.
func TestCoordinatorSnapshotMoved(t *testing.T) {
	db := testGraphDB()
	ctx := context.Background()
	dbs, routing, err := Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	mover := &movingShard{
		EngineShard: NewEngineShard("shard-0", server.NewEngine(dbs[0], server.Config{})),
		delta:       server.UpdateRequest{Relation: "E", Inserts: [][]int64{{777, 778}}},
	}
	coord, err := New(routing, []Shard{mover, NewEngineShard("shard-1", server.NewEngine(dbs[1], server.Config{}))}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	mover.armed = true
	if _, err := coord.Do(ctx, server.Request{Query: "E(x,y), E(x,z)"}); !errors.Is(err, ErrSnapshotMoved) {
		t.Fatalf("buffered merge after mid-query update: %v, want ErrSnapshotMoved", err)
	}
	// The fleet has settled (the injected update landed); the retry
	// merges cleanly.
	if _, err := coord.Do(ctx, server.Request{Query: "E(x,y), E(x,z)"}); err != nil {
		t.Fatalf("retry after settle: %v", err)
	}

	// Re-arm with a fresh tuple — replaying the first delta would be a
	// set-semantics no-op that leaves the version vector unmoved.
	mover.delta = server.UpdateRequest{Relation: "E", Inserts: [][]int64{{888, 889}}}
	mover.armed = true
	_, err = coord.StreamCtx(ctx, server.Request{Query: "E(x,y), E(x,z)", Mode: "stream"},
		nil, func(mu []int64) bool { return true })
	if !errors.Is(err, ErrSnapshotMoved) {
		t.Fatalf("stream after mid-query update: %v, want ErrSnapshotMoved", err)
	}
	st, _ := coord.Stats(ctx)
	if st.SnapshotRejects != 2 {
		t.Fatalf("snapshot_rejects = %d, want 2", st.SnapshotRejects)
	}
}

// failingShard fails every operation after construction — the
// mid-fleet outage case.
type failingShard struct{ name string }

var errShardDown = errors.New("connection refused")

func (f *failingShard) Name() string                    { return f.name }
func (f *failingShard) Ready(ctx context.Context) error { return errShardDown }
func (f *failingShard) Versions(ctx context.Context, names []string) (map[string]uint64, error) {
	return nil, errShardDown
}
func (f *failingShard) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	return nil, errShardDown
}
func (f *failingShard) Stream(ctx context.Context, req server.Request, header func([]string), row func([]int64) bool) (server.StreamSummary, error) {
	return server.StreamSummary{}, errShardDown
}
func (f *failingShard) Update(ctx context.Context, req server.UpdateRequest) (*server.UpdateResult, error) {
	return nil, errShardDown
}
func (f *failingShard) Stats(ctx context.Context) (*server.EngineStats, error) {
	return nil, errShardDown
}

// TestCoordinatorShardFailureTyped: a dead shard surfaces as a typed
// ShardError naming it, never a silent partial merge.
func TestCoordinatorShardFailureTyped(t *testing.T) {
	db := testGraphDB()
	ctx := context.Background()
	dbs, routing, err := Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(routing, []Shard{
		NewEngineShard("shard-0", server.NewEngine(dbs[0], server.Config{})),
		&failingShard{name: "shard-1"},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Do(ctx, server.Request{Query: "E(x,y), E(x,z)"})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("dead shard: %v, want *ShardError", err)
	}
	if se.Shard != "shard-1" {
		t.Fatalf("error names shard %q, want shard-1", se.Shard)
	}
	if !errors.Is(err, errShardDown) {
		t.Fatalf("ShardError does not wrap the cause: %v", err)
	}
}
