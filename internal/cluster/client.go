package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

// ClientConfig tunes one shard client.
type ClientConfig struct {
	// Timeout bounds each buffered request (query, update, stats,
	// readiness probe) end to end; 0 uses DefaultShardTimeout. Streaming
	// requests are bounded only by their context — a large result set is
	// not a failure.
	Timeout time.Duration
	// Retries is the number of extra attempts for idempotent reads
	// (query, versions, stats, readiness) after a transport failure —
	// never after an HTTP-level answer, and never for updates, which are
	// not idempotent. Negative disables retry; 0 uses
	// DefaultShardRetries.
	Retries int
	// Backoff is the base delay before the first retry; attempt k waits
	// Backoff·2^k scaled by a uniform jitter in [0.5, 1.5), so a fleet
	// of retriers does not re-converge on a struggling shard in
	// lockstep. 0 uses DefaultShardBackoff; negative disables the sleep
	// (retries fire immediately — the pre-backoff behavior, used by
	// tight test loops).
	Backoff time.Duration
	// BreakerThreshold is how many consecutive transport failures open
	// the endpoint's circuit (requests then fail fast with
	// ErrBreakerOpen until a half-open probe succeeds). 0 uses
	// DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open-circuit rejection window before one
	// half-open probe is admitted; 0 uses DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Transport overrides the HTTP transport (nil builds the pooled
	// default). The fault-injection harness wraps the default in a
	// faults.Transport here; production leaves it nil.
	Transport http.RoundTripper
}

// DefaultShardTimeout bounds one buffered shard request when the config
// does not name one.
const DefaultShardTimeout = 30 * time.Second

// DefaultShardRetries is the bounded retry budget for idempotent reads
// when the config does not name one.
const DefaultShardRetries = 2

// DefaultShardBackoff is the base retry delay when the config does not
// name one.
const DefaultShardBackoff = 50 * time.Millisecond

// Client speaks the shard protocol over the daemon's HTTP/JSON surface.
// It keeps one transport per shard with connection reuse (the
// coordinator's fan-out pattern makes every shard a hot peer), applies
// a per-request timeout, and retries idempotent reads a bounded number
// of times on transport errors. Safe for concurrent use.
type Client struct {
	name    string
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	brk     *breaker
}

// NewClient returns a shard client for addr (host:port, or a full
// http:// base URL).
func NewClient(addr string, cfg ClientConfig) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = DefaultShardTimeout
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = DefaultShardRetries
	}
	if retries < 0 {
		retries = 0
	}
	backoff := cfg.Backoff
	if backoff == 0 {
		backoff = DefaultShardBackoff
	}
	if backoff < 0 {
		backoff = 0
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	var brk *breaker
	if cfg.BreakerThreshold >= 0 {
		brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	return &Client{
		name:    addr,
		base:    strings.TrimSuffix(base, "/"),
		hc:      &http.Client{Transport: transport},
		timeout: timeout,
		retries: retries,
		backoff: backoff,
		brk:     brk,
	}
}

// BreakerStates implements BreakerStater: the one endpoint circuit this
// client guards.
func (c *Client) BreakerStates() []BreakerState {
	return []BreakerState{c.brk.snapshot(c.name)}
}

// sleepBackoff waits out the jittered exponential delay before retry
// attempt k (0-based), or returns early with ctx's error.
func sleepBackoff(ctx context.Context, base time.Duration, k int) error {
	if base <= 0 {
		return nil
	}
	d := base << min(k, 10)
	// Uniform jitter in [0.5, 1.5): retriers spread out instead of
	// re-converging on a struggling shard in lockstep.
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Name implements Shard.
func (c *Client) Name() string { return c.name }

// roundTrip performs one bounded HTTP exchange and decodes the JSON
// answer into out. A non-2xx status decodes the daemon's {"error": ...}
// body into a *StatusError. idempotent requests are retried on
// transport errors (connection refused/reset, timeout before any HTTP
// answer) up to the retry budget.
func (c *Client) roundTrip(ctx context.Context, method, path string, body any, out any, idempotent bool) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			if err := sleepBackoff(ctx, c.backoff, attempt-1); err != nil {
				return lastErr
			}
		}
		if !c.brk.allow() {
			// Fail fast instead of stacking timeouts on an endpoint the
			// breaker already proved dead; retrying locally is pointless
			// too — the circuit stays open for the whole cooldown.
			return fmt.Errorf("%w: %s", ErrBreakerOpen, c.name)
		}
		lastErr = c.once(ctx, method, path, payload, out)
		var se *StatusError
		answered := lastErr == nil || errors.As(lastErr, &se)
		c.brk.record(answered)
		if answered || ctx.Err() != nil {
			// An HTTP-level answer is authoritative — the shard saw the
			// request; only transport failures are worth retrying.
			return lastErr
		}
	}
	return lastErr
}

func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return &StatusError{Status: resp.StatusCode, Msg: decodeErrorBody(resp.Body)}
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeErrorBody extracts the daemon's JSON error message, falling
// back to the raw body for non-JSON answers.
func decodeErrorBody(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// Ready implements Shard: GET /healthz, expecting the 200 the daemon
// only serves once its engine is booted (the readiness gate answers 503
// during warm boot / WAL replay).
func (c *Client) Ready(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// Versions implements Shard via GET /stats.
func (c *Client) Versions(ctx context.Context, names []string) (map[string]uint64, error) {
	st, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make(map[string]uint64, len(names))
	for _, rel := range st.Relations {
		if names == nil || want[rel.Name] {
			out[rel.Name] = rel.Version
		}
	}
	return out, nil
}

// Do implements Shard: POST /query. Count, eval and aggregate are
// reads, so transport failures are retried within the budget.
func (c *Client) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	var resp server.Response
	if err := c.roundTrip(ctx, http.MethodPost, "/query", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Update implements Shard: POST /update, never retried (a delta is not
// idempotent — a retry after an ambiguous transport failure could apply
// it twice... which set semantics would absorb, but the version vector
// would advance twice and break the snapshot handshake).
func (c *Client) Update(ctx context.Context, req server.UpdateRequest) (*server.UpdateResult, error) {
	var res server.UpdateResult
	if err := c.roundTrip(ctx, http.MethodPost, "/update", req, &res, false); err != nil {
		return nil, err
	}
	return &res, nil
}

// Stats implements Shard: GET /stats.
func (c *Client) Stats(ctx context.Context) (*server.EngineStats, error) {
	var st server.EngineStats
	if err := c.roundTrip(ctx, http.MethodGet, "/stats", nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// streamLine is one NDJSON line of the daemon's streaming response.
type streamLine struct {
	Order   []string `json:"order"`
	Row     *[]int64 `json:"row"`
	Summary *struct {
		Count     int64 `json:"count"`
		Truncated bool  `json:"truncated"`
	} `json:"summary"`
	Error *string `json:"error"`
}

// maxStreamLine bounds one NDJSON line (a row of a very wide query
// still fits comfortably).
const maxStreamLine = 1 << 20

// Stream implements Shard: POST /query with "mode": "stream", decoding
// the NDJSON answer — header line, row lines, summary or error trailer.
// Not retried: rows may already have been delivered. The request's
// context bounds the whole stream (no per-request timeout — long
// streams are not failures); row returning false abandons the response
// body, which cancels the shard's scan through its request context.
func (c *Client) Stream(ctx context.Context, req server.Request, header func(order []string), row func(mu []int64) bool) (server.StreamSummary, error) {
	req.Mode = "stream"
	payload, err := json.Marshal(req)
	if err != nil {
		return server.StreamSummary{}, err
	}
	if !c.brk.allow() {
		return server.StreamSummary{}, fmt.Errorf("%w: %s", ErrBreakerOpen, c.name)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(payload))
	if err != nil {
		return server.StreamSummary{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// The injection harness classifies requests by URL path; streams
	// share /query with buffered reads, so the class rides a header.
	hreq.Header.Set(faults.ClassHeader, "stream")
	resp, err := c.hc.Do(hreq)
	c.brk.record(err == nil)
	if err != nil {
		return server.StreamSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return server.StreamSummary{}, &StatusError{Status: resp.StatusCode, Msg: decodeErrorBody(resp.Body)}
	}

	var sum server.StreamSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxStreamLine)
	sawTrailer := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var msg streamLine
		if err := json.Unmarshal(line, &msg); err != nil {
			return sum, fmt.Errorf("cluster: bad stream line from %s: %w", c.name, err)
		}
		switch {
		case msg.Error != nil:
			return sum, errors.New(*msg.Error)
		case msg.Summary != nil:
			sum.Count = msg.Summary.Count
			sum.Truncated = msg.Summary.Truncated
			sawTrailer = true
		case msg.Row != nil:
			sum.Count++ // a consumer stop still counts the delivered row
			if !row(*msg.Row) {
				return sum, nil // consumer stop: normal completion
			}
		case msg.Order != nil:
			if header != nil {
				header(msg.Order)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	if !sawTrailer {
		return sum, fmt.Errorf("cluster: stream from %s ended without a summary trailer", c.name)
	}
	return sum, nil
}
