package cluster

import (
	"context"

	"repro/internal/server"
)

// Shard is the protocol a coordinator speaks to one shard engine. Two
// implementations exist: EngineShard runs the engine in-process (the
// differential-test and benchmark harness), Client speaks the daemon's
// HTTP/JSON surface over a socket. Both are safe for concurrent use.
type Shard interface {
	// Name identifies the shard in errors and stats (the address for
	// socket shards).
	Name() string
	// Ready reports whether the shard is serving: nil once the engine
	// answers (readiness, not liveness — a warm boot still replaying its
	// WAL is not ready). The coordinator gates shard admission on it.
	Ready(ctx context.Context) error
	// Versions returns the shard's current version number per named
	// relation — the coordinator's consistent-snapshot handshake
	// collects these before fanning out and rejects a merge whose
	// responses executed at any other vector.
	Versions(ctx context.Context, names []string) (map[string]uint64, error)
	// Do executes one buffered query (count, eval, aggregate).
	Do(ctx context.Context, req server.Request) (*server.Response, error)
	// Stream executes one streaming eval: header once with the plan's
	// variable order, then row per result tuple in the engine's
	// deterministic order (root-ascending); row returning false stops
	// the shard's scan.
	Stream(ctx context.Context, req server.Request, header func(order []string), row func(mu []int64) bool) (server.StreamSummary, error)
	// Update applies one (already routed) delta to the shard.
	Update(ctx context.Context, req server.UpdateRequest) (*server.UpdateResult, error)
	// Stats snapshots the shard engine's lifetime statistics.
	Stats(ctx context.Context) (*server.EngineStats, error)
}

// EngineShard adapts an in-process *server.Engine to the shard
// protocol: the coordinator's fan-out and merge logic runs unchanged
// over function calls instead of sockets, which is what the
// differential harness and the E20 benchmark drive.
type EngineShard struct {
	name string
	e    *server.Engine
}

// NewEngineShard wraps an engine as a named in-process shard.
func NewEngineShard(name string, e *server.Engine) *EngineShard {
	return &EngineShard{name: name, e: e}
}

// Engine returns the wrapped engine (test hooks: injecting updates
// between handshake steps).
func (s *EngineShard) Engine() *server.Engine { return s.e }

// Name implements Shard.
func (s *EngineShard) Name() string { return s.name }

// Ready implements Shard: an in-process engine is ready by
// construction.
func (s *EngineShard) Ready(ctx context.Context) error { return ctx.Err() }

// Versions implements Shard.
func (s *EngineShard) Versions(ctx context.Context, names []string) (map[string]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.e.VersionNumbers(names), nil
}

// Do implements Shard.
func (s *EngineShard) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	return s.e.DoCtx(ctx, req)
}

// Stream implements Shard.
func (s *EngineShard) Stream(ctx context.Context, req server.Request, header func(order []string), row func(mu []int64) bool) (server.StreamSummary, error) {
	req.Mode = ""
	return s.e.StreamCtx(ctx, req, header, row)
}

// Update implements Shard.
func (s *EngineShard) Update(ctx context.Context, req server.UpdateRequest) (*server.UpdateResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.e.Update(req)
}

// Stats implements Shard.
func (s *EngineShard) Stats(ctx context.Context) (*server.EngineStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := s.e.Stats()
	return &st, nil
}
