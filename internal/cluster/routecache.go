package cluster

import "sync"

// DefaultRouteCacheSize is the coordinator's route-cache capacity when
// the config does not name one.
const DefaultRouteCacheSize = 256

// routeKey identifies one routed query at one global snapshot: the raw
// query text, the plan-affecting options, and the global version vector
// — every shard's per-relation version numbers, concatenated in shard
// order. Keying on the global vector gives the same free invalidation
// the engine's plan cache enjoys: an update anywhere moves the vector,
// so stale routes (and the variable order pinned with them) become
// unreachable by construction.
type routeKey struct {
	text string
	opts string
	vers string
}

// routeEntry is one cached routing decision plus what the first
// execution at this snapshot learned: the sorted relation names the
// query touches and the shards' common variable order, which later
// executions at the same key are held to.
type routeEntry struct {
	key        routeKey
	route      RoutePlan
	names      []string
	order      []string
	prev, next *routeEntry
}

// routeCache is the coordinator's LRU over routing decisions — the
// distributed analogue of the engine's plan cache (the expensive
// per-shard compilation is cached by each shard's own plan cache; what
// the coordinator caches is parse + route + the pinned merge order).
type routeCache struct {
	mu      sync.Mutex
	cap     int
	entries map[routeKey]*routeEntry
	head    *routeEntry // least recently used (next victim)
	tail    *routeEntry // most recently used
	hits    int64
	misses  int64
	evicted int64
}

// newRouteCache returns an LRU route cache holding at most capacity
// entries; capacity <= 0 returns nil (caching disabled).
func newRouteCache(capacity int) *routeCache {
	if capacity <= 0 {
		return nil
	}
	return &routeCache{cap: capacity, entries: make(map[routeKey]*routeEntry)}
}

// get returns the cached entry's route/names/order, refreshing recency.
func (rc *routeCache) get(key routeKey) (RoutePlan, []string, []string, bool) {
	if rc == nil {
		return RoutePlan{}, nil, nil, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.entries[key]
	if !ok {
		rc.misses++
		return RoutePlan{}, nil, nil, false
	}
	rc.hits++
	rc.moveToTail(e)
	return e.route, e.names, e.order, true
}

// put stores one routing decision, evicting the least recently used
// entry past capacity. order may be nil (not yet learned); learn fills
// it in later.
func (rc *routeCache) put(key routeKey, route RoutePlan, names, order []string) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e, ok := rc.entries[key]; ok {
		e.route, e.names, e.order = route, names, order
		rc.moveToTail(e)
		return
	}
	e := &routeEntry{key: key, route: route, names: names, order: order}
	rc.entries[key] = e
	rc.pushTail(e)
	for len(rc.entries) > rc.cap {
		victim := rc.head
		rc.unlink(victim)
		delete(rc.entries, victim.key)
		rc.evicted++
	}
}

// learn records the variable order the shards agreed on for key, so
// later executions at the same snapshot are verified against it.
func (rc *routeCache) learn(key routeKey, order []string) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if e, ok := rc.entries[key]; ok && e.order == nil {
		e.order = order
	}
}

// RouteCacheStats reports the route cache's lifetime activity and
// current residency, served under "routes" in the coordinator's stats.
type RouteCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

func (rc *routeCache) stats() RouteCacheStats {
	if rc == nil {
		return RouteCacheStats{}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return RouteCacheStats{
		Hits:      rc.hits,
		Misses:    rc.misses,
		Evictions: rc.evicted,
		Size:      len(rc.entries),
		Capacity:  rc.cap,
	}
}

// moveToTail, pushTail and unlink are the usual intrusive-list moves;
// callers hold mu.
func (rc *routeCache) moveToTail(e *routeEntry) {
	if rc.tail == e {
		return
	}
	rc.unlink(e)
	rc.pushTail(e)
}

func (rc *routeCache) pushTail(e *routeEntry) {
	e.prev, e.next = rc.tail, nil
	if rc.tail != nil {
		rc.tail.next = e
	}
	rc.tail = e
	if rc.head == nil {
		rc.head = e
	}
}

func (rc *routeCache) unlink(e *routeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		rc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		rc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
