package cluster

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

// faultsSeed reruns the chaos soak under an exact fault schedule: a
// failing run logs its seed, and `-faults-seed=N` replays it.
var faultsSeed = flag.Uint64("faults-seed", 0, "fault-injection seed for the chaos soak (0 = default)")

// defaultChaosSeed keeps ordinary CI runs deterministic; the -race
// matrix still varies goroutine interleavings around the fixed fault
// schedule.
const defaultChaosSeed = 20250808

// chaosInvariant asserts one typed coordinator error — anything a
// degraded fleet answers must be a documented failure, never garbage.
func chaosInvariant(t *testing.T, tag string, err error) {
	t.Helper()
	var se *ShardError
	var ste *StatusError
	switch {
	case errors.As(err, &se), errors.As(err, &ste),
		errors.Is(err, ErrSnapshotMoved), errors.Is(err, ErrNotShardable),
		errors.Is(err, ErrBreakerOpen),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
	default:
		t.Fatalf("%s: untyped failure %v", tag, err)
	}
}

// TestChaosSoak drives a mixed read workload through a real 4-shard
// HTTP fleet under a seeded fault schedule — drops, resets, stream
// truncation, delays, preflight failures and registry eviction pressure
// — and holds the serving tier to its one contract: every response is
// byte-correct against the single-engine oracle, a typed error, or a
// correctly-marked partial answer that is exact over the shards it
// names as surviving. Never silently wrong.
func TestChaosSoak(t *testing.T) {
	seed := *faultsSeed
	if seed == 0 {
		seed = defaultChaosSeed
	}
	t.Logf("chaos soak seed %d — reproduce with: go test ./internal/cluster -run TestChaosSoak -faults-seed=%d", seed, seed)

	inj := faults.New(seed).
		Add(faults.Rule{Site: "transport/shard-0/query", P: 0.25}).
		Add(faults.Rule{Site: "transport/shard-1/query", Kind: faults.KindReset, P: 0.15}).
		Add(faults.Rule{Site: "transport/shard-1/stats", P: 0.10}).
		Add(faults.Rule{Site: "transport/shard-2/stream", Kind: faults.KindTruncate, P: 0.35, Bytes: 300}).
		Add(faults.Rule{Site: "transport/shard-3/*", Kind: faults.KindDelay, P: 0.20, Delay: 2 * time.Millisecond}).
		Add(faults.Rule{Site: "registry/pressure", P: 0.05})

	db := testGraphDB()
	single := server.NewEngine(db, server.Config{})
	dbs, routing, err := Partition(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*server.Engine, 4)
	shards := make([]Shard, 4)
	idxOf := make(map[string]int, 4) // shard name (addr) -> partition
	for i, pdb := range dbs {
		engines[i] = server.NewEngine(pdb, server.Config{Faults: inj})
		srv := httptest.NewServer(server.NewHandler(engines[i]))
		t.Cleanup(srv.Close)
		shards[i] = NewClient(srv.URL, ClientConfig{
			Timeout:         10 * time.Second,
			Backoff:         -1, // tight soak loop: no sleeps between retries
			BreakerCooldown: 50 * time.Millisecond,
			Transport:       &faults.Transport{Inj: inj, Site: fmt.Sprintf("transport/shard-%d", i)},
		})
		idxOf[srv.URL] = i
	}
	coord, err := New(routing, shards, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth, all pinned to the orderer the coordinator forces:
	// the oracle's full answer per query, its row set, and each shard's
	// exact local count (what "exact over the survivors" must sum to).
	ctx := context.Background()
	type oracle struct {
		count  int64
		rows   [][]int64
		rowSet map[string]bool
		shard  [4]int64
	}
	oracles := make(map[string]*oracle, len(shardableQueries))
	for _, q := range shardableQueries {
		o := &oracle{rowSet: make(map[string]bool)}
		_, o.rows, _ = streamAll(t, func(hd func([]string), row func([]int64) bool) (server.StreamSummary, error) {
			return single.StreamCtx(ctx, server.Request{Query: q, Orderer: "greedy"}, hd, row)
		})
		o.count = int64(len(o.rows))
		for _, r := range o.rows {
			o.rowSet[fmt.Sprint(r)] = true
		}
		for i, e := range engines {
			resp, err := e.DoCtx(ctx, server.Request{Query: q, Orderer: "greedy"})
			if err != nil {
				t.Fatal(err)
			}
			o.shard[i] = resp.Count
		}
		oracles[q] = o
	}

	// liveSum is the exact count over the shards a partial answer did
	// NOT declare missing.
	liveSum := func(o *oracle, missing []string) int64 {
		dead := make(map[int]bool, len(missing))
		for _, name := range missing {
			i, ok := idxOf[name]
			if !ok {
				t.Fatalf("missing_shards names unknown shard %q", name)
			}
			dead[i] = true
		}
		var sum int64
		for i, n := range o.shard {
			if !dead[i] {
				sum += n
			}
		}
		return sum
	}

	rng := rand.New(rand.NewPCG(seed, 0x1234))
	const iterations = 160
	var served, partials, failures int
	for it := 0; it < iterations; it++ {
		q := shardableQueries[rng.IntN(len(shardableQueries))]
		o := oracles[q]
		ap := rng.IntN(2) == 0
		tag := fmt.Sprintf("iter %d %q allow_partial=%v", it, q, ap)
		switch rng.IntN(3) {
		case 0: // count
			resp, err := coord.Do(ctx, server.Request{Query: q, AllowPartial: ap})
			if err != nil {
				chaosInvariant(t, tag, err)
				failures++
				continue
			}
			served++
			if !resp.Partial {
				if resp.Count != o.count {
					t.Fatalf("%s: count %d, oracle %d", tag, resp.Count, o.count)
				}
				continue
			}
			partials++
			if !ap || len(resp.Missing) == 0 {
				t.Fatalf("%s: partial answer without permission or missing list: %+v", tag, resp)
			}
			if want := liveSum(o, resp.Missing); resp.Count != want {
				t.Fatalf("%s: partial count %d, exact-over-survivors %d (missing %v)", tag, resp.Count, want, resp.Missing)
			}
		case 1: // eval
			resp, err := coord.Do(ctx, server.Request{Query: q, Mode: "eval", AllowPartial: ap})
			if err != nil {
				chaosInvariant(t, tag, err)
				failures++
				continue
			}
			served++
			if !resp.Partial {
				if resp.Count != o.count {
					t.Fatalf("%s: eval count %d, oracle %d", tag, resp.Count, o.count)
				}
				limit := server.DefaultMaxTuples
				if len(o.rows) <= limit && !reflect.DeepEqual(resp.Tuples, o.rows) {
					t.Fatalf("%s: eval sample diverges from oracle (%d vs %d rows)", tag, len(resp.Tuples), len(o.rows))
				}
				continue
			}
			partials++
			if !ap {
				t.Fatalf("%s: partial answer without permission", tag)
			}
			want := liveSum(o, resp.Missing)
			if resp.Count != want {
				t.Fatalf("%s: partial eval count %d, exact-over-survivors %d", tag, resp.Count, want)
			}
			seen := make(map[string]bool, len(resp.Tuples))
			for _, r := range resp.Tuples {
				k := fmt.Sprint(r)
				if !o.rowSet[k] || seen[k] {
					t.Fatalf("%s: partial eval emitted wrong or duplicate row %v", tag, r)
				}
				seen[k] = true
			}
		default: // stream
			var rows [][]int64
			sum, err := coord.StreamCtx(ctx, server.Request{Query: q, AllowPartial: ap}, nil,
				func(mu []int64) bool {
					rows = append(rows, append([]int64(nil), mu...))
					return true
				})
			if err != nil {
				// Delivered rows before a typed failure must still be an
				// oracle prefix-merge — spot-check membership.
				chaosInvariant(t, tag, err)
				failures++
				for _, r := range rows {
					if !o.rowSet[fmt.Sprint(r)] {
						t.Fatalf("%s: failed stream had delivered wrong row %v", tag, r)
					}
				}
				continue
			}
			served++
			if sum.Count != int64(len(rows)) {
				t.Fatalf("%s: stream trailer count %d, delivered %d", tag, sum.Count, len(rows))
			}
			if !sum.Partial {
				if !reflect.DeepEqual(rows, o.rows) {
					t.Fatalf("%s: stream diverges from oracle (%d vs %d rows)", tag, len(rows), len(o.rows))
				}
				continue
			}
			partials++
			if !ap || len(sum.Missing) == 0 {
				t.Fatalf("%s: partial stream without permission or missing list: %+v", tag, sum)
			}
			// A mid-stream death keeps the dead shard's delivered prefix,
			// so the exact floor is the survivors' total; every row must
			// be a distinct oracle row.
			if want := liveSum(o, sum.Missing); int64(len(rows)) < want || int64(len(rows)) > o.count {
				t.Fatalf("%s: partial stream delivered %d rows, want within [%d, %d]", tag, len(rows), want, o.count)
			}
			seen := make(map[string]bool, len(rows))
			for _, r := range rows {
				k := fmt.Sprint(r)
				if !o.rowSet[k] || seen[k] {
					t.Fatalf("%s: partial stream emitted wrong or duplicate row %v", tag, r)
				}
				seen[k] = true
			}
		}
	}
	t.Logf("chaos soak: %d served (%d partial), %d typed failures over %d iterations; fires=%v",
		served, partials, failures, iterations, inj.Fires())
	if served == 0 {
		t.Fatal("chaos schedule killed every request — soak proved nothing")
	}
	if partials == 0 && failures == 0 {
		t.Fatal("chaos schedule injected nothing — soak proved nothing")
	}
}
