package cluster

import (
	"sync"
	"time"
)

// DefaultBreakerThreshold is how many consecutive transport failures
// open an endpoint's circuit when the config does not name a count.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is how long an open circuit rejects requests
// before admitting one half-open probe.
const DefaultBreakerCooldown = time.Second

// breaker is a per-endpoint circuit breaker over transport outcomes.
// Closed admits everything; Threshold consecutive transport failures
// open it, and an open circuit fails requests fast (ErrBreakerOpen)
// instead of stacking timeouts on a dead endpoint. After Cooldown, one
// request is admitted as a half-open probe: its success closes the
// circuit, its failure re-opens it for another cooldown.
//
// "Failure" means a transport failure only — an endpoint that answers
// any HTTP status, even a 5xx, is alive and keeps its circuit closed.
// Safe for concurrent use.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       string // "closed", "open", "half_open"
	consecutive int
	openedAt    time.Time
	opens       int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, state: "closed"}
}

// allow reports whether a request may proceed. In the open state it
// admits exactly one probe per cooldown window (flipping to half_open);
// in half_open it rejects everything until the in-flight probe records.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case "open":
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = "half_open"
			return true
		}
		return false
	case "half_open":
		return false
	default:
		return true
	}
}

// record feeds one transport outcome back. ok is "the endpoint
// answered" (any HTTP status), not "the request succeeded".
func (b *breaker) record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = "closed"
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == "half_open" || (b.state == "closed" && b.consecutive >= b.threshold) {
		b.state = "open"
		b.openedAt = time.Now()
		b.opens++
	}
}

// BreakerState is one endpoint circuit's observable state, served in
// the coordinator's GET /stats and /healthz.
type BreakerState struct {
	// Endpoint is the shard endpoint the circuit guards.
	Endpoint string `json:"endpoint"`
	// State is "closed", "open" or "half_open".
	State string `json:"state"`
	// ConsecutiveFailures is the current transport-failure run.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Opens counts closed/half-open -> open transitions over the
	// client's lifetime.
	Opens int64 `json:"opens"`
}

func (b *breaker) snapshot(endpoint string) BreakerState {
	if b == nil {
		return BreakerState{Endpoint: endpoint, State: "closed"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerState{
		Endpoint:            endpoint,
		State:               b.state,
		ConsecutiveFailures: b.consecutive,
		Opens:               b.opens,
	}
}

// BreakerStater is implemented by shards that guard endpoints with
// circuit breakers (Client, ReplicaSet); the coordinator type-asserts
// it when assembling /stats and /healthz.
type BreakerStater interface {
	BreakerStates() []BreakerState
}
