package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/server"
)

// slowShard delays buffered queries — the hedging target.
type slowShard struct {
	Shard
	delay time.Duration
}

func (s *slowShard) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Shard.Do(ctx, req)
}

// rejectingShard answers every query with an authoritative 4xx.
type rejectingShard struct{ Shard }

func (s *rejectingShard) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	return nil, &StatusError{Status: 400, Msg: "malformed"}
}

// dyingStream wraps a healthy shard so its stream delivers the header
// and n rows, then dies with a transport-looking error — the
// mid-stream reset case.
type dyingStream struct {
	Shard
	rows int
}

var errStreamReset = errors.New("connection reset mid-stream")

func (d *dyingStream) Stream(ctx context.Context, req server.Request, header func([]string), row func(mu []int64) bool) (server.StreamSummary, error) {
	n := 0
	sum, err := d.Shard.Stream(ctx, req, header, func(mu []int64) bool {
		if n >= d.rows {
			return false
		}
		n++
		return row(mu)
	})
	if err != nil {
		return sum, err
	}
	return server.StreamSummary{Count: int64(n)}, errStreamReset
}

// TestReplicaFailover: a replica set whose preferred endpoint is dead
// serves every read from the survivor; updates require the whole group.
func TestReplicaFailover(t *testing.T) {
	ctx := context.Background()
	db := testGraphDB()
	e := server.NewEngine(db, server.Config{})
	rs := NewReplicaSet([]Shard{
		&failingShard{name: "dead:1"},
		NewEngineShard("live:1", e),
	}, ReplicaConfig{})

	if rs.Name() != "dead:1|live:1" {
		t.Fatalf("replica set name = %q", rs.Name())
	}
	if err := rs.Ready(ctx); err != nil {
		t.Fatalf("Ready with one live replica: %v", err)
	}
	want, err := e.DoCtx(ctx, server.Request{Query: "E(x,y)", Orderer: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.Do(ctx, server.Request{Query: "E(x,y)", Orderer: "greedy"})
	if err != nil {
		t.Fatalf("Do did not fail over: %v", err)
	}
	if got.Count != want.Count {
		t.Fatalf("failover count = %d, want %d", got.Count, want.Count)
	}
	if _, err := rs.Versions(ctx, nil); err != nil {
		t.Fatalf("Versions did not fail over: %v", err)
	}
	if _, err := rs.Stats(ctx); err != nil {
		t.Fatalf("Stats did not fail over: %v", err)
	}
	order, rows, _ := streamAll(t, func(hd func([]string), row func([]int64) bool) (server.StreamSummary, error) {
		return rs.Stream(ctx, server.Request{Query: "E(x,y)", Orderer: "greedy"}, hd, row)
	})
	if len(order) == 0 || int64(len(rows)) != want.Count {
		t.Fatalf("stream failover: %d rows (order %v), want %d", len(rows), order, want.Count)
	}

	// A delta must reach every replica — the dead one fails the group.
	_, err = rs.Update(ctx, server.UpdateRequest{Relation: "E", Inserts: [][]int64{{100001, 100002}}})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != "dead:1" {
		t.Fatalf("update with a dead replica: %v, want ShardError naming dead:1", err)
	}
}

// TestReplicaAuthoritative4xx: a 4xx is the shard answering about the
// request, so the set must NOT mask it by consulting another replica.
func TestReplicaAuthoritative4xx(t *testing.T) {
	db := testGraphDB()
	e := server.NewEngine(db, server.Config{})
	rs := NewReplicaSet([]Shard{
		&rejectingShard{NewEngineShard("a", e)},
		NewEngineShard("b", e),
	}, ReplicaConfig{})
	_, err := rs.Do(context.Background(), server.Request{Query: "E(x,y)"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 400 {
		t.Fatalf("4xx was not authoritative: %v", err)
	}
}

// TestReplicaHedgedDo: with hedging armed, a slow preferred replica is
// overtaken by the hedge launched on the second — the answer arrives
// long before the slow replica's delay elapses.
func TestReplicaHedgedDo(t *testing.T) {
	db := testGraphDB()
	e := server.NewEngine(db, server.Config{})
	rs := NewReplicaSet([]Shard{
		&slowShard{Shard: NewEngineShard("slow", e), delay: 30 * time.Second},
		NewEngineShard("fast", e),
	}, ReplicaConfig{Hedge: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := rs.Do(ctx, server.Request{Query: "E(x,y)", Orderer: "greedy"})
	if err != nil {
		t.Fatalf("hedged Do: %v", err)
	}
	if resp.Count == 0 {
		t.Fatal("hedged Do returned an empty answer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged Do took %v — the hedge never fired", elapsed)
	}
}

// partialFleet builds a 4-shard coordinator with shard `dead` replaced
// by a failingShard, returning the live engines for ground truth.
func partialFleet(t *testing.T, db *relation.DB, dead int) (*Coordinator, []*server.Engine) {
	t.Helper()
	dbs, routing, err := Partition(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*server.Engine, 4)
	shards := make([]Shard, 4)
	for i, pdb := range dbs {
		engines[i] = server.NewEngine(pdb, server.Config{})
		shards[i] = NewEngineShard(fmt.Sprintf("shard-%d", i), engines[i])
	}
	shards[dead] = &failingShard{name: fmt.Sprintf("shard-%d", dead)}
	coord, err := New(routing, shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return coord, engines
}

// liveCount sums a query's count over every engine except the dead one.
func liveCount(t *testing.T, engines []*server.Engine, dead int, q string) int64 {
	t.Helper()
	var sum int64
	for i, e := range engines {
		if i == dead {
			continue
		}
		resp, err := e.DoCtx(context.Background(), server.Request{Query: q, Orderer: "greedy"})
		if err != nil {
			t.Fatal(err)
		}
		sum += resp.Count
	}
	return sum
}

// TestPartialResults pins the allow_partial contract on buffered
// queries: strict mode fails typed, partial mode answers exactly over
// the survivors and names what is missing — and a query routed
// entirely to live shards is never marked partial.
func TestPartialResults(t *testing.T) {
	ctx := context.Background()
	db := testGraphDB()
	const dead = 2
	coord, engines := partialFleet(t, db, dead)
	q := "E(x,y), E(x,z)"

	// Strict: typed refusal naming the dead shard.
	_, err := coord.Do(ctx, server.Request{Query: q})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != "shard-2" {
		t.Fatalf("strict query over a dead shard: %v, want ShardError naming shard-2", err)
	}

	// Partial: exact over survivors, flagged, missing named.
	resp, err := coord.Do(ctx, server.Request{Query: q, AllowPartial: true})
	if err != nil {
		t.Fatalf("allow_partial query: %v", err)
	}
	if !resp.Partial || !reflect.DeepEqual(resp.Missing, []string{"shard-2"}) {
		t.Fatalf("partial=%v missing=%v, want partial naming shard-2", resp.Partial, resp.Missing)
	}
	if want := liveCount(t, engines, dead, q); resp.Count != want {
		t.Fatalf("partial count = %d, want exact-over-survivors %d", resp.Count, want)
	}

	// Eval merges the survivors' samples; the count stays exact.
	eresp, err := coord.Do(ctx, server.Request{Query: q, Mode: "eval", AllowPartial: true})
	if err != nil {
		t.Fatalf("allow_partial eval: %v", err)
	}
	if !eresp.Partial || eresp.Count != resp.Count {
		t.Fatalf("partial eval: partial=%v count=%d, want count %d", eresp.Partial, eresp.Count, resp.Count)
	}

	// A single-shard route that avoids the dead shard is exact — no
	// partial flag; one that needs the dead shard has no survivors and
	// stays a typed 502 even with allow_partial.
	for v := int64(0); v < 8; v++ {
		vq := fmt.Sprintf("E(%d,y)", v)
		resp, err := coord.Do(ctx, server.Request{Query: vq, AllowPartial: true})
		if ShardOf(v, 4) == dead {
			if !errors.As(err, &se) {
				t.Fatalf("%s routed to the dead shard: %v, want ShardError", vq, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s routed to a live shard: %v", vq, err)
		}
		if resp.Partial {
			t.Fatalf("%s answered by its live shard is marked partial", vq)
		}
	}

	st, err := coord.Stats(ctx)
	if err != nil {
		t.Fatalf("stats over a degraded fleet: %v", err)
	}
	if st.PartialServed < 2 {
		t.Fatalf("partial_served = %d, want >= 2", st.PartialServed)
	}
	var deadSeen bool
	for _, ss := range st.PerShard {
		if ss.Shard == "shard-2" {
			deadSeen = true
			if ss.Error == "" {
				t.Fatal("dead shard's stats entry carries no error")
			}
		}
	}
	if !deadSeen {
		t.Fatal("dead shard missing from per-shard stats")
	}
}

// TestPartialStream: an allow_partial stream over a degraded fleet
// delivers the exact merge of the surviving partitions with the trailer
// flagged; strict mode refuses before any row.
func TestPartialStream(t *testing.T) {
	ctx := context.Background()
	db := testGraphDB()
	const dead = 1
	coord, engines := partialFleet(t, db, dead)
	q := "E(x,y), E(x,z)"

	var strictRows int
	_, err := coord.StreamCtx(ctx, server.Request{Query: q, Mode: "stream"}, nil,
		func(mu []int64) bool { strictRows++; return true })
	if err == nil {
		t.Fatal("strict stream over a dead shard succeeded")
	}
	if strictRows != 0 {
		t.Fatalf("strict stream delivered %d rows before failing", strictRows)
	}

	_, rows, sum := streamAll(t, func(hd func([]string), row func([]int64) bool) (server.StreamSummary, error) {
		return coord.StreamCtx(ctx, server.Request{Query: q, Mode: "stream", AllowPartial: true}, hd, row)
	})
	if !sum.Partial || !reflect.DeepEqual(sum.Missing, []string{"shard-1"}) {
		t.Fatalf("partial stream summary %+v, want partial naming shard-1", sum)
	}
	// Expected: the survivors' streams merged by root — partitions are
	// disjoint and each stream root-ascending, so a stable sort on the
	// root key reproduces the merge.
	var want [][]int64
	for i, e := range engines {
		if i == dead {
			continue
		}
		_, r, _ := streamAll(t, func(hd func([]string), row func([]int64) bool) (server.StreamSummary, error) {
			return e.StreamCtx(ctx, server.Request{Query: q, Orderer: "greedy"}, hd, row)
		})
		want = append(want, r...)
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i][0] < want[j][0] })
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("partial stream rows diverge from survivors' merge: %d rows vs %d", len(rows), len(want))
	}
	if sum.Count != int64(len(rows)) {
		t.Fatalf("partial stream count = %d, delivered %d", sum.Count, len(rows))
	}
}

// TestStreamShardDeathCancelsSiblings pins the mid-stream failure
// contract: when a shard dies after the merge started, the stream fails
// the moment the merge needs the dead head — the surviving scans are
// cancelled and drained before StreamCtx returns (no goroutine leak,
// no silent full-result delivery), rather than streaming the survivors
// to completion and reporting the death afterwards.
func TestStreamShardDeathCancelsSiblings(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	db := testGraphDB()
	dbs, routing, err := Partition(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]Shard, 4)
	for i, pdb := range dbs {
		s := Shard(NewEngineShard(fmt.Sprintf("shard-%d", i), server.NewEngine(pdb, server.Config{})))
		if i == 1 {
			s = &dyingStream{Shard: s, rows: 0}
		}
		shards[i] = s
	}
	coord, err := New(routing, shards, Config{})
	if err != nil {
		t.Fatal(err)
	}

	delivered := 0
	_, err = coord.StreamCtx(ctx, server.Request{Query: "E(x,y), E(x,z)"}, nil,
		func(mu []int64) bool { delivered++; return true })
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != "shard-1" {
		t.Fatalf("mid-stream death: %v, want ShardError naming shard-1", err)
	}
	if !errors.Is(err, errStreamReset) {
		t.Fatalf("mid-stream death does not wrap the reset: %v", err)
	}
	// The death is discovered at the merge's first pull from the dead
	// shard — before any sibling row is delivered in this schedule, and
	// certainly before the survivors are drained to completion.
	if delivered != 0 {
		t.Fatalf("strict merge delivered %d rows after the shard died", delivered)
	}

	// Under allow_partial the same fleet serves the survivors instead.
	_, rows, sum := streamAll(t, func(hd func([]string), row func([]int64) bool) (server.StreamSummary, error) {
		return coord.StreamCtx(ctx, server.Request{Query: "E(x,y), E(x,z)", AllowPartial: true}, hd, row)
	})
	if !sum.Partial || !reflect.DeepEqual(sum.Missing, []string{"shard-1"}) {
		t.Fatalf("partial summary %+v, want missing shard-1", sum)
	}
	if len(rows) == 0 {
		t.Fatal("partial stream delivered nothing")
	}

	// No goroutine outlives the merge: cancelled sibling scans drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after mid-stream death: %d vs %d at start\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBreakerOpensFailsFastAndRecovers drives a real HTTP client
// through an injected outage: consecutive transport failures open the
// circuit (requests then fail fast with ErrBreakerOpen without touching
// the wire), and after the cooldown a half-open probe closes it again.
func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	ctx := context.Background()
	db := testGraphDB()
	srv := httptest.NewServer(server.NewHandler(server.NewEngine(db, server.Config{})))
	defer srv.Close()

	inj := faults.New(7).Add(faults.Rule{Site: "transport/s0/query", P: 1, Limit: 3})
	cl := NewClient(srv.URL, ClientConfig{
		Retries:          -1,
		Backoff:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Transport:        &faults.Transport{Inj: inj, Site: "transport/s0"},
	})
	req := server.Request{Query: "E(x,y)"}
	for i := 0; i < 3; i++ {
		if _, err := cl.Do(ctx, req); err == nil {
			t.Fatalf("request %d: injected transport failure did not surface", i)
		}
	}
	// The rule is exhausted — the wire is healthy again — but the open
	// circuit fails fast without finding that out.
	if _, err := cl.Do(ctx, req); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open circuit: %v, want ErrBreakerOpen", err)
	}
	bs := cl.BreakerStates()
	if len(bs) != 1 || bs[0].State != "open" || bs[0].Opens != 1 {
		t.Fatalf("breaker state = %+v, want open with opens=1", bs)
	}
	// After the cooldown the half-open probe goes through and closes it.
	time.Sleep(60 * time.Millisecond)
	if _, err := cl.Do(ctx, req); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if bs := cl.BreakerStates(); bs[0].State != "closed" {
		t.Fatalf("breaker after recovery = %+v, want closed", bs[0])
	}
}
