package cluster

import (
	"context"
	"errors"
	"strings"
	"time"

	"repro/internal/server"
)

// ReplicaConfig tunes one replica group.
type ReplicaConfig struct {
	// Hedge, when positive, launches the read on the next replica after
	// this delay if the current attempt has not answered yet — the first
	// success wins and cancels the laggards. Tail-latency insurance for
	// buffered reads; 0 disables hedging (pure sequential failover).
	// Streams and updates are never hedged (rows may already be out; a
	// delta must reach every replica).
	Hedge time.Duration
}

// ReplicaSet serves one partition from several interchangeable replicas
// holding the same data slice. Reads fail over between replicas —
// sequentially, or concurrently after a hedge delay — so one dead
// endpoint does not take the partition down; updates fan out to every
// replica and all must succeed. It implements Shard, so the coordinator
// treats a replicated partition exactly like a single endpoint.
//
// Consistency: a read answers from whichever replica responds, and the
// snapshot handshake's preflight may have read a different replica than
// the execution. While the replicas agree (every update succeeded
// everywhere) that is invisible; after a partial update failure the
// replicas may diverge, and a multi-shard merge across divergent
// replicas fails the version re-check (409, retry converges) rather
// than merging mixed snapshots. Single-shard reads from a stale replica
// are still internally consistent snapshots of that replica.
type ReplicaSet struct {
	name  string
	reps  []Shard
	hedge time.Duration
}

// NewReplicaSet groups interchangeable replicas (same partition, same
// data) into one logical shard. Order matters only as preference:
// reads try replicas in the given order.
func NewReplicaSet(reps []Shard, cfg ReplicaConfig) *ReplicaSet {
	names := make([]string, len(reps))
	for i, r := range reps {
		names[i] = r.Name()
	}
	return &ReplicaSet{
		name:  strings.Join(names, "|"),
		reps:  reps,
		hedge: cfg.Hedge,
	}
}

// Name implements Shard: the replica endpoints joined by "|", matching
// the -shards flag syntax that built the group.
func (r *ReplicaSet) Name() string { return r.name }

// failoverable reports whether err justifies trying another replica.
// Transport failures, open breakers and shard-side 5xx all do — the
// next replica may well serve. A 4xx is the shard answering that the
// request itself is bad; every replica would refuse identically, so it
// is authoritative and returned as-is.
func failoverable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return true
}

// read runs f against replicas in preference order until one answers,
// the error is authoritative, or ctx dies.
func (r *ReplicaSet) read(ctx context.Context, f func(ctx context.Context, s Shard) error) error {
	var lastErr error
	for _, s := range r.reps {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		lastErr = f(ctx, s)
		if lastErr == nil || !failoverable(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// Ready implements Shard: the partition is ready when any replica is.
func (r *ReplicaSet) Ready(ctx context.Context) error {
	return r.read(ctx, func(ctx context.Context, s Shard) error {
		return s.Ready(ctx)
	})
}

// Versions implements Shard, answering from the first live replica.
func (r *ReplicaSet) Versions(ctx context.Context, names []string) (map[string]uint64, error) {
	var out map[string]uint64
	err := r.read(ctx, func(ctx context.Context, s Shard) error {
		var err error
		out, err = s.Versions(ctx, names)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats implements Shard, answering from the first live replica.
func (r *ReplicaSet) Stats(ctx context.Context) (*server.EngineStats, error) {
	var out *server.EngineStats
	err := r.read(ctx, func(ctx context.Context, s Shard) error {
		var err error
		out, err = s.Stats(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Do implements Shard: sequential failover, or hedged when configured —
// queries are reads, so racing two replicas is safe.
func (r *ReplicaSet) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	if r.hedge <= 0 || len(r.reps) < 2 {
		var out *server.Response
		err := r.read(ctx, func(ctx context.Context, s Shard) error {
			var err error
			out, err = s.Do(ctx, req)
			return err
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return r.hedgedDo(ctx, req)
}

// hedgedDo races replicas with staggered starts: replica i+1 launches
// when the hedge delay elapses with no answer yet, or immediately when
// an attempt fails. First success wins and cancels the laggards; an
// authoritative 4xx wins too (every replica would refuse identically).
func (r *ReplicaSet) hedgedDo(ctx context.Context, req server.Request) (*server.Response, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // the winner abandons the laggards
	type result struct {
		resp *server.Response
		err  error
	}
	// Buffered to every replica: abandoned laggards complete their send
	// and exit — no goroutine outlives the call by more than its own
	// (cancelled) request.
	results := make(chan result, len(r.reps))
	launched := 0
	launch := func() {
		s := r.reps[launched]
		launched++
		go func() {
			resp, err := s.Do(ctx, req)
			results <- result{resp, err}
		}()
	}
	launch()
	timer := time.NewTimer(r.hedge)
	defer timer.Stop()
	pending := 1
	var lastErr error
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.err == nil {
				return res.resp, nil
			}
			if ctx.Err() == nil && !failoverable(res.err) {
				return nil, res.err
			}
			lastErr = res.err
			if ctx.Err() == nil && launched < len(r.reps) {
				// A failure frees its hedge slot immediately — no point
				// waiting out the timer on a dead attempt.
				launch()
				pending++
			}
		case <-timer.C:
			if launched < len(r.reps) {
				launch()
				pending++
				timer.Reset(r.hedge)
			}
		}
	}
	return nil, lastErr
}

// Update implements Shard: the delta fans out to every replica
// concurrently and all must succeed — a replica that missed an update
// would serve stale reads forever. On a partial failure the error names
// the replica; a retry converges (set semantics make re-application a
// version-preserving no-op on the replicas that already applied it).
// Siblings are not cancelled on failure: the more replicas that apply,
// the less the retry has left to repair.
func (r *ReplicaSet) Update(ctx context.Context, req server.UpdateRequest) (*server.UpdateResult, error) {
	results := make([]*server.UpdateResult, len(r.reps))
	errc := make(chan error, len(r.reps))
	for i, s := range r.reps {
		go func(i int, s Shard) {
			res, err := s.Update(ctx, req)
			if err != nil {
				errc <- &ShardError{Shard: s.Name(), Op: "update", Err: err}
				return
			}
			results[i] = res
			errc <- nil
		}(i, s)
	}
	var firstErr error
	for range r.reps {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results[0], nil
}

// Stream implements Shard. Failover is only sound while no row has been
// delivered: once rows are out, a replay from another replica would
// re-deliver them, so a mid-stream death surfaces as the error it is
// (the coordinator's partial mode decides what to do with it). The
// header is deduplicated across attempts — replicas plan identically,
// so the first fired order stands.
func (r *ReplicaSet) Stream(ctx context.Context, req server.Request, header func(order []string), row func(mu []int64) bool) (server.StreamSummary, error) {
	fired := false
	hdr := func(order []string) {
		if !fired {
			fired = true
			if header != nil {
				header(order)
			}
		}
	}
	var lastErr error
	var lastSum server.StreamSummary
	for _, s := range r.reps {
		if err := ctx.Err(); err != nil {
			break
		}
		delivered := false
		sum, err := s.Stream(ctx, req, hdr, func(mu []int64) bool {
			delivered = true
			return row(mu)
		})
		if err == nil || delivered || !failoverable(err) {
			return sum, err
		}
		lastErr = err
		lastSum = sum
	}
	return lastSum, lastErr
}

// BreakerStates implements BreakerStater: the concatenation of every
// replica's circuits, in preference order.
func (r *ReplicaSet) BreakerStates() []BreakerState {
	var out []BreakerState
	for _, s := range r.reps {
		if bs, ok := s.(BreakerStater); ok {
			out = append(out, bs.BreakerStates()...)
		}
	}
	return out
}
