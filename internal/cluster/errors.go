package cluster

import (
	"errors"
	"fmt"
)

// ErrNotShardable marks a query the partitioning cannot answer exactly:
// scatter–gather over disjoint first-attribute partitions is only sound
// when one variable leads every atom (or one shard provably holds all
// contributing tuples). The coordinator refuses such queries with a 400
// rather than returning a silently partial result.
var ErrNotShardable = errors.New("cluster: query is not shardable under first-attribute partitioning")

// ErrSnapshotMoved marks a broken consistent-snapshot handshake: a
// shard's version vector advanced between the coordinator's collection
// and the shard's execution, so the per-shard answers may describe
// different global snapshots. The merge is rejected (HTTP 409); the
// client retries against the settled state.
var ErrSnapshotMoved = errors.New("cluster: shard version vector moved mid-query")

// ErrBreakerOpen marks a request rejected locally because the
// endpoint's circuit breaker is open: recent consecutive transport
// failures proved the endpoint unreachable, so the client fails fast
// instead of stacking timeouts on it. A replica set treats it like any
// transport failure (fails over); the coordinator surfaces it as a 502
// ShardError (or converts it to a missing shard under allow_partial).
var ErrBreakerOpen = errors.New("cluster: endpoint circuit breaker is open")

// ShardError is a typed failure naming the shard that caused it — the
// coordinator never folds a failed shard into a silent partial result.
// The HTTP handler renders it as a 502 naming the shard (or the shard's
// own 4xx status when the shard rejected the request as malformed, and
// 409 when it wraps ErrSnapshotMoved).
type ShardError struct {
	// Shard names the failed shard (its address for socket shards).
	Shard string
	// Op is the protocol operation that failed: "versions", "query",
	// "stream", "update", "stats" or "merge".
	Op string
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %s: %s: %v", e.Shard, e.Op, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// StatusError is a shard's HTTP-level rejection: the status it answered
// and the error body it sent. The coordinator distinguishes a shard
// telling the client its request is malformed (4xx, passed through)
// from a shard failing (everything else, surfaced as a 502 ShardError).
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("shard answered %d: %s", e.Status, e.Msg)
}
