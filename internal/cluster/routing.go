// Package cluster is the distributed scatter–gather serving tier over
// the resident query engine: a partitioner that hash-splits a database
// across N independent shard engines, a small shard protocol spoken
// either in-process (EngineShard) or over the daemon's HTTP/JSON
// surface (Client), and a Coordinator that fans queries out and merges
// the per-shard answers with single-engine semantics — counts and
// aggregates merged exactly, eval samples and NDJSON streams merged in
// root-key order so the combined output is byte-identical to one engine
// serving the union, and stats.Counters folded with the same exact
// Merge the in-process parallel engines use.
//
// The partitioning rule is the paper's root-domain sharding (the PR 1
// parallel engine) lifted across processes: every relation is hash-
// partitioned on its first attribute, so a query whose atoms all lead
// with one variable x decomposes by x's value — the tuples matching any
// x = v, across all atoms, live on exactly one shard, and the union of
// the shard answers is exactly the single-engine answer with no
// cross-shard duplicates. The Routing descriptor says which queries
// decompose this way (and which single shard answers a constant-led
// query); anything else is refused with ErrNotShardable rather than
// silently answered wrong.
package cluster

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/relation"
	"repro/internal/server"
)

// ShardOf maps an attribute value to its shard in an n-shard cluster:
// a splitmix64 finalizer over the value, reduced mod n. The mix is part
// of the on-the-wire contract — the partitioner, the update router and
// every coordinator must agree on it — so it is fixed here and
// documented in DESIGN.md, not configurable.
func ShardOf(v int64, n int) int {
	x := uint64(v)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// Routing is the cluster's partitioning descriptor: what a coordinator
// must know to route queries and updates. Every relation is partitioned
// on attribute 0 (the query-independent first attribute) by ShardOf, so
// the shard count is the whole descriptor.
type Routing struct {
	// Shards is the number of partitions (N ≥ 1).
	Shards int
}

// Partition hash-partitions every relation of db on its first attribute
// into n disjoint sub-relations: shard i's database holds, for each
// relation R, exactly the tuples t with ShardOf(t[0], n) == i, in the
// same lexicographic order as in R. Empty partitions are kept as empty
// relations so every shard compiles every query. Relations of arity 0
// cannot be partitioned and are refused.
func Partition(db *relation.DB, n int) ([]*relation.DB, Routing, error) {
	if n < 1 {
		return nil, Routing{}, fmt.Errorf("cluster: need at least 1 shard, got %d", n)
	}
	out := make([]*relation.DB, n)
	for i := range out {
		out[i] = relation.NewDB()
	}
	for _, name := range db.Names() {
		r, err := db.Get(name)
		if err != nil {
			continue
		}
		arity := r.Arity()
		if arity == 0 {
			return nil, Routing{}, fmt.Errorf("cluster: cannot partition arity-0 relation %q on its first attribute", name)
		}
		parts := make([][]int64, n)
		data := r.Data()
		for off := 0; off < len(data); off += arity {
			s := ShardOf(data[off], n)
			parts[s] = append(parts[s], data[off:off+arity]...)
		}
		for i := range out {
			// A filtered subsequence of a sorted duplicate-free array is
			// itself sorted and duplicate-free, so the flat slice can be
			// wrapped directly.
			pr, err := relation.FromSorted(name, arity, parts[i])
			if err != nil {
				return nil, Routing{}, fmt.Errorf("cluster: partitioning %s: %w", name, err)
			}
			out[i].Put(pr)
		}
	}
	return out, Routing{Shards: n}, nil
}

// Keep partitions db across n shards and returns only shard i's
// database — the shard-daemon boot path (cltjd -shard i/n), where every
// shard loads the same dataset files and keeps its own slice.
func Keep(db *relation.DB, i, n int) (*relation.DB, error) {
	if i < 0 || i >= n {
		return nil, fmt.Errorf("cluster: shard index %d out of range for %d shards", i, n)
	}
	dbs, _, err := Partition(db, n)
	if err != nil {
		return nil, err
	}
	return dbs[i], nil
}

// RoutePlan is the routing decision for one query: the shards that can
// contribute to it, and the common leading variable the merge orders by.
type RoutePlan struct {
	// Var is the variable leading every atom — the partition variable the
	// eval/stream merges key on. Empty for constant-led queries routed to
	// a single shard.
	Var string
	// Shards lists the contributing shard indices, ascending. Every other
	// shard provably holds no tuple that could join into a result.
	Shards []int
}

// Route decides which shards can contribute to q under this
// partitioning, or refuses with ErrNotShardable:
//
//   - Every atom leads with the same variable x: each result's tuples,
//     across all atoms, live on the one shard ShardOf(x) — all shards
//     contribute, disjointly, and the merge is exact.
//   - Every atom leads with a constant, all on one shard: that shard
//     holds every contributing tuple and answers alone.
//   - Anything else (mixed leading terms, distinct leading variables,
//     constants on different shards): results would need tuples from
//     different shards' partitions, which scatter–gather over disjoint
//     partitions cannot see. Refused, never silently partial.
func (r Routing) Route(q *cq.Query) (RoutePlan, error) {
	if len(q.Atoms) == 0 {
		return RoutePlan{}, fmt.Errorf("%w: query has no atoms", ErrNotShardable)
	}
	leadVar := ""
	constShard := -1
	vars, consts := 0, 0
	for _, a := range q.Atoms {
		if len(a.Args) == 0 {
			return RoutePlan{}, fmt.Errorf("%w: atom %s has no arguments", ErrNotShardable, a.String())
		}
		lead := a.Args[0]
		if lead.IsVar() {
			vars++
			if leadVar == "" {
				leadVar = lead.Var
			} else if leadVar != lead.Var {
				return RoutePlan{}, fmt.Errorf("%w: atoms lead with distinct variables %q and %q", ErrNotShardable, leadVar, lead.Var)
			}
			continue
		}
		consts++
		s := ShardOf(lead.Const, r.Shards)
		if constShard == -1 {
			constShard = s
		} else if constShard != s {
			return RoutePlan{}, fmt.Errorf("%w: leading constants land on different shards", ErrNotShardable)
		}
	}
	switch {
	case consts == 0:
		all := make([]int, r.Shards)
		for i := range all {
			all[i] = i
		}
		return RoutePlan{Var: leadVar, Shards: all}, nil
	case vars == 0:
		return RoutePlan{Shards: []int{constShard}}, nil
	default:
		// A mixed query's results pair the constant-led atoms' tuples
		// (resident on constShard) with leading-variable values hashing
		// anywhere — only a single engine over the union sees both.
		return RoutePlan{}, fmt.Errorf("%w: atoms mix leading constants and leading variable %q", ErrNotShardable, leadVar)
	}
}

// SplitUpdate routes one delta the same way the partitioner routed the
// base data: each insert/delete tuple goes to the shard its first
// attribute hashes to. The returned slice has one request per shard
// (index-aligned); shards whose slots carry no tuples are not touched
// by the update fan-out.
func SplitUpdate(req server.UpdateRequest, n int) ([]server.UpdateRequest, error) {
	out := make([]server.UpdateRequest, n)
	for i := range out {
		out[i].Relation = req.Relation
	}
	route := func(tuples [][]int64, pick func(r *server.UpdateRequest) *[][]int64) error {
		for _, t := range tuples {
			if len(t) == 0 {
				return fmt.Errorf("cluster: cannot route empty tuple for relation %q", req.Relation)
			}
			r := &out[ShardOf(t[0], n)]
			dst := pick(r)
			*dst = append(*dst, t)
		}
		return nil
	}
	if err := route(req.Inserts, func(r *server.UpdateRequest) *[][]int64 { return &r.Inserts }); err != nil {
		return nil, err
	}
	if err := route(req.Deletes, func(r *server.UpdateRequest) *[][]int64 { return &r.Deletes }); err != nil {
		return nil, err
	}
	return out, nil
}
