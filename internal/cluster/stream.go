package cluster

import (
	"context"
	"fmt"

	"repro/internal/server"
)

// streamMergeBuffer is the per-shard row buffer of the stream merge: a
// shard whose next root blocks are not yet due keeps producing this far
// ahead instead of lock-stepping with the merge head.
const streamMergeBuffer = 64

// shardStream is one producer of the k-way merge. sum and err are
// written by the producer goroutine before done closes and read only
// after it — the close is the publication barrier.
type shardStream struct {
	shard int
	hdr   chan []string
	rows  chan []int64
	done  chan struct{}
	sum   server.StreamSummary
	err   error
	// head/ok are merge-loop state, touched only by the coordinator.
	head []int64
	ok   bool
}

// StreamCtx executes one streaming eval across the fleet: every routed
// shard streams concurrently, and the coordinator k-way merges the
// per-shard rows by root key — exactness again rests on the partition
// invariant (disjoint root partitions, each shard root-ascending), so
// the merged row sequence is byte-identical to a single engine
// streaming the union. header fires once with the common variable
// order, then row per merged tuple (reused slice — copy to retain;
// return false to stop, which cancels every shard's scan). Limits match
// Engine.StreamCtx: a positive limit stops the merged enumeration early
// with Truncated set; 0 or negative streams everything.
//
// The snapshot handshake brackets the stream: versions are collected
// before fan-out and re-checked after the last row, and a moved vector
// fails the stream with ErrSnapshotMoved — rows already delivered
// cannot be unsent, so the error arrives as the stream's terminal
// status (the NDJSON trailer over HTTP).
func (c *Coordinator) StreamCtx(ctx context.Context, req server.Request, header func(order []string), row func(mu []int64) bool) (server.StreamSummary, error) {
	req, err := c.prepare(req)
	if err != nil {
		return server.StreamSummary{}, err
	}
	rt, err := c.resolve(ctx, req)
	if err != nil {
		return server.StreamSummary{}, err
	}
	sreq := req
	sreq.Mode = ""

	idxs := rt.route.Shards
	if len(idxs) == 1 {
		// No merge, so no cross-shard order or snapshot constraints: the
		// one shard's own snapshot pin already makes its stream exact.
		i := idxs[0]
		hdr := func(order []string) {
			c.routes.learn(rt.key, order)
			if header != nil {
				header(order)
			}
		}
		sum, err := c.shards[i].Stream(ctx, sreq, hdr, row)
		if err != nil {
			return sum, c.shardErr(i, "stream", err)
		}
		c.queries.Add(1)
		return sum, nil
	}

	sctx, cancel := context.WithCancel(ctx)
	streams := make([]*shardStream, len(idxs))
	for j, i := range idxs {
		s := &shardStream{
			shard: i,
			hdr:   make(chan []string, 1),
			rows:  make(chan []int64, streamMergeBuffer),
			done:  make(chan struct{}),
		}
		streams[j] = s
		go func(s *shardStream) {
			s.sum, s.err = c.shards[s.shard].Stream(sctx, sreq,
				func(order []string) { s.hdr <- order },
				func(mu []int64) bool {
					cp := append([]int64(nil), mu...)
					select {
					case s.rows <- cp:
						return true
					case <-sctx.Done():
						return false
					}
				})
			close(s.rows)
			close(s.hdr)
			close(s.done)
		}(s)
	}
	// Every exit path cancels the in-flight scans and waits for the
	// producers — no goroutine outlives the merge.
	defer func() {
		cancel()
		for _, s := range streams {
			<-s.done
		}
	}()

	// Header barrier: a successful shard stream announces its variable
	// order before its first row, so waiting on every header (or the
	// stream's early death) costs no row latency and lets order
	// divergence fail the stream before anything is delivered.
	orders := make([][]string, len(streams))
	for j, s := range streams {
		order, ok := <-s.hdr
		if !ok {
			<-s.done
			err := s.err
			if err == nil {
				err = fmt.Errorf("stream ended before announcing its variable order")
			}
			return server.StreamSummary{}, c.shardErr(s.shard, "stream", err)
		}
		orders[j] = order
	}
	order, err := c.checkOrders(rt, orders)
	if err != nil {
		return server.StreamSummary{}, err
	}
	if header != nil {
		header(order)
	}

	// Postflight: the stream wire format carries no version vector (it
	// must stay byte-identical to a single engine's), so consistency is
	// re-checked out of band after the rows. An update landing after a
	// shard's scan finished but before this probe is indistinguishable
	// from one landing mid-scan; the check is conservative and rejects
	// both.
	postflight := func() error {
		for _, i := range idxs {
			post, err := c.shards[i].Versions(ctx, rt.names)
			if err != nil {
				return c.shardErr(i, "versions", err)
			}
			pre := rt.vecs[i]
			for _, name := range rt.names {
				if post[name] != pre[name] {
					c.snapshotRejects.Add(1)
					return fmt.Errorf("%w: shard %s relation %q advanced %d -> %d during the stream",
						ErrSnapshotMoved, c.shards[i].Name(), name, pre[name], post[name])
				}
			}
		}
		return nil
	}

	// K-way merge by root key. advance blocks on the shard's next row;
	// the disjoint-partition invariant keeps heads tie-free, and ties
	// (a mispartitioned fleet) break to the lower position so the merge
	// stays deterministic.
	advance := func(s *shardStream) { s.head, s.ok = <-s.rows }
	for _, s := range streams {
		advance(s)
	}
	var sum server.StreamSummary
	limit := int64(req.Limit)
	for {
		best := -1
		for j, s := range streams {
			if !s.ok {
				continue
			}
			if best == -1 || s.head[0] < streams[best].head[0] {
				best = j
			}
		}
		if best == -1 {
			break
		}
		if limit > 0 && sum.Count >= limit {
			// A row beyond the limit exists; the enumeration is truncated
			// as a fact, exactly as Engine.StreamCtx decides it. The
			// delivered prefix is still a merged answer, so it keeps the
			// snapshot guarantee.
			sum.Truncated = true
			if err := postflight(); err != nil {
				return sum, err
			}
			c.queries.Add(1)
			return sum, nil
		}
		sum.Count++
		if !row(streams[best].head) {
			return sum, nil // consumer stop: normal completion, no guarantee owed
		}
		advance(streams[best])
	}

	// All shards drained. A shard that stopped at its own limit proves a
	// row beyond the merged prefix even though no head remains.
	for _, s := range streams {
		<-s.done
		if s.err != nil {
			return sum, c.shardErr(s.shard, "stream", s.err)
		}
		sum.Truncated = sum.Truncated || s.sum.Truncated
	}
	if err := postflight(); err != nil {
		return sum, err
	}
	c.queries.Add(1)
	return sum, nil
}
