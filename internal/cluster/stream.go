package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/server"
)

// streamMergeBuffer is the per-shard row buffer of the stream merge: a
// shard whose next root blocks are not yet due keeps producing this far
// ahead instead of lock-stepping with the merge head.
const streamMergeBuffer = 64

// shardStream is one producer of the k-way merge. sum and err are
// written by the producer goroutine before done closes and read only
// after it — the close is the publication barrier.
type shardStream struct {
	shard int
	hdr   chan []string
	rows  chan []int64
	done  chan struct{}
	sum   server.StreamSummary
	err   error
	// head/ok are merge-loop state, touched only by the coordinator.
	head []int64
	ok   bool
}

// StreamCtx executes one streaming eval across the fleet: every routed
// shard streams concurrently, and the coordinator k-way merges the
// per-shard rows by root key — exactness again rests on the partition
// invariant (disjoint root partitions, each shard root-ascending), so
// the merged row sequence is byte-identical to a single engine
// streaming the union. header fires once with the common variable
// order, then row per merged tuple (reused slice — copy to retain;
// return false to stop, which cancels every shard's scan). Limits match
// Engine.StreamCtx: a positive limit stops the merged enumeration early
// with Truncated set; 0 or negative streams everything.
//
// The snapshot handshake brackets the stream: versions are collected
// before fan-out and re-checked after the last row, and a moved vector
// fails the stream with ErrSnapshotMoved — rows already delivered
// cannot be unsent, so the error arrives as the stream's terminal
// status (the NDJSON trailer over HTTP).
//
// A shard death mid-stream normally fails the stream the moment the
// merge reaches the dead head (the remaining scans are cancelled and
// drained before StreamCtx returns — no goroutine outlives it). With
// req.AllowPartial, a tolerable death instead marks the shard missing
// and the merge continues over the survivors: the delivered sequence is
// then the exact merge of the surviving partitions (plus the dead
// shard's already-delivered prefix), and the summary says so.
func (c *Coordinator) StreamCtx(ctx context.Context, req server.Request, header func(order []string), row func(mu []int64) bool) (server.StreamSummary, error) {
	req, err := c.prepare(req)
	if err != nil {
		return server.StreamSummary{}, err
	}
	partial := req.AllowPartial
	rt, preMissing, err := c.resolve(ctx, req, partial)
	if err != nil {
		return server.StreamSummary{}, err
	}
	sreq := req
	sreq.Mode = ""

	missingSet := make(map[int]bool, len(preMissing))
	for _, i := range preMissing {
		missingSet[i] = true
	}
	var idxs []int
	var firstDead error
	for _, i := range rt.route.Shards {
		if !missingSet[i] {
			idxs = append(idxs, i)
		} else if firstDead == nil {
			firstDead = c.shardErr(i, "stream", errors.New("no live endpoint for partition"))
		}
	}
	if len(idxs) == 0 {
		return server.StreamSummary{}, firstDead
	}

	// finish stamps the degraded-mode outcome on a completed merge.
	finish := func(sum server.StreamSummary) server.StreamSummary {
		if names := c.missingNames(rt.route.Shards, missingSet); len(names) > 0 {
			sum.Partial = true
			sum.Missing = names
			c.partialServed.Add(1)
		}
		return sum
	}

	if len(idxs) == 1 {
		// No merge, so no cross-shard order or snapshot constraints: the
		// one shard's own snapshot pin already makes its stream exact
		// (over its partition — finish marks whether that is the whole
		// route). A death mid-single-stream has no survivors to continue
		// over, so it surfaces as the error it is.
		i := idxs[0]
		hdr := func(order []string) {
			if !rt.nocache {
				c.routes.learn(rt.key, order)
			}
			if header != nil {
				header(order)
			}
		}
		sum, err := c.shards[i].Stream(ctx, sreq, hdr, row)
		if err != nil {
			return sum, c.shardErr(i, "stream", err)
		}
		c.queries.Add(1)
		return finish(sum), nil
	}

	sctx, cancel := context.WithCancel(ctx)
	streams := make([]*shardStream, len(idxs))
	for j, i := range idxs {
		s := &shardStream{
			shard: i,
			hdr:   make(chan []string, 1),
			rows:  make(chan []int64, streamMergeBuffer),
			done:  make(chan struct{}),
		}
		streams[j] = s
		go func(s *shardStream) {
			s.sum, s.err = c.shards[s.shard].Stream(sctx, sreq,
				func(order []string) { s.hdr <- order },
				func(mu []int64) bool {
					cp := append([]int64(nil), mu...)
					select {
					case s.rows <- cp:
						return true
					case <-sctx.Done():
						return false
					}
				})
			close(s.rows)
			close(s.hdr)
			close(s.done)
		}(s)
	}
	// Every exit path cancels the in-flight scans and waits for the
	// producers — no goroutine outlives the merge. In particular, a
	// mid-stream shard death that fails the merge cancels the surviving
	// scans here, promptly, instead of letting them stream to nowhere.
	defer func() {
		cancel()
		for _, s := range streams {
			<-s.done
		}
	}()

	// Header barrier: a successful shard stream announces its variable
	// order before its first row, so waiting on every header (or the
	// stream's early death) costs no row latency and lets order
	// divergence fail the stream before anything is delivered. Under
	// allow_partial a shard dying at the barrier is dropped instead —
	// nothing of it was delivered yet.
	var live []*shardStream
	var liveIdxs []int
	var orders [][]string
	for _, s := range streams {
		order, ok := <-s.hdr
		if !ok {
			<-s.done
			err := s.err
			if err == nil {
				err = fmt.Errorf("stream ended before announcing its variable order")
			}
			err = c.shardErr(s.shard, "stream", err)
			if partial && tolerable(ctx, err) {
				missingSet[s.shard] = true
				if firstDead == nil {
					firstDead = err
				}
				continue
			}
			return server.StreamSummary{}, err
		}
		live = append(live, s)
		liveIdxs = append(liveIdxs, s.shard)
		orders = append(orders, order)
	}
	if len(live) == 0 {
		return server.StreamSummary{}, firstDead
	}
	order, err := c.checkOrders(rt, liveIdxs, orders)
	if err != nil {
		return server.StreamSummary{}, err
	}
	if header != nil {
		header(order)
	}

	// Postflight: the stream wire format carries no version vector (it
	// must stay byte-identical to a single engine's), so consistency is
	// re-checked out of band after the rows, over the shards whose rows
	// were merged. An update landing after a shard's scan finished but
	// before this probe is indistinguishable from one landing mid-scan;
	// the check is conservative and rejects both. A survivor that dies
	// here is NOT dropped even under allow_partial — its rows are
	// already in the merge and can no longer be certified, so the
	// stream fails rather than stand behind them.
	postflight := func() error {
		for _, i := range idxs {
			if missingSet[i] {
				continue
			}
			post, err := c.shards[i].Versions(ctx, rt.names)
			if err != nil {
				return c.shardErr(i, "versions", err)
			}
			pre := rt.vecs[i]
			for _, name := range rt.names {
				if post[name] != pre[name] {
					c.snapshotRejects.Add(1)
					return fmt.Errorf("%w: shard %s relation %q advanced %d -> %d during the stream",
						ErrSnapshotMoved, c.shards[i].Name(), name, pre[name], post[name])
				}
			}
		}
		return nil
	}

	// K-way merge by root key. advance blocks on the shard's next row
	// and surfaces the shard's death the moment its channel drains — in
	// strict mode that fails the merge right there (the deferred cancel
	// reaps the siblings); under allow_partial a tolerable death marks
	// the shard missing and the merge keeps going without it. The
	// disjoint-partition invariant keeps heads tie-free, and ties (a
	// mispartitioned fleet) break to the lower position so the merge
	// stays deterministic.
	advance := func(s *shardStream) error {
		if s.head, s.ok = <-s.rows; s.ok {
			return nil
		}
		<-s.done
		if s.err == nil {
			return nil
		}
		err := c.shardErr(s.shard, "stream", s.err)
		if partial && tolerable(ctx, err) {
			// The shard's already-delivered prefix stands; the trailer
			// names the loss.
			missingSet[s.shard] = true
			return nil
		}
		return err
	}
	var sum server.StreamSummary
	for _, s := range live {
		if err := advance(s); err != nil {
			return sum, err
		}
	}
	limit := int64(req.Limit)
	for {
		best := -1
		for j, s := range live {
			if !s.ok {
				continue
			}
			if best == -1 || s.head[0] < live[best].head[0] {
				best = j
			}
		}
		if best == -1 {
			break
		}
		if limit > 0 && sum.Count >= limit {
			// A row beyond the limit exists; the enumeration is truncated
			// as a fact, exactly as Engine.StreamCtx decides it. The
			// delivered prefix is still a merged answer, so it keeps the
			// snapshot guarantee.
			sum.Truncated = true
			if err := postflight(); err != nil {
				return sum, err
			}
			c.queries.Add(1)
			return finish(sum), nil
		}
		sum.Count++
		if !row(live[best].head) {
			return finish(sum), nil // consumer stop: normal completion, no guarantee owed
		}
		if err := advance(live[best]); err != nil {
			return sum, err
		}
	}

	// All live shards drained (their terminal errors already went
	// through advance). A shard that stopped at its own limit proves a
	// row beyond the merged prefix even though no head remains; a shard
	// dropped mid-merge contributes neither truncation nor certainty.
	for _, s := range live {
		if !missingSet[s.shard] {
			sum.Truncated = sum.Truncated || s.sum.Truncated
		}
	}
	if err := postflight(); err != nil {
		return sum, err
	}
	c.queries.Add(1)
	return finish(sum), nil
}
