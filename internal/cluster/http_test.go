package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/server"
)

// socketHarness is the wire-level fleet: every shard is a real HTTP
// daemon handler behind a test server, the coordinator talks to them
// through cluster.Client, and the coordinator itself is served over
// HTTP — the full socket path of the tentpole.
type socketHarness struct {
	singleSrv *httptest.Server
	coordSrv  *httptest.Server
	shardSrvs []*httptest.Server
	coord     *Coordinator
}

func newSocketHarness(t *testing.T, db *relation.DB, n int) *socketHarness {
	t.Helper()
	dbs, _, err := Partition(db, n)
	if err != nil {
		t.Fatal(err)
	}
	h := &socketHarness{
		singleSrv: httptest.NewServer(server.NewHandler(server.NewEngine(db, server.Config{}))),
	}
	t.Cleanup(h.singleSrv.Close)
	addrs := make([]string, n)
	for i, pdb := range dbs {
		srv := httptest.NewServer(server.NewHandler(server.NewEngine(pdb, server.Config{})))
		t.Cleanup(srv.Close)
		h.shardSrvs = append(h.shardSrvs, srv)
		addrs[i] = srv.URL
	}
	h.coord, err = NewHTTP(addrs, ClientConfig{Timeout: 10 * time.Second}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h.coordSrv = httptest.NewServer(NewHandler(h.coord))
	t.Cleanup(h.coordSrv.Close)
	return h
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestHTTPClusterDifferential drives the socket path end to end: the
// coordinator daemon's answers must match the single daemon's — counts
// and eval samples field-for-field, NDJSON streams byte-for-byte.
func TestHTTPClusterDifferential(t *testing.T) {
	db := testGraphDB()
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			h := newSocketHarness(t, db, n)
			if err := h.coord.WaitReady(context.Background()); err != nil {
				t.Fatal(err)
			}
			for _, q := range shardableQueries {
				for _, mode := range []string{"count", "eval", "aggregate"} {
					body := fmt.Sprintf(`{"query": %q, "mode": %q, "orderer": "greedy"}`, q, mode)
					cs, craw := post(t, h.coordSrv.URL, body)
					ss, sraw := post(t, h.singleSrv.URL, body)
					if cs != http.StatusOK || ss != http.StatusOK {
						t.Fatalf("%s %s: coordinator %d, single %d (%s / %s)", q, mode, cs, ss, craw, sraw)
					}
					var got, want server.Response
					if err := json.Unmarshal(craw, &got); err != nil {
						t.Fatal(err)
					}
					if err := json.Unmarshal(sraw, &want); err != nil {
						t.Fatal(err)
					}
					if got.Count != want.Count || got.Value != want.Value || got.Truncated != want.Truncated {
						t.Errorf("%s %s: got count=%d value=%v truncated=%v, single count=%d value=%v truncated=%v",
							q, mode, got.Count, got.Value, got.Truncated, want.Count, want.Value, want.Truncated)
					}
					if fmt.Sprint(got.Tuples) != fmt.Sprint(want.Tuples) {
						t.Errorf("%s %s: eval samples diverge over the socket path", q, mode)
					}
				}

				// The streamed NDJSON must be byte-identical: same header,
				// same rows in the same order, same trailer.
				body := fmt.Sprintf(`{"query": %q, "mode": "stream", "orderer": "greedy"}`, q)
				cs, craw := post(t, h.coordSrv.URL, body)
				ss, sraw := post(t, h.singleSrv.URL, body)
				if cs != http.StatusOK || ss != http.StatusOK {
					t.Fatalf("stream %s: coordinator %d, single %d", q, cs, ss)
				}
				if !bytes.Equal(craw, sraw) {
					t.Errorf("stream %s: %d merged bytes diverge from single engine's %d:\ncoordinator: %.200s\nsingle:      %.200s",
						q, len(craw), len(sraw), craw, sraw)
				}
			}
		})
	}
}

// TestHTTPClusterUpdateAndStats routes a delta over the sockets and
// checks the merged stats view parses and folds.
func TestHTTPClusterUpdateAndStats(t *testing.T) {
	db := testGraphDB()
	h := newSocketHarness(t, db, 2)
	res, err := http.Post(h.coordSrv.URL+"/update", "application/json",
		strings.NewReader(`{"relation": "E", "inserts": [[900, 901], [901, 902]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var ur UpdateResponse
	if err := json.NewDecoder(res.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || !ur.Applied {
		t.Fatalf("update: status %d, applied %v", res.StatusCode, ur.Applied)
	}

	sres, err := http.Get(h.coordSrv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	var st Stats
	if err := json.NewDecoder(sres.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Updates != 1 {
		t.Fatalf("stats updates = %d, want 1", st.Updates)
	}
}

// TestHTTPClusterShardFailure502 kills one shard daemon mid-fleet and
// requires the coordinator to answer a typed 502 naming it — and 400
// (not 502) for requests the shards themselves reject.
func TestHTTPClusterShardFailure502(t *testing.T) {
	db := testGraphDB()
	h := newSocketHarness(t, db, 2)

	// A shard-rejected request passes its 4xx through.
	status, raw := post(t, h.coordSrv.URL, `{"query": "E(x,y), E(x,z)", "mode": "aggregate", "semiring": "nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad semiring: %d (%s), want 400", status, raw)
	}
	// An unshardable query is a client error, not a fleet failure.
	status, raw = post(t, h.coordSrv.URL, `{"query": "E(x,y), E(y,z), E(x,z)"}`)
	if status != http.StatusBadRequest || !strings.Contains(string(raw), "not shardable") {
		t.Fatalf("triangle: %d (%s), want 400 not shardable", status, raw)
	}

	killed := h.shardSrvs[1]
	killed.Close()
	status, raw = post(t, h.coordSrv.URL, `{"query": "E(x,y), E(x,z)"}`)
	if status != http.StatusBadGateway {
		t.Fatalf("dead shard: status %d (%s), want 502", status, raw)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, killed.URL) {
		t.Fatalf("502 body %q does not name the failed shard %s", e.Error, killed.URL)
	}

	// The fleet health reflects the outage.
	hres, err := http.Get(h.coordSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead shard: %d, want 503", hres.StatusCode)
	}
}

// TestHTTPClusterAdmissionGate: a shard still booting behind its
// readiness gate keeps the coordinator unready (503) and WaitReady
// blocked; once the gate opens, admission follows.
func TestHTTPClusterAdmissionGate(t *testing.T) {
	db := testGraphDB()
	dbs, _, err := Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	gate := server.NewGate()
	booting := httptest.NewServer(gate)
	defer booting.Close()
	ready := httptest.NewServer(server.NewHandler(server.NewEngine(dbs[1], server.Config{})))
	defer ready.Close()

	coord, err := NewHTTP([]string{booting.URL, ready.URL}, ClientConfig{Timeout: time.Second, Retries: -1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(NewHandler(coord))
	defer coordSrv.Close()

	hres, err := http.Get(coordSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with booting shard: %d, want 503", hres.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	if err := coord.WaitReady(ctx); err == nil {
		t.Fatal("WaitReady admitted a booting fleet")
	}
	cancel()

	// Boot finishes: the gate swaps the real handler in.
	gate.Set(server.NewHandler(server.NewEngine(dbs[0], server.Config{})))
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady after gate open: %v", err)
	}
	hres, err = http.Get(coordSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("healthz after gate open: %d, want 200", hres.StatusCode)
	}
}
