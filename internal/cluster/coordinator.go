package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cq"
	"repro/internal/server"
	"repro/internal/stats"
)

// Config tunes a Coordinator.
type Config struct {
	// RouteCache bounds the routing cache (entries; 0:
	// DefaultRouteCacheSize, negative: disabled). Entries are keyed by
	// (query text, options, global version vector), so any applied
	// update moves the key and stale routes age out unreached.
	RouteCache int
}

// Coordinator fans queries out over a fixed shard fleet and merges the
// answers with single-engine semantics. It is safe for concurrent use.
//
// Exactness contract: the shards must hold disjoint first-attribute
// hash partitions of one database under ShardOf (Partition or Keep
// built them, and every update went through SplitUpdate or
// Coordinator.Update). Under that invariant, for every query Route
// admits, the merged answer — count, aggregate, eval sample, stream —
// is byte-identical to a single engine serving the union, and the
// merged stats.Counters are the exact fold of the per-shard work.
type Coordinator struct {
	routing Routing
	shards  []Shard
	routes  *routeCache

	queries         atomic.Int64
	updates         atomic.Int64
	snapshotRejects atomic.Int64
	notShardable    atomic.Int64
	partialServed   atomic.Int64
}

// New builds a coordinator over an ordered shard fleet: shards[i] must
// serve partition i of routing (the order is part of the partitioning
// contract, not a convenience).
func New(routing Routing, shards []Shard, cfg Config) (*Coordinator, error) {
	if routing.Shards < 1 {
		return nil, fmt.Errorf("cluster: routing needs at least 1 shard, got %d", routing.Shards)
	}
	if len(shards) != routing.Shards {
		return nil, fmt.Errorf("cluster: routing describes %d shards but %d were given", routing.Shards, len(shards))
	}
	capacity := cfg.RouteCache
	if capacity == 0 {
		capacity = DefaultRouteCacheSize
	}
	return &Coordinator{
		routing: routing,
		shards:  shards,
		routes:  newRouteCache(capacity),
	}, nil
}

// NewHTTP builds a coordinator whose fleet is the given daemon
// addresses, in partition order (cltjd -coordinator -shards a,b,...).
func NewHTTP(addrs []string, ccfg ClientConfig, cfg Config) (*Coordinator, error) {
	groups := make([][]string, len(addrs))
	for i, a := range addrs {
		groups[i] = []string{a}
	}
	return NewHTTPFleet(groups, ccfg, ReplicaConfig{}, cfg)
}

// NewHTTPFleet builds a coordinator over replica groups in partition
// order: groups[i] lists the interchangeable endpoints serving
// partition i (cltjd -coordinator -shards "a1|a2,b" makes partition 0 a
// two-replica group and partition 1 a bare endpoint). Single-endpoint
// groups skip the replica wrapper entirely.
func NewHTTPFleet(groups [][]string, ccfg ClientConfig, rcfg ReplicaConfig, cfg Config) (*Coordinator, error) {
	shards := make([]Shard, len(groups))
	for i, g := range groups {
		if len(g) == 1 {
			shards[i] = NewClient(g[0], ccfg)
			continue
		}
		reps := make([]Shard, len(g))
		for j, a := range g {
			reps[j] = NewClient(a, ccfg)
		}
		shards[i] = NewReplicaSet(reps, rcfg)
	}
	return New(Routing{Shards: len(groups)}, shards, cfg)
}

// Routing returns the partitioning descriptor the coordinator routes by.
func (c *Coordinator) Routing() Routing { return c.routing }

// readyPollInterval paces WaitReady's probes between failed rounds.
const readyPollInterval = 100 * time.Millisecond

// WaitReady blocks until every shard answers its readiness probe (a
// warm-booting shard replaying its WAL answers 503 until it serves), or
// ctx expires — then the error names the shard still not ready. The
// coordinator daemon gates admission on it before accepting queries.
func (c *Coordinator) WaitReady(ctx context.Context) error {
	idxs := c.allShards()
	for {
		err := c.each(ctx, idxs, "ready", func(ctx context.Context, i int) error {
			return c.shards[i].Ready(ctx)
		})
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: fleet not ready: %w", err)
		case <-time.After(readyPollInterval):
		}
	}
}

func (c *Coordinator) allShards() []int {
	idxs := make([]int, len(c.shards))
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}

// shardErr wraps a shard failure with its name and operation; already
// typed cluster errors pass through unwrapped so HTTP status mapping
// sees them.
func (c *Coordinator) shardErr(i int, op string, err error) error {
	if _, ok := err.(*ShardError); ok {
		return err
	}
	return &ShardError{Shard: c.shards[i].Name(), Op: op, Err: err}
}

// each runs f once per shard index concurrently and returns the first
// failure (wrapped as a ShardError naming the shard), cancelling the
// siblings. It waits for every call to return before it does — no
// goroutine outlives the fan-out.
func (c *Coordinator) each(ctx context.Context, idxs []int, op string, f func(ctx context.Context, shard int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, len(idxs))
	for _, i := range idxs {
		go func(i int) {
			if err := f(ctx, i); err != nil {
				errc <- c.shardErr(i, op, err)
				return
			}
			errc <- nil
		}(i)
	}
	var first error
	for range idxs {
		if err := <-errc; err != nil && first == nil {
			first = err
			cancel()
		}
	}
	return first
}

// eachPartial is each without the cancellation: every shard runs to
// completion because partial mode wants every survivor's answer, not
// the fastest failure. It returns the per-index outcomes aligned with
// idxs (nil entries succeeded), each failure wrapped as a ShardError.
func (c *Coordinator) eachPartial(ctx context.Context, idxs []int, op string, f func(ctx context.Context, shard int) error) []error {
	errs := make([]error, len(idxs))
	done := make(chan struct{}, len(idxs))
	for j, i := range idxs {
		go func(j, i int) {
			if err := f(ctx, i); err != nil {
				errs[j] = c.shardErr(i, op, err)
			}
			done <- struct{}{}
		}(j, i)
	}
	for range idxs {
		<-done
	}
	return errs
}

// tolerable reports whether err is the kind of shard failure
// allow_partial may absorb — the shard (or every path to it) is down,
// so the query can proceed over the survivors. Context outcomes,
// snapshot rejections, routing refusals and shard-side 4xx answers are
// about the request or the merge, not the shard's health: dropping the
// shard would not make them right, so they fail the whole query.
func tolerable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	if errors.Is(err, ErrSnapshotMoved) || errors.Is(err, ErrNotShardable) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) && se.Status < 500 {
		return false
	}
	return true
}

// preflight collects every shard's full version vector concurrently —
// the first half of the consistent-snapshot handshake. The returned
// slice is indexed by shard. In partial mode a tolerable per-shard
// failure marks that shard missing instead of failing the handshake
// (its vecs entry stays nil); a fleet with no live shard at all still
// fails.
func (c *Coordinator) preflight(ctx context.Context, partial bool) ([]map[string]uint64, []int, error) {
	vecs := make([]map[string]uint64, len(c.shards))
	collect := func(ctx context.Context, i int) error {
		v, err := c.shards[i].Versions(ctx, nil)
		if err != nil {
			return err
		}
		vecs[i] = v
		return nil
	}
	if !partial {
		if err := c.each(ctx, c.allShards(), "versions", collect); err != nil {
			return nil, nil, err
		}
		return vecs, nil, nil
	}
	errs := c.eachPartial(ctx, c.allShards(), "versions", collect)
	var missing []int
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !tolerable(ctx, err) {
			return nil, nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
		missing = append(missing, i)
	}
	if len(missing) == len(c.shards) {
		return nil, nil, firstErr
	}
	return vecs, missing, nil
}

// encodeVectors renders the global version vector — every shard's
// per-relation version numbers, concatenated in shard order — as the
// route-cache key component.
func encodeVectors(vecs []map[string]uint64) string {
	var b strings.Builder
	for i, m := range vecs {
		fmt.Fprintf(&b, "#%d{", i)
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "%s:%d,", name, m[name])
		}
		b.WriteByte('}')
	}
	return b.String()
}

// versionsMatch reports whether the vector a shard's execution pinned
// agrees with the vector preflight collected (executed covers only the
// relations the query touches; pre is the shard's full vector).
func versionsMatch(executed, pre map[string]uint64) bool {
	for name, num := range executed {
		if p, ok := pre[name]; !ok || p != num {
			return false
		}
	}
	return true
}

// optsKey canonicalizes the route-affecting request options. The
// orderer is always the forced greedy strategy, so only the order-cost
// skip (plan-affecting on the shards) distinguishes entries.
func optsKey(req server.Request) string {
	if req.NoOrderCost {
		return "noc"
	}
	return ""
}

// sortedRelNames returns the sorted distinct relation names q touches.
func sortedRelNames(q *cq.Query) []string {
	seen := make(map[string]bool, len(q.Atoms))
	names := make([]string, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			names = append(names, a.Rel)
		}
	}
	sort.Strings(names)
	return names
}

// routed is one resolved execution: the route, the touched relations,
// the expected variable order (nil until the first execution at this
// snapshot learns it), and the preflight vectors backing the key.
// nocache marks a degraded resolution (missing shards): the vector is
// incomplete, so the route cache is bypassed in both directions.
type routed struct {
	key     routeKey
	route   RoutePlan
	names   []string
	order   []string
	vecs    []map[string]uint64
	nocache bool
}

// resolve runs the preflight handshake and the route decision, serving
// parse + route from the route cache when the global vector matches.
// In partial mode it also returns the shards whose preflight failed
// tolerably (the caller subtracts them from the route).
func (c *Coordinator) resolve(ctx context.Context, req server.Request, partial bool) (*routed, []int, error) {
	vecs, missing, err := c.preflight(ctx, partial)
	if err != nil {
		return nil, nil, err
	}
	var key routeKey
	if len(missing) == 0 {
		key = routeKey{text: req.Query, opts: optsKey(req), vers: encodeVectors(vecs)}
		if route, names, order, ok := c.routes.get(key); ok {
			return &routed{key: key, route: route, names: names, order: order, vecs: vecs}, nil, nil
		}
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		return nil, nil, err
	}
	route, err := c.routing.Route(q)
	if err != nil {
		c.notShardable.Add(1)
		return nil, nil, err
	}
	names := sortedRelNames(q)
	if len(missing) > 0 {
		return &routed{route: route, names: names, vecs: vecs, nocache: true}, missing, nil
	}
	c.routes.put(key, route, names, nil)
	return &routed{key: key, route: route, names: names, vecs: vecs}, nil, nil
}

// checkOrders verifies the per-shard variable orders agree with each
// other, with the cached expectation, and — on multi-shard routes —
// lead with the partition variable the merge keys on. idxs aligns
// orders with the shards that actually answered (in partial mode a
// subset of the route). It returns the common order.
func (c *Coordinator) checkOrders(rt *routed, idxs []int, orders [][]string) ([]string, error) {
	want := rt.order
	for j, ord := range orders {
		if want == nil {
			want = ord
			continue
		}
		if !equalStrings(want, ord) {
			return nil, &ShardError{
				Shard: c.shards[idxs[j]].Name(),
				Op:    "merge",
				Err:   fmt.Errorf("variable order %v diverges from %v — shards must plan identically", ord, want),
			}
		}
	}
	if len(rt.route.Shards) > 1 {
		if len(want) == 0 || want[0] != rt.route.Var {
			return nil, &ShardError{
				Shard: c.shards[idxs[0]].Name(),
				Op:    "merge",
				Err:   fmt.Errorf("variable order %v does not lead with partition variable %q", want, rt.route.Var),
			}
		}
	}
	if !rt.nocache {
		c.routes.learn(rt.key, want)
	}
	return want, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prepare validates and normalizes one fan-out request: prepared
// statements are engine-local handles a coordinator cannot route, and
// the orderer is forced to the greedy strategy — the one planning mode
// that is purely structural, so every shard (whatever its data slice
// looks like) compiles the same variable order and the merges below are
// byte-exact. Cost or adaptive ordering would let two shards pick
// different orders for one query.
func (c *Coordinator) prepare(req server.Request) (server.Request, error) {
	if req.Stmt != "" {
		return req, fmt.Errorf("cluster: prepared statements are engine-local — send query text to the coordinator")
	}
	switch req.Orderer {
	case "", "greedy":
	default:
		return req, fmt.Errorf("cluster: coordinator plans with the greedy orderer only (got %q) — data-dependent ordering could diverge across shards", req.Orderer)
	}
	req.Orderer = "greedy"
	return req, nil
}

// Do executes one buffered request across the fleet and merges the
// per-shard responses: counts and counting aggregates by summation,
// "sum" by summation and "min" by minimum (an empty shard answers the
// semiring identity, so the fold is exact), eval samples by a k-way
// root-key merge that reproduces the single-engine tuple order, and
// per-query counters by stats.Counters.Merge. The merged Response
// carries no Versions map — per-shard vectors do not collapse into one.
func (c *Coordinator) Do(ctx context.Context, req server.Request) (*server.Response, error) {
	start := time.Now()
	req, err := c.prepare(req)
	if err != nil {
		return nil, err
	}
	if req.Mode == "stream" {
		return nil, fmt.Errorf("cluster: mode \"stream\" has no buffered response — use Coordinator.StreamCtx or POST /query over HTTP")
	}
	partial := req.AllowPartial
	rt, preMissing, err := c.resolve(ctx, req, partial)
	if err != nil {
		return nil, err
	}
	sreq := req
	limit := 0
	if req.Mode == "eval" {
		// The coordinator resolves the effective limit itself and pins it
		// on every shard: each shard then returns (up to) a full global
		// sample's worth of its lowest root blocks, which is exactly what
		// the k-way merge needs to reproduce the single-engine prefix.
		limit = req.Limit
		if limit <= 0 {
			limit = server.DefaultMaxTuples
		}
		sreq.Limit = limit
	}

	// Only shards the route needs count as missing: a dead shard outside
	// the route leaves a single-shard answer exact, not partial.
	missingSet := make(map[int]bool, len(preMissing))
	for _, i := range preMissing {
		missingSet[i] = true
	}
	var idxs []int
	var firstDead error
	for _, i := range rt.route.Shards {
		if !missingSet[i] {
			idxs = append(idxs, i)
		} else if firstDead == nil {
			firstDead = c.shardErr(i, "query", errors.New("no live endpoint for partition"))
		}
	}
	if len(idxs) == 0 {
		// Every shard holding the answer is down — there are no
		// survivors to answer from, partial or not.
		return nil, firstDead
	}

	byShard := make([]*server.Response, len(c.shards))
	query := func(ctx context.Context, i int) error {
		resp, err := c.shards[i].Do(ctx, sreq)
		if err != nil {
			return err
		}
		byShard[i] = resp
		return nil
	}
	if partial {
		errs := c.eachPartial(ctx, idxs, "query", query)
		var live []int
		for j, e := range errs {
			if e == nil {
				live = append(live, idxs[j])
				continue
			}
			if !tolerable(ctx, e) {
				return nil, e
			}
			if firstDead == nil {
				firstDead = e
			}
			missingSet[idxs[j]] = true
		}
		if len(live) == 0 {
			return nil, firstDead
		}
		idxs = live
	} else if err := c.each(ctx, idxs, "query", query); err != nil {
		return nil, err
	}
	resps := make([]*server.Response, len(idxs))
	for j, i := range idxs {
		resps[j] = byShard[i]
	}

	// Second half of the snapshot handshake: every response must have
	// executed at the vector preflight saw, or two shards may have
	// answered from different global snapshots and the merge is refused.
	// A single-shard route (or a single survivor) needs no cross-shard
	// consistency — the shard's own snapshot pin already makes its
	// answer exact over its partition.
	if len(idxs) > 1 {
		for j, i := range idxs {
			if !versionsMatch(resps[j].Versions, rt.vecs[i]) {
				c.snapshotRejects.Add(1)
				return nil, fmt.Errorf("%w: shard %s executed at a newer vector than the handshake collected", ErrSnapshotMoved, c.shards[i].Name())
			}
		}
	}

	orders := make([][]string, len(resps))
	for j, r := range resps {
		orders[j] = r.Order
	}
	order, err := c.checkOrders(rt, idxs, orders)
	if err != nil {
		return nil, err
	}

	merged := &server.Response{Mode: resps[0].Mode, Order: order}
	merged.Stats.PlanCached = true
	for _, r := range resps {
		merged.Stats.Counters.Merge(&r.Stats.Counters)
		merged.Stats.CachedEntries += r.Stats.CachedEntries
		merged.Stats.PlanCached = merged.Stats.PlanCached && r.Stats.PlanCached
	}
	switch req.Mode {
	case "", "count":
		for _, r := range resps {
			merged.Count += r.Count
		}
	case "eval":
		for _, r := range resps {
			merged.Count += r.Count
		}
		merged.Tuples = mergeSamples(resps, limit)
		merged.Truncated = merged.Count > int64(limit)
	case "aggregate":
		switch req.Semiring {
		case "", "count":
			for _, r := range resps {
				merged.Count += r.Count
			}
		case "sum":
			for _, r := range resps {
				merged.Value += r.Value
			}
		case "min":
			merged.Value = resps[0].Value
			for _, r := range resps[1:] {
				if r.Value < merged.Value {
					merged.Value = r.Value
				}
			}
		default:
			// The shards validate semirings; reaching here means they all
			// accepted one this coordinator cannot fold.
			return nil, fmt.Errorf("cluster: cannot merge semiring %q", req.Semiring)
		}
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q (want count, eval or aggregate)", req.Mode)
	}

	if names := c.missingNames(rt.route.Shards, missingSet); len(names) > 0 {
		// Never silently wrong: the answer is exact over the survivors
		// and says so, naming what it is missing.
		merged.Partial = true
		merged.Missing = names
		c.partialServed.Add(1)
	}
	merged.Stats.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	c.queries.Add(1)
	return merged, nil
}

// missingNames renders the routed shards marked missing as their
// sorted names — the Response.Missing / stream-trailer payload.
func (c *Coordinator) missingNames(routedShards []int, missingSet map[int]bool) []string {
	var names []string
	for _, i := range routedShards {
		if missingSet[i] {
			names = append(names, c.shards[i].Name())
		}
	}
	sort.Strings(names)
	return names
}

// mergeSamples k-way merges the per-shard eval samples by root key into
// the single-engine tuple order. Shards hold disjoint root partitions
// and each shard's sample is already root-ascending, so repeatedly
// taking the smallest head reproduces the union engine's emission order
// exactly; the partition invariant means two heads never tie (one root
// value lives on one shard), but ties break to the lower shard index so
// the merge stays deterministic even over a mispartitioned fleet.
func mergeSamples(resps []*server.Response, limit int) [][]int64 {
	heads := make([]int, len(resps))
	var out [][]int64
	for len(out) < limit {
		best := -1
		for j, r := range resps {
			if heads[j] >= len(r.Tuples) {
				continue
			}
			if best == -1 || r.Tuples[heads[j]][0] < resps[best].Tuples[heads[best]][0] {
				best = j
			}
		}
		if best == -1 {
			break
		}
		out = append(out, resps[best].Tuples[heads[best]])
		heads[best]++
	}
	return out
}

// UpdateResponse is the merged result of one routed update fan-out.
type UpdateResponse struct {
	// Relation echoes the mutated relation.
	Relation string `json:"relation"`
	// Applied reports whether any shard applied a net change.
	Applied bool `json:"applied"`
	// Tuples is the relation's cardinality summed over the shards that
	// received part of the delta (not the whole fleet).
	Tuples int `json:"tuples"`
	// Shards maps each touched shard's name to its own update result.
	Shards map[string]*server.UpdateResult `json:"shards"`
}

// Update routes one delta the same way the partitioner routed the base
// data — each tuple to the shard its first attribute hashes to — and
// applies the per-shard sub-deltas concurrently. Only shards receiving
// tuples are touched (an empty delta probes the whole fleet so an
// unknown relation fails identically to a single engine). A shard
// failure surfaces as a typed ShardError; the delta may then be applied
// on some shards only, and retrying the same request converges — set
// semantics make the re-application of the already-applied sub-deltas a
// version-preserving no-op.
func (c *Coordinator) Update(ctx context.Context, req server.UpdateRequest) (*UpdateResponse, error) {
	parts, err := SplitUpdate(req, c.routing.Shards)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for i, p := range parts {
		if len(p.Inserts) > 0 || len(p.Deletes) > 0 {
			idxs = append(idxs, i)
		}
	}
	if idxs == nil {
		idxs = c.allShards()
	}
	results := make([]*server.UpdateResult, len(c.shards))
	err = c.each(ctx, idxs, "update", func(ctx context.Context, i int) error {
		res, err := c.shards[i].Update(ctx, parts[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &UpdateResponse{Relation: req.Relation, Shards: make(map[string]*server.UpdateResult, len(idxs))}
	for _, i := range idxs {
		res := results[i]
		out.Applied = out.Applied || res.Applied
		out.Tuples += res.Tuples
		out.Shards[c.shards[i].Name()] = res
	}
	c.updates.Add(1)
	return out, nil
}

// ShardStats pairs one shard's name with its engine-lifetime stats.
// Error carries the probe failure for a shard that did not answer (its
// Stats are then zero) — a degraded fleet still serves its stats.
type ShardStats struct {
	Shard string             `json:"shard"`
	Stats server.EngineStats `json:"stats"`
	Error string             `json:"error,omitempty"`
}

// Stats is the coordinator's merged view of the fleet, served by the
// coordinator's GET /stats.
type Stats struct {
	// Shards is the fleet size.
	Shards int `json:"shards"`
	// Queries and Updates count coordinator-served merges and routed
	// deltas (the per-shard stats count their local executions).
	Queries int64 `json:"queries"`
	Updates int64 `json:"updates"`
	// SnapshotRejects counts merges refused because a shard's version
	// vector moved between the handshake and its execution;
	// NotShardable counts queries refused by the routing rule.
	SnapshotRejects int64 `json:"snapshot_rejects"`
	NotShardable    int64 `json:"not_shardable"`
	// PartialServed counts answers served with partial=true — exact
	// over the surviving shards, with the missing ones named.
	PartialServed int64 `json:"partial_served"`
	// Breakers inventories every endpoint circuit the fleet's clients
	// guard, in partition then replica-preference order.
	Breakers []BreakerState `json:"breakers,omitempty"`
	// Routes describes the routing cache.
	Routes RouteCacheStats `json:"routes"`
	// Lifetime is the exact stats.Counters fold of every shard's
	// lifetime counters — the same Merge the in-process parallel engine
	// uses, so the fleet's total work reads like one engine's.
	Lifetime stats.Counters `json:"lifetime"`
	// PerShard inventories the fleet in partition order.
	PerShard []ShardStats `json:"per_shard"`
}

// Stats snapshots every shard's engine stats concurrently and folds
// their lifetime counters exactly. A shard that does not answer is
// reported with its probe error instead of failing the whole snapshot —
// during an incident, the fleet view (breaker states included) is
// exactly what the operator needs.
func (c *Coordinator) Stats(ctx context.Context) (*Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	per := make([]*server.EngineStats, len(c.shards))
	errs := c.eachPartial(ctx, c.allShards(), "stats", func(ctx context.Context, i int) error {
		st, err := c.shards[i].Stats(ctx)
		if err != nil {
			return err
		}
		per[i] = st
		return nil
	})
	out := &Stats{
		Shards:          len(c.shards),
		Queries:         c.queries.Load(),
		Updates:         c.updates.Load(),
		SnapshotRejects: c.snapshotRejects.Load(),
		NotShardable:    c.notShardable.Load(),
		PartialServed:   c.partialServed.Load(),
		Routes:          c.routes.stats(),
	}
	for i, st := range per {
		ss := ShardStats{Shard: c.shards[i].Name()}
		if st != nil {
			out.Lifetime.Merge(&st.Lifetime)
			ss.Stats = *st
		} else if errs[i] != nil {
			ss.Error = errs[i].Error()
		}
		out.PerShard = append(out.PerShard, ss)
		if bs, ok := c.shards[i].(BreakerStater); ok {
			out.Breakers = append(out.Breakers, bs.BreakerStates()...)
		}
	}
	return out, nil
}
