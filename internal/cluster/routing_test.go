package cluster

import (
	"errors"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/relation"
	"repro/internal/server"
)

// TestShardOfContract pins the hash: ShardOf is a wire contract shared
// by the partitioner, the update router and every coordinator, so its
// values must never drift across releases.
func TestShardOfContract(t *testing.T) {
	pinned := []struct {
		v int64
		n int
		s int
	}{
		{0, 4, 0},
		{1, 4, 1},
		{2, 4, 2},
		{3, 4, 0},
		{4, 4, 0},
		{5, 4, 0},
		{42, 4, 2},
		{-1, 4, 3},
		{1 << 40, 4, 0},
		{7, 1, 0},
	}
	for _, p := range pinned {
		if got := ShardOf(p.v, p.n); got != p.s {
			t.Errorf("ShardOf(%d, %d) = %d, want %d", p.v, p.n, got, p.s)
		}
	}
	for v := int64(-500); v < 500; v++ {
		s := ShardOf(v, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d, 4) = %d out of range", v, s)
		}
	}
}

func testGraphDB() *relation.DB {
	g := dataset.TriadicPA(150, 3, 0.4, 4242)
	r := dataset.TriadicPA(120, 2, 0.3, 99)
	return relation.NewDB(g.EdgeRelation("E", false), r.EdgeRelation("R", false))
}

// TestPartitionDisjointUnion checks the partition invariant the whole
// tier rests on: per relation, the shard slices are disjoint, their
// union is the original, order is preserved within each slice, and
// tuples land exactly where ShardOf says.
func TestPartitionDisjointUnion(t *testing.T) {
	db := testGraphDB()
	for _, n := range []int{1, 2, 4, 7} {
		dbs, routing, err := Partition(db, n)
		if err != nil {
			t.Fatalf("Partition(%d): %v", n, err)
		}
		if routing.Shards != n || len(dbs) != n {
			t.Fatalf("Partition(%d): got %d dbs, routing %+v", n, len(dbs), routing)
		}
		for _, name := range db.Names() {
			orig, _ := db.Get(name)
			arity := orig.Arity()
			var union []int64
			// Concatenating the slices in shard-of order of the original
			// scan must reproduce the original flat data exactly.
			heads := make([]int, n)
			total := 0
			for i, pdb := range dbs {
				pr, err := pdb.Get(name)
				if err != nil {
					t.Fatalf("shard %d lost relation %s: %v", i, name, err)
				}
				data := pr.Data()
				total += len(data) / arity
				for off := 0; off < len(data); off += arity {
					if s := ShardOf(data[off], n); s != i {
						t.Fatalf("shard %d of %d holds %s tuple with lead %d (ShardOf=%d)", i, n, name, data[off], s)
					}
				}
			}
			if total != orig.Len() {
				t.Fatalf("%s over %d shards: %d tuples, want %d", name, n, total, orig.Len())
			}
			data := orig.Data()
			for off := 0; off < len(data); off += arity {
				i := ShardOf(data[off], n)
				pr, _ := dbs[i].Get(name)
				pd := pr.Data()
				at := heads[i] * arity
				for k := 0; k < arity; k++ {
					union = append(union, pd[at+k])
					if pd[at+k] != data[off+k] {
						t.Fatalf("%s shard %d tuple %d diverges from original order", name, i, heads[i])
					}
				}
				heads[i]++
			}
			_ = union
		}
		// Keep must agree with Partition slice by slice.
		for i := 0; i < n; i++ {
			kept, err := Keep(db, i, n)
			if err != nil {
				t.Fatalf("Keep(%d/%d): %v", i, n, err)
			}
			for _, name := range db.Names() {
				a, _ := dbs[i].Get(name)
				b, _ := kept.Get(name)
				if a.Len() != b.Len() {
					t.Fatalf("Keep(%d/%d) %s: %d tuples, Partition says %d", i, n, name, b.Len(), a.Len())
				}
			}
		}
	}
	if _, _, err := Partition(db, 0); err == nil {
		t.Fatal("Partition(0) accepted")
	}
	if _, err := Keep(db, 3, 2); err == nil {
		t.Fatal("Keep(3/2) accepted")
	}
}

func mustParse(t *testing.T, s string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestRouteDecisions walks the shardability rule: common leading
// variable fans to all shards, constant-led goes to one, everything
// else is refused with the typed error.
func TestRouteDecisions(t *testing.T) {
	r := Routing{Shards: 4}
	shardable := []string{
		"E(x,y)",
		"E(x,y), E(x,z)",
		"E(x,y), E(x,z), E(x,w)",
		"E(x,y), R(x,z)",
		"E(x,5), E(x,z)", // leading terms are all the variable x
	}
	for _, s := range shardable {
		rp, err := r.Route(mustParse(t, s))
		if err != nil {
			t.Fatalf("Route(%s): %v", s, err)
		}
		if rp.Var != "x" || len(rp.Shards) != 4 {
			t.Fatalf("Route(%s) = %+v, want all 4 shards on x", s, rp)
		}
	}

	rp, err := r.Route(mustParse(t, "E(3,y), E(3,z)"))
	if err != nil {
		t.Fatalf("constant-led route: %v", err)
	}
	if rp.Var != "" || len(rp.Shards) != 1 || rp.Shards[0] != ShardOf(3, 4) {
		t.Fatalf("constant-led route = %+v, want single shard %d", rp, ShardOf(3, 4))
	}

	// Constants 3 and 4 both hash to shard 0 under n=4, so a query led
	// by both is still single-shard answerable and must route, not fail.
	if ShardOf(3, 4) != ShardOf(4, 4) {
		t.Fatal("test constants 3 and 4 no longer collide; pick colliding ones")
	}
	rp, err = r.Route(mustParse(t, "E(3,y), E(4,z)"))
	if err != nil || len(rp.Shards) != 1 {
		t.Fatalf("co-located constants route = %+v, %v", rp, err)
	}

	refused := []string{
		"E(x,y), E(y,z), E(x,z)", // triangle: y leads the second atom
		"E(x,y), E(z,x)",         // distinct leading variables
		"E(x,y), E(3,z)",         // mixed leading variable and constant
		"E(1,y), E(2,z)",         // constants on two different shards
	}
	for _, s := range refused {
		if _, err := r.Route(mustParse(t, s)); !errors.Is(err, ErrNotShardable) {
			t.Fatalf("Route(%s) = %v, want ErrNotShardable", s, err)
		}
	}
	if ShardOf(1, 4) == ShardOf(2, 4) {
		t.Fatal("test constants 1 and 2 collide; pick different ones")
	}
}

// TestSplitUpdateRouting checks deltas route exactly like base data.
func TestSplitUpdateRouting(t *testing.T) {
	req := server.UpdateRequest{
		Relation: "E",
		Inserts:  [][]int64{{1, 9}, {2, 9}, {3, 9}, {4, 9}, {5, 9}},
		Deletes:  [][]int64{{42, 7}},
	}
	parts, err := SplitUpdate(req, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	seen := 0
	for i, p := range parts {
		if p.Relation != "E" {
			t.Fatalf("part %d relation %q", i, p.Relation)
		}
		for _, tup := range p.Inserts {
			seen++
			if ShardOf(tup[0], 4) != i {
				t.Fatalf("insert %v routed to shard %d", tup, i)
			}
		}
		for _, tup := range p.Deletes {
			seen++
			if ShardOf(tup[0], 4) != i {
				t.Fatalf("delete %v routed to shard %d", tup, i)
			}
		}
	}
	if seen != 6 {
		t.Fatalf("routed %d tuples, want 6", seen)
	}
	if _, err := SplitUpdate(server.UpdateRequest{Relation: "E", Inserts: [][]int64{{}}}, 2); err == nil {
		t.Fatal("empty tuple routed")
	}
}
