// Package genericjoin implements the NPRR / GenericJoin worst-case
// optimal join of Ngo, Porat, Ré and Rudra [17,18] in its hash-based
// formulation: variables are eliminated one at a time; at each step the
// candidate set for the current variable is the smallest participating
// atom's residual value set, filtered by hash probes into the other
// participating atoms. The paper uses GenericJoin as YTD's per-bag join
// (§5.1) and cites it as the other family of worst-case optimal
// algorithms next to LFTJ; this package provides it as an independent
// baseline so the trie-based and hash-based WCOJ styles can be compared
// directly.
package genericjoin

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/leapfrog"
	"repro/internal/relation"
	"repro/internal/stats"
)

// atomState is one atom's residual index structure: tuples grouped by
// the values of the atom's already-bound variables.
type atomState struct {
	vars   []string // variable names, in derived-relation column order
	varPos []int    // global order position per column
	rel    *relation.Relation
	// index maps a bound-prefix key (per boundMask) to matching tuples.
	// Rebuilt lazily per distinct bound mask: for a fixed variable order
	// the mask at each depth is fixed, so each atom builds one index per
	// depth at which it participates.
	indexes map[string]*hashIndex
}

// hashIndex groups the atom's tuples by the key formed from the bound
// columns; per group it precomputes the sorted distinct values of the
// probe column and a membership set, so candidate generation and probes
// are single hash lookups.
type hashIndex struct {
	cols     []int
	probeCol int
	vals     map[string][]int64
	valSet   map[string]map[int64]bool
}

// Instance is a compiled GenericJoin execution.
type Instance struct {
	query    *cq.Query
	order    []string
	atoms    []*atomState
	legsAt   [][]int
	empty    bool
	counters *stats.Counters
}

// Build compiles the query under the given variable order (nil: the
// query's natural order). counters may be nil.
func Build(q *cq.Query, db *relation.DB, order []string, counters *stats.Counters) (*Instance, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if order == nil {
		order = q.Vars()
	}
	pos := make(map[string]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	if len(pos) != len(q.Vars()) || len(order) != len(q.Vars()) {
		return nil, fmt.Errorf("genericjoin: order %v is not a permutation of the query variables", order)
	}
	inst := &Instance{
		query:    q,
		order:    append([]string(nil), order...),
		legsAt:   make([][]int, len(order)),
		counters: counters,
	}
	for _, atom := range q.Atoms {
		rel, err := db.Get(atom.Rel)
		if err != nil {
			return nil, err
		}
		if rel.Arity() != len(atom.Args) {
			return nil, fmt.Errorf("genericjoin: atom %s arity mismatch", atom)
		}
		derived, vars, err := leapfrog.DeriveAtomRelation(rel, atom)
		if err != nil {
			return nil, err
		}
		if derived.Len() == 0 {
			inst.empty = true
		}
		if len(vars) == 0 {
			continue
		}
		st := &atomState{
			vars:    vars,
			varPos:  make([]int, len(vars)),
			rel:     derived,
			indexes: make(map[string]*hashIndex),
		}
		for i, v := range vars {
			p, ok := pos[v]
			if !ok {
				return nil, fmt.Errorf("genericjoin: variable %q missing from order", v)
			}
			st.varPos[i] = p
		}
		inst.atoms = append(inst.atoms, st)
		ai := len(inst.atoms) - 1
		for _, p := range st.varPos {
			inst.legsAt[p] = append(inst.legsAt[p], ai)
		}
	}
	for d, legs := range inst.legsAt {
		if len(legs) == 0 {
			return nil, fmt.Errorf("genericjoin: variable %q constrained by no atom", order[d])
		}
	}
	return inst, nil
}

// indexFor returns (building on first use) the atom's hash index grouped
// by the columns whose variables come before depth d, with the column of
// depth d as the probe target.
func (st *atomState) indexFor(d int, counters *stats.Counters) *hashIndex {
	key := fmt.Sprintf("%d", d)
	if idx, ok := st.indexes[key]; ok {
		return idx
	}
	var cols []int
	probeCol := -1
	for i, p := range st.varPos {
		switch {
		case p < d:
			cols = append(cols, i)
		case p == d:
			probeCol = i
		}
	}
	idx := &hashIndex{
		cols:     cols,
		probeCol: probeCol,
		vals:     make(map[string][]int64),
		valSet:   make(map[string]map[int64]bool),
	}
	keyBuf := make([]int64, len(cols))
	for i := 0; i < st.rel.Len(); i++ {
		t := st.rel.Tuple(i)
		for j, c := range cols {
			keyBuf[j] = t[c]
		}
		k := relation.Key(keyBuf)
		set := idx.valSet[k]
		if set == nil {
			set = make(map[int64]bool)
			idx.valSet[k] = set
		}
		v := t[probeCol]
		if !set[v] {
			set[v] = true
			idx.vals[k] = append(idx.vals[k], v)
		}
		if counters != nil {
			counters.HashAccesses++
			counters.TupleAccesses += int64(len(t))
		}
	}
	for _, vs := range idx.vals {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	st.indexes[key] = idx
	return idx
}

// candidateValues returns the sorted distinct values the probe column
// takes in the group matching the bound assignment.
func (idx *hashIndex) candidateValues(mu []int64, varPos []int, counters *stats.Counters) []int64 {
	keyBuf := make([]int64, len(idx.cols))
	for j, c := range idx.cols {
		keyBuf[j] = mu[varPos[c]]
	}
	if counters != nil {
		counters.HashAccesses++
	}
	return idx.vals[relation.Key(keyBuf)]
}

// contains reports whether the group matching mu has value v at the
// probe column.
func (idx *hashIndex) contains(mu []int64, varPos []int, v int64, counters *stats.Counters) bool {
	keyBuf := make([]int64, len(idx.cols))
	for j, c := range idx.cols {
		keyBuf[j] = mu[varPos[c]]
	}
	if counters != nil {
		counters.HashAccesses++
	}
	return idx.valSet[relation.Key(keyBuf)][v]
}

// Count returns |q(D)|.
func (in *Instance) Count() int64 {
	if in.empty {
		return 0
	}
	mu := make([]int64, len(in.order))
	var rec func(d int) int64
	rec = func(d int) int64 {
		if d == len(in.order) {
			return 1
		}
		legs := in.legsAt[d]
		// Smallest candidate set first (the GenericJoin size heuristic).
		var cands []int64
		var candLeg int
		for i, ai := range legs {
			idx := in.atoms[ai].indexFor(d, in.counters)
			vals := idx.candidateValues(mu, in.atoms[ai].varPos, in.counters)
			if i == 0 || len(vals) < len(cands) {
				cands, candLeg = vals, ai
			}
			if len(cands) == 0 {
				return 0
			}
		}
		var total int64
		for _, v := range cands {
			ok := true
			for _, ai := range legs {
				if ai == candLeg {
					continue
				}
				idx := in.atoms[ai].indexFor(d, in.counters)
				if !idx.contains(mu, in.atoms[ai].varPos, v, in.counters) {
					ok = false
					break
				}
			}
			if ok {
				mu[d] = v
				total += rec(d + 1)
			}
		}
		return total
	}
	return rec(0)
}

// Eval enumerates the result, invoking emit with assignments aligned
// with the instance order (reused slice; copy to retain). Returning
// false stops.
func (in *Instance) Eval(emit func(mu []int64) bool) {
	if in.empty {
		return
	}
	mu := make([]int64, len(in.order))
	var rec func(d int) bool
	rec = func(d int) bool {
		if d == len(in.order) {
			return emit(mu)
		}
		legs := in.legsAt[d]
		var cands []int64
		var candLeg int
		for i, ai := range legs {
			idx := in.atoms[ai].indexFor(d, in.counters)
			vals := idx.candidateValues(mu, in.atoms[ai].varPos, in.counters)
			if i == 0 || len(vals) < len(cands) {
				cands, candLeg = vals, ai
			}
			if len(cands) == 0 {
				return true
			}
		}
		for _, v := range cands {
			ok := true
			for _, ai := range legs {
				if ai == candLeg {
					continue
				}
				idx := in.atoms[ai].indexFor(d, in.counters)
				if !idx.contains(mu, in.atoms[ai].varPos, v, in.counters) {
					ok = false
					break
				}
			}
			if ok {
				mu[d] = v
				if !rec(d + 1) {
					return false
				}
			}
		}
		return true
	}
	rec(0)
}

// Order returns the variable order.
func (in *Instance) Order() []string { return in.order }

// Count runs GenericJoin count over q under its natural variable order.
func Count(q *cq.Query, db *relation.DB, counters *stats.Counters) (int64, error) {
	inst, err := Build(q, db, nil, counters)
	if err != nil {
		return 0, err
	}
	return inst.Count(), nil
}
