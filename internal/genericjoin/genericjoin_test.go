package genericjoin

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
)

func TestCountMatchesNaive(t *testing.T) {
	g := dataset.ErdosRenyi(24, 0.15, 61)
	db := g.DB(false)
	for _, q := range []*cq.Query{
		queries.Path(3), queries.Path(4), queries.Path(5),
		queries.Cycle(3), queries.Cycle(4), queries.Cycle(5),
		queries.Clique(4),
		queries.Lollipop(3, 2),
		queries.Random(5, 0.5, 3),
	} {
		want, err := naive.Count(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Count(q, db, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got != want {
			t.Errorf("%s: GenericJoin = %d, want %d", q, got, want)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := dataset.ErdosRenyi(18, 0.2, 62)
	db := g.DB(false)
	q := queries.Cycle(4)
	want, _ := naive.Count(q, db)
	vars := append([]string(nil), q.Vars()...)
	for trial := 0; trial < 6; trial++ {
		rng.Shuffle(len(vars), func(i, j int) { vars[i], vars[j] = vars[j], vars[i] })
		inst, err := Build(q, db, vars, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := inst.Count(); got != want {
			t.Fatalf("order %v: count = %d, want %d", vars, got, want)
		}
	}
}

func TestEvalMatchesNaive(t *testing.T) {
	g := dataset.ErdosRenyi(16, 0.25, 63)
	db := g.DB(false)
	q := queries.Path(4)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	inst.Eval(func(mu []int64) bool {
		got = append(got, append([]int64(nil), mu...))
		return true
	})
	sort.Slice(got, func(i, j int) bool { return relation.CompareTuples(got[i], got[j]) < 0 })
	want, _ := naive.Eval(q, db)
	if len(got) != len(want) {
		t.Fatalf("eval: %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if relation.CompareTuples(got[i], want[i]) != 0 {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvalEarlyStop(t *testing.T) {
	g := dataset.ErdosRenyi(20, 0.25, 64)
	db := g.DB(false)
	inst, err := Build(queries.Path(3), db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	inst.Eval(func([]int64) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("early stop emitted %d", n)
	}
}

func TestConstantsAndSelfLoops(t *testing.T) {
	db := relation.NewDB(relation.MustNew("E", 2, [][]int64{{1, 1}, {1, 2}, {2, 3}, {3, 1}}))
	q := cq.New(
		cq.Atom{Rel: "E", Args: []cq.Term{cq.C(1), cq.V("y")}},
		cq.NewAtom("E", "y", "z"),
	)
	want, _ := naive.Count(q, db)
	got, err := Count(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("constant query = %d, want %d", got, want)
	}
	self := cq.New(cq.Atom{Rel: "E", Args: []cq.Term{cq.V("x"), cq.V("x")}})
	got, err = Count(self, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("self loops = %d, want 1", got)
	}
}

func TestEmptyAndErrors(t *testing.T) {
	db := relation.NewDB(
		relation.MustNew("E", 2, [][]int64{{1, 2}}),
		relation.MustNew("F", 2, nil),
	)
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("F", "b", "c"))
	got, err := Count(q, db, nil)
	if err != nil || got != 0 {
		t.Fatalf("empty relation: %d, %v", got, err)
	}
	if _, err := Build(q, db, []string{"a", "b"}, nil); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Count(cq.New(cq.NewAtom("missing", "x", "y")), db, nil); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestCountsAccesses(t *testing.T) {
	g := dataset.ErdosRenyi(20, 0.2, 65)
	db := g.DB(false)
	var c stats.Counters
	if _, err := Count(queries.Cycle(4), db, &c); err != nil {
		t.Fatal(err)
	}
	if c.HashAccesses == 0 || c.TupleAccesses == 0 {
		t.Errorf("no accesses recorded: %+v", c)
	}
}
