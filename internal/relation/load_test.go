package relation

import (
	"reflect"
	"strings"
	"testing"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Encode("alice")
	b := d.Encode("bob")
	if a == b {
		t.Fatal("distinct strings share a code")
	}
	if again := d.Encode("alice"); again != a {
		t.Fatal("re-encoding changed the code")
	}
	if s, ok := d.Decode(a); !ok || s != "alice" {
		t.Fatalf("Decode = %q,%v", s, ok)
	}
	if _, ok := d.Decode(99); ok {
		t.Fatal("unknown code decoded")
	}
	if c, ok := d.Code("bob"); !ok || c != b {
		t.Fatal("Code lookup failed")
	}
	if _, ok := d.Code("carol"); ok {
		t.Fatal("Code invented an entry")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.MustDecode(b) != "bob" {
		t.Fatal("MustDecode wrong")
	}
	tup := d.EncodeTuple([]string{"alice", "carol"})
	if tup[0] != a || d.Len() != 3 {
		t.Fatalf("EncodeTuple = %v (len %d)", tup, d.Len())
	}
	back, err := d.DecodeTuple(tup)
	if err != nil || !reflect.DeepEqual(back, []string{"alice", "carol"}) {
		t.Fatalf("DecodeTuple = %v, %v", back, err)
	}
	if _, err := d.DecodeTuple([]int64{42}); err == nil {
		t.Fatal("DecodeTuple accepted unknown code")
	}
}

func TestMustDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDecode did not panic")
		}
	}()
	NewDict().MustDecode(0)
}

func TestLoadRelationWhitespace(t *testing.T) {
	input := "# header\n1 2\n3 4\n1 2\n"
	r, err := LoadRelation("E", strings.NewReader(input), LoadOptions{Comment: "#"})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 2}, {3, 4}}
	if !reflect.DeepEqual(r.Tuples(), want) {
		t.Fatalf("tuples = %v", r.Tuples())
	}
}

func TestLoadRelationCSVWithDict(t *testing.T) {
	input := "alice,db\nbob,os\nalice,db\n"
	d := NewDict()
	r, err := LoadRelation("teaches", strings.NewReader(input), LoadOptions{Comma: ',', Dict: d})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Arity() != 2 {
		t.Fatalf("len=%d arity=%d", r.Len(), r.Arity())
	}
	if d.Len() != 4 {
		t.Fatalf("dict len = %d", d.Len())
	}
	row, err := d.DecodeTuple(r.Tuple(0))
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != "alice" || row[1] != "db" {
		t.Fatalf("decoded = %v", row)
	}
}

func TestLoadRelationErrors(t *testing.T) {
	if _, err := LoadRelation("R", strings.NewReader("1 2\n3\n"), LoadOptions{}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := LoadRelation("R", strings.NewReader("a b\n"), LoadOptions{}); err == nil {
		t.Error("non-numeric fields accepted without Dict")
	}
	if _, err := LoadRelation("R", strings.NewReader("1 2 3\n"), LoadOptions{Arity: 2}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := LoadRelation("R", strings.NewReader(""), LoadOptions{}); err == nil {
		t.Error("empty input without arity accepted")
	}
	r, err := LoadRelation("R", strings.NewReader("# only comments\n"), LoadOptions{Comment: "#", Arity: 2})
	if err != nil || r.Len() != 0 {
		t.Errorf("comment-only input: %v, len %d", err, r.Len())
	}
}
