package relation

import (
	"fmt"
	"sort"
)

// DB is a database: a set of relations addressed by name. The zero value
// is empty and ready to use via Put.
type DB struct {
	rels map[string]*Relation
}

// NewDB returns a database holding the given relations. Later relations
// with duplicate names replace earlier ones.
func NewDB(rels ...*Relation) *DB {
	db := &DB{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		db.rels[r.Name()] = r
	}
	return db
}

// Put inserts or replaces a relation.
func (db *DB) Put(r *Relation) {
	if db.rels == nil {
		db.rels = make(map[string]*Relation)
	}
	db.rels[r.Name()] = r
}

// Get returns the named relation, or an error naming the missing relation.
func (db *DB) Get(name string) (*Relation, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("database has no relation %q", name)
	}
	return r, nil
}

// Names returns the relation names in sorted order.
func (db *DB) Names() []string {
	names := make([]string, 0, len(db.rels))
	for n := range db.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of relations.
func (db *DB) Len() int { return len(db.rels) }
