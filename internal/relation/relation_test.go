package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedupes(t *testing.T) {
	r := MustNew("R", 2, [][]int64{{3, 1}, {1, 2}, {3, 1}, {1, 1}, {1, 2}})
	want := [][]int64{{1, 1}, {1, 2}, {3, 1}}
	if got := r.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tuples = %v, want %v", got, want)
	}
	if r.Len() != 3 || r.Arity() != 2 || r.Name() != "R" {
		t.Fatalf("metadata wrong: len=%d arity=%d name=%q", r.Len(), r.Arity(), r.Name())
	}
}

func TestNewRejectsBadTuples(t *testing.T) {
	if _, err := New("R", 2, [][]int64{{1, 2, 3}}); err == nil {
		t.Fatal("want error for wrong-length tuple")
	}
	if _, err := New("R", -1, nil); err == nil {
		t.Fatal("want error for negative arity")
	}
}

func TestContains(t *testing.T) {
	r := MustNew("R", 2, [][]int64{{1, 2}, {2, 3}, {5, 0}})
	for _, tc := range []struct {
		tup  []int64
		want bool
	}{
		{[]int64{1, 2}, true},
		{[]int64{2, 3}, true},
		{[]int64{5, 0}, true},
		{[]int64{0, 0}, false},
		{[]int64{5, 1}, false},
		{[]int64{1}, false},
	} {
		if got := r.Contains(tc.tup); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.tup, got, tc.want)
		}
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b []int64
		want int
	}{
		{[]int64{1, 2}, []int64{1, 2}, 0},
		{[]int64{1, 2}, []int64{1, 3}, -1},
		{[]int64{2, 0}, []int64{1, 9}, 1},
		{nil, nil, 0},
	}
	for _, tc := range cases {
		if got := CompareTuples(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareTuples(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPermute(t *testing.T) {
	r := MustNew("R", 3, [][]int64{{1, 2, 3}, {4, 5, 6}})
	p, err := r.Permute([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{3, 1, 2}, {6, 4, 5}}
	if got := p.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("permuted = %v, want %v", got, want)
	}
	if _, err := r.Permute([]int{0, 0, 1}); err == nil {
		t.Fatal("want error for repeated permutation index")
	}
	if _, err := r.Permute([]int{0, 1}); err == nil {
		t.Fatal("want error for short permutation")
	}
}

func TestProjectDedupes(t *testing.T) {
	r := MustNew("R", 2, [][]int64{{1, 7}, {1, 8}, {2, 7}})
	p, err := r.Project([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1}, {2}}
	if got := p.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("projected = %v, want %v", got, want)
	}
	if _, err := r.Project([]int{2}); err == nil {
		t.Fatal("want error for out-of-range column")
	}
}

func TestSelect(t *testing.T) {
	r := MustNew("R", 3, [][]int64{{1, 1, 5}, {1, 2, 5}, {2, 2, 2}, {3, 3, 3}})
	s, err := r.Select(map[int]int64{2: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("const select kept %d tuples, want 2", s.Len())
	}
	eq, err := r.Select(nil, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 1, 5}, {2, 2, 2}, {3, 3, 3}}
	if got := eq.Tuples(); !reflect.DeepEqual(got, want) {
		t.Fatalf("equality select = %v, want %v", got, want)
	}
	both, err := r.Select(map[int]int64{2: 2}, [][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if both.Len() != 1 || both.Tuple(0)[0] != 2 {
		t.Fatalf("combined select = %v", both.Tuples())
	}
}

func TestDistinctCount(t *testing.T) {
	r := MustNew("R", 2, [][]int64{{1, 7}, {1, 8}, {2, 7}})
	if got := r.DistinctCount(0); got != 2 {
		t.Errorf("DistinctCount(0) = %d, want 2", got)
	}
	if got := r.DistinctCount(1); got != 2 {
		t.Errorf("DistinctCount(1) = %d, want 2", got)
	}
}

func TestZeroAryRelation(t *testing.T) {
	empty := NewBuilder("G", 0).Build()
	if empty.Len() != 0 {
		t.Fatalf("empty 0-ary relation has Len %d", empty.Len())
	}
	b := NewBuilder("G", 0)
	b.Add()
	nonEmpty := b.Build()
	if nonEmpty.Len() != 1 {
		t.Fatalf("non-empty 0-ary relation has Len %d, want 1", nonEmpty.Len())
	}
}

func TestRenameSharesData(t *testing.T) {
	r := MustNew("R", 1, [][]int64{{1}, {2}})
	s := r.Rename("S")
	if s.Name() != "S" || s.Len() != 2 {
		t.Fatalf("rename produced %q with %d tuples", s.Name(), s.Len())
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		got := DecodeKey(Key(vals), len(vals))
		return reflect.DeepEqual(got, vals) || (len(vals) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyInjective(t *testing.T) {
	f := func(a, b []int64) bool {
		if len(a) != len(b) {
			return true // only equal-length keys are ever compared
		}
		if Key(a) == Key(b) {
			return reflect.DeepEqual(a, b) || len(a) == 0
		}
		return !reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build is idempotent — rebuilding from a relation's own tuples
// reproduces it exactly, and the output is always sorted and unique.
func TestBuilderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		arity := 1 + rng.Intn(3)
		n := rng.Intn(60)
		b := NewBuilder("R", arity)
		for i := 0; i < n; i++ {
			row := make([]int64, arity)
			for j := range row {
				row[j] = int64(rng.Intn(5))
			}
			b.Add(row...)
		}
		r := b.Build()
		for i := 1; i < r.Len(); i++ {
			if CompareTuples(r.Tuple(i-1), r.Tuple(i)) >= 0 {
				t.Fatalf("trial %d: not strictly sorted at %d: %v vs %v",
					trial, i, r.Tuple(i-1), r.Tuple(i))
			}
		}
		again, err := New("R", arity, r.Tuples())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Tuples(), r.Tuples()) {
			t.Fatalf("trial %d: rebuild changed tuples", trial)
		}
	}
}

func TestDBOperations(t *testing.T) {
	db := NewDB(MustNew("A", 1, [][]int64{{1}}), MustNew("B", 1, nil))
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	if got := db.Names(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("Names = %v", got)
	}
	if _, err := db.Get("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("missing"); err == nil {
		t.Fatal("want error for missing relation")
	}
	db.Put(MustNew("A", 1, [][]int64{{1}, {2}}))
	a, _ := db.Get("A")
	if a.Len() != 2 {
		t.Fatal("Put did not replace relation")
	}
	var zero DB
	zero.Put(MustNew("C", 1, nil))
	if zero.Len() != 1 {
		t.Fatal("zero-value DB unusable")
	}
}
