package relation

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadOptions configures the delimited-text relation reader.
type LoadOptions struct {
	// Comma is the field delimiter; 0 means "any run of whitespace"
	// (SNAP-style). Use '\t' or ',' for TSV/CSV without quoting.
	Comma rune
	// Comment lines start with this prefix and are skipped ("" disables).
	Comment string
	// Arity, when > 0, requires exactly this many fields per row;
	// otherwise the first data row fixes the arity.
	Arity int
	// Dict, when non-nil, dictionary-encodes every field; otherwise
	// fields must parse as int64.
	Dict *Dict
}

// LoadRelation reads a relation from delimited text: one tuple per line.
// It returns the sorted, deduplicated relation.
func LoadRelation(name string, r io.Reader, opts LoadOptions) (*Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	arity := opts.Arity
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if opts.Comment != "" && strings.HasPrefix(text, opts.Comment) {
			continue
		}
		var fields []string
		if opts.Comma == 0 {
			fields = strings.Fields(text)
		} else {
			fields = strings.Split(text, string(opts.Comma))
			for i := range fields {
				fields[i] = strings.TrimSpace(fields[i])
			}
		}
		if arity == 0 {
			arity = len(fields)
		}
		if len(fields) != arity {
			return nil, fmt.Errorf("relation %s: line %d has %d fields, want %d", name, line, len(fields), arity)
		}
		if b == nil {
			b = NewBuilder(name, arity)
		}
		row := make([]int64, arity)
		for i, f := range fields {
			if opts.Dict != nil {
				row[i] = opts.Dict.Encode(f)
				continue
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relation %s: line %d field %d: %v", name, line, i+1, err)
			}
			row[i] = v
		}
		b.Add(row...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		if arity == 0 {
			return nil, fmt.Errorf("relation %s: no data and no arity given", name)
		}
		b = NewBuilder(name, arity)
	}
	return b.Build(), nil
}
