// Package relation implements the integer relations underlying the join
// engines: flat, lexicographically sorted, duplicate-free tuple storage
// with selection and projection, plus the database (a named collection of
// relations) that queries run against.
//
// All attribute values are int64, matching the graph workloads of the paper
// (SNAP edge lists, IMDB id pairs). Tuples are stored in one flat []int64
// with a fixed arity stride, which gives the trie builder (package trie)
// contiguous, cache-friendly input — the Go analogue of the paper's
// "cascading vectors".
package relation

import (
	"fmt"
	"sort"
)

// Relation is an immutable, sorted, duplicate-free set of integer tuples.
// The zero value is an empty relation of arity 0; use New or a Builder to
// construct useful relations.
type Relation struct {
	name  string
	arity int
	data  []int64 // len(data) == arity * Len()
}

// New builds a relation from the given tuples. Tuples are copied, sorted
// lexicographically and deduplicated. All tuples must have length arity.
func New(name string, arity int, tuples [][]int64) (*Relation, error) {
	if arity < 0 {
		return nil, fmt.Errorf("relation %s: negative arity %d", name, arity)
	}
	b := NewBuilder(name, arity)
	for i, t := range tuples {
		if len(t) != arity {
			return nil, fmt.Errorf("relation %s: tuple %d has length %d, want %d", name, i, len(t), arity)
		}
		b.Add(t...)
	}
	return b.Build(), nil
}

// FromSorted wraps an already lexicographically sorted, duplicate-free
// flat tuple array as a relation without copying — the open-from-disk
// twin of New, used to alias a verified on-disk snapshot (possibly an
// mmap'd file) as a live relation. len(data) must be a multiple of
// arity; ordering and uniqueness are the caller's contract (the storage
// layer validates them before trusting a file). The caller must not
// mutate data afterwards: relations are immutable.
func FromSorted(name string, arity int, data []int64) (*Relation, error) {
	if arity <= 0 {
		return nil, fmt.Errorf("relation %s: non-positive arity %d", name, arity)
	}
	if len(data)%arity != 0 {
		return nil, fmt.Errorf("relation %s: %d values is not a whole number of arity-%d tuples", name, len(data), arity)
	}
	return &Relation{name: name, arity: arity, data: data}, nil
}

// MustNew is New but panics on error; intended for tests and examples.
func MustNew(name string, arity int, tuples [][]int64) *Relation {
	r, err := New(name, arity, tuples)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if r.arity == 0 {
		if len(r.data) > 0 {
			return 1 // the empty tuple, present once
		}
		return 0
	}
	return len(r.data) / r.arity
}

// Tuple returns the i-th tuple as a read-only slice view into the backing
// array. Callers must not modify it.
func (r *Relation) Tuple(i int) []int64 {
	return r.data[i*r.arity : (i+1)*r.arity]
}

// Data exposes the flat backing array (read-only) for the trie builder.
func (r *Relation) Data() []int64 { return r.data }

// Tuples materializes all tuples as a fresh [][]int64. Intended for tests
// and small relations.
func (r *Relation) Tuples() [][]int64 {
	out := make([][]int64, r.Len())
	for i := range out {
		t := make([]int64, r.arity)
		copy(t, r.Tuple(i))
		out[i] = t
	}
	return out
}

// Contains reports whether the relation contains the given tuple, using
// binary search.
func (r *Relation) Contains(t []int64) bool {
	if len(t) != r.arity {
		return false
	}
	n := r.Len()
	i := sort.Search(n, func(i int) bool {
		return CompareTuples(r.Tuple(i), t) >= 0
	})
	return i < n && CompareTuples(r.Tuple(i), t) == 0
}

// Rename returns a relation with the same tuples under a new name. The
// backing data is shared (relations are immutable).
func (r *Relation) Rename(name string) *Relation {
	return &Relation{name: name, arity: r.arity, data: r.data}
}

// CompareTuples compares two equal-length tuples lexicographically,
// returning -1, 0 or 1.
func CompareTuples(a, b []int64) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Builder accumulates tuples and produces a sorted, deduplicated Relation.
type Builder struct {
	name  string
	arity int
	data  []int64
	added int
}

// NewBuilder returns a Builder for relations with the given name and arity.
func NewBuilder(name string, arity int) *Builder {
	return &Builder{name: name, arity: arity}
}

// Add appends one tuple. It panics if the number of values differs from the
// builder's arity (a programming error, not a data error).
func (b *Builder) Add(vals ...int64) {
	if len(vals) != b.arity {
		panic(fmt.Sprintf("relation %s: Add got %d values, want %d", b.name, len(vals), b.arity))
	}
	b.data = append(b.data, vals...)
	b.added++
}

// Len returns the number of tuples added so far (before deduplication).
func (b *Builder) Len() int { return b.added }

// Build sorts, deduplicates and returns the relation. The builder must not
// be reused afterwards.
func (b *Builder) Build() *Relation {
	if b.arity == 0 {
		// A 0-ary relation is either empty or holds the single empty tuple.
		r := &Relation{name: b.name, arity: 0}
		if b.added > 0 {
			r.data = []int64{1} // sentinel marking "non-empty"
		}
		return r
	}
	n := len(b.data) / b.arity
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	k := b.arity
	sort.Slice(idx, func(x, y int) bool {
		return CompareTuples(b.data[idx[x]*k:idx[x]*k+k], b.data[idx[y]*k:idx[y]*k+k]) < 0
	})
	out := make([]int64, 0, len(b.data))
	for j, i := range idx {
		t := b.data[i*k : i*k+k]
		if j > 0 {
			prev := out[len(out)-k:]
			if CompareTuples(prev, t) == 0 {
				continue
			}
		}
		out = append(out, t...)
	}
	return &Relation{name: b.name, arity: b.arity, data: out}
}
