package relation

import "fmt"

// Dict is a string dictionary: it maps attribute strings to dense int64
// codes and back, letting string-valued data (names, labels, URIs) flow
// through the integer-only join engines. Codes are assigned in first-
// appearance order starting at 0.
type Dict struct {
	codes map[string]int64
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int64)}
}

// Encode returns the code for s, assigning a fresh one if needed.
func (d *Dict) Encode(s string) int64 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := int64(len(d.names))
	d.codes[s] = c
	d.names = append(d.names, s)
	return c
}

// Code returns the code for s without assigning, and whether it exists.
func (d *Dict) Code(s string) (int64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Decode returns the string for a code; ok is false for unknown codes.
func (d *Dict) Decode(c int64) (string, bool) {
	if c < 0 || c >= int64(len(d.names)) {
		return "", false
	}
	return d.names[c], true
}

// MustDecode is Decode but panics on unknown codes (engine outputs are
// always in-range when the inputs were encoded with the same Dict).
func (d *Dict) MustDecode(c int64) string {
	s, ok := d.Decode(c)
	if !ok {
		panic(fmt.Sprintf("relation: code %d not in dictionary (size %d)", c, len(d.names)))
	}
	return s
}

// Len returns the number of distinct strings encoded.
func (d *Dict) Len() int { return len(d.names) }

// EncodeTuple encodes a string tuple in place-order into a fresh []int64.
func (d *Dict) EncodeTuple(fields []string) []int64 {
	out := make([]int64, len(fields))
	for i, f := range fields {
		out[i] = d.Encode(f)
	}
	return out
}

// DecodeTuple decodes an engine output tuple back to strings.
func (d *Dict) DecodeTuple(vals []int64) ([]string, error) {
	out := make([]string, len(vals))
	for i, v := range vals {
		s, ok := d.Decode(v)
		if !ok {
			return nil, fmt.Errorf("relation: code %d not in dictionary", v)
		}
		out[i] = s
	}
	return out, nil
}
