package relation

import (
	"fmt"
	"sync"
)

// Version is one immutable snapshot of a mutable relation: the full
// relation at this version plus its lineage relative to the last
// compacted base. The invariants Rel = (Base − Dels) ∪ Adds,
// Adds ∩ Base = ∅ and Dels ⊆ Base always hold, which is what lets a
// trie registry derive this version's index from the base version's by
// a copy-on-write patch instead of a full rebuild.
type Version struct {
	// Rel is the relation at this version. Queries compile against it
	// like any other immutable relation.
	Rel *Relation
	// Base is the last compacted snapshot; equal to Rel (and Adds/Dels
	// empty) right after construction or compaction.
	Base *Relation
	// Adds holds the tuples present in Rel but not in Base.
	Adds *Relation
	// Dels holds the tuples present in Base but not in Rel.
	Dels *Relation
	// Num increases by one per applied (non-no-op) delta.
	Num uint64
}

// Patched reports whether this version differs from its base, i.e.
// whether an index over it can be derived by patching the base index.
func (v Version) Patched() bool {
	return v.Adds.Len() > 0 || v.Dels.Len() > 0
}

// DeltaSize is the cumulative distance from the base: |Adds| + |Dels|.
func (v Version) DeltaSize() int { return v.Adds.Len() + v.Dels.Len() }

// DefaultCompactFraction is the patch-vs-rebuild crossover: once the
// cumulative delta exceeds this fraction of the base size, ApplyDelta
// compacts — the new version becomes its own base and downstream index
// caches fall back to one full rebuild. Below it, patched indices win:
// the overlay stays small next to the shared base arrays.
const DefaultCompactFraction = 0.25

// Store is a mutable, versioned relation: an immutable Relation chain
// advanced by ApplyDelta. Readers take a Version (a consistent
// snapshot) and are never affected by later deltas; the Store itself is
// safe for concurrent use.
type Store struct {
	mu          sync.Mutex
	cur         Version
	compactFrac float64
}

// NewStore wraps base as version 0 of a mutable relation.
func NewStore(base *Relation) *Store {
	empty := func() *Relation { return &Relation{name: base.name, arity: base.arity} }
	return &Store{
		cur: Version{
			Rel:  base,
			Base: base,
			Adds: empty(),
			Dels: empty(),
		},
		compactFrac: DefaultCompactFraction,
	}
}

// NewStoreAt wraps base as version num of a mutable relation — the
// restart path: a persistent engine that reloads a relation snapshot
// stamped with its version number resumes the version chain where the
// previous process left it, so clients (and plan caches keyed by version
// vectors) never see version numbers regress across a restart.
func NewStoreAt(base *Relation, num uint64) *Store {
	s := NewStore(base)
	s.cur.Num = num
	return s
}

// SetCompactFraction overrides the patch-vs-rebuild crossover (see
// DefaultCompactFraction). f <= 0 compacts on every delta (every
// version is its own base); f >= 1 tolerates overlays as large as the
// base itself.
func (s *Store) SetCompactFraction(f float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactFrac = f
}

// Version returns the current snapshot.
func (s *Store) Version() Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Name returns the relation name.
func (s *Store) Name() string { return s.cur.Rel.Name() }

// ApplyDelta applies deletes then inserts to the current version and
// returns the new snapshot. Tuples deleted but absent, or inserted but
// already present, are ignored (set semantics); a delta with no net
// effect returns the current version unchanged with changed == false,
// preserving the Rel pointer so index caches keep hitting.
//
// A delta of k tuples costs a constant number of O(n + k) linear
// merges (apply, no-op detection, lineage diffs against the base); the
// expensive part of index maintenance — rebuilding tries — is avoided
// downstream: while the cumulative delta stays under the compact
// fraction the new version carries its base lineage, and a registry
// derives the new tries by O(k · depth)-node copy-on-write patches.
// Crossing the fraction compacts the version (new base, empty delta),
// signalling caches to rebuild once.
func (s *Store) ApplyDelta(inserts, deletes [][]int64) (v Version, changed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur
	ins, err := New(cur.Rel.name, cur.Rel.arity, inserts)
	if err != nil {
		return cur, false, fmt.Errorf("store %s: inserts: %w", cur.Rel.name, err)
	}
	del, err := New(cur.Rel.name, cur.Rel.arity, deletes)
	if err != nil {
		return cur, false, fmt.Errorf("store %s: deletes: %w", cur.Rel.name, err)
	}

	newRel := cur.Rel.Subtract(del).Union(ins)
	if newRel.Len() == cur.Rel.Len() && cur.Rel.Subtract(newRel).Len() == 0 {
		return cur, false, nil // net no-op: keep the pointer, caches stay warm
	}

	next := Version{
		Rel:  newRel,
		Base: cur.Base,
		Adds: newRel.Subtract(cur.Base),
		Dels: cur.Base.Subtract(newRel),
		Num:  cur.Num + 1,
	}
	if float64(next.DeltaSize()) > s.compactFrac*float64(cur.Base.Len()) {
		empty := &Relation{name: newRel.name, arity: newRel.arity}
		next.Base, next.Adds, next.Dels = newRel, empty, empty
	}
	s.cur = next
	return next, true, nil
}

// Union returns the set union of two relations with the same arity
// (linear merge of the sorted backing arrays). The receiver's name is
// kept. It panics on arity mismatch (a programming error: deltas are
// arity-checked at the boundary).
func (r *Relation) Union(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation %s: union with arity %d, want %d", r.name, o.arity, r.arity))
	}
	if o.Len() == 0 {
		return r
	}
	if r.Len() == 0 {
		return o.Rename(r.name)
	}
	k := r.arity
	out := make([]int64, 0, len(r.data)+len(o.data))
	i, j := 0, r.Len()
	oi, on := 0, o.Len()
	for i < j && oi < on {
		switch CompareTuples(r.Tuple(i), o.Tuple(oi)) {
		case -1:
			out = append(out, r.Tuple(i)...)
			i++
		case 1:
			out = append(out, o.Tuple(oi)...)
			oi++
		default:
			out = append(out, r.Tuple(i)...)
			i++
			oi++
		}
	}
	out = append(out, r.data[i*k:]...)
	out = append(out, o.data[oi*k:]...)
	return &Relation{name: r.name, arity: k, data: out}
}

// Subtract returns the tuples of r not present in o (same arity; linear
// merge). The receiver's name is kept.
func (r *Relation) Subtract(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation %s: subtract with arity %d, want %d", r.name, o.arity, r.arity))
	}
	if r.Len() == 0 || o.Len() == 0 {
		return r
	}
	k := r.arity
	out := make([]int64, 0, len(r.data))
	i, n := 0, r.Len()
	oi, on := 0, o.Len()
	for i < n && oi < on {
		switch CompareTuples(r.Tuple(i), o.Tuple(oi)) {
		case -1:
			out = append(out, r.Tuple(i)...)
			i++
		case 1:
			oi++
		default:
			i++
			oi++
		}
	}
	out = append(out, r.data[i*k:]...)
	return &Relation{name: r.name, arity: k, data: out}
}

// Intersect returns the tuples present in both r and o (same arity;
// linear merge). The receiver's name is kept.
func (r *Relation) Intersect(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation %s: intersect with arity %d, want %d", r.name, o.arity, r.arity))
	}
	if r.Len() == 0 || o.Len() == 0 {
		return &Relation{name: r.name, arity: r.arity}
	}
	out := make([]int64, 0)
	i, n := 0, r.Len()
	oi, on := 0, o.Len()
	for i < n && oi < on {
		switch CompareTuples(r.Tuple(i), o.Tuple(oi)) {
		case -1:
			i++
		case 1:
			oi++
		default:
			out = append(out, r.Tuple(i)...)
			i++
			oi++
		}
	}
	return &Relation{name: r.name, arity: r.arity, data: out}
}
