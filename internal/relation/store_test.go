package relation

import (
	"math/rand"
	"testing"
)

func tuplesOf(r *Relation) map[[2]int64]bool {
	m := make(map[[2]int64]bool)
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		m[[2]int64{t[0], t[1]}] = true
	}
	return m
}

func TestSetOps(t *testing.T) {
	a := MustNew("E", 2, [][]int64{{1, 2}, {2, 3}, {3, 4}})
	b := MustNew("E", 2, [][]int64{{2, 3}, {4, 5}})

	u := a.Union(b)
	if u.Len() != 4 || !u.Contains([]int64{4, 5}) || !u.Contains([]int64{1, 2}) {
		t.Fatalf("union = %v", u.Tuples())
	}
	s := a.Subtract(b)
	if s.Len() != 2 || s.Contains([]int64{2, 3}) {
		t.Fatalf("subtract = %v", s.Tuples())
	}
	x := a.Intersect(b)
	if x.Len() != 1 || !x.Contains([]int64{2, 3}) {
		t.Fatalf("intersect = %v", x.Tuples())
	}
	// Empty operands short-circuit without copying.
	empty := MustNew("E", 2, nil)
	if a.Union(empty) != a || a.Subtract(empty) != a {
		t.Fatal("empty operand should return the receiver")
	}
	if empty.Intersect(a).Len() != 0 {
		t.Fatal("intersect with empty should be empty")
	}
}

func TestStoreApplyDelta(t *testing.T) {
	base := MustNew("E", 2, [][]int64{{1, 2}, {2, 3}, {3, 1}, {4, 5}})
	s := NewStore(base)
	s.SetCompactFraction(10) // keep lineage through the whole test

	v0 := s.Version()
	if v0.Num != 0 || v0.Rel != base || v0.Patched() {
		t.Fatalf("fresh store version = %+v", v0)
	}

	v1, changed, err := s.ApplyDelta([][]int64{{5, 6}}, [][]int64{{4, 5}})
	if err != nil || !changed {
		t.Fatalf("ApplyDelta: changed=%v err=%v", changed, err)
	}
	if v1.Num != 1 || v1.Rel.Len() != 4 {
		t.Fatalf("v1 = %+v (len %d)", v1, v1.Rel.Len())
	}
	if !v1.Rel.Contains([]int64{5, 6}) || v1.Rel.Contains([]int64{4, 5}) {
		t.Fatalf("v1 tuples = %v", v1.Rel.Tuples())
	}
	if v1.Base != base || v1.Adds.Len() != 1 || v1.Dels.Len() != 1 || !v1.Patched() {
		t.Fatalf("v1 lineage: base ok=%v adds=%d dels=%d", v1.Base == base, v1.Adds.Len(), v1.Dels.Len())
	}

	// Re-inserting a deleted tuple cancels the delete in the lineage.
	v2, changed, err := s.ApplyDelta([][]int64{{4, 5}}, nil)
	if err != nil || !changed {
		t.Fatalf("re-insert: changed=%v err=%v", changed, err)
	}
	if v2.Dels.Len() != 0 || v2.Adds.Len() != 1 {
		t.Fatalf("v2 lineage adds=%d dels=%d, want 1/0", v2.Adds.Len(), v2.Dels.Len())
	}

	// No-op deltas do not bump the version or replace the relation.
	v3, changed, err := s.ApplyDelta([][]int64{{4, 5}}, [][]int64{{9, 9}})
	if err != nil || changed {
		t.Fatalf("no-op delta: changed=%v err=%v", changed, err)
	}
	if v3.Num != v2.Num || v3.Rel != v2.Rel {
		t.Fatal("no-op delta replaced the version")
	}

	// Deletes-then-inserts of the same tuple keep it (delete first).
	v4, changed, err := s.ApplyDelta([][]int64{{1, 2}}, [][]int64{{1, 2}})
	if err != nil || changed {
		t.Fatalf("delete+insert same tuple: changed=%v err=%v", changed, err)
	}
	if !v4.Rel.Contains([]int64{1, 2}) {
		t.Fatal("tuple deleted despite simultaneous insert")
	}

	// Arity mismatches are data errors, not panics.
	if _, _, err := s.ApplyDelta([][]int64{{1}}, nil); err == nil {
		t.Fatal("bad-arity insert accepted")
	}
}

func TestStoreCompaction(t *testing.T) {
	base := MustNew("E", 2, [][]int64{{1, 2}, {2, 3}, {3, 4}, {4, 5}})
	s := NewStore(base) // default fraction: 0.25 of 4 tuples => 1 delta tuple tolerated

	v1, _, err := s.ApplyDelta([][]int64{{9, 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Patched() {
		t.Fatalf("one-tuple delta compacted early: %+v", v1)
	}
	v2, _, err := s.ApplyDelta([][]int64{{8, 8}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Patched() || v2.Base != v2.Rel {
		t.Fatalf("crossover delta did not compact: adds=%d dels=%d", v2.Adds.Len(), v2.Dels.Len())
	}
	// After compaction the next small delta patches against the new base.
	v3, _, err := s.ApplyDelta(nil, [][]int64{{9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Patched() || v3.Base != v2.Rel {
		t.Fatalf("post-compaction delta lineage wrong: %+v", v3)
	}
}

// TestStoreRandomizedAgainstMap fuzzes ApplyDelta against a plain map
// model: after every delta the store's relation, and the reconstruction
// (Base − Dels) ∪ Adds, must both equal the model exactly.
func TestStoreRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := MustNew("E", 2, [][]int64{{0, 1}, {1, 2}, {2, 0}})
	s := NewStore(base)
	model := tuplesOf(base)

	for step := 0; step < 200; step++ {
		var ins, del [][]int64
		for i := 0; i < rng.Intn(4); i++ {
			ins = append(ins, []int64{int64(rng.Intn(8)), int64(rng.Intn(8))})
		}
		for i := 0; i < rng.Intn(4); i++ {
			del = append(del, []int64{int64(rng.Intn(8)), int64(rng.Intn(8))})
		}
		v, _, err := s.ApplyDelta(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range del {
			delete(model, [2]int64{d[0], d[1]})
		}
		for _, a := range ins {
			model[[2]int64{a[0], a[1]}] = true
		}
		if got := tuplesOf(v.Rel); len(got) != len(model) {
			t.Fatalf("step %d: store has %d tuples, model %d", step, len(got), len(model))
		}
		for tup := range model {
			if !v.Rel.Contains([]int64{tup[0], tup[1]}) {
				t.Fatalf("step %d: missing %v", step, tup)
			}
		}
		recon := v.Base.Subtract(v.Dels).Union(v.Adds)
		if recon.Len() != v.Rel.Len() || recon.Subtract(v.Rel).Len() != 0 {
			t.Fatalf("step %d: lineage does not reconstruct the relation", step)
		}
		if v.Adds.Intersect(v.Base).Len() != 0 || v.Dels.Subtract(v.Base).Len() != 0 {
			t.Fatalf("step %d: lineage invariants broken", step)
		}
	}
}
