package relation

import "fmt"

// Permute returns a relation whose tuples are the input's with columns
// reordered so that output column i is input column perm[i]. The result is
// re-sorted and deduplicated (projection below may introduce duplicates;
// permutation alone cannot, but we reuse the builder for uniformity).
func (r *Relation) Permute(perm []int) (*Relation, error) {
	if len(perm) != r.arity {
		return nil, fmt.Errorf("relation %s: permutation length %d, arity %d", r.name, len(perm), r.arity)
	}
	seen := make([]bool, r.arity)
	identity := true
	for j, p := range perm {
		if p < 0 || p >= r.arity || seen[p] {
			return nil, fmt.Errorf("relation %s: invalid permutation %v", r.name, perm)
		}
		seen[p] = true
		if p != j {
			identity = false
		}
	}
	if identity {
		// Relations are immutable, so the no-op permutation is the
		// relation itself — the common case for atoms whose argument
		// order already follows the global variable order.
		return r, nil
	}
	b := NewBuilder(r.name, r.arity)
	row := make([]int64, r.arity)
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for j, p := range perm {
			row[j] = t[p]
		}
		b.Add(row...)
	}
	return b.Build(), nil
}

// Project returns the relation projected onto the given columns (which may
// repeat or reorder); the result is sorted and deduplicated.
func (r *Relation) Project(cols []int) (*Relation, error) {
	for _, c := range cols {
		if c < 0 || c >= r.arity {
			return nil, fmt.Errorf("relation %s: project column %d out of range (arity %d)", r.name, c, r.arity)
		}
	}
	b := NewBuilder(r.name, len(cols))
	row := make([]int64, len(cols))
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for j, c := range cols {
			row[j] = t[c]
		}
		b.Add(row...)
	}
	return b.Build(), nil
}

// Select returns the tuples satisfying all constant bindings (column ->
// value) and all equality classes (sets of columns required pairwise
// equal). Schema is unchanged.
func (r *Relation) Select(consts map[int]int64, equal [][]int) (*Relation, error) {
	for c := range consts {
		if c < 0 || c >= r.arity {
			return nil, fmt.Errorf("relation %s: select column %d out of range", r.name, c)
		}
	}
	for _, cls := range equal {
		for _, c := range cls {
			if c < 0 || c >= r.arity {
				return nil, fmt.Errorf("relation %s: equality column %d out of range", r.name, c)
			}
		}
	}
	b := NewBuilder(r.name, r.arity)
tuples:
	for i := 0; i < r.Len(); i++ {
		t := r.Tuple(i)
		for c, v := range consts {
			if t[c] != v {
				continue tuples
			}
		}
		for _, cls := range equal {
			for _, c := range cls[1:] {
				if t[c] != t[cls[0]] {
					continue tuples
				}
			}
		}
		b.Add(t...)
	}
	return b.Build(), nil
}

// DistinctCount returns the number of distinct values in a column.
func (r *Relation) DistinctCount(col int) int {
	seen := make(map[int64]struct{})
	for i := 0; i < r.Len(); i++ {
		seen[r.Tuple(i)[col]] = struct{}{}
	}
	return len(seen)
}
