package relation

// Key encodes a tuple as a string usable as a map key. The encoding is
// 8 little-endian bytes per value, so it is injective for equal-length
// tuples; engines only ever mix keys of a single schema per map.
func Key(vals []int64) string {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		u := uint64(v)
		off := 8 * i
		buf[off+0] = byte(u)
		buf[off+1] = byte(u >> 8)
		buf[off+2] = byte(u >> 16)
		buf[off+3] = byte(u >> 24)
		buf[off+4] = byte(u >> 32)
		buf[off+5] = byte(u >> 40)
		buf[off+6] = byte(u >> 48)
		buf[off+7] = byte(u >> 56)
	}
	return string(buf)
}

// DecodeKey inverts Key given the number of values.
func DecodeKey(key string, n int) []int64 {
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		off := 8 * i
		u := uint64(key[off+0]) |
			uint64(key[off+1])<<8 |
			uint64(key[off+2])<<16 |
			uint64(key[off+3])<<24 |
			uint64(key[off+4])<<32 |
			uint64(key[off+5])<<40 |
			uint64(key[off+6])<<48 |
			uint64(key[off+7])<<56
		vals[i] = int64(u)
	}
	return vals
}
