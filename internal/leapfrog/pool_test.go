package leapfrog

import (
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/stats"
)

// poolTestInstance compiles a fixed skewed workload with no counters
// (nil sinks make one instance safe for concurrent executions).
func poolTestInstance(t testing.TB, q *cq.Query) *Instance {
	t.Helper()
	db := dataset.TriadicPA(160, 3, 0.5, 77).DB(false)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestPooledRunnersConcurrent hammers one instance's runner pool from
// many goroutines mixing sequential counts, parallel counts and
// evaluations — the -race run of the pooled frogs the CI race job
// executes. Every execution must see a fresh-equivalent runner: same
// count, no cross-talk through recycled cursors or permuted frog legs.
func TestPooledRunnersConcurrent(t *testing.T) {
	q := queries.Cycle(4)
	inst := poolTestInstance(t, q)
	want := Count(inst)
	if want == 0 {
		t.Fatal("workload counts zero matches; test would prove nothing")
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 3 {
				case 0:
					if got := Count(inst); got != want {
						t.Errorf("pooled Count = %d, want %d", got, want)
						return
					}
				case 1:
					if got := ParallelCount(inst, 3); got != want {
						t.Errorf("pooled ParallelCount = %d, want %d", got, want)
						return
					}
				default:
					var n int64
					Eval(inst, func(mu []int64) bool { n++; return true })
					if n != want {
						t.Errorf("pooled Eval enumerated %d, want %d", n, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPooledRunnerAccountingRebind checks that a pooled runner rebinds
// its accounting sink on reuse: two same-instance executions with
// different counters must charge identical totals to each, with
// nothing leaking from one sink to the other through the recycled
// iterators.
func TestPooledRunnerAccountingRebind(t *testing.T) {
	q := queries.Path(3)
	db := dataset.TriadicPA(120, 3, 0.4, 9).DB(false)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b stats.Counters
	ra := NewRunnerCounters(inst, &a)
	na := ra.Count()
	ra.Release()
	rb := NewRunnerCounters(inst, &b)
	nb := rb.Count()
	rb.Release()
	if na != nb {
		t.Fatalf("counts differ across pooled reuse: %d vs %d", na, nb)
	}
	if a.TrieAccesses == 0 || a != b {
		t.Fatalf("pooled accounting drifted: first %+v, second %+v", a, b)
	}
}
