//go:build race

package leapfrog

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
