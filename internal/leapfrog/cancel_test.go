package leapfrog

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/queries"
)

func TestCancelerNilForBackground(t *testing.T) {
	if c := NewCanceler(context.Background()); c != nil {
		t.Fatalf("Background canceler = %v, want nil", c)
	}
	var nilCtx context.Context // nil ctx is part of the contract
	if c := NewCanceler(nilCtx); c != nil {
		t.Fatalf("nil-ctx canceler = %v, want nil", c)
	}
	var nilC *Canceler
	if nilC.Poll() || nilC.Err() != nil {
		t.Fatal("nil canceler must never trip")
	}
}

func TestCancelerLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCanceler(ctx)
	if c == nil {
		t.Fatal("cancellable ctx produced nil canceler")
	}
	for i := 0; i < 10*CancelCheckEvery; i++ {
		if c.Poll() {
			t.Fatalf("tripped at poll %d without cancellation", i)
		}
	}
	cancel()
	tripped := false
	for i := 0; i < CancelCheckEvery+1; i++ {
		if c.Poll() {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("canceler did not trip within one polling period")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", c.Err())
	}
	// Latched: every later poll trips immediately.
	if !c.Poll() {
		t.Fatal("latched canceler un-tripped")
	}
}

func TestCancelerPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCanceler(ctx)
	if c == nil || !c.Poll() || c.Err() == nil {
		t.Fatalf("pre-cancelled ctx: canceler %v did not trip at once", c)
	}
}

func TestCountCtxAndParallelCountCtx(t *testing.T) {
	db := dataset.TriadicPA(150, 3, 0.4, 11).DB(false)
	q := queries.Cycle(4)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Count(inst)

	got, err := CountCtx(context.Background(), inst)
	if err != nil || got != want {
		t.Fatalf("CountCtx = %d, %v; want %d", got, err, want)
	}
	gotPar, err := ParallelCountCtx(context.Background(), inst, 4)
	if err != nil || gotPar != want {
		t.Fatalf("ParallelCountCtx = %d, %v; want %d", gotPar, err, want)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountCtx(cancelled, inst); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled CountCtx err = %v", err)
	}
	if _, err := ParallelCountCtx(cancelled, inst, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ParallelCountCtx err = %v", err)
	}
}

func TestParallelCountCtxCancelMidJoin(t *testing.T) {
	db := dataset.CliqueUnion(500, 280, 18, 1.6, 9).DB(false)
	q := queries.Cycle(5)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ParallelCountCtx(ctx, inst, 4)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelledAt := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Skipf("join finished before cancel landed (err=%v)", err)
		}
		if lag := time.Since(cancelledAt); lag > 50*time.Millisecond {
			t.Fatalf("unwound %s after cancel, want <= 50ms", lag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled parallel count did not return")
	}

	// EvalCtx under the same cancelled instance family.
	ctx2, cancel2 := context.WithCancel(context.Background())
	n := 0
	errc := make(chan error, 1)
	go func() {
		errc <- EvalCtx(ctx2, inst, func([]int64) bool {
			n++
			if n == 500 {
				cancel2()
			}
			return true
		})
	}()
	select {
	case err := <-errc:
		if n >= 500 && !errors.Is(err, context.Canceled) {
			t.Fatalf("EvalCtx err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled EvalCtx did not return")
	}
	cancel2()
}
