//go:build !race

package leapfrog

// raceEnabled reports whether the race detector instruments this build;
// the allocation assertions skip under it (instrumentation perturbs the
// allocator).
const raceEnabled = false
