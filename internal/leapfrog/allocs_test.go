package leapfrog

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/queries"
	"repro/internal/stats"
)

// TestCountSteadyStateZeroAllocs is the tier-1 allocation gate of the
// hot-path contract: once an instance's runner pool is warm, Count must
// run the entire join — iterators, frogs, accounting — without a
// single heap allocation. A regression here means something in the
// inner loop started escaping (a closure, a sort, a fresh cursor) and
// the per-visit allocation costs the tentpole removed are back.
func TestCountSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation accounting")
	}
	for _, tc := range []struct {
		name string
		q    func() *cq.Query
	}{
		{"4-cycle", func() *cq.Query { return queries.Cycle(4) }},
		{"triangle", func() *cq.Query { return queries.Clique(3) }},
		{"5-path", func() *cq.Query { return queries.Path(5) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := poolTestInstance(t, tc.q())
			want := Count(inst) // warm the pool
			if allocs := testing.AllocsPerRun(20, func() {
				if Count(inst) != want {
					t.Error("count drifted across pooled runs")
				}
			}); allocs != 0 {
				t.Fatalf("Count steady state allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestCountersSteadyStateZeroAllocs covers the accounted path too: a
// pooled runner bound to per-run counters must stay allocation-free
// (the model-cost charging may not allocate either).
func TestCountersSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation accounting")
	}
	inst := poolTestInstance(t, queries.Cycle(4))
	var c stats.Counters
	r := NewRunnerCounters(inst, &c)
	want := r.Count()
	r.Release()
	if allocs := testing.AllocsPerRun(20, func() {
		r := NewRunnerCounters(inst, &c)
		if r.Count() != want {
			t.Error("count drifted across pooled runs")
		}
		r.Release()
	}); allocs != 0 {
		t.Fatalf("accounted Count steady state allocates %.1f objects/op, want 0", allocs)
	}
}
