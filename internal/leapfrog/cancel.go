package leapfrog

import "context"

// CancelCheckEvery is the cooperative-cancellation polling period: a
// Canceler consults its context once per this many Poll calls (one call
// per iterator advance in the join inner loops). The join engines are
// CPU-bound recursions with no natural blocking points, so cancellation
// is cooperative; a countdown keeps the hot-path cost to one decrement
// and one branch, while 2^8 advances are far below a millisecond of
// work on any input, so a cancelled query unwinds well inside the
// promptness budget the service tests enforce (50ms).
const CancelCheckEvery = 256

// Canceler adapts a context.Context to the join engines' inner loops:
// Poll is cheap enough to call once per iterator advance — a decrement
// against a countdown that reaches zero every CancelCheckEvery calls —
// and latches the first error so that once a run is cancelled every
// subsequent Poll returns true immediately and the recursion unwinds
// without further context traffic. A nil *Canceler is valid and never
// cancels — NewCanceler returns nil for contexts that cannot be
// cancelled, so uncancellable runs pay only a nil check.
//
// A Canceler is single-goroutine state: parallel engines give every
// worker its own Canceler over the shared context, exactly as they give
// every worker its own Counters.
type Canceler struct {
	ctx context.Context
	rem int32 // Polls until the next context consultation
	err error
}

// NewCanceler wraps ctx for cooperative polling. It returns nil — the
// never-cancelled Canceler — when ctx is nil or cannot be cancelled
// (context.Background, context.TODO), and latches immediately when ctx
// is already done.
func NewCanceler(ctx context.Context) *Canceler {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	c := &Canceler{ctx: ctx, rem: CancelCheckEvery}
	if err := ctx.Err(); err != nil {
		c.err = err
		c.rem = 0 // every Poll takes the latched slow path
	}
	return c
}

// Poll reports whether the run should abort. Call it once per iterator
// advance: the fast path is one decrement and one branch; every
// CancelCheckEvery-th call consults the context, and a latched
// cancellation makes all later calls return true at once.
func (c *Canceler) Poll() bool {
	if c == nil {
		return false
	}
	c.rem--
	if c.rem > 0 {
		return false
	}
	return c.pollSlow()
}

// pollSlow is the once-per-period context consultation, kept out of
// Poll so the fast path inlines.
func (c *Canceler) pollSlow() bool {
	if c.err != nil {
		c.rem = 0 // stay latched: every later Poll lands here
		return true
	}
	if err := c.ctx.Err(); err != nil {
		c.err = err
		c.rem = 0
		return true
	}
	c.rem = CancelCheckEvery
	return false
}

// Err returns the latched cancellation cause (ctx.Err() at the poll
// that tripped), or nil while the run is live. Engines call it after
// the scan unwinds to decide whether to return a result or the error.
func (c *Canceler) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}
