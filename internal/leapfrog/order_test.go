package leapfrog

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
)

func TestOrderSearcherCostMatchesInstanceEstimate(t *testing.T) {
	g := dataset.PreferentialAttachment(80, 3, 71)
	db := g.DB(false)
	q := queries.Path(4)
	s, err := NewOrderSearcher(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]string{
		{"x1", "x2", "x3", "x4"},
		{"x4", "x3", "x2", "x1"},
		{"x2", "x1", "x3", "x4"},
	} {
		inst, err := Build(q, db, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.EstimateOrderCost()
		got, err := s.Cost(order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("order %v: searcher cost %g, instance estimate %g", order, got, want)
		}
	}
}

func TestBestOrderIsMinimalOverPermutations(t *testing.T) {
	g := dataset.PreferentialAttachment(60, 3, 72)
	db := g.DB(false)
	q := queries.Path(4)
	s, err := NewOrderSearcher(q, db)
	if err != nil {
		t.Fatal(err)
	}
	best, bestCost := s.Best()
	// Exhaustively verify no permutation is cheaper.
	vars := q.Vars()
	forEachPermutation(len(vars), func(perm []int) {
		order := make([]string, len(vars))
		for i, p := range perm {
			order[i] = vars[p]
		}
		c, err := s.Cost(order)
		if err != nil {
			t.Fatal(err)
		}
		if c < bestCost-1e-9 {
			t.Fatalf("order %v costs %g < best %v (%g)", order, c, best, bestCost)
		}
	})
	// The best order must be a valid permutation.
	sorted := append([]string(nil), best...)
	sort.Strings(sorted)
	wantSorted := append([]string(nil), vars...)
	sort.Strings(wantSorted)
	if !reflect.DeepEqual(sorted, wantSorted) {
		t.Fatalf("best order %v is not a permutation of %v", best, vars)
	}
}

func TestBestOrderCountsStayCorrect(t *testing.T) {
	g := dataset.PreferentialAttachment(50, 3, 73)
	db := g.DB(false)
	for _, q := range []*cq.Query{queries.Path(4), queries.Cycle(4), queries.Lollipop(3, 1)} {
		order, _, err := BestOrder(q, db)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Build(q, db, order, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := naive.Count(q, db)
		if got := Count(inst); got != want {
			t.Errorf("%s under best order %v: count %d, want %d", q, order, got, want)
		}
	}
}

func TestBestOrderGreedyLargeQuery(t *testing.T) {
	g := dataset.ErdosRenyi(14, 0.12, 74)
	db := g.DB(false)
	q := queries.Path(10) // 10 vars: exercises the greedy path
	order, cost, err := BestOrder(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 || cost <= 0 {
		t.Fatalf("greedy order %v cost %g", order, cost)
	}
	inst, err := Build(q, db, order, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: LFTJ under the natural order (order independence is
	// established elsewhere; naive would enumerate tens of millions of
	// paths here).
	natural, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Count(natural)
	if got := Count(inst); got != want {
		t.Fatalf("10-path count %d, want %d", got, want)
	}
}

func TestOrderSearcherErrors(t *testing.T) {
	g := dataset.ErdosRenyi(10, 0.3, 75)
	db := g.DB(false)
	q := queries.Path(3)
	s, err := NewOrderSearcher(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cost([]string{"x1", "x2"}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := s.Cost([]string{"x1", "x2", "x2"}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := NewOrderSearcher(cq.New(cq.NewAtom("missing", "a", "b")), db); err == nil {
		t.Error("missing relation accepted")
	}
}
