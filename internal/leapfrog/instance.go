// Package leapfrog implements Veldhuizen's Leapfrog Trie Join: the unary
// leapfrog k-way sorted intersection, the recursive trie join TJCount of
// Fig. 1, and full query evaluation. The Instance type — a query bound to
// a database under a fixed variable ordering, with one trie per atom — is
// also the substrate CLFTJ (package core), GenericJoin and YTD build on.
package leapfrog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cq"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/trie"
)

// AtomLeg describes one atom's participation in the join: its trie
// (columns permuted into global-order-sorted variable order) and the
// global order positions of its variables, ascending.
type AtomLeg struct {
	// Trie indexes the derived relation (constants selected away,
	// repeated variables collapsed), columns sorted by the global order.
	Trie *trie.Trie
	// VarPos[i] is the global order position of trie level i.
	VarPos []int
}

// Instance is a full CQ bound to a database under a variable ordering,
// ready to be counted or evaluated any number of times.
type Instance struct {
	query    *cq.Query
	order    []string
	atoms    []AtomLeg
	legsAt   [][]int // legsAt[d] = indices of atoms participating at depth d
	empty    bool    // some atom's derived relation is empty: result is ∅
	counters *stats.Counters
	embedded []SourceEntry // shared-source indices this instance draws on

	// pool recycles Runners across executions (see Runner.Release):
	// iterators, frogs and the assignment buffer are reused, so a warm
	// instance counts and evaluates with zero allocations per run.
	pool sync.Pool
}

// SourceEntry identifies one shared-source index an instance embeds:
// the base relation (by identity) and the column-permutation signature
// (trie.PermSig) its levels follow. A resident engine's plan cache
// tracks these so a registry eviction invalidates exactly the plans
// pinning the evicted index.
type SourceEntry struct {
	Rel  *relation.Relation
	Perm string
}

// TrieSource supplies shared, immutable tries over permuted base
// relations — typically a trie.Registry held by a long-lived engine, so
// that repeated queries reuse indices instead of rebuilding them. The
// source is consulted only for atoms whose derived relation is the base
// relation itself (all-distinct variables, no constants): those tries
// depend on nothing query-specific and are safe to share. Implementations
// must be safe for concurrent use and must return tries with no default
// counter sink (per-run iterators attach their own accounting).
//
// Relation versions thread through this interface by pointer identity:
// every relation.Store delta installs a fresh immutable *Relation, so
// the rel argument names one exact (relation, version) pair and a
// source can never serve a stale index for updated data. A delta-aware
// source (trie.Registry with Observed lineage) may satisfy the request
// with a copy-on-write patch of the previous version's index; the
// returned trie then accounts the derivation as TriePatches rather
// than TrieBuilds, and behaves identically under iteration.
type TrieSource interface {
	Trie(rel *relation.Relation, perm []int, c *stats.Counters) (*trie.Trie, error)
}

// BuildOpts bundles the optional knobs of instance compilation.
type BuildOpts struct {
	// Counters receives compile-time accounting (may be nil).
	Counters *stats.Counters
	// Tries is an optional shared trie source (see BuildWith).
	Tries TrieSource
	// Workers bounds the goroutines trie construction may use per index
	// (0 or 1: sequential; <0: one per core). Only the private builds
	// performed by this compilation are affected — a shared source
	// applies its own build parallelism (trie.Registry.SetBuildWorkers).
	Workers int
}

// Build compiles the query against db under the given variable order
// (names; must be a permutation of q.Vars()). counters may be nil.
//
// Atoms with constants or repeated variables are legal: the corresponding
// relation is pre-filtered and projected so every trie level corresponds
// to a distinct variable. Atoms left with no variables act as boolean
// guards (an empty guard empties the result).
func Build(q *cq.Query, db *relation.DB, order []string, counters *stats.Counters) (*Instance, error) {
	return BuildOptions(q, db, order, BuildOpts{Counters: counters})
}

// BuildWith is Build with an optional trie source: when tries is non-nil,
// atoms whose derived relation is the base relation draw their trie from
// the source (one shared build per (relation, column order)) instead of
// constructing a private one; atoms specialized by constants or repeated
// variables always build privately, since their derived relations are
// query-specific. tries may be nil, which is exactly Build.
func BuildWith(q *cq.Query, db *relation.DB, order []string, counters *stats.Counters, tries TrieSource) (*Instance, error) {
	return BuildOptions(q, db, order, BuildOpts{Counters: counters, Tries: tries})
}

// BuildOptions is the full-control compilation entry point: BuildWith
// plus the trie-build parallelism knob.
func BuildOptions(q *cq.Query, db *relation.DB, order []string, opts BuildOpts) (*Instance, error) {
	counters, tries := opts.Counters, opts.Tries
	buildWorkers := opts.Workers
	if buildWorkers == 0 {
		buildWorkers = 1
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	qvars := q.Vars()
	if len(order) != len(qvars) {
		return nil, fmt.Errorf("leapfrog: order has %d variables, query has %d", len(order), len(qvars))
	}
	pos := make(map[string]int, len(order))
	for i, v := range order {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("leapfrog: duplicate variable %q in order", v)
		}
		pos[v] = i
	}
	for _, v := range qvars {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("leapfrog: order is missing query variable %q", v)
		}
	}

	inst := &Instance{
		query:    q,
		order:    append([]string(nil), order...),
		legsAt:   make([][]int, len(order)),
		counters: counters,
	}
	for _, atom := range q.Atoms {
		rel, err := db.Get(atom.Rel)
		if err != nil {
			return nil, err
		}
		if rel.Arity() != len(atom.Args) {
			return nil, fmt.Errorf("leapfrog: atom %s has %d args, relation has arity %d",
				atom, len(atom.Args), rel.Arity())
		}
		derived, vars, err := DeriveAtomRelation(rel, atom)
		if err != nil {
			return nil, err
		}
		if derived.Len() == 0 {
			inst.empty = true
		}
		if len(vars) == 0 {
			continue // constant-only guard atom; emptiness already noted
		}
		// Sort the atom's variables by global order position; the trie
		// levels must follow the variable ordering (§2.4).
		perm := make([]int, len(vars))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return pos[vars[perm[a]]] < pos[vars[perm[b]]] })
		var tr *trie.Trie
		if tries != nil && derived == rel {
			// The derived relation is the base relation itself, so the
			// index is query-independent: draw it from the shared source.
			tr, err = tries.Trie(rel, perm, counters)
			if err != nil {
				return nil, err
			}
			inst.embedded = append(inst.embedded, SourceEntry{Rel: rel, Perm: trie.PermSig(perm)})
		} else {
			permuted, err := derived.Permute(perm)
			if err != nil {
				return nil, err
			}
			tr = trie.BuildParallel(permuted, counters, buildWorkers)
		}
		leg := AtomLeg{Trie: tr, VarPos: make([]int, len(vars))}
		for i, p := range perm {
			leg.VarPos[i] = pos[vars[p]]
		}
		inst.atoms = append(inst.atoms, leg)
		legIdx := len(inst.atoms) - 1
		for _, p := range leg.VarPos {
			inst.legsAt[p] = append(inst.legsAt[p], legIdx)
		}
	}
	for d, legs := range inst.legsAt {
		if len(legs) == 0 {
			return nil, fmt.Errorf("leapfrog: variable %q is constrained by no atom", order[d])
		}
	}
	return inst, nil
}

// DeriveAtomRelation applies the atom's constants and repeated-variable
// equalities to rel and projects onto one column per distinct variable
// (first occurrence, in atom order). It returns the derived relation and
// the distinct variable names in column order. It is shared by every
// engine that must turn an atom into a variable-pure relation.
func DeriveAtomRelation(rel *relation.Relation, atom cq.Atom) (*relation.Relation, []string, error) {
	consts := make(map[int]int64)
	firstCol := make(map[string]int)
	classes := make(map[string][]int)
	var vars []string
	for col, t := range atom.Args {
		if !t.IsVar() {
			consts[col] = t.Const
			continue
		}
		if _, ok := firstCol[t.Var]; !ok {
			firstCol[t.Var] = col
			vars = append(vars, t.Var)
		}
		classes[t.Var] = append(classes[t.Var], col)
	}
	var equal [][]int
	for _, v := range vars {
		if cls := classes[v]; len(cls) > 1 {
			equal = append(equal, cls)
		}
	}
	selected := rel
	if len(consts) > 0 || len(equal) > 0 {
		var err error
		selected, err = rel.Select(consts, equal)
		if err != nil {
			return nil, nil, err
		}
	}
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = firstCol[v]
	}
	if len(cols) == rel.Arity() && len(consts) == 0 && len(equal) == 0 {
		return selected, vars, nil
	}
	projected, err := selected.Project(cols)
	if err != nil {
		return nil, nil, err
	}
	return projected, vars, nil
}

// Order returns the variable ordering (names, by depth).
func (in *Instance) Order() []string { return in.order }

// Query returns the underlying query.
func (in *Instance) Query() *cq.Query { return in.query }

// Counters returns the accounting sink (possibly nil).
func (in *Instance) Counters() *stats.Counters { return in.counters }

// NumVars returns the number of join variables.
func (in *Instance) NumVars() int { return len(in.order) }

// Empty reports whether some atom's derived relation is empty, forcing an
// empty result.
func (in *Instance) Empty() bool { return in.empty }

// Embedded returns the shared-source indices the instance draws on (nil
// when compiled without a trie source or when every atom built a
// private index). The slice is owned by the instance; callers must not
// modify it.
func (in *Instance) Embedded() []SourceEntry { return in.embedded }

// Legs returns the atom legs (for engines layered on the instance).
func (in *Instance) Legs() []AtomLeg { return in.atoms }

// LegsAt returns, per depth, the indices into Legs of the participating
// atoms.
func (in *Instance) LegsAt() [][]int { return in.legsAt }

// EstimateOrderCost approximates the cost model of Chu et al. [7] for the
// instance's variable ordering: the total number of partial assignments
// explored, estimated from trie fanouts. For each depth the expected
// number of extensions of a partial assignment is the minimum, over the
// participating atoms, of the atom's fanout into that level (level sizes
// for first levels). The cost is the sum over depths of the estimated
// prefix cardinalities.
//
// The unit is estimated partial assignments (an LFTJ work proxy, not
// wall time or bytes); 0 means a statically empty instance. Estimates
// are comparable across variable orders of the same query over the same
// relation versions — the planner's order-cost term and the adaptive
// loop's divergence prediction both rely on exactly that comparison —
// and not across queries or datasets. The walk is read-only and charges
// nothing to the instance's counters.
func (in *Instance) EstimateOrderCost() float64 {
	if in.empty {
		return 0
	}
	prefix := 1.0
	cost := 0.0
	for d := range in.order {
		ext := -1.0
		for _, li := range in.legsAt[d] {
			leg := in.atoms[li]
			lvl := indexOf(leg.VarPos, d)
			var f float64
			if lvl == 0 {
				f = float64(leg.Trie.Len(0))
			} else {
				f = leg.Trie.Fanout(lvl - 1)
			}
			if ext < 0 || f < ext {
				ext = f
			}
		}
		if ext < 0 {
			ext = 1
		}
		prefix *= ext
		cost += prefix
	}
	return cost
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
