package leapfrog

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/relation"
)

// This file implements variable-order search on top of the Chu-et-al.-
// style cost estimate (§4.3 uses the cost of [7] to rank orders). The
// estimator here mirrors Instance.EstimateOrderCost but works from
// per-atom prefix statistics, so evaluating one candidate order is a few
// arithmetic operations instead of a trie build — cheap enough for an
// exhaustive search over small queries.

// atomStats holds, per permutation of an atom's columns, the number of
// distinct prefixes at every depth (= trie level sizes under that
// column order).
type atomStats struct {
	vars   []string
	levels map[string][]int // permutation key -> level sizes
}

// OrderSearcher evaluates and searches variable orders for a query over
// a database.
type OrderSearcher struct {
	vars  []string
	atoms []*atomStats
}

// NewOrderSearcher precomputes the per-atom statistics. Atoms of arity
// above 5 are rejected (their permutation space explodes; the paper's
// workloads are binary).
func NewOrderSearcher(q *cq.Query, db *relation.DB) (*OrderSearcher, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s := &OrderSearcher{vars: q.Vars()}
	for _, atom := range q.Atoms {
		rel, err := db.Get(atom.Rel)
		if err != nil {
			return nil, err
		}
		if rel.Arity() != len(atom.Args) {
			return nil, fmt.Errorf("leapfrog: atom %s arity mismatch", atom)
		}
		derived, vars, err := DeriveAtomRelation(rel, atom)
		if err != nil {
			return nil, err
		}
		if len(vars) == 0 {
			continue
		}
		if len(vars) > 5 {
			return nil, fmt.Errorf("leapfrog: order search supports atoms of arity <= 5, got %d", len(vars))
		}
		st := &atomStats{vars: vars, levels: make(map[string][]int)}
		forEachPermutation(len(vars), func(perm []int) {
			st.levels[permKey(perm)] = prefixCounts(derived, perm)
		})
		s.atoms = append(s.atoms, st)
	}
	if len(s.atoms) == 0 {
		return nil, fmt.Errorf("leapfrog: query has no variable atoms")
	}
	return s, nil
}

// prefixCounts returns, for each depth, the number of distinct prefixes
// of the permuted relation.
func prefixCounts(rel *relation.Relation, perm []int) []int {
	k := len(perm)
	counts := make([]int, k)
	seen := make([]map[string]bool, k)
	for d := range seen {
		seen[d] = make(map[string]bool)
	}
	buf := make([]int64, k)
	for i := 0; i < rel.Len(); i++ {
		t := rel.Tuple(i)
		for d, c := range perm {
			buf[d] = t[c]
			key := relation.Key(buf[:d+1])
			if !seen[d][key] {
				seen[d][key] = true
				counts[d]++
			}
		}
	}
	return counts
}

func permKey(perm []int) string {
	b := make([]byte, len(perm))
	for i, p := range perm {
		b[i] = byte(p)
	}
	return string(b)
}

func forEachPermutation(n int, f func([]int)) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			f(perm)
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
}

// Cost estimates the LFTJ cost of the order (names; must be a
// permutation of the query variables): the sum over depths of the
// estimated number of partial assignments, with each extension count the
// minimum participating-atom fanout.
func (s *OrderSearcher) Cost(order []string) (float64, error) {
	pos := make(map[string]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	if len(pos) != len(s.vars) || len(order) != len(s.vars) {
		return 0, fmt.Errorf("leapfrog: order %v is not a permutation of the query variables", order)
	}
	return s.cost(pos), nil
}

func (s *OrderSearcher) cost(pos map[string]int) float64 {
	type legInfo struct {
		levels []int
		depth  []int // global depth per level
	}
	var legs []legInfo
	for _, st := range s.atoms {
		perm := make([]int, len(st.vars))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(a, b int) bool { return pos[st.vars[perm[a]]] < pos[st.vars[perm[b]]] })
		levels := st.levels[permKey(perm)]
		depth := make([]int, len(perm))
		for lvl, col := range perm {
			depth[lvl] = pos[st.vars[col]]
		}
		legs = append(legs, legInfo{levels: levels, depth: depth})
	}
	n := len(s.vars)
	prefix := 1.0
	cost := 0.0
	for d := 0; d < n; d++ {
		ext := -1.0
		for _, leg := range legs {
			for lvl, dd := range leg.depth {
				if dd != d {
					continue
				}
				var f float64
				if lvl == 0 {
					f = float64(leg.levels[0])
				} else if leg.levels[lvl-1] > 0 {
					f = float64(leg.levels[lvl]) / float64(leg.levels[lvl-1])
				} else {
					f = 0
				}
				if ext < 0 || f < ext {
					ext = f
				}
			}
		}
		if ext < 0 {
			ext = 1 // unconstrained depth (cannot happen for valid queries)
		}
		prefix *= ext
		cost += prefix
	}
	return cost
}

// Best searches for a minimum-estimated-cost order: exhaustively for up
// to 8 variables, greedily (cheapest marginal extension next) beyond.
func (s *OrderSearcher) Best() ([]string, float64) {
	n := len(s.vars)
	if n <= 8 {
		return s.bestExhaustive()
	}
	return s.bestGreedy()
}

func (s *OrderSearcher) bestExhaustive() ([]string, float64) {
	var best []string
	bestCost := -1.0
	order := make([]string, len(s.vars))
	forEachPermutation(len(s.vars), func(perm []int) {
		for i, p := range perm {
			order[i] = s.vars[p]
		}
		pos := make(map[string]int, len(order))
		for i, v := range order {
			pos[v] = i
		}
		c := s.cost(pos)
		if bestCost < 0 || c < bestCost {
			bestCost = c
			best = append(best[:0], order...)
		}
	})
	return best, bestCost
}

func (s *OrderSearcher) bestGreedy() ([]string, float64) {
	n := len(s.vars)
	chosen := make([]string, 0, n)
	used := make(map[string]bool, n)
	for len(chosen) < n {
		bestVar := ""
		bestCost := -1.0
		for _, v := range s.vars {
			if used[v] {
				continue
			}
			cand := append(append([]string(nil), chosen...), v)
			// Complete the order arbitrarily with the remaining vars to
			// get a comparable full-order cost.
			for _, w := range s.vars {
				if !used[w] && w != v {
					cand = append(cand, w)
				}
			}
			pos := make(map[string]int, n)
			for i, w := range cand {
				pos[w] = i
			}
			c := s.cost(pos)
			if bestCost < 0 || c < bestCost {
				bestCost = c
				bestVar = v
			}
		}
		chosen = append(chosen, bestVar)
		used[bestVar] = true
	}
	pos := make(map[string]int, n)
	for i, v := range chosen {
		pos[v] = i
	}
	return chosen, s.cost(pos)
}

// BestOrder is a convenience wrapper: it returns the estimated-cheapest
// variable order for q over db and its estimated cost.
func BestOrder(q *cq.Query, db *relation.DB) ([]string, float64, error) {
	s, err := NewOrderSearcher(q, db)
	if err != nil {
		return nil, 0, err
	}
	order, cost := s.Best()
	return order, cost, nil
}
