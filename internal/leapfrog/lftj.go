package leapfrog

import (
	"context"

	"repro/internal/stats"
	"repro/internal/trie"
)

// Runner executes LFTJ over an Instance: TJCount of Fig. 1 and its
// evaluation twin. A Runner holds per-run iterator state; obtain one per
// execution (Count and Eval below do so). It is exported because CLFTJ
// (package core) drives the same machinery with cache hooks.
type Runner struct {
	inst   *Instance
	iters  []*trie.Iterator // one per atom leg
	frogs  []*Frog          // one per depth, legs bound at depth entry
	legs   [][]*trie.Iterator
	mu     []int64         // current partial assignment, by depth
	cancel *Canceler       // cooperative cancellation; nil never cancels
	c      *stats.Counters // the sink the iterators are bound to

	// attempts[d] counts OpenDepth entries at depth d; empties[d] counts
	// those whose k-way intersection held no value at all (Frog.Init
	// found no match). An "always empty" level (attempts > 0 and
	// empties == attempts) is the early-termination feedback signal: the
	// variable at that depth never extended any assignment, so an
	// adaptive re-plan can demote it (see td.GreedyConfig.Demote). Both
	// reset when a pooled runner is rebound.
	attempts []int64
	empties  []int64
}

// NewRunner prepares iterators and per-depth frogs for one execution
// over the instance, accounting into the instance's counters.
func NewRunner(inst *Instance) *Runner {
	return NewRunnerCounters(inst, inst.counters)
}

// NewRunnerCounters is NewRunner with an explicit accounting sink: every
// trie iterator the runner owns accounts into c instead of the shared
// instance counters. Parallel executions give each worker its own runner
// and a private Counters (merged after the workers join), so the
// immutable tries are shared while all mutable state — cursors, frogs,
// the assignment buffer, accounting — stays worker-local. c may be nil.
//
// Runners are drawn from a per-instance pool: a released runner (see
// Release) is rebound to c and handed back instead of allocating, so an
// instance's steady-state executions are allocation-free. A fresh
// runner is built when the pool is empty.
func NewRunnerCounters(inst *Instance, c *stats.Counters) *Runner {
	if pooled := inst.pool.Get(); pooled != nil {
		r := pooled.(*Runner)
		r.cancel = nil
		if r.c != c {
			r.c = c
			for _, it := range r.iters {
				it.SetCounters(c)
			}
		}
		// Restore the canonical leg order (frog searches permute the leg
		// slices in place), so a pooled runner charges exactly the
		// accounting a fresh one would.
		for d, legIdxs := range inst.legsAt {
			ls := r.legs[d]
			for j, li := range legIdxs {
				ls[j] = r.iters[li]
			}
		}
		for d := range r.attempts {
			r.attempts[d] = 0
			r.empties[d] = 0
		}
		return r
	}
	r := &Runner{
		inst:     inst,
		iters:    make([]*trie.Iterator, len(inst.atoms)),
		frogs:    make([]*Frog, inst.NumVars()),
		legs:     make([][]*trie.Iterator, inst.NumVars()),
		mu:       make([]int64, inst.NumVars()),
		attempts: make([]int64, inst.NumVars()),
		empties:  make([]int64, inst.NumVars()),
		c:        c,
	}
	for i, leg := range inst.atoms {
		r.iters[i] = leg.Trie.NewIteratorCounters(c)
	}
	for d, legIdxs := range inst.legsAt {
		ls := make([]*trie.Iterator, len(legIdxs))
		for j, li := range legIdxs {
			ls[j] = r.iters[li]
		}
		r.legs[d] = ls
		r.frogs[d] = NewFrog(ls)
	}
	return r
}

// Release flushes the runner's batched accounting and returns it to the
// instance's pool for reuse by a later execution ("close" in the
// iterator accounting contract). The runner must not be used after
// Release; holding one across executions is fine — it simply never
// rejoins the pool.
func (r *Runner) Release() {
	for _, it := range r.iters {
		it.Flush()
	}
	r.cancel = nil
	r.inst.pool.Put(r)
}

// Instance returns the instance the runner executes.
func (r *Runner) Instance() *Instance { return r.inst }

// SetCanceler arms cooperative cancellation for this runner's scans:
// countFrom/evalFrom poll c once per iterator advance and unwind when
// it trips. nil (the default) disables cancellation. Engines layered on
// the runner (package core) poll their own Canceler in their own loops
// instead.
func (r *Runner) SetCanceler(c *Canceler) { r.cancel = c }

// Assignment returns the current partial assignment by depth; valid
// during callbacks.
func (r *Runner) Assignment() []int64 { return r.mu }

// OpenDepth opens all legs of depth d (descends each participating atom
// iterator into the level of variable order[d]) and returns the frog,
// initialized. Callers must balance with CloseDepth. Each call is tallied
// in the per-depth level stats (see LevelStats); a false return means the
// intersection at d is empty under the current prefix.
func (r *Runner) OpenDepth(d int) (*Frog, bool) {
	for _, it := range r.legs[d] {
		it.Open()
	}
	f := r.frogs[d]
	ok := f.Init()
	r.attempts[d]++
	if !ok {
		r.empties[d]++
	}
	return f, ok
}

// LevelStats returns this runner's per-depth intersection tallies:
// attempts[d] OpenDepth entries at depth d, of which empties[d] found an
// empty intersection. Both slices are the runner's internal state — valid
// until Release, then reused; callers retaining them must copy. Depths the
// run never reached report zero attempts.
func (r *Runner) LevelStats() (attempts, empties []int64) {
	return r.attempts, r.empties
}

// CloseDepth ascends all legs of depth d.
func (r *Runner) CloseDepth(d int) {
	for _, it := range r.legs[d] {
		it.Up()
	}
}

// Count implements TJCount (Fig. 1): the number of tuples in q(D).
func (r *Runner) Count() int64 {
	if r.inst.empty {
		return 0
	}
	return r.countFrom(0)
}

func (r *Runner) countFrom(d int) int64 {
	if d == r.inst.NumVars() {
		return 1
	}
	f, ok := r.OpenDepth(d)
	var total int64
	for ok && !r.cancel.Poll() {
		r.mu[d] = f.Key()
		total += r.countFrom(d + 1)
		ok = f.Next()
	}
	r.CloseDepth(d)
	return total
}

// Eval enumerates q(D), invoking emit with the full assignment (indexed
// by depth; aligned with Instance.Order). The slice is reused across
// calls — emit must copy it to retain it. Returning false stops the
// enumeration early.
func (r *Runner) Eval(emit func(mu []int64) bool) {
	if r.inst.empty {
		return
	}
	r.evalFrom(0, emit)
}

func (r *Runner) evalFrom(d int, emit func([]int64) bool) bool {
	if d == r.inst.NumVars() {
		return emit(r.mu)
	}
	f, ok := r.OpenDepth(d)
	cont := true
	for ok && cont && !r.cancel.Poll() {
		r.mu[d] = f.Key()
		cont = r.evalFrom(d+1, emit)
		if cont {
			ok = f.Next()
		}
	}
	r.CloseDepth(d)
	return cont
}

// Count runs vanilla LFTJ count over the instance. Steady-state calls
// are allocation-free: the runner is drawn from and returned to the
// instance's pool.
func Count(inst *Instance) int64 {
	r := NewRunner(inst)
	n := r.Count()
	r.Release()
	return n
}

// CountCtx is Count with cooperative cancellation: the scan polls ctx
// once per CancelCheckEvery iterator advances and unwinds promptly when
// it is cancelled or its deadline passes, returning ctx's error. A
// non-cancellable ctx (context.Background) adds no per-advance work
// beyond a nil check.
func CountCtx(ctx context.Context, inst *Instance) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	r := NewRunner(inst)
	r.SetCanceler(NewCanceler(ctx))
	n := r.Count()
	err := r.cancel.Err()
	r.Release()
	if err != nil {
		return 0, err
	}
	return n, nil
}

// EvalCtx is Eval with cooperative cancellation (see CountCtx). The
// enumeration stops early both when emit returns false (no error) and
// when ctx trips (ctx's error is returned); tuples already emitted
// stand either way.
func EvalCtx(ctx context.Context, inst *Instance, emit func(mu []int64) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r := NewRunner(inst)
	r.SetCanceler(NewCanceler(ctx))
	r.Eval(emit)
	err := r.cancel.Err()
	r.Release()
	return err
}

// Eval runs vanilla LFTJ evaluation over the instance.
func Eval(inst *Instance, emit func(mu []int64) bool) {
	r := NewRunner(inst)
	r.Eval(emit)
	r.Release()
}

// EvalTuples materializes the result in order-variable order; intended
// for tests and small results.
func EvalTuples(inst *Instance) [][]int64 {
	var out [][]int64
	Eval(inst, func(mu []int64) bool {
		out = append(out, append([]int64(nil), mu...))
		return true
	})
	return out
}
