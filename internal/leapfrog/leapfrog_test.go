package leapfrog

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/trie"
)

func edgeDB(edges [][]int64) *relation.DB {
	return relation.NewDB(relation.MustNew("E", 2, edges))
}

func TestTriangleCount(t *testing.T) {
	// Directed triangles in a small graph.
	db := edgeDB([][]int64{{1, 2}, {2, 3}, {1, 3}, {3, 1}, {2, 1}})
	q := queries.Cycle(3) // E(x1,x2), E(x2,x3), E(x1,x3)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.Count(q, db)
	if got := Count(inst); got != want {
		t.Fatalf("triangle count = %d, want %d", got, want)
	}
}

func TestCountMatchesNaiveOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(12)
		var edges [][]int64
		for i := 0; i < 3*n; i++ {
			edges = append(edges, []int64{int64(rng.Intn(n)), int64(rng.Intn(n))})
		}
		db := edgeDB(edges)
		qs := []*cq.Query{queries.Path(3), queries.Path(4), queries.Cycle(3), queries.Cycle(4)}
		q := qs[trial%len(qs)]
		want, err := naive.Count(q, db)
		if err != nil {
			t.Fatal(err)
		}
		// Try several random orders: LFTJ must be order-independent.
		vars := append([]string(nil), q.Vars()...)
		for o := 0; o < 3; o++ {
			rng.Shuffle(len(vars), func(i, j int) { vars[i], vars[j] = vars[j], vars[i] })
			inst, err := Build(q, db, vars, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := Count(inst); got != want {
				t.Fatalf("trial %d order %v: count = %d, want %d", trial, vars, got, want)
			}
		}
	}
}

func TestEvalMatchesNaive(t *testing.T) {
	g := dataset.ErdosRenyi(18, 0.2, 5)
	db := g.DB(false)
	q := queries.Path(4)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := EvalTuples(inst)
	sort.Slice(got, func(i, j int) bool { return relation.CompareTuples(got[i], got[j]) < 0 })
	want, _ := naive.Eval(q, db)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("eval mismatch: %d vs %d tuples", len(got), len(want))
	}
}

func TestEvalEarlyStop(t *testing.T) {
	g := dataset.ErdosRenyi(18, 0.3, 6)
	db := g.DB(false)
	q := queries.Path(3)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	Eval(inst, func([]int64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop emitted %d, want 5", n)
	}
}

func TestConstantsAndRepeatedVars(t *testing.T) {
	db := edgeDB([][]int64{{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 1}})
	// Self loops: E(x,x).
	qSelf := cq.New(cq.Atom{Rel: "E", Args: []cq.Term{cq.V("x"), cq.V("x")}})
	inst, err := Build(qSelf, db, qSelf.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Count(inst); got != 2 {
		t.Fatalf("self-loop count = %d, want 2", got)
	}
	// Constant subject: E(1, y), E(y, z).
	qConst := cq.New(
		cq.Atom{Rel: "E", Args: []cq.Term{cq.C(1), cq.V("y")}},
		cq.NewAtom("E", "y", "z"),
	)
	want, _ := naive.Count(qConst, db)
	inst2, err := Build(qConst, db, qConst.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Count(inst2); got != want {
		t.Fatalf("constant-atom count = %d, want %d", got, want)
	}
}

func TestBuildErrors(t *testing.T) {
	db := edgeDB([][]int64{{1, 2}})
	q := queries.Path(3)
	if _, err := Build(q, db, []string{"x1", "x2"}, nil); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Build(q, db, []string{"x1", "x2", "x2"}, nil); err == nil {
		t.Error("duplicate order variable accepted")
	}
	if _, err := Build(q, db, []string{"x1", "x2", "bogus"}, nil); err == nil {
		t.Error("unknown order variable accepted")
	}
	if _, err := Build(cq.New(cq.NewAtom("missing", "a", "b")), db, []string{"a", "b"}, nil); err == nil {
		t.Error("missing relation accepted")
	}
	if _, err := Build(cq.New(cq.NewAtom("E", "a", "b", "c")), db, []string{"a", "b", "c"}, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestEmptyRelationYieldsZero(t *testing.T) {
	db := relation.NewDB(
		relation.MustNew("E", 2, [][]int64{{1, 2}}),
		relation.MustNew("F", 2, nil),
	)
	q := cq.New(cq.NewAtom("E", "a", "b"), cq.NewAtom("F", "b", "c"))
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Empty() {
		t.Error("Empty() false with an empty atom relation")
	}
	if got := Count(inst); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	if tuples := EvalTuples(inst); len(tuples) != 0 {
		t.Fatalf("eval emitted %d tuples, want 0", len(tuples))
	}
}

func TestFrogIntersection(t *testing.T) {
	mk := func(vals ...int64) *trie.Iterator {
		tuples := make([][]int64, len(vals))
		for i, v := range vals {
			tuples[i] = []int64{v}
		}
		tr := trie.Build(relation.MustNew("R", 1, tuples), nil)
		it := tr.NewIterator()
		it.Open()
		return it
	}
	f := NewFrog([]*trie.Iterator{
		mk(1, 3, 4, 5, 6, 7, 8, 9, 11),
		mk(1, 2, 3, 5, 8, 13),
		mk(2, 3, 5, 7, 11, 13),
	})
	var got []int64
	for ok := f.Init(); ok; ok = f.Next() {
		got = append(got, f.Key())
	}
	want := []int64{3, 5} // also 8? 8 ∉ third; 13 ∉ first; 11 ∉ second
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	if !f.AtEnd() {
		t.Error("frog not AtEnd after exhaustion")
	}
}

func TestFrogSeekGE(t *testing.T) {
	mk := func(vals ...int64) *trie.Iterator {
		tuples := make([][]int64, len(vals))
		for i, v := range vals {
			tuples[i] = []int64{v}
		}
		tr := trie.Build(relation.MustNew("R", 1, tuples), nil)
		it := tr.NewIterator()
		it.Open()
		return it
	}
	f := NewFrog([]*trie.Iterator{mk(1, 4, 7, 10), mk(1, 2, 4, 7, 10)})
	if !f.Init() || f.Key() != 1 {
		t.Fatal("Init failed")
	}
	if !f.SeekGE(5) || f.Key() != 7 {
		t.Fatalf("SeekGE(5) landed on %d", f.Key())
	}
	if f.SeekGE(11) {
		t.Fatal("SeekGE(11) should exhaust")
	}
}

// Property (testing/quick style over random sets): the frog intersection
// of k random sorted sets equals the map-based intersection.
func TestFrogIntersectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(3)
		sets := make([]map[int64]bool, k)
		its := make([]*trie.Iterator, k)
		for i := 0; i < k; i++ {
			n := 1 + rng.Intn(30)
			sets[i] = make(map[int64]bool)
			var tuples [][]int64
			for j := 0; j < n; j++ {
				v := int64(rng.Intn(40))
				if !sets[i][v] {
					sets[i][v] = true
					tuples = append(tuples, []int64{v})
				}
			}
			tr := trie.Build(relation.MustNew("R", 1, tuples), nil)
			it := tr.NewIterator()
			it.Open()
			its[i] = it
		}
		var want []int64
		for v := int64(0); v < 40; v++ {
			all := true
			for i := 0; i < k; i++ {
				if !sets[i][v] {
					all = false
					break
				}
			}
			if all {
				want = append(want, v)
			}
		}
		f := NewFrog(its)
		var got []int64
		for ok := f.Init(); ok; ok = f.Next() {
			got = append(got, f.Key())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: intersection = %v, want %v", trial, got, want)
		}
	}
}

func TestEstimateOrderCostPrefersSelectiveFirst(t *testing.T) {
	// A skewed graph: starting from the skewed side should look cheaper
	// to the estimator than a poor order on a long path query.
	g := dataset.PreferentialAttachment(300, 4, 15)
	db := g.DB(false)
	q := queries.Path(4)
	natural, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if natural.EstimateOrderCost() <= 0 {
		t.Error("order cost estimate not positive")
	}
	var c stats.Counters
	inst2, err := Build(q, db, q.Vars(), &c)
	if err != nil {
		t.Fatal(err)
	}
	Count(inst2)
	if c.TrieAccesses == 0 {
		t.Error("count performed no counted accesses")
	}
}
