package leapfrog

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// This file parallelizes LFTJ by sharding the root trie level: the first
// variable's matches form the outermost loop of the join and successive
// root values are completely independent, so the domain is enumerated
// once (a cheap k-way intersection scan) and dealt to K workers
// round-robin. Each worker owns a full Runner — private cursors, frogs,
// assignment buffer and Counters — over the shared immutable tries, and
// re-seeks the root frog to its assigned values with SeekGE (values
// ascend within a shard, so the forward-only seek contract holds). See
// DESIGN.md, "Parallel execution".

// RootKeys enumerates the matches of the join's first variable (the
// intersection of the participating atoms' root trie levels), in
// ascending order. The scan accounts into c (may be nil). This is the
// shard domain of the parallel engines.
func RootKeys(inst *Instance, c *stats.Counters) []int64 {
	if inst.empty || inst.NumVars() == 0 {
		return nil
	}
	r := NewRunnerCounters(inst, c)
	var keys []int64
	frog, ok := r.OpenDepth(0)
	for ok {
		keys = append(keys, frog.Key())
		ok = frog.Next()
	}
	r.CloseDepth(0)
	r.Release()
	return keys
}

// ResolveWorkers normalizes a worker-count knob: values <= 0 mean "use
// every core" (runtime.GOMAXPROCS), anything else is taken as given.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ShardDomain resolves a worker-count knob against the instance's root
// domain: it normalizes workers (<= 0: one per core), enumerates the
// root keys (accounting into sink), and clamps the worker count to the
// domain size. A returned count of 1 means the caller should take its
// sequential path — the knob asked for it, or there are too few root
// values to shard (including none; the sequential engines handle the
// empty result). Every parallel engine derives its shards from this one
// helper so the sharding invariants cannot diverge.
func ShardDomain(inst *Instance, workers int, sink *stats.Counters) ([]int64, int) {
	workers = ResolveWorkers(workers)
	if workers <= 1 {
		return nil, 1
	}
	keys := RootKeys(inst, sink)
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 {
		return nil, 1
	}
	return keys, workers
}

// RunSharded is the shard orchestration shared by every parallel engine
// (this package's ParallelCount and core's Parallel* entry points): it
// spawns one goroutine per worker, hands each a private Counters when
// sink is non-nil (nil sink: accounting disabled, workers receive nil),
// waits for all of them, and merges the per-worker accounting into sink
// in worker order, so the combined totals are exact without hot-path
// atomics.
func RunSharded(workers int, sink *stats.Counters, body func(w int, wc *stats.Counters)) {
	ctrs := make([]*stats.Counters, workers)
	if sink != nil {
		for w := range ctrs {
			ctrs[w] = &stats.Counters{}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, wc *stats.Counters) {
			defer wg.Done()
			body(w, wc)
		}(w, ctrs[w])
	}
	wg.Wait()
	sink.Merge(ctrs...)
}

// ParallelCount counts q(D) with vanilla LFTJ sharded over the given
// number of worker goroutines (<= 0: one per core). The result is
// bit-identical to Count: int64 addition is associative, so the shard
// partials sum to the sequential total regardless of interleaving.
// Accounting is exact: workers count into private Counters that are
// merged into the instance's sink after the join.
func ParallelCount(inst *Instance, workers int) int64 {
	n, _ := ParallelCountCtx(context.Background(), inst, workers)
	return n
}

// ParallelCountCtx is ParallelCount with cooperative cancellation:
// every worker polls ctx through its own Canceler (private tick state,
// like its private Counters) and stops both its per-shard seek loop and
// the recursive scan under each root value when ctx trips, so all
// workers drain within one polling period and the call returns ctx's
// error with no goroutine left behind. A non-cancellable ctx runs the
// exact ParallelCount code path.
func ParallelCountCtx(ctx context.Context, inst *Instance, workers int) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if inst.empty {
		return 0, nil
	}
	keys, workers := ShardDomain(inst, workers, inst.counters)
	if workers <= 1 {
		return CountCtx(ctx, inst)
	}
	totals := make([]int64, workers)
	RunSharded(workers, inst.counters, func(w int, wc *stats.Counters) {
		r := NewRunnerCounters(inst, wc)
		r.SetCanceler(NewCanceler(ctx))
		frog, ok := r.OpenDepth(0)
		var total int64
		for i := w; ok && i < len(keys) && !r.cancel.Poll(); i += workers {
			if !frog.SeekGE(keys[i]) {
				break
			}
			r.mu[0] = keys[i]
			total += r.countFrom(1)
		}
		r.CloseDepth(0)
		r.Release()
		totals[w] = total
	})
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var total int64
	for _, t := range totals {
		total += t
	}
	return total, nil
}
