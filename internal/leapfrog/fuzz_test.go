package leapfrog

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/trie"
)

// fuzzKeys decodes a byte stream into unary keys over a small domain,
// so legs overlap and duplicate-heavy inputs are common.
func fuzzKeys(data []byte) []int64 {
	out := make([]int64, len(data))
	for i, b := range data {
		out[i] = int64(b % 24)
	}
	return out
}

// FuzzBlockIntersect drives block intersection against the scalar
// leapfrog on fuzzer-chosen relations: a direct frog-level k-way
// intersection (1..3 legs, including a patched leg) and a whole
// two-atom join through CountBatch, asserting identical results and
// bit-identical counters at every block size.
func FuzzBlockIntersect(f *testing.F) {
	f.Add([]byte{}, []byte{}, []byte{}, uint8(1), uint8(2))                                     // empty legs
	f.Add([]byte{5}, []byte{5}, []byte{}, uint8(2), uint8(1))                                   // single-key legs
	f.Add([]byte{1, 1, 1, 2, 2, 1, 2}, []byte{1, 2, 1, 1}, []byte{2, 2, 2}, uint8(3), uint8(4)) // duplicate-heavy
	f.Add([]byte{0, 2, 4, 6, 8, 10}, []byte{1, 2, 3, 4, 5, 6}, []byte{2, 4, 8}, uint8(3), uint8(7))

	f.Fuzz(func(t *testing.T, aB, bB, cB []byte, kRaw, bsRaw uint8) {
		k := int(kRaw%3) + 1
		bs := int(bsRaw%9) + 1

		mk := func(data []byte) *trie.Trie {
			keys := fuzzKeys(data)
			tuples := make([][]int64, len(keys))
			for i, v := range keys {
				tuples[i] = []int64{v}
			}
			return trie.Build(relation.MustNew("A", 1, tuples), nil)
		}
		tries := []*trie.Trie{mk(aB), mk(bB), mk(cB)}[:k]
		if len(cB) > 0 {
			// Exercise the patched-merge fallback: rebuild the last leg as
			// a patch of an empty base carrying the same keys.
			keys := fuzzKeys(cB)
			tuples := make([][]int64, len(keys))
			for i, v := range keys {
				tuples[i] = []int64{v}
			}
			base := trie.Build(relation.MustNew("A", 1, nil), nil)
			pt, err := trie.BuildPatched(base,
				relation.MustNew("A", 1, tuples), relation.MustNew("A", 1, nil), nil)
			if err != nil {
				t.Fatal(err)
			}
			tries = append(tries[:len(tries):len(tries)], pt)
		}

		var cs stats.Counters
		fr, legs, ok := frogOver(tries, &cs)
		want := drainScalar(fr, ok)
		flushAll(legs)

		var cb stats.Counters
		fr, legs, ok = frogOver(tries, &cb)
		got := drainBatch(fr, ok, make([]int64, bs))
		flushAll(legs)
		if len(got) != len(want) {
			t.Fatalf("bs=%d: %d matches, want %d (%v vs %v)", bs, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bs=%d: match %d = %d, want %d", bs, i, got[i], want[i])
			}
		}
		if cb != cs {
			t.Fatalf("bs=%d: batch counters %+v, scalar %+v", bs, cb, cs)
		}

		// Whole-join differential: a two-atom join over fuzzer edges.
		edges := func(data []byte) [][]int64 {
			var out [][]int64
			for i := 0; i+1 < len(data); i += 2 {
				out = append(out, []int64{int64(data[i] % 12), int64(data[i+1] % 12)})
			}
			return out
		}
		db := relation.NewDB(
			relation.MustNew("R", 2, edges(aB)),
			relation.MustNew("S", 2, edges(bB)),
		)
		q, err := cq.Parse("R(x,y), S(y,z)")
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Build(q, db, q.Vars(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var js, jb stats.Counters
		r := NewRunnerCounters(inst, &js)
		scalar := r.Count()
		r.Release()
		r = NewRunnerCounters(inst, &jb)
		batched := r.CountBatch(make([]int64, bs))
		r.Release()
		if scalar != batched {
			t.Fatalf("bs=%d: join count %d (batched) vs %d (scalar)", bs, batched, scalar)
		}
		if jb != js {
			t.Fatalf("bs=%d: join counters %+v (batched) vs %+v (scalar)", bs, jb, js)
		}
	})
}
