package leapfrog

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/naive"
	"repro/internal/queries"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/trie"
)

// unaryTrie builds an arity-1 trie over the given keys (duplicates
// collapse via set semantics).
func unaryTrie(t *testing.T, keys []int64) *trie.Trie {
	t.Helper()
	tuples := make([][]int64, len(keys))
	for i, k := range keys {
		tuples[i] = []int64{k}
	}
	return trie.Build(relation.MustNew("A", 1, tuples), nil)
}

// frogOver opens fresh iterators over the tries at level 0 and wraps
// them in a frog, accounting into c.
func frogOver(tries []*trie.Trie, c *stats.Counters) (*Frog, []*trie.Iterator, bool) {
	legs := make([]*trie.Iterator, len(tries))
	for i, tr := range tries {
		legs[i] = tr.NewIteratorCounters(c)
		legs[i].Open()
	}
	f := NewFrog(legs)
	return f, legs, f.Init()
}

func flushAll(legs []*trie.Iterator) {
	for _, l := range legs {
		l.Flush()
	}
}

// drainScalar enumerates the frog's matches with Key/Next.
func drainScalar(f *Frog, ok bool) []int64 {
	var out []int64
	for ok {
		out = append(out, f.Key())
		ok = f.Next()
	}
	return out
}

// drainBatch enumerates the frog's matches with NextBatch blocks.
func drainBatch(f *Frog, ok bool, block []int64) []int64 {
	var out []int64
	if !ok {
		return nil
	}
	for {
		n := f.NextBatch(block)
		if n == 0 {
			break
		}
		out = append(out, block[:n]...)
	}
	return out
}

// TestFrogNextBatchEquivalence pins the block-intersection contract on
// hand-picked leg shapes: identical matches and bit-identical counters
// vs the scalar frog, across block sizes, including the
// single-materialized-leg fast path and the patched-leg fallback.
func TestFrogNextBatchEquivalence(t *testing.T) {
	single := unaryTrie(t, []int64{1, 3, 4, 8, 9, 12})
	a := unaryTrie(t, []int64{1, 2, 3, 5, 8, 13, 21})
	b := unaryTrie(t, []int64{2, 3, 5, 7, 11, 13})
	c3 := unaryTrie(t, []int64{3, 5, 13, 99})
	baseRel := relation.MustNew("A", 1, [][]int64{{1}, {3}, {4}, {8}})
	patched, err := trie.BuildPatched(trie.Build(baseRel, nil),
		relation.MustNew("A", 1, [][]int64{{2}, {9}}),
		relation.MustNew("A", 1, [][]int64{{3}}), nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]*trie.Trie{
		"single-materialized": {single},
		"single-patched":      {patched},
		"two-legs":            {a, b},
		"three-legs":          {a, b, c3},
		"empty-intersection":  {a, unaryTrie(t, []int64{100, 200})},
		"empty-leg":           {a, unaryTrie(t, nil)},
	}
	for name, tries := range cases {
		var cs stats.Counters
		f, legs, ok := frogOver(tries, &cs)
		want := drainScalar(f, ok)
		flushAll(legs)

		for _, bs := range []int{1, 2, 3, 64} {
			var cb stats.Counters
			f, legs, ok := frogOver(tries, &cb)
			got := drainBatch(f, ok, make([]int64, bs))
			flushAll(legs)
			if len(got) != len(want) {
				t.Fatalf("%s bs=%d: %d matches, want %d (%v vs %v)", name, bs, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s bs=%d: match %d = %d, want %d", name, bs, i, got[i], want[i])
				}
			}
			if cb != cs {
				t.Errorf("%s bs=%d: batch counters %+v, scalar %+v", name, bs, cb, cs)
			}
		}
	}
}

// TestCountBatchEquivalence runs whole joins: CountBatch must agree
// with Count (and naive) on count and flushed accounting for every
// block size.
func TestCountBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qs := []*cq.Query{queries.Path(3), queries.Cycle(3), queries.Cycle(4), queries.Clique(3)}
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(10)
		var edges [][]int64
		for i := 0; i < 4*n; i++ {
			edges = append(edges, []int64{int64(rng.Intn(n)), int64(rng.Intn(n))})
		}
		db := relation.NewDB(relation.MustNew("E", 2, edges))
		q := qs[trial%len(qs)]
		inst, err := Build(q, db, q.Vars(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := naive.Count(q, db)

		var cs stats.Counters
		r := NewRunnerCounters(inst, &cs)
		scalar := r.Count()
		r.Release()
		if scalar != want {
			t.Fatalf("trial %d: scalar count %d, want %d", trial, scalar, want)
		}

		for _, bs := range []int{1, 2, 3, 7, 64} {
			var cb stats.Counters
			r := NewRunnerCounters(inst, &cb)
			got := r.CountBatch(make([]int64, bs))
			r.Release()
			if got != want {
				t.Fatalf("trial %d bs=%d: CountBatch %d, want %d", trial, bs, got, want)
			}
			if cb != cs {
				t.Errorf("trial %d bs=%d: batch counters %+v, scalar %+v", trial, bs, cb, cs)
			}
		}
		if got := CountBatch(inst, 16); got != want {
			t.Fatalf("trial %d: package CountBatch %d, want %d", trial, got, want)
		}
		if got := CountBatch(inst, 0); got != want {
			t.Fatalf("trial %d: CountBatch(0) %d, want %d", trial, got, want)
		}
	}
}
