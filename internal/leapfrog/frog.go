package leapfrog

import (
	"repro/internal/trie"
)

// Frog is the unary leapfrog join: a k-way sorted intersection of the
// sibling ranges that a set of trie iterators are currently positioned at
// (Veldhuizen §3). All legs must be at the same conceptual variable.
//
// A Frog is allocation-free after construction: Init re-sorts the legs
// in place with an insertion sort (the legs are the handful of atoms
// constraining one variable), so a runner re-entering a variable on
// every join-tree node visit pays no per-visit allocation. The
// insertion sort performs exactly the comparison sequence
// sort.SliceStable runs on fewer than 20 elements, so the Key-read
// accounting it charges is bit-identical to the historical
// implementation.
type Frog struct {
	legs []*trie.Iterator
	p    int
	done bool
}

// NewFrog wraps the given legs. The slice is retained and its order may
// be permuted.
func NewFrog(legs []*trie.Iterator) *Frog { return &Frog{legs: legs} }

// Init must be called after all legs were Open'ed at the variable's
// level. It positions the frog at the first match and returns whether one
// exists.
func (f *Frog) Init() bool {
	legs := f.legs
	for _, l := range legs {
		if l.AtEnd() {
			f.done = true
			return false
		}
	}
	for i := 1; i < len(legs); i++ {
		for j := i; j > 0 && legs[j].Key() < legs[j-1].Key(); j-- {
			legs[j], legs[j-1] = legs[j-1], legs[j]
		}
	}
	f.p = 0
	f.done = false
	return f.search()
}

// search advances legs until all point at a common key (leapfrog-search).
func (f *Frog) search() bool {
	legs := f.legs
	k := len(legs)
	prev := f.p - 1
	if prev < 0 {
		prev = k - 1
	}
	p := f.p
	max := legs[prev].Key()
	for {
		x := legs[p].Key()
		if x == max {
			f.p = p
			return true
		}
		legs[p].SeekGE(max)
		if legs[p].AtEnd() {
			f.p = p
			f.done = true
			return false
		}
		max = legs[p].Key()
		p++
		if p == k {
			p = 0
		}
	}
}

// Key returns the current match. Valid only after Init/Next/Seek returned
// true.
func (f *Frog) Key() int64 { return f.legs[f.p].Key() }

// Next advances to the next match, returning whether one exists.
func (f *Frog) Next() bool {
	f.legs[f.p].Next()
	if f.legs[f.p].AtEnd() {
		f.done = true
		return false
	}
	f.p++
	if f.p == len(f.legs) {
		f.p = 0
	}
	return f.search()
}

// Seek advances to the first match with key >= v, returning whether one
// exists.
func (f *Frog) SeekGE(v int64) bool {
	f.legs[f.p].SeekGE(v)
	if f.legs[f.p].AtEnd() {
		f.done = true
		return false
	}
	f.p++
	if f.p == len(f.legs) {
		f.p = 0
	}
	return f.search()
}

// AtEnd reports whether the frog ran off the end.
func (f *Frog) AtEnd() bool { return f.done }
