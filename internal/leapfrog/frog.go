package leapfrog

import (
	"sort"

	"repro/internal/trie"
)

// Frog is the unary leapfrog join: a k-way sorted intersection of the
// sibling ranges that a set of trie iterators are currently positioned at
// (Veldhuizen §3). All legs must be at the same conceptual variable.
type Frog struct {
	legs []*trie.Iterator
	p    int
	done bool
}

// NewFrog wraps the given legs. The slice is retained and its order may
// be permuted.
func NewFrog(legs []*trie.Iterator) *Frog { return &Frog{legs: legs} }

// Init must be called after all legs were Open'ed at the variable's
// level. It positions the frog at the first match and returns whether one
// exists.
func (f *Frog) Init() bool {
	for _, l := range f.legs {
		if l.AtEnd() {
			f.done = true
			return false
		}
	}
	sort.SliceStable(f.legs, func(i, j int) bool { return f.legs[i].Key() < f.legs[j].Key() })
	f.p = 0
	f.done = false
	return f.search()
}

// search advances legs until all point at a common key (leapfrog-search).
func (f *Frog) search() bool {
	k := len(f.legs)
	max := f.legs[(f.p+k-1)%k].Key()
	for {
		x := f.legs[f.p].Key()
		if x == max {
			return true
		}
		f.legs[f.p].SeekGE(max)
		if f.legs[f.p].AtEnd() {
			f.done = true
			return false
		}
		max = f.legs[f.p].Key()
		f.p = (f.p + 1) % k
	}
}

// Key returns the current match. Valid only after Init/Next/Seek returned
// true.
func (f *Frog) Key() int64 { return f.legs[f.p].Key() }

// Next advances to the next match, returning whether one exists.
func (f *Frog) Next() bool {
	f.legs[f.p].Next()
	if f.legs[f.p].AtEnd() {
		f.done = true
		return false
	}
	f.p = (f.p + 1) % len(f.legs)
	return f.search()
}

// Seek advances to the first match with key >= v, returning whether one
// exists.
func (f *Frog) SeekGE(v int64) bool {
	f.legs[f.p].SeekGE(v)
	if f.legs[f.p].AtEnd() {
		f.done = true
		return false
	}
	f.p = (f.p + 1) % len(f.legs)
	return f.search()
}

// AtEnd reports whether the frog ran off the end.
func (f *Frog) AtEnd() bool { return f.done }
