package leapfrog

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/stats"
)

func TestParallelCountMatchesSequential(t *testing.T) {
	db := dataset.TriadicPA(80, 3, 0.5, 5).DB(false)
	shapes := []struct {
		name string
		q    *cq.Query
	}{
		{"4-path", queries.Path(4)},
		{"4-cycle", queries.Cycle(4)},
		{"triangle", queries.Clique(3)},
		{"4-clique", queries.Clique(4)},
		{"lollipop-3-1", queries.Lollipop(3, 1)},
	}
	for _, sh := range shapes {
		inst, err := Build(sh.q, db, sh.q.Vars(), nil)
		if err != nil {
			t.Fatalf("%s: Build: %v", sh.name, err)
		}
		want := Count(inst)
		for _, workers := range []int{0, 1, 2, 3, 8} {
			if got := ParallelCount(inst, workers); got != want {
				t.Errorf("%s workers=%d: ParallelCount = %d, Count = %d", sh.name, workers, got, want)
			}
		}
	}
}

// TestParallelCountAccounting checks that the merged per-worker counters
// record real, deterministic work and that a 1-worker run accounts
// exactly like the sequential path.
func TestParallelCountAccounting(t *testing.T) {
	var c stats.Counters
	q := queries.Clique(3)
	db := dataset.TriadicPA(60, 3, 0.5, 9).DB(false)
	inst, err := Build(q, db, q.Vars(), &c)
	if err != nil {
		t.Fatal(err)
	}

	c.Reset()
	Count(inst)
	seq := c

	c.Reset()
	ParallelCount(inst, 1)
	if c != seq {
		t.Errorf("ParallelCount(1) accounting %+v differs from sequential %+v", c, seq)
	}

	c.Reset()
	ParallelCount(inst, 3)
	first := c
	if first.TrieAccesses == 0 {
		t.Fatalf("parallel run accounted no trie accesses")
	}
	c.Reset()
	ParallelCount(inst, 3)
	if c != first {
		t.Errorf("parallel accounting not deterministic: %+v vs %+v", c, first)
	}
}

// TestRootKeys pins the shard domain: the root keys of a join are the
// sorted intersection of the participating atoms' first trie levels.
func TestRootKeys(t *testing.T) {
	q := queries.Path(3) // E(x1,x2), E(x2,x3): depth 0 constrained by the first atom only
	db := dataset.ErdosRenyi(20, 0.2, 3).DB(false)
	inst, err := Build(q, db, q.Vars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := RootKeys(inst, nil)
	if len(keys) == 0 {
		t.Fatal("no root keys on a non-empty graph")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("root keys not strictly ascending at %d: %v", i, keys)
		}
	}
	// Every root key must start at least one result tuple, and every
	// result's first variable must be a root key — for this query the
	// root level is exactly the set of x1 values with an outgoing edge.
	seen := map[int64]bool{}
	Eval(inst, func(mu []int64) bool {
		seen[mu[0]] = true
		return true
	})
	for v := range seen {
		found := false
		for _, k := range keys {
			if k == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("result root value %d missing from RootKeys", v)
		}
	}
}
