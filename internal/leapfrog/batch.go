package leapfrog

// This file adds block-at-a-time advances to the unary leapfrog join:
// Frog.NextBatch drains up to a block of matches per call, and the
// runner's CountBatch scans the deepest level a block at a time. The
// accounting contract carries over from the trie layer — a batch call
// charges exactly what the equivalent scalar Key/Next/search sequence
// would have charged — so stats totals stay bit-identical to the scalar
// engine on completed scans (FuzzBlockIntersect and the core
// differential harness pin it).

// NextBatch fills dst with up to len(dst) successive matches, starting
// with the current one, and advances past them. It returns the number
// of matches written; after a short return the frog is AtEnd. Like
// Frog.Next, it must only be called while the frog is positioned on a
// match (Init/Next/SeekGE returned true) — except at AtEnd or with an
// empty dst, where it returns 0.
//
// A single materialized leg needs no leapfrog search — every sibling is
// a match — so that case runs the trie's branch-free bulk copy and
// replays the scalar search charges via Charge: each scalar advance
// that keeps the leg live re-reads the key twice (Frog.search on one
// leg), and the final advance that exhausts it reads nothing. Multi-leg
// and patched-merge intersections fall back to the scalar primitives,
// which are charge-identical by construction.
func (f *Frog) NextBatch(dst []int64) int {
	if f.done || len(dst) == 0 {
		return 0
	}
	if legs := f.legs; len(legs) == 1 && legs[0].Materialized() {
		leg := legs[0]
		n := leg.NextBatch(dst)
		extra := 2 * int64(n)
		if leg.AtEnd() {
			extra -= 2
			f.done = true
		}
		leg.Charge(extra)
		return n
	}
	n := 0
	for n < len(dst) {
		dst[n] = f.Key()
		n++
		if !f.Next() {
			break
		}
	}
	return n
}

// CountBatch is Runner.Count with the deepest level advanced a block at
// a time through Frog.NextBatch; block is the caller-owned scratch
// buffer whose length sets the block size. The count and — for scans
// that run to completion — the flushed accounting are bit-identical to
// Count's. Cancellation is polled once per block at the deepest level
// (instead of once per match), so a cancelled batched scan may have
// read ahead up to one block.
func (r *Runner) CountBatch(block []int64) int64 {
	if r.inst.empty {
		return 0
	}
	if len(block) == 0 || r.inst.NumVars() == 0 {
		return r.countFrom(0)
	}
	return r.countBatchFrom(0, block)
}

func (r *Runner) countBatchFrom(d int, block []int64) int64 {
	f, ok := r.OpenDepth(d)
	var total int64
	if d == r.inst.NumVars()-1 {
		for ok && !r.cancel.Poll() {
			total += int64(f.NextBatch(block))
			ok = !f.AtEnd()
		}
	} else {
		for ok && !r.cancel.Poll() {
			r.mu[d] = f.Key()
			total += r.countBatchFrom(d+1, block)
			ok = f.Next()
		}
	}
	r.CloseDepth(d)
	return total
}

// CountBatch runs the vanilla LFTJ count with block-at-a-time leaf
// advances: blockSize <= 0 falls back to the scalar Count. One block is
// allocated per call; engines that run many executions should hold a
// Runner and reuse their own block.
func CountBatch(inst *Instance, blockSize int) int64 {
	if blockSize <= 0 {
		return Count(inst)
	}
	r := NewRunner(inst)
	n := r.CountBatch(make([]int64, blockSize))
	r.Release()
	return n
}
