package cq

import "testing"

// FuzzParse checks that the query parser never panics and that every
// successfully parsed query re-parses to an identical rendering (the
// printer and parser agree).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"E(x,y)",
		"E(x,y), E(y,z).",
		"R(a, 42), S(-1, a)",
		"male_cast(p1, m1), female_cast(p2, m1)",
		" E ( x , y ) ",
		"E(x,y), ",
		"E(x,,y)",
		"((((",
		"E(x,y)E(y,z)",
		"エッジ(x,y)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of accepted input %q does not re-parse: %v", rendered, input, err)
		}
		if again.String() != rendered {
			t.Fatalf("round trip unstable: %q -> %q", rendered, again.String())
		}
	})
}
