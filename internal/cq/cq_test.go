package cq

import (
	"reflect"
	"testing"
)

func TestVarsFirstAppearanceOrder(t *testing.T) {
	q := New(
		NewAtom("E", "b", "a"),
		NewAtom("E", "a", "c"),
		NewAtom("E", "c", "b"),
	)
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Fatalf("Vars = %v", got)
	}
	idx := q.VarIndex()
	if idx["b"] != 0 || idx["a"] != 1 || idx["c"] != 2 {
		t.Fatalf("VarIndex = %v", idx)
	}
}

func TestAtomVarsDedupes(t *testing.T) {
	a := Atom{Rel: "R", Args: []Term{V("x"), C(3), V("x"), V("y")}}
	if got := a.Vars(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Vars = %v", got)
	}
	if got := a.String(); got != "R(x,3,x,y)" {
		t.Fatalf("String = %q", got)
	}
}

func TestValidate(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty query should fail validation")
	}
	if err := New(Atom{Rel: "", Args: []Term{V("x")}}).Validate(); err == nil {
		t.Error("empty relation name should fail validation")
	}
	if err := New(Atom{Rel: "R"}).Validate(); err == nil {
		t.Error("argless atom should fail validation")
	}
	if err := New(Atom{Rel: "R", Args: []Term{C(1)}}).Validate(); err == nil {
		t.Error("variable-free query should fail validation")
	}
	if err := New(NewAtom("R", "x", "y")).Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestGaifmanEdges(t *testing.T) {
	// Triangle x-y-z plus pendant w on z.
	q := New(
		NewAtom("E", "x", "y"),
		NewAtom("E", "y", "z"),
		NewAtom("E", "x", "z"),
		NewAtom("E", "z", "w"),
	)
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}
	if got := q.GaifmanEdges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("GaifmanEdges = %v, want %v", got, want)
	}
}

func TestGaifmanEdgesTernaryAtom(t *testing.T) {
	// A single ternary atom makes its variables a clique.
	q := New(NewAtom("T", "a", "b", "c"))
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	if got := q.GaifmanEdges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("GaifmanEdges = %v, want %v", got, want)
	}
}

func TestAtomsWithVar(t *testing.T) {
	q := New(
		NewAtom("E", "x", "y"),
		NewAtom("E", "y", "z"),
		NewAtom("E", "z", "x"),
	)
	if got := q.AtomsWithVar("y"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("AtomsWithVar(y) = %v", got)
	}
	if got := q.AtomsWithVar("nope"); got != nil {
		t.Fatalf("AtomsWithVar(nope) = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	q := New(NewAtom("E", "x", "y"), Atom{Rel: "R", Args: []Term{V("y"), C(7)}})
	if got := q.String(); got != "E(x,y), R(y,7)" {
		t.Fatalf("String = %q", got)
	}
	if got := V("x").String(); got != "x" {
		t.Fatalf("V term String = %q", got)
	}
	if got := C(-3).String(); got != "-3" {
		t.Fatalf("C term String = %q", got)
	}
}
