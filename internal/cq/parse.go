package cq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a full CQ from text in the conventional comma-separated
// atom syntax, e.g.
//
//	E(x,y), E(y,z), R(z, 42)
//
// Identifiers starting with a letter or underscore are variables;
// (signed) integer literals are constants. Relation names follow the
// same identifier syntax. Whitespace is insignificant. A trailing
// period, as in Datalog bodies, is permitted.
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("cq: parse error at offset %d: %w", p.pos, err)
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and fixed queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) parseQuery() (*Query, error) {
	var atoms []Atom
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, atom)
		p.skipSpace()
		switch {
		case p.eof():
		case p.peek() == ',':
			p.pos++
			continue
		case p.peek() == '.':
			p.pos++
			p.skipSpace()
			if !p.eof() {
				return nil, fmt.Errorf("trailing input after %q", ".")
			}
		default:
			return nil, fmt.Errorf("expected ',' or end of input, got %q", p.peek())
		}
		break
	}
	q := New(atoms...)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseAtom() (Atom, error) {
	rel, err := p.parseIdent()
	if err != nil {
		return Atom{}, fmt.Errorf("relation name: %w", err)
	}
	p.skipSpace()
	if p.eof() || p.peek() != '(' {
		return Atom{}, fmt.Errorf("expected '(' after relation %q", rel)
	}
	p.pos++
	var args []Term
	for {
		p.skipSpace()
		term, err := p.parseTerm()
		if err != nil {
			return Atom{}, fmt.Errorf("atom %s: %w", rel, err)
		}
		args = append(args, term)
		p.skipSpace()
		if p.eof() {
			return Atom{}, fmt.Errorf("atom %s: unterminated argument list", rel)
		}
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return Atom{Rel: rel, Args: args}, nil
		default:
			return Atom{}, fmt.Errorf("atom %s: expected ',' or ')', got %q", rel, p.peek())
		}
	}
}

func (p *parser) parseTerm() (Term, error) {
	if p.eof() {
		return Term{}, fmt.Errorf("expected term, got end of input")
	}
	c := p.peek()
	switch {
	case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
		start := p.pos
		p.pos++
		for !p.eof() && unicode.IsDigit(rune(p.peek())) {
			p.pos++
		}
		lit := p.src[start:p.pos]
		v, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("bad integer literal %q", lit)
		}
		return C(v), nil
	case isIdentStart(c):
		name, err := p.parseIdent()
		if err != nil {
			return Term{}, err
		}
		return V(name), nil
	default:
		return Term{}, fmt.Errorf("expected variable or integer, got %q", c)
	}
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	if p.eof() || !isIdentStart(p.peek()) {
		return "", fmt.Errorf("expected identifier")
	}
	start := p.pos
	p.pos++
	for !p.eof() && isIdentPart(p.peek()) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *parser) skipSpace() {
	for !p.eof() && strings.ContainsRune(" \t\r\n", rune(p.peek())) {
		p.pos++
	}
}

func (p *parser) peek() byte { return p.src[p.pos] }
func (p *parser) eof() bool  { return p.pos >= len(p.src) }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
