package cq

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	q, err := Parse("E(x,y), E(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "E(x,y), E(y,z)" {
		t.Fatalf("round trip = %q", got)
	}
	if !reflect.DeepEqual(q.Vars(), []string{"x", "y", "z"}) {
		t.Fatalf("vars = %v", q.Vars())
	}
}

func TestParseWhitespaceAndPeriod(t *testing.T) {
	q, err := Parse("  E( x , y ) ,\n\tR(y, z) .  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
}

func TestParseConstants(t *testing.T) {
	q, err := Parse("R(x, 42), S(-7, x), T(+3, y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Args[1].IsVar() || q.Atoms[0].Args[1].Const != 42 {
		t.Fatalf("const arg = %+v", q.Atoms[0].Args[1])
	}
	if q.Atoms[1].Args[0].Const != -7 {
		t.Fatalf("negative const = %+v", q.Atoms[1].Args[0])
	}
	if q.Atoms[2].Args[0].Const != 3 {
		t.Fatalf("plus const = %+v", q.Atoms[2].Args[0])
	}
}

func TestParseIdentifiers(t *testing.T) {
	q, err := Parse("male_cast(p1, m1), _tmp(p1)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Rel != "male_cast" || q.Atoms[1].Rel != "_tmp" {
		t.Fatalf("relations = %s, %s", q.Atoms[0].Rel, q.Atoms[1].Rel)
	}
}

func TestParseRoundTripsBuilders(t *testing.T) {
	// Every builder-produced query must parse back to itself.
	for _, src := range []string{
		"E(x1,x2), E(x2,x3), E(x3,x4)",
		"E(a,b), E(b,c), E(c,d), E(a,d)",
		"R(x,x,y)",
	} {
		q := MustParse(src)
		again := MustParse(q.String())
		if q.String() != again.String() {
			t.Errorf("round trip changed %q -> %q", q, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                            // no atoms
		"E",                           // missing argument list
		"E(",                          // unterminated
		"E()",                         // empty argument list is a missing term
		"E(x,)",                       // dangling comma
		"E(x y)",                      // missing separator
		"E(x) R(y)",                   // missing comma between atoms
		"E(x,y))",                     // trailing garbage
		"E(x,y).R(y,z)",               // content after period
		"E(1,2)",                      // no variables at all
		"1E(x)",                       // bad relation name
		"E(x,9999999999999999999999)", // overflow
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("not a query((")
}

func TestParseErrorMentionsOffset(t *testing.T) {
	_, err := Parse("E(x,y), E(y z)")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error %v does not mention offset", err)
	}
}
