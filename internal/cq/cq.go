// Package cq models full conjunctive queries (CQs): sequences of subgoals
// R(t1,...,tk) where every ti is a variable or a constant, with no
// projection (§2.2 of the paper). It also derives the Gaifman graph used
// by the tree-decomposition machinery.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Term is one argument position of an atom: either a variable (named) or
// an int64 constant.
type Term struct {
	// Var is the variable name; empty when the term is a constant.
	Var string
	// Const is the constant value; meaningful only when Var is empty.
	Const int64
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v int64) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term as it would appear in a query.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return fmt.Sprintf("%d", t.Const)
}

// Atom is one subgoal R(t1,...,tk).
type Atom struct {
	// Rel names the relation the subgoal matches against.
	Rel string
	// Args are the argument terms, in relation column order.
	Args []Term
}

// NewAtom builds an atom over the named relation. Strings become variables
// (they must be non-empty); use Term values directly for constants.
func NewAtom(rel string, vars ...string) Atom {
	args := make([]Term, len(vars))
	for i, v := range vars {
		args[i] = V(v)
	}
	return Atom{Rel: rel, Args: args}
}

// Vars returns the distinct variables of the atom in first-appearance
// order (vars(ϕ) in the paper).
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// Query is a full CQ: a sequence of atoms, all of whose variables are
// output variables (no projection).
type Query struct {
	// Atoms are the subgoals ϕ1,...,ϕm.
	Atoms []Atom
}

// New returns a query over the given atoms.
func New(atoms ...Atom) *Query { return &Query{Atoms: atoms} }

// Vars returns vars(q): the distinct variables across all atoms, in
// first-appearance order. This is the default variable ordering.
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// VarIndex returns a map from variable name to its index in Vars().
func (q *Query) VarIndex() map[string]int {
	idx := make(map[string]int)
	for i, v := range q.Vars() {
		idx[v] = i
	}
	return idx
}

// Validate checks structural sanity: at least one atom, every atom has at
// least one argument, and variable names are non-empty. It does not check
// the database (arity checks happen at engine build time).
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("query has no atoms")
	}
	for i, a := range q.Atoms {
		if a.Rel == "" {
			return fmt.Errorf("atom %d has empty relation name", i)
		}
		if len(a.Args) == 0 {
			return fmt.Errorf("atom %d (%s) has no arguments", i, a.Rel)
		}
	}
	if len(q.Vars()) == 0 {
		return fmt.Errorf("query has no variables")
	}
	return nil
}

// String renders the query as a comma-separated atom list.
func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// AtomsWithVar returns the indices of atoms containing the variable.
func (q *Query) AtomsWithVar(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() && t.Var == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// GaifmanEdges returns the edges of the Gaifman graph as pairs of variable
// indices (per VarIndex), each with u < v, sorted and deduplicated. Two
// variables are adjacent iff they co-occur in some atom (§2.2).
func (q *Query) GaifmanEdges() [][2]int {
	idx := q.VarIndex()
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for _, a := range q.Atoms {
		vars := a.Vars()
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				u, v := idx[vars[i]], idx[vars[j]]
				if u > v {
					u, v = v, u
				}
				e := [2]int{u, v}
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}
